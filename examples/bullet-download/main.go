// Bullet' download with and without CrystalBall monitoring: a small
// version of the paper's Figure 17 experiment. A source disseminates a
// file to a swarm; we run the download bare and then with per-node
// checkpointing plus consequence prediction, and print both download-time
// CDFs and the checkpoint bandwidth.
//
//	go run ./examples/bullet-download
package main

import (
	"fmt"
	"time"

	"crystalball/internal/experiments"
)

func main() {
	cfg := experiments.Fig17Config{
		Seed:      21,
		Nodes:     8,
		Blocks:    24,
		BlockSize: 64 << 10,
		Deadline:  15 * time.Minute,
	}
	fmt.Printf("Bullet' swarm: %d receivers downloading %d x %dKB blocks\n\n",
		cfg.Nodes, cfg.Blocks, cfg.BlockSize>>10)
	res := experiments.Fig17Bullet(cfg)
	fmt.Print(experiments.FormatFig17(res))
}
