// Bullet' download with and without CrystalBall monitoring: a small
// version of the paper's Figure 17 experiment. A source disseminates a
// file to a swarm; we run the download bare and then with per-node
// checkpointing plus consequence prediction, and print both download-time
// CDFs and the checkpoint bandwidth.
//
// Both arms are the same scenario.Deploy call with a different Control —
// that is the whole point of the paper's Figure 17: monitoring changes
// nothing about the workload.
//
//	go run ./examples/bullet-download
package main

import (
	"fmt"
	"log"
	"time"

	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
	"crystalball/internal/services/bulletprime"
	"crystalball/internal/simnet"
	"crystalball/internal/stats"
)

const (
	receivers = 8
	blocks    = 24
	blockSize = 64 << 10
	deadline  = 15 * time.Minute
)

// runArm deploys the swarm (source + receivers), polls for per-node
// download completion, and returns the completion-time sample plus the
// mean per-node checkpoint bandwidth (zero for the bare arm).
func runArm(control scenario.Control) (*stats.Sample, int, float64) {
	d, err := scenario.Deploy("bulletprime", scenario.DeployOptions{
		Seed: 21,
		Service: scenario.Options{
			Nodes:     receivers + 1, // plus the source
			Blocks:    blocks,
			BlockSize: blockSize,
			Fixed:     true, // measure throughput, not bugs
		},
		// Paper: constrained access links; model the shared bottleneck
		// with a uniform 1 Mbps path.
		Path:    simnet.UniformPath{Latency: 50 * time.Millisecond, BwBps: 1e6, Loss: 0.002},
		Control: control,
		// Like the Figure 17 harness (internal/experiments/fig17.go,
		// the full-scale version of this example): measure the
		// monitored download with the steady-state property set, not
		// the debugging set's transient phantom-block reports.
		Props:    bulletprime.Properties,
		MCStates: 3000,
	})
	if err != nil {
		log.Fatal(err)
	}

	times := &stats.Sample{}
	done := make(map[int]bool)
	var poll func()
	poll = func() {
		for i, node := range d.Nodes {
			if i == 0 || done[i] {
				continue
			}
			if node.Service().(*bulletprime.Bullet).Complete {
				done[i] = true
				times.AddDuration(time.Duration(d.Sim.Now()))
			}
		}
		if len(done) < receivers && time.Duration(d.Sim.Now()) < deadline {
			d.Sim.After(time.Second, poll)
		}
	}
	d.Sim.After(time.Second, poll)
	d.Sim.RunFor(deadline)

	var bps float64
	if control != scenario.Bare {
		total := d.Net.TotalBytesOut(simnet.KindCheckpoint)
		bps = stats.Rate(total, time.Duration(d.Sim.Now())) / float64(len(d.Nodes))
	}
	return times, len(done), bps
}

func main() {
	fmt.Printf("Bullet' swarm: %d receivers downloading %d x %dKB blocks\n\n",
		receivers, blocks, blockSize>>10)
	base, baseDone, _ := runArm(scenario.Bare)
	mon, monDone, bps := runArm(scenario.Debug)

	t := stats.Table{
		Title:  "Download times with and without CrystalBall",
		Header: []string{"fraction", "baseline(s)", "crystalball(s)"},
	}
	for _, f := range []float64{10, 25, 50, 75, 90, 100} {
		t.Add(fmt.Sprintf("%.0f%%", f), base.Percentile(f), mon.Percentile(f))
	}
	fmt.Print(t.String())
	fmt.Printf("completed: baseline %d/%d, crystalball %d/%d\n",
		baseDone, receivers, monDone, receivers)
	if base.N() > 0 && mon.N() > 0 {
		fmt.Printf("mean slowdown: %.1f%% (paper: <10%%)\n", 100*(mon.Mean()/base.Mean()-1))
	}
	fmt.Printf("checkpoint bandwidth: %.0f bps/node (paper: ~30 kbps)\n", bps)
}
