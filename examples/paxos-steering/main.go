// Paxos execution steering: stage the paper's Figure 13 scenario against
// an implementation with the injected bug 1 (the leader builds its Accept
// from the last Promise instead of the highest-round one) and show
// CrystalBall predicting the safety violation and steering around it,
// with the immediate safety check as fallback.
//
//	go run ./examples/paxos-steering
package main

import (
	"fmt"
	"time"

	"crystalball/internal/controller"
	"crystalball/internal/experiments"
	"crystalball/internal/services/paxos"
	"crystalball/internal/sim"
	"crystalball/internal/simnet"
	"crystalball/internal/sm"
)

func main() {
	members := []sm.NodeID{1, 2, 3}
	run := func(protected bool, gap time.Duration) {
		s := sim.New(11)
		factory := paxos.New(paxos.Config{Members: members, Bug1: true})

		var ctrlCfg *controller.Config
		if protected {
			cfg := controller.DefaultConfig(paxos.Properties, factory)
			cfg.Mode = controller.ExecutionSteering
			cfg.MCStates = 15000
			cfg.SnapshotInterval = 3 * time.Second
			ctrlCfg = &cfg
		}
		snapCfg := experiments.SnapCfg()
		snapCfg.Interval = 3 * time.Second
		path := simnet.UniformPath{Latency: 20 * time.Millisecond, BwBps: 1e8}
		d := experiments.Deploy(s, path, len(members), factory, ctrlCfg, snapCfg)
		a, b, c := d.Nodes[0], d.Nodes[1], d.Nodes[2]
		_ = c

		// Round 1: C is partitioned away; A proposes 0 and it is
		// chosen by {A, B}.
		d.Net.PartitionNode(c.ID, true)
		a.App(paxos.Propose{Val: 0})
		s.RunFor(2 * time.Second)
		d.Net.PartitionNode(c.ID, false)

		// The inter-round gap is CrystalBall's prediction window.
		s.RunFor(gap)

		// Round 2: A is partitioned away; B proposes 1 (the paper's
		// "Propose(B,1)"). With bug 1 the bare system chooses a
		// second value.
		d.Net.PartitionNode(a.ID, true)
		b.App(paxos.Propose{Val: 1})
		s.RunFor(5 * time.Second)
		d.Net.PartitionNode(a.ID, false)
		s.RunFor(3 * time.Second)

		label := "bare"
		if protected {
			label = "CrystalBall"
		}
		if paxos.Properties.Holds(d.View()) {
			fmt.Printf("%-12s gap=%-4v -> safe (one value chosen)\n", label, gap)
		} else {
			fmt.Printf("%-12s gap=%-4v -> VIOLATION (two values chosen)\n", label, gap)
		}
		if protected {
			var filters, isc int64
			for _, node := range d.Nodes {
				filters += node.Stats.MessagesDropped
				isc += node.Stats.ISCBlocks
			}
			fmt.Printf("             steering drops=%d, ISC blocks=%d\n", filters, isc)
		}
	}

	fmt.Println("Figure 13 scenario, Paxos with injected bug 1:")
	run(false, 20*time.Second) // unprotected: the violation happens
	run(true, 20*time.Second)  // long gap: CrystalBall intervenes in time
	// A very short gap can beat even the immediate safety check: the
	// first neighborhood snapshot may not have been collected yet, so
	// the ISC evaluates against an empty view — the same checkpoint
	// incompleteness behind the paper's 2-5% residual violations.
	run(true, 1*time.Second)
}
