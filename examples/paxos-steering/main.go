// Paxos execution steering: stage the paper's Figure 13 scenario against
// an implementation with the injected bug 1 (the leader builds its Accept
// from the last Promise instead of the highest-round one) and show
// CrystalBall predicting the safety violation and steering around it,
// with the immediate safety check as fallback.
//
// The deployment — controllers, checkpointing, network — comes from the
// paxos scenario's registry entry (variant "bug1"); only the staged
// partition schedule is written by hand.
//
//	go run ./examples/paxos-steering
package main

import (
	"fmt"
	"log"
	"time"

	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
	"crystalball/internal/services/paxos"
)

func main() {
	run := func(protected bool, gap time.Duration) {
		control := scenario.Bare
		if protected {
			control = scenario.Steering
		}
		d, err := scenario.Deploy("paxos", scenario.DeployOptions{
			Seed:             11,
			Service:          scenario.Options{Variant: "bug1"},
			Control:          control,
			MCStates:         15000,
			SnapshotInterval: 3 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := d.Sim
		a, b, c := d.Nodes[0], d.Nodes[1], d.Nodes[2]

		// Round 1: C is partitioned away; A proposes 0 and it is
		// chosen by {A, B}.
		d.Net.PartitionNode(c.ID, true)
		a.App(paxos.Propose{Val: 0})
		s.RunFor(2 * time.Second)
		d.Net.PartitionNode(c.ID, false)

		// The inter-round gap is CrystalBall's prediction window.
		s.RunFor(gap)

		// Round 2: A is partitioned away; B proposes 1 (the paper's
		// "Propose(B,1)"). With bug 1 the bare system chooses a
		// second value.
		d.Net.PartitionNode(a.ID, true)
		b.App(paxos.Propose{Val: 1})
		s.RunFor(5 * time.Second)
		d.Net.PartitionNode(a.ID, false)
		s.RunFor(3 * time.Second)

		label := "bare"
		if protected {
			label = "CrystalBall"
		}
		if d.Props.Holds(d.View()) {
			fmt.Printf("%-12s gap=%-4v -> safe (one value chosen)\n", label, gap)
		} else {
			fmt.Printf("%-12s gap=%-4v -> VIOLATION (two values chosen)\n", label, gap)
		}
		if protected {
			var filters, isc int64
			for _, node := range d.Nodes {
				filters += node.Stats.MessagesDropped
				isc += node.Stats.ISCBlocks
			}
			fmt.Printf("             steering drops=%d, ISC blocks=%d\n", filters, isc)
		}
	}

	fmt.Println("Figure 13 scenario, Paxos with injected bug 1:")
	run(false, 20*time.Second) // unprotected: the violation happens
	run(true, 20*time.Second)  // long gap: CrystalBall intervenes in time
	// A very short gap can beat even the immediate safety check: the
	// first neighborhood snapshot may not have been collected yet, so
	// the ISC evaluates against an empty view — the same checkpoint
	// incompleteness behind the paper's 2-5% residual violations.
	run(true, 1*time.Second)
}
