// Chord deep online debugging: reconstruct the live prefix of the paper's
// Figure 10 scenario (B crashed; A's successor now points at C) and run
// consequence prediction from that snapshot, printing the full event path
// to the predicted "predecessor is self while successors exist" violation.
// Then do the same for the Figure 11 ordering-constraint bug.
//
//	go run ./examples/chord-debug
package main

import (
	"fmt"

	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/services/chord"
	"crystalball/internal/sm"
)

func main() {
	fmt.Println("=== Figure 10: If Successor is Self, So Is Predecessor ===")
	figure10()
	fmt.Println()
	fmt.Println("=== Figure 11: Node Ordering Constraint ===")
	figure11()
}

func figure10() {
	factory := chord.New(chord.Config{Bootstrap: []sm.NodeID{1}})
	mk := func(id sm.NodeID, pred sm.NodeID, succs ...sm.NodeID) *chord.Ring {
		r := factory(id).(*chord.Ring)
		r.Joined = true
		r.Pred = pred
		r.Succs = succs
		return r
	}
	// Live prefix already happened: B (node 2) reset; A (node 1) removed
	// it and now considers C (node 3) its successor; D (node 5) completes
	// the ring.
	g := mc.NewGState()
	g.AddNode(1, mk(1, 5, 3, 5, 1), map[sm.TimerID]bool{chord.TimerStabilize: true})
	g.AddNode(3, mk(3, 1, 5, 1, 3), map[sm.TimerID]bool{chord.TimerStabilize: true})
	g.AddNode(5, mk(5, 3, 1, 3, 5), map[sm.TimerID]bool{chord.TimerStabilize: true})

	res := mc.NewSearch(mc.Config{
		Props:             props.Set{chord.PropPredSelfImpliesSuccSelf},
		Factory:           factory,
		Mode:              mc.Consequence,
		ExploreResets:     true,
		ExploreConnBreaks: true,
		MaxStates:         150000,
		MaxViolations:     1,
	}).Run(g)
	report(res)
}

func figure11() {
	factory := chord.New(chord.Config{Bootstrap: []sm.NodeID{3}})
	// A_{i-1}=2 and A_{i-2}=1 both joined through A_i=3 with identical
	// FindPredReply information; node 3 has since stabilised.
	mk := func(id sm.NodeID, pred sm.NodeID, succs ...sm.NodeID) *chord.Ring {
		r := factory(id).(*chord.Ring)
		r.Joined = true
		r.Pred = pred
		r.Succs = succs
		return r
	}
	g := mc.NewGState()
	g.AddNode(1, mk(1, 3, 3, 1), map[sm.TimerID]bool{chord.TimerStabilize: true})
	g.AddNode(2, mk(2, 3, 3, 2), map[sm.TimerID]bool{chord.TimerStabilize: true})
	g.AddNode(3, mk(3, 2, 1, 3), map[sm.TimerID]bool{chord.TimerStabilize: true})

	res := mc.NewSearch(mc.Config{
		Props:         props.Set{chord.PropNodeOrdering},
		Factory:       factory,
		Mode:          mc.Consequence,
		MaxStates:     150000,
		MaxViolations: 1,
	}).Run(g)
	report(res)
}

func report(res *mc.Result) {
	fmt.Printf("explored %d states (max depth %d) in %v\n",
		res.StatesExplored, res.MaxDepthReached, res.Elapsed)
	if len(res.Violations) == 0 {
		fmt.Println("no violation found within budget")
		return
	}
	v := res.Violations[0]
	fmt.Printf("predicted violation of %v, %d steps ahead:\n", v.Properties, len(v.Path))
	for _, ev := range v.Path {
		fmt.Printf("  %s\n", ev.Describe())
	}
}
