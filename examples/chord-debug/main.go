// Chord deep online debugging: reconstruct the live prefix of the paper's
// Figure 10 scenario (B crashed; A's successor now points at C) and run
// consequence prediction from that snapshot, printing the full event path
// to the predicted "predecessor is self while successors exist" violation.
// Then do the same for the Figure 11 ordering-constraint bug.
//
// The staged start states are built by hand (they reproduce a specific
// moment of a live execution); the checker configuration — factory,
// properties, fault model — comes from the chord scenario's registry
// entry, overridden per figure.
//
//	go run ./examples/chord-debug
package main

import (
	"fmt"
	"log"

	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
	"crystalball/internal/services/chord"
	"crystalball/internal/sm"
)

func main() {
	fmt.Println("=== Figure 10: If Successor is Self, So Is Predecessor ===")
	figure10()
	fmt.Println()
	fmt.Println("=== Figure 11: Node Ordering Constraint ===")
	figure11()
}

// chordSearch returns the chord scenario's checker defaults (factory,
// fault model) for a 3-node staged neighborhood.
func chordSearch() mc.Config {
	cfg, err := scenario.MustLookup("chord").SearchConfig(scenario.Options{Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	return cfg
}

func mkRing(factory sm.Factory, id, pred sm.NodeID, succs ...sm.NodeID) *chord.Ring {
	r := factory(id).(*chord.Ring)
	r.Joined = true
	r.Pred = pred
	r.Succs = succs
	return r
}

func figure10() {
	cfg := chordSearch()
	// Live prefix already happened: B (node 2) reset; A (node 1) removed
	// it and now considers C (node 3) its successor; D (node 5) completes
	// the ring. The scenario's fault model (resets + connection breaks)
	// is exactly what this figure needs.
	g := mc.NewGState()
	g.AddNode(1, mkRing(cfg.Factory, 1, 5, 3, 5, 1), map[sm.TimerID]bool{chord.TimerStabilize: true})
	g.AddNode(3, mkRing(cfg.Factory, 3, 1, 5, 1, 3), map[sm.TimerID]bool{chord.TimerStabilize: true})
	g.AddNode(5, mkRing(cfg.Factory, 5, 3, 1, 3, 5), map[sm.TimerID]bool{chord.TimerStabilize: true})

	cfg.Props = props.Set{chord.PropPredSelfImpliesSuccSelf}
	cfg.Mode = mc.Consequence
	cfg.MaxStates = 150000
	cfg.MaxViolations = 1
	report(mc.NewSearch(cfg).Run(g))
}

func figure11() {
	cfg := chordSearch()
	// A_{i-1}=2 and A_{i-2}=1 both joined through A_i=3 with identical
	// FindPredReply information; node 3 has since stabilised. No faults
	// are needed — the ordering bug is reachable from stabilization
	// alone, so the scenario's fault model is switched off.
	g := mc.NewGState()
	g.AddNode(1, mkRing(cfg.Factory, 1, 3, 3, 1), map[sm.TimerID]bool{chord.TimerStabilize: true})
	g.AddNode(2, mkRing(cfg.Factory, 2, 3, 3, 2), map[sm.TimerID]bool{chord.TimerStabilize: true})
	g.AddNode(3, mkRing(cfg.Factory, 3, 2, 1, 3), map[sm.TimerID]bool{chord.TimerStabilize: true})

	cfg.Props = props.Set{chord.PropNodeOrdering}
	cfg.Mode = mc.Consequence
	cfg.ExploreResets = false
	cfg.ExploreConnBreaks = false
	cfg.MaxStates = 150000
	cfg.MaxViolations = 1
	report(mc.NewSearch(cfg).Run(g))
}

func report(res *mc.Result) {
	fmt.Printf("explored %d states (max depth %d) in %v\n",
		res.StatesExplored, res.MaxDepthReached, res.Elapsed)
	if len(res.Violations) == 0 {
		fmt.Println("no violation found within budget")
		return
	}
	v := res.Violations[0]
	fmt.Printf("predicted violation of %v, %d steps ahead:\n", v.Properties, len(v.Path))
	for _, ev := range v.Path {
		fmt.Printf("  %s\n", ev.Describe())
	}
}
