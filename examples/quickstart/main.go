// Quickstart: run a 6-node RandTree overlay under CrystalBall's deep
// online debugging mode and watch consequence prediction report future
// inconsistencies of the shipped (buggy) implementation — the paper's
// Figure 2 bug class among them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"crystalball/internal/controller"
	"crystalball/internal/runtime"
	"crystalball/internal/services/randtree"
	"crystalball/internal/sim"
	"crystalball/internal/simnet"
	"crystalball/internal/sm"
	"crystalball/internal/snapshot"
)

func main() {
	// 1. A deterministic simulated deployment: 6 nodes on a uniform
	//    20 ms network.
	s := sim.New(7)
	net := simnet.New(s, simnet.UniformPath{Latency: 20 * time.Millisecond, BwBps: 1e8})
	ids := []sm.NodeID{1, 2, 3, 4, 5, 6}

	// 2. The service under test: RandTree as shipped (bugs present).
	factory := randtree.New(randtree.Config{Bootstrap: ids[:1], MaxChildren: 2})

	// 3. One CrystalBall controller per node: consistent neighborhood
	//    snapshots every 10 s, consequence prediction over them, reports
	//    on violation of the paper's four RandTree safety properties.
	cfg := controller.DefaultConfig(randtree.Properties, factory)
	cfg.Mode = controller.DeepOnlineDebugging
	cfg.MCStates = 8000
	cfg.EnableISC = false

	var ctrls []*controller.Controller
	for _, id := range ids {
		node := runtime.NewNode(s, net, id, factory)
		c := controller.New(s, node, cfg, snapshot.DefaultConfig())
		c.OnViolation = func(f controller.Finding) {
			fmt.Printf("[%v] node %v predicts violation of %v, %d steps ahead:\n",
				s.Now(), c.Node().ID, f.Properties, len(f.Path))
			for _, ev := range f.Path {
				fmt.Printf("    %s\n", ev.Describe())
			}
		}
		c.Start()
		ctrls = append(ctrls, c)

		node.App(randtree.AppJoin{})
	}

	// 4. Churn: node 5 silently resets and rejoins — the trigger for the
	//    Figure 2 class of inconsistencies.
	s.After(30*time.Second, func() {
		fmt.Printf("[%v] node 5 silently resets and rejoins\n", s.Now())
		ctrls[4].Node().Reset(true)
		ctrls[4].Node().App(randtree.AppJoin{})
	})

	s.RunFor(3 * time.Minute)

	total := 0
	for _, c := range ctrls {
		total += len(c.Findings())
	}
	fmt.Printf("\n%d predictions across %d nodes in 3 virtual minutes\n", total, len(ids))
}
