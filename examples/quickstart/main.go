// Quickstart: run a 6-node RandTree overlay under CrystalBall's deep
// online debugging mode and watch consequence prediction report future
// inconsistencies of the shipped (buggy) implementation — the paper's
// Figure 2 bug class among them.
//
// The whole stack — simulated clock and network, per-node runtime,
// checkpointing, one controller per node — comes from the scenario
// registry: look the service up, describe the deployment, run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"crystalball/internal/controller"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
	"crystalball/internal/services/randtree"
)

func main() {
	// 1. A deterministic simulated deployment: 6 nodes on a uniform
	//    20 ms network, running RandTree as shipped (bugs present) with
	//    a tight degree bound, one debugging controller per node, and
	//    the scenario's join workload issued at start-up.
	d, err := scenario.Deploy("randtree", scenario.DeployOptions{
		Seed:     7,
		Service:  scenario.Options{Nodes: 6, Degree: 2},
		Control:  scenario.Debug,
		MCStates: 8000,
		Workload: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Print every prediction as it lands: the violated properties and
	//    the predicted event path from the live snapshot to the bug.
	for _, c := range d.Ctrls {
		c := c
		c.OnViolation = func(f controller.Finding) {
			fmt.Printf("[%v] node %v predicts violation of %v, %d steps ahead:\n",
				d.Sim.Now(), c.Node().ID, f.Properties, len(f.Path))
			for _, ev := range f.Path {
				fmt.Printf("    %s\n", ev.Describe())
			}
		}
	}

	// 3. Churn: node 5 silently resets and rejoins — the trigger for the
	//    Figure 2 class of inconsistencies.
	d.Sim.After(30*time.Second, func() {
		fmt.Printf("[%v] node 5 silently resets and rejoins\n", d.Sim.Now())
		d.Nodes[4].Reset(true)
		d.Nodes[4].App(randtree.AppJoin{})
	})

	d.Sim.RunFor(3 * time.Minute)

	total := len(d.TotalFindings())
	fmt.Printf("\n%d predictions across %d nodes in 3 virtual minutes\n", total, len(d.Nodes))
}
