// Command crystalvet is the repo's static-analysis multichecker: it runs the
// custom determinism, hot-path and fingerprint-maintenance passes of
// internal/analysis/passes over the module and exits non-zero on any
// unsuppressed finding. CI runs it as a blocking lint job; run it locally
// with `make lint` or `go run ./cmd/crystalvet ./...`.
//
// Findings are suppressed in source with
//
//	//crystal:allow(<pass>) <reason>
//
// on (or immediately above) the offending line, or in the function's doc
// comment to cover the whole function. The reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"crystalball/internal/analysis"
	"crystalball/internal/analysis/passes"
)

func main() {
	listPasses := flag.Bool("list", false, "list the registered passes and exit")
	sel := flag.String("passes", "", "comma-separated pass selection (default: all)")
	verbose := flag.Bool("v", false, "also report suppressed findings (informational)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: crystalvet [flags] [package patterns]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the crystalball static-analysis suite (default patterns: ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listPasses {
		for _, a := range passes.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	selected, ok := passes.ByName(*sel)
	if !ok {
		fmt.Fprintf(os.Stderr, "crystalvet: unknown pass in -passes=%q (see -list)\n", *sel)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crystalvet: %v\n", err)
		os.Exit(2)
	}

	findings, suppressed := 0, 0
	for _, pkg := range pkgs {
		res, err := analysis.RunPackage(pkg, selected, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crystalvet: %v\n", err)
			os.Exit(2)
		}
		for _, d := range res.Diagnostics {
			fmt.Printf("%s: %s [%s]\n", pkg.Fset.Position(d.Pos), d.Message, d.AnalyzerName)
			findings++
		}
		suppressed += len(res.Suppressed)
		if *verbose {
			for _, d := range res.Suppressed {
				fmt.Printf("%s: suppressed: %s [%s]\n", pkg.Fset.Position(d.Pos), d.Message, d.AnalyzerName)
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "crystalvet: %d finding(s), %d suppressed\n", findings, suppressed)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "crystalvet: clean (%d finding(s) suppressed in-source)\n", suppressed)
}
