// Command experiments regenerates every table and figure of the
// CrystalBall paper's evaluation (section 5) on the simulated substrate.
//
// Usage:
//
//	experiments -exp all                 # everything, default scales
//	experiments -exp fig14 -runs 100     # Figure 14 at paper scale
//	experiments -exp table1 -duration 30m
//	experiments -exp sweep               # scenario x workers x policy matrix
//
// Experiments: table1, fig12, fig15, fig16, depths, randtree-steering,
// fig14, fig17, overhead, sweep, all.
//
// -policy selects the controllers' per-round budget policy
// (fixed|scaled|adaptive) for the deployment-based experiments; sweep
// iterates all three.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"crystalball/internal/dist"
	"crystalball/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1|fig12|fig15|fig16|depths|randtree-steering|fig14|fig17|overhead|sweep|all)")
		seed     = flag.Int64("seed", 42, "root random seed")
		runs     = flag.Int("runs", 30, "runs per bug for fig14 (paper: 100)")
		nodes    = flag.Int("nodes", 0, "node count override (0 = experiment default)")
		duration = flag.Duration("duration", 0, "virtual duration override")
		depth    = flag.Int("depth", 0, "max depth for fig12/fig15")
		budget   = flag.Duration("budget", 2*time.Second, "wall budget for the depths comparison")
		workers  = flag.Int("workers", 0, "checker worker goroutines (0 = GOMAXPROCS)")
		policy   = flag.String("policy", "", "checker budget policy (fixed|scaled|adaptive; empty = scenario default)")
		states   = flag.Int("states", 0, "sweep: base per-round state budget (0 = 4000)")
		rounds   = flag.Int("rounds", 0, "sweep: planning rounds per cell (0 = 3)")
		reduce   = flag.String("reduce", "", "sweep: restrict the partial-order-reduction axis (on|off; empty = sweep both)")
		shards   = flag.Int("shards", 0, "sweep: add a distributed-search axis at this shard count (0 = single engine only)")
		faults   = flag.String("faults", "", "sweep: fault-plan spec injected into distributed cells (see mcheck -faults)")
	)
	flag.Parse()

	run := func(name string) {
		switch name {
		case "table1":
			cfg := experiments.Table1Config{Seed: *seed, Nodes: *nodes, Duration: *duration, Workers: *workers, Policy: *policy}
			fmt.Print(experiments.FormatTable1(experiments.Table1(cfg)))
		case "fig12":
			cfg := experiments.Fig12Config{Seed: *seed, MaxDepth: *depth, MaxStates: 2_000_000, MaxWall: 30 * time.Second, Workers: *workers}
			pts := experiments.Fig12Exhaustive(cfg)
			fmt.Print(experiments.FormatDepthPoints("Figure 12: exhaustive search time vs depth (RandTree, 5 nodes)", pts))
		case "fig15", "fig16":
			cfg := experiments.Fig15Config{Seed: *seed, MaxDepth: *depth, MaxStates: 2_000_000, Workers: *workers}
			pts := experiments.Fig15Memory(cfg)
			fmt.Print(experiments.FormatDepthPoints("Figures 15/16: consequence-prediction memory vs depth", pts))
		case "depths":
			counts := []int{5, 20}
			if *nodes > 0 {
				counts = []int{*nodes}
			}
			rows := experiments.DepthComparison(*seed, *budget, counts, *workers)
			fmt.Print(experiments.FormatDepthComparison(rows, *budget))
		case "randtree-steering":
			cfg := experiments.SteeringConfig{Seed: *seed, Nodes: *nodes, Duration: *duration, Workers: *workers, Policy: *policy}
			results := []experiments.SteeringResult{
				experiments.RandTreeSteering(cfg, experiments.NoProtection),
				experiments.RandTreeSteering(cfg, experiments.ISCOnly),
				experiments.RandTreeSteering(cfg, experiments.SteeringAndISC),
			}
			fmt.Print(experiments.FormatSteering(results))
		case "fig14":
			cfg := experiments.Fig14Config{Seed: *seed, Runs: *runs, Workers: *workers, Policy: *policy}
			fmt.Print(experiments.FormatFig14(experiments.Fig14Paxos(cfg)))
		case "fig17":
			cfg := experiments.Fig17Config{Seed: *seed, Nodes: *nodes, Deadline: *duration, Workers: *workers, Policy: *policy}
			fmt.Print(experiments.FormatFig17(experiments.Fig17Bullet(cfg)))
		case "sweep":
			if _, err := dist.ParseFaultPlan(*faults); err != nil {
				fmt.Fprintf(os.Stderr, "bad -faults spec: %v\n", err)
				os.Exit(2)
			}
			cfg := experiments.SweepConfig{Seed: *seed, States: *states, Rounds: *rounds, Faults: *faults}
			if *workers > 0 {
				cfg.Workers = []int{*workers}
			}
			if *policy != "" {
				cfg.Policies = []string{*policy}
			}
			switch *reduce {
			case "on":
				cfg.Reduce = []bool{true}
			case "off":
				cfg.Reduce = []bool{false}
			case "":
			default:
				fmt.Fprintf(os.Stderr, "unknown -reduce %q (want on|off)\n", *reduce)
				os.Exit(2)
			}
			if *shards > 1 {
				cfg.Shards = []int{1, *shards}
			}
			fmt.Print(experiments.FormatSweep(experiments.Sweep(cfg)))
		case "overhead":
			cfg := experiments.OverheadConfig{Seed: *seed, Nodes: *nodes, Duration: *duration}
			fmt.Print(experiments.FormatOverhead(experiments.Overhead(cfg)))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, name := range []string{"fig12", "fig15", "depths", "table1",
			"randtree-steering", "fig14", "fig17", "overhead"} {
			fmt.Printf("### %s\n", name)
			run(name)
		}
		return
	}
	run(*exp)
}
