// Command mcheck is the offline model checker (the MaceMC-equivalent
// baseline): it explores a service from its initial state with exhaustive
// search, consequence prediction, or random walks, and reports any safety
// violations it finds with their event paths.
//
// Usage:
//
//	mcheck -service randtree -nodes 5 -mode exhaustive -maxdepth 8
//	mcheck -service chord -mode consequence -resets -states 200000
//	mcheck -service paxos -mode random-walk -walks 500
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/services/chord"
	"crystalball/internal/services/paxos"
	"crystalball/internal/services/randtree"
	"crystalball/internal/sm"
)

func main() {
	var (
		service    = flag.String("service", "randtree", "service to check (randtree|chord|paxos)")
		nodes      = flag.Int("nodes", 5, "number of nodes in the initial state")
		mode       = flag.String("mode", "consequence", "search mode (exhaustive|consequence|random-walk)")
		maxDepth   = flag.Int("maxdepth", 0, "depth bound (0 = unbounded)")
		maxStates  = flag.Int("states", 500000, "state budget")
		maxWall    = flag.Duration("wall", time.Minute, "wall-clock budget")
		resets     = flag.Bool("resets", true, "explore node resets")
		connBreaks = flag.Bool("connbreaks", false, "explore spontaneous connection breaks")
		walks      = flag.Int("walks", 200, "random walks (random-walk mode)")
		walkDepth  = flag.Int("walkdepth", 60, "random walk depth")
		maxViol    = flag.Int("violations", 3, "stop after this many violations")
		workers    = flag.Int("workers", 0, "exploration worker goroutines (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "random seed")
		fixed      = flag.Bool("fixed", false, "check the bug-fixed service variants")
	)
	flag.Parse()

	ids := make([]sm.NodeID, *nodes)
	for i := range ids {
		ids[i] = sm.NodeID(i + 1)
	}

	var factory sm.Factory
	var ps props.Set
	switch *service {
	case "randtree":
		fixes := randtree.Fix(0)
		if *fixed {
			fixes = randtree.AllFixes
		}
		factory = randtree.New(randtree.Config{Bootstrap: ids[:1], Fixes: fixes})
		ps = randtree.Properties
	case "chord":
		fixes := chord.Fix(0)
		if *fixed {
			fixes = chord.AllFixes
		}
		factory = chord.New(chord.Config{Bootstrap: ids[:1], Fixes: fixes})
		ps = chord.Properties
	case "paxos":
		factory = paxos.New(paxos.Config{Members: ids, Bug1: !*fixed, Bug2: !*fixed})
		ps = paxos.Properties
	default:
		fmt.Fprintf(os.Stderr, "unknown service %q\n", *service)
		os.Exit(2)
	}

	var m mc.Mode
	switch *mode {
	case "exhaustive":
		m = mc.Exhaustive
	case "consequence":
		m = mc.Consequence
	case "random-walk":
		m = mc.RandomWalk
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	g := mc.NewGState()
	for _, id := range ids {
		g.AddNode(id, factory(id), nil)
	}
	search := mc.NewSearch(mc.Config{
		Props:             ps,
		Factory:           factory,
		Mode:              m,
		Workers:           *workers,
		MaxDepth:          *maxDepth,
		MaxStates:         *maxStates,
		MaxWall:           *maxWall,
		MaxViolations:     *maxViol,
		ExploreResets:     *resets,
		ExploreConnBreaks: *connBreaks,
		Walks:             *walks,
		WalkDepth:         *walkDepth,
		Seed:              *seed,
	})
	res := search.Run(g)

	fmt.Printf("mode=%s service=%s nodes=%d workers=%d\n", m, *service, *nodes, res.Workers)
	fmt.Printf("states=%d transitions=%d depth=%d elapsed=%v mem=%dB (%.0f B/state) states/sec=%.0f\n",
		res.StatesExplored, res.Transitions, res.MaxDepthReached, res.Elapsed.Round(time.Millisecond),
		res.PeakMemoryBytes, res.PerStateBytes,
		float64(res.StatesExplored)/res.Elapsed.Seconds())
	if len(res.Violations) == 0 {
		fmt.Println("no violations found")
		return
	}
	for i, v := range res.Violations {
		fmt.Printf("violation %d: %v at depth %d\n", i+1, v.Properties, v.Depth)
		for _, ev := range v.Path {
			fmt.Printf("  %s\n", ev.Describe())
		}
	}
}
