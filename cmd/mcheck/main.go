// Command mcheck is the offline model checker (the MaceMC-equivalent
// baseline): it explores a registered scenario from its initial state with
// exhaustive search, consequence prediction, or random walks, and reports
// any safety violations it finds with their event paths.
//
// Usage:
//
//	mcheck -list
//	mcheck -service randtree -nodes 5 -mode exhaustive -maxdepth 8
//	mcheck -service chord -mode consequence -resets -states 200000
//	mcheck -service paxos -variant bug1 -mode random-walk -walks 500
//	mcheck -service bulletprime -nodes 3 -mode exhaustive -states 50000
//	mcheck -service chord -policy scaled -states 20000
//	mcheck -service paxos -mode exhaustive -reduce=false
//	mcheck -service chord -mode exhaustive -shards 4 -maxdepth 6
//
// -shards N runs the distributed sharded search in-process: N shard
// goroutines each own a slice of the fingerprint space and exchange
// out-of-range successors in batches through a coordinator (see
// internal/dist). Exhaustive mode only; the claimed state set is identical
// to the single-process engine's. For a real multi-process run, use shardd.
//
// -reduce (default on) runs the sleep-set partial-order reduction: the
// search claims the same states and reports the same violations while
// executing fewer handler calls. Turn it off to measure the unreduced
// transition count or when instrumenting message-arrival order itself.
//
// -policy selects the budget policy that plans the search budget from the
// flag-provided base (fixed = the flags verbatim; scaled = states scaled by
// the initial state's encoded size; adaptive = fixed on the first round —
// adaptation needs round feedback, which only live controllers have).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"crystalball/internal/dist"
	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
)

func main() {
	var (
		service    = flag.String("service", "randtree", "scenario to check (see -list)")
		list       = flag.Bool("list", false, "list registered scenarios and exit")
		variant    = flag.String("variant", "", "scenario variant (e.g. paxos: bug1|bug2)")
		nodes      = flag.Int("nodes", 5, "number of nodes in the initial state")
		mode       = flag.String("mode", "consequence", "search mode (exhaustive|consequence|random-walk)")
		maxDepth   = flag.Int("maxdepth", 0, "depth bound (0 = unbounded)")
		maxStates  = flag.Int("states", 500000, "state budget")
		maxWall    = flag.Duration("wall", time.Minute, "wall-clock budget")
		resets     = flag.Bool("resets", true, "explore node resets")
		connBreaks = flag.Bool("connbreaks", false, "explore spontaneous connection breaks")
		reduce     = flag.Bool("reduce", true, "sleep-set partial-order reduction (same states and violations, fewer transitions)")
		walks      = flag.Int("walks", 200, "random walks (random-walk mode)")
		walkDepth  = flag.Int("walkdepth", 60, "random walk depth")
		maxViol    = flag.Int("violations", 3, "stop after this many violations")
		workers    = flag.Int("workers", 0, "exploration worker goroutines (0 = GOMAXPROCS)")
		policy     = flag.String("policy", "fixed", "budget policy planning the search budget (fixed|scaled|adaptive)")
		seed       = flag.Int64("seed", 1, "random seed")
		fixed      = flag.Bool("fixed", false, "check the bug-fixed service variants")
		shards     = flag.Int("shards", 0, "distributed in-process search with this many shards (0 = single engine; exhaustive mode only)")
		batchSize  = flag.Int("batch", 0, "forwarded-state batch size for -shards (0 = default)")
		faults     = flag.String("faults", "", "fault-plan spec for -shards, e.g. 'kill@s1r1m2, send:drop@s0~0.01' (ops: kill|sever|drop|dup|corrupt|delayN)")
	)
	flag.Parse()

	if *list {
		for _, name := range scenario.Names() {
			sc, _ := scenario.Lookup(name)
			fmt.Printf("%-12s %s\n", name, sc.Description)
		}
		return
	}

	sc, ok := scenario.Lookup(*service)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown service %q (registered: %s)\n",
			*service, strings.Join(scenario.Names(), ", "))
		os.Exit(2)
	}

	var m mc.Mode
	switch *mode {
	case "exhaustive":
		m = mc.Exhaustive
	case "consequence":
		m = mc.Consequence
	case "random-walk":
		m = mc.RandomWalk
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	g, cfg, err := sc.InitialState(scenario.Options{
		Nodes:   *nodes,
		Fixed:   *fixed,
		Variant: *variant,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// The flags form the base budget; the selected policy plans the
	// actual search budget from the initial state's footprint. The
	// default FixedPolicy returns the base verbatim, so default output
	// is byte-identical to the pre-policy checker.
	spec := mc.PolicySpec{
		Kind: *policy,
		Base: mc.Budget{
			States:     *maxStates,
			Depth:      *maxDepth,
			Wall:       *maxWall,
			Violations: *maxViol,
			Workers:    *workers,
		},
	}
	pol, err := spec.New()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Mode = m
	cfg.Budget = pol.Plan(mc.RoundInfo{
		Round:         1,
		SnapshotBytes: g.EncodedSize(),
		SnapshotNodes: len(g.Nodes()),
		Interval:      *maxWall,
	})
	cfg.ExploreResets = *resets
	cfg.ExploreConnBreaks = *connBreaks
	cfg.Reduce = *reduce
	cfg.Walks = *walks
	cfg.WalkDepth = *walkDepth
	cfg.Seed = *seed

	var res *mc.Result
	var dstats dist.Stats
	var drec dist.RecoveryStats
	if *shards > 0 {
		if m != mc.Exhaustive {
			fmt.Fprintln(os.Stderr, "-shards requires -mode exhaustive")
			os.Exit(2)
		}
		plan, err := dist.ParseFaultPlan(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -faults spec: %v\n", err)
			os.Exit(2)
		}
		dres, err := dist.Local(dist.LocalConfig{
			Shards:    *shards,
			Search:    cfg,
			Root:      g,
			Budget:    cfg.Budget,
			BatchSize: *batchSize,
			Faults:    plan,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res = &dres.Checker
		dstats = dres.Stats
		drec = dres.Recovery
	} else if *faults != "" {
		fmt.Fprintln(os.Stderr, "-faults requires -shards")
		os.Exit(2)
	} else {
		res = mc.NewSearch(cfg).Run(g)
	}

	fmt.Printf("mode=%s service=%s nodes=%d workers=%d\n", m, sc.Name, *nodes, res.Workers)
	if *policy != "fixed" {
		fmt.Printf("policy=%s planned states=%d workers=%d (snapshot %dB)\n",
			*policy, cfg.Budget.States, res.Workers, g.EncodedSize())
	}
	fmt.Printf("states=%d transitions=%d depth=%d elapsed=%v mem=%dB (%.0f B/state) states/sec=%.0f\n",
		res.StatesExplored, res.Transitions, res.MaxDepthReached, res.Elapsed.Round(time.Millisecond),
		res.PeakMemoryBytes, res.PerStateBytes,
		float64(res.StatesExplored)/res.Elapsed.Seconds())
	fmt.Printf("pruned=%d (sleep-hits=%d) steals=%d steal-fails=%d\n",
		res.TransitionsPruned, res.SleepHits, res.Steals, res.StealFails)
	if *shards > 0 {
		fmt.Printf("shards=%d forwarded=%d received=%d remote-deduped=%d batch-flushes=%d\n",
			*shards, dstats.StatesForwarded, dstats.StatesReceived, dstats.RemoteDeduped, dstats.BatchFlushes)
		if drec.Retries > 0 || len(drec.Deaths) > 0 || drec.SerialFallback {
			fmt.Printf("recovery: %s\n", drec.String())
		}
	}
	if len(res.Violations) == 0 {
		fmt.Println("no violations found")
		return
	}
	for i, v := range res.Violations {
		fmt.Printf("violation %d: %v at depth %d\n", i+1, v.Properties, v.Depth)
		for _, ev := range v.Path {
			fmt.Printf("  %s\n", ev.Describe())
		}
	}
}
