// Command benchjson records and compares the repo's micro-benchmark
// trajectory. It runs the core checker benchmarks (`go test -bench` with
// -benchmem), parses the standard benchmark output into a structured
// snapshot (ns/op, allocs/op, B/op, plus custom metrics like states/sec),
// and either merges the snapshot into a committed artifact (BENCH_N.json,
// keyed by label — "before"/"after" for a PR's perf claim) or compares the
// current tree against a recorded snapshot, benchstat-style.
//
// Record the "after" side of the committed artifact:
//
//	go run ./cmd/benchjson -label after -out BENCH_10.json
//
// Compare the working tree against the committed "after" numbers
// (warn-only: always exits 0 unless -strict):
//
//	go run ./cmd/benchjson -compare BENCH_10.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// defaultBench selects the micro-benchmarks that gate checker throughput;
// the heavyweight paper-figure benchmarks are excluded so a recording run
// completes in minutes.
const defaultBench = "BenchmarkStateHash$|BenchmarkConsequencePrediction$|BenchmarkExhaustiveSearch$|BenchmarkParallelSearch$|BenchmarkReducedSearch$|BenchmarkCheckpointEncode$|BenchmarkAdaptiveRounds$|BenchmarkShardedSearch$|BenchmarkGlobalProps$"

// Result is one benchmark's parsed numbers.
type Result struct {
	Iterations int64              `json:"iterations"`
	NsOp       float64            `json:"ns_op"`
	BytesOp    float64            `json:"bytes_op,omitempty"`
	AllocsOp   float64            `json:"allocs_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one labeled benchmark run.
type Snapshot struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go_version"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "record mode: snapshot label to merge into -out (e.g. before, after)")
	out := flag.String("out", "BENCH_10.json", "artifact file to merge the labeled snapshot into")
	compare := flag.String("compare", "", "compare mode: artifact file to compare the current tree against")
	against := flag.String("against", "after", "label inside the -compare artifact to compare against")
	bench := flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "", "passed to go test -benchtime (e.g. 1s, 10x)")
	timeout := flag.String("timeout", "45m", "passed to go test -timeout (recording runs outlive the 10m default)")
	pkg := flag.String("pkg", ".", "package holding the benchmarks")
	input := flag.String("input", "", "parse a saved `go test -bench` output file instead of running the benchmarks")
	procs := flag.Int("procs", 1, "with -input: GOMAXPROCS of the host that produced the file (go test appends a -N name suffix when it is not 1)")
	strict := flag.Bool("strict", false, "compare mode: exit non-zero on regression instead of warning")
	nsTol := flag.Float64("ns-tolerance", 0.15, "compare mode: relative ns/op regression tolerated before warning")
	flag.Parse()

	if (*label == "") == (*compare == "") {
		fmt.Fprintln(os.Stderr, "usage: exactly one of -label (record) or -compare (check) is required")
		os.Exit(2)
	}

	var snap *Snapshot
	var err error
	if *input != "" {
		snap, err = parseFile(*input, *procs)
	} else {
		snap, err = runBenchmarks(*pkg, *bench, *benchtime, *timeout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *label != "" {
		if err := mergeSnapshot(*out, *label, snap); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d benchmarks under %q in %s\n", len(snap.Benchmarks), *label, *out)
		return
	}

	base, err := loadSnapshot(*compare, *against)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	regressions := report(base, snap, *against, *nsTol)
	if regressions > 0 && *strict {
		os.Exit(1)
	}
}

// parseFile builds a snapshot from a saved `go test -bench` output file;
// procs is the recording host's GOMAXPROCS, which governs the -N name
// suffix go test appended there.
func parseFile(path string, procs int) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap, err := parseOutput(string(data), procs)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

func runBenchmarks(pkg, bench, benchtime, timeout string) (*Snapshot, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem", pkg}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	if timeout != "" {
		args = append(args, "-timeout", timeout)
	}
	fmt.Fprintf(os.Stderr, "running: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench failed: %w\n%s", err, outBytes)
	}
	return parseOutput(string(outBytes), runtime.GOMAXPROCS(0))
}

func parseOutput(out string, procs int) (*Snapshot, error) {
	snap := &Snapshot{
		Date:       time.Now().UTC().Format("2006-01-02T15:04:05Z"),
		GoVersion:  runtime.Version(),
		Benchmarks: map[string]Result{},
	}
	for _, line := range strings.Split(out, "\n") {
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			snap.CPU = strings.TrimSpace(cpu)
			continue
		}
		name, res, ok := parseBenchLine(line, procs)
		if !ok {
			continue
		}
		snap.Benchmarks[name] = res
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines parsed from go test output")
	}
	return snap, nil
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkFoo/sub-8   1234   5678 ns/op   42 states/sec   9 B/op   3 allocs/op
func parseBenchLine(line string, procs int) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsOp = val
		case "B/op":
			res.BytesOp = val
		case "allocs/op":
			res.AllocsOp = val
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = val
		}
	}
	// Strip the -GOMAXPROCS suffix so snapshots from hosts with different
	// core counts compare by benchmark identity. go test appends it only
	// when the producing host's GOMAXPROCS was not 1, so the strip is
	// exact and cannot eat a sub-benchmark name that happens to end in a
	// number (e.g. workers-4).
	name := fields[0]
	if procs != 1 {
		name = strings.TrimSuffix(name, fmt.Sprintf("-%d", procs))
	}
	return name, res, true
}

func mergeSnapshot(path, label string, snap *Snapshot) error {
	doc := map[string]*Snapshot{}
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	case errors.Is(err, fs.ErrNotExist):
		// First recording: start a fresh artifact.
	default:
		// Any other read failure must not silently discard the labels
		// already recorded in the artifact.
		return err
	}
	// Overlay rather than replace: re-recording a subset (-bench override)
	// refreshes those entries and keeps the rest of the label's snapshot.
	if prior, ok := doc[label]; ok {
		for name, r := range snap.Benchmarks {
			prior.Benchmarks[name] = r
		}
		prior.Date, prior.GoVersion, prior.CPU = snap.Date, snap.GoVersion, snap.CPU
	} else {
		doc[label] = snap
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func loadSnapshot(path, label string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := map[string]*Snapshot{}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	snap := doc[label]
	if snap == nil {
		return nil, fmt.Errorf("%s: no snapshot labeled %q (have %s)", path, label, strings.Join(labels(doc), ", "))
	}
	return snap, nil
}

func labels(doc map[string]*Snapshot) []string {
	var out []string
	for l := range doc {
		out = append(out, l)
	}
	return out
}

// report prints a benchstat-style comparison and returns the number of
// regressions (ns/op beyond tolerance, or any allocs/op increase).
func report(base, cur *Snapshot, label string, nsTol float64) int {
	fmt.Printf("comparison against %q (recorded %s, %s)\n", label, base.Date, base.CPU)
	fmt.Printf("%-55s %14s %14s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs old→new")
	regressions := 0
	for _, name := range sortedKeys(base.Benchmarks) {
		old := base.Benchmarks[name]
		now, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Printf("%-55s %14s %14s %8s  missing from current run\n", name, fmtNs(old.NsOp), "-", "-")
			regressions++
			continue
		}
		delta := 0.0
		if old.NsOp > 0 {
			delta = (now.NsOp - old.NsOp) / old.NsOp
		}
		warn := ""
		if delta > nsTol {
			warn = "  << SLOWER"
			regressions++
		}
		if now.AllocsOp > old.AllocsOp {
			warn += "  << MORE ALLOCS"
			regressions++
		}
		fmt.Printf("%-55s %14s %14s %+7.1f%%  %.0f→%.0f%s\n",
			name, fmtNs(old.NsOp), fmtNs(now.NsOp), 100*delta, old.AllocsOp, now.AllocsOp, warn)
		for _, m := range sortedKeys(old.Metrics) {
			if nv, ok := now.Metrics[m]; ok {
				fmt.Printf("    %-51s %14.0f %14.0f\n", m, old.Metrics[m], nv)
			}
		}
	}
	if regressions > 0 {
		fmt.Printf("WARNING: %d regression(s) against the recorded baseline (hardware differences may account for some)\n", regressions)
	} else {
		fmt.Println("no regressions against the recorded baseline")
	}
	return regressions
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort; tiny n
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func fmtNs(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", v/1e3)
	default:
		return fmt.Sprintf("%.0fns", v)
	}
}
