// Command crystalball runs a simulated CrystalBall deployment of any
// registered scenario — RandTree, Chord, Bullet′ or Paxos — with per-node
// controllers in deep-online-debugging or execution-steering mode, and
// prints the predictions, installed filters and runtime statistics.
//
// Usage:
//
//	crystalball -list
//	crystalball -service randtree -nodes 25 -mode steering -duration 10m
//	crystalball -service bulletprime -nodes 8 -mode debug -duration 20m
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"crystalball/internal/controller"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
)

func main() {
	var (
		service  = flag.String("service", "randtree", "scenario to deploy (see -list)")
		list     = flag.Bool("list", false, "list registered scenarios and exit")
		variant  = flag.String("variant", "", "scenario variant (e.g. paxos: bug1|bug2)")
		nodes    = flag.Int("nodes", 12, "number of nodes")
		mode     = flag.String("mode", "debug", "controller mode (debug|steering)")
		duration = flag.Duration("duration", 10*time.Minute, "virtual run time")
		churn    = flag.Duration("churn", time.Minute, "mean time between resets (0 = none)")
		mcStates = flag.Int("mcstates", 10000, "consequence-prediction state budget per round")
		workers  = flag.Int("workers", 0, "checker worker goroutines (0 = GOMAXPROCS)")
		seed     = flag.Int64("seed", 42, "random seed")
		fixed    = flag.Bool("fixed", false, "run the bug-fixed service variants")
		verbose  = flag.Bool("v", false, "print each prediction's event path")
	)
	flag.Parse()

	if *list {
		for _, name := range scenario.Names() {
			sc, _ := scenario.Lookup(name)
			fmt.Printf("%-12s %s\n", name, sc.Description)
		}
		return
	}

	sc, ok := scenario.Lookup(*service)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown service %q (registered: %s)\n",
			*service, strings.Join(scenario.Names(), ", "))
		os.Exit(2)
	}

	control := scenario.Debug
	ctrlMode := controller.DeepOnlineDebugging
	if *mode == "steering" {
		control = scenario.Steering
		ctrlMode = controller.ExecutionSteering
	}

	d, err := sc.Deploy(scenario.DeployOptions{
		Seed:     *seed,
		Service:  scenario.Options{Nodes: *nodes, Fixed: *fixed, Variant: *variant},
		Control:  control,
		MCStates: *mcStates,
		Workers:  *workers,
		Workload: true,
		Churn:    *churn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("running %s with %d nodes for %v (mode=%s, fixed=%v)\n",
		sc.Name, len(d.Nodes), *duration, ctrlMode, *fixed)
	d.Sim.RunFor(*duration)

	findings := d.TotalFindings()
	distinct := controller.DistinctFindings(findings)
	fmt.Printf("\npredictions: %d total, %d distinct bug classes\n", len(findings), len(distinct))
	for _, f := range distinct {
		fmt.Printf("  %v (path length %d) at %v\n", f.Properties, len(f.Path), f.FoundAt)
		if *verbose {
			for _, ev := range f.Path {
				fmt.Printf("    %s\n", ev.Describe())
			}
		}
	}
	var filters, unhelpful, rounds, states int64
	for _, c := range d.Ctrls {
		filters += c.Stats.FiltersInstalled
		unhelpful += c.Stats.SteeringUnhelpful
		rounds += c.Stats.Rounds
		states += c.Stats.StatesExplored
	}
	var actions, blocked int64
	for _, node := range d.Nodes {
		actions += node.Stats.ActionsExecuted
		blocked += node.Stats.MessagesDropped + node.Stats.ISCBlocks
	}
	fmt.Printf("\nrounds=%d statesExplored=%d filtersInstalled=%d unhelpful=%d\n",
		rounds, states, filters, unhelpful)
	fmt.Printf("actions=%d blocked=%d\n", actions, blocked)
	if ok := d.Props.Holds(d.View()); ok {
		fmt.Println("final global state: consistent")
	} else {
		fmt.Printf("final global state: VIOLATES %v\n", d.Props.Check(d.View()))
	}
}
