// Command crystalball runs a simulated CrystalBall deployment of one of
// the evaluated services — RandTree, Chord, Bullet′ or Paxos — with
// per-node controllers in deep-online-debugging or execution-steering mode,
// and prints the predictions, installed filters and runtime statistics.
//
// Usage:
//
//	crystalball -service randtree -nodes 25 -mode steering -duration 10m
//	crystalball -service chord -nodes 12 -mode debug -duration 20m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"crystalball/internal/controller"
	"crystalball/internal/experiments"
	"crystalball/internal/props"
	"crystalball/internal/services/bulletprime"
	"crystalball/internal/services/chord"
	"crystalball/internal/services/paxos"
	"crystalball/internal/services/randtree"
	"crystalball/internal/sim"
	"crystalball/internal/simnet"
	"crystalball/internal/sm"
)

func main() {
	var (
		service  = flag.String("service", "randtree", "service (randtree|chord|bullet|paxos)")
		nodes    = flag.Int("nodes", 12, "number of nodes")
		mode     = flag.String("mode", "debug", "controller mode (debug|steering)")
		duration = flag.Duration("duration", 10*time.Minute, "virtual run time")
		churn    = flag.Duration("churn", time.Minute, "mean time between resets (0 = none)")
		mcStates = flag.Int("mcstates", 10000, "consequence-prediction state budget per round")
		seed     = flag.Int64("seed", 42, "random seed")
		fixed    = flag.Bool("fixed", false, "run the bug-fixed service variants")
		verbose  = flag.Bool("v", false, "print each prediction's event path")
	)
	flag.Parse()

	ids := make([]sm.NodeID, *nodes)
	for i := range ids {
		ids[i] = sm.NodeID(i + 1)
	}

	var factory sm.Factory
	var ps props.Set
	var join func() sm.AppCall
	switch *service {
	case "randtree":
		fixes := randtree.Fix(0)
		if *fixed {
			fixes = randtree.AllFixes
		}
		factory = randtree.New(randtree.Config{Bootstrap: ids[:1], MaxChildren: 3, Fixes: fixes})
		ps = randtree.Properties
		join = func() sm.AppCall { return randtree.AppJoin{} }
	case "chord":
		fixes := chord.Fix(0)
		if *fixed {
			fixes = chord.AllFixes
		}
		factory = chord.New(chord.Config{Bootstrap: ids[:1], Fixes: fixes})
		ps = chord.Properties
		join = func() sm.AppCall { return chord.AppJoin{} }
	case "bullet":
		fixes := bulletprime.Fix(0)
		if *fixed {
			fixes = bulletprime.AllFixes
		}
		factory = bulletprime.New(bulletprime.Config{
			Members: ids, Source: ids[0], Blocks: 32, BlockSize: 64 << 10, Fixes: fixes,
		})
		ps = bulletprime.DebugProperties
	case "paxos":
		factory = paxos.New(paxos.Config{Members: ids, Bug1: !*fixed})
		ps = paxos.Properties
	default:
		fmt.Fprintf(os.Stderr, "unknown service %q\n", *service)
		os.Exit(2)
	}

	s := sim.New(*seed)
	ctrl := controller.DefaultConfig(ps, factory)
	ctrl.MCStates = *mcStates
	if *mode == "steering" {
		ctrl.Mode = controller.ExecutionSteering
	} else {
		ctrl.Mode = controller.DeepOnlineDebugging
		ctrl.EnableISC = false
	}
	path := simnet.UniformPath{Latency: 20 * time.Millisecond, BwBps: 1e8}
	d := experiments.Deploy(s, path, *nodes, factory, &ctrl, experiments.SnapCfg())

	for i, node := range d.Nodes {
		if join == nil {
			continue
		}
		node := node
		s.After(time.Duration(i)*700*time.Millisecond, func() { node.App(join()) })
	}
	if *churn > 0 {
		experiments.Churn(s, d, *churn, func(*sm.NodeID) sm.AppCall {
			if join == nil {
				return nil
			}
			return join()
		})
	}

	fmt.Printf("running %s with %d nodes for %v (mode=%s, fixed=%v)\n",
		*service, *nodes, *duration, ctrl.Mode, *fixed)
	s.RunFor(*duration)

	findings := d.TotalFindings()
	distinct := controller.DistinctFindings(findings)
	fmt.Printf("\npredictions: %d total, %d distinct bug classes\n", len(findings), len(distinct))
	for _, f := range distinct {
		fmt.Printf("  %v (path length %d) at %v\n", f.Properties, len(f.Path), f.FoundAt)
		if *verbose {
			for _, ev := range f.Path {
				fmt.Printf("    %s\n", ev.Describe())
			}
		}
	}
	var filters, unhelpful, rounds, states int64
	for _, c := range d.Ctrls {
		filters += c.Stats.FiltersInstalled
		unhelpful += c.Stats.SteeringUnhelpful
		rounds += c.Stats.Rounds
		states += c.Stats.StatesExplored
	}
	var actions, blocked int64
	for _, node := range d.Nodes {
		actions += node.Stats.ActionsExecuted
		blocked += node.Stats.MessagesDropped + node.Stats.ISCBlocks
	}
	fmt.Printf("\nrounds=%d statesExplored=%d filtersInstalled=%d unhelpful=%d\n",
		rounds, states, filters, unhelpful)
	fmt.Printf("actions=%d blocked=%d\n", actions, blocked)
	if ok := ps.Holds(d.View()); ok {
		fmt.Println("final global state: consistent")
	} else {
		fmt.Printf("final global state: VIOLATES %v\n", ps.Check(d.View()))
	}
}
