// Command shardd runs the distributed sharded search across real
// processes: one coordinator plus N workers, connected over TCP with the
// length-prefixed binary protocol from internal/dist.
//
// The coordinator listens, waits for every worker's Hello, sends each the
// Setup describing the scenario, then runs one distributed exhaustive
// round and prints the merged report (the same numbers mcheck prints, plus
// the frontier-exchange counters). Every worker builds the scenario from
// its own registry using the Setup fields, so all shards search from a
// bit-identical configuration.
//
// Usage:
//
//	shardd -listen :7070 -shards 2 -service chord -nodes 3 -maxdepth 6
//	shardd -connect host:7070 -shard 0 -shards 2
//	shardd -connect host:7070 -shard 1 -shards 2
//
// Workers take the scenario from the coordinator; their only required
// flags are the address and their shard slot.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"crystalball/internal/dist"
	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
)

func main() {
	var (
		listen     = flag.String("listen", "", "coordinator mode: listen address (e.g. :7070)")
		connect    = flag.String("connect", "", "worker mode: coordinator address")
		shard      = flag.Int("shard", 0, "worker mode: this worker's shard slot")
		shards     = flag.Int("shards", 2, "total shard count")
		service    = flag.String("service", "randtree", "scenario to check (coordinator)")
		variant    = flag.String("variant", "", "scenario variant (coordinator)")
		nodes      = flag.Int("nodes", 5, "number of nodes in the initial state (coordinator)")
		fixed      = flag.Bool("fixed", false, "check the bug-fixed service variants (coordinator)")
		seed       = flag.Int64("seed", 1, "random seed (coordinator)")
		resets     = flag.Bool("resets", true, "explore node resets (coordinator)")
		connBreaks = flag.Bool("connbreaks", false, "explore connection breaks (coordinator)")
		maxDepth   = flag.Int("maxdepth", 0, "depth bound (0 = unbounded)")
		maxStates  = flag.Int("states", 500000, "state budget across all shards")
		maxWall    = flag.Duration("wall", time.Minute, "wall-clock budget")
		maxViol    = flag.Int("violations", 3, "per-shard violation quota")
		workers    = flag.Int("workers", 1, "expansion workers per shard")
		batchSize  = flag.Int("batch", 0, "forwarded-state batch size (0 = default)")
	)
	flag.Parse()

	var err error
	switch {
	case *listen != "" && *connect == "":
		err = coordinate(*listen, *shards, dist.Setup{
			Scenario:   *service,
			Nodes:      *nodes,
			Variant:    *variant,
			Fixed:      *fixed,
			Seed:       *seed,
			Resets:     *resets,
			ConnBreaks: *connBreaks,
			Workers:    *workers,
			BatchSize:  *batchSize,
		}, mc.Budget{
			States:     *maxStates,
			Depth:      *maxDepth,
			Wall:       *maxWall,
			Violations: *maxViol,
			Workers:    *workers,
		})
	case *connect != "" && *listen == "":
		err = work(*connect, *shard, *shards)
	default:
		err = fmt.Errorf("exactly one of -listen (coordinator) or -connect (worker) is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// buildScenario constructs the search configuration a Setup describes —
// the one function both roles share, which is what keeps the shards'
// configurations bit-identical.
func buildScenario(su dist.Setup) (*mc.GState, mc.Config, error) {
	g, cfg, err := scenario.InitialState(su.Scenario, scenario.Options{
		Nodes:   su.Nodes,
		Fixed:   su.Fixed,
		Variant: su.Variant,
	})
	if err != nil {
		return nil, mc.Config{}, err
	}
	cfg.Mode = mc.Exhaustive
	cfg.Seed = su.Seed
	cfg.ExploreResets = su.Resets
	cfg.ExploreConnBreaks = su.ConnBreaks
	return g, cfg, nil
}

func coordinate(addr string, shards int, su dist.Setup, budget mc.Budget) error {
	if shards <= 0 {
		return fmt.Errorf("-shards must be positive")
	}
	// Validate the scenario locally before any worker connects, and keep
	// the probe around for violation-path replay in the merge.
	g, cfg, err := buildScenario(su)
	if err != nil {
		return err
	}
	probe := mc.NewSearch(cfg)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("coordinator: waiting for %d workers on %s\n", shards, ln.Addr())

	conns := make([]dist.Conn, shards)
	for joined := 0; joined < shards; {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		conn := dist.WrapTCP(nc)
		m, err := conn.Recv()
		if err != nil {
			conn.Close()
			return fmt.Errorf("worker handshake: %w", err)
		}
		h, ok := m.(dist.Hello)
		if !ok || h.Shard < 0 || h.Shard >= shards || h.Shards != shards || conns[h.Shard] != nil {
			conn.Close()
			return fmt.Errorf("bad worker hello %+v (want a free slot in 0..%d)", m, shards-1)
		}
		if err := conn.Send(su); err != nil {
			conn.Close()
			return fmt.Errorf("worker %d setup: %w", h.Shard, err)
		}
		conns[h.Shard] = conn
		joined++
		fmt.Printf("coordinator: worker %d joined (%d/%d)\n", h.Shard, joined, shards)
	}

	coord := dist.NewCoordinator(conns, dist.CoordinatorConfig{Search: probe, Root: g})
	defer coord.Shutdown()
	res, err := coord.RunRound(budget, false)
	if err != nil {
		return err
	}

	r := &res.Checker
	fmt.Printf("service=%s nodes=%d shards=%d workers/shard=%d\n", su.Scenario, su.Nodes, shards, budget.Workers)
	fmt.Printf("states=%d transitions=%d depth=%d elapsed=%v states/sec=%.0f\n",
		r.StatesExplored, r.Transitions, r.MaxDepthReached, r.Elapsed.Round(time.Millisecond),
		float64(r.StatesExplored)/r.Elapsed.Seconds())
	fmt.Printf("forwarded=%d received=%d remote-deduped=%d batch-flushes=%d\n",
		res.Stats.StatesForwarded, res.Stats.StatesReceived, res.Stats.RemoteDeduped, res.Stats.BatchFlushes)
	if len(r.Violations) == 0 {
		fmt.Println("no violations found")
		return nil
	}
	for i, v := range r.Violations {
		fmt.Printf("violation %d: %v at depth %d\n", i+1, v.Properties, v.Depth)
		for _, ev := range v.Path {
			fmt.Printf("  %s\n", ev.Describe())
		}
	}
	return nil
}

func work(addr string, shard, shards int) error {
	conn, err := dist.DialTCP(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(dist.Hello{Shard: shard, Shards: shards}); err != nil {
		return err
	}
	m, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("waiting for setup: %w", err)
	}
	su, ok := m.(dist.Setup)
	if !ok {
		return fmt.Errorf("expected setup, got %T", m)
	}
	g, cfg, err := buildScenario(su)
	if err != nil {
		return err
	}
	fmt.Printf("worker %d/%d: searching %s\n", shard, shards, su.Scenario)
	err = dist.RunShard(conn, dist.ShardConfig{
		Index:     shard,
		Shards:    shards,
		Search:    cfg,
		Root:      g,
		BatchSize: su.BatchSize,
	})
	if err == dist.ErrClosed || err == nil {
		fmt.Printf("worker %d: done\n", shard)
		return nil
	}
	return err
}
