// Command shardd runs the distributed sharded search across real
// processes: one coordinator plus N workers, connected over TCP with the
// length-prefixed binary protocol from internal/dist.
//
// The coordinator listens, waits for every worker's Hello, sends each the
// Setup describing the scenario, then runs one distributed exhaustive
// round and prints the merged report (the same numbers mcheck prints, plus
// the frontier-exchange counters). Every worker builds the scenario from
// its own registry using the Setup fields, so all shards search from a
// bit-identical configuration.
//
// Fault tolerance: every connection runs heartbeats and read/write
// deadlines (-peer-timeout), so a dead worker is detected within the
// timeout instead of hanging the round; the coordinator then aborts,
// repartitions over the survivors and retries (internal/dist). Workers
// dial with capped jittered backoff until -connect-timeout, and a worker
// that loses its coordinator connection mid-session redials and
// re-handshakes; the coordinator keeps accepting in the background and
// adopts rejoined workers at the next retry boundary. -faults installs a
// deterministic fault-injection plan (see internal/dist/faults.go for the
// spec grammar) for chaos testing.
//
// Usage:
//
//	shardd -listen :7070 -shards 2 -service chord -nodes 3 -maxdepth 6
//	shardd -connect host:7070 -shard 0 -shards 2
//	shardd -connect host:7070 -shard 1 -shards 2
//
// Workers take the scenario from the coordinator; their only required
// flags are the address and their shard slot.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	"crystalball/internal/dist"
	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
)

func main() {
	var (
		listen      = flag.String("listen", "", "coordinator mode: listen address (e.g. :7070)")
		connect     = flag.String("connect", "", "worker mode: coordinator address")
		shard       = flag.Int("shard", 0, "worker mode: this worker's shard slot")
		shards      = flag.Int("shards", 2, "total shard count")
		service     = flag.String("service", "randtree", "scenario to check (coordinator)")
		variant     = flag.String("variant", "", "scenario variant (coordinator)")
		nodes       = flag.Int("nodes", 5, "number of nodes in the initial state (coordinator)")
		fixed       = flag.Bool("fixed", false, "check the bug-fixed service variants (coordinator)")
		seed        = flag.Int64("seed", 1, "random seed (coordinator)")
		resets      = flag.Bool("resets", true, "explore node resets (coordinator)")
		connBreaks  = flag.Bool("connbreaks", false, "explore connection breaks (coordinator)")
		maxDepth    = flag.Int("maxdepth", 0, "depth bound (0 = unbounded)")
		maxStates   = flag.Int("states", 500000, "state budget across all shards")
		maxWall     = flag.Duration("wall", time.Minute, "wall-clock budget")
		maxViol     = flag.Int("violations", 3, "per-shard violation quota")
		workers     = flag.Int("workers", 1, "expansion workers per shard")
		batchSize   = flag.Int("batch", 0, "forwarded-state batch size (0 = default)")
		peerTimeout = flag.Duration("peer-timeout", dist.DefaultPeerTimeout, "declare a silent TCP peer dead after this long (negative disables)")
		connTimeout = flag.Duration("connect-timeout", 30*time.Second, "worker mode: give up dialing the coordinator after this long")
		maxRetries  = flag.Int("retries", dist.DefaultMaxRetries, "coordinator mode: round retries after shard deaths (negative = never retry)")
		stall       = flag.Duration("stall", time.Minute, "coordinator mode: declare unresponsive shards dead after this much protocol silence (0 disables)")
		faultSpec   = flag.String("faults", "", "deterministic fault-injection plan (see internal/dist/faults.go)")
	)
	flag.Parse()

	var faults *dist.FaultPlan
	if *faultSpec != "" {
		var err error
		faults, err = dist.ParseFaultPlan(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	topt := dist.TCPOptions{PeerTimeout: *peerTimeout}

	var err error
	switch {
	case *listen != "" && *connect == "":
		err = coordinate(coordOpts{
			addr:       *listen,
			shards:     *shards,
			tcp:        topt,
			faults:     faults,
			maxRetries: *maxRetries,
			stall:      *stall,
		}, dist.Setup{
			Scenario:   *service,
			Nodes:      *nodes,
			Variant:    *variant,
			Fixed:      *fixed,
			Seed:       *seed,
			Resets:     *resets,
			ConnBreaks: *connBreaks,
			Workers:    *workers,
			BatchSize:  *batchSize,
		}, mc.Budget{
			States:     *maxStates,
			Depth:      *maxDepth,
			Wall:       *maxWall,
			Violations: *maxViol,
			Workers:    *workers,
		})
	case *connect != "" && *listen == "":
		err = work(workOpts{
			addr:        *connect,
			shard:       *shard,
			shards:      *shards,
			tcp:         topt,
			faults:      faults,
			connTimeout: *connTimeout,
		})
	default:
		err = fmt.Errorf("exactly one of -listen (coordinator) or -connect (worker) is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// buildScenario constructs the search configuration a Setup describes —
// the one function both roles share, which is what keeps the shards'
// configurations bit-identical.
func buildScenario(su dist.Setup) (*mc.GState, mc.Config, error) {
	g, cfg, err := scenario.InitialState(su.Scenario, scenario.Options{
		Nodes:   su.Nodes,
		Fixed:   su.Fixed,
		Variant: su.Variant,
	})
	if err != nil {
		return nil, mc.Config{}, err
	}
	cfg.Mode = mc.Exhaustive
	cfg.Seed = su.Seed
	cfg.ExploreResets = su.Resets
	cfg.ExploreConnBreaks = su.ConnBreaks
	return g, cfg, nil
}

type coordOpts struct {
	addr       string
	shards     int
	tcp        dist.TCPOptions
	faults     *dist.FaultPlan
	maxRetries int
	stall      time.Duration
}

func coordinate(o coordOpts, su dist.Setup, budget mc.Budget) error {
	if o.shards <= 0 {
		return fmt.Errorf("-shards must be positive")
	}
	// Validate the scenario locally before any worker connects. The probe
	// doubles as the merge's violation-replay engine and as the serial
	// fallback should every worker die.
	g, cfg, err := buildScenario(su)
	if err != nil {
		return err
	}
	probe := mc.NewSearch(cfg)

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("coordinator: waiting for %d workers on %s\n", o.shards, ln.Addr())

	handshake := func(nc net.Conn) (dist.Conn, int, error) {
		conn := dist.WrapTCP(nc, o.tcp)
		m, err := conn.Recv()
		if err != nil {
			conn.Close()
			return nil, 0, fmt.Errorf("worker handshake: %w", err)
		}
		h, ok := m.(dist.Hello)
		if !ok || h.Shard < 0 || h.Shard >= o.shards || h.Shards != o.shards {
			conn.Close()
			return nil, 0, fmt.Errorf("bad worker hello %+v (want a slot in 0..%d)", m, o.shards-1)
		}
		if err := conn.Send(su); err != nil {
			conn.Close()
			return nil, 0, fmt.Errorf("worker %d setup: %w", h.Shard, err)
		}
		return conn, h.Shard, nil
	}

	conns := make([]dist.Conn, o.shards)
	for joined := 0; joined < o.shards; {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		conn, id, err := handshake(nc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coordinator: %v\n", err)
			continue
		}
		if conns[id] != nil {
			conn.Close()
			fmt.Fprintf(os.Stderr, "coordinator: duplicate hello for slot %d\n", id)
			continue
		}
		if o.faults != nil {
			conn = o.faults.Wrap(id, conn)
		}
		conns[id] = conn
		joined++
		fmt.Printf("coordinator: worker %d joined (%d/%d)\n", id, joined, o.shards)
	}

	coord := dist.NewCoordinator(conns, dist.CoordinatorConfig{
		Search:       probe,
		Root:         g,
		MaxRetries:   o.maxRetries,
		StallTimeout: o.stall,
	})
	defer coord.Shutdown()

	// Keep accepting: a worker that died and came back re-handshakes here
	// and is adopted at the coordinator's next retry boundary.
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				conn, id, err := handshake(nc)
				if err != nil {
					return
				}
				if o.faults != nil {
					conn = o.faults.Wrap(id, conn)
				}
				if err := coord.Rejoin(id, conn); err != nil {
					conn.Close()
					return
				}
				fmt.Printf("coordinator: worker %d rejoined\n", id)
			}(nc)
		}
	}()

	res, err := coord.RunRound(budget, false)
	if err != nil {
		return err
	}

	r := &res.Checker
	fmt.Printf("service=%s nodes=%d shards=%d workers/shard=%d\n", su.Scenario, su.Nodes, o.shards, budget.Workers)
	fmt.Printf("states=%d transitions=%d depth=%d elapsed=%v states/sec=%.0f\n",
		r.StatesExplored, r.Transitions, r.MaxDepthReached, r.Elapsed.Round(time.Millisecond),
		float64(r.StatesExplored)/r.Elapsed.Seconds())
	fmt.Printf("forwarded=%d received=%d remote-deduped=%d batch-flushes=%d\n",
		res.Stats.StatesForwarded, res.Stats.StatesReceived, res.Stats.RemoteDeduped, res.Stats.BatchFlushes)
	if res.Recovery.Retries > 0 || len(res.Recovery.Deaths) > 0 || res.Recovery.SerialFallback {
		fmt.Printf("recovery: %s\n", res.Recovery)
	}
	if len(r.Violations) == 0 {
		fmt.Println("no violations found")
		return nil
	}
	for i, v := range r.Violations {
		fmt.Printf("violation %d: %v at depth %d\n", i+1, v.Properties, v.Depth)
		for _, ev := range v.Path {
			fmt.Printf("  %s\n", ev.Describe())
		}
	}
	return nil
}

type workOpts struct {
	addr        string
	shard       int
	shards      int
	tcp         dist.TCPOptions
	faults      *dist.FaultPlan
	connTimeout time.Duration
}

// dialRetry dials the coordinator with capped jittered exponential backoff
// until it connects or connTimeout elapses.
func dialRetry(o workOpts) (dist.Conn, error) {
	deadline := time.Now().Add(o.connTimeout)
	backoff := 100 * time.Millisecond
	for {
		conn, err := dist.DialTCP(o.addr, o.tcp)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dial %s: gave up after %v: %w", o.addr, o.connTimeout, err)
		}
		// Full jitter keeps a herd of restarting workers from thundering.
		//crystal:allow(globalrand) reconnect jitter exists to desynchronize worker processes; a seeded per-worker stream would defeat it
		sleep := time.Duration(rand.Int63n(int64(backoff))) + backoff/2
		fmt.Fprintf(os.Stderr, "worker %d: dial %s failed (%v), retrying in %v\n", o.shard, o.addr, err, sleep.Round(time.Millisecond))
		time.Sleep(sleep)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// session handshakes on an established connection and serves shard rounds
// until the connection ends.
func session(o workOpts, conn dist.Conn) error {
	defer conn.Close()
	if o.faults != nil {
		conn = o.faults.Wrap(o.shard, conn)
	}
	if err := conn.Send(dist.Hello{Shard: o.shard, Shards: o.shards}); err != nil {
		return err
	}
	m, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("waiting for setup: %w", err)
	}
	su, ok := m.(dist.Setup)
	if !ok {
		return fmt.Errorf("expected setup, got %T", m)
	}
	g, cfg, err := buildScenario(su)
	if err != nil {
		return err
	}
	fmt.Printf("worker %d/%d: searching %s\n", o.shard, o.shards, su.Scenario)
	return dist.RunShard(conn, dist.ShardConfig{
		Index:     o.shard,
		Shards:    o.shards,
		Search:    cfg,
		Root:      g,
		BatchSize: su.BatchSize,
	})
}

func work(o workOpts) error {
	for {
		conn, err := dialRetry(o)
		if err != nil {
			return err
		}
		err = session(o, conn)
		if err == dist.ErrClosed || err == nil {
			fmt.Printf("worker %d: done\n", o.shard)
			return nil
		}
		// Anything else — coordinator death, severed link, a fault that
		// got this shard expelled — is worth reconnecting over: the
		// coordinator may still be running the session and will adopt us
		// back at its next retry boundary. dialRetry's -connect-timeout
		// bounds how long a gone coordinator keeps us looping.
		fmt.Fprintf(os.Stderr, "worker %d: session ended: %v; reconnecting\n", o.shard, err)
	}
}
