module crystalball

go 1.22
