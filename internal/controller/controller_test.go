package controller

import (
	"errors"
	"testing"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/runtime"
	"crystalball/internal/sim"
	"crystalball/internal/simnet"
	"crystalball/internal/sm"
	"crystalball/internal/snapshot"
	"crystalball/internal/testsvc"
)

func snapCfg() snapshot.Config {
	return snapshot.Config{
		Interval:       time.Second,
		Quota:          50,
		CollectTimeout: time.Second,
		Compress:       true,
		MaxRetries:     1,
	}
}

// deployWithController brings up n nodes, each with a controller.
func deployWithController(t *testing.T, n int, cfg Config) (*sim.Simulator, []*Controller) {
	t.Helper()
	s := sim.New(31)
	net := simnet.New(s, simnet.UniformPath{Latency: 5 * time.Millisecond, BwBps: 1e9})
	ids := make([]sm.NodeID, n)
	for i := range ids {
		ids[i] = sm.NodeID(i + 1)
	}
	factory := testsvc.NewWithPeers(ids...)
	cfg.Factory = factory
	var ctrls []*Controller
	for _, id := range ids {
		node := runtime.NewNode(s, net, id, factory)
		c := New(s, node, cfg, snapCfg())
		c.Start()
		ctrls = append(ctrls, c)
	}
	return s, ctrls
}

func debugCfg(limit int) Config {
	cfg := DefaultConfig(props.Set{testsvc.CounterBelow(limit)}, nil)
	cfg.SnapshotInterval = 2 * time.Second
	cfg.MCStates = 3000
	cfg.PerStateCost = 100 * time.Microsecond
	cfg.ExploreResets = false
	cfg.EnableISC = false
	return cfg
}

func TestDebuggingModePredictsFutureViolation(t *testing.T) {
	// The property "counter < 2" is not violated live (nothing bumps the
	// counter), but the checker's app-call exploration (Bump) predicts a
	// state where it would be.
	s, ctrls := deployWithController(t, 2, debugCfg(2))
	s.RunFor(30 * time.Second)
	var total int64
	for _, c := range ctrls {
		total += c.Stats.ViolationsPredicted
	}
	if total == 0 {
		t.Fatal("no future violation predicted by consequence prediction")
	}
	for _, c := range ctrls {
		if len(c.Findings()) > 0 {
			f := c.Findings()[0]
			if len(f.Path) == 0 {
				t.Fatal("finding lacks an event path")
			}
			if f.Filter != nil {
				t.Fatal("debugging mode must not install filters")
			}
		}
	}
}

func TestRoundsAndSnapshotsProceed(t *testing.T) {
	cfg := debugCfg(1000)
	cfg.MCStates = 300 // liveness of the round loop, not search depth
	s, ctrls := deployWithController(t, 3, cfg)
	s.RunFor(15 * time.Second)
	for i, c := range ctrls {
		if c.Stats.Rounds == 0 {
			t.Fatalf("controller %d never completed a round", i)
		}
		if c.LastView() == nil {
			t.Fatalf("controller %d has no snapshot view", i)
		}
	}
}

func TestSteeringInstallsFilter(t *testing.T) {
	cfg := debugCfg(2)
	cfg.Mode = ExecutionSteering
	// Disable the safety recheck here: with this toy property every
	// post-filter state still violates eventually, which would always
	// veto; the recheck has its own test below.
	cfg.CheckFilterSafety = false
	s, ctrls := deployWithController(t, 2, cfg)
	s.RunFor(40 * time.Second)
	var installed int64
	var unhelpful int64
	for _, c := range ctrls {
		installed += c.Stats.FiltersInstalled
		unhelpful += c.Stats.SteeringUnhelpful
	}
	if installed == 0 && unhelpful == 0 {
		t.Fatal("steering mode neither installed filters nor reported unhelpful")
	}
	if installed == 0 {
		t.Fatal("no filters installed")
	}
}

func TestFilterSafetyCheckVetoesUselessFilter(t *testing.T) {
	// With CounterBelow(2) every node can violate via its *own* Bump app
	// call as well, so filtering a single message does not make the
	// violation unreachable: the safety check must reject the filter.
	cfg := debugCfg(2)
	cfg.Mode = ExecutionSteering
	cfg.CheckFilterSafety = true
	s, ctrls := deployWithController(t, 2, cfg)
	s.RunFor(40 * time.Second)
	var unsafe int64
	for _, c := range ctrls {
		unsafe += c.Stats.FilterUnsafe
	}
	if unsafe == 0 {
		t.Fatal("safety recheck never rejected an unsafe filter")
	}
}

func TestVirtualMCLatencyDelaysReport(t *testing.T) {
	cfg := debugCfg(2)
	cfg.PerStateCost = 10 * time.Millisecond // expensive checker
	cfg.MCStates = 1000
	s, ctrls := deployWithController(t, 2, cfg)

	var predictionTimes []sim.Time
	for _, c := range ctrls {
		c.OnViolation = func(f Finding) { predictionTimes = append(predictionTimes, f.FoundAt) }
	}
	s.RunFor(30 * time.Second)
	if len(predictionTimes) == 0 {
		t.Skip("no prediction in window (budget too small)")
	}
	// The first snapshot completes shortly after the 2 s interval; even
	// a tiny search (>= 10 states at 10 ms each) delays the report by
	// >= 100 ms beyond that.
	if predictionTimes[0] < sim.Time(2100*time.Millisecond) {
		t.Fatalf("report arrived implausibly fast: %v", predictionTimes[0])
	}
	var st int64
	for _, c := range ctrls {
		st += c.Stats.StatesExplored
	}
	if st == 0 {
		t.Fatal("no states explored")
	}
}

func TestDistinctFindingsDedup(t *testing.T) {
	a := Finding{Properties: []string{"P"}, Path: []sm.Event{sm.TimerEvent{At: 1, Timer: "t"}}}
	b := Finding{Properties: []string{"P"}, Path: []sm.Event{sm.TimerEvent{At: 1, Timer: "t"}}}
	c := Finding{Properties: []string{"Q"}, Path: []sm.Event{sm.TimerEvent{At: 1, Timer: "t"}}}
	got := DistinctFindings([]Finding{a, b, c})
	if len(got) != 2 {
		t.Fatalf("distinct = %d, want 2", len(got))
	}
}

func TestControllerSurvivesNodeResets(t *testing.T) {
	cfg := debugCfg(1000)
	cfg.MCStates = 300
	s, ctrls := deployWithController(t, 3, cfg)
	s.After(5*time.Second, func() { ctrls[1].Node().Reset(true) })
	s.After(12*time.Second, func() { ctrls[2].Node().Reset(false) })
	s.RunFor(25 * time.Second)
	for i, c := range ctrls {
		if c.Stats.Rounds == 0 {
			t.Fatalf("controller %d stalled after resets", i)
		}
	}
}

func TestISCWiredThroughController(t *testing.T) {
	cfg := debugCfg(1) // nothing may ever exceed counter 0
	cfg.EnableISC = true
	s, ctrls := deployWithController(t, 2, cfg)
	// Drive a Bump at node 1; its gossip to node 2 would raise N to 1.
	s.After(5*time.Second, func() { ctrls[0].Node().App(testsvc.Bump{}) })
	s.RunFor(20 * time.Second)
	n2 := ctrls[1].Node()
	if n2.Stats.ISCChecks == 0 {
		t.Fatal("ISC never consulted")
	}
	if got := n2.Service().(*testsvc.Svc).N; got != 0 {
		t.Fatalf("ISC failed to protect node 2: N=%d", got)
	}
}

// TestCheckerFailureDegradesConservative pins the robustness contract for
// the checker seam: while checker rounds fail, the controller degrades to
// conservative mode — it keeps the filters of the last successful round
// installed (instead of expiring them on the usual per-run schedule),
// counts the failures, and keeps its snapshot loop running — and when the
// checker succeeds again it recovers to normal operation.
func TestCheckerFailureDegradesConservative(t *testing.T) {
	cfg := debugCfg(2)
	cfg.Mode = ExecutionSteering
	cfg.CheckFilterSafety = false
	fail := false
	cfg.CheckRound = func(mcfg mc.Config, start *mc.GState) (*mc.Result, error) {
		if fail {
			return nil, errors.New("checker process crashed")
		}
		return mc.NewSearch(mcfg).Run(start), nil
	}
	s, ctrls := deployWithController(t, 2, cfg)

	// Healthy until 10 s (filters get installed), failing 10 s - 22 s,
	// healthy again afterwards. Rounds run every 2 s.
	s.After(10*time.Second, func() { fail = true })
	type probe struct {
		conservative bool
		filters      int
		rounds       int64
	}
	var during []probe
	s.After(21*time.Second, func() {
		for _, c := range ctrls {
			during = append(during, probe{c.Conservative(), len(c.Node().Filters()), c.Stats.Rounds})
		}
	})
	s.After(22*time.Second, func() { fail = false })
	s.RunFor(34 * time.Second)

	if len(during) != len(ctrls) {
		t.Fatalf("probe captured %d controllers, want %d", len(during), len(ctrls))
	}
	filtersDuring := 0
	for i, p := range during {
		if !p.conservative {
			t.Errorf("controller %d not conservative during the failure window", i)
		}
		filtersDuring += p.filters
	}
	if filtersDuring == 0 {
		t.Errorf("conservative mode kept no filters installed")
	}
	for i, c := range ctrls {
		if c.Stats.CheckerFailures == 0 {
			t.Errorf("controller %d recorded no checker failures", i)
		}
		if c.Stats.ConservativeRounds < c.Stats.CheckerFailures {
			t.Errorf("controller %d: ConservativeRounds=%d < CheckerFailures=%d",
				i, c.Stats.ConservativeRounds, c.Stats.CheckerFailures)
		}
		if c.Conservative() {
			t.Errorf("controller %d still conservative after the checker recovered", i)
		}
		if c.Stats.Rounds <= during[i].rounds {
			t.Errorf("controller %d: snapshot loop stalled after the failure window (%d rounds, %d during)",
				i, c.Stats.Rounds, during[i].rounds)
		}
	}
}

// TestModeStringReportsUnknown: the two real modes render their names and
// any other value is reported explicitly instead of masquerading as
// deep-online-debugging.
func TestModeStringReportsUnknown(t *testing.T) {
	if got := DeepOnlineDebugging.String(); got != "deep-online-debugging" {
		t.Fatalf("DeepOnlineDebugging = %q", got)
	}
	if got := ExecutionSteering.String(); got != "execution-steering" {
		t.Fatalf("ExecutionSteering = %q", got)
	}
	if got := Mode(7).String(); got != "unknown-mode(7)" {
		t.Fatalf("Mode(7) = %q, want unknown-mode(7)", got)
	}
	if got := Mode(-1).String(); got != "unknown-mode(-1)" {
		t.Fatalf("Mode(-1) = %q, want unknown-mode(-1)", got)
	}
}
