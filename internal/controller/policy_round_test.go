package controller

import (
	"testing"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/testsvc"
)

// recordingPolicy wraps a policy and keeps every planned budget, so tests
// can watch the per-round budget trajectory of a live controller.
type recordingPolicy struct {
	inner mc.Policy
	plans []mc.Budget
}

func (r *recordingPolicy) Plan(in mc.RoundInfo) mc.Budget {
	b := r.inner.Plan(in)
	r.plans = append(r.plans, b)
	return b
}

func (r *recordingPolicy) Observe(rep mc.RoundReport) { r.inner.Observe(rep) }

// TestAdaptiveBudgetFitsSnapshotInterval is the paper's adaptive
// StopCriterion end to end: with an expensive checker (1 ms of virtual
// latency per state) and a 2 s snapshot interval, the fixed 20000-state
// budget overruns every round by 10x — the report lands 20 s after the
// snapshot it was computed from. The AdaptivePolicy observes the first
// overrun and shrinks the per-round state budget until prediction
// completes within the interval; the testsvc counter state space is
// unbounded, so the checker always has more states to explore than any
// budget allows and the fit is entirely the policy's doing.
func TestAdaptiveBudgetFitsSnapshotInterval(t *testing.T) {
	const (
		perState = time.Millisecond
		interval = 2 * time.Second
		ask      = 20000
	)
	base := func() Config {
		cfg := DefaultConfig(props.Set{testsvc.CounterBelow(1 << 30)}, nil)
		cfg.SnapshotInterval = interval
		cfg.PerStateCost = perState
		cfg.ExploreResets = false
		cfg.EnableISC = false
		return cfg
	}

	// Fixed arm: every round runs the full 20000-state ask and overruns.
	fixedCfg := base()
	fixedCfg.MCStates = ask
	fixedCfg.Policy = mc.PolicySpec{Kind: mc.PolicyFixed, Base: mc.Budget{States: ask, Workers: 1}}
	s, ctrls := deployWithController(t, 2, fixedCfg)
	s.RunFor(60 * time.Second)
	c := ctrls[0]
	if c.Stats.Rounds == 0 {
		t.Fatal("fixed arm ran no rounds")
	}
	if got := c.Stats.LastBudget.States; got != ask {
		t.Fatalf("fixed arm budget = %d, want %d", got, ask)
	}
	fixedPerRound := time.Duration(c.Stats.StatesExplored/c.Stats.Rounds) * perState
	if fixedPerRound <= interval {
		t.Fatalf("fixed arm per-round checking %v did not overrun the %v interval — scenario too small",
			fixedPerRound, interval)
	}

	// Adaptive arm: same ask, same checker cost; the policy must shrink
	// the budget so rounds land inside the interval.
	rec := &recordingPolicy{inner: &mc.AdaptivePolicy{
		Base:       mc.Budget{States: ask, Workers: 1, Violations: 8},
		MaxWorkers: 1, // virtual checker latency is worker-independent
	}}
	adaptCfg := base()
	adaptCfg.Policy = mc.PolicySpec{Make: func() mc.Policy { return rec }}
	s2, ctrls2 := deployWithController(t, 1, adaptCfg)
	s2.RunFor(60 * time.Second)
	c2 := ctrls2[0]
	if len(rec.plans) < 2 {
		t.Fatalf("adaptive arm planned only %d rounds", len(rec.plans))
	}
	if rec.plans[0].States != ask {
		t.Fatalf("adaptive first round budget = %d, want the %d ask", rec.plans[0].States, ask)
	}
	for i, plan := range rec.plans[1:] {
		if plan.States >= ask {
			t.Fatalf("round %d: adaptive budget %d did not shrink below the %d ask", i+2, plan.States, ask)
		}
		if fit := time.Duration(plan.States) * perState; fit > interval {
			t.Fatalf("round %d: planned budget %d states = %v of checking, exceeds the %v interval",
				i+2, plan.States, fit, interval)
		}
	}
	if got := c2.Stats.LastBudget; got.States >= ask {
		t.Fatalf("final adaptive budget %d never shrank", got.States)
	}
	// The adaptive arm completes more rounds in the same virtual time
	// than the overrunning fixed arm at the same per-state cost.
	if c2.Stats.Rounds <= c.Stats.Rounds {
		t.Fatalf("adaptive arm completed %d rounds, fixed arm %d — shrinking bought nothing",
			c2.Stats.Rounds, c.Stats.Rounds)
	}
}

// TestAdaptiveBudgetGrowsWhenCheap: with a cheap checker (10 us per state)
// and a small first-round budget, the policy grows the per-round budget
// beyond its base once it observes the available headroom.
func TestAdaptiveBudgetGrowsWhenCheap(t *testing.T) {
	rec := &recordingPolicy{inner: &mc.AdaptivePolicy{
		Base:       mc.Budget{States: 500, Workers: 1, Violations: 8},
		MaxWorkers: 1,
	}}
	cfg := DefaultConfig(props.Set{testsvc.CounterBelow(1 << 30)}, nil)
	cfg.SnapshotInterval = 2 * time.Second
	cfg.PerStateCost = 10 * time.Microsecond
	cfg.ExploreResets = false
	cfg.EnableISC = false
	cfg.Policy = mc.PolicySpec{Make: func() mc.Policy { return rec }}
	s, _ := deployWithController(t, 1, cfg)
	s.RunFor(30 * time.Second)
	if len(rec.plans) < 2 {
		t.Fatalf("planned only %d rounds", len(rec.plans))
	}
	grown := false
	for _, plan := range rec.plans[1:] {
		if plan.States > 500 {
			grown = true
		}
		// Growth must still respect the interval.
		if fit := time.Duration(plan.States) * cfg.PerStateCost; fit > cfg.SnapshotInterval {
			t.Fatalf("grown budget %d states = %v of checking, exceeds the %v interval",
				plan.States, fit, cfg.SnapshotInterval)
		}
	}
	if !grown {
		t.Fatalf("budget never grew past the 500-state base: %v", rec.plans)
	}
}
