package controller_test

import (
	"testing"
	"time"

	"crystalball/internal/dist"
	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
)

// TestMergedReportDrivesPolicy pins the distributed search's controller
// seam: the coordinator merges per-shard reports into one mc.RoundReport,
// and that merged report must drive the same Policy machinery a serial
// round drives. Two adaptive policies observe the same round — one fed
// the dist coordinator's merged report, one fed a serial report with the
// identical numbers — and must plan identical budgets for every
// subsequent round. This is what lets a controller swap its engine for a
// shard fleet without touching its Plan/Observe loop.
func TestMergedReportDrivesPolicy(t *testing.T) {
	g, cfg, err := scenario.InitialState("chord", scenario.Options{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = mc.Exhaustive
	cfg.Seed = 11

	res, err := dist.Local(dist.LocalConfig{
		Shards: 2,
		Search: cfg,
		Root:   g,
		Budget: mc.Budget{Depth: 4, Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	merged := res.Round
	if merged.States == 0 || merged.States != res.Checker.StatesExplored {
		t.Fatalf("merged report states = %d, checker explored %d", merged.States, res.Checker.StatesExplored)
	}

	serial := mc.RoundReport{
		Budget:     merged.Budget,
		States:     merged.States,
		Violations: merged.Violations,
		Pruned:     merged.Pruned,
		Elapsed:    merged.Elapsed,
	}

	spec := mc.PolicySpec{Kind: mc.PolicyAdaptive, Base: mc.Budget{States: 4000, Workers: 1}}
	distPol, serialPol := spec.MustNew(), spec.MustNew()
	info := mc.RoundInfo{
		Round:         1,
		SnapshotBytes: g.EncodedSize(),
		SnapshotNodes: len(g.Nodes()),
		Interval:      10 * time.Second,
	}
	if a, b := distPol.Plan(info), serialPol.Plan(info); a != b {
		t.Fatalf("pre-observe plans diverge: %+v vs %+v", a, b)
	}
	distPol.Observe(merged)
	serialPol.Observe(serial)
	for round := 2; round <= 4; round++ {
		info.Round = round
		a, b := distPol.Plan(info), serialPol.Plan(info)
		if a != b {
			t.Fatalf("round %d: merged-report plan %+v != serial-report plan %+v", round, a, b)
		}
		rep := mc.RoundReport{Budget: a, States: a.States, Elapsed: time.Second}
		distPol.Observe(rep)
		serialPol.Observe(rep)
	}
}
