package controller

import (
	"testing"
	"time"

	"crystalball/internal/props"
	"crystalball/internal/runtime"
	"crystalball/internal/sim"
	"crystalball/internal/simnet"
	"crystalball/internal/sm"
	"crystalball/internal/testsvc"
)

// awareSvc wraps testsvc.Svc with a service-specific steering policy: on a
// predicted inconsistency it freezes its counter gossip (clears peers).
type awareSvc struct {
	testsvc.Svc
	Predictions int
	Frozen      bool
}

func newAware(peers ...sm.NodeID) sm.Factory {
	inner := testsvc.NewWithPeers(peers...)
	return func(self sm.NodeID) sm.Service {
		s := inner(self).(*testsvc.Svc)
		return &awareSvc{Svc: *s}
	}
}

// Clone must preserve the wrapper.
func (a *awareSvc) Clone() sm.Service {
	inner := a.Svc.Clone().(*testsvc.Svc)
	return &awareSvc{Svc: *inner, Predictions: a.Predictions, Frozen: a.Frozen}
}

func (a *awareSvc) HandlePredictedInconsistency(ctx sm.Context, properties []string, culprit sm.Event) {
	a.Predictions++
	a.Frozen = true
	a.Peers = map[sm.NodeID]bool{}
}

func TestSteeringAwareServiceReceivesPredictions(t *testing.T) {
	s := sim.New(41)
	net := simnet.New(s, simnet.UniformPath{Latency: 5 * time.Millisecond, BwBps: 1e9})
	factory := newAware(1, 2)
	counterBelow := props.Property{
		Name: "CounterBelowLimit",
		Check: func(v *props.View) bool {
			for _, id := range v.IDs() {
				if a, ok := v.Get(id).Svc.(*awareSvc); ok && a.N >= 2 {
					return false
				}
			}
			return true
		},
	}
	cfg := DefaultConfig(props.Set{counterBelow}, factory)
	cfg.Mode = ExecutionSteering
	cfg.SnapshotInterval = 2 * time.Second
	cfg.MCStates = 2000
	cfg.PerStateCost = 50 * time.Microsecond
	cfg.EnableISC = false
	var ctrls []*Controller
	for _, id := range []sm.NodeID{1, 2} {
		node := runtime.NewNode(s, net, id, factory)
		c := New(s, node, cfg, snapCfg())
		c.Start()
		ctrls = append(ctrls, c)
	}
	s.RunFor(30 * time.Second)

	var delivered int64
	var predictions int
	var filters int64
	for _, c := range ctrls {
		delivered += c.Stats.PredictionsDelivered
		filters += c.Stats.FiltersInstalled
		predictions += c.Node().Service().(*awareSvc).Predictions
	}
	if delivered == 0 {
		t.Fatal("no predictions delivered to the steering-aware service")
	}
	if predictions == 0 {
		t.Fatal("service handler never invoked")
	}
	if filters != 0 {
		t.Fatal("steering-aware services must not get generic filters")
	}
	// The service policy (freezing gossip) must have taken effect.
	frozen := false
	for _, c := range ctrls {
		if c.Node().Service().(*awareSvc).Frozen {
			frozen = true
		}
	}
	if !frozen {
		t.Fatal("service-specific policy did not run")
	}
}

func TestNotifyPredictionOnUnawareService(t *testing.T) {
	s := sim.New(42)
	net := simnet.New(s, simnet.UniformPath{Latency: 5 * time.Millisecond, BwBps: 1e9})
	node := runtime.NewNode(s, net, 1, testsvc.NewWithPeers(1, 2))
	if node.NotifyPrediction([]string{"P"}, nil) {
		t.Fatal("plain services must report not-steering-aware")
	}
}
