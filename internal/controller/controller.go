// Package controller implements the CrystalBall controller of the paper's
// Figure 7: it periodically collects a consistent snapshot of the node's
// neighborhood, feeds it (with the local checkpoint) to the consequence-
// prediction model checker, and acts on predicted violations.
//
// Two operating modes mirror the paper:
//
//   - DeepOnlineDebugging: predicted violations are recorded as findings;
//   - ExecutionSteering: the controller derives an event filter from the
//     earliest controllable event of the violation path ("our current
//     policy is to steer the execution as early as possible"), re-runs
//     consequence prediction with the filter applied to check the filter
//     itself is safe, and installs it into the runtime. Filters are removed
//     after every model-checking run; at the start of each run, previously
//     discovered error paths are replayed against the fresh snapshot and
//     filters are immediately reinstalled if the violation still reproduces.
//
// Because the paper runs the checker as a separate process that races the
// live system, the controller charges a configurable virtual latency per
// explored state and only delivers the checker's report after that much
// simulated time: a bug that fires before the report lands must be caught
// by the immediate safety check (or not at all), which is exactly the
// decomposition Figure 14 measures.
package controller

import (
	"fmt"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/runtime"
	"crystalball/internal/sim"
	"crystalball/internal/sm"
	"crystalball/internal/snapshot"
)

// Mode selects what the controller does with predicted violations.
type Mode int

// Controller modes (paper section 3).
const (
	// DeepOnlineDebugging only records violation reports.
	DeepOnlineDebugging Mode = iota
	// ExecutionSteering installs event filters to avoid predicted
	// violations, with the immediate safety check as a fallback.
	ExecutionSteering
)

func (m Mode) String() string {
	switch m {
	case DeepOnlineDebugging:
		return "deep-online-debugging"
	case ExecutionSteering:
		return "execution-steering"
	default:
		// An unknown mode is a configuration bug; report it instead of
		// silently rendering it as one of the real modes.
		return fmt.Sprintf("unknown-mode(%d)", int(m))
	}
}

// Config parameterises a controller.
type Config struct {
	Mode  Mode
	Props props.Set
	// GlobalProps are cross-node properties checked by every
	// consequence-prediction round alongside Props. A global violation
	// (diverged replicas, conflicting decisions) derives corrective
	// filters and steers the execution exactly as a local one does. The
	// immediate safety check stays on Props alone: ISC consults a
	// neighborhood view that is partial by construction, while global
	// properties earn their keep on the checker's complete views.
	GlobalProps props.GlobalSet
	// Factory rebuilds service instances from checkpoints.
	Factory sm.Factory
	// SnapshotInterval is the gap between model-checking rounds
	// (paper: checkpointing interval 10 s).
	SnapshotInterval time.Duration
	// Policy declares the per-round exploration budget policy: the
	// controller builds one fresh Policy instance from this spec,
	// consults Plan before every consequence-prediction round (snapshot
	// size, round number, snapshot interval) and feeds Observe the
	// round's report afterwards. Zero Base fields are filled from the
	// deprecated MCStates/MCDepth/Workers scalars, and a zero spec
	// reproduces exactly the old fixed per-round budget.
	Policy mc.PolicySpec
	// MCStates bounds consequence prediction per round.
	//
	// Deprecated: set Policy.Base.States; this scalar fills the policy
	// base only where it is zero.
	MCStates int
	// MCDepth bounds search depth (0 = unbounded).
	//
	// Deprecated: set Policy.Base.Depth.
	MCDepth int
	// Workers is the checker's worker-pool size per round (0 =
	// GOMAXPROCS); the filter-safety recheck runs on the same engine
	// with the same pool size.
	//
	// Deprecated: set Policy.Base.Workers.
	Workers int
	// PerStateCost is the virtual model-checking time charged per
	// explored state; the report arrives only after the total latency.
	PerStateCost time.Duration
	// ExploreResets lets the checker consider node-reset faults.
	ExploreResets bool
	// ExploreConnBreaks lets the checker consider spontaneous
	// connection-break faults (the Chord Figure 10 class hinges on
	// them).
	ExploreConnBreaks bool
	// MaxResetsPerPath bounds resets along one predicted path (0 =
	// checker default).
	MaxResetsPerPath int
	// Reduce enables sleep-set partial-order reduction in the
	// consequence-prediction rounds (mc.Config.Reduce). The reduced
	// search claims the identical state set and reports the identical
	// violations — it just executes fewer handler calls to get there —
	// so predictions, filters and the virtual round latency (which is
	// charged per explored state) are unchanged; only host wall time
	// drops. Scenario.Reduction is the per-scenario default.
	Reduce bool
	// EnableISC turns on the immediate safety check as a fallback.
	EnableISC bool
	// CheckFilterSafety re-runs consequence prediction with a candidate
	// filter before installing it (ablation: disable to measure the
	// paper's safety argument).
	CheckFilterSafety bool
	// ReplayPaths replays previously found error paths at the start of
	// each round to quickly reinstall still-relevant filters.
	ReplayPaths bool
	// MaxStoredPaths bounds remembered error paths.
	MaxStoredPaths int
	// Seed drives checker determinism.
	Seed int64
	// CheckRound, if set, replaces the embedded consequence-prediction
	// engine for the full per-round run (the filter-safety recheck and
	// path replay still use the embedded engine). It exists so the round
	// can *fail*: the paper runs the checker as a separate process, and a
	// separate process can crash, wedge, or time out. A nil error with a
	// nil result counts as a failure too. When a round fails, the
	// controller degrades to conservative mode — see Stats — instead of
	// blocking the snapshot loop or dropping its installed filters.
	CheckRound func(mc.Config, *mc.GState) (*mc.Result, error)
}

// DefaultConfig returns the configuration used across the experiments.
func DefaultConfig(ps props.Set, factory sm.Factory) Config {
	return Config{
		Mode:              DeepOnlineDebugging,
		Props:             ps,
		Factory:           factory,
		SnapshotInterval:  10 * time.Second,
		MCStates:          20000,
		MCDepth:           0,
		PerStateCost:      300 * time.Microsecond,
		ExploreResets:     true,
		EnableISC:         true,
		CheckFilterSafety: true,
		ReplayPaths:       true,
		MaxStoredPaths:    16,
	}
}

// defaultMaxViolations is the per-round violation quota every policy base
// inherits unless it sets its own.
const defaultMaxViolations = 8

// policySpec resolves the controller's budget-policy spec: the declared
// spec with zero Base fields filled from the deprecated scalars and the
// controller defaults.
func (c *Config) policySpec() mc.PolicySpec {
	spec := c.Policy
	if spec.Base.States == 0 {
		spec.Base.States = c.MCStates
	}
	if spec.Base.Depth == 0 {
		spec.Base.Depth = c.MCDepth
	}
	if spec.Base.Workers == 0 {
		spec.Base.Workers = c.Workers
	}
	if spec.Base.Violations == 0 {
		spec.Base.Violations = defaultMaxViolations
	}
	return spec
}

// Finding is one recorded violation prediction.
type Finding struct {
	Properties []string
	Path       []sm.Event
	Hash       uint64
	FoundAt    sim.Time
	// Filter is the corrective action chosen (nil when none exists or
	// in debugging mode).
	Filter *sm.Filter
}

// Signature identifies the finding's bug class for deduplication: the
// violated properties plus the kind of the path's final event (handler at
// fault), with node identities stripped so the same bug found at different
// nodes counts once.
func (f Finding) Signature() string {
	sig := ""
	for _, p := range f.Properties {
		sig += p + "|"
	}
	if n := len(f.Path); n > 0 {
		sig += EventKind(f.Path[n-1])
	}
	return sig
}

// EventKind renders an event's identity-free kind ("msg:Join",
// "timer:recovery", "reset", ...). It shares the checker's definition, so
// finding signatures and mc.Violation signatures agree.
func EventKind(ev sm.Event) string { return mc.EventKind(ev) }

// Stats counts controller activity; the steering experiments read these.
type Stats struct {
	Rounds              int64
	SnapshotFailures    int64
	ViolationsPredicted int64
	FiltersInstalled    int64
	SteeringUnhelpful   int64 // no corrective action, or filter deemed unsafe
	FilterUnsafe        int64 // filters rejected by the safety recheck
	ReplayReinstalls    int64
	StatesExplored      int64
	// TransitionsPruned, SleepHits, Steals and StealFails aggregate the
	// checker's partial-order-reduction and work-stealing counters over
	// all rounds (including filter-safety rechecks). Steal counts are
	// scheduling telemetry, not part of the deterministic search result.
	TransitionsPruned int64
	SleepHits         int64
	Steals            int64
	StealFails        int64
	MCVirtualTime     time.Duration
	// CheckerFailures counts checker rounds that returned an error (a
	// crashed/timed-out checker process in the paper's deployment). Each
	// failure flips the controller into conservative mode: the filters
	// installed by the last successful round stay in place — steering on
	// stale but vetted predictions — rather than expiring on the paper's
	// "after every model checking run" schedule, because the run never
	// completed. The next successful round clears and re-derives them as
	// usual.
	CheckerFailures int64
	// ConservativeRounds counts rounds the controller spent in
	// conservative mode (the failing round and every subsequent round
	// until a checker run succeeds again).
	ConservativeRounds int64
	// LastBudget is the budget the policy planned for the most recent
	// (non-skipped) round.
	LastBudget mc.Budget
	// PredictionsDelivered counts predictions handed to steering-aware
	// services (sm.SteeringAware) instead of generic filters.
	PredictionsDelivered int64
}

// Controller drives CrystalBall for one node.
type Controller struct {
	sim  *sim.Simulator
	node *runtime.Node
	mgr  *snapshot.Manager
	cfg  Config
	// policy plans each round's exploration budget and absorbs the
	// round reports; one private, stateful instance per controller.
	policy mc.Policy

	lastView *props.View
	findings []Finding
	paths    []Finding // stored error paths for replay (with filters)
	busy     bool
	lastHash uint64 // hash of the last fully-searched snapshot
	// conservative is set while the node is coasting on the previous
	// round's filters after a checker failure (Stats.CheckerFailures).
	conservative bool

	// OnViolation, if set, is called when a report with violations is
	// processed (used by experiments to observe prediction timing).
	OnViolation func(f Finding)

	Stats Stats
}

// New attaches a controller to a node. The node gets a checkpoint manager
// (snapCfg) and, if cfg.EnableISC, the immediate safety check wired to the
// controller's latest neighborhood snapshot.
func New(s *sim.Simulator, node *runtime.Node, cfg Config, snapCfg snapshot.Config) *Controller {
	policy, err := cfg.policySpec().New()
	if err != nil {
		// An unresolvable policy kind is a configuration programming
		// error (Deploy validates user-facing paths before reaching
		// here), like registering a scenario without a factory.
		panic(fmt.Sprintf("controller: %v", err))
	}
	c := &Controller{
		sim:    s,
		node:   node,
		mgr:    snapshot.NewManager(s, node, snapCfg),
		cfg:    cfg,
		policy: policy,
	}
	if cfg.EnableISC {
		node.EnableISC(cfg.Props, func() *props.View { return c.lastView })
	}
	return c
}

// Node returns the underlying runtime node.
func (c *Controller) Node() *runtime.Node { return c.node }

// Manager returns the checkpoint manager.
func (c *Controller) Manager() *snapshot.Manager { return c.mgr }

// Findings returns all recorded violation predictions.
func (c *Controller) Findings() []Finding { return c.findings }

// LastView returns the most recent decoded neighborhood snapshot.
func (c *Controller) LastView() *props.View { return c.lastView }

// Conservative reports whether the controller is currently degraded to
// conservative mode: its last checker round failed, so it is steering on
// the filters of the last successful round instead of fresh predictions.
func (c *Controller) Conservative() bool { return c.conservative }

// Start begins periodic snapshot + model-checking rounds.
func (c *Controller) Start() { c.scheduleRound(c.cfg.SnapshotInterval) }

func (c *Controller) scheduleRound(d time.Duration) {
	c.sim.After(d, c.round)
}

func (c *Controller) round() {
	if c.busy {
		c.scheduleRound(c.cfg.SnapshotInterval)
		return
	}
	c.busy = true
	neighbors := c.node.Service().Neighbors()
	c.mgr.Collect(neighbors, c.onSnapshot)
}

func (c *Controller) onSnapshot(snap *snapshot.Snapshot) {
	if snap == nil || len(snap.States) == 0 {
		c.Stats.SnapshotFailures++
		c.busy = false
		c.scheduleRound(c.cfg.SnapshotInterval)
		return
	}
	c.Stats.Rounds++
	// Decode the checkpoints into service instances; this state is both
	// the checker's start state and the ISC's evaluation context.
	start := mc.NewGState()
	view := props.NewView()
	for id, data := range snap.States {
		svc, timers, err := sm.DecodeFullState(c.cfg.Factory, id, data)
		if err != nil {
			continue
		}
		start.AddNode(id, svc, timers)
		// The view holds independent clones so later checker mutations
		// cannot alias it.
		view.Add(id, svc.Clone(), timers)
	}
	c.lastView = view

	// A snapshot identical to the last fully-searched one cannot yield
	// new predictions, so the full model-checking run is skipped — and
	// since filters are removed "after every model checking run", a
	// skipped run leaves the installed filters in place. The policy
	// neither plans nor observes a skipped round: nothing is explored,
	// so Plan calls correspond 1:1 with rounds that actually search.
	if h := start.Hash(); h == c.lastHash {
		if c.conservative {
			// A skipped run also leaves the stale filters in place, so
			// the coasting continues to be counted.
			c.Stats.ConservativeRounds++
		}
		c.busy = false
		c.scheduleRound(c.cfg.SnapshotInterval)
		return
	}

	// The policy plans this round's exploration budget from what is
	// known before the search: the round number, the snapshot's encoded
	// size and the interval the round must fit inside. This replaces the
	// old verbatim MCStates/Workers copy with the paper's adaptive
	// StopCriterion seam.
	plan := c.policy.Plan(mc.RoundInfo{
		Round:         int(c.Stats.Rounds),
		SnapshotBytes: start.EncodedSize(),
		SnapshotNodes: len(start.Nodes()),
		Interval:      c.cfg.SnapshotInterval,
	})
	c.Stats.LastBudget = plan
	searchCfg := mc.Config{
		Props:             c.cfg.Props,
		GlobalProps:       c.cfg.GlobalProps,
		Factory:           c.cfg.Factory,
		Mode:              mc.Consequence,
		Budget:            plan,
		ExploreResets:     c.cfg.ExploreResets,
		ExploreConnBreaks: c.cfg.ExploreConnBreaks,
		MaxResetsPerPath:  c.cfg.MaxResetsPerPath,
		Reduce:            c.cfg.Reduce,
		Seed:              c.cfg.Seed,
	}

	// The full consequence-prediction run executes synchronously here, in
	// host time, *before* any filter-expiry scheduling — the run consumes
	// no virtual time itself (its report is delivered after the virtual
	// latency below), so the reorder is invisible to the simulation, but
	// it means a failed run can return without touching the installed
	// filters. The paper expires filters "after every model checking
	// run"; a run that errored never completed, so the node degrades to
	// conservative mode — keeping the last successful round's filters —
	// rather than dropping its protection or blocking the snapshot loop.
	res, cerr := c.checkRound(searchCfg, start)
	if cerr == nil && res == nil {
		cerr = fmt.Errorf("checker returned no report")
	}
	if cerr != nil {
		c.Stats.CheckerFailures++
		c.Stats.ConservativeRounds++
		c.conservative = true
		// lastHash stays at the last *successful* search, so the next
		// snapshot is re-checked even if the state did not move.
		c.busy = false
		c.scheduleRound(c.cfg.SnapshotInterval)
		return
	}
	c.conservative = false

	// Step 1 (paper, "Rechecking Previously Discovered Violations"): the
	// first thing the checker does is replay stored error paths; filters
	// for paths that still violate are reinstalled near-instantly.
	var reinstall []sm.Filter
	replayStates := 0
	if c.cfg.ReplayPaths && c.cfg.Mode == ExecutionSteering {
		replayer := mc.NewSearch(searchCfg)
		for _, f := range c.paths {
			if f.Filter == nil {
				continue
			}
			replayStates += len(f.Path)
			if violated := replayer.Replay(start, f.Path); len(violated) > 0 {
				reinstall = append(reinstall, *f.Filter)
			}
		}
	}
	replayLatency := time.Duration(replayStates) * c.cfg.PerStateCost
	c.sim.After(replayLatency, func() {
		// Filters from the previous round expire now; confirmed ones
		// return immediately.
		c.node.ClearFilters()
		for _, f := range reinstall {
			c.Stats.ReplayReinstalls++
			c.Stats.FiltersInstalled++
			c.node.InstallFilter(f)
		}
	})

	c.lastHash = start.Hash()

	// Step 2: account the full run. The search already executed above but
	// its report is delivered only after the virtual model-checking
	// latency, reproducing the checker/system race.
	c.Stats.StatesExplored += int64(res.StatesExplored)
	c.observeCounters(res)
	mcLatency := replayLatency + time.Duration(res.StatesExplored)*c.cfg.PerStateCost
	c.Stats.MCVirtualTime += mcLatency
	// Feed the policy the round report. Elapsed is the virtual checker
	// latency of the run itself (the clock the checker/system race is
	// measured in), not host wall time, so adaptive planning is
	// deterministic under simulation. Workers carries the pool size the
	// engine actually resolved (a planned 0 means GOMAXPROCS) so
	// per-worker throughput estimates divide by the real count — and
	// since this virtual clock is worker-independent, the estimate then
	// makes adaptive worker growth a planned-capacity no-op here, while
	// a wall-clock deployment would see the real speedup.
	ranWith := plan
	ranWith.Workers = res.Workers
	c.policy.Observe(mc.RoundReport{
		Budget:     ranWith,
		States:     res.StatesExplored,
		Violations: len(res.Violations),
		Pruned:     res.TransitionsPruned,
		Elapsed:    time.Duration(res.StatesExplored) * c.cfg.PerStateCost,
	})
	c.sim.After(mcLatency, func() {
		c.processReport(start, searchCfg, res)
		c.busy = false
		c.scheduleRound(c.cfg.SnapshotInterval)
	})
}

func (c *Controller) processReport(start *mc.GState, searchCfg mc.Config, res *mc.Result) {
	// Different violations in one report often derive the same corrective
	// filter (one bad handler reached along several interleavings); the
	// safety verdict is cached per filter so each is checked — and
	// installed — once per round.
	verdicts := make(map[string]bool)
	installed := make(map[string]bool)
	for _, v := range res.Violations {
		c.Stats.ViolationsPredicted++
		finding := Finding{
			Properties: v.Properties,
			Path:       v.Path,
			Hash:       v.StateHash,
			FoundAt:    c.sim.Now(),
		}
		if c.cfg.Mode == ExecutionSteering {
			// A steering-aware service gets the prediction directly
			// (the paper's "special programming language exception"
			// path) and applies its own policy; otherwise fall back
			// to the generic event-filter mechanism.
			if _, aware := c.node.Service().(sm.SteeringAware); aware {
				var culprit sm.Event
				for _, ev := range v.Path {
					if ev.Node() == c.node.ID {
						culprit = ev
						break
					}
				}
				c.node.NotifyPrediction(v.Properties, culprit)
				c.Stats.PredictionsDelivered++
				c.recordFinding(finding)
				if c.OnViolation != nil {
					c.OnViolation(finding)
				}
				continue
			}
			if f, ok := c.correctiveFilter(v.Path); ok {
				key := f.String()
				safe, checked := verdicts[key]
				if !checked {
					safe = !c.cfg.CheckFilterSafety || c.filterIsSafe(start, searchCfg, f)
					verdicts[key] = safe
				}
				switch {
				case !safe:
					c.Stats.FilterUnsafe++
					c.Stats.SteeringUnhelpful++
				case installed[key]:
					// Same filter already covers this violation.
					finding.Filter = &f
				default:
					installed[key] = true
					finding.Filter = &f
					c.Stats.FiltersInstalled++
					c.node.InstallFilter(f)
				}
			} else {
				c.Stats.SteeringUnhelpful++
			}
		}
		c.recordFinding(finding)
		if c.OnViolation != nil {
			c.OnViolation(finding)
		}
	}
}

// correctiveFilter picks the earliest event of the path that this node can
// block: a message delivered to it, or one of its own timer/app events.
func (c *Controller) correctiveFilter(path []sm.Event) (sm.Filter, bool) {
	for _, ev := range path {
		if ev.Node() != c.node.ID {
			continue
		}
		if f, ok := sm.FilterForEvent(ev); ok {
			return f, true
		}
	}
	return sm.Filter{}, false
}

// checkRound runs one full consequence-prediction round through the
// configured seam, defaulting to the embedded engine (which cannot fail).
func (c *Controller) checkRound(cfg mc.Config, start *mc.GState) (*mc.Result, error) {
	if c.cfg.CheckRound != nil {
		return c.cfg.CheckRound(cfg, start)
	}
	return mc.NewSearch(cfg).Run(start), nil
}

// filterIsSafe re-runs consequence prediction with the candidate filter's
// corrective action applied; the filter is safe when no violation remains
// reachable within the budget (paper, "Ensuring Safety of Event Filter
// Actions").
func (c *Controller) filterIsSafe(start *mc.GState, searchCfg mc.Config, f sm.Filter) bool {
	cfg := searchCfg
	cfg.Filters = []sm.Filter{f}
	cfg.Budget.Violations = 1
	// The safety check is a second, cheaper pass on half the round's
	// planned state budget.
	cfg.Budget.States = searchCfg.Budget.States / 2
	res := mc.NewSearch(cfg).Run(start)
	c.Stats.StatesExplored += int64(res.StatesExplored)
	c.observeCounters(res)
	return len(res.Violations) == 0
}

// observeCounters folds one search's reduction and work-stealing counters
// into the controller stats.
func (c *Controller) observeCounters(res *mc.Result) {
	c.Stats.TransitionsPruned += int64(res.TransitionsPruned)
	c.Stats.SleepHits += int64(res.SleepHits)
	c.Stats.Steals += int64(res.Steals)
	c.Stats.StealFails += int64(res.StealFails)
}

func (c *Controller) recordFinding(f Finding) {
	c.findings = append(c.findings, f)
	if f.Filter != nil || c.cfg.Mode == DeepOnlineDebugging {
		c.paths = append(c.paths, f)
		if len(c.paths) > c.cfg.MaxStoredPaths {
			c.paths = c.paths[len(c.paths)-c.cfg.MaxStoredPaths:]
		}
	}
}

// DistinctFindings deduplicates findings by bug-class signature; the
// Table 1 experiment reports these.
func DistinctFindings(findings []Finding) []Finding {
	seen := make(map[string]bool)
	var out []Finding
	for _, f := range findings {
		sig := f.Signature()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, f)
	}
	return out
}
