package mc

import (
	"testing"
	"time"

	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// toy is a minimal test service: nodes exchange Ping messages carrying a
// counter; a node whose counter reaches a target value is "poisoned". A
// reset clears the counter. The service also keeps a naive peers set so
// reset exploration has neighbors to notify.
type toy struct {
	self    sm.NodeID
	counter int
	peers   map[sm.NodeID]bool
	errs    int
}

type ping struct{ N int }

func (ping) MsgType() string           { return "Ping" }
func (ping) Size() int                 { return 8 }
func (p ping) EncodeMsg(e *sm.Encoder) { e.Int(p.N) }

type kick struct{}

func (kick) CallName() string         { return "Kick" }
func (kick) EncodeCall(e *sm.Encoder) {}

func newToy(self sm.NodeID) sm.Service {
	return &toy{self: self, peers: make(map[sm.NodeID]bool)}
}

func (t *toy) Init(ctx sm.Context) {}

func (t *toy) HandleMessage(ctx sm.Context, from sm.NodeID, msg sm.Message) {
	p, ok := msg.(ping)
	if !ok {
		return
	}
	t.peers[from] = true
	if p.N > t.counter {
		t.counter = p.N
	}
	// Bounce back an incremented ping until a limit, creating a chain of
	// causally related events the checker can follow.
	if p.N < 10 {
		ctx.Send(from, ping{N: p.N + 1})
	}
}

func (t *toy) HandleTimer(ctx sm.Context, tid sm.TimerID) {
	if tid == "tick" {
		t.counter++
		ctx.SetTimer("tick", sm.Second)
	}
}

func (t *toy) HandleApp(ctx sm.Context, call sm.AppCall) {
	if call.CallName() == "Kick" {
		for p := range t.peers {
			ctx.Send(p, ping{N: t.counter + 1})
		}
	}
}

func (t *toy) HandleTransportError(ctx sm.Context, peer sm.NodeID) {
	t.errs++
	delete(t.peers, peer)
}

func (t *toy) Neighbors() []sm.NodeID { return sm.SortedNodes(t.peers) }

func (t *toy) Clone() sm.Service {
	return &toy{self: t.self, counter: t.counter, peers: sm.CloneNodeSet(t.peers), errs: t.errs}
}

func (t *toy) EncodeState(e *sm.Encoder) {
	e.NodeID(t.self)
	e.Int(t.counter)
	e.NodeSet(t.peers)
	e.Int(t.errs)
}

func (t *toy) DecodeState(d *sm.Decoder) error {
	t.self = d.NodeID()
	t.counter = d.Int()
	t.peers = d.NodeSet()
	t.errs = d.Int()
	return d.Err()
}

func (t *toy) ServiceName() string { return "toy" }

func (t *toy) ModelAppCalls() []sm.AppCall { return []sm.AppCall{kick{}} }

// poisonAt returns a property violated when any node's counter reaches n.
func poisonAt(n int) props.Set {
	return props.Set{{
		Name: "CounterBelowLimit",
		Check: func(v *props.View) bool {
			for _, id := range v.IDs() {
				if v.Get(id).Svc.(*toy).counter >= n {
					return false
				}
			}
			return true
		},
	}}
}

// twoNodeStart builds a 2-node start state with a ping in flight.
func twoNodeStart() *GState {
	g := NewGState()
	a, b := newToy(1).(*toy), newToy(2).(*toy)
	a.peers[2] = true
	b.peers[1] = true
	g.AddNode(1, a, nil)
	g.AddNode(2, b, nil)
	g.AddMessage(1, 2, ping{N: 1})
	return g
}

func TestExhaustiveFindsShallowViolation(t *testing.T) {
	s := NewSearch(Config{
		Props:     poisonAt(3),
		Factory:   newToy,
		Mode:      Exhaustive,
		MaxStates: 10000,
	})
	res := s.Run(twoNodeStart())
	if len(res.Violations) == 0 {
		t.Fatal("exhaustive search missed a reachable violation")
	}
	v := res.Violations[0]
	if v.Depth == 0 || len(v.Path) != v.Depth {
		t.Fatalf("bad violation path: depth=%d len=%d", v.Depth, len(v.Path))
	}
	if v.Properties[0] != "CounterBelowLimit" {
		t.Fatalf("wrong property: %v", v.Properties)
	}
}

func TestConsequenceFindsSameViolation(t *testing.T) {
	s := NewSearch(Config{
		Props:     poisonAt(3),
		Factory:   newToy,
		Mode:      Consequence,
		MaxStates: 10000,
	})
	res := s.Run(twoNodeStart())
	if len(res.Violations) == 0 {
		t.Fatal("consequence prediction missed the violation")
	}
}

func TestConsequenceExploresFewerStates(t *testing.T) {
	// With timers on both nodes the exhaustive search interleaves
	// internal actions freely; consequence prediction prunes repeats of
	// (node, local state) internal expansions and must explore fewer
	// states to the same depth.
	mk := func(mode Mode) *Result {
		g := NewGState()
		a, b := newToy(1).(*toy), newToy(2).(*toy)
		a.peers[2] = true
		b.peers[1] = true
		g.AddNode(1, a, map[sm.TimerID]bool{"tick": true})
		g.AddNode(2, b, map[sm.TimerID]bool{"tick": true})
		g.AddMessage(1, 2, ping{N: 1})
		s := NewSearch(Config{
			Props:     poisonAt(1000), // unreachable: full exploration
			Factory:   newToy,
			Mode:      mode,
			MaxDepth:  6,
			MaxStates: 200000,
		})
		return s.Run(g)
	}
	ex := mk(Exhaustive)
	cp := mk(Consequence)
	if cp.StatesExplored >= ex.StatesExplored {
		t.Fatalf("consequence (%d states) should explore fewer than exhaustive (%d)",
			cp.StatesExplored, ex.StatesExplored)
	}
	if cp.LocalPrunes == 0 {
		t.Fatal("consequence mode reported no prunes")
	}
	if ex.LocalPrunes != 0 {
		t.Fatal("exhaustive mode should not prune")
	}
}

func TestResetExploration(t *testing.T) {
	// Property: no node ever observes a transport error. Only a reset
	// (with its RST) can cause one, so finding a violation proves reset
	// transitions and RST delivery are explored.
	errProp := props.Set{{
		Name: "NoTransportErrors",
		Check: func(v *props.View) bool {
			for _, id := range v.IDs() {
				if v.Get(id).Svc.(*toy).errs > 0 {
					return false
				}
			}
			return true
		},
	}}
	s := NewSearch(Config{
		Props:            errProp,
		Factory:          newToy,
		Mode:             Consequence,
		ExploreResets:    true,
		MaxResetsPerPath: 1,
		MaxStates:        50000,
		MaxViolations:    1,
	})
	res := s.Run(twoNodeStart())
	if len(res.Violations) == 0 {
		t.Fatal("reset + RST delivery not explored")
	}
	// The path must contain a ResetEvent followed by an ErrorEvent.
	var sawReset, sawError bool
	for _, ev := range res.Violations[0].Path {
		switch ev.(type) {
		case sm.ResetEvent:
			sawReset = true
		case sm.ErrorEvent:
			sawError = true
		}
	}
	if !sawReset || !sawError {
		t.Fatalf("path should include reset and error events: %v", describePath(res.Violations[0].Path))
	}
}

func describePath(path []sm.Event) []string {
	out := make([]string, len(path))
	for i, ev := range path {
		out[i] = ev.Describe()
	}
	return out
}

func TestDepthBound(t *testing.T) {
	s := NewSearch(Config{
		Props:    poisonAt(1000),
		Factory:  newToy,
		Mode:     Exhaustive,
		MaxDepth: 3,
	})
	res := s.Run(twoNodeStart())
	if res.MaxDepthReached > 3 {
		t.Fatalf("depth bound violated: %d", res.MaxDepthReached)
	}
	if len(res.Violations) != 0 {
		t.Fatal("no violation reachable at depth 3")
	}
}

func TestStateBound(t *testing.T) {
	s := NewSearch(Config{
		Props:     poisonAt(1000),
		Factory:   newToy,
		Mode:      Exhaustive,
		MaxStates: 10,
	})
	res := s.Run(twoNodeStart())
	if res.StatesExplored > 10 {
		t.Fatalf("state bound violated: %d", res.StatesExplored)
	}
}

func TestWallClockBound(t *testing.T) {
	s := NewSearch(Config{
		Props:   poisonAt(1000),
		Factory: newToy,
		Mode:    Exhaustive,
		MaxWall: time.Millisecond,
	})
	began := time.Now()
	s.Run(twoNodeStart())
	if time.Since(began) > 2*time.Second {
		t.Fatal("wall-clock bound ignored")
	}
}

func TestRandomWalkFindsViolation(t *testing.T) {
	s := NewSearch(Config{
		Props:     poisonAt(3),
		Factory:   newToy,
		Mode:      RandomWalk,
		Walks:     100,
		WalkDepth: 20,
		Seed:      1,
	})
	res := s.Run(twoNodeStart())
	if len(res.Violations) == 0 {
		t.Fatal("random walk missed an easily reachable violation")
	}
}

func TestDeterministicSearch(t *testing.T) {
	run := func() *Result {
		s := NewSearch(Config{
			Props:     poisonAt(4),
			Factory:   newToy,
			Mode:      Consequence,
			MaxStates: 5000,
			Seed:      7,
			// Workers pinned: under a state cutoff only the serial
			// engine explores a bit-identical prefix; parallel
			// reproducibility is covered by parallel_test.go.
			Workers: 1,
		})
		return s.Run(twoNodeStart())
	}
	a, b := run(), run()
	if a.StatesExplored != b.StatesExplored || len(a.Violations) != len(b.Violations) {
		t.Fatalf("nondeterministic search: %d/%d states, %d/%d violations",
			a.StatesExplored, b.StatesExplored, len(a.Violations), len(b.Violations))
	}
	if len(a.Violations) > 0 && a.Violations[0].StateHash != b.Violations[0].StateHash {
		t.Fatal("violation hashes differ across runs")
	}
}

func TestReplayReproducesViolation(t *testing.T) {
	cfg := Config{
		Props:     poisonAt(3),
		Factory:   newToy,
		Mode:      Consequence,
		MaxStates: 10000,
	}
	s := NewSearch(cfg)
	res := s.Run(twoNodeStart())
	if len(res.Violations) == 0 {
		t.Fatal("setup: no violation found")
	}
	// Replaying the discovered path from the same start state must
	// reproduce the violation.
	violated := NewSearch(cfg).Replay(twoNodeStart(), res.Violations[0].Path)
	if len(violated) == 0 {
		t.Fatal("replay failed to reproduce the violation")
	}
	// Replaying from a state where the path is infeasible returns nil.
	empty := NewGState()
	empty.AddNode(1, newToy(1), nil)
	if got := NewSearch(cfg).Replay(empty, res.Violations[0].Path); got != nil {
		t.Fatalf("replay on infeasible state returned %v", got)
	}
}

func TestFilterBlocksViolation(t *testing.T) {
	cfg := Config{
		Props:     poisonAt(3),
		Factory:   newToy,
		Mode:      Consequence,
		MaxStates: 10000,
	}
	res := NewSearch(cfg).Run(twoNodeStart())
	if len(res.Violations) == 0 {
		t.Fatal("setup: no violation found")
	}
	// Derive the steering filter from the last event of the path and
	// re-run the search with it installed: with the poisoned delivery
	// blocked everywhere it matters, the violation should vanish.
	path := res.Violations[0].Path
	last := path[len(path)-1]
	f, ok := sm.FilterForEvent(last)
	if !ok {
		t.Fatalf("unfilterable final event %v", last.Describe())
	}
	cfg.Filters = []sm.Filter{f}
	res2 := NewSearch(cfg).Run(twoNodeStart())
	for _, v := range res2.Violations {
		// Any remaining violation must differ from the filtered one.
		if v.StateHash == res.Violations[0].StateHash {
			t.Fatal("filter did not block the violating transition")
		}
	}
}

func TestDummyNodeRedirection(t *testing.T) {
	// Node 1 knows peer 99, which has no checkpoint in the snapshot:
	// messages to it must be redirected to the dummy node (dropped and
	// counted), not crash or create phantom nodes.
	g := NewGState()
	a := newToy(1).(*toy)
	a.peers[99] = true
	g.AddNode(1, a, nil)
	g.AddMessage(99, 1, ping{N: 1}) // incoming from unknown node is fine
	s := NewSearch(Config{
		Props:     poisonAt(1000),
		Factory:   newToy,
		Mode:      Consequence,
		MaxStates: 1000,
	})
	res := s.Run(g)
	if res.DummyRedirects == 0 {
		t.Fatal("expected dummy-node redirects")
	}
	for _, id := range []sm.NodeID{99} {
		if g.Node(id) != nil {
			t.Fatal("phantom node materialised")
		}
	}
}

func TestStartStateNotMutated(t *testing.T) {
	g := twoNodeStart()
	before := g.Hash()
	s := NewSearch(Config{
		Props:     poisonAt(3),
		Factory:   newToy,
		Mode:      Exhaustive,
		MaxStates: 2000,
	})
	s.Run(g)
	if g.Hash() != before {
		t.Fatal("search mutated the start state")
	}
}

func TestHashMsgOrderSemantics(t *testing.T) {
	// Order across distinct (from,to,type) queues is bookkeeping: the
	// fingerprint must not depend on it.
	g1 := NewGState()
	g1.AddNode(1, newToy(1), nil)
	g1.AddNode(2, newToy(2), nil)
	g1.AddMessage(1, 2, ping{N: 1})
	g1.AddMessage(2, 1, ping{N: 2})
	g2 := NewGState()
	g2.AddNode(1, newToy(1), nil)
	g2.AddNode(2, newToy(2), nil)
	g2.AddMessage(2, 1, ping{N: 2})
	g2.AddMessage(1, 2, ping{N: 1})
	if g1.Hash() != g2.Hash() {
		t.Fatal("cross-queue in-flight order leaked into the fingerprint")
	}
	// Order within one queue decides which message the FIFO delivery rule
	// hands over next, so it is part of the state: swapped queue contents
	// must not collide (hash-equal must imply successor-equal).
	q1 := NewGState()
	q1.AddNode(1, newToy(1), nil)
	q1.AddMessage(1, 1, ping{N: 1})
	q1.AddMessage(1, 1, ping{N: 2})
	q2 := NewGState()
	q2.AddNode(1, newToy(1), nil)
	q2.AddMessage(1, 1, ping{N: 2})
	q2.AddMessage(1, 1, ping{N: 1})
	if q1.Hash() == q2.Hash() {
		t.Fatal("same-queue reordering collided: FIFO head not captured")
	}
	// The fingerprint must still distinguish true multisets: two copies of
	// the same message are not one copy.
	g3 := NewGState()
	g3.AddNode(1, newToy(1), nil)
	g3.AddMessage(1, 1, ping{N: 1})
	g3.AddMessage(1, 1, ping{N: 1})
	if g3.Hash() == q1.Hash() {
		t.Fatal("duplicate message collapsed: multiset became a set")
	}
	for _, g := range []*GState{g1, g2, g3, q1, q2} {
		if g.Hash() != g.FullHash() {
			t.Fatal("incremental hash disagrees with from-scratch oracle")
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	s := NewSearch(Config{
		Props:     poisonAt(1000),
		Factory:   newToy,
		Mode:      Consequence,
		MaxDepth:  5,
		MaxStates: 100000,
	})
	res := s.Run(twoNodeStart())
	if res.PeakMemoryBytes <= 0 || res.PerStateBytes <= 0 {
		t.Fatalf("memory accounting missing: peak=%d per-state=%.1f",
			res.PeakMemoryBytes, res.PerStateBytes)
	}
}

func TestMaxViolationsStopsEarly(t *testing.T) {
	s := NewSearch(Config{
		Props:         poisonAt(2),
		Factory:       newToy,
		Mode:          Exhaustive,
		MaxViolations: 1,
		MaxStates:     100000,
	})
	res := s.Run(twoNodeStart())
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %d, want exactly 1", len(res.Violations))
	}
}
