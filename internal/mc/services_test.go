// Real-service checker tests live in the external test package: the
// service packages register themselves with internal/scenario, which
// imports mc, so importing them from mc's internal test package would be
// an import cycle.
package mc_test

import (
	"reflect"
	"sort"
	"testing"

	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/services/chord"
	"crystalball/internal/services/crdt"
	"crystalball/internal/services/paxos"
	"crystalball/internal/sm"
)

// distinctSignatures returns the sorted violation-signature set of a result
// (Result.Violations is already deduplicated by signature).
func distinctSignatures(res *mc.Result) []string {
	out := make([]string, 0, len(res.Violations))
	for _, v := range res.Violations {
		out = append(out, v.Signature())
	}
	sort.Strings(out)
	return out
}

// chordFigure10Start replicates the start state of the paper's Figure 10
// Chord scenario (see chord's own model-checking test): A(1), C(3), D(5)
// form a ring after B's departure, and a reset + rejoin of C can produce
// pred(C)=C while other successors exist.
func chordFigure10Start() (sm.Factory, *mc.GState) {
	factory := chord.New(chord.Config{Bootstrap: []sm.NodeID{1}})
	a := factory(1).(*chord.Ring)
	a.Joined = true
	a.Pred = 5
	a.Succs = []sm.NodeID{3, 5, 1}

	c := factory(3).(*chord.Ring)
	c.Joined = true
	c.Pred = 1
	c.Succs = []sm.NodeID{5, 1, 3}

	d := factory(5).(*chord.Ring)
	d.Joined = true
	d.Pred = 3
	d.Succs = []sm.NodeID{1, 3, 5}

	g := mc.NewGState()
	g.AddNode(1, a, map[sm.TimerID]bool{chord.TimerStabilize: true})
	g.AddNode(3, c, map[sm.TimerID]bool{chord.TimerStabilize: true})
	g.AddNode(5, d, map[sm.TimerID]bool{chord.TimerStabilize: true})
	return factory, g
}

// paxosPostRound1Start replicates the post-round-1 snapshot of the paper's
// Figure 13 Paxos scenario (see paxos's own model-checking test).
func paxosPostRound1Start(factory sm.Factory) *mc.GState {
	a := factory(1).(*paxos.Paxos)
	a.PromisedRound = 3
	a.AcceptedRound = 3
	a.AcceptedVal = 0
	a.HasAccepted = true
	a.CurRound = 3
	a.Proposing = true
	a.AcceptSent = true
	a.ChosenVals = []int64{0}
	a.Learns = map[uint64]map[sm.NodeID]int64{3: {1: 0, 2: 0}}

	b := factory(2).(*paxos.Paxos)
	b.PromisedRound = 3
	b.AcceptedRound = 3
	b.AcceptedVal = 0
	b.HasAccepted = true
	b.Learns = map[uint64]map[sm.NodeID]int64{3: {2: 0}}

	g := mc.NewGState()
	g.AddNode(1, a, nil)
	g.AddNode(2, b, nil)
	g.AddNode(3, factory(3).(*paxos.Paxos), nil)
	return g
}

// Depth bounds for the determinism scenarios: deep enough to reach the
// paper's violations, shallow enough to explore exhaustively (no state
// cutoff, so the reachable set is independent of worker interleaving).
const (
	chordDeterminismDepth = 10
	paxosDeterminismDepth = 9
)

// TestParallelChordDeterminism: on the Chord Figure 10 scenario, a
// depth-bounded parallel search yields the same distinct violation
// signatures as the serial one.
func TestParallelChordDeterminism(t *testing.T) {
	run := func(workers int) *mc.Result {
		factory, g := chordFigure10Start()
		s := mc.NewSearch(mc.Config{
			Props:             props.Set{chord.PropPredSelfImpliesSuccSelf},
			Factory:           factory,
			Mode:              mc.Consequence,
			ExploreResets:     true,
			ExploreConnBreaks: true,
			MaxResetsPerPath:  1,
			MaxDepth:          chordDeterminismDepth,
			Workers:           workers,
		})
		return s.Run(g)
	}
	serial := run(1)
	if len(serial.Violations) == 0 {
		t.Fatal("serial search missed the Figure 10 inconsistency")
	}
	parallel := run(4)
	if got, want := distinctSignatures(parallel), distinctSignatures(serial); !reflect.DeepEqual(got, want) {
		t.Fatalf("workers=4 signatures %v, serial %v", got, want)
	}
	if parallel.StatesExplored != serial.StatesExplored {
		t.Fatalf("workers=4 states %d, serial %d", parallel.StatesExplored, serial.StatesExplored)
	}
}

// TestParallelPaxosDeterminism: same check on the Paxos Figure 13 bug-1
// scenario.
func TestParallelPaxosDeterminism(t *testing.T) {
	factory := paxos.New(paxos.Config{Members: []sm.NodeID{1, 2, 3}, Bug1: true})
	run := func(workers int) *mc.Result {
		s := mc.NewSearch(mc.Config{
			Props:    paxos.Properties,
			Factory:  factory,
			Mode:     mc.Consequence,
			MaxDepth: paxosDeterminismDepth,
			Workers:  workers,
		})
		return s.Run(paxosPostRound1Start(factory))
	}
	serial := run(1)
	if len(serial.Violations) == 0 {
		t.Fatal("serial search missed the bug-1 violation")
	}
	parallel := run(4)
	if got, want := distinctSignatures(parallel), distinctSignatures(serial); !reflect.DeepEqual(got, want) {
		t.Fatalf("workers=4 signatures %v, serial %v", got, want)
	}
	if parallel.StatesExplored != serial.StatesExplored {
		t.Fatalf("workers=4 states %d, serial %d", parallel.StatesExplored, serial.StatesExplored)
	}
}

// oracleWalkExt drives random event paths from start and checks the
// incremental hash against the from-scratch recomputation at every state;
// the external-package twin of the toy oracle in hash_oracle_test.go.
func oracleWalkExt(t *testing.T, s *mc.Search, start *mc.GState, walks, depth int, seed int64) {
	t.Helper()
	checkState := func(g *mc.GState, step int) {
		t.Helper()
		if got, want := g.Hash(), g.FullHash(); got != want {
			t.Fatalf("step %d: incremental hash %#x != from-scratch %#x", step, got, want)
		}
	}
	checkState(start, -1)
	for w := 0; w < walks; w++ {
		rng := sm.NewRand(seed ^ int64(w+1)*-0x61c8864680b583eb)
		g := start
		for step := 0; step < depth; step++ {
			network, internal := s.EnabledEvents(g)
			all := append([]sm.Event{}, network...)
			for _, id := range g.Nodes() {
				all = append(all, internal[id]...)
			}
			if len(all) == 0 {
				break
			}
			var next *mc.GState
			for _, i := range rng.Perm(len(all)) {
				if next = s.ApplyEvent(g, all[i]); next != nil {
					break
				}
			}
			if next == nil {
				break
			}
			checkState(next, step)
			// The predecessor must be untouched by successor construction.
			checkState(g, step)
			g = next
		}
	}
}

// TestHashOracleChord walks the paper's Figure 10 Chord scenario with
// resets and connection breaks enabled.
func TestHashOracleChord(t *testing.T) {
	factory, g := chordFigure10Start()
	s := mc.NewSearch(mc.Config{
		Props:             props.Set{},
		Factory:           factory,
		ExploreResets:     true,
		ExploreConnBreaks: true,
		MaxResetsPerPath:  1,
	})
	oracleWalkExt(t, s, g, 25, 20, 23)
}

// TestHashOraclePaxos walks the paper's Figure 13 Paxos scenario.
func TestHashOraclePaxos(t *testing.T) {
	factory := paxos.New(paxos.Config{Members: []sm.NodeID{1, 2, 3}, Bug1: true})
	s := mc.NewSearch(mc.Config{
		Props:         props.Set{},
		Factory:       factory,
		ExploreResets: true,
	})
	oracleWalkExt(t, s, paxosPostRound1Start(factory), 25, 20, 37)
}

// TestHashOracleCRDT walks the CRDT scenarios — gcounter and orset from
// their initial states, lwwmap from the staged clock-tie start with its
// in-flight puts — with resets enabled, pinning the incremental GState
// fingerprint against from-scratch re-encoding for map-heavy replica
// state (delivered-op sets, count vectors, live tags, tombstones).
func TestHashOracleCRDT(t *testing.T) {
	members := []sm.NodeID{1, 2, 3}
	fresh := func(f sm.Factory) *mc.GState {
		g := mc.NewGState()
		for _, id := range members {
			g.AddNode(id, f(id), nil)
		}
		return g
	}
	cases := []struct {
		name    string
		factory sm.Factory
		start   func(sm.Factory) *mc.GState
		seed    int64
	}{
		{"gcounter", crdt.NewCounter(members, false), fresh, 41},
		{"orset", crdt.NewSet(members, false), fresh, 43},
		{"lwwmap", crdt.NewMap(members, false), crdt.TieStart, 47},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := mc.NewSearch(mc.Config{
				Props:            props.Set{},
				Factory:          tc.factory,
				ExploreResets:    true,
				MaxResetsPerPath: 1,
			})
			oracleWalkExt(t, s, tc.start(tc.factory), 25, 20, tc.seed)
		})
	}
}
