package mc

import (
	"testing"
	"testing/quick"

	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// These tests check cross-algorithm invariants of the model checker that
// the paper's soundness argument relies on.

// TestConsequenceViolationsAreRealExecutions: every violation path that
// consequence prediction reports must replay to the same violation — the
// paper's claim that "bugs identified by consequence search are guaranteed
// to be real with respect to the model explored" (unlike over-approximating
// analyses).
func TestConsequenceViolationsAreRealExecutions(t *testing.T) {
	cfg := Config{
		Props:         poisonAt(3),
		Factory:       newToy,
		Mode:          Consequence,
		MaxStates:     5000,
		ExploreResets: true,
	}
	res := NewSearch(cfg).Run(twoNodeStart())
	if len(res.Violations) == 0 {
		t.Fatal("setup: no violations")
	}
	for i, v := range res.Violations {
		if got := NewSearch(cfg).Replay(twoNodeStart(), v.Path); len(got) == 0 {
			t.Fatalf("violation %d does not replay: %v", i, describePath(v.Path))
		}
	}
}

// TestConsequenceSubsetOfExhaustive: with faults disabled and identical
// bounds, every state hash consequence prediction dequeues is also visited
// by exhaustive search from the same start — pruning removes transitions,
// it never invents them.
func TestConsequenceSubsetOfExhaustive(t *testing.T) {
	// Instrumentation trick: run both searches with a property that
	// records hashes as it checks (properties see every dequeued state).
	collect := func(mode Mode) map[uint64]bool {
		seen := make(map[uint64]bool)
		rec := props.Set{{
			Name: "recorder",
			Check: func(v *props.View) bool {
				h := hashView(v)
				seen[h] = true
				return true
			},
		}}
		s := NewSearch(Config{
			Props:     rec,
			Factory:   newToy,
			Mode:      mode,
			MaxDepth:  5,
			MaxStates: 100000,
			// The recorder property writes a plain map, so this test
			// must run on the serial engine.
			Workers: 1,
		})
		s.Run(twoNodeStart())
		return seen
	}
	ex := collect(Exhaustive)
	cp := collect(Consequence)
	if len(cp) > len(ex) {
		t.Fatalf("consequence saw more states (%d) than exhaustive (%d)", len(cp), len(ex))
	}
	for h := range cp {
		if !ex[h] {
			t.Fatal("consequence visited a state exhaustive never reached")
		}
	}
}

// hashView summarises a property view for the subset test.
func hashView(v *props.View) uint64 {
	e := sm.NewEncoder()
	for _, id := range v.IDs() {
		e.NodeID(id)
		v.Get(id).Svc.EncodeState(e)
	}
	return e.Hash()
}

// TestPropertySearchDeterminism: identical configs explore identical state
// counts and find identical violations, across seeds and modes.
func TestPropertySearchDeterminism(t *testing.T) {
	f := func(seed int64, modePick, limit uint8) bool {
		mode := Exhaustive
		if modePick%2 == 1 {
			mode = Consequence
		}
		cfg := Config{
			Props:     poisonAt(int(limit%4) + 2),
			Factory:   newToy,
			Mode:      mode,
			MaxStates: 600,
			Seed:      seed,
			// Workers pinned: exact run-to-run equality under a state
			// cutoff holds only serially (see parallel_test.go for the
			// parallel determinism guarantees).
			Workers: 1,
		}
		a := NewSearch(cfg).Run(twoNodeStart())
		b := NewSearch(cfg).Run(twoNodeStart())
		if a.StatesExplored != b.StatesExplored || len(a.Violations) != len(b.Violations) {
			return false
		}
		for i := range a.Violations {
			if a.Violations[i].StateHash != b.Violations[i].StateHash {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyViolationDepthMatchesPathLength: a reported violation's depth
// always equals its path length (the path is a complete execution from the
// start state).
func TestPropertyViolationDepthMatchesPathLength(t *testing.T) {
	f := func(limit uint8) bool {
		cfg := Config{
			Props:     poisonAt(int(limit%5) + 1),
			Factory:   newToy,
			Mode:      Consequence,
			MaxStates: 2000,
		}
		res := NewSearch(cfg).Run(twoNodeStart())
		for _, v := range res.Violations {
			if v.Depth != len(v.Path) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestFilteredSearchNeverExpandsFilteredEvent: with a filter installed, no
// violation path may contain the filtered delivery.
func TestFilteredSearchNeverExpandsFilteredEvent(t *testing.T) {
	filter := sm.Filter{Kind: sm.FilterMessage, Node: 2, From: 1, MsgType: "Ping"}
	cfg := Config{
		Props:     poisonAt(2),
		Factory:   newToy,
		Mode:      Consequence,
		MaxStates: 20000,
		Filters:   []sm.Filter{filter},
	}
	res := NewSearch(cfg).Run(twoNodeStart())
	for _, v := range res.Violations {
		for _, ev := range v.Path {
			if me, ok := ev.(sm.MsgEvent); ok && filter.Matches(me) {
				t.Fatalf("filtered event executed in path: %v", describePath(v.Path))
			}
		}
	}
}
