package mc

import (
	"testing"

	"crystalball/internal/sm"
)

// These tests are the differential oracle for the incremental fingerprint:
// GState.Hash is maintained in O(delta) through every successor
// constructor, and must equal FullHash — a from-scratch re-encoding of
// every node, message and stale pair — at every step of every walk.

// oracleWalk drives random event paths from start and checks the
// incremental hash against the from-scratch recomputation at every state.
func oracleWalk(t *testing.T, s *Search, start *GState, walks, depth int, seed int64) {
	t.Helper()
	checkState := func(g *GState, step int) {
		t.Helper()
		if got, want := g.Hash(), g.FullHash(); got != want {
			t.Fatalf("step %d: incremental hash %#x != from-scratch %#x", step, got, want)
		}
	}
	checkState(start, -1)
	for w := 0; w < walks; w++ {
		rng := sm.NewRand(seed ^ int64(w+1)*-0x61c8864680b583eb)
		g := start
		for step := 0; step < depth; step++ {
			network, internal := s.EnabledEvents(g)
			all := append([]sm.Event{}, network...)
			for _, id := range g.Nodes() {
				all = append(all, internal[id]...)
			}
			if len(all) == 0 {
				break
			}
			var next *GState
			for _, i := range rng.Perm(len(all)) {
				if next = s.ApplyEvent(g, all[i]); next != nil {
					break
				}
			}
			if next == nil {
				break
			}
			checkState(next, step)
			// The predecessor must be untouched by successor construction.
			checkState(g, step)
			g = next
		}
	}
}

// TestHashOracleToyResets covers the reset transition's full bookkeeping —
// dropped in-flight traffic, stale-pair marking and clearing, RST fan-out,
// the resets counter — plus message, timer, app, error and drop events.
func TestHashOracleToyResets(t *testing.T) {
	s := NewSearch(Config{
		Props:            poisonAt(1000),
		Factory:          newToy,
		ExploreResets:    true,
		MaxResetsPerPath: 2,
	})
	oracleWalk(t, s, multiTimerStart(), 30, 25, 11)
}

// The Chord and Paxos oracle walks live in services_test.go (package
// mc_test): real services register scenarios, whose package imports mc.

// TestHashOracleFiltered covers the filtered-apply constructor (message
// dropped, optional RST queued) which bypasses runHandler.
func TestHashOracleFiltered(t *testing.T) {
	for _, breakConn := range []bool{false, true} {
		g := twoNodeStart()
		s := NewSearch(Config{Props: poisonAt(1000), Factory: newToy})
		next := s.applyFiltered(g, sm.MsgEvent{From: 1, To: 2, Msg: ping{N: 1}}, sm.Filter{
			Kind: sm.FilterMessage, Node: 2, From: 1, MsgType: "Ping", BreakConn: breakConn,
		}, getScratch())
		if next == nil {
			t.Fatal("filtered apply failed")
		}
		if got, want := next.Hash(), next.FullHash(); got != want {
			t.Fatalf("breakConn=%v: incremental %#x != from-scratch %#x", breakConn, got, want)
		}
	}
}

// TestHashOracleMarkStale covers the exported MarkStale mutator.
func TestHashOracleMarkStale(t *testing.T) {
	g := twoNodeStart()
	g.MarkStale(1, 2)
	g.MarkStale(1, 2) // idempotent: must not double-count
	if got, want := g.Hash(), g.FullHash(); got != want {
		t.Fatalf("incremental %#x != from-scratch %#x", got, want)
	}
	if !g.Stale(1, 2) {
		t.Fatal("stale pair lost")
	}
}

// TestHashMatchesFullHashOnConstruction: states assembled through the
// public constructors fingerprint identically to the oracle.
func TestHashMatchesFullHashOnConstruction(t *testing.T) {
	for _, mk := range []func() *GState{NewGState, twoNodeStart, multiTimerStart} {
		g := mk()
		if got, want := g.Hash(), g.FullHash(); got != want {
			t.Fatalf("incremental %#x != from-scratch %#x", got, want)
		}
	}
}

// sameBacking reports whether two byte slices share a backing array (the
// segment-sharing contract: equal segments are aliased, not copied).
func sameBacking(a, b []byte) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// TestSplitEncodingSegmentSharing covers the service/timer encoding split:
// a successor whose handler left one segment byte-identical must share that
// segment's storage with its parent, and the recombined hashes must still
// match the from-scratch FullHash oracle (which re-encodes both segments as
// one buffer, bypassing the split entirely).
func TestSplitEncodingSegmentSharing(t *testing.T) {
	s := NewSearch(Config{Props: poisonAt(1000), Factory: newToy})
	g := multiTimerStart()
	parent := g.Node(1)

	// "boom" has no handler logic: only the timer set changes, so the
	// service segment must be shared with the parent.
	next := s.ApplyEvent(g, sm.TimerEvent{At: 1, Timer: "boom"})
	if next == nil {
		t.Fatal("boom timer not applicable")
	}
	child := next.Node(1)
	if !sameBacking(parent.svcEnc, child.svcEnc) {
		t.Error("timer-only successor did not share the parent's service encoding")
	}
	if sameBacking(parent.tmEnc, child.tmEnc) {
		t.Error("timer segment changed but was shared")
	}
	if got, want := next.Hash(), next.FullHash(); got != want {
		t.Fatalf("timer-only successor: incremental %#x != from-scratch %#x", got, want)
	}

	// "tick" increments the counter and re-arms itself: the service
	// segment changes, the timer set does not — the timer segment (and the
	// sorted name list) must be shared.
	next = s.ApplyEvent(g, sm.TimerEvent{At: 1, Timer: "tick"})
	if next == nil {
		t.Fatal("tick timer not applicable")
	}
	child = next.Node(1)
	if sameBacking(parent.svcEnc, child.svcEnc) {
		t.Error("service segment changed but was shared")
	}
	if !sameBacking(parent.tmEnc, child.tmEnc) {
		t.Error("service-only successor did not share the parent's timer encoding")
	}
	if got, want := next.Hash(), next.FullHash(); got != want {
		t.Fatalf("service-only successor: incremental %#x != from-scratch %#x", got, want)
	}

	// Sharing must also survive a chain: grandchild via another no-op
	// timer still aliases the original service segment.
	next2 := s.ApplyEvent(next, sm.TimerEvent{At: 1, Timer: "zap"})
	if next2 == nil {
		t.Fatal("zap timer not applicable")
	}
	if !sameBacking(next.Node(1).svcEnc, next2.Node(1).svcEnc) {
		t.Error("segment sharing broke across a successor chain")
	}
	if got, want := next2.Hash(), next2.FullHash(); got != want {
		t.Fatalf("chained successor: incremental %#x != from-scratch %#x", got, want)
	}
}

// TestSplitEncodingLocalHash: the consequence-prediction local hash derived
// from the split segments must equal the hash of the old combined encoding
// (NodeID, length-prefixed service||timers), for both shared and copied
// segments.
func TestSplitEncodingLocalHash(t *testing.T) {
	g := multiTimerStart()
	for _, id := range g.Nodes() {
		ns := g.Node(id)
		e := sm.NewEncoder()
		ne := sm.NewEncoder()
		ns.Svc.EncodeState(ne)
		encodeTimers(ne, ns.Timers)
		e.NodeID(id)
		e.Bytes2(ne.Bytes())
		if got, want := ns.localHash(), e.Hash(); got != want {
			t.Errorf("node %v: split localHash %#x != combined-encoding hash %#x", id, got, want)
		}
		if got, want := ns.chash, e.DomainHash(domainNode); got != want {
			t.Errorf("node %v: split chash %#x != combined-encoding domain hash %#x", id, got, want)
		}
	}
}
