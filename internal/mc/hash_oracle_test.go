package mc

import (
	"testing"

	"crystalball/internal/sm"
)

// These tests are the differential oracle for the incremental fingerprint:
// GState.Hash is maintained in O(delta) through every successor
// constructor, and must equal FullHash — a from-scratch re-encoding of
// every node, message and stale pair — at every step of every walk.

// oracleWalk drives random event paths from start and checks the
// incremental hash against the from-scratch recomputation at every state.
func oracleWalk(t *testing.T, s *Search, start *GState, walks, depth int, seed int64) {
	t.Helper()
	checkState := func(g *GState, step int) {
		t.Helper()
		if got, want := g.Hash(), g.FullHash(); got != want {
			t.Fatalf("step %d: incremental hash %#x != from-scratch %#x", step, got, want)
		}
	}
	checkState(start, -1)
	for w := 0; w < walks; w++ {
		rng := sm.NewRand(seed ^ int64(w+1)*-0x61c8864680b583eb)
		g := start
		for step := 0; step < depth; step++ {
			network, internal := s.EnabledEvents(g)
			all := append([]sm.Event{}, network...)
			for _, id := range g.Nodes() {
				all = append(all, internal[id]...)
			}
			if len(all) == 0 {
				break
			}
			var next *GState
			for _, i := range rng.Perm(len(all)) {
				if next = s.ApplyEvent(g, all[i]); next != nil {
					break
				}
			}
			if next == nil {
				break
			}
			checkState(next, step)
			// The predecessor must be untouched by successor construction.
			checkState(g, step)
			g = next
		}
	}
}

// TestHashOracleToyResets covers the reset transition's full bookkeeping —
// dropped in-flight traffic, stale-pair marking and clearing, RST fan-out,
// the resets counter — plus message, timer, app, error and drop events.
func TestHashOracleToyResets(t *testing.T) {
	s := NewSearch(Config{
		Props:            poisonAt(1000),
		Factory:          newToy,
		ExploreResets:    true,
		MaxResetsPerPath: 2,
	})
	oracleWalk(t, s, multiTimerStart(), 30, 25, 11)
}

// The Chord and Paxos oracle walks live in services_test.go (package
// mc_test): real services register scenarios, whose package imports mc.

// TestHashOracleFiltered covers the filtered-apply constructor (message
// dropped, optional RST queued) which bypasses runHandler.
func TestHashOracleFiltered(t *testing.T) {
	for _, breakConn := range []bool{false, true} {
		g := twoNodeStart()
		s := NewSearch(Config{Props: poisonAt(1000), Factory: newToy})
		next := s.applyFiltered(g, sm.MsgEvent{From: 1, To: 2, Msg: ping{N: 1}}, sm.Filter{
			Kind: sm.FilterMessage, Node: 2, From: 1, MsgType: "Ping", BreakConn: breakConn,
		})
		if next == nil {
			t.Fatal("filtered apply failed")
		}
		if got, want := next.Hash(), next.FullHash(); got != want {
			t.Fatalf("breakConn=%v: incremental %#x != from-scratch %#x", breakConn, got, want)
		}
	}
}

// TestHashOracleMarkStale covers the exported MarkStale mutator.
func TestHashOracleMarkStale(t *testing.T) {
	g := twoNodeStart()
	g.MarkStale(1, 2)
	g.MarkStale(1, 2) // idempotent: must not double-count
	if got, want := g.Hash(), g.FullHash(); got != want {
		t.Fatalf("incremental %#x != from-scratch %#x", got, want)
	}
	if !g.Stale(1, 2) {
		t.Fatal("stale pair lost")
	}
}

// TestHashMatchesFullHashOnConstruction: states assembled through the
// public constructors fingerprint identically to the oracle.
func TestHashMatchesFullHashOnConstruction(t *testing.T) {
	for _, mk := range []func() *GState{NewGState, twoNodeStart, multiTimerStart} {
		g := mk()
		if got, want := g.Hash(), g.FullHash(); got != want {
			t.Fatalf("incremental %#x != from-scratch %#x", got, want)
		}
	}
}
