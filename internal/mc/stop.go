package mc

import (
	"sync/atomic"
	"time"
)

// StopCriterion unifies the search budgets: a search stops when any of the
// non-zero bounds is reached. It is the "StopCriterion" the paper's runtime
// deployment hands to consequence prediction so a round always finishes
// within a snapshot interval.
type StopCriterion struct {
	// MaxStates bounds explored states (0 = unbounded).
	MaxStates int
	// MaxDepth bounds search depth (0 = unbounded).
	MaxDepth int
	// MaxWall bounds wall-clock time (0 = unbounded).
	MaxWall time.Duration
	// MaxViolations stops the search after this many distinct violating
	// states (0 = collect all within other bounds).
	MaxViolations int
}

// Stop returns the search's stop criterion, resolved from the budget (with
// the deprecated loose scalars filling zero Budget fields).
func (c *Config) Stop() StopCriterion {
	return c.mergeLegacy().Stop()
}

// budget is the shared, atomically-updated accounting for one search run.
// Every worker consults it before admitting a state; the counters are exact
// (a rejected admission is rolled back), so bounded runs never overshoot
// regardless of worker count.
type budget struct {
	crit     StopCriterion
	began    time.Time
	deadline time.Time // zero when MaxWall is unbounded
	states   atomic.Int64
	halted   atomic.Bool
}

func newBudget(crit StopCriterion, began time.Time) *budget {
	b := &budget{crit: crit, began: began}
	if crit.MaxWall > 0 {
		b.deadline = began.Add(crit.MaxWall)
	}
	return b
}

// admitState atomically claims one unit of the state budget; it returns
// false when the budget (states or wall clock) is exhausted.
func (b *budget) admitState() bool {
	if b.halted.Load() {
		return false
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		b.halted.Store(true)
		return false
	}
	if n := b.states.Add(1); b.crit.MaxStates > 0 && n > int64(b.crit.MaxStates) {
		b.states.Add(-1)
		b.halted.Store(true)
		return false
	}
	return true
}

// halt marks the budget exhausted (e.g. the violation quota filled).
func (b *budget) halt() { b.halted.Store(true) }

// exhausted reports whether some bound tripped.
func (b *budget) exhausted() bool { return b.halted.Load() }

// statesAdmitted returns the number of states admitted so far.
func (b *budget) statesAdmitted() int { return int(b.states.Load()) }
