package mc

import (
	"sync/atomic"
	"time"
)

// StopCriterion unifies the search budgets: a search stops when any of the
// non-zero bounds is reached. It is the "StopCriterion" the paper's runtime
// deployment hands to consequence prediction so a round always finishes
// within a snapshot interval.
type StopCriterion struct {
	// MaxStates bounds explored states (0 = unbounded).
	MaxStates int
	// MaxDepth bounds search depth (0 = unbounded).
	MaxDepth int
	// MaxWall bounds wall-clock time (0 = unbounded).
	MaxWall time.Duration
	// MaxViolations stops the search after this many distinct violating
	// states (0 = collect all within other bounds).
	MaxViolations int
	// MaxTransitions bounds executed handler invocations (0 = unbounded):
	// a deterministic stand-in for wall clock, since per-state cost is
	// dominated by handler execution. It is the budget axis partial-order
	// reduction actually stretches — at equal transitions a reduced search
	// penetrates deeper than an unreduced one.
	MaxTransitions int
}

// Stop returns the search's stop criterion, resolved from the budget (with
// the deprecated loose scalars filling zero Budget fields).
func (c *Config) Stop() StopCriterion {
	return c.mergeLegacy().Stop()
}

// counters is the engine's shared telemetry block: exact atomic tallies of
// work done (transitions executed), work avoided (consequence local prunes,
// sleep-set hits) and work moved (deque steals and failed steal attempts).
// Transitions, prunes and depth are deterministic functions of the search
// configuration; steals and steal failures are scheduling telemetry and are
// excluded from the determinism contracts.
type counters struct {
	transitions   atomic.Int64
	localPrunes   atomic.Int64
	sleepHits     atomic.Int64
	steals        atomic.Int64
	stealFails    atomic.Int64
	maxDepth      atomic.Int64
	frontierBytes atomic.Int64
	peakBytes     atomic.Int64
}

// budget is the shared, atomically-updated accounting for one search run.
// Every worker consults it before admitting a state; the counters are exact
// (a rejected admission is rolled back), so bounded runs never overshoot
// regardless of worker count.
type budget struct {
	crit        StopCriterion
	now         func() time.Time // injected clock (Config.Now)
	began       time.Time
	deadline    time.Time // zero when MaxWall is unbounded
	states      atomic.Int64
	transitions atomic.Int64
	halted      atomic.Bool
}

// newBudget starts the accounting clock by reading now once; the same
// injected clock serves the MaxWall deadline checks and Result.Elapsed, so a
// fake clock exercises wall-budget expiry deterministically.
func newBudget(crit StopCriterion, now func() time.Time) *budget {
	if now == nil {
		now = time.Now
	}
	b := &budget{crit: crit, now: now, began: now()}
	if crit.MaxWall > 0 {
		b.deadline = b.began.Add(crit.MaxWall)
	}
	return b
}

// elapsed reports the wall time consumed so far, per the injected clock.
func (b *budget) elapsed() time.Duration { return b.now().Sub(b.began) }

// admitState atomically claims one unit of the state budget; it returns
// false when the budget (states or wall clock) is exhausted.
func (b *budget) admitState() bool {
	if b.halted.Load() {
		return false
	}
	if !b.deadline.IsZero() && b.now().After(b.deadline) {
		b.halted.Store(true)
		return false
	}
	if n := b.states.Add(1); b.crit.MaxStates > 0 && n > int64(b.crit.MaxStates) {
		b.states.Add(-1)
		b.halted.Store(true)
		return false
	}
	return true
}

// admitTransition atomically claims one unit of the transition budget; it
// returns false when MaxTransitions is exhausted (after rolling the claim
// back, so the count is exact). Serial runs stop at a deterministic
// transition prefix; with several workers which expansions land inside the
// budget varies with scheduling, like every non-depth cutoff.
func (b *budget) admitTransition() bool {
	if b.crit.MaxTransitions <= 0 {
		return !b.halted.Load()
	}
	if b.halted.Load() {
		return false
	}
	if n := b.transitions.Add(1); n > int64(b.crit.MaxTransitions) {
		b.transitions.Add(-1)
		b.halted.Store(true)
		return false
	}
	return true
}

// refundTransition returns one admitted unit (the event turned out to be
// inapplicable — no handler ran).
func (b *budget) refundTransition() {
	if b.crit.MaxTransitions > 0 {
		b.transitions.Add(-1)
	}
}

// halt marks the budget exhausted (e.g. the violation quota filled).
func (b *budget) halt() { b.halted.Store(true) }

// exhausted reports whether some bound tripped.
func (b *budget) exhausted() bool { return b.halted.Load() }

// statesAdmitted returns the number of states admitted so far.
func (b *budget) statesAdmitted() int { return int(b.states.Load()) }
