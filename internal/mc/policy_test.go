package mc

import (
	"reflect"
	"testing"
	"time"
)

// TestFixedPolicyPlanIsIdentity: FixedPolicy returns its budget verbatim on
// every round and ignores feedback — the exact pre-policy behavior.
func TestFixedPolicyPlanIsIdentity(t *testing.T) {
	base := Budget{States: 20000, Depth: 7, Wall: time.Minute, Violations: 8, Workers: 3}
	p := &FixedPolicy{Budget: base}
	for round := 1; round <= 5; round++ {
		got := p.Plan(RoundInfo{Round: round, SnapshotBytes: round * 1000, Interval: 10 * time.Second})
		if got != base {
			t.Fatalf("round %d: Plan = %+v, want %+v", round, got, base)
		}
		p.Observe(RoundReport{Budget: got, States: 1, Elapsed: time.Hour})
	}
}

// TestScaledPolicyScalesInverselyAndClamps: states scale as RefBytes /
// SnapshotBytes (per-state cost grows with snapshot size, so work stays
// flat), clamped to [MinStates, MaxStates], other fields untouched.
func TestScaledPolicyScalesInverselyAndClamps(t *testing.T) {
	p := &ScaledPolicy{Base: Budget{States: 8000, Workers: 2}, RefBytes: 4096}
	cases := []struct {
		bytes int
		want  int
	}{
		{4096, 8000},    // reference size: exactly Base
		{8192, 4000},    // double the bytes: half the states
		{2048, 16000},   // half the bytes: double the states
		{1, 64000},      // tiny snapshot: clamped at Base*8
		{1 << 30, 1000}, // huge snapshot: clamped at Base/8
		{0, 8000},       // unknown size: Base verbatim
	}
	for _, tc := range cases {
		got := p.Plan(RoundInfo{SnapshotBytes: tc.bytes})
		if got.States != tc.want {
			t.Errorf("SnapshotBytes %d: states = %d, want %d", tc.bytes, got.States, tc.want)
		}
		if got.Workers != 2 {
			t.Errorf("SnapshotBytes %d: workers = %d, want 2 (untouched)", tc.bytes, got.Workers)
		}
	}

	// An explicit MaxStates below the derived Base/8 floor still caps:
	// the ceiling wins a floor/ceiling conflict.
	capped := &ScaledPolicy{Base: Budget{States: 20000}, MaxStates: 1000}
	if got := capped.Plan(RoundInfo{SnapshotBytes: 1 << 30}); got.States != 1000 {
		t.Errorf("explicit cap below derived floor: states = %d, want 1000", got.States)
	}
}

// TestAdaptivePolicyShrinksAndGrows walks the EWMA controller through the
// paper's scenario: a first round on the base budget, an overrun report
// that must shrink the next plan inside the target window, then a fast
// report that must grow it back past the base.
func TestAdaptivePolicyShrinksAndGrows(t *testing.T) {
	p := &AdaptivePolicy{
		Base:       Budget{States: 20000, Workers: 1, Violations: 8},
		MaxWorkers: 4,
	}
	info := RoundInfo{Round: 1, SnapshotBytes: 2048, Interval: 10 * time.Second}

	// Round 1: no feedback — the base verbatim.
	b1 := p.Plan(info)
	if b1 != p.Base {
		t.Fatalf("first plan = %+v, want base %+v", b1, p.Base)
	}

	// The 20000-state round took 40 s against a 10 s interval (500
	// states/sec at one worker): the next plan must land inside the 5 s
	// target window — more workers, fewer states.
	p.Observe(RoundReport{Budget: b1, States: 20000, Elapsed: 40 * time.Second})
	info.Round = 2
	b2 := p.Plan(info)
	if b2.Workers != 4 {
		t.Fatalf("overrun plan workers = %d, want MaxWorkers 4", b2.Workers)
	}
	// 500 states/sec/worker * 4 workers * 5 s target = 10000 states.
	if b2.States != 10000 {
		t.Fatalf("overrun plan states = %d, want 10000", b2.States)
	}
	if b2.States >= b1.States {
		t.Fatalf("overrun did not shrink the budget: %d -> %d", b1.States, b2.States)
	}
	// The shrunken plan's predicted duration fits the target window.
	if predicted := float64(b2.States) / (500 * float64(b2.Workers)); predicted > 5 {
		t.Fatalf("predicted duration %.1fs exceeds the 5s target", predicted)
	}

	// A fast round (12500 states/sec/worker) pulls the EWMA up; the plan
	// must grow beyond the base ask.
	p.Observe(RoundReport{Budget: b2, States: 10000, Elapsed: 200 * time.Millisecond})
	info.Round = 3
	b3 := p.Plan(info)
	// EWMA: 0.3*12500 + 0.7*500 = 4100 states/sec/worker; one worker now
	// reaches the ask, so states = 4100 * 5 s = 20500 > 20000.
	if b3.Workers != 1 {
		t.Fatalf("fast plan workers = %d, want 1", b3.Workers)
	}
	if b3.States != 20500 {
		t.Fatalf("fast plan states = %d, want 20500", b3.States)
	}
	if b3.States <= p.Base.States {
		t.Fatalf("fast feedback did not grow the budget past the base: %d", b3.States)
	}

	// Untimed rounds (offline use) always get the base.
	if got := p.Plan(RoundInfo{Round: 4}); got != p.Base {
		t.Fatalf("untimed plan = %+v, want base", got)
	}
}

// TestAdaptivePolicyDeterministicPlans: Plan reads no clock — a fixed
// RoundReport sequence yields an identical budget sequence from any fresh
// instance. Time reaches the policy only through RoundReport.Elapsed (the
// injected clock).
func TestAdaptivePolicyDeterministicPlans(t *testing.T) {
	reports := []RoundReport{
		{States: 20000, Elapsed: 40 * time.Second},
		{States: 10000, Elapsed: 700 * time.Millisecond},
		{States: 4000, Elapsed: 11 * time.Second},
		{States: 9000, Elapsed: 3 * time.Second},
		{States: 128, Elapsed: 17 * time.Millisecond},
	}
	run := func() []Budget {
		p := &AdaptivePolicy{
			Base:       Budget{States: 20000, Workers: 2, Violations: 8},
			MaxWorkers: 8,
		}
		var plans []Budget
		for i, r := range reports {
			plan := p.Plan(RoundInfo{Round: i + 1, SnapshotBytes: 1000 + i, Interval: 10 * time.Second})
			plans = append(plans, plan)
			r.Budget = plan
			p.Observe(r)
		}
		plans = append(plans, p.Plan(RoundInfo{Round: len(reports) + 1, Interval: 10 * time.Second}))
		return plans
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same report sequence produced different plans:\n%v\nvs\n%v", a, b)
	}
}

// TestPolicyPlanObserveAllocFree: all built-in policies are allocation-free
// on the round hot path, part of the Policy contract.
func TestPolicyPlanObserveAllocFree(t *testing.T) {
	policies := map[string]Policy{
		"fixed":    &FixedPolicy{Budget: Budget{States: 20000, Workers: 2}},
		"scaled":   &ScaledPolicy{Base: Budget{States: 8000, Workers: 2}},
		"adaptive": &AdaptivePolicy{Base: Budget{States: 20000, Workers: 2}, MaxWorkers: 4},
	}
	for name, p := range policies {
		info := RoundInfo{Round: 1, SnapshotBytes: 4096, SnapshotNodes: 5, Interval: 10 * time.Second}
		if avg := testing.AllocsPerRun(1000, func() {
			plan := p.Plan(info)
			info.Round++
			p.Observe(RoundReport{
				Budget:  plan,
				States:  plan.States,
				Elapsed: time.Duration(plan.States) * 300 * time.Microsecond,
			})
		}); avg != 0 {
			t.Errorf("%s: Plan+Observe allocates %.2f/op, want 0", name, avg)
		}
	}
}

// TestPolicySpecKinds: the spec builds every built-in, defaults the empty
// kind to fixed, prefers Make, and rejects unknown kinds.
func TestPolicySpecKinds(t *testing.T) {
	base := Budget{States: 123}
	if p := (PolicySpec{Base: base}).MustNew(); p.(*FixedPolicy).Budget != base {
		t.Fatal("empty kind did not build a FixedPolicy over the base")
	}
	if _, ok := (PolicySpec{Kind: PolicyScaled}).MustNew().(*ScaledPolicy); !ok {
		t.Fatal("scaled kind did not build a ScaledPolicy")
	}
	if _, ok := (PolicySpec{Kind: PolicyAdaptive}).MustNew().(*AdaptivePolicy); !ok {
		t.Fatal("adaptive kind did not build an AdaptivePolicy")
	}
	custom := &FixedPolicy{}
	spec := PolicySpec{Kind: "nonsense", Make: func() Policy { return custom }}
	if p, err := spec.New(); err != nil || p != Policy(custom) {
		t.Fatalf("Make override: got %v, %v", p, err)
	}
	if _, err := (PolicySpec{Kind: "nonsense"}).New(); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestConfigBudgetLegacyMerge: explicit Budget fields win over the
// deprecated loose scalars, zero Budget fields fall back to them, and the
// defaulted config mirrors the resolved budget into both forms.
func TestConfigBudgetLegacyMerge(t *testing.T) {
	cfg := Config{
		Props:     poisonAt(1000),
		Factory:   newToy,
		Budget:    Budget{States: 111, Workers: 2},
		MaxStates: 999, // loses to Budget.States
		MaxDepth:  7,   // fills Budget.Depth
	}
	got := NewSearch(cfg).Config()
	if got.Budget.States != 111 || got.MaxStates != 111 {
		t.Fatalf("states = %d/%d, want 111/111", got.Budget.States, got.MaxStates)
	}
	if got.Budget.Depth != 7 || got.MaxDepth != 7 {
		t.Fatalf("depth = %d/%d, want 7/7", got.Budget.Depth, got.MaxDepth)
	}
	if got.Budget.Workers != 2 || got.Workers != 2 {
		t.Fatalf("workers = %d/%d, want 2/2", got.Budget.Workers, got.Workers)
	}
	if got.Stop() != (StopCriterion{MaxStates: 111, MaxDepth: 7}) {
		t.Fatalf("Stop() = %+v", got.Stop())
	}
}

// TestBudgetSearchMatchesLegacyConfig: a search configured through the
// Budget value explores exactly what the legacy loose-scalar configuration
// explored — the two forms are the same search.
func TestBudgetSearchMatchesLegacyConfig(t *testing.T) {
	legacy := Config{
		Props:         poisonAt(4),
		Factory:       newToy,
		Mode:          Exhaustive,
		ExploreResets: true,
		Workers:       2,
		MaxDepth:      5,
		Seed:          3,
	}
	budget := Config{
		Props:         poisonAt(4),
		Factory:       newToy,
		Mode:          Exhaustive,
		ExploreResets: true,
		Budget:        Budget{Depth: 5, Workers: 2},
		Seed:          3,
	}
	a := NewSearch(legacy).Run(multiTimerStart())
	b := NewSearch(budget).Run(multiTimerStart())
	if a.StatesExplored != b.StatesExplored || a.Transitions != b.Transitions ||
		len(a.Violations) != len(b.Violations) {
		t.Fatalf("legacy %d/%d/%d vs budget %d/%d/%d",
			a.StatesExplored, a.Transitions, len(a.Violations),
			b.StatesExplored, b.Transitions, len(b.Violations))
	}
	for i := range a.Violations {
		if a.Violations[i].StateHash != b.Violations[i].StateHash {
			t.Fatalf("violation %d hash mismatch", i)
		}
	}
}
