package mc

import (
	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// This file is the checker's sharding seam: the minimal exported surface a
// distributed search (internal/dist) needs to partition the visited set by
// state fingerprint and drive the engine's expansion hot path from outside
// the package. The engine's own frontier stays level-synchronized and
// in-process; a sharded search owns a HashRange of the fingerprint space,
// expands its owned states through an Expander, and hands successors that
// hash outside the range to their owner shard. PR 6's deque.go called the
// per-worker deques "the first step toward a sharded" search — this is the
// second.

// HashRange is a half-open range [Lo, Hi) of 64-bit state fingerprints: the
// unit of visited-set ownership in a sharded search. Hi == 0 means "top of
// the space" (2^64), so the zero value owns every fingerprint. Because
// GState.Hash is Mix64-avalanched, contiguous equal-width ranges split real
// state populations near-uniformly — no rehashing is needed to balance
// shards.
type HashRange struct {
	Lo, Hi uint64
}

// Contains reports whether the fingerprint h falls in the range.
func (r HashRange) Contains(h uint64) bool {
	return h >= r.Lo && (r.Hi == 0 || h < r.Hi)
}

// All reports whether the range covers the whole fingerprint space.
func (r HashRange) All() bool { return r.Lo == 0 && r.Hi == 0 }

// shardStep returns the width of each of n equal hash ranges. The value
// wraps to 0 at n == 1 (the full space), which Contains and ShardOwner
// treat as "everything".
func shardStep(n int) uint64 {
	if n <= 1 {
		return 0
	}
	return ^uint64(0)/uint64(n) + 1
}

// ShardRange returns shard i's hash range under an n-way equal-width
// partition of the fingerprint space. The ranges tile the space exactly:
// every fingerprint is in precisely one range, and ShardOwner agrees with
// Contains.
func ShardRange(i, n int) HashRange {
	step := shardStep(n)
	if step == 0 {
		return HashRange{}
	}
	r := HashRange{Lo: step * uint64(i)}
	if i < n-1 {
		r.Hi = step * uint64(i+1)
	}
	return r
}

// ShardOwner returns the index of the shard owning fingerprint h under the
// n-way partition of ShardRange.
func ShardOwner(h uint64, n int) int {
	step := shardStep(n)
	if step == 0 {
		return 0
	}
	i := int(h / step)
	if i >= n {
		i = n - 1
	}
	return i
}

// Expander is one worker's reusable expansion workspace for driving the
// checker's per-state hot path from outside the engine: a property check
// through a pooled view and deterministic transition enumeration through a
// pooled event buffer. It is what a shard engine calls per owned state
// instead of the engine's expandNode. An Expander is not safe for
// concurrent use — create one per worker goroutine, like the engine's
// workerRes.
type Expander struct {
	s    *Search
	view *props.View
	evb  eventBuf
}

// NewExpander returns a fresh expansion workspace bound to the search.
func (s *Search) NewExpander() *Expander {
	return &Expander{s: s, view: props.NewView()}
}

// Check evaluates the search's property set — local and global — on g
// through the expander's pooled view and returns the violated property
// names (nil when g is consistent). The returned slice is freshly
// allocated per violation and owned by the caller. Global properties are
// a pure function of g, so a shard that only ever holds its own claimed
// states still reports exactly the serial engine's violation set.
func (x *Expander) Check(g *GState) []string {
	g.FillView(x.view)
	return x.s.checkProps(x.view)
}

// Events enumerates the transitions enabled at g in the engine's canonical
// deterministic order — message-handler events in in-flight queue order,
// then per node in sorted id order the internal actions (timers sorted,
// model app calls, resets, conn breaks) — and calls emit for each. The
// order is exactly what the serial engine expands, so a sharded search
// proposing successors in emit order preserves the engine's
// sibling-ordering guarantees. emit must not reenter Events on the same
// Expander: the enumeration buffer is recycled per call.
func (x *Expander) Events(g *GState, emit func(sm.Event)) {
	network, ids, internal := x.s.enabledInto(g, &x.evb)
	for _, ev := range network {
		emit(ev)
	}
	for i := range ids {
		for _, ev := range internal[i] {
			emit(ev)
		}
	}
}

// EventLocalHash returns the local-state fingerprint of the node whose
// handler ev executes at, after ev's execution produced g — the hash the
// engine feeds its distinct-local-state coverage metric per claimed state.
// ok is false for events that touch no node-local state (RST drops).
func (g *GState) EventLocalHash(ev sm.Event) (uint64, bool) {
	id, ok := eventNode(ev)
	if !ok {
		return 0, false
	}
	ns := g.nodes[id]
	if ns == nil {
		return 0, false
	}
	return ns.localHash(), true
}

// LocalHashes appends every node's local-state fingerprint to dst and
// returns it — the root-state seeding of the distinct-local-state set
// (claims thereafter record only the event's node, see EventLocalHash).
func (g *GState) LocalHashes(dst []uint64) []uint64 {
	for _, id := range g.ids {
		dst = append(dst, g.nodes[id].localHash())
	}
	return dst
}
