package mc

import (
	"sort"
	"sync"
	"sync/atomic"

	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// visitedShards is the shard count of the concurrent hash sets. A power of
// two well above any realistic worker count keeps lock contention off the
// hot path.
const visitedShards = 64

// shardedSet is a concurrent set of state hashes, sharded by the hash's low
// bits so workers rarely contend on the same lock.
type shardedSet struct {
	shards [visitedShards]struct {
		mu sync.Mutex
		m  map[uint64]struct{}
		_  [48]byte // pad to a 64-byte cache line so shard locks don't false-share
	}
}

func newShardedSet() *shardedSet {
	s := &shardedSet{}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]struct{})
	}
	return s
}

// Add inserts h and reports whether it was absent (true = first sighting).
func (s *shardedSet) Add(h uint64) bool {
	sh := &s.shards[h%visitedShards]
	sh.mu.Lock()
	_, dup := sh.m[h]
	if !dup {
		sh.m[h] = struct{}{}
	}
	sh.mu.Unlock()
	return !dup
}

// Has reports whether h is present.
func (s *shardedSet) Has(h uint64) bool {
	sh := &s.shards[h%visitedShards]
	sh.mu.Lock()
	_, ok := sh.m[h]
	sh.mu.Unlock()
	return ok
}

// Len returns the total number of entries.
func (s *shardedSet) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// dump returns the sorted contents (differential oracles compare sets).
func (s *shardedSet) dump() []uint64 {
	out := make([]uint64, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for h := range sh.m {
			out = append(out, h)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// atomicMax raises *v to x if x is larger (CAS-max).
func atomicMax(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if x <= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// collector gathers violations from all workers, deduplicating by bug-class
// signature and keeping, per signature, the representative with the
// smallest (depth, state hash). For runs bounded only by depth or
// exhaustion the reported set is therefore identical no matter how worker
// interleavings ordered the discoveries; under a MaxViolations cutoff,
// which violating states fill the quota first — and so the reported
// membership — can still vary with >1 worker, exactly as it varies with
// the processing order of the serial checker. The quota counts violating
// *states* (every record call — each corresponds to one distinct state's
// violation onset), matching the serial checker: a search stops quickly
// once violations pile up even when they share a signature.
type collector struct {
	mu       sync.Mutex
	bySig    map[string]int
	list     []Violation
	recorded int // violating states seen, including signature duplicates
	max      int // MaxViolations (0 = unbounded)
	// filled flips once the quota is reached; record's lock-free fast path
	// reads it so post-quota workers (which may still be draining violating
	// states from their level slices) stop serializing on the mutex.
	filled atomic.Bool
}

func newCollector(max int) *collector {
	return &collector{bySig: make(map[string]int), max: max}
}

// record merges v into the collection and reports whether the violation
// quota is now (or already was) filled.
func (c *collector) record(v Violation) (quotaFilled bool) {
	if c.filled.Load() {
		return true
	}
	sig := v.Signature()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max > 0 && c.recorded >= c.max {
		return true
	}
	c.recorded++
	if i, seen := c.bySig[sig]; seen {
		old := c.list[i]
		if v.Depth < old.Depth || (v.Depth == old.Depth && v.StateHash < old.StateHash) {
			c.list[i] = v
		}
	} else {
		c.bySig[sig] = len(c.list)
		c.list = append(c.list, v)
	}
	if c.max > 0 && c.recorded >= c.max {
		c.filled.Store(true)
		return true
	}
	return false
}

// violations returns the deduplicated set sorted by depth, then state hash,
// then signature: a total order independent of discovery interleaving.
func (c *collector) violations() []Violation {
	c.mu.Lock()
	out := make([]Violation, len(c.list))
	copy(out, c.list)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Depth != out[j].Depth {
			return out[i].Depth < out[j].Depth
		}
		if out[i].StateHash != out[j].StateHash {
			return out[i].StateHash < out[j].StateHash
		}
		return out[i].Signature() < out[j].Signature()
	})
	return out
}

// engine is the worker-pool breadth-first explorer shared by the Exhaustive
// and Consequence strategies. Exploration is level-synchronized: all
// frontier states of depth d are expanded before any state of depth d+1.
// Within a level each worker owns a Chase-Lev deque seeded with a
// contiguous chunk of the level (LIFO local pops, FIFO steals when a chunk
// drains), so the frontier is contention-free in the common case; the
// deprecated shared-cursor FIFO survives behind Config.LegacyFrontier for
// benchmark comparison. Successor states are only *proposed* during
// expansion — the visited-set claims happen in one deterministic pass at
// the level barrier, in (level position, sibling) order, so every state is
// claimed at its minimal BFS depth by the same representative path at every
// worker count, and a racing worker interleaving can never change which
// parent a state's violation path runs through. With workers == 1 the
// engine reproduces the serial breadth-first search of the paper's Figures
// 5 and 8 exactly, including expansion order.
//
// With Config.Reduce on, expansion runs the sleep-set partial-order
// reduction of reduce.go: network transitions slept by the claimed node's
// sleep set are skipped (their targets are commuting-square duplicates of
// states the sibling branch claims at the same level), and children carry
// the filtered, extended sleep sets. Because claims are deterministic at
// the barrier, the sleep set attached to a claimed state — and therefore
// the whole reduced exploration — is also identical at every worker count.
type engine struct {
	s       *Search
	workers int
	prune   bool // consequence prediction's (node, local state) rule
	reduce  bool // sleep-set partial-order reduction
	legacy  bool // shared-cursor level FIFO instead of deques
	red     Reducer
	bdg     *budget
	visited *shardedSet
	local   *shardedSet // consequence-prediction dedup table
	locals  *shardedSet // distinct node-local states over claimed states
	coll    *collector
	deques  []wsDeque
	// arrivals maps state hash → the claimed child of the current level
	// (reduction only): duplicate same-level proposals intersect their
	// sleep sets into the claimed child's, restoring the promises state
	// matching would otherwise break (see intersectSleep).
	arrivals map[uint64]*searchNode
	// res holds one reusable workspace per worker (index 0 doubles as the
	// serial fast path's): the property-check view and the event-enumeration
	// buffers are recycled across every state a worker processes, so the
	// per-state path allocates only for the successors it actually keeps.
	res []workerRes
	ctr counters
}

// workerRes is one worker's reusable per-state workspace.
type workerRes struct {
	view *props.View
	evb  eventBuf
	sibs []sleepKey  // explored-sibling descriptors (reduction)
	enc  *sm.Encoder // app-call fingerprint scratch (reduction)
}

func newEngine(s *Search, workers int, prune bool) *engine {
	e := &engine{
		s:       s,
		workers: workers,
		prune:   prune,
		reduce:  s.cfg.Reduce,
		legacy:  s.cfg.LegacyFrontier,
		red:     s.cfg.Reducer,
		bdg:     newBudget(s.cfg.Stop(), s.cfg.Now),
		visited: newShardedSet(),
		local:   newShardedSet(),
		locals:  newShardedSet(),
		coll:    newCollector(s.cfg.Budget.Violations),
		deques:  make([]wsDeque, workers),
		res:     make([]workerRes, workers),
	}
	for w := range e.res {
		e.res[w].view = props.NewView()
		e.res[w].enc = sm.NewEncoder()
	}
	if e.reduce {
		e.arrivals = make(map[uint64]*searchNode)
	}
	return e
}

func (e *engine) run(start *GState) *Result {
	// Encoding and hash caches are populated at state construction (AddNode
	// / ApplyEvent), so every cross-goroutine read of shared states is a
	// pure read and Hash is an O(1) lookup of the incremental fingerprint.
	e.visited.Add(start.Hash())
	e.recordLocals(start.nodes, start.ids, nil)
	e.growFrontier(int64(start.EncodedSize()))
	level := []*searchNode{{state: start}}
	for len(level) > 0 && !e.bdg.exhausted() {
		level = e.processLevel(level)
	}

	res := &Result{
		Violations:          e.coll.violations(),
		StatesExplored:      e.bdg.statesAdmitted(),
		Transitions:         int(e.ctr.transitions.Load()),
		MaxDepthReached:     int(e.ctr.maxDepth.Load()),
		LocalPrunes:         int(e.ctr.localPrunes.Load()),
		SleepHits:           int(e.ctr.sleepHits.Load()),
		Steals:              int(e.ctr.steals.Load()),
		StealFails:          int(e.ctr.stealFails.Load()),
		DistinctLocalStates: e.locals.Len(),
		Elapsed:             e.bdg.elapsed(),
	}
	res.TransitionsPruned = res.SleepHits + res.LocalPrunes
	if e.s.cfg.RecordLocalStates {
		res.LocalStates = e.locals.dump()
	}
	if e.s.cfg.RecordClaimedStates {
		res.ClaimedStates = e.visited.dump()
	}
	// Hash-set entries cost roughly 16 bytes (8-byte key + bucket
	// overhead amortised); frontier states dominate at shallow depths.
	res.PeakMemoryBytes = e.ctr.peakBytes.Load() + int64(e.visited.Len()+e.local.Len())*16
	if res.StatesExplored > 0 {
		res.PerStateBytes = float64(res.PeakMemoryBytes) / float64(res.StatesExplored)
	}
	return res
}

// recordLocals folds newly reached node-local states into the distinct
// local-state set — the ROADMAP's coverage metric. A successor differs from
// its parent in at most the node the claiming event executed at, so claims
// record one hash; the root records every node.
func (e *engine) recordLocals(nodes map[sm.NodeID]*NodeState, ids []sm.NodeID, ev sm.Event) {
	if ev == nil {
		for _, id := range ids {
			e.locals.Add(nodes[id].localHash())
		}
		return
	}
	if id, ok := eventNode(ev); ok {
		if ns := nodes[id]; ns != nil {
			e.locals.Add(ns.localHash())
		}
	}
}

// eventNode returns the node whose local state an event's handler mutates
// (drops touch no node; they only remove an in-flight RST).
func eventNode(ev sm.Event) (sm.NodeID, bool) {
	switch e := ev.(type) {
	case sm.MsgEvent:
		return e.To, true
	case sm.TimerEvent:
		return e.At, true
	case sm.AppEvent:
		return e.At, true
	case sm.ResetEvent:
		return e.At, true
	case sm.ErrorEvent:
		return e.At, true
	default:
		return 0, false
	}
}

// processLevel expands every state of one BFS level and returns the next.
// Expansion only proposes children; the visited-set claims — and the
// consequence-prediction (node, local state) claims — are applied at the
// level barrier. The pruning tables therefore consult strictly earlier
// levels and the claim order is a pure function of the level's order, so
// the exploration is identical at every worker count.
func (e *engine) processLevel(level []*searchNode) []*searchNode {
	outs := make([][]*searchNode, len(level))
	claims := make([][]uint64, e.workers)
	switch {
	case e.workers == 1 || len(level) == 1:
		// Serial fast path: identical order to the paper's FIFO search.
		for i, node := range level {
			if !e.bdg.admitState() {
				break
			}
			outs[i] = e.expandNode(node, &claims[0], &e.res[0])
			if e.bdg.exhausted() {
				break
			}
		}
	case e.legacy:
		e.runLevelShared(level, outs, claims)
	default:
		e.runLevelSteal(level, outs, claims)
	}
	for w := range claims {
		e.mergeClaims(claims[w])
	}
	return e.claimChildren(outs)
}

// runLevelShared is the legacy frontier: N workers pulling from the shared
// level slice through one atomic cursor. Kept behind Config.LegacyFrontier
// as the baseline BenchmarkParallelSearch compares the deques against.
func (e *engine) runLevelShared(level []*searchNode, outs [][]*searchNode, claims [][]uint64) {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(level) || e.bdg.exhausted() || !e.bdg.admitState() {
					break
				}
				outs[i] = e.expandNode(level[i], &claims[w], &e.res[w])
			}
		}(w)
	}
	wg.Wait()
}

// runLevelSteal is the work-stealing frontier: each worker's deque is
// seeded with a contiguous chunk of the level; owners pop LIFO from their
// own deque and steal FIFO from round-robin victims once it drains.
func (e *engine) runLevelSteal(level []*searchNode, outs [][]*searchNode, claims [][]uint64) {
	chunk := (len(level) + e.workers - 1) / e.workers
	for w := 0; w < e.workers; w++ {
		lo := w * chunk
		if lo > len(level) {
			lo = len(level)
		}
		hi := lo + chunk
		if hi > len(level) {
			hi = len(level)
		}
		e.deques[w].reset(lo, hi-lo)
	}
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !e.bdg.exhausted() {
				idx, ok := e.deques[w].pop()
				if !ok {
					idx, ok = e.stealWork(w)
					if !ok {
						return
					}
				}
				if !e.bdg.admitState() {
					return
				}
				outs[idx] = e.expandNode(level[idx], &claims[w], &e.res[w])
			}
		}(w)
	}
	wg.Wait()
}

// stealWork scans the other workers' deques round-robin for an item. It
// returns ok=false only once every deque is empty; a lost CAS (the item
// went to someone else) counts as a steal failure and rescans.
func (e *engine) stealWork(w int) (int32, bool) {
	for {
		drained := true
		for off := 1; off < e.workers; off++ {
			idx, ok, raced := e.deques[(w+off)%e.workers].steal()
			if ok {
				e.ctr.steals.Add(1)
				return idx, true
			}
			if raced {
				e.ctr.stealFails.Add(1)
				drained = false
			}
		}
		if drained {
			return 0, false
		}
	}
}

// claimChildren runs the deterministic claim pass of the level barrier:
// proposed children are claimed against the visited set in (level
// position, sibling) order — exactly the serial engine's order — so the
// surviving next level, each state's representative parent path and each
// state's sleep set are worker-count independent.
//
//crystal:hotpath
func (e *engine) claimChildren(outs [][]*searchNode) []*searchNode {
	total := 0
	for _, children := range outs {
		total += len(children)
	}
	next := make([]*searchNode, 0, total)
	if e.reduce {
		clear(e.arrivals)
	}
	for _, children := range outs {
		for _, child := range children {
			h := child.state.Hash()
			if !e.visited.Add(h) {
				if e.reduce {
					if prior, ok := e.arrivals[h]; ok {
						prior.sleep = intersectSleep(prior.sleep, child.sleep)
					}
				}
				continue
			}
			if e.reduce {
				e.arrivals[h] = child
			}
			e.growFrontier(int64(child.state.EncodedSize()))
			e.recordLocals(child.state.nodes, child.state.ids, child.event)
			next = append(next, child)
		}
	}
	return next
}

func (e *engine) mergeClaims(claims []uint64) {
	for _, lh := range claims {
		e.local.Add(lh)
	}
}

func (e *engine) growFrontier(delta int64) {
	atomicMax(&e.ctr.peakBytes, e.ctr.frontierBytes.Add(delta))
}

// expandNode explores one admitted state: check properties, expand
// successors (cloning before every handler invocation, so the shared
// predecessor state is never written), and return the proposed children —
// the level barrier claims them. Consequence (node, local state) claims go
// to *claims for the level-barrier merge. res is the calling worker's
// reusable workspace: the property-check view and enumeration buffers are
// refilled per state instead of reallocated. With reduction on, network
// transitions slept by node's sleep set are skipped and each child carries
// its inherited-and-extended sleep set (reduce.go).
//
//crystal:hotpath
func (e *engine) expandNode(node *searchNode, claims *[]uint64, res *workerRes) []*searchNode {
	e.ctr.frontierBytes.Add(-int64(node.state.EncodedSize()))
	atomicMax(&e.ctr.maxDepth, int64(node.depth))

	// Report the *onset* of each violation — properties violated here but
	// not on the path so far — then keep exploring, as the paper's search
	// does: a start state that already violates one property must not
	// mask deeper, different bugs.
	pathViolated := node.violated
	node.state.FillView(res.view)
	if violated := e.s.checkProps(res.view); len(violated) > 0 {
		onset := make([]string, 0, len(violated))
		for _, p := range violated {
			if !pathViolated[p] {
				onset = append(onset, p)
			}
		}
		if len(onset) > 0 {
			if e.coll.record(Violation{
				Properties: onset,
				Path:       node.path(),
				StateHash:  node.state.Hash(),
				Depth:      node.depth,
			}) {
				e.bdg.halt()
			}
			next := make(map[string]bool, len(pathViolated)+len(onset))
			for p := range pathViolated {
				next[p] = true
			}
			for _, p := range onset {
				next[p] = true
			}
			pathViolated = next
		}
	}
	if e.bdg.crit.MaxDepth > 0 && node.depth >= e.bdg.crit.MaxDepth {
		return nil
	}

	var children []*searchNode
	expand := func(ev sm.Event, sleep sleepSet) bool {
		if !e.bdg.admitTransition() {
			return false
		}
		next := e.s.ApplyEvent(node.state, ev)
		if next == nil {
			e.bdg.refundTransition()
			return false
		}
		e.ctr.transitions.Add(1)
		children = append(children, &searchNode{
			state: next, parent: node, event: ev,
			depth: node.depth + 1, violated: pathViolated, sleep: sleep,
		})
		return true
	}

	network, ids, internal := e.s.enabledInto(node.state, &res.evb)
	// H_M: always process all network handlers (Figure 8 line 13) — minus,
	// under reduction, the transitions this node's sleep set proves are
	// commuting-square duplicates of a sibling branch.
	sibs := res.sibs[:0]
	for _, ev := range network {
		if !e.reduce {
			expand(ev, nil)
			continue
		}
		k, ok := e.red.Classify(ev)
		if !ok {
			// Unclassified network transition: never slept, and its
			// effects are unknown, so children start a fresh sleep set.
			expand(ev, nil)
			continue
		}
		if node.sleep.contains(k) {
			e.ctr.sleepHits.Add(1)
			continue
		}
		if expand(ev, childSleep(node.sleep, sibs, k)) {
			sibs = append(sibs, k)
		}
	}
	// H_A: internal actions, pruned per (node, local state) in
	// consequence mode (Figure 8 lines 16-20). In exhaustive mode,
	// classified internal transitions (timers, conn-breaks, app calls)
	// participate in the reduction exactly like deliveries: each executes
	// at one node and its enabledness is a function of that node's state
	// alone, so it commutes with every transition of a different class.
	// App calls are classified structurally — ModelAppCalls(n) depends
	// only on n's service state, and the (call name, EncodeCall
	// fingerprint) pair pins the exact call so aliasing between same-named
	// calls is impossible. Any other unclassified internal transition is
	// never slept and never promises, but still passes the inherited
	// entries it commutes with through to its children; resets invalidate
	// in-flight messages wholesale and clear the set (reduce.go).
	//
	// In consequence mode (e.prune), sleep promises must not cross H_A
	// edges: a promise's commuting-square closure replays the entering
	// edge from the sibling state, and an H_A edge is expanded only at the
	// FIRST state claiming its (node, local state) — by the time the
	// sibling's subtree reaches the commuted state, the local state is
	// claimed and the closure edge is pruned, never closing the square.
	// So under the consequence rule, H_A-entered children start with empty
	// sleep sets and H_A expansions never promise; H_A transitions may
	// still BE slept (their closure replays only the H_M edges the entry
	// survived). The differential oracle pins set-equality for both modes.
	for i, id := range ids {
		evs := internal[i]
		if len(evs) == 0 {
			continue
		}
		if e.prune {
			lh := node.state.nodes[id].localHash()
			if e.local.Has(lh) {
				e.ctr.localPrunes.Add(int64(len(evs)))
				continue
			}
			*claims = append(*claims, lh)
		}
		for _, ev := range evs {
			if !e.reduce {
				expand(ev, nil)
				continue
			}
			if _, isReset := ev.(sm.ResetEvent); isReset {
				expand(ev, nil)
				continue
			}
			k, ok := e.red.Classify(ev)
			if !ok {
				if ae, isApp := ev.(sm.AppEvent); isApp {
					res.enc.Reset()
					ae.Call.EncodeCall(res.enc)
					k = sleepKey{to: ae.At, typ: ae.Call.CallName(), arg: res.enc.Hash(), kind: sleepApp}
					ok = true
				}
			}
			if !ok {
				// Unclassified internal transition: effects unknown, so
				// its children start a fresh sleep set.
				expand(ev, nil)
				continue
			}
			if node.sleep.contains(k) {
				e.ctr.sleepHits.Add(1)
				continue
			}
			if expand(ev, e.internalSleep(node.sleep, sibs, k)) && !e.prune {
				sibs = append(sibs, k)
			}
		}
	}
	res.sibs = sibs
	return children
}

// internalSleep builds the sleep set for a child entered through the
// internal (H_A) transition named by enter: the usual commuting filter in
// exhaustive mode, the empty set in consequence mode (promises cannot
// cross once-per-local-state edges; see the expandNode H_A comment).
func (e *engine) internalSleep(inherited sleepSet, siblings []sleepKey, enter sleepKey) sleepSet {
	if e.prune {
		return nil
	}
	return childSleep(inherited, siblings, enter)
}
