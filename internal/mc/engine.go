package mc

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// visitedShards is the shard count of the concurrent hash sets. A power of
// two well above any realistic worker count keeps lock contention off the
// hot path.
const visitedShards = 64

// shardedSet is a concurrent set of state hashes, sharded by the hash's low
// bits so workers rarely contend on the same lock.
type shardedSet struct {
	shards [visitedShards]struct {
		mu sync.Mutex
		m  map[uint64]struct{}
		_  [48]byte // pad to a 64-byte cache line so shard locks don't false-share
	}
}

func newShardedSet() *shardedSet {
	s := &shardedSet{}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]struct{})
	}
	return s
}

// Add inserts h and reports whether it was absent (true = first sighting).
func (s *shardedSet) Add(h uint64) bool {
	sh := &s.shards[h%visitedShards]
	sh.mu.Lock()
	_, dup := sh.m[h]
	if !dup {
		sh.m[h] = struct{}{}
	}
	sh.mu.Unlock()
	return !dup
}

// Has reports whether h is present.
func (s *shardedSet) Has(h uint64) bool {
	sh := &s.shards[h%visitedShards]
	sh.mu.Lock()
	_, ok := sh.m[h]
	sh.mu.Unlock()
	return ok
}

// Len returns the total number of entries.
func (s *shardedSet) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// atomicMax raises *v to x if x is larger (CAS-max).
func atomicMax(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if x <= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// collector gathers violations from all workers, deduplicating by bug-class
// signature and keeping, per signature, the representative with the
// smallest (depth, state hash). For runs bounded only by depth or
// exhaustion the reported set is therefore identical no matter how worker
// interleavings ordered the discoveries; under a MaxViolations cutoff,
// which violating states fill the quota first — and so the reported
// membership — can still vary with >1 worker, exactly as it varies with
// the processing order of the serial checker. The quota counts violating
// *states* (every record call — each corresponds to one distinct state's
// violation onset), matching the serial checker: a search stops quickly
// once violations pile up even when they share a signature.
type collector struct {
	mu       sync.Mutex
	bySig    map[string]int
	list     []Violation
	recorded int // violating states seen, including signature duplicates
	max      int // MaxViolations (0 = unbounded)
	// filled flips once the quota is reached; record's lock-free fast path
	// reads it so post-quota workers (which may still be draining violating
	// states from their level slices) stop serializing on the mutex.
	filled atomic.Bool
}

func newCollector(max int) *collector {
	return &collector{bySig: make(map[string]int), max: max}
}

// record merges v into the collection and reports whether the violation
// quota is now (or already was) filled.
func (c *collector) record(v Violation) (quotaFilled bool) {
	if c.filled.Load() {
		return true
	}
	sig := v.Signature()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max > 0 && c.recorded >= c.max {
		return true
	}
	c.recorded++
	if i, seen := c.bySig[sig]; seen {
		old := c.list[i]
		if v.Depth < old.Depth || (v.Depth == old.Depth && v.StateHash < old.StateHash) {
			c.list[i] = v
		}
	} else {
		c.bySig[sig] = len(c.list)
		c.list = append(c.list, v)
	}
	if c.max > 0 && c.recorded >= c.max {
		c.filled.Store(true)
		return true
	}
	return false
}

// violations returns the deduplicated set sorted by depth, then state hash,
// then signature: a total order independent of discovery interleaving.
func (c *collector) violations() []Violation {
	c.mu.Lock()
	out := make([]Violation, len(c.list))
	copy(out, c.list)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Depth != out[j].Depth {
			return out[i].Depth < out[j].Depth
		}
		if out[i].StateHash != out[j].StateHash {
			return out[i].StateHash < out[j].StateHash
		}
		return out[i].Signature() < out[j].Signature()
	})
	return out
}

// engine is the worker-pool breadth-first explorer shared by the Exhaustive
// and Consequence strategies. Exploration is level-synchronized: all
// frontier states of depth d are expanded (N workers pulling from the
// shared level via an atomic cursor) before any state of depth d+1, so a
// state's first visited-set claim always happens at its minimal BFS depth —
// a racing longer path can never claim a state first and prune the shorter
// path's subtree under a depth bound. Successors dedupe through the
// hash-sharded visited set; with workers == 1 the engine reproduces the
// serial breadth-first search of the paper's Figures 5 and 8 exactly,
// including expansion order.
type engine struct {
	s       *Search
	workers int
	prune   bool // consequence prediction's (node, local state) rule
	bdg     *budget
	visited *shardedSet
	local   *shardedSet // consequence-prediction dedup table
	coll    *collector
	// res holds one reusable workspace per worker (index 0 doubles as the
	// serial fast path's): the property-check view and the event-enumeration
	// buffers are recycled across every state a worker processes, so the
	// per-state path allocates only for the successors it actually keeps.
	res []workerRes

	transitions   atomic.Int64
	localPrunes   atomic.Int64
	maxDepth      atomic.Int64
	frontierBytes atomic.Int64
	peakBytes     atomic.Int64
}

// workerRes is one worker's reusable per-state workspace.
type workerRes struct {
	view *props.View
	evb  eventBuf
}

func newEngine(s *Search, workers int, prune bool) *engine {
	e := &engine{
		s:       s,
		workers: workers,
		prune:   prune,
		bdg:     newBudget(s.cfg.Stop(), time.Now()),
		visited: newShardedSet(),
		local:   newShardedSet(),
		coll:    newCollector(s.cfg.Budget.Violations),
		res:     make([]workerRes, workers),
	}
	for w := range e.res {
		e.res[w].view = props.NewView()
	}
	return e
}

func (e *engine) run(start *GState) *Result {
	// Encoding and hash caches are populated at state construction (AddNode
	// / ApplyEvent), so every cross-goroutine read of shared states is a
	// pure read and Hash is an O(1) lookup of the incremental fingerprint.
	e.visited.Add(start.Hash())
	e.growFrontier(int64(start.EncodedSize()))
	level := []*searchNode{{state: start}}
	for len(level) > 0 && !e.bdg.exhausted() {
		level = e.processLevel(level)
	}

	res := &Result{
		Violations:      e.coll.violations(),
		StatesExplored:  e.bdg.statesAdmitted(),
		Transitions:     int(e.transitions.Load()),
		MaxDepthReached: int(e.maxDepth.Load()),
		LocalPrunes:     int(e.localPrunes.Load()),
		Elapsed:         time.Since(e.bdg.began),
	}
	// Hash-set entries cost roughly 16 bytes (8-byte key + bucket
	// overhead amortised); frontier states dominate at shallow depths.
	res.PeakMemoryBytes = e.peakBytes.Load() + int64(e.visited.Len()+e.local.Len())*16
	if res.StatesExplored > 0 {
		res.PerStateBytes = float64(res.PeakMemoryBytes) / float64(res.StatesExplored)
	}
	return res
}

// processLevel expands every state of one BFS level and returns the next.
// Consequence-prediction (node, local state) claims made during a level are
// merged into the dedup table only at the level barrier: the pruning test
// consults strictly earlier levels, so whether a same-level twin expands
// does not depend on which worker got there first — the exploration is
// identical at every worker count.
func (e *engine) processLevel(level []*searchNode) []*searchNode {
	if e.workers == 1 || len(level) == 1 {
		// Serial fast path: identical order to the paper's FIFO search.
		var next []*searchNode
		var claims []uint64
		for _, node := range level {
			if !e.bdg.admitState() {
				return nil
			}
			next = append(next, e.process(node, &claims, &e.res[0])...)
			if e.bdg.exhausted() {
				break
			}
		}
		e.mergeClaims(claims)
		return next
	}
	var cursor atomic.Int64
	parts := make([][]*searchNode, e.workers)
	claims := make([][]uint64, e.workers)
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(level) || e.bdg.exhausted() || !e.bdg.admitState() {
					break
				}
				parts[w] = append(parts[w], e.process(level[i], &claims[w], &e.res[w])...)
			}
		}(w)
	}
	wg.Wait()
	var next []*searchNode
	for w := range parts {
		next = append(next, parts[w]...)
		e.mergeClaims(claims[w])
	}
	return next
}

func (e *engine) mergeClaims(claims []uint64) {
	for _, lh := range claims {
		e.local.Add(lh)
	}
}

func (e *engine) growFrontier(delta int64) {
	atomicMax(&e.peakBytes, e.frontierBytes.Add(delta))
}

// process explores one admitted state: check properties, expand successors
// (cloning before every handler invocation, so the shared predecessor state
// is never written), and return the newly claimed children. Consequence
// (node, local state) claims go to *claims for the level-barrier merge.
// res is the calling worker's reusable workspace: the property-check view
// and enumeration buffers are refilled per state instead of reallocated.
func (e *engine) process(node *searchNode, claims *[]uint64, res *workerRes) []*searchNode {
	e.frontierBytes.Add(-int64(node.state.EncodedSize()))
	atomicMax(&e.maxDepth, int64(node.depth))

	// Report the *onset* of each violation — properties violated here but
	// not on the path so far — then keep exploring, as the paper's search
	// does: a start state that already violates one property must not
	// mask deeper, different bugs.
	pathViolated := node.violated
	node.state.FillView(res.view)
	if violated := e.s.cfg.Props.Check(res.view); len(violated) > 0 {
		var onset []string
		for _, p := range violated {
			if !pathViolated[p] {
				onset = append(onset, p)
			}
		}
		if len(onset) > 0 {
			if e.coll.record(Violation{
				Properties: onset,
				Path:       node.path(),
				StateHash:  node.state.Hash(),
				Depth:      node.depth,
			}) {
				e.bdg.halt()
			}
			next := make(map[string]bool, len(pathViolated)+len(onset))
			for p := range pathViolated {
				next[p] = true
			}
			for _, p := range onset {
				next[p] = true
			}
			pathViolated = next
		}
	}
	if e.bdg.crit.MaxDepth > 0 && node.depth >= e.bdg.crit.MaxDepth {
		return nil
	}

	var children []*searchNode
	expand := func(ev sm.Event) {
		next := e.s.ApplyEvent(node.state, ev)
		if next == nil {
			return
		}
		e.transitions.Add(1)
		h := next.Hash() // O(1): maintained incrementally during apply
		if !e.visited.Add(h) {
			return
		}
		e.growFrontier(int64(next.EncodedSize()))
		children = append(children, &searchNode{
			state: next, parent: node, event: ev,
			depth: node.depth + 1, violated: pathViolated,
		})
	}

	network, ids, internal := e.s.enabledInto(node.state, &res.evb)
	// H_M: always process all network handlers (Figure 8 line 13).
	for _, ev := range network {
		expand(ev)
	}
	// H_A: internal actions, pruned per (node, local state) in
	// consequence mode (Figure 8 lines 16-20).
	for i, id := range ids {
		evs := internal[i]
		if len(evs) == 0 {
			continue
		}
		if e.prune {
			lh := node.state.nodes[id].localHash()
			if e.local.Has(lh) {
				e.localPrunes.Add(int64(len(evs)))
				continue
			}
			*claims = append(*claims, lh)
		}
		for _, ev := range evs {
			expand(ev)
		}
	}
	return children
}
