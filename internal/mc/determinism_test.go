package mc

import (
	"reflect"
	"testing"

	"crystalball/internal/sm"
)

// multiTimerStart builds a 2-node toy state where every node holds several
// pending timers: under the old map-iteration enumeration the timer events'
// order was Go-map-random, so same-seed random walks chose different
// transitions run to run. With resets enabled the reset transition's RST
// fan-out order is exercised too.
func multiTimerStart() *GState {
	g := NewGState()
	a, b := newToy(1).(*toy), newToy(2).(*toy)
	a.peers[2] = true
	b.peers[1] = true
	g.AddNode(1, a, map[sm.TimerID]bool{"tick": true, "tock": true, "boom": true, "zap": true})
	g.AddNode(2, b, map[sm.TimerID]bool{"tick": true, "alpha": true, "omega": true})
	g.AddMessage(1, 2, ping{N: 1})
	return g
}

// TestRandomWalkSameSeedReproducible: two random-walk runs with identical
// configuration must be byte-identical — same transition count, same
// violation set, same chosen paths. This is the regression test for the
// map-order bug in EnabledEvents' timer enumeration (and the reset
// transition's peer fan-out): internal-event order must be deterministic or
// rng.Perm maps the same indices to different transitions every run.
func TestRandomWalkSameSeedReproducible(t *testing.T) {
	run := func() *Result {
		s := NewSearch(Config{
			Props:         poisonAt(4),
			Factory:       newToy,
			Mode:          RandomWalk,
			Walks:         80,
			WalkDepth:     25,
			Workers:       2,
			Seed:          42,
			ExploreResets: true,
		})
		return s.Run(multiTimerStart())
	}
	a, b := run(), run()
	if a.Transitions != b.Transitions {
		t.Fatalf("same-seed walks took different transition counts: %d vs %d",
			a.Transitions, b.Transitions)
	}
	if a.StatesExplored != b.StatesExplored {
		t.Fatalf("same-seed walks admitted different state counts: %d vs %d",
			a.StatesExplored, b.StatesExplored)
	}
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("same-seed walks found different violation counts: %d vs %d",
			len(a.Violations), len(b.Violations))
	}
	for i := range a.Violations {
		va, vb := a.Violations[i], b.Violations[i]
		if va.StateHash != vb.StateHash || va.Depth != vb.Depth {
			t.Fatalf("violation %d differs: hash %d/%d depth %d/%d",
				i, va.StateHash, vb.StateHash, va.Depth, vb.Depth)
		}
		if !reflect.DeepEqual(va.Properties, vb.Properties) {
			t.Fatalf("violation %d properties differ: %v vs %v", i, va.Properties, vb.Properties)
		}
		if !reflect.DeepEqual(describePath(va.Path), describePath(vb.Path)) {
			t.Fatalf("violation %d chose different paths:\n%v\nvs\n%v",
				i, describePath(va.Path), describePath(vb.Path))
		}
	}
}

// TestSerialBFSSameSeedReproducible: under a state cutoff the serial engine
// admits a prefix of the expansion order, so any map-order leak into event
// enumeration shows up as run-to-run drift in the admitted set. Resets are
// enabled to cover the reset transition's RST fan-out ordering, and both
// partial-order-reduction settings are exercised — the sleep-set machinery
// must be as deterministic as the expansion order it prunes.
func TestSerialBFSSameSeedReproducible(t *testing.T) {
	for _, mode := range []Mode{Exhaustive, Consequence} {
		for _, reduce := range []bool{false, true} {
			run := func() *Result {
				s := NewSearch(Config{
					Props:         poisonAt(4),
					Factory:       newToy,
					Mode:          mode,
					MaxStates:     1500,
					Workers:       1,
					Seed:          7,
					ExploreResets: true,
					Reduce:        reduce,
				})
				return s.Run(multiTimerStart())
			}
			a, b := run(), run()
			if a.StatesExplored != b.StatesExplored || a.Transitions != b.Transitions {
				t.Fatalf("%v reduce=%v: same-seed serial runs differ: states %d/%d transitions %d/%d",
					mode, reduce, a.StatesExplored, b.StatesExplored, a.Transitions, b.Transitions)
			}
			if a.SleepHits != b.SleepHits || a.TransitionsPruned != b.TransitionsPruned {
				t.Fatalf("%v reduce=%v: same-seed counters differ: sleep %d/%d pruned %d/%d",
					mode, reduce, a.SleepHits, b.SleepHits, a.TransitionsPruned, b.TransitionsPruned)
			}
			if len(a.Violations) != len(b.Violations) {
				t.Fatalf("%v reduce=%v: violation counts differ: %d vs %d", mode, reduce, len(a.Violations), len(b.Violations))
			}
			for i := range a.Violations {
				if a.Violations[i].StateHash != b.Violations[i].StateHash {
					t.Fatalf("%v reduce=%v: violation %d hash differs", mode, reduce, i)
				}
			}
		}
	}
}

// TestEnabledEventsDeterministicOrder: repeated enumerations of the same
// state list events in the same order, timers sorted by id.
func TestEnabledEventsDeterministicOrder(t *testing.T) {
	g := multiTimerStart()
	s := NewSearch(Config{Props: poisonAt(4), Factory: newToy, ExploreResets: true})
	network, internal := s.EnabledEvents(g)
	base := append([]string{}, describePath(network)...)
	for _, id := range g.Nodes() {
		base = append(base, describePath(internal[id])...)
	}
	for trial := 0; trial < 20; trial++ {
		network, internal := s.EnabledEvents(g)
		got := append([]string{}, describePath(network)...)
		for _, id := range g.Nodes() {
			got = append(got, describePath(internal[id])...)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("enumeration order drifted on trial %d:\n%v\nvs\n%v", trial, got, base)
		}
	}
	// Timer events for node 1 must appear in sorted timer-id order.
	var timerOrder []string
	for _, ev := range internal[1] {
		if te, ok := ev.(sm.TimerEvent); ok {
			timerOrder = append(timerOrder, string(te.Timer))
		}
	}
	want := []string{"boom", "tick", "tock", "zap"}
	if !reflect.DeepEqual(timerOrder, want) {
		t.Fatalf("timer order %v, want sorted %v", timerOrder, want)
	}
}
