package mc

import (
	"reflect"
	"sort"
	"testing"

	"crystalball/internal/sm"
)

// distinctSignatures returns the sorted violation-signature set of a result
// (Result.Violations is already deduplicated by signature). The Chord and
// Paxos determinism twins of these tests live in services_test.go (package
// mc_test): real services register scenarios, whose package imports mc.
func distinctSignatures(res *Result) []string {
	out := make([]string, 0, len(res.Violations))
	for _, v := range res.Violations {
		out = append(out, v.Signature())
	}
	sort.Strings(out)
	return out
}

// TestParallelMatchesSerialToy: a depth-bounded exploration (no state or
// violation cutoff, so the reachable set is interleaving-independent) must
// report the same state count and the same distinct violation signatures at
// any worker count, for both breadth-first strategies.
func TestParallelMatchesSerialToy(t *testing.T) {
	for _, mode := range []Mode{Exhaustive, Consequence} {
		run := func(workers int) *Result {
			s := NewSearch(Config{
				Props:         poisonAt(3),
				Factory:       newToy,
				Mode:          mode,
				MaxDepth:      6,
				Workers:       workers,
				ExploreResets: true,
			})
			return s.Run(twoNodeStart())
		}
		serial := run(1)
		if len(serial.Violations) == 0 {
			t.Fatalf("%v: setup found no violations", mode)
		}
		for _, workers := range []int{2, 4, 8} {
			par := run(workers)
			if par.StatesExplored != serial.StatesExplored {
				t.Errorf("%v workers=%d: states %d, serial %d",
					mode, workers, par.StatesExplored, serial.StatesExplored)
			}
			if got, want := distinctSignatures(par), distinctSignatures(serial); !reflect.DeepEqual(got, want) {
				t.Errorf("%v workers=%d: signatures %v, serial %v", mode, workers, got, want)
			}
		}
	}
}

// TestParallelViolationsSortedDeterministically: the deduplicated violation
// list is ordered by (depth, hash) regardless of discovery order.
func TestParallelViolationsSortedDeterministically(t *testing.T) {
	s := NewSearch(Config{
		Props:         poisonAt(2),
		Factory:       newToy,
		Mode:          Exhaustive,
		MaxDepth:      6,
		Workers:       4,
		ExploreResets: true,
	})
	res := s.Run(twoNodeStart())
	for i := 1; i < len(res.Violations); i++ {
		a, b := res.Violations[i-1], res.Violations[i]
		if a.Depth > b.Depth || (a.Depth == b.Depth && a.StateHash > b.StateHash) {
			t.Fatalf("violations not sorted at %d: (%d,%d) then (%d,%d)",
				i, a.Depth, a.StateHash, b.Depth, b.StateHash)
		}
	}
}

// TestParallelRandomWalk: walks derive their randomness from the walk
// index, so the walk count and discovered signatures are stable across
// worker counts.
func TestParallelRandomWalk(t *testing.T) {
	run := func(workers int) *Result {
		s := NewSearch(Config{
			Props:     poisonAt(3),
			Factory:   newToy,
			Mode:      RandomWalk,
			Walks:     60,
			WalkDepth: 20,
			Workers:   workers,
			Seed:      1,
		})
		return s.Run(twoNodeStart())
	}
	serial := run(1)
	if len(serial.Violations) == 0 {
		t.Fatal("serial walks missed the violation")
	}
	parallel := run(4)
	if got, want := distinctSignatures(parallel), distinctSignatures(serial); !reflect.DeepEqual(got, want) {
		t.Fatalf("workers=4 signatures %v, serial %v", got, want)
	}
}

// TestCustomStrategyPluggable: Config.Strategy overrides Mode, and a
// strategy built from the exported EnabledEvents/ApplyEvent surface can
// drive its own exploration.
func TestCustomStrategyPluggable(t *testing.T) {
	s := NewSearch(Config{
		Props:    poisonAt(3),
		Factory:  newToy,
		Mode:     RandomWalk, // must be ignored in favor of Strategy
		Strategy: firstEnabledStrategy{},
	})
	res := s.Run(twoNodeStart())
	if res.StatesExplored == 0 {
		t.Fatal("custom strategy explored nothing")
	}
	if res.Workers == 0 {
		t.Fatal("worker count not reported")
	}
}

// firstEnabledStrategy walks the single path of always-first enabled
// events, demonstrating an externally assembled Strategy.
type firstEnabledStrategy struct{}

func (firstEnabledStrategy) Name() string { return "first-enabled" }

func (firstEnabledStrategy) Explore(s *Search, start *GState, workers int) *Result {
	res := &Result{}
	g := start
	for depth := 0; depth < 10; depth++ {
		res.StatesExplored++
		network, internal := s.EnabledEvents(g)
		all := network
		for _, id := range g.Nodes() {
			all = append(all, internal[id]...)
		}
		var next *GState
		for _, ev := range all {
			if next = s.ApplyEvent(g, ev); next != nil {
				break
			}
		}
		if next == nil {
			break
		}
		res.Transitions++
		g = next
	}
	return res
}

// --- Replay and filter-application coverage ---------------------------------

// TestReplayStopsAtFirstViolation: Replay returns the violated properties
// of the earliest violating state along the path, not the path's end.
func TestReplayStopsAtFirstViolation(t *testing.T) {
	cfg := Config{Props: poisonAt(3), Factory: newToy, Mode: Consequence, MaxStates: 10000}
	res := NewSearch(cfg).Run(twoNodeStart())
	if len(res.Violations) == 0 {
		t.Fatal("setup: no violation")
	}
	// Extending a violating path with junk events must not hide the
	// violation: replay stops at the first violating state.
	path := append(append([]sm.Event{}, res.Violations[0].Path...),
		sm.TimerEvent{At: 1, Timer: "nonexistent"})
	if got := NewSearch(cfg).Replay(twoNodeStart(), path); len(got) == 0 {
		t.Fatal("replay missed the violation on the extended path")
	}
}

// TestReplayViolatingStartState: a start state that already violates
// reports immediately, with an empty remaining path.
func TestReplayViolatingStartState(t *testing.T) {
	g := NewGState()
	a := newToy(1).(*toy)
	a.counter = 99
	g.AddNode(1, a, nil)
	cfg := Config{Props: poisonAt(3), Factory: newToy}
	if got := NewSearch(cfg).Replay(g, nil); len(got) == 0 {
		t.Fatal("replay ignored a violating start state")
	}
}

// TestReplayHonorsFilters: replaying a path whose first event is filtered
// follows the corrective action (drop), so the downstream violation
// becomes unreachable.
func TestReplayHonorsFilters(t *testing.T) {
	cfg := Config{Props: poisonAt(3), Factory: newToy, Mode: Consequence, MaxStates: 10000}
	res := NewSearch(cfg).Run(twoNodeStart())
	if len(res.Violations) == 0 {
		t.Fatal("setup: no violation")
	}
	path := res.Violations[0].Path
	var filter sm.Filter
	found := false
	for _, ev := range path {
		if f, ok := sm.FilterForEvent(ev); ok {
			filter, found = f, true
			break
		}
	}
	if !found {
		t.Fatalf("no filterable event in path %v", describePath(path))
	}
	cfg.Filters = []sm.Filter{filter}
	if got := NewSearch(cfg).Replay(twoNodeStart(), path); got != nil {
		t.Fatalf("filtered replay still violated %v", got)
	}
}

// TestFilterForPrecedence: the first installed filter matching an event
// wins.
func TestFilterForPrecedence(t *testing.T) {
	f1 := sm.Filter{Kind: sm.FilterMessage, Node: 2, From: 1, MsgType: "Ping"}
	f2 := sm.Filter{Kind: sm.FilterMessage, Node: 2, From: 1, MsgType: "Ping", BreakConn: true}
	s := NewSearch(Config{Props: poisonAt(3), Factory: newToy, Filters: []sm.Filter{f1, f2}})
	got, ok := s.filterFor(sm.MsgEvent{From: 1, To: 2, Msg: ping{N: 1}})
	if !ok || got.BreakConn {
		t.Fatalf("filterFor returned %+v ok=%v, want first filter", got, ok)
	}
	if _, ok := s.filterFor(sm.MsgEvent{From: 2, To: 1, Msg: ping{N: 1}}); ok {
		t.Fatal("filterFor matched an event no filter covers")
	}
}

// TestApplyFilteredDropsMessage: the corrective action consumes the
// in-flight message without running the handler.
func TestApplyFilteredDropsMessage(t *testing.T) {
	g := twoNodeStart()
	s := NewSearch(Config{Props: poisonAt(3), Factory: newToy})
	ev := sm.MsgEvent{From: 1, To: 2, Msg: ping{N: 1}}
	next := s.applyFiltered(g, ev, sm.Filter{Kind: sm.FilterMessage, Node: 2, From: 1, MsgType: "Ping"}, getScratch())
	if next == nil {
		t.Fatal("filtered apply failed on an in-flight message")
	}
	if next.InFlightCount() != 0 {
		t.Fatalf("message not consumed: %d in flight", next.InFlightCount())
	}
	if next.Node(2).Svc.(*toy).counter != 0 {
		t.Fatal("handler ran despite the filter")
	}
	if g.InFlightCount() != 1 {
		t.Fatal("predecessor state mutated")
	}
}

// TestApplyFilteredBreakConn: with BreakConn set, dropping the message also
// queues an RST notification toward the sender.
func TestApplyFilteredBreakConn(t *testing.T) {
	g := twoNodeStart()
	s := NewSearch(Config{Props: poisonAt(3), Factory: newToy})
	ev := sm.MsgEvent{From: 1, To: 2, Msg: ping{N: 1}}
	next := s.applyFiltered(g, ev, sm.Filter{
		Kind: sm.FilterMessage, Node: 2, From: 1, MsgType: "Ping", BreakConn: true,
	}, getScratch())
	if next == nil {
		t.Fatal("filtered apply failed")
	}
	if next.InFlightCount() != 1 {
		t.Fatalf("in-flight = %d, want 1 (the RST)", next.InFlightCount())
	}
	// The RST must be deliverable as a transport error at the sender.
	after := s.ApplyEvent(next, sm.ErrorEvent{At: 1, Peer: 2})
	if after == nil {
		t.Fatal("queued RST not deliverable")
	}
	if after.Node(1).Svc.(*toy).errs != 1 {
		t.Fatal("sender did not observe the transport error")
	}
}

// TestApplyFilteredInapplicable: filtering a non-message event, or a
// message that is not in flight, yields no successor.
func TestApplyFilteredInapplicable(t *testing.T) {
	g := twoNodeStart()
	s := NewSearch(Config{Props: poisonAt(3), Factory: newToy})
	f := sm.Filter{Kind: sm.FilterMessage, Node: 2, From: 1, MsgType: "Ping"}
	if s.applyFiltered(g, sm.TimerEvent{At: 1, Timer: "tick"}, f, getScratch()) != nil {
		t.Fatal("filtered a timer event into a successor")
	}
	if s.applyFiltered(g, sm.MsgEvent{From: 2, To: 1, Msg: ping{N: 9}}, f, getScratch()) != nil {
		t.Fatal("filtered a message that is not in flight")
	}
}
