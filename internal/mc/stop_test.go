package mc

import (
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a deterministic clock: every Now() reading advances it by one
// step, so wall-budget expiry becomes a pure function of how many readings
// the search performs rather than of real time.
type fakeClock struct {
	step time.Duration
	n    atomic.Int64
}

func (f *fakeClock) Now() time.Time {
	return time.Unix(0, f.n.Add(1)*int64(f.step))
}

// TestBudgetWallExpiryFakeClock drives the budget's MaxWall deadline with a
// fake clock: the number of admitted states is exactly the wall budget
// divided by the clock step, with no real sleeping involved.
func TestBudgetWallExpiryFakeClock(t *testing.T) {
	fc := &fakeClock{step: time.Millisecond}
	b := newBudget(StopCriterion{MaxWall: 10 * time.Millisecond}, fc.Now)
	admitted := 0
	for b.admitState() {
		admitted++
		if admitted > 1000 {
			t.Fatal("wall deadline never tripped under the fake clock")
		}
	}
	// newBudget reads the clock once (t=1ms, deadline 11ms); admission k
	// reads t=(1+k)ms and fails first at t=12ms, so exactly 10 admissions.
	if admitted != 10 {
		t.Fatalf("admitted %d states before wall expiry, want 10", admitted)
	}
	if !b.exhausted() {
		t.Fatal("budget not marked exhausted after wall expiry")
	}
	if got := b.elapsed(); got <= 10*time.Millisecond {
		t.Fatalf("elapsed %v not past the 10ms wall budget", got)
	}
}

// TestWallBudgetExpiryDeterministic runs a wall-bounded search under the
// injected fake clock twice: both runs must cut off at the identical state
// count and report the identical Elapsed, which is impossible with a real
// clock.
func TestWallBudgetExpiryDeterministic(t *testing.T) {
	run := func() *Result {
		fc := &fakeClock{step: time.Millisecond}
		s := NewSearch(Config{
			Props:   poisonAt(1000),
			Factory: newToy,
			Mode:    Exhaustive,
			Budget:  Budget{Wall: 20 * time.Millisecond, Workers: 1},
			Now:     fc.Now,
		})
		return s.Run(twoNodeStart())
	}
	a, b := run(), run()
	if a.StatesExplored != b.StatesExplored {
		t.Fatalf("state counts differ across identical fake-clock runs: %d vs %d",
			a.StatesExplored, b.StatesExplored)
	}
	if a.Elapsed != b.Elapsed {
		t.Fatalf("Elapsed differs across identical fake-clock runs: %v vs %v", a.Elapsed, b.Elapsed)
	}
	if a.Elapsed < 20*time.Millisecond {
		t.Fatalf("Elapsed %v below the wall budget: deadline never tripped", a.Elapsed)
	}
	// The fake clock expires the budget after ~20 admissions; the toy state
	// space is far larger, so expiry (not exhaustion) must have stopped it.
	if a.StatesExplored > 30 {
		t.Fatalf("explored %d states, wall budget should have stopped it near 20", a.StatesExplored)
	}
}
