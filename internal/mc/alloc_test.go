package mc

import (
	"testing"

	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// Allocation-regression tests for the checker's per-explored-state path.
// The hot path is designed around reused scratch (pooled encoders, worker
// views, enumeration buffers), so these bounds are part of the contract:
// a change that quietly reintroduces per-state allocation fails here long
// before it shows up in a profile.

// TestHashLookupZeroAllocs: Hash on a constructed state is a pure read.
func TestHashLookupZeroAllocs(t *testing.T) {
	g := multiTimerStart()
	if avg := testing.AllocsPerRun(1000, func() {
		if g.Hash() == 0 {
			t.Fatal("zero hash")
		}
	}); avg != 0 {
		t.Fatalf("Hash lookup allocates %.2f/op, want 0", avg)
	}
}

// TestReusedViewCheckZeroAllocs: refilling a reused view and evaluating a
// non-violated property set allocates nothing in steady state.
func TestReusedViewCheckZeroAllocs(t *testing.T) {
	g := multiTimerStart()
	ps := poisonAt(1000) // clean state: Check returns nil, no result slice
	v := props.NewView()
	g.FillView(v) // warm the view's storage
	if got := ps.Check(v); got != nil {
		t.Fatalf("state unexpectedly violates %v", got)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		g.FillView(v)
		if ps.Check(v) != nil {
			t.Fatal("unexpected violation")
		}
	}); avg != 0 {
		t.Fatalf("reused-view property check allocates %.2f/op, want 0", avg)
	}
}

// TestEnabledEventsReusedBufferAllocBound: enumeration through a reused
// eventBuf allocates at most one boxing per enumerated event (storing a
// struct in an sm.Event interface) — the buffers themselves (slices, dedup
// map, per-state sorting, string keys) contribute nothing once warm.
func TestEnabledEventsReusedBufferAllocBound(t *testing.T) {
	s := NewSearch(Config{Props: poisonAt(1000), Factory: newToy, ExploreResets: true})
	g := multiTimerStart()
	var buf eventBuf
	network, _, internal := s.enabledInto(g, &buf) // warm + count
	events := len(network)
	for i := range internal {
		events += len(internal[i])
	}
	if events == 0 {
		t.Fatal("no events enumerated")
	}
	if avg := testing.AllocsPerRun(1000, func() {
		s.enabledInto(g, &buf)
	}); avg > float64(events) {
		t.Fatalf("reused-buffer enumeration allocates %.2f/op for %d events, want <= one boxing per event", avg, events)
	}
}

// TestSuccessorAllocBound bounds the full apply+hash cost of one successor.
// The remaining allocations are the successor's own storage (GState and
// NodeState containers, the service clone, copied slices) — the transient
// workspace (encoders, handler context, random stream, hash state) comes
// from the pooled scratch and must not count. The bound has headroom over
// the measured value (~10) but sits far below the pre-scratch cost (~30).
func TestSuccessorAllocBound(t *testing.T) {
	s := NewSearch(Config{Props: poisonAt(1000), Factory: newToy})
	g := multiTimerStart()
	ev := sm.TimerEvent{At: 1, Timer: "tick"}
	if s.ApplyEvent(g, ev) == nil {
		t.Fatal("timer event not applicable")
	}
	const maxAllocs = 20
	if avg := testing.AllocsPerRun(500, func() {
		if s.ApplyEvent(g, ev) == nil {
			t.Fatal("timer event not applicable")
		}
	}); avg > maxAllocs {
		t.Fatalf("successor construction allocates %.1f/op, want <= %d", avg, maxAllocs)
	}
}

// TestReductionCountersAllocBound: the reduction and work-stealing
// counters are pre-allocated atomics on the engine — bumping them costs no
// allocation — and the sleep-set bookkeeping itself adds at most a small
// constant per executed transition (one childSleep slice per expanded
// child). The bound is relative to the unreduced engine so the existing
// per-state allocation contract keeps gating both configurations.
func TestReductionCountersAllocBound(t *testing.T) {
	run := func(reduce bool) (res *Result, perTransition float64) {
		cfg := Config{
			Props:         poisonAt(1000),
			Factory:       newToy,
			Mode:          Exhaustive,
			MaxDepth:      6,
			Workers:       1,
			Seed:          7,
			ExploreResets: true,
			Reduce:        reduce,
		}
		allocs := testing.AllocsPerRun(3, func() {
			res = NewSearch(cfg).Run(multiTimerStart())
		})
		if res.Transitions == 0 {
			t.Fatal("no transitions executed")
		}
		return res, allocs / float64(res.Transitions)
	}
	base, basePer := run(false)
	red, redPer := run(true)
	if red.SleepHits == 0 {
		t.Fatalf("toy search pruned nothing; bound is vacuous")
	}
	if red.StatesExplored != base.StatesExplored {
		t.Fatalf("reduced search changed the state set: %d vs %d",
			red.StatesExplored, base.StatesExplored)
	}
	const slack = 3.0 // sleep-set slices + accounting, per transition
	if redPer > basePer+slack {
		t.Fatalf("reduced engine allocates %.1f/transition, unreduced %.1f (+%.0f allowed)",
			redPer, basePer, slack)
	}
}

// TestFNVEventMatchesDescribe pins edgeSeed's streaming event hash to the
// rendered Describe string for every event kind: the per-edge random
// streams — and so the whole exploration — stay byte-identical to the
// implementation that hashed ev.Describe() directly.
func TestFNVEventMatchesDescribe(t *testing.T) {
	events := []sm.Event{
		sm.MsgEvent{From: 1, To: 2, Msg: ping{N: 7}},
		sm.MsgEvent{From: sm.NoNode, To: 0, Msg: ping{N: 0}},
		sm.TimerEvent{At: 3, Timer: "tick"},
		sm.TimerEvent{At: 2147483647, Timer: ""},
		sm.AppEvent{At: 4, Call: kick{}},
		sm.ResetEvent{At: 5},
		sm.ErrorEvent{At: 6, Peer: 7},
		sm.ErrorEvent{At: 0, Peer: sm.NoNode},
		sm.DropEvent{From: 8, To: 9},
	}
	for _, ev := range events {
		want := sm.FNV64aString(sm.FNV64aInit, ev.Describe())
		if got := fnvEvent(sm.FNV64aInit, ev); got != want {
			t.Errorf("fnvEvent(%q) = %#x, want %#x (hash of Describe)", ev.Describe(), got, want)
		}
	}
}

// TestEncodedSizeOracle: the incrementally maintained footprint must match
// the from-scratch recomputation at every step of random walks, exactly
// like the hash oracle.
func TestEncodedSizeOracle(t *testing.T) {
	s := NewSearch(Config{
		Props:            poisonAt(1000),
		Factory:          newToy,
		ExploreResets:    true,
		MaxResetsPerPath: 2,
	})
	start := multiTimerStart()
	check := func(g *GState, step int) {
		t.Helper()
		if got, want := g.EncodedSize(), g.fullEncodedSize(); got != want {
			t.Fatalf("step %d: incremental EncodedSize %d != from-scratch %d", step, got, want)
		}
	}
	check(start, -1)
	for w := 0; w < 20; w++ {
		rng := sm.NewRand(int64(w + 1))
		g := start
		for step := 0; step < 25; step++ {
			network, internal := s.EnabledEvents(g)
			all := append([]sm.Event{}, network...)
			for _, id := range g.Nodes() {
				all = append(all, internal[id]...)
			}
			if len(all) == 0 {
				break
			}
			var next *GState
			for _, i := range rng.Perm(len(all)) {
				if next = s.ApplyEvent(g, all[i]); next != nil {
					break
				}
			}
			if next == nil {
				break
			}
			check(next, step)
			check(g, step)
			g = next
		}
	}
}
