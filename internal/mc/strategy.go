package mc

import (
	"hash/fnv"
	"sync"
	"sync/atomic"

	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// Strategy is a pluggable exploration algorithm. The built-in strategies —
// ExhaustiveStrategy (paper Figure 5), ConsequenceStrategy (Figure 8) and
// RandomWalkStrategy (the MaceMC comparison baseline) — all run on the
// shared worker-pool engine; custom strategies can be injected through
// Config.Strategy and drive exploration with Search.EnabledEvents and
// Search.ApplyEvent.
type Strategy interface {
	// Name identifies the strategy in logs and results.
	Name() string
	// Explore runs the algorithm from start on behalf of s, using up to
	// workers goroutines, and returns the assembled result. It must not
	// mutate start.
	Explore(s *Search, start *GState, workers int) *Result
}

// StrategyFor maps a legacy Mode to its Strategy implementation.
func StrategyFor(m Mode) Strategy {
	switch m {
	case Exhaustive:
		return ExhaustiveStrategy
	case Consequence:
		return ConsequenceStrategy
	default:
		return RandomWalkStrategy
	}
}

// Built-in strategies.
var (
	// ExhaustiveStrategy is the standard breadth-first search of paper
	// Figure 5 (the MaceMC baseline).
	ExhaustiveStrategy Strategy = bfsStrategy{name: "exhaustive"}
	// ConsequenceStrategy is the consequence-prediction algorithm of
	// paper Figure 8: breadth-first, but internal actions of a (node,
	// local state) pair are explored at most once across the search.
	ConsequenceStrategy Strategy = bfsStrategy{name: "consequence", prune: true}
	// RandomWalkStrategy repeatedly walks random enabled transitions to a
	// depth bound (MaceMC's random-walk mode, used in the paper's section
	// 5.3 comparison).
	RandomWalkStrategy Strategy = walkStrategy{}
)

// bfsStrategy implements Exhaustive and Consequence on the worker-pool
// breadth-first engine; the only difference between the two is the
// (node, local state) dedup rule guarding internal actions.
type bfsStrategy struct {
	name  string
	prune bool
}

func (b bfsStrategy) Name() string { return b.name }

func (b bfsStrategy) Explore(s *Search, start *GState, workers int) *Result {
	return newEngine(s, workers, b.prune).run(start)
}

// walkStrategy distributes cfg.Walks random walks across the worker pool.
// Each walk derives its random stream from (Seed, walk index), not from the
// worker that happens to run it, so the same walks are explored at any
// worker count.
type walkStrategy struct{}

func (walkStrategy) Name() string { return "random-walk" }

func (walkStrategy) Explore(s *Search, start *GState, workers int) *Result {
	bdg := newBudget(s.cfg.Stop(), s.cfg.Now)
	coll := newCollector(s.cfg.Budget.Violations)
	// seen dedups reports by (violating state, signature): the same state
	// reached by different walks can carry different onsets and final
	// events, and keying on the pair keeps the recorded set independent
	// of which walk happens to arrive first.
	seen := newShardedSet()
	var nextWalk, transitions, maxDepth atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker reusable workspace, shared by all walks this
			// goroutine runs.
			res := &workerRes{view: props.NewView()}
			for {
				walk := int(nextWalk.Add(1)) - 1
				if walk >= s.cfg.Walks || bdg.exhausted() {
					return
				}
				runWalk(s, start, walk, bdg, coll, seen, &transitions, &maxDepth, res)
			}
		}()
	}
	wg.Wait()

	return &Result{
		Violations:      coll.violations(),
		StatesExplored:  bdg.statesAdmitted(),
		Transitions:     int(transitions.Load()),
		MaxDepthReached: int(maxDepth.Load()),
		Elapsed:         bdg.elapsed(),
	}
}

// runWalk performs one random walk of up to cfg.WalkDepth steps, using
// res's reusable view and enumeration buffers.
func runWalk(s *Search, start *GState, walk int, bdg *budget, coll *collector,
	seen *shardedSet, transitions, maxDepth *atomic.Int64, res *workerRes) {
	// A fixed odd multiplier spreads walk indices across seed space
	// (splitmix64's golden-ratio increment).
	rng := sm.NewRand(s.cfg.Seed ^ int64(walk+1)*-0x61c8864680b583eb)
	node := &searchNode{state: start}
	walkViolated := make(map[string]bool)
	for depth := 0; depth < s.cfg.WalkDepth; depth++ {
		if !bdg.admitState() {
			return
		}
		atomicMax(maxDepth, int64(depth))
		node.state.FillView(res.view)
		if violated := s.checkProps(res.view); len(violated) > 0 {
			var onset []string
			for _, p := range violated {
				if !walkViolated[p] {
					onset = append(onset, p)
					walkViolated[p] = true
				}
			}
			if len(onset) > 0 {
				v := Violation{
					Properties: onset,
					Path:       node.path(),
					StateHash:  node.state.Hash(),
					Depth:      depth,
				}
				sigHash := fnv.New64a()
				sigHash.Write([]byte(v.Signature()))
				if seen.Add(v.StateHash^sigHash.Sum64()) && coll.record(v) {
					bdg.halt()
					return
				}
			}
		}
		network, _, internal := s.enabledInto(node.state, &res.evb)
		all := res.evb.all[:0]
		all = append(all, network...)
		for i := range internal {
			all = append(all, internal[i]...)
		}
		res.evb.all = all
		if len(all) == 0 {
			return
		}
		// Try events in random order until one applies.
		perm := rng.Perm(len(all))
		var next *GState
		var chosen sm.Event
		for _, i := range perm {
			if next = s.ApplyEvent(node.state, all[i]); next != nil {
				chosen = all[i]
				break
			}
		}
		if next == nil {
			return
		}
		transitions.Add(1)
		node = &searchNode{state: next, parent: node, event: chosen, depth: node.depth + 1}
	}
}
