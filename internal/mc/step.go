package mc

import (
	"hash/fnv"
	"math/rand"
	"sort"

	"crystalball/internal/sm"
)

// mcContext implements sm.Context for handler execution inside the checker.
// Sends and timer changes are captured and folded into the successor state.
type mcContext struct {
	self  sm.NodeID
	ns    *NodeState // the cloned node state being mutated
	sends []InFlight
	rng   *rand.Rand
}

func (c *mcContext) Self() sm.NodeID { return c.self }

func (c *mcContext) Send(to sm.NodeID, msg sm.Message) {
	c.sends = append(c.sends, InFlight{From: c.self, To: to, Msg: msg})
}

func (c *mcContext) SetTimer(t sm.TimerID, d sm.Duration) { c.ns.Timers[t] = true }

func (c *mcContext) CancelTimer(t sm.TimerID) { delete(c.ns.Timers, t) }

func (c *mcContext) TimerPending(t sm.TimerID) bool { return c.ns.Timers[t] }

func (c *mcContext) Rand() *rand.Rand { return c.rng }

// edgeRNG derives a deterministic random stream for executing event ev from
// state g, so exploration (and replay) is reproducible: the paper notes "we
// deterministically replay pseudo-random number generation".
func edgeRNG(seed int64, g *GState, ev sm.Event) *rand.Rand {
	h := fnv.New64a()
	var b [8]byte
	hash := g.Hash()
	for i := 0; i < 8; i++ {
		b[i] = byte(hash >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(ev.Describe()))
	return sm.NewRand(seed ^ int64(h.Sum64()))
}

// apply executes event ev on state g and returns the successor state, or
// nil when the event is not applicable (e.g. delivering a message that is
// not in flight). g itself is never mutated. Every successor constructor
// below maintains the state fingerprint incrementally: the mutation helpers
// (addMsg/removeMsgAt/setStale/clearStale/bumpResets) and the node swap in
// runHandler each adjust the commutative hash sum in O(1), so a successor's
// Hash is ready in O(changed components) when apply returns.
func (s *Search) apply(g *GState, ev sm.Event) *GState {
	switch e := ev.(type) {
	case sm.MsgEvent:
		return s.applyMessage(g, e)
	case sm.TimerEvent:
		return s.applyTimer(g, e)
	case sm.AppEvent:
		return s.applyApp(g, e)
	case sm.ResetEvent:
		return s.applyReset(g, e)
	case sm.ErrorEvent:
		return s.applyError(g, e)
	case sm.DropEvent:
		return s.applyDrop(g, e)
	default:
		return nil
	}
}

// findMsg locates the first in-flight item matching the event.
func findMsg(g *GState, from, to sm.NodeID, msgType string, rst bool) int {
	for i, m := range g.msgs {
		if m.From != from || m.To != to {
			continue
		}
		if rst {
			if m.RST() {
				return i
			}
			continue
		}
		if !m.RST() && m.Msg.MsgType() == msgType {
			return i
		}
	}
	return -1
}

func removeMsg(msgs []InFlight, i int) []InFlight {
	out := make([]InFlight, 0, len(msgs)-1)
	out = append(out, msgs[:i]...)
	return append(out, msgs[i+1:]...)
}

// dispatchSends folds a handler's captured sends into the successor:
// messages to nodes outside the snapshot go to the dummy node (dropped,
// counted), and messages over a stale socket become an error notification
// back to the sender, mirroring the live transport.
func (s *Search) dispatchSends(next *GState, ctx *mcContext) {
	for _, sd := range ctx.sends {
		if _, known := next.nodes[sd.To]; !known {
			s.dummyRedirects.Add(1)
			continue
		}
		if next.stale[pair{sd.From, sd.To}] {
			// Stale socket discovered: message lost, sender will
			// observe a transport error; the pair is fresh again
			// afterwards (next send reconnects).
			next.clearStale(pair{sd.From, sd.To})
			next.addMsg(InFlight{From: sd.To, To: sd.From, Msg: nil})
			continue
		}
		next.addMsg(sd)
	}
}

func (s *Search) runHandler(g *GState, node sm.NodeID, ev sm.Event, run func(ctx *mcContext)) *GState {
	ns := g.nodes[node]
	if ns == nil {
		return nil
	}
	next := g.shallowClone()
	cloned := ns.clone()
	next.nodes[node] = cloned
	next.hsum -= ns.chash
	ctx := &mcContext{self: node, ns: cloned, rng: edgeRNG(s.cfg.Seed, g, ev)}
	run(ctx)
	s.dispatchSends(next, ctx)
	// All mutations applied: freeze the clone's encoding/hashes and fold
	// its component back into the fingerprint.
	cloned.finalize(node)
	next.hsum += cloned.chash
	return next
}

func (s *Search) applyMessage(g *GState, e sm.MsgEvent) *GState {
	i := findMsg(g, e.From, e.To, e.Msg.MsgType(), false)
	if i < 0 {
		return nil
	}
	msg := g.msgs[i].Msg
	next := s.runHandler(g, e.To, e, func(ctx *mcContext) {
		ctx.ns.Svc.HandleMessage(ctx, e.From, msg)
	})
	if next == nil {
		return nil
	}
	// Remove the consumed message (runHandler copied the slice; handler
	// sends only append, so index i is still valid).
	next.removeMsgAt(i)
	return next
}

func (s *Search) applyTimer(g *GState, e sm.TimerEvent) *GState {
	ns := g.nodes[e.At]
	if ns == nil || !ns.Timers[e.Timer] {
		return nil
	}
	return s.runHandler(g, e.At, e, func(ctx *mcContext) {
		// One-shot semantics: the timer is consumed before the
		// handler runs; periodic services re-arm inside the handler.
		delete(ctx.ns.Timers, e.Timer)
		ctx.ns.Svc.HandleTimer(ctx, e.Timer)
	})
}

func (s *Search) applyApp(g *GState, e sm.AppEvent) *GState {
	return s.runHandler(g, e.At, e, func(ctx *mcContext) {
		ctx.ns.Svc.HandleApp(ctx, e.Call)
	})
}

func (s *Search) applyError(g *GState, e sm.ErrorEvent) *GState {
	i := findMsg(g, e.Peer, e.At, "", true)
	if i < 0 && !s.cfg.ExploreConnBreaks {
		return nil
	}
	next := s.runHandler(g, e.At, e, func(ctx *mcContext) {
		ctx.ns.Svc.HandleTransportError(ctx, e.Peer)
	})
	if next == nil {
		return nil
	}
	if i >= 0 {
		next.removeMsgAt(i)
	}
	return next
}

func (s *Search) applyDrop(g *GState, e sm.DropEvent) *GState {
	i := findMsg(g, e.From, e.To, "", true)
	if i < 0 {
		return nil
	}
	next := g.shallowClone()
	next.removeMsgAt(i)
	return next
}

// applyReset models a node crash+restart (paper: "consequence prediction
// considers, among others, the Reset action on node n13"):
//
//   - all in-flight items to and from the node are lost (TCP buffers die);
//   - every snapshot peer that lists the node as a neighbor now holds a
//     stale socket to it, to be discovered on its next send;
//   - an RST notification races toward each such peer; a separate Drop
//     transition models the RST being lost (Figure 9's lost RST);
//   - the node restarts from its initial state (Init runs, possibly
//     scheduling timers and sends).
func (s *Search) applyReset(g *GState, e sm.ResetEvent) *GState {
	ns := g.nodes[e.At]
	if ns == nil {
		return nil
	}
	next := g.shallowClone()
	next.bumpResets()
	// Drop in-flight traffic touching the node.
	kept := next.msgs[:0]
	for _, m := range next.msgs {
		if m.From != e.At && m.To != e.At {
			kept = append(kept, m)
		} else {
			next.hsum -= m.chash
		}
	}
	next.msgs = kept
	// Peers that knew the node hold stale sockets and receive racing RSTs.
	// Iterate in sorted node order: the append order becomes the
	// successor's in-flight order, which event enumeration (and so
	// same-seed random walks) must see identically every run.
	for _, id := range next.Nodes() {
		if id == e.At {
			continue
		}
		for _, nb := range next.nodes[id].Svc.Neighbors() {
			if nb == e.At {
				next.setStale(pair{id, e.At})
				next.addMsg(InFlight{From: e.At, To: id, Msg: nil})
				break
			}
		}
	}
	// The reset node has no stale knowledge of anyone.
	for p := range next.stale {
		if p.a == e.At {
			next.clearStale(p)
		}
	}
	// Fresh service, re-initialised; disk contents survive the crash.
	var stable []byte
	if ss, ok := ns.Svc.(sm.StableStore); ok {
		stable = ss.StableBytes()
	}
	fresh := &NodeState{Svc: s.cfg.Factory(e.At), Timers: make(map[sm.TimerID]bool)}
	if ss, ok := fresh.Svc.(sm.StableStore); ok && stable != nil {
		ss.RestoreStable(stable)
	}
	next.nodes[e.At] = fresh
	next.hsum -= ns.chash
	ctx := &mcContext{self: e.At, ns: fresh, rng: edgeRNG(s.cfg.Seed, g, e)}
	fresh.Svc.Init(ctx)
	s.dispatchSends(next, ctx)
	fresh.finalize(e.At)
	next.hsum += fresh.chash
	return next
}

// EnabledEvents enumerates the transitions available from g, split into
// message-handler events (the paper's H_M: deliveries, error notifications,
// RST drops) and internal-action events per node (H_A: timers, application
// calls, resets). Consequence prediction prunes only the latter. It only
// reads g, so concurrent workers may enumerate a shared state freely.
// Enumeration order is deterministic — in-flight slice order for H_M,
// sorted timer ids then model app calls, reset and conn-break events for
// H_A — so same-seed explorations pick the same transitions every run.
func (s *Search) EnabledEvents(g *GState) (network []sm.Event, internal map[sm.NodeID][]sm.Event) {
	seenMsg := make(map[string]bool)
	for _, m := range g.msgs {
		if m.RST() {
			key := "rst:" + m.From.String() + ">" + m.To.String()
			if seenMsg[key] {
				continue // identical RSTs collapse
			}
			seenMsg[key] = true
			network = append(network, sm.ErrorEvent{At: m.To, Peer: m.From})
			network = append(network, sm.DropEvent{From: m.From, To: m.To})
			continue
		}
		key := m.From.String() + ">" + m.To.String() + ":" + m.Msg.MsgType()
		// Deliver only the first in-flight instance of identical
		// (from,to,type) triples; FIFO-per-pair keeps the state count
		// down and matches live TCP ordering.
		if seenMsg[key] {
			continue
		}
		seenMsg[key] = true
		network = append(network, sm.MsgEvent{From: m.From, To: m.To, Msg: m.Msg})
	}
	internal = make(map[sm.NodeID][]sm.Event)
	for _, id := range g.Nodes() {
		ns := g.nodes[id]
		var evs []sm.Event
		// Sorted timer ids: map iteration order must not leak into the
		// transition order same-seed runs replay.
		timers := make([]string, 0, len(ns.Timers))
		for t, ok := range ns.Timers {
			if ok {
				timers = append(timers, string(t))
			}
		}
		sort.Strings(timers)
		for _, t := range timers {
			evs = append(evs, sm.TimerEvent{At: id, Timer: sm.TimerID(t)})
		}
		if ma, ok := ns.Svc.(sm.ModelActions); ok {
			for _, call := range ma.ModelAppCalls() {
				evs = append(evs, sm.AppEvent{At: id, Call: call})
			}
		}
		if s.cfg.ExploreResets && g.resets < s.cfg.MaxResetsPerPath {
			evs = append(evs, sm.ResetEvent{At: id})
		}
		if s.cfg.ExploreConnBreaks {
			for _, nb := range ns.Svc.Neighbors() {
				if _, known := g.nodes[nb]; known {
					evs = append(evs, sm.ErrorEvent{At: id, Peer: nb})
				}
			}
		}
		internal[id] = evs
	}
	return network, internal
}
