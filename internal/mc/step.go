package mc

import (
	"math/rand"

	"crystalball/internal/sm"
)

// mcContext implements sm.Context for handler execution inside the checker.
// Sends and timer changes are captured and folded into the successor state.
// The context lives in the per-worker scratch and is reset between events;
// handlers use it only for the duration of one invocation.
type mcContext struct {
	self  sm.NodeID
	ns    *NodeState // the cloned node state being mutated
	sends []InFlight
	rng   *rand.Rand
}

func (c *mcContext) Self() sm.NodeID { return c.self }

func (c *mcContext) Send(to sm.NodeID, msg sm.Message) {
	c.sends = append(c.sends, InFlight{From: c.self, To: to, Msg: msg})
}

func (c *mcContext) SetTimer(t sm.TimerID, d sm.Duration) { c.ns.Timers[t] = true }

func (c *mcContext) CancelTimer(t sm.TimerID) { delete(c.ns.Timers, t) }

func (c *mcContext) TimerPending(t sm.TimerID) bool { return c.ns.Timers[t] }

func (c *mcContext) Rand() *rand.Rand { return c.rng }

// edgeRNG returns sc's re-seedable random stream seeded for executing event
// ev from state g, so exploration (and replay) is reproducible: the paper
// notes "we deterministically replay pseudo-random number generation". The
// stream is identical to a freshly constructed sm.NewRand with the same
// derived seed (Rand.Seed resets all internal state), but reuses the
// scratch's Rand so the hot path allocates nothing.
//
//crystal:hotpath
func edgeRNG(seed int64, ns *NodeState, ev sm.Event, sc *scratch) *rand.Rand {
	sc.rnd.Seed(edgeSeed(seed, ns.localHash(), ev))
	return sc.rnd
}

// apply executes event ev on state g and returns the successor state, or
// nil when the event is not applicable (e.g. delivering a message that is
// not in flight). g itself is never mutated. Every successor constructor
// below maintains the state fingerprint incrementally: the mutation helpers
// (addMsg/removeMsgAt/setStale/clearStale/bumpResets) and the node swap in
// runHandler each adjust the commutative hash sum in O(1), so a successor's
// Hash is ready in O(changed components) when apply returns. All transient
// workspace (encoders, handler context, random stream) comes from sc.
//
//crystal:hotpath
func (s *Search) apply(g *GState, ev sm.Event, sc *scratch) *GState {
	switch e := ev.(type) {
	case sm.MsgEvent:
		return s.applyMessage(g, e, sc)
	case sm.TimerEvent:
		return s.applyTimer(g, e, sc)
	case sm.AppEvent:
		return s.applyApp(g, e, sc)
	case sm.ResetEvent:
		return s.applyReset(g, e, sc)
	case sm.ErrorEvent:
		return s.applyError(g, e, sc)
	case sm.DropEvent:
		return s.applyDrop(g, e, sc)
	default:
		return nil
	}
}

// findMsg locates the first in-flight item matching the event.
//
//crystal:hotpath
func findMsg(g *GState, from, to sm.NodeID, msgType string, rst bool) int {
	for i := range g.msgs {
		m := &g.msgs[i]
		if m.From != from || m.To != to {
			continue
		}
		if rst {
			if m.RST() {
				return i
			}
			continue
		}
		if !m.RST() && m.Msg.MsgType() == msgType {
			return i
		}
	}
	return -1
}

// dispatchSends folds a handler's captured sends into the successor:
// messages to nodes outside the snapshot go to the dummy node (dropped,
// counted), and messages over a stale socket become an error notification
// back to the sender, mirroring the live transport.
//
//crystal:hotpath
func (s *Search) dispatchSends(next *GState, ctx *mcContext, sc *scratch) {
	for _, sd := range ctx.sends {
		if _, known := next.nodes[sd.To]; !known {
			s.dummyRedirects.Add(1)
			continue
		}
		if next.stale[pair{sd.From, sd.To}] {
			// Stale socket discovered: message lost, sender will
			// observe a transport error; the pair is fresh again
			// afterwards (next send reconnects).
			next.clearStale(pair{sd.From, sd.To}, sc)
			next.addMsg(InFlight{From: sd.To, To: sd.From, Msg: nil}, sc)
			continue
		}
		next.addMsg(sd, sc)
	}
}

//crystal:hotpath
func (s *Search) runHandler(g *GState, node sm.NodeID, ev sm.Event, sc *scratch, run func(ctx *mcContext)) *GState {
	ns := g.nodes[node]
	if ns == nil {
		return nil
	}
	next := g.shallowClone()
	cloned := ns.clone()
	ctx := &sc.ctx
	ctx.self, ctx.ns, ctx.sends, ctx.rng = node, cloned, ctx.sends[:0], edgeRNG(s.cfg.Seed, ns, ev, sc)
	run(ctx)
	s.dispatchSends(next, ctx, sc)
	// All mutations applied: freeze the clone's encoding/hashes (sharing
	// any segment the handler left unchanged with the parent) and swap it
	// into the fingerprint.
	cloned.finalize(node, ns, sc)
	next.swapNode(node, ns, cloned)
	return next
}

//crystal:hotpath
func (s *Search) applyMessage(g *GState, e sm.MsgEvent, sc *scratch) *GState {
	i := findMsg(g, e.From, e.To, e.Msg.MsgType(), false)
	if i < 0 {
		return nil
	}
	msg := g.msgs[i].Msg
	next := s.runHandler(g, e.To, e, sc, func(ctx *mcContext) {
		ctx.ns.Svc.HandleMessage(ctx, e.From, msg)
	})
	if next == nil {
		return nil
	}
	// Remove the consumed message (runHandler copied the slice; handler
	// sends only append, so index i is still valid).
	next.removeMsgAt(i, sc)
	return next
}

//crystal:hotpath
func (s *Search) applyTimer(g *GState, e sm.TimerEvent, sc *scratch) *GState {
	ns := g.nodes[e.At]
	if ns == nil || !ns.Timers[e.Timer] {
		return nil
	}
	return s.runHandler(g, e.At, e, sc, func(ctx *mcContext) {
		// One-shot semantics: the timer is consumed before the
		// handler runs; periodic services re-arm inside the handler.
		delete(ctx.ns.Timers, e.Timer)
		ctx.ns.Svc.HandleTimer(ctx, e.Timer)
	})
}

//crystal:hotpath
func (s *Search) applyApp(g *GState, e sm.AppEvent, sc *scratch) *GState {
	return s.runHandler(g, e.At, e, sc, func(ctx *mcContext) {
		ctx.ns.Svc.HandleApp(ctx, e.Call)
	})
}

//crystal:hotpath
func (s *Search) applyError(g *GState, e sm.ErrorEvent, sc *scratch) *GState {
	i := findMsg(g, e.Peer, e.At, "", true)
	if i < 0 && !s.cfg.ExploreConnBreaks {
		return nil
	}
	next := s.runHandler(g, e.At, e, sc, func(ctx *mcContext) {
		ctx.ns.Svc.HandleTransportError(ctx, e.Peer)
	})
	if next == nil {
		return nil
	}
	if i >= 0 {
		next.removeMsgAt(i, sc)
	}
	return next
}

//crystal:hotpath
func (s *Search) applyDrop(g *GState, e sm.DropEvent, sc *scratch) *GState {
	i := findMsg(g, e.From, e.To, "", true)
	if i < 0 {
		return nil
	}
	next := g.shallowClone()
	next.removeMsgAt(i, sc)
	return next
}

// applyReset models a node crash+restart (paper: "consequence prediction
// considers, among others, the Reset action on node n13"):
//
//   - all in-flight items to and from the node are lost (TCP buffers die);
//   - every snapshot peer that lists the node as a neighbor now holds a
//     stale socket to it, to be discovered on its next send;
//   - an RST notification races toward each such peer; a separate Drop
//     transition models the RST being lost (Figure 9's lost RST);
//   - the node restarts from its initial state (Init runs, possibly
//     scheduling timers and sends).
//
//crystal:hotpath
func (s *Search) applyReset(g *GState, e sm.ResetEvent, sc *scratch) *GState {
	ns := g.nodes[e.At]
	if ns == nil {
		return nil
	}
	next := g.shallowClone()
	next.bumpResets(sc)
	// Drop in-flight traffic touching the node. The predicate depends only
	// on the endpoints, so it removes whole (from,to,type) queues: the
	// queue positions baked into surviving items' component hashes still
	// count exactly their same-queue predecessors, and no rehash is needed.
	kept := next.msgs[:0]
	for _, m := range next.msgs {
		if m.From != e.At && m.To != e.At {
			kept = append(kept, m)
		} else {
			next.hsum -= m.chash
			next.encSize -= m.sz
		}
	}
	next.msgs = kept
	// Peers that knew the node hold stale sockets and receive racing RSTs.
	// Iterate in sorted node order: the append order becomes the
	// successor's in-flight order, which event enumeration (and so
	// same-seed random walks) must see identically every run.
	for _, id := range next.ids {
		if id == e.At {
			continue
		}
		for _, nb := range next.nodes[id].Svc.Neighbors() {
			if nb == e.At {
				next.setStale(pair{id, e.At}, sc)
				next.addMsg(InFlight{From: e.At, To: id, Msg: nil}, sc)
				break
			}
		}
	}
	// The reset node has no stale knowledge of anyone.
	//crystal:allow(maporder) clearStale removes distinct keys and maintains hsum by commutative subtraction, so the removal order cannot leak into the fingerprint or the successor state
	for p := range next.stale {
		if p.a == e.At {
			next.clearStale(p, sc)
		}
	}
	// Fresh service, re-initialised; disk contents survive the crash.
	var stable []byte
	if ss, ok := ns.Svc.(sm.StableStore); ok {
		stable = ss.StableBytes()
	}
	fresh := &NodeState{Svc: s.cfg.Factory(e.At), Timers: make(map[sm.TimerID]bool)}
	if ss, ok := fresh.Svc.(sm.StableStore); ok && stable != nil {
		ss.RestoreStable(stable)
	}
	ctx := &sc.ctx
	ctx.self, ctx.ns, ctx.sends, ctx.rng = e.At, fresh, ctx.sends[:0], edgeRNG(s.cfg.Seed, ns, e, sc)
	fresh.Svc.Init(ctx)
	s.dispatchSends(next, ctx, sc)
	fresh.finalize(e.At, ns, sc)
	next.swapNode(e.At, ns, fresh)
	return next
}

// msgKey identifies an in-flight (from, to, type) triple for delivery
// deduplication; rst distinguishes RST notifications from service messages.
type msgKey struct {
	from, to sm.NodeID
	typ      string
	rst      bool
}

// eventBuf is the reusable enumeration workspace owned by one worker (or
// one walk): the network/internal event slices and the message-dedup set
// are recycled across states, so steady-state enumeration does not
// allocate. The slices handed out by enabledInto alias the buffer and are
// valid only until its next use.
type eventBuf struct {
	network  []sm.Event
	internal [][]sm.Event
	seen     map[msgKey]struct{}
	all      []sm.Event // random-walk candidate buffer
}

// enabledInto enumerates the transitions available from g into buf,
// returning the message-handler events (the paper's H_M: deliveries, error
// notifications, RST drops), the sorted node ids, and the internal-action
// events per node (H_A: timers, application calls, resets) aligned with the
// ids. Consequence prediction prunes only the latter. It only reads g, so
// concurrent workers may enumerate a shared state freely (each through its
// own buffer). Enumeration order is deterministic — in-flight slice order
// for H_M, sorted timer ids then model app calls, reset and conn-break
// events for H_A — so same-seed explorations pick the same transitions
// every run.
//
//crystal:hotpath
func (s *Search) enabledInto(g *GState, buf *eventBuf) (network []sm.Event, ids []sm.NodeID, internal [][]sm.Event) {
	if buf.seen == nil {
		buf.seen = make(map[msgKey]struct{})
	} else {
		clear(buf.seen)
	}
	buf.network = buf.network[:0]
	for i := range g.msgs {
		m := &g.msgs[i]
		if m.RST() {
			key := msgKey{from: m.From, to: m.To, rst: true}
			if _, dup := buf.seen[key]; dup {
				continue // identical RSTs collapse
			}
			buf.seen[key] = struct{}{}
			buf.network = append(buf.network,
				sm.ErrorEvent{At: m.To, Peer: m.From},
				sm.DropEvent{From: m.From, To: m.To})
			continue
		}
		// Deliver only the first in-flight instance of identical
		// (from,to,type) triples; FIFO-per-pair keeps the state count
		// down and matches live TCP ordering.
		key := msgKey{from: m.From, to: m.To, typ: m.Msg.MsgType()}
		if _, dup := buf.seen[key]; dup {
			continue
		}
		buf.seen[key] = struct{}{}
		buf.network = append(buf.network, sm.MsgEvent{From: m.From, To: m.To, Msg: m.Msg})
	}
	ids = g.ids
	if cap(buf.internal) < len(ids) {
		buf.internal = make([][]sm.Event, len(ids))
	}
	buf.internal = buf.internal[:len(ids)]
	for i, id := range ids {
		ns := g.nodes[id]
		evs := buf.internal[i][:0]
		// timerNames is precomputed sorted by finalize: map iteration
		// order cannot leak into the transition order same-seed runs
		// replay.
		for _, t := range ns.timerNames {
			evs = append(evs, sm.TimerEvent{At: id, Timer: sm.TimerID(t)})
		}
		if ma, ok := ns.Svc.(sm.ModelActions); ok {
			for _, call := range ma.ModelAppCalls() {
				evs = append(evs, sm.AppEvent{At: id, Call: call})
			}
		}
		if s.cfg.ExploreResets && g.resets < s.cfg.MaxResetsPerPath {
			evs = append(evs, sm.ResetEvent{At: id})
		}
		if s.cfg.ExploreConnBreaks {
			for _, nb := range ns.Svc.Neighbors() {
				if _, known := g.nodes[nb]; known {
					evs = append(evs, sm.ErrorEvent{At: id, Peer: nb})
				}
			}
		}
		buf.internal[i] = evs
	}
	return buf.network, ids, buf.internal
}

// EnabledEvents enumerates the transitions available from g, split into
// message-handler events and internal-action events per node. It is the
// allocating convenience form of enabledInto for tests, tools and custom
// strategies; the returned containers are freshly allocated and owned by
// the caller.
func (s *Search) EnabledEvents(g *GState) (network []sm.Event, internal map[sm.NodeID][]sm.Event) {
	var buf eventBuf
	net, ids, internalBuf := s.enabledInto(g, &buf)
	network = append([]sm.Event(nil), net...)
	internal = make(map[sm.NodeID][]sm.Event, len(ids))
	for i, id := range ids {
		internal[id] = append([]sm.Event(nil), internalBuf[i]...)
	}
	return network, internal
}
