package mc

import (
	"math/rand"
	"strconv"
	"sync"

	"crystalball/internal/sm"
)

// scratch is the per-worker reusable workspace for successor construction:
// one encoder for component hashing (finalize/addMsg/staleComp/resetsComp),
// the timer-name sorting buffer, the handler context, and a re-seedable
// random stream for edgeRNG. A scratch is checked out of scratchPool for
// the duration of one ApplyEvent (or one public GState mutator) and never
// escapes it: nothing constructed on the scratch is reachable from the
// returned state except bytes explicitly copied out.
type scratch struct {
	enc   sm.Encoder
	names []string // sorted timer names, reused by finalize
	ctx   mcContext
	rnd   *rand.Rand // re-seeded per edge; identical stream to a fresh sm.NewRand
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{rnd: sm.NewRand(0)}
}}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

func putScratch(sc *scratch) {
	sc.ctx = mcContext{sends: sc.ctx.sends[:0]}
	scratchPool.Put(sc)
}

// edgeSeed derives the deterministic per-edge random seed for executing
// event ev at a node whose local-state hash is lhash:
// seed ^ FNV-64a(lhash bytes, ev.Describe()-equivalent bytes). Seeding from
// the *executing node's* hash — not the global state hash — makes a
// handler's effect, random draws included, a pure function of (node local
// state, event): the property the partial-order reduction's commutation
// promises rest on (reduce.go), and a better model of service randomness
// besides (a node's dice cannot depend on state it has never observed).
// The FNV streams the event through fnvEvent without materialising the
// Describe string, so the hot path allocates nothing;
// TestFNVEventMatchesDescribe pins the equivalence for every event kind.
//
//crystal:hotpath
func edgeSeed(seed int64, lhash uint64, ev sm.Event) int64 {
	h := sm.FNV64aInit
	for i := 0; i < 8; i++ {
		h = sm.FNV64aByte(h, byte(lhash>>(8*i)))
	}
	return seed ^ int64(fnvEvent(h, ev))
}

// fnvEvent folds ev.Describe()'s exact byte sequence into h without
// building the string. Each case mirrors the fmt.Sprintf format in
// sm/events.go; fnvNode mirrors NodeID.String ("n<k>", "n?" for NoNode).
//
//crystal:hotpath
func fnvEvent(h uint64, ev sm.Event) uint64 {
	switch e := ev.(type) {
	case sm.MsgEvent:
		h = fnvNode(h, e.To)
		h = sm.FNV64aString(h, ": deliver ")
		h = sm.FNV64aString(h, e.Msg.MsgType())
		h = sm.FNV64aString(h, " from ")
		h = fnvNode(h, e.From)
	case sm.TimerEvent:
		h = fnvNode(h, e.At)
		h = sm.FNV64aString(h, ": timer ")
		h = sm.FNV64aString(h, string(e.Timer))
	case sm.AppEvent:
		h = fnvNode(h, e.At)
		h = sm.FNV64aString(h, ": app ")
		h = sm.FNV64aString(h, e.Call.CallName())
	case sm.ResetEvent:
		h = fnvNode(h, e.At)
		h = sm.FNV64aString(h, ": reset")
	case sm.ErrorEvent:
		h = fnvNode(h, e.At)
		h = sm.FNV64aString(h, ": transport error for ")
		h = fnvNode(h, e.Peer)
	case sm.DropEvent:
		h = sm.FNV64aString(h, "drop RST ")
		h = fnvNode(h, e.From)
		h = sm.FNV64aString(h, "->")
		h = fnvNode(h, e.To)
	default:
		h = sm.FNV64aString(h, ev.Describe())
	}
	return h
}

// fnvNode folds NodeID.String()'s bytes into h without allocating.
//
//crystal:hotpath
func fnvNode(h uint64, n sm.NodeID) uint64 {
	if n == sm.NoNode {
		return sm.FNV64aString(h, "n?")
	}
	h = sm.FNV64aByte(h, 'n')
	var buf [12]byte
	return sm.FNV64aBytes(h, strconv.AppendInt(buf[:0], int64(n), 10))
}
