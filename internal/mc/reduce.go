package mc

import "crystalball/internal/sm"

// Dynamic partial-order reduction.
//
// The engine expands every enabled transition of every claimed state, which
// wastes exponentially many ApplyEvent executions on reorderings of
// *commuting* network deliveries: delivering to node a then node b reaches a
// state identical to delivering to b then a, so the second ordering's
// handler executions only rediscover hashes the visited set already holds.
// With Config.Reduce on, the engine runs a sleep-set reduction over those
// commuting deliveries: after a state explores delivery d1, the sibling
// branch entered through an independent delivery d2 carries d1 in its sleep
// set and skips re-executing it — the commuted square closes through the d1
// branch. Sleep entries are inherited down the tree for as long as every
// edge on the way commutes with them, and are dropped the moment an edge
// touches the entry's recipient (or any reset fires, which invalidates
// in-flight messages wholesale).
//
// Soundness: sleep sets prune only transitions whose target state is, by the
// commuting-square argument, hash-identical to a state reached at the same
// BFS level through the sibling branch — so the claimed-state set, the
// per-state property checks, the reported violations and the distinct
// local-state set are all exactly those of the unreduced search (the
// differential oracle in internal/scenario pins this on every registered
// scenario). What changes is the transition count: the engine never executes
// a handler just to rediscover a visited hash it can prove redundant.
//
// The independence relation is conservative and purely dynamic (see
// dependent() below): two transitions interfere iff they run a handler at
// the same node, or they consume the same (from, to) RST queue. A delivery
// (f→r) removes one in-flight item addressed to r, mutates r's local state
// and appends sends originating at r; per-(from,to,type) FIFO delivery
// means appends never change which in-flight instance an event descriptor
// resolves to, so transitions touching disjoint recipients commute exactly
// and can neither enable nor disable one another. Timers and application
// calls participate too — they mutate exactly their own node. Anything
// cross-cutting — node resets, which destroy in-flight messages of many
// pairs and read every node's neighbor set — clears the inherited sleep set
// instead of reasoning about it.
//
// In Consequence mode the reduction composes with the (node, local state)
// internal-action rule, with one restriction: that rule prunes H_A edges
// *globally* (once per claimed local state), so a commuting square whose
// closure replays an H_A edge from the sibling state may find the edge
// pruned there and never close. The engine therefore never lets a sleep
// promise ride on an H_A expansion in Consequence mode: H_A-entered
// children start with empty sleep sets and H_A expansions are not recorded
// as siblings (engine.internalSleep). H_A transitions may still BE slept —
// closing that square replays only H_M edges, which are never
// state-pruned.
//
// When reduction is NOT sound: the search still visits every state, so any
// property over *states* (the props.Set surface) is preserved; what is not
// preserved is the set of explored interleavings. A checker asserting
// something about message-arrival order itself — e.g. a custom Strategy
// counting orderings, or transition-level instrumentation — must run with
// Reduce off. The README's "Partial-order reduction" section documents this
// boundary.

// sleepKind distinguishes the transition flavours that can enter a sleep
// set; transitions of different kinds never alias.
type sleepKind uint8

const (
	sleepMsg   sleepKind = iota // message delivery
	sleepErr                    // transport-error notification (RST-derived or conn-break)
	sleepDrop                   // RST drop
	sleepTimer                  // timer firing
	sleepApp                    // application call (classified by the engine, not the Reducer)
)

// sleepKey names one transition independently of the state it is enabled
// in: FIFO-per-(from,to,type) delivery guarantees a delivery descriptor
// resolves to the same in-flight item in every state a sleep entry survives
// to, and a (node, timer) pair names the same pending timer for as long as
// no edge touches the node — so skipping by descriptor skips exactly the
// promised transition. The `to` field is always the dependence class (the
// node whose local state the transition mutates); `arg` carries the
// EncodeCall fingerprint for app calls (whose name alone need not identify
// a transition) and is zero otherwise.
type sleepKey struct {
	from, to sm.NodeID
	typ      string
	arg      uint64
	kind     sleepKind
}

// Reducer is the independence oracle behind Config.Reduce: it maps a
// transition to its sleep descriptor, whose (kind, from, to) fields feed
// the dependent() relation — transitions with independent descriptors must
// commute exactly and must not enable or disable one another. ok=false
// exempts an event from reduction: it is never slept, never promises
// anything, and its children start fresh sleep sets (its effects are
// unknown). DeliveryIndependence is the default; custom reducers can
// narrow the relation for services with out-of-band dependencies.
type Reducer interface {
	// Name identifies the reducer in logs and results.
	Name() string
	// Classify returns ev's sleep descriptor.
	Classify(ev sm.Event) (key sleepKey, ok bool)
}

// DeliveryIndependence is the default Reducer: transitions are classified
// by the node they execute at, so deliveries to — and timers and
// transport errors at — distinct nodes are independent, and RST drops
// (which touch no node state) are dependent only on errors and drops of
// the same (from, to) RST queue. Application calls and resets are handled
// structurally by the engine, before the Reducer is consulted: app calls
// are classified by (node, call name, EncodeCall fingerprint), and resets
// clear sleep sets rather than participate in them.
var DeliveryIndependence Reducer = deliveryIndependence{}

type deliveryIndependence struct{}

func (deliveryIndependence) Name() string { return "delivery-independence" }

func (deliveryIndependence) Classify(ev sm.Event) (sleepKey, bool) {
	switch e := ev.(type) {
	case sm.MsgEvent:
		return sleepKey{from: e.From, to: e.To, typ: e.Msg.MsgType(), kind: sleepMsg}, true
	case sm.ErrorEvent:
		// The handler runs at e.At; an in-flight (Peer→At) RST, if any,
		// is consumed — either way the node touched is At. RST-derived
		// errors and spontaneous conn-breaks of the same pair share a
		// descriptor because they are literally the same transition.
		return sleepKey{from: e.Peer, to: e.At, kind: sleepErr}, true
	case sm.DropEvent:
		return sleepKey{from: e.From, to: e.To, kind: sleepDrop}, true
	case sm.TimerEvent:
		return sleepKey{to: e.At, typ: string(e.Timer), kind: sleepTimer}, true
	default:
		return sleepKey{}, false
	}
}

// sleepSet is an immutable set of slept transitions carried on a
// searchNode. Sets are tiny (bounded by the enabled network transitions of
// one ancestor chain), so linear scans beat any map.
type sleepSet []sleepKey

func (s sleepSet) contains(k sleepKey) bool {
	for i := range s {
		if s[i] == k {
			return true
		}
	}
	return false
}

// intersectSleep returns the entries common to a and b, filtering a in
// place (childSleep allocates each child its own slice, so the claimed
// child's set is never shared). When several same-level paths propose one
// state with different sleep sets, only transitions *every* arrival slept
// may stay slept: a promise delegates to a sibling proposal, and that
// proposal is itself a same-level arrival at some matched state whose
// sleep set enters the intersection there — keeping the delegation chain
// grounded. Without this, state matching breaks sleep-set completeness
// (the first arrival's set wins and can sleep a transition a later
// arrival's subtree needed explored); claimChildren applies the
// intersection at the level barrier, before the child is ever expanded.
func intersectSleep(a, b sleepSet) sleepSet {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := a[:0]
	for i := range a {
		if b.contains(a[i]) {
			out = append(out, a[i])
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// dependent reports whether the transitions named by a and b may interfere
// — commute differently, or enable/disable one another. Two axes:
//
//   - Node-state dependence: both run a handler at (or mutate the local
//     state of) the same node. RST drops touch no node state — they only
//     remove an in-flight item — so they are exempt from this axis.
//   - RST-queue dependence: transport-error deliveries and RST drops of
//     the same (from, to) pair consume the same RST queue.
//
// Everything else commutes exactly: distinct nodes' handlers read and
// write disjoint state, per-(from,to,type) FIFO queues are disjoint, and a
// handler appending to a queue commutes with a drop removing that queue's
// head (the head is the same item either way, and the position-aware
// fingerprint makes both orders hash-identical).
func dependent(a, b sleepKey) bool {
	if a.kind != sleepDrop && b.kind != sleepDrop && a.to == b.to {
		return true
	}
	aq := a.kind == sleepDrop || a.kind == sleepErr
	bq := b.kind == sleepDrop || b.kind == sleepErr
	return aq && bq && a.from == b.from && a.to == b.to
}

// childSleep builds the sleep set for a child entered through the
// transition named by enter: inherited entries and earlier explored
// siblings survive iff they are independent of the entering transition.
// A nil result means the empty set.
func childSleep(inherited sleepSet, siblings []sleepKey, enter sleepKey) sleepSet {
	n := 0
	for i := range inherited {
		if !dependent(inherited[i], enter) {
			n++
		}
	}
	for i := range siblings {
		if !dependent(siblings[i], enter) {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make(sleepSet, 0, n)
	for i := range inherited {
		if !dependent(inherited[i], enter) {
			out = append(out, inherited[i])
		}
	}
	for i := range siblings {
		if !dependent(siblings[i], enter) {
			out = append(out, siblings[i])
		}
	}
	return out
}
