package mc

import (
	"math/rand"
	"time"

	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// Mode selects the exploration algorithm.
type Mode int

// Exploration modes.
const (
	// Exhaustive is the standard breadth-first search of paper Figure 5
	// (the MaceMC baseline).
	Exhaustive Mode = iota
	// Consequence is the consequence-prediction algorithm of paper
	// Figure 8: breadth-first, but internal actions of a (node, local
	// state) pair are explored at most once across the entire search.
	Consequence
	// RandomWalk repeatedly walks random enabled transitions to a depth
	// bound (MaceMC's random-walk mode, used in the paper's section 5.3
	// comparison).
	RandomWalk
)

func (m Mode) String() string {
	switch m {
	case Exhaustive:
		return "exhaustive"
	case Consequence:
		return "consequence"
	default:
		return "random-walk"
	}
}

// Config parameterises a search.
type Config struct {
	// Props are the safety properties to check on every explored state.
	Props props.Set
	// Factory creates fresh service instances for reset nodes.
	Factory sm.Factory
	// Mode selects the algorithm.
	Mode Mode
	// MaxStates bounds explored states (0 = unbounded).
	MaxStates int
	// MaxDepth bounds search depth (0 = unbounded).
	MaxDepth int
	// MaxWall bounds wall-clock time (0 = unbounded); part of the
	// paper's StopCriterion for runtime deployment.
	MaxWall time.Duration
	// MaxViolations stops the search after this many distinct violating
	// states (0 = collect all within other bounds).
	MaxViolations int
	// ExploreResets enables node-reset fault transitions.
	ExploreResets bool
	// MaxResetsPerPath bounds resets along a single path (default 1).
	MaxResetsPerPath int
	// ExploreConnBreaks adds spontaneous connection-break transitions: a
	// node observes a transport error for one of its neighbors without a
	// preceding reset. The paper treats transport errors as ordinary
	// messages "generated and processed by message handlers", and
	// several Chord scenarios (Figure 10) hinge on them.
	ExploreConnBreaks bool
	// Filters are event filters assumed installed; matching message
	// events are replaced by the filter's corrective action. Used by the
	// steering filter-safety check (paper: "upon encountering an
	// inconsistency, we allow consequence prediction to pursue actions
	// that an event filter could perform").
	Filters []sm.Filter
	// WalkDepth and Walks parameterise RandomWalk mode.
	WalkDepth int
	Walks     int
	// Seed drives deterministic handler randomness.
	Seed int64
}

func (c *Config) defaults() {
	if c.MaxResetsPerPath == 0 {
		c.MaxResetsPerPath = 1
	}
	if c.WalkDepth == 0 {
		c.WalkDepth = 60
	}
	if c.Walks == 0 {
		c.Walks = 200
	}
}

// Violation is a predicted inconsistency: the properties violated and the
// event path from the start state that reaches the violating state.
type Violation struct {
	Properties []string
	Path       []sm.Event
	StateHash  uint64
	Depth      int
}

// Result summarises a search.
type Result struct {
	Violations      []Violation
	StatesExplored  int
	Transitions     int
	MaxDepthReached int
	// PeakMemoryBytes approximates the search-tree footprint: encoded
	// frontier states plus hash-set entries (Figures 15/16).
	PeakMemoryBytes int64
	// PerStateBytes is PeakMemoryBytes / StatesExplored (Figure 16).
	PerStateBytes  float64
	Elapsed        time.Duration
	DummyRedirects int
	// LocalPrunes counts internal-action expansions skipped by the
	// consequence-prediction rule (0 in exhaustive mode).
	LocalPrunes int
}

// Search runs one exploration. Create with NewSearch, run with Run.
type Search struct {
	cfg Config
	// DummyRedirects counts messages redirected to the dummy node
	// (sends to nodes outside the snapshot).
	DummyRedirects int
	localPrunes    int
}

// NewSearch returns a Search for the given configuration.
func NewSearch(cfg Config) *Search {
	cfg.defaults()
	return &Search{cfg: cfg}
}

// searchNode is a frontier entry; parent links reconstruct violation paths.
type searchNode struct {
	state  *GState
	parent *searchNode
	event  sm.Event
	depth  int
	// violated carries the properties already violated along this path,
	// so the search reports each violation's *onset* exactly once and
	// keeps exploring (the paper's Figures 5 and 8 likewise continue
	// past states added to the error set).
	violated map[string]bool
}

func (n *searchNode) path() []sm.Event {
	var rev []sm.Event
	for cur := n; cur != nil && cur.event != nil; cur = cur.parent {
		rev = append(rev, cur.event)
	}
	out := make([]sm.Event, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// filterFor returns the first installed filter matching ev, if any.
func (s *Search) filterFor(ev sm.Event) (sm.Filter, bool) {
	for _, f := range s.cfg.Filters {
		if f.Matches(ev) {
			return f, true
		}
	}
	return sm.Filter{}, false
}

// applyFiltered executes the corrective action of filter f instead of ev:
// a filtered message is dropped and, if BreakConn, an RST notification is
// queued to the sender; filtered timers are rescheduled (no state change,
// so no successor); filtered app calls are suppressed.
func (s *Search) applyFiltered(g *GState, ev sm.Event, f sm.Filter) *GState {
	me, ok := ev.(sm.MsgEvent)
	if !ok {
		return nil
	}
	i := findMsg(g, me.From, me.To, me.Msg.MsgType(), false)
	if i < 0 {
		return nil
	}
	next := g.shallowClone()
	next.msgs = removeMsg(next.msgs, i)
	if f.BreakConn {
		if _, known := next.nodes[me.From]; known {
			next.msgs = append(next.msgs, InFlight{From: me.To, To: me.From, Msg: nil})
		}
	}
	return next
}

// Run explores from the start state and returns the result. The start
// state is not mutated.
func (s *Search) Run(start *GState) *Result {
	s.DummyRedirects = 0
	s.localPrunes = 0
	if s.cfg.Mode == RandomWalk {
		return s.runRandomWalk(start)
	}
	return s.runBFS(start)
}

// runBFS implements both Figure 5 (exhaustive) and Figure 8 (consequence
// prediction); the only difference is the localExplored test guarding
// internal actions.
func (s *Search) runBFS(start *GState) *Result {
	began := time.Now()
	res := &Result{}
	explored := make(map[uint64]bool)
	localExplored := make(map[uint64]bool)
	frontier := []*searchNode{{state: start}}
	var frontierBytes int64
	frontierBytes += int64(start.EncodedSize())
	peak := frontierBytes

	stop := func() bool {
		if s.cfg.MaxStates > 0 && res.StatesExplored >= s.cfg.MaxStates {
			return true
		}
		if s.cfg.MaxWall > 0 && time.Since(began) > s.cfg.MaxWall {
			return true
		}
		if s.cfg.MaxViolations > 0 && len(res.Violations) >= s.cfg.MaxViolations {
			return true
		}
		return false
	}

	for len(frontier) > 0 && !stop() {
		node := frontier[0]
		frontier = frontier[1:]
		frontierBytes -= int64(node.state.EncodedSize())
		res.StatesExplored++
		if node.depth > res.MaxDepthReached {
			res.MaxDepthReached = node.depth
		}
		// Report the *onset* of each violation — properties violated
		// here but not on the path so far — then keep exploring, as
		// the paper's search does: a start state that already violates
		// one property must not mask deeper, different bugs.
		violated := s.cfg.Props.Check(node.state.View())
		pathViolated := node.violated
		if len(violated) > 0 {
			var onset []string
			for _, p := range violated {
				if !pathViolated[p] {
					onset = append(onset, p)
				}
			}
			if len(onset) > 0 {
				res.Violations = append(res.Violations, Violation{
					Properties: onset,
					Path:       node.path(),
					StateHash:  node.state.Hash(),
					Depth:      node.depth,
				})
				next := make(map[string]bool, len(pathViolated)+len(onset))
				for p := range pathViolated {
					next[p] = true
				}
				for _, p := range onset {
					next[p] = true
				}
				pathViolated = next
			}
		}
		explored[node.state.Hash()] = true
		if s.cfg.MaxDepth > 0 && node.depth >= s.cfg.MaxDepth {
			continue
		}

		expand := func(ev sm.Event) {
			var next *GState
			if f, ok := s.filterFor(ev); ok {
				next = s.applyFiltered(node.state, ev, f)
			} else {
				next = s.apply(node.state, ev)
			}
			if next == nil {
				return
			}
			res.Transitions++
			h := next.Hash()
			if explored[h] {
				return
			}
			explored[h] = true
			frontier = append(frontier, &searchNode{
				state: next, parent: node, event: ev,
				depth: node.depth + 1, violated: pathViolated,
			})
			frontierBytes += int64(next.EncodedSize())
			if frontierBytes > peak {
				peak = frontierBytes
			}
		}

		network, internal := s.enabledEvents(node.state)
		// H_M: always process all network handlers (Figure 8 line 13).
		for _, ev := range network {
			expand(ev)
		}
		// H_A: internal actions, pruned per (node, local state) in
		// consequence mode (Figure 8 lines 16-20).
		for _, id := range node.state.Nodes() {
			evs := internal[id]
			if len(evs) == 0 {
				continue
			}
			if s.cfg.Mode == Consequence {
				lh := node.state.nodes[id].localHash(id)
				if localExplored[lh] {
					s.localPrunes += len(evs)
					continue
				}
				localExplored[lh] = true
			}
			for _, ev := range evs {
				expand(ev)
			}
		}
	}

	res.Elapsed = time.Since(began)
	res.DummyRedirects = s.DummyRedirects
	res.LocalPrunes = s.localPrunes
	// Hash-set entries cost roughly 16 bytes (8-byte key + bucket
	// overhead amortised); frontier states dominate at shallow depths.
	res.PeakMemoryBytes = peak + int64(len(explored)+len(localExplored))*16
	if res.StatesExplored > 0 {
		res.PerStateBytes = float64(res.PeakMemoryBytes) / float64(res.StatesExplored)
	}
	return res
}

// runRandomWalk performs cfg.Walks random walks of cfg.WalkDepth steps.
func (s *Search) runRandomWalk(start *GState) *Result {
	began := time.Now()
	res := &Result{}
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	seenViolation := make(map[uint64]bool)

	for walk := 0; walk < s.cfg.Walks; walk++ {
		if s.cfg.MaxWall > 0 && time.Since(began) > s.cfg.MaxWall {
			break
		}
		if s.cfg.MaxViolations > 0 && len(res.Violations) >= s.cfg.MaxViolations {
			break
		}
		node := &searchNode{state: start}
		walkViolated := make(map[string]bool)
		for depth := 0; depth < s.cfg.WalkDepth; depth++ {
			if s.cfg.MaxStates > 0 && res.StatesExplored >= s.cfg.MaxStates {
				break
			}
			res.StatesExplored++
			if depth > res.MaxDepthReached {
				res.MaxDepthReached = depth
			}
			if violated := s.cfg.Props.Check(node.state.View()); len(violated) > 0 {
				var onset []string
				for _, p := range violated {
					if !walkViolated[p] {
						onset = append(onset, p)
						walkViolated[p] = true
					}
				}
				h := node.state.Hash()
				if len(onset) > 0 && !seenViolation[h] {
					seenViolation[h] = true
					res.Violations = append(res.Violations, Violation{
						Properties: onset,
						Path:       node.path(),
						StateHash:  h,
						Depth:      depth,
					})
				}
			}
			network, internal := s.enabledEvents(node.state)
			all := append([]sm.Event{}, network...)
			for _, id := range node.state.Nodes() {
				all = append(all, internal[id]...)
			}
			if len(all) == 0 {
				break
			}
			// Try events in random order until one applies.
			perm := rng.Perm(len(all))
			var next *GState
			var chosen sm.Event
			for _, i := range perm {
				ev := all[i]
				if f, ok := s.filterFor(ev); ok {
					next = s.applyFiltered(node.state, ev, f)
				} else {
					next = s.apply(node.state, ev)
				}
				if next != nil {
					chosen = ev
					break
				}
			}
			if next == nil {
				break
			}
			res.Transitions++
			node = &searchNode{state: next, parent: node, event: chosen, depth: node.depth + 1}
		}
	}
	res.Elapsed = time.Since(began)
	res.DummyRedirects = s.DummyRedirects
	return res
}

// Replay re-executes a previously discovered error path from a (new) start
// state, following the paper's replay rule: timer and application events
// (and faults) replay directly, while message and error events replay only
// if the corresponding item is actually in flight — the service code itself
// regenerates messages, and we follow their causality. It returns the
// violated properties if the path still leads to a violation from this
// state, or nil.
func (s *Search) Replay(start *GState, path []sm.Event) []string {
	g := start
	if violated := s.cfg.Props.Check(g.View()); len(violated) > 0 {
		return violated
	}
	for _, ev := range path {
		var next *GState
		if f, ok := s.filterFor(ev); ok {
			next = s.applyFiltered(g, ev, f)
		} else {
			next = s.apply(g, ev)
		}
		if next == nil {
			// Event not applicable from the new state: the path is
			// no longer feasible.
			return nil
		}
		g = next
		if violated := s.cfg.Props.Check(g.View()); len(violated) > 0 {
			return violated
		}
	}
	return nil
}
