package mc

import (
	"runtime"
	"sync/atomic"
	"time"

	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// Mode selects the built-in exploration algorithm (see Strategy for the
// pluggable form; StrategyFor maps one to the other).
type Mode int

// Exploration modes.
const (
	// Exhaustive is the standard breadth-first search of paper Figure 5
	// (the MaceMC baseline).
	Exhaustive Mode = iota
	// Consequence is the consequence-prediction algorithm of paper
	// Figure 8: breadth-first, but internal actions of a (node, local
	// state) pair are explored at most once across the entire search.
	Consequence
	// RandomWalk repeatedly walks random enabled transitions to a depth
	// bound (MaceMC's random-walk mode, used in the paper's section 5.3
	// comparison).
	RandomWalk
)

func (m Mode) String() string { return StrategyFor(m).Name() }

// Config parameterises a search.
type Config struct {
	// Props are the safety properties to check on every explored state.
	Props props.Set
	// GlobalProps are the cross-node properties checked on the same view,
	// right after Props. Their violations flow through the identical
	// onset/dedup machinery, so filters and steering react to a diverged
	// replica pair exactly as they do to a local invariant break. Empty on
	// scenarios that declare none — the checker's behavior (and output) is
	// then bit-for-bit unchanged.
	GlobalProps props.GlobalSet
	// Factory creates fresh service instances for reset nodes.
	Factory sm.Factory
	// Mode selects the algorithm.
	Mode Mode
	// Strategy, when non-nil, overrides Mode with a custom exploration
	// algorithm.
	Strategy Strategy
	// Budget is the search's resource envelope: states, depth, wall
	// clock, violations and workers in one value — what a Policy plans
	// per round and what the engine and every strategy consume. Zero
	// fields are filled from the deprecated loose scalars below, so
	// legacy configurations keep working unchanged.
	Budget Budget
	// Workers is the number of exploration goroutines sharing the work
	// queue (0 = GOMAXPROCS). With Workers == 1 the breadth-first
	// strategies reproduce the serial search of the paper exactly.
	//
	// Deprecated: set Budget.Workers; this scalar fills the Budget only
	// where it is zero.
	Workers int
	// MaxStates bounds explored states (0 = unbounded).
	//
	// Deprecated: set Budget.States.
	MaxStates int
	// MaxDepth bounds search depth (0 = unbounded).
	//
	// Deprecated: set Budget.Depth.
	MaxDepth int
	// MaxWall bounds wall-clock time (0 = unbounded); part of the
	// paper's StopCriterion for runtime deployment.
	//
	// Deprecated: set Budget.Wall.
	MaxWall time.Duration
	// MaxViolations stops the search after this many distinct violating
	// states (0 = collect all within other bounds); the reported
	// Violations list is additionally deduplicated by Signature.
	//
	// Deprecated: set Budget.Violations.
	MaxViolations int
	// ExploreResets enables node-reset fault transitions.
	ExploreResets bool
	// MaxResetsPerPath bounds resets along a single path (default 1).
	MaxResetsPerPath int
	// ExploreConnBreaks adds spontaneous connection-break transitions: a
	// node observes a transport error for one of its neighbors without a
	// preceding reset. The paper treats transport errors as ordinary
	// messages "generated and processed by message handlers", and
	// several Chord scenarios (Figure 10) hinge on them.
	ExploreConnBreaks bool
	// Filters are event filters assumed installed; matching message
	// events are replaced by the filter's corrective action. Used by the
	// steering filter-safety check (paper: "upon encountering an
	// inconsistency, we allow consequence prediction to pursue actions
	// that an event filter could perform").
	Filters []sm.Filter
	// WalkDepth and Walks parameterise RandomWalk mode.
	WalkDepth int
	Walks     int
	// Seed drives deterministic handler randomness.
	Seed int64
	// Reduce enables dynamic partial-order reduction: sleep sets over
	// commuting transitions (independence per reduce.go's dependent —
	// different target nodes, disjoint RST queues) prune expansions whose
	// targets are provably duplicates of states a sibling branch reaches
	// at the same BFS level. The claimed-state set, the violations and
	// the distinct local-state set are identical to the unreduced search;
	// only redundant handler executions are skipped. Applies to the
	// breadth-first strategies (Exhaustive, Consequence).
	Reduce bool
	// Reducer overrides the independence oracle consulted when Reduce is
	// on (nil = DeliveryIndependence).
	Reducer Reducer
	// RecordLocalStates asks the breadth-first engine to return the
	// sorted set of distinct node-local state hashes it claimed
	// (Result.LocalStates); differential oracles compare the sets.
	RecordLocalStates bool
	// RecordClaimedStates asks the breadth-first engine to return the
	// sorted set of state fingerprints it claimed into the visited set
	// (Result.ClaimedStates). The distributed-search differential oracle
	// compares this set against the union of the shards' claims.
	RecordClaimedStates bool
	// LegacyFrontier selects the pre-deque shared-cursor level FIFO.
	//
	// Deprecated: benchmark escape hatch only — BenchmarkParallelSearch
	// compares the work-stealing deques against it.
	LegacyFrontier bool
	// Now is the clock the wall budget (Budget.Wall) and Result.Elapsed
	// read (nil = time.Now). Injecting a fake clock makes wall-budget
	// expiry unit-testable; it is the only wall-clock access in the
	// checker, keeping everything else a deterministic function of the
	// configuration.
	Now func() time.Time
}

// mergeLegacy resolves the effective budget: explicit Budget fields win,
// zero fields fall back to the deprecated loose scalars.
func (c *Config) mergeLegacy() Budget {
	b := c.Budget
	if b.States == 0 {
		b.States = c.MaxStates
	}
	if b.Depth == 0 {
		b.Depth = c.MaxDepth
	}
	if b.Wall == 0 {
		b.Wall = c.MaxWall
	}
	if b.Violations == 0 {
		b.Violations = c.MaxViolations
	}
	if b.Workers == 0 {
		b.Workers = c.Workers
	}
	return b
}

func (c *Config) defaults() {
	if c.MaxResetsPerPath == 0 {
		c.MaxResetsPerPath = 1
	}
	if c.WalkDepth == 0 {
		c.WalkDepth = 60
	}
	if c.Walks == 0 {
		c.Walks = 200
	}
	if c.Reducer == nil {
		c.Reducer = DeliveryIndependence
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	b := c.mergeLegacy()
	if b.Workers <= 0 {
		b.Workers = runtime.GOMAXPROCS(0)
	}
	c.Budget = b
	// Mirror the resolved budget back into the deprecated scalars so
	// code that still reads them observes the same bounds.
	c.MaxStates, c.MaxDepth, c.MaxWall = b.States, b.Depth, b.Wall
	c.MaxViolations, c.Workers = b.Violations, b.Workers
}

// strategy resolves the configured exploration algorithm.
func (c *Config) strategy() Strategy {
	if c.Strategy != nil {
		return c.Strategy
	}
	return StrategyFor(c.Mode)
}

// Violation is a predicted inconsistency: the properties violated and the
// event path from the start state that reaches the violating state.
type Violation struct {
	Properties []string
	Path       []sm.Event
	StateHash  uint64
	Depth      int
}

// Signature identifies the violation's bug class for deduplication: the
// violated properties plus the kind of the path's final event (the handler
// at fault), with node identities stripped so the same bug reached along
// different interleavings — or at different nodes — counts once.
func (v Violation) Signature() string {
	sig := ""
	for _, p := range v.Properties {
		sig += p + "|"
	}
	if n := len(v.Path); n > 0 {
		sig += EventKind(v.Path[n-1])
	}
	return sig
}

// EventKind renders an event's identity-free kind ("msg:Join",
// "timer:recovery", "reset", ...).
func EventKind(ev sm.Event) string {
	switch e := ev.(type) {
	case sm.MsgEvent:
		return "msg:" + e.Msg.MsgType()
	case sm.TimerEvent:
		return "timer:" + string(e.Timer)
	case sm.AppEvent:
		return "app:" + e.Call.CallName()
	case sm.ResetEvent:
		return "reset"
	case sm.ErrorEvent:
		return "error"
	case sm.DropEvent:
		return "drop"
	default:
		return "unknown"
	}
}

// Result summarises a search. Violations are deduplicated by Signature and
// sorted by (depth, state hash, signature). For runs bounded only by depth
// or exhaustion the reported set is reproducible regardless of worker
// interleaving (the engine's level-synchronized exploration visits exactly
// the same states); under a states/wall/violations cutoff, which states
// fall inside the budget can vary with more than one worker.
type Result struct {
	Violations      []Violation
	StatesExplored  int
	Transitions     int
	MaxDepthReached int
	// PeakMemoryBytes approximates the search-tree footprint: encoded
	// frontier states plus hash-set entries (Figures 15/16).
	PeakMemoryBytes int64
	// PerStateBytes is PeakMemoryBytes / StatesExplored (Figure 16).
	PerStateBytes  float64
	Elapsed        time.Duration
	DummyRedirects int
	// LocalPrunes counts internal-action expansions skipped by the
	// consequence-prediction rule (0 in exhaustive mode).
	LocalPrunes int
	// SleepHits counts network transitions skipped by the sleep-set
	// partial-order reduction (0 unless Config.Reduce).
	SleepHits int
	// TransitionsPruned is the total expansions avoided: SleepHits plus
	// LocalPrunes. Controllers report it per round so budget policies see
	// honest per-state work.
	TransitionsPruned int
	// Steals and StealFails count work-stealing deque traffic: successful
	// steals and lost steal races. Scheduling telemetry — unlike every
	// counter above they are NOT deterministic across runs.
	Steals     int
	StealFails int
	// DistinctLocalStates counts distinct node-local states over all
	// claimed states — the ROADMAP's coverage metric ("distinct local
	// states reached per budget").
	DistinctLocalStates int
	// LocalStates is the sorted distinct local-state hash set, filled
	// only when Config.RecordLocalStates is set.
	LocalStates []uint64
	// ClaimedStates is the sorted visited-set fingerprint dump, filled
	// only when Config.RecordClaimedStates is set.
	ClaimedStates []uint64
	// Workers is the worker-pool size the search ran with.
	Workers int
}

// Search runs one exploration. Create with NewSearch, run with Run.
type Search struct {
	cfg Config
	// dummyRedirects counts messages redirected to the dummy node (sends
	// to nodes outside the snapshot); atomic because handler execution is
	// spread across the worker pool.
	dummyRedirects atomic.Int64
}

// NewSearch returns a Search for the given configuration.
func NewSearch(cfg Config) *Search {
	cfg.defaults()
	return &Search{cfg: cfg}
}

// Config returns the search's (defaulted) configuration.
func (s *Search) Config() Config { return s.cfg }

// searchNode is a frontier entry; parent links reconstruct violation paths.
// Once a node is published to the work queue every field is immutable, so
// workers may traverse parent chains freely.
type searchNode struct {
	state  *GState
	parent *searchNode
	event  sm.Event
	depth  int
	// violated carries the properties already violated along this path,
	// so the search reports each violation's *onset* exactly once and
	// keeps exploring (the paper's Figures 5 and 8 likewise continue
	// past states added to the error set).
	violated map[string]bool
	// sleep is the node's sleep set under partial-order reduction: the
	// network transitions this path has proven redundant (nil when
	// reduction is off or nothing is slept).
	sleep sleepSet
}

func (n *searchNode) path() []sm.Event {
	var rev []sm.Event
	for cur := n; cur != nil && cur.event != nil; cur = cur.parent {
		rev = append(rev, cur.event)
	}
	out := make([]sm.Event, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// filterFor returns the first installed filter matching ev, if any.
func (s *Search) filterFor(ev sm.Event) (sm.Filter, bool) {
	for _, f := range s.cfg.Filters {
		if f.Matches(ev) {
			return f, true
		}
	}
	return sm.Filter{}, false
}

// applyFiltered executes the corrective action of filter f instead of ev:
// a filtered message is dropped and, if BreakConn, an RST notification is
// queued to the sender; filtered timers are rescheduled (no state change,
// so no successor); filtered app calls are suppressed.
func (s *Search) applyFiltered(g *GState, ev sm.Event, f sm.Filter, sc *scratch) *GState {
	me, ok := ev.(sm.MsgEvent)
	if !ok {
		return nil
	}
	i := findMsg(g, me.From, me.To, me.Msg.MsgType(), false)
	if i < 0 {
		return nil
	}
	next := g.shallowClone()
	next.removeMsgAt(i, sc)
	if f.BreakConn {
		if _, known := next.nodes[me.From]; known {
			next.addMsg(InFlight{From: me.To, To: me.From, Msg: nil}, sc)
		}
	}
	return next
}

// ApplyEvent executes ev on g — honoring installed event filters — and
// returns the successor state, or nil when the event is not applicable.
// g is never mutated: handlers run on cloned node states, and all encoding
// and hash caches are populated at state construction, so ApplyEvent is
// safe to call from concurrent workers on a shared predecessor. The
// successor's fingerprint is maintained incrementally during construction,
// so its Hash is ready in O(changed components). All transient workspace —
// scratch encoder, handler context, per-edge random stream — comes from a
// pooled scratch that is released before returning, so nothing reachable
// from the successor aliases it.
func (s *Search) ApplyEvent(g *GState, ev sm.Event) *GState {
	sc := getScratch()
	var next *GState
	if f, ok := s.filterFor(ev); ok {
		next = s.applyFiltered(g, ev, f, sc)
	} else {
		next = s.apply(g, ev, sc)
	}
	putScratch(sc)
	return next
}

// Run explores from the start state and returns the result. The start
// state is not mutated.
func (s *Search) Run(start *GState) *Result {
	s.dummyRedirects.Store(0)
	res := s.cfg.strategy().Explore(s, start, s.cfg.Budget.Workers)
	res.DummyRedirects = int(s.dummyRedirects.Load())
	res.Workers = s.cfg.Budget.Workers
	return res
}

// checkProps evaluates the local property set and then, when configured,
// the global (cross-node) set against the same filled view, returning the
// combined violated names — locals first, globals after, each in
// declaration order. Every property-evaluation site in the checker (engine
// expansion, random walks, replay, the dist expander) funnels through this
// one helper, which is what keeps serial, parallel, and sharded searches
// reporting identical violation sets.
func (s *Search) checkProps(v *props.View) []string {
	violated := s.cfg.Props.Check(v)
	if len(s.cfg.GlobalProps) > 0 {
		violated = s.cfg.GlobalProps.AppendViolated(violated, props.Global(v))
	}
	return violated
}

// Replay re-executes a previously discovered error path from a (new) start
// state, following the paper's replay rule: timer and application events
// (and faults) replay directly, while message and error events replay only
// if the corresponding item is actually in flight — the service code itself
// regenerates messages, and we follow their causality. It returns the
// violated properties if the path still leads to a violation from this
// state, or nil.
func (s *Search) Replay(start *GState, path []sm.Event) []string {
	g := start
	v := props.NewView() // reused across every step of the replay
	g.FillView(v)
	if violated := s.checkProps(v); len(violated) > 0 {
		return violated
	}
	for _, ev := range path {
		next := s.ApplyEvent(g, ev)
		if next == nil {
			// Event not applicable from the new state: the path is
			// no longer feasible.
			return nil
		}
		g = next
		g.FillView(v)
		if violated := s.checkProps(v); len(violated) > 0 {
			return violated
		}
	}
	return nil
}
