package mc

import (
	"fmt"
	"math"
	"runtime"
	"time"
)

// This file is the checker's resource-control surface: a Budget value (the
// per-Explore envelope the paper calls the StopCriterion, plus the worker
// count that spends it) and a Policy that decides each round's Budget from
// feedback. The policy seam is what separates exploration *policy* from the
// search engine — the split MODIST and MaceMC draw, and the one the paper's
// "adaptive" StopCriterion needs: consequence prediction must fit inside a
// live snapshot interval, and only a per-round policy watching snapshot
// sizes and past throughput can size the search to do so.

// Budget is the resource envelope for one exploration: the search stops when
// any non-zero bound is reached, and Workers goroutines spend the budget.
// The zero value of a field means unbounded (Workers: GOMAXPROCS).
type Budget struct {
	// States bounds explored states.
	States int
	// Depth bounds search depth.
	Depth int
	// Wall bounds wall-clock time.
	Wall time.Duration
	// Violations stops the search after this many distinct violating
	// states; the reported list is additionally deduplicated by
	// Signature.
	Violations int
	// Transitions bounds executed handler invocations — a deterministic
	// stand-in for wall clock (per-state cost is dominated by handler
	// execution), and the axis partial-order reduction stretches: at an
	// equal transition budget a reduced search penetrates deeper.
	Transitions int
	// Workers is the exploration worker-pool size (0 = GOMAXPROCS). With
	// one worker the breadth-first strategies reproduce the paper's
	// serial search exactly.
	Workers int
}

// Stop projects the budget onto the paper's StopCriterion (the bounds
// shared by every worker's admission check).
func (b Budget) Stop() StopCriterion {
	return StopCriterion{
		MaxStates:      b.States,
		MaxDepth:       b.Depth,
		MaxWall:        b.Wall,
		MaxViolations:  b.Violations,
		MaxTransitions: b.Transitions,
	}
}

// RoundInfo is what a Policy sees before planning a model-checking round.
type RoundInfo struct {
	// Round is the 1-based round number at the planning controller.
	Round int
	// SnapshotBytes is the encoded size of the snapshot the round
	// explores from (GState.EncodedSize).
	SnapshotBytes int
	// SnapshotNodes is the number of nodes in the snapshot.
	SnapshotNodes int
	// Interval is the snapshot interval the round must fit inside (the
	// gap until the next round's snapshot; 0 = untimed, offline use).
	Interval time.Duration
}

// RoundReport is the post-round feedback a Policy observes. Elapsed is
// whatever clock governs the checker/system race at the caller: the live
// controller feeds the virtual model-checking latency (explored states x
// per-state cost), so planning stays deterministic under simulation; a
// wall-clock deployment would feed real elapsed time.
type RoundReport struct {
	// Budget is the budget the round ran with — as planned, except that
	// Workers must be the worker count the engine actually resolved
	// (Result.Workers), never the planned 0 = GOMAXPROCS placeholder:
	// per-worker throughput estimates divide by it.
	Budget Budget
	// States is the number of states the round actually explored.
	States int
	// Violations is the number of violations the round reported.
	Violations int
	// Pruned is the number of transitions the round skipped as provably
	// redundant (Result.TransitionsPruned: sleep-set hits plus local-state
	// prunes). States counts only what was actually explored, so the
	// states/sec signal adaptive policies smooth stays honest under
	// partial-order reduction — Pruned is reported separately for
	// policies (or telemetry) that want effective coverage, which is
	// States' worth of claims bought with States+Pruned's worth of
	// candidate transitions.
	Pruned int
	// Elapsed is the round's exploration time (see type comment).
	Elapsed time.Duration
}

// Policy decides each model-checking round's Budget from feedback. Plan is
// consulted before a round with what is known about the snapshot; Observe
// is fed the round's report afterwards. Implementations must be
// deterministic functions of their observation history — no wall-clock or
// other ambient reads inside Plan or Observe (time flows in through
// RoundReport.Elapsed) — and both methods must be allocation-free: they run
// on the controller's round hot path (policy_test.go pins both properties).
//
// Policies are stateful and not safe for concurrent use: give each
// controller its own instance (PolicySpec.New builds fresh ones).
type Policy interface {
	// Plan returns the budget for the upcoming round.
	Plan(RoundInfo) Budget
	// Observe feeds back the report of the round that just ran.
	Observe(RoundReport)
}

// FixedPolicy returns the same budget every round and ignores feedback:
// exactly the pre-policy behavior of the scattered MCStates/MCDepth/Workers
// scalars, and the paper-faithful default (mcheck output under FixedPolicy
// is byte-identical to the scalar configuration at every worker count).
type FixedPolicy struct {
	Budget Budget
}

// Plan implements Policy.
func (p *FixedPolicy) Plan(RoundInfo) Budget { return p.Budget }

// Observe implements Policy.
func (p *FixedPolicy) Observe(RoundReport) {}

// DefaultRefBytes is ScaledPolicy's reference snapshot size: a snapshot
// encoding to exactly this many bytes gets Base.States states.
const DefaultRefBytes = 4096

// ScaledPolicy scales the state budget inversely with snapshot size:
// per-state exploration cost (encoding, hashing, cloning) grows with the
// snapshot's encoded size, so holding states x bytes roughly constant holds
// the round's work — and so its duration — roughly constant as the
// neighborhood grows. Plan returns Base with States replaced by
// Base.States x RefBytes / SnapshotBytes, clamped to [MinStates, MaxStates].
type ScaledPolicy struct {
	// Base is the budget template; Base.States is the budget at a
	// RefBytes-sized snapshot.
	Base Budget
	// RefBytes is the reference snapshot size (0 = DefaultRefBytes).
	RefBytes int
	// MinStates / MaxStates clamp the scaled budget
	// (0 = Base.States/8 and Base.States*8 respectively).
	MinStates int
	MaxStates int
}

// Plan implements Policy.
//
//crystal:hotpath
func (p *ScaledPolicy) Plan(in RoundInfo) Budget {
	b := p.Base
	if b.States <= 0 || in.SnapshotBytes <= 0 {
		return b
	}
	ref := p.RefBytes
	if ref <= 0 {
		ref = DefaultRefBytes
	}
	lo, hi := p.MinStates, p.MaxStates
	if lo <= 0 {
		lo = b.States / 8
		if lo < 1 {
			lo = 1
		}
	}
	if hi <= 0 {
		hi = b.States * 8
	}
	// The ceiling wins a floor/ceiling conflict: a derived floor
	// (Base.States/8) must never override an explicit MaxStates cap.
	if lo > hi {
		lo = hi
	}
	b.States = clampInt(int(int64(b.States)*int64(ref)/int64(in.SnapshotBytes)), lo, hi)
	return b
}

// Observe implements Policy.
func (p *ScaledPolicy) Observe(RoundReport) {}

// AdaptivePolicy is the paper's adaptive StopCriterion: it keeps an EWMA of
// observed per-worker states/sec and sizes each round to finish within
// TargetFraction of the snapshot interval. Two levers move together:
//
//   - Workers grows (up to MaxWorkers) when the single-worker throughput
//     estimate cannot reach Base.States — the coverage ask — inside the
//     target window, so prediction lands inside the interval;
//   - States becomes the predicted capacity of the chosen worker count over
//     the target window, clamped to [MinStates, MaxStates] — shrinking
//     below Base.States when even MaxWorkers cannot keep up, and growing
//     beyond it when throughput allows deeper rounds at no deadline risk.
//
// The first round (no feedback yet) and untimed rounds (Interval 0) run on
// Base unchanged. Plan and Observe read no clock — time reaches the policy
// only through RoundReport.Elapsed — so a fixed report sequence always
// yields the same budget sequence.
type AdaptivePolicy struct {
	// Base is the first-round budget and the coverage ask for worker
	// sizing; Base.Wall/Depth/Violations pass through every plan.
	Base Budget
	// TargetFraction of the snapshot interval to fill (0 = 0.5).
	TargetFraction float64
	// Alpha is the EWMA smoothing factor in (0, 1] (0 = 0.3).
	Alpha float64
	// MaxWorkers caps worker growth (0 = max(Base.Workers, GOMAXPROCS)).
	MaxWorkers int
	// MinStates / MaxStates clamp planned budgets
	// (0 = 64 and Base.States*16 respectively).
	MinStates int
	MaxStates int

	// rate is the EWMA estimate of per-worker states/sec; have flips
	// after the first observation.
	rate float64
	have bool
}

func (p *AdaptivePolicy) targetFraction() float64 {
	if p.TargetFraction > 0 {
		return p.TargetFraction
	}
	return 0.5
}

// Rate returns the current per-worker states/sec estimate (0 until the
// first observation); experiments report it.
func (p *AdaptivePolicy) Rate() float64 { return p.rate }

// Plan implements Policy.
//
//crystal:hotpath
func (p *AdaptivePolicy) Plan(in RoundInfo) Budget {
	b := p.Base
	if !p.have || in.Interval <= 0 || p.rate <= 0 {
		return b
	}
	target := p.targetFraction() * in.Interval.Seconds()
	if target <= 0 {
		return b
	}
	maxW := p.MaxWorkers
	if maxW <= 0 {
		maxW = runtime.GOMAXPROCS(0)
		if b.Workers > maxW {
			maxW = b.Workers
		}
	}
	// Workers: enough that the coverage ask fits the window, if possible.
	w := 1
	if b.States > 0 {
		w = clampInt(int(math.Ceil(float64(b.States)/(p.rate*target))), 1, maxW)
	}
	// States: what the chosen pool is predicted to explore in the window.
	lo, hi := p.MinStates, p.MaxStates
	if lo <= 0 {
		lo = 64
	}
	if hi <= 0 {
		hi = b.States * 16
		if hi <= 0 {
			hi = 1 << 20
		}
	}
	// The ceiling wins a floor/ceiling conflict: the derived 64-state
	// floor must never override an explicit (or tiny derived) cap.
	if lo > hi {
		lo = hi
	}
	b.States = clampInt(int(p.rate*float64(w)*target), lo, hi)
	b.Workers = w
	return b
}

// Observe implements Policy.
//
//crystal:hotpath
func (p *AdaptivePolicy) Observe(r RoundReport) {
	if r.States <= 0 || r.Elapsed <= 0 {
		return
	}
	w := r.Budget.Workers
	if w <= 0 {
		w = 1
	}
	perWorker := float64(r.States) / r.Elapsed.Seconds() / float64(w)
	if !p.have {
		p.rate = perWorker
		p.have = true
		return
	}
	alpha := p.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	p.rate = alpha*perWorker + (1-alpha)*p.rate
}

// Built-in policy kind names, accepted by PolicySpec.Kind and the CLIs'
// -policy flags.
const (
	PolicyFixed    = "fixed"
	PolicyScaled   = "scaled"
	PolicyAdaptive = "adaptive"
)

// PolicyKinds lists the built-in policy kinds (CLI help and errors).
func PolicyKinds() []string { return []string{PolicyFixed, PolicyScaled, PolicyAdaptive} }

// PolicySpec declaratively describes a budget policy: pure data that can
// sit in a scenario registration or a controller config and be copied
// freely. New builds a fresh Policy instance per call — policies are
// stateful (EWMA history), so instances must never be shared across
// controllers.
type PolicySpec struct {
	// Kind selects the built-in: "fixed" (default when empty), "scaled"
	// or "adaptive".
	Kind string
	// Base is the budget template every built-in starts from.
	Base Budget
	// TargetFraction tunes AdaptivePolicy (0 = 0.5).
	TargetFraction float64
	// Alpha tunes AdaptivePolicy's EWMA (0 = 0.3).
	Alpha float64
	// RefBytes tunes ScaledPolicy (0 = DefaultRefBytes).
	RefBytes int
	// MinStates / MaxStates clamp scaled and adaptive plans (0 = kind
	// defaults).
	MinStates int
	MaxStates int
	// MaxWorkers caps AdaptivePolicy's worker growth (0 = kind default).
	MaxWorkers int
	// Make, when set, overrides Kind with a custom constructor; it must
	// return a fresh Policy per call.
	Make func() Policy
}

// New builds a fresh policy instance from the spec; it fails on an unknown
// Kind.
func (s PolicySpec) New() (Policy, error) {
	if s.Make != nil {
		return s.Make(), nil
	}
	switch s.Kind {
	case "", PolicyFixed:
		return &FixedPolicy{Budget: s.Base}, nil
	case PolicyScaled:
		return &ScaledPolicy{
			Base:      s.Base,
			RefBytes:  s.RefBytes,
			MinStates: s.MinStates,
			MaxStates: s.MaxStates,
		}, nil
	case PolicyAdaptive:
		return &AdaptivePolicy{
			Base:           s.Base,
			TargetFraction: s.TargetFraction,
			Alpha:          s.Alpha,
			MaxWorkers:     s.MaxWorkers,
			MinStates:      s.MinStates,
			MaxStates:      s.MaxStates,
		}, nil
	default:
		return nil, fmt.Errorf("unknown policy kind %q (have %v)", s.Kind, PolicyKinds())
	}
}

// MustNew is New for specs that are static configuration (CLIs after flag
// validation, tests); it panics on an unknown Kind.
func (s PolicySpec) MustNew() Policy {
	p, err := s.New()
	if err != nil {
		panic(err)
	}
	return p
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if hi > 0 && v > hi {
		return hi
	}
	return v
}
