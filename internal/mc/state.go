// Package mc implements the model checker at the heart of CrystalBall: the
// baseline exhaustive breadth-first search (paper Figure 5), the
// consequence-prediction algorithm (paper Figure 8), a random-walk mode (the
// MaceMC comparison baseline), replay of previously discovered error paths,
// and the event-filter safety check used by execution steering.
//
// The checker executes real service handler code on cloned states, exactly
// as MaceMC executed real Mace/C++ handlers; the global state is the (L, I)
// pair of the paper's Figure 4 — local node states plus in-flight messages —
// extended with the small amount of transport bookkeeping (stale TCP pairs,
// droppable RST notifications) needed to model the failure scenarios the
// paper's bugs depend on.
package mc

import (
	"sort"

	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// NodeState is one node's local state inside the checker: the service state
// machine plus the pending-timer set. NodeState values are immutable once
// placed in a GState; successor states clone before mutating. Because of
// that immutability, the canonical encoding is computed once and shared by
// every global state the node state appears in.
type NodeState struct {
	Svc    sm.Service
	Timers map[sm.TimerID]bool
	enc    []byte // lazy canonical encoding of (Svc, Timers)
}

func (ns *NodeState) clone() *NodeState {
	timers := make(map[sm.TimerID]bool, len(ns.Timers))
	for t, ok := range ns.Timers {
		if ok {
			timers[t] = true
		}
	}
	return &NodeState{Svc: ns.Svc.Clone(), Timers: timers}
}

// encoding returns the canonical encoding, computing and caching it on
// first use. Callers must not invoke it until the state is final (all
// handler mutations applied), which the search guarantees: hashing happens
// only after successor construction completes.
func (ns *NodeState) encoding() []byte {
	if ns.enc == nil {
		e := sm.NewEncoder()
		ns.Svc.EncodeState(e)
		encodeTimers(e, ns.Timers)
		out := make([]byte, e.Len())
		copy(out, e.Bytes())
		ns.enc = out
	}
	return ns.enc
}

// localHash hashes the node-local state (service state + timers); the
// consequence-prediction pruning keys its localExplored set on this.
func (ns *NodeState) localHash(id sm.NodeID) uint64 {
	e := sm.NewEncoder()
	e.NodeID(id)
	e.Bytes2(ns.encoding())
	return e.Hash()
}

func encodeTimers(e *sm.Encoder, timers map[sm.TimerID]bool) {
	names := make([]string, 0, len(timers))
	for t, ok := range timers {
		if ok {
			names = append(names, string(t))
		}
	}
	sort.Strings(names)
	e.Uint32(uint32(len(names)))
	for _, t := range names {
		e.String(t)
	}
}

// InFlight is one in-flight network item: a service message, or (when Msg
// is nil) an RST notification telling To that its connection to From broke.
type InFlight struct {
	From sm.NodeID
	To   sm.NodeID
	Msg  sm.Message // nil => RST notification
	enc  string     // lazy canonical encoding (messages are immutable)
}

// RST reports whether the item is a connection-break notification.
func (f InFlight) RST() bool { return f.Msg == nil }

func (f InFlight) encode(e *sm.Encoder) {
	e.NodeID(f.From)
	e.NodeID(f.To)
	if f.Msg == nil {
		e.Bool(false)
	} else {
		e.Bool(true)
		e.String(f.Msg.MsgType())
		f.Msg.EncodeMsg(e)
	}
}

type pair struct{ a, b sm.NodeID }

// GState is a global system state: the paper's (L, I) plus transport
// bookkeeping. GStates are persistent: successors share unmodified node
// states and copy only what an event changes.
type GState struct {
	nodes  map[sm.NodeID]*NodeState
	msgs   []InFlight
	stale  map[pair]bool // (sender, peer): sender holds a stale socket to peer
	resets int           // reset events taken on this path (bounds fault depth)
	hash   uint64        // memoized Hash (0 = not yet computed)
}

// NewGState builds a global state from per-node services and timer sets.
// The services are used as-is (not cloned); callers that keep using their
// copies must clone first.
func NewGState() *GState {
	return &GState{
		nodes: make(map[sm.NodeID]*NodeState),
		stale: make(map[pair]bool),
	}
}

// AddNode inserts a node's local state.
func (g *GState) AddNode(id sm.NodeID, svc sm.Service, timers map[sm.TimerID]bool) {
	tm := make(map[sm.TimerID]bool, len(timers))
	for t, ok := range timers {
		if ok {
			tm[t] = true
		}
	}
	g.nodes[id] = &NodeState{Svc: svc, Timers: tm}
}

// AddMessage inserts an in-flight service message.
func (g *GState) AddMessage(from, to sm.NodeID, msg sm.Message) {
	g.msgs = append(g.msgs, InFlight{From: from, To: to, Msg: msg})
}

// Nodes returns the node ids present, ascending.
func (g *GState) Nodes() []sm.NodeID {
	ids := make([]sm.NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Node returns the local state of id, or nil if absent from the snapshot.
func (g *GState) Node(id sm.NodeID) *NodeState { return g.nodes[id] }

// InFlightCount reports the number of in-flight items.
func (g *GState) InFlightCount() int { return len(g.msgs) }

// View renders the state for property evaluation.
func (g *GState) View() *props.View {
	v := props.NewView()
	for id, ns := range g.nodes {
		v.Add(id, ns.Svc, ns.Timers)
	}
	return v
}

// Hash returns the FNV-64a hash of the full global state. In-flight
// messages hash as a multiset (the paper's model treats I as a set, with no
// FIFO ordering), so states differing only in bookkeeping order collide as
// they should.
func (g *GState) Hash() uint64 {
	if g.hash != 0 {
		return g.hash
	}
	e := sm.NewEncoder()
	for _, id := range g.Nodes() {
		e.NodeID(id)
		e.Bytes2(g.nodes[id].encoding())
	}
	// Encode each in-flight item separately and sort the encodings for
	// multiset semantics; encodings are cached since messages never
	// mutate.
	blobs := make([]string, len(g.msgs))
	for i := range g.msgs {
		if g.msgs[i].enc == "" {
			me := sm.NewEncoder()
			g.msgs[i].encode(me)
			g.msgs[i].enc = string(me.Bytes())
		}
		blobs[i] = g.msgs[i].enc
	}
	sort.Strings(blobs)
	e.Uint32(uint32(len(blobs)))
	for _, b := range blobs {
		e.String(b)
	}
	// Stale pairs, sorted.
	stale := make([]pair, 0, len(g.stale))
	for p, ok := range g.stale {
		if ok {
			stale = append(stale, p)
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		if stale[i].a != stale[j].a {
			return stale[i].a < stale[j].a
		}
		return stale[i].b < stale[j].b
	})
	e.Uint32(uint32(len(stale)))
	for _, p := range stale {
		e.NodeID(p.a)
		e.NodeID(p.b)
	}
	h := e.Hash()
	if h == 0 {
		h = 1 // reserve 0 as the "not computed" sentinel
	}
	g.hash = h
	return h
}

// EncodedSize approximates the state's in-memory footprint for the memory
// experiments (paper Figures 15 and 16).
func (g *GState) EncodedSize() int {
	n := 0
	for _, ns := range g.nodes {
		n += 4 + len(ns.encoding())
	}
	for _, m := range g.msgs {
		n += 13
		if m.Msg != nil {
			n += m.Msg.Size()
		}
	}
	return n + 16*len(g.stale)
}

// shallowClone copies the state's containers but shares all node states and
// messages; callers then replace what the event changes.
func (g *GState) shallowClone() *GState {
	nodes := make(map[sm.NodeID]*NodeState, len(g.nodes))
	for id, ns := range g.nodes {
		nodes[id] = ns
	}
	msgs := make([]InFlight, len(g.msgs))
	copy(msgs, g.msgs)
	stale := make(map[pair]bool, len(g.stale))
	for p, ok := range g.stale {
		if ok {
			stale[p] = true
		}
	}
	return &GState{nodes: nodes, msgs: msgs, stale: stale, resets: g.resets}
}

// MarkStale records that `from` holds a stale socket to `peer` (peer reset
// while from was connected); exported for tests and snapshot integration.
func (g *GState) MarkStale(from, peer sm.NodeID) { g.stale[pair{from, peer}] = true }

// Stale reports whether from's socket to peer is stale.
func (g *GState) Stale(from, peer sm.NodeID) bool { return g.stale[pair{from, peer}] }
