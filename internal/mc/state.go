// Package mc implements the model checker at the heart of CrystalBall: the
// baseline exhaustive breadth-first search (paper Figure 5), the
// consequence-prediction algorithm (paper Figure 8), a random-walk mode (the
// MaceMC comparison baseline), replay of previously discovered error paths,
// and the event-filter safety check used by execution steering.
//
// The checker executes real service handler code on cloned states, exactly
// as MaceMC executed real Mace/C++ handlers; the global state is the (L, I)
// pair of the paper's Figure 4 — local node states plus in-flight messages —
// extended with the small amount of transport bookkeeping (stale TCP pairs,
// droppable RST notifications) needed to model the failure scenarios the
// paper's bugs depend on.
package mc

import (
	"bytes"
	"slices"

	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// Domain tags for the commutative state fingerprint: every component hash
// is FNV-64a over (tag, component encoding), so components of different
// kinds occupy separate hash domains and a message can never cancel a node
// or a stale pair in the sum.
const (
	domainNode   = 'N'
	domainMsg    = 'M'
	domainStale  = 'S'
	domainResets = 'R'
)

// NodeState is one node's local state inside the checker: the service state
// machine plus the pending-timer set. NodeState values are immutable once
// placed in a GState; successor states clone before mutating. Because of
// that immutability, the canonical encoding and the derived hashes are
// computed once — by the constructing goroutine, before the state is shared
// — and reused by every global state the node state appears in.
//
// The canonical encoding is held as two segments, service then timers,
// whose concatenation is the single encoding earlier revisions stored. A
// successor that changed only one segment shares the other segment's bytes
// (and, for timers, the sorted name list) with its parent, so the common
// timer-only and send-only handlers never copy the unchanged segment.
type NodeState struct {
	Svc    sm.Service
	Timers map[sm.TimerID]bool

	svcEnc     []byte   // canonical encoding of Svc, set by finalize
	tmEnc      []byte   // canonical encoding of Timers, set by finalize
	timerNames []string // sorted pending-timer names, aligned with tmEnc
	chash      uint64   // domain-tagged component hash, set by finalize
	lhash      uint64   // consequence-prediction local hash, set by finalize
}

// encLen is the length of the node's canonical encoding (both segments).
func (ns *NodeState) encLen() int { return len(ns.svcEnc) + len(ns.tmEnc) }

//crystal:hotpath
func (ns *NodeState) clone() *NodeState {
	timers := make(map[sm.TimerID]bool, len(ns.Timers))
	for t, ok := range ns.Timers {
		if ok {
			timers[t] = true
		}
	}
	return &NodeState{Svc: ns.Svc.Clone(), Timers: timers}
}

// finalize computes and caches the canonical encoding segments plus the two
// hashes derived from them: the global-fingerprint component hash and the
// consequence-prediction local hash. It must be called exactly once, by the
// goroutine constructing the enclosing GState, after all handler mutations
// are applied and before the state is published to other workers — from
// then on every access is a pure read, safe under -race.
//
// parent, when non-nil, is the node state this one was cloned from: a
// segment that encodes byte-identically to the parent's shares the parent's
// slice instead of copying (NodeStates are immutable, so sharing is always
// safe). Both segments are encoded into sc's reusable buffer, so finalize
// allocates only for segments that actually changed.
//
//crystal:hotpath
func (ns *NodeState) finalize(id sm.NodeID, parent *NodeState, sc *scratch) {
	e := &sc.enc
	e.Reset()
	ns.Svc.EncodeState(e)
	svcLen := e.Len()
	names := sc.names[:0]
	for t, ok := range ns.Timers {
		if ok {
			names = append(names, string(t))
		}
	}
	slices.Sort(names)
	sc.names = names
	e.Uint32(uint32(len(names)))
	for _, t := range names {
		e.String(t)
	}
	buf := e.Bytes()
	svcSeg, tmSeg := buf[:svcLen], buf[svcLen:]
	if parent != nil && bytes.Equal(parent.svcEnc, svcSeg) {
		ns.svcEnc = parent.svcEnc
	} else {
		ns.svcEnc = append([]byte(nil), svcSeg...)
	}
	if parent != nil && bytes.Equal(parent.tmEnc, tmSeg) {
		ns.tmEnc, ns.timerNames = parent.tmEnc, parent.timerNames
	} else {
		ns.tmEnc = append([]byte(nil), tmSeg...)
		ns.timerNames = append([]string(nil), names...)
	}
	// The hashes run over the same bytes as ever: NodeID(id), then the
	// length-prefixed concatenation of both segments — buf is exactly that
	// concatenation, so no combined copy is materialised.
	var hdr [8]byte
	hdr[0] = byte(uint32(id) >> 24)
	hdr[1] = byte(uint32(id) >> 16)
	hdr[2] = byte(uint32(id) >> 8)
	hdr[3] = byte(uint32(id))
	hdr[4] = byte(uint32(len(buf)) >> 24)
	hdr[5] = byte(uint32(len(buf)) >> 16)
	hdr[6] = byte(uint32(len(buf)) >> 8)
	hdr[7] = byte(uint32(len(buf)))
	ns.chash = sm.Mix64(sm.FNV64aBytes(sm.FNV64aBytes(sm.FNV64aByte(sm.FNV64aInit, domainNode), hdr[:]), buf))
	ns.lhash = sm.Mix64(sm.FNV64aBytes(sm.FNV64aBytes(sm.FNV64aInit, hdr[:]), buf))
}

// localHash returns the hash of the node-local state (service state +
// timers); the consequence-prediction pruning keys its localExplored set on
// this. The value is precomputed by finalize — every NodeState reaches a
// GState through setNode, runHandler or applyReset, all of which finalize
// before publishing — so this is a pure read on shared states.
func (ns *NodeState) localHash() uint64 { return ns.lhash }

// InFlight is one in-flight network item: a service message, or (when Msg
// is nil) an RST notification telling To that its connection to From broke.
// The component hash and footprint size are computed when the item is added
// to a GState (messages are immutable), so hashing and enumeration never
// write to shared state.
type InFlight struct {
	From  sm.NodeID
	To    sm.NodeID
	Msg   sm.Message // nil => RST notification
	pos   int        // position within the item's (From,To,type) FIFO queue
	chash uint64     // domain-tagged component hash, set at construction
	sz    int        // EncodedSize contribution, set at construction
}

// RST reports whether the item is a connection-break notification.
func (f InFlight) RST() bool { return f.Msg == nil }

// sameQueue reports whether a and b travel the same per-pair FIFO queue:
// identical endpoints and message type (all RSTs for a pair share one
// queue). Delivery picks each queue's head, so order *within* a queue is
// semantically significant while order *across* queues is bookkeeping.
func sameQueue(a, b *InFlight) bool {
	if a.From != b.From || a.To != b.To || a.RST() != b.RST() {
		return false
	}
	return a.RST() || a.Msg.MsgType() == b.Msg.MsgType()
}

func (f InFlight) encode(e *sm.Encoder) {
	e.NodeID(f.From)
	e.NodeID(f.To)
	if f.Msg == nil {
		e.Bool(false)
	} else {
		e.Bool(true)
		e.String(f.Msg.MsgType())
		f.Msg.EncodeMsg(e)
	}
}

type pair struct{ a, b sm.NodeID }

// staleComp returns the fingerprint component hash of one stale pair,
// encoding through the scratch encoder.
//
//crystal:hotpath
func staleComp(p pair, sc *scratch) uint64 {
	e := &sc.enc
	e.Reset()
	e.NodeID(p.a)
	e.NodeID(p.b)
	return e.DomainHash(domainStale)
}

// resetsComp returns the fingerprint component hash of the resets counter.
//
//crystal:hotpath
func resetsComp(n int, sc *scratch) uint64 {
	e := &sc.enc
	e.Reset()
	e.Int(n)
	return e.DomainHash(domainResets)
}

// resetsComp0 is resetsComp(0), the fingerprint seed of a fresh state.
var resetsComp0 = func() uint64 {
	sc := getScratch()
	defer putScratch(sc)
	return resetsComp(0, sc)
}()

// GState is a global system state: the paper's (L, I) plus transport
// bookkeeping. GStates are persistent: successors share unmodified node
// states and copy only what an event changes.
//
// The state fingerprint (Hash) is maintained incrementally: hsum is the
// wrapping sum of the component hashes of every node, in-flight item and
// stale pair plus the resets counter. Addition is commutative, so the
// fingerprint is independent of bookkeeping order — in-flight items hash
// as a multiset of (item, queue position) pairs: order across distinct
// (from,to,type) queues is invisible, while order within one queue (which
// decides the FIFO delivery head) is captured by the position term — and
// every mutation helper below updates the sum in O(1) amortised; a
// successor's hash costs O(changed components) instead of a full
// re-encoding of every node. The encoded
// footprint (EncodedSize) and the sorted node-id list (Nodes) are
// maintained the same way, so neither re-walks the state per query.
type GState struct {
	nodes   map[sm.NodeID]*NodeState
	ids     []sm.NodeID // sorted node ids; shared with successors (nodes are never removed)
	msgs    []InFlight
	stale   map[pair]bool // (sender, peer): sender holds a stale socket to peer; nil until first pair
	resets  int           // reset events taken on this path (bounds fault depth)
	hsum    uint64        // incrementally maintained commutative fingerprint
	encSize int           // incrementally maintained EncodedSize
}

// NewGState builds a global state from per-node services and timer sets.
// The services are used as-is (not cloned); callers that keep using their
// copies must clone first.
func NewGState() *GState {
	return &GState{
		nodes: make(map[sm.NodeID]*NodeState),
		hsum:  resetsComp0,
	}
}

// AddNode inserts a node's local state. The service's encoding and hashes
// are captured here, so callers must finish mutating svc before AddNode.
func (g *GState) AddNode(id sm.NodeID, svc sm.Service, timers map[sm.TimerID]bool) {
	tm := make(map[sm.TimerID]bool, len(timers))
	for t, ok := range timers {
		if ok {
			tm[t] = true
		}
	}
	sc := getScratch()
	g.setNode(id, &NodeState{Svc: svc, Timers: tm}, sc)
	putScratch(sc)
}

// setNode installs ns as id's local state, finalizing its encoding/hashes
// and updating the fingerprint, footprint and sorted id list (removing any
// previous state's contribution).
//
//crystal:hotpath
func (g *GState) setNode(id sm.NodeID, ns *NodeState, sc *scratch) {
	old := g.nodes[id]
	if old != nil {
		g.hsum -= old.chash // every installed node is finalized
		g.encSize -= 4 + old.encLen()
	}
	ns.finalize(id, old, sc)
	g.hsum += ns.chash
	g.encSize += 4 + ns.encLen()
	if old == nil {
		// Copy-insert: the ids slice may be shared with predecessor
		// states, so never mutate it in place. Insertion only happens at
		// state-construction time (exploration never adds nodes).
		pos, _ := slices.BinarySearch(g.ids, id)
		ids := make([]sm.NodeID, 0, len(g.ids)+1)
		ids = append(ids, g.ids[:pos]...)
		ids = append(ids, id)
		ids = append(ids, g.ids[pos:]...)
		g.ids = ids
	}
	g.nodes[id] = ns
}

// swapNode replaces id's already-finalized local state with the finalized
// nw, adjusting fingerprint and footprint. The node-id list is unchanged.
//
//crystal:hotpath
func (g *GState) swapNode(id sm.NodeID, old, nw *NodeState) {
	g.hsum += nw.chash - old.chash
	g.encSize += nw.encLen() - old.encLen()
	g.nodes[id] = nw
}

// AddMessage inserts an in-flight service message.
func (g *GState) AddMessage(from, to sm.NodeID, msg sm.Message) {
	sc := getScratch()
	g.addMsg(InFlight{From: from, To: to, Msg: msg}, sc)
	putScratch(sc)
}

// addMsg appends an in-flight item, computing its component hash and size
// at construction time and folding them into the running totals.
//
// The component hash covers the item's queue position — the number of
// same-queue items already in flight — not just its content. The
// fingerprint sum is insensitive to slice order across queues (bookkeeping
// only), but within one (from,to,type) queue the order decides which item
// enabledInto's FIFO head pick delivers next, so two states whose shared
// queue holds the same items in different orders have different successor
// sets and must not collide: without the position term, hash-equal would
// not imply successor-equal, and claiming the "wrong" representative could
// silently drop reachable states.
//
//crystal:hotpath
func (g *GState) addMsg(m InFlight, sc *scratch) {
	m.pos = 0
	for i := range g.msgs {
		if sameQueue(&g.msgs[i], &m) {
			m.pos++
		}
	}
	m.chash = msgComp(&m, sc)
	m.sz = 13
	if m.Msg != nil {
		m.sz += m.Msg.Size()
	}
	g.hsum += m.chash
	g.encSize += m.sz
	g.msgs = append(g.msgs, m)
}

// msgComp returns the fingerprint component hash of one in-flight item:
// its encoding followed by its queue position, domain-tagged.
//
//crystal:hotpath
func msgComp(m *InFlight, sc *scratch) uint64 {
	e := &sc.enc
	e.Reset()
	m.encode(e)
	e.Int(m.pos)
	return e.DomainHash(domainMsg)
}

// removeMsgAt deletes the i-th in-flight item and updates the totals. The
// slice is shifted in place: every caller operates on a successor whose
// msgs slice was freshly copied by shallowClone, so no other state aliases
// it. Later items in the removed item's queue shift one position toward
// the head; their component hashes are swapped accordingly (queues longer
// than one item are rare, so the rehash loop almost never fires).
//
//crystal:hotpath
func (g *GState) removeMsgAt(i int, sc *scratch) {
	removed := g.msgs[i]
	g.hsum -= removed.chash
	g.encSize -= removed.sz
	copy(g.msgs[i:], g.msgs[i+1:])
	g.msgs = g.msgs[:len(g.msgs)-1]
	for j := i; j < len(g.msgs); j++ {
		m := &g.msgs[j]
		if sameQueue(m, &removed) {
			g.hsum -= m.chash
			m.pos--
			m.chash = msgComp(m, sc)
			g.hsum += m.chash
		}
	}
}

// setStale records a stale pair, updating the totals if it was absent.
//
//crystal:hotpath
func (g *GState) setStale(p pair, sc *scratch) {
	if !g.stale[p] {
		if g.stale == nil {
			g.stale = make(map[pair]bool)
		}
		g.stale[p] = true
		g.hsum += staleComp(p, sc)
		g.encSize += 16
	}
}

// clearStale removes a stale pair, updating the totals if present.
//
//crystal:hotpath
func (g *GState) clearStale(p pair, sc *scratch) {
	if g.stale[p] {
		delete(g.stale, p)
		g.hsum -= staleComp(p, sc)
		g.encSize -= 16
	}
}

// bumpResets increments the reset counter, swapping its component hash.
//
//crystal:hotpath
func (g *GState) bumpResets(sc *scratch) {
	g.hsum -= resetsComp(g.resets, sc)
	g.resets++
	g.hsum += resetsComp(g.resets, sc)
}

// Nodes returns the node ids present, ascending. The slice is maintained
// incrementally and shared with successor states: callers must treat it as
// read-only.
func (g *GState) Nodes() []sm.NodeID { return g.ids }

// Node returns the local state of id, or nil if absent from the snapshot.
func (g *GState) Node(id sm.NodeID) *NodeState { return g.nodes[id] }

// InFlightCount reports the number of in-flight items.
func (g *GState) InFlightCount() int { return len(g.msgs) }

// View renders the state for property evaluation, allocating a fresh view.
// Hot paths (the engine's property checks) use FillView with a reused view
// instead.
func (g *GState) View() *props.View {
	v := props.NewView()
	g.FillView(v)
	return v
}

// FillView resets v and loads this state's nodes into it, reusing v's
// storage. The view is filled in ascending node order, so View.IDs needs no
// re-sort.
//
//crystal:hotpath
func (g *GState) FillView(v *props.View) {
	v.Reset()
	for _, id := range g.ids {
		ns := g.nodes[id]
		v.Add(id, ns.Svc, ns.Timers)
	}
}

// Hash returns the state fingerprint: the commutative sum of the
// domain-tagged, Mix64-finalized component hashes of every node, in-flight
// item and stale pair plus the resets counter. The sum is maintained
// incrementally by every mutation, so Hash is O(1) and never writes to the
// state — concurrent workers may hash a shared state freely. States
// differing only in bookkeeping order (slice order across distinct message
// queues, map iteration) collide as they should, while states whose shared
// FIFO queue holds the same messages in different orders — and which
// therefore deliver different heads next — stay distinct; FullHash
// recomputes the same value from scratch and serves as the differential
// oracle in tests.
//
// Unlike the pre-incremental scheme, the fingerprint includes the resets
// counter: two states equal in (nodes, messages, stale pairs) but reached
// with different reset budgets enable different transitions (EnabledEvents
// gates ResetEvent on g.resets), so conflating them in the visited set
// could prune reachable fault paths. This deliberately refines the
// visited-set equivalence relation.
//
//crystal:hotpath
func (g *GState) Hash() uint64 {
	if g.hsum == 0 {
		return 1 // keep 0 free as the "no state" sentinel used by callers
	}
	return g.hsum
}

// FullHash recomputes the fingerprint from scratch — re-encoding every
// service, message and stale pair, bypassing all cached encodings and
// segment sharing — and must always equal Hash. It is the slow-path oracle
// the differential property tests check the incremental maintenance
// against, and a fallback for tooling that constructs states outside the
// checker's mutators.
func (g *GState) FullHash() uint64 {
	var sum uint64
	for id, ns := range g.nodes {
		ne := sm.NewEncoder()
		ns.Svc.EncodeState(ne)
		encodeTimers(ne, ns.Timers)
		e := sm.NewEncoder()
		e.NodeID(id)
		e.Bytes2(ne.Bytes())
		sum += e.DomainHash(domainNode)
	}
	for i := range g.msgs {
		// Recompute the queue position independently of the cached pos
		// field: the count of earlier same-queue items in slice order.
		pos := 0
		for j := 0; j < i; j++ {
			if sameQueue(&g.msgs[j], &g.msgs[i]) {
				pos++
			}
		}
		e := sm.NewEncoder()
		g.msgs[i].encode(e)
		e.Int(pos)
		sum += e.DomainHash(domainMsg)
	}
	for p, ok := range g.stale {
		if ok {
			e := sm.NewEncoder()
			e.NodeID(p.a)
			e.NodeID(p.b)
			sum += e.DomainHash(domainStale)
		}
	}
	e := sm.NewEncoder()
	e.Int(g.resets)
	sum += e.DomainHash(domainResets)
	if sum == 0 {
		return 1
	}
	return sum
}

// encodeTimers writes the canonical timer-set encoding; used only by the
// from-scratch FullHash oracle (finalize encodes the segment inline).
//
//crystal:hotpath
func encodeTimers(e *sm.Encoder, timers map[sm.TimerID]bool) {
	names := make([]string, 0, len(timers))
	for t, ok := range timers {
		if ok {
			names = append(names, string(t))
		}
	}
	slices.Sort(names)
	e.Uint32(uint32(len(names)))
	for _, t := range names {
		e.String(t)
	}
}

// EncodedSize approximates the state's in-memory footprint for the memory
// experiments (paper Figures 15 and 16). It is maintained incrementally by
// every mutation helper, so reading it is O(1).
func (g *GState) EncodedSize() int { return g.encSize }

// fullEncodedSize recomputes EncodedSize from scratch; the differential
// oracle for the incremental bookkeeping.
func (g *GState) fullEncodedSize() int {
	n := 0
	for _, ns := range g.nodes {
		n += 4 + ns.encLen()
	}
	for _, m := range g.msgs {
		n += 13
		if m.Msg != nil {
			n += m.Msg.Size()
		}
	}
	return n + 16*len(g.stale)
}

// shallowClone copies the state's containers but shares all node states,
// messages and the sorted id list; callers then replace what the event
// changes, keeping the inherited fingerprint and footprint in sync through
// the mutation helpers.
//
//crystal:hotpath
func (g *GState) shallowClone() *GState {
	nodes := make(map[sm.NodeID]*NodeState, len(g.nodes))
	for id, ns := range g.nodes {
		nodes[id] = ns
	}
	msgs := make([]InFlight, len(g.msgs))
	copy(msgs, g.msgs)
	var stale map[pair]bool
	if len(g.stale) > 0 {
		stale = make(map[pair]bool, len(g.stale))
		for p, ok := range g.stale {
			if ok {
				stale[p] = true
			}
		}
	}
	return &GState{
		nodes: nodes, ids: g.ids, msgs: msgs, stale: stale,
		resets: g.resets, hsum: g.hsum, encSize: g.encSize,
	}
}

// MarkStale records that `from` holds a stale socket to `peer` (peer reset
// while from was connected); exported for tests and snapshot integration.
func (g *GState) MarkStale(from, peer sm.NodeID) {
	sc := getScratch()
	g.setStale(pair{from, peer}, sc)
	putScratch(sc)
}

// Stale reports whether from's socket to peer is stale.
func (g *GState) Stale(from, peer sm.NodeID) bool { return g.stale[pair{from, peer}] }
