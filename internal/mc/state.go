// Package mc implements the model checker at the heart of CrystalBall: the
// baseline exhaustive breadth-first search (paper Figure 5), the
// consequence-prediction algorithm (paper Figure 8), a random-walk mode (the
// MaceMC comparison baseline), replay of previously discovered error paths,
// and the event-filter safety check used by execution steering.
//
// The checker executes real service handler code on cloned states, exactly
// as MaceMC executed real Mace/C++ handlers; the global state is the (L, I)
// pair of the paper's Figure 4 — local node states plus in-flight messages —
// extended with the small amount of transport bookkeeping (stale TCP pairs,
// droppable RST notifications) needed to model the failure scenarios the
// paper's bugs depend on.
package mc

import (
	"sort"

	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// Domain tags for the commutative state fingerprint: every component hash
// is FNV-64a over (tag, component encoding), so components of different
// kinds occupy separate hash domains and a message can never cancel a node
// or a stale pair in the sum.
const (
	domainNode   = 'N'
	domainMsg    = 'M'
	domainStale  = 'S'
	domainResets = 'R'
)

// NodeState is one node's local state inside the checker: the service state
// machine plus the pending-timer set. NodeState values are immutable once
// placed in a GState; successor states clone before mutating. Because of
// that immutability, the canonical encoding and the derived hashes are
// computed once — by the constructing goroutine, before the state is shared
// — and reused by every global state the node state appears in.
type NodeState struct {
	Svc    sm.Service
	Timers map[sm.TimerID]bool
	enc    []byte // canonical encoding of (Svc, Timers), set by finalize
	chash  uint64 // domain-tagged component hash of (id, enc), set by finalize
	lhash  uint64 // consequence-prediction local hash, set by finalize
}

func (ns *NodeState) clone() *NodeState {
	timers := make(map[sm.TimerID]bool, len(ns.Timers))
	for t, ok := range ns.Timers {
		if ok {
			timers[t] = true
		}
	}
	return &NodeState{Svc: ns.Svc.Clone(), Timers: timers}
}

// encoding returns the canonical encoding. finalize populates it before the
// state is shared, so concurrent readers see a pure read.
func (ns *NodeState) encoding() []byte {
	if ns.enc == nil {
		e := sm.NewEncoder()
		ns.Svc.EncodeState(e)
		encodeTimers(e, ns.Timers)
		out := make([]byte, e.Len())
		copy(out, e.Bytes())
		ns.enc = out
	}
	return ns.enc
}

// finalize computes and caches the canonical encoding plus the two hashes
// derived from it: the global-fingerprint component hash and the
// consequence-prediction local hash. It must be called exactly once, by the
// goroutine constructing the enclosing GState, after all handler mutations
// are applied and before the state is published to other workers — from
// then on every access is a pure read, safe under -race.
func (ns *NodeState) finalize(id sm.NodeID) {
	e := sm.NewEncoder()
	e.NodeID(id)
	e.Bytes2(ns.encoding())
	ns.chash = e.DomainHash(domainNode)
	ns.lhash = e.Hash()
}

// localHash returns the hash of the node-local state (service state +
// timers); the consequence-prediction pruning keys its localExplored set on
// this. The value is precomputed by finalize — every NodeState reaches a
// GState through setNode, runHandler or applyReset, all of which finalize
// before publishing — so this is a pure read on shared states.
func (ns *NodeState) localHash(id sm.NodeID) uint64 { return ns.lhash }

func encodeTimers(e *sm.Encoder, timers map[sm.TimerID]bool) {
	names := make([]string, 0, len(timers))
	for t, ok := range timers {
		if ok {
			names = append(names, string(t))
		}
	}
	sort.Strings(names)
	e.Uint32(uint32(len(names)))
	for _, t := range names {
		e.String(t)
	}
}

// InFlight is one in-flight network item: a service message, or (when Msg
// is nil) an RST notification telling To that its connection to From broke.
// The component hash is computed when the item is added to a GState
// (messages are immutable), so hashing and enumeration never write to
// shared state.
type InFlight struct {
	From  sm.NodeID
	To    sm.NodeID
	Msg   sm.Message // nil => RST notification
	chash uint64     // domain-tagged component hash, set at construction
}

// RST reports whether the item is a connection-break notification.
func (f InFlight) RST() bool { return f.Msg == nil }

func (f InFlight) encode(e *sm.Encoder) {
	e.NodeID(f.From)
	e.NodeID(f.To)
	if f.Msg == nil {
		e.Bool(false)
	} else {
		e.Bool(true)
		e.String(f.Msg.MsgType())
		f.Msg.EncodeMsg(e)
	}
}

type pair struct{ a, b sm.NodeID }

// staleComp returns the fingerprint component hash of one stale pair.
func staleComp(p pair) uint64 {
	e := sm.NewEncoder()
	e.NodeID(p.a)
	e.NodeID(p.b)
	return e.DomainHash(domainStale)
}

// resetsComp returns the fingerprint component hash of the resets counter.
func resetsComp(n int) uint64 {
	e := sm.NewEncoder()
	e.Int(n)
	return e.DomainHash(domainResets)
}

// GState is a global system state: the paper's (L, I) plus transport
// bookkeeping. GStates are persistent: successors share unmodified node
// states and copy only what an event changes.
//
// The state fingerprint (Hash) is maintained incrementally: hsum is the
// wrapping sum of the component hashes of every node, in-flight item and
// stale pair plus the resets counter. Addition is commutative, so the
// fingerprint is independent of bookkeeping order (in-flight items hash as
// a multiset, as the paper's model requires), and every mutation helper
// below updates the sum in O(1) — a successor's hash costs O(changed
// components) instead of a full re-encoding of every node.
type GState struct {
	nodes  map[sm.NodeID]*NodeState
	msgs   []InFlight
	stale  map[pair]bool // (sender, peer): sender holds a stale socket to peer
	resets int           // reset events taken on this path (bounds fault depth)
	hsum   uint64        // incrementally maintained commutative fingerprint
}

// NewGState builds a global state from per-node services and timer sets.
// The services are used as-is (not cloned); callers that keep using their
// copies must clone first.
func NewGState() *GState {
	return &GState{
		nodes: make(map[sm.NodeID]*NodeState),
		stale: make(map[pair]bool),
		hsum:  resetsComp(0),
	}
}

// AddNode inserts a node's local state. The service's encoding and hashes
// are captured here, so callers must finish mutating svc before AddNode.
func (g *GState) AddNode(id sm.NodeID, svc sm.Service, timers map[sm.TimerID]bool) {
	tm := make(map[sm.TimerID]bool, len(timers))
	for t, ok := range timers {
		if ok {
			tm[t] = true
		}
	}
	g.setNode(id, &NodeState{Svc: svc, Timers: tm})
}

// setNode installs ns as id's local state, finalizing its encoding/hashes
// and updating the fingerprint (removing any previous state's component).
func (g *GState) setNode(id sm.NodeID, ns *NodeState) {
	if old := g.nodes[id]; old != nil {
		g.hsum -= old.chash // every installed node is finalized
	}
	ns.finalize(id)
	g.hsum += ns.chash
	g.nodes[id] = ns
}

// AddMessage inserts an in-flight service message.
func (g *GState) AddMessage(from, to sm.NodeID, msg sm.Message) {
	g.addMsg(InFlight{From: from, To: to, Msg: msg})
}

// addMsg appends an in-flight item, computing its component hash at
// construction time and folding it into the fingerprint.
func (g *GState) addMsg(m InFlight) {
	e := sm.NewEncoder()
	m.encode(e)
	m.chash = e.DomainHash(domainMsg)
	g.hsum += m.chash
	g.msgs = append(g.msgs, m)
}

// removeMsgAt deletes the i-th in-flight item and updates the fingerprint.
func (g *GState) removeMsgAt(i int) {
	g.hsum -= g.msgs[i].chash
	g.msgs = removeMsg(g.msgs, i)
}

// setStale records a stale pair, updating the fingerprint if it was absent.
func (g *GState) setStale(p pair) {
	if !g.stale[p] {
		g.stale[p] = true
		g.hsum += staleComp(p)
	}
}

// clearStale removes a stale pair, updating the fingerprint if present.
func (g *GState) clearStale(p pair) {
	if g.stale[p] {
		delete(g.stale, p)
		g.hsum -= staleComp(p)
	}
}

// bumpResets increments the reset counter, swapping its component hash.
func (g *GState) bumpResets() {
	g.hsum -= resetsComp(g.resets)
	g.resets++
	g.hsum += resetsComp(g.resets)
}

// Nodes returns the node ids present, ascending.
func (g *GState) Nodes() []sm.NodeID {
	ids := make([]sm.NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Node returns the local state of id, or nil if absent from the snapshot.
func (g *GState) Node(id sm.NodeID) *NodeState { return g.nodes[id] }

// InFlightCount reports the number of in-flight items.
func (g *GState) InFlightCount() int { return len(g.msgs) }

// View renders the state for property evaluation.
func (g *GState) View() *props.View {
	v := props.NewView()
	for id, ns := range g.nodes {
		v.Add(id, ns.Svc, ns.Timers)
	}
	return v
}

// Hash returns the state fingerprint: the commutative sum of the
// domain-tagged FNV-64a component hashes of every node, in-flight item and
// stale pair plus the resets counter. The sum is maintained incrementally
// by every mutation, so Hash is O(1) and never writes to the state —
// concurrent workers may hash a shared state freely. States differing only
// in bookkeeping order (in-flight slice order, map iteration) collide as
// they should; FullHash recomputes the same value from scratch and serves
// as the differential oracle in tests.
//
// Unlike the pre-incremental scheme, the fingerprint includes the resets
// counter: two states equal in (nodes, messages, stale pairs) but reached
// with different reset budgets enable different transitions (EnabledEvents
// gates ResetEvent on g.resets), so conflating them in the visited set
// could prune reachable fault paths. This deliberately refines the
// visited-set equivalence relation.
func (g *GState) Hash() uint64 {
	if g.hsum == 0 {
		return 1 // keep 0 free as the "no state" sentinel used by callers
	}
	return g.hsum
}

// FullHash recomputes the fingerprint from scratch — re-encoding every
// service, message and stale pair, bypassing all cached encodings — and
// must always equal Hash. It is the slow-path oracle the differential
// property tests check the incremental maintenance against, and a fallback
// for tooling that constructs states outside the checker's mutators.
func (g *GState) FullHash() uint64 {
	var sum uint64
	for id, ns := range g.nodes {
		ne := sm.NewEncoder()
		ns.Svc.EncodeState(ne)
		encodeTimers(ne, ns.Timers)
		e := sm.NewEncoder()
		e.NodeID(id)
		e.Bytes2(ne.Bytes())
		sum += e.DomainHash(domainNode)
	}
	for i := range g.msgs {
		e := sm.NewEncoder()
		g.msgs[i].encode(e)
		sum += e.DomainHash(domainMsg)
	}
	for p, ok := range g.stale {
		if ok {
			sum += staleComp(p)
		}
	}
	sum += resetsComp(g.resets)
	if sum == 0 {
		return 1
	}
	return sum
}

// EncodedSize approximates the state's in-memory footprint for the memory
// experiments (paper Figures 15 and 16).
func (g *GState) EncodedSize() int {
	n := 0
	for _, ns := range g.nodes {
		n += 4 + len(ns.encoding())
	}
	for _, m := range g.msgs {
		n += 13
		if m.Msg != nil {
			n += m.Msg.Size()
		}
	}
	return n + 16*len(g.stale)
}

// shallowClone copies the state's containers but shares all node states and
// messages; callers then replace what the event changes, keeping the
// inherited fingerprint in sync through the mutation helpers.
func (g *GState) shallowClone() *GState {
	nodes := make(map[sm.NodeID]*NodeState, len(g.nodes))
	for id, ns := range g.nodes {
		nodes[id] = ns
	}
	msgs := make([]InFlight, len(g.msgs))
	copy(msgs, g.msgs)
	stale := make(map[pair]bool, len(g.stale))
	for p, ok := range g.stale {
		if ok {
			stale[p] = true
		}
	}
	return &GState{nodes: nodes, msgs: msgs, stale: stale, resets: g.resets, hsum: g.hsum}
}

// MarkStale records that `from` holds a stale socket to `peer` (peer reset
// while from was connected); exported for tests and snapshot integration.
func (g *GState) MarkStale(from, peer sm.NodeID) { g.setStale(pair{from, peer}) }

// Stale reports whether from's socket to peer is stale.
func (g *GState) Stale(from, peer sm.NodeID) bool { return g.stale[pair{from, peer}] }
