package mc

import "sync/atomic"

// wsDeque is a Chase-Lev work-stealing deque over level indexes: the owning
// worker pushes and pops at the bottom (LIFO, no contention in the common
// case), thieves steal from the top (FIFO, one CAS per steal). The engine
// gives each worker one deque seeded with a contiguous chunk of the current
// BFS level, so the frontier is contention-free until a worker drains its
// own chunk and starts stealing — the first step toward a sharded,
// multi-process frontier where "steal" becomes a network request.
//
// The implementation is the classic array-based Chase-Lev deque specialised
// to one grow-free round: the engine sizes the array to the seeded chunk and
// only the owner pushes, so the array never needs to grow mid-level.
type wsDeque struct {
	items  []int32
	top    atomic.Int64 // next steal slot (front)
	bottom atomic.Int64 // next push slot (back)
}

// reset re-seeds the deque with n items mapped by base: slot i holds
// base + i. Must be called before the workers that pop/steal are running.
func (d *wsDeque) reset(base, n int) {
	if cap(d.items) < n {
		d.items = make([]int32, n)
	}
	d.items = d.items[:n]
	for i := 0; i < n; i++ {
		d.items[i] = int32(base + i)
	}
	d.top.Store(0)
	d.bottom.Store(int64(n))
}

// push appends an item at the bottom. Owner-only.
func (d *wsDeque) push(v int32) {
	b := d.bottom.Load()
	if int(b) == len(d.items) {
		if int(b) == cap(d.items) {
			grown := make([]int32, len(d.items), 2*cap(d.items)+1)
			copy(grown, d.items)
			d.items = grown
		}
		d.items = d.items[:b+1]
	}
	d.items[b] = v
	d.bottom.Store(b + 1)
}

// pop removes and returns the bottom item (the owner's LIFO end); ok is
// false when the deque is empty. Owner-only.
func (d *wsDeque) pop() (v int32, ok bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom.
		d.bottom.Store(t)
		return 0, false
	}
	v = d.items[b]
	if t == b {
		// Last item: race the thieves for it.
		if !d.top.CompareAndSwap(t, t+1) {
			ok = false // a thief won
		} else {
			ok = true
		}
		d.bottom.Store(t + 1)
		return v, ok
	}
	return v, true
}

// steal removes and returns the top item (the thieves' FIFO end). ok is
// false when the deque is empty or the CAS raced; raced distinguishes a
// lost race (retry may succeed) from emptiness.
func (d *wsDeque) steal() (v int32, ok, raced bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return 0, false, false
	}
	v = d.items[t]
	if !d.top.CompareAndSwap(t, t+1) {
		return 0, false, true
	}
	return v, true, false
}
