package runtime

import (
	"testing"
	"time"

	"crystalball/internal/props"
	"crystalball/internal/sim"
	"crystalball/internal/simnet"
	"crystalball/internal/sm"
	"crystalball/internal/testsvc"
)

func deploy(t *testing.T, n int) (*sim.Simulator, *simnet.Network, []*Node) {
	t.Helper()
	s := sim.New(11)
	net := simnet.New(s, simnet.UniformPath{Latency: 5 * time.Millisecond, BwBps: 1e9})
	ids := make([]sm.NodeID, n)
	for i := range ids {
		ids[i] = sm.NodeID(i + 1)
	}
	factory := testsvc.NewWithPeers(ids...)
	nodes := make([]*Node, n)
	for i, id := range ids {
		nodes[i] = NewNode(s, net, id, factory)
	}
	return s, net, nodes
}

func TestGossipPropagates(t *testing.T) {
	s, _, nodes := deploy(t, 3)
	nodes[0].App(testsvc.Bump{})
	s.RunFor(5 * time.Second)
	for i, n := range nodes {
		if n.Service().(*testsvc.Svc).N != 1 {
			t.Fatalf("node %d did not receive the gossip: N=%d", i, n.Service().(*testsvc.Svc).N)
		}
	}
}

func TestTimersRunPeriodically(t *testing.T) {
	s, _, nodes := deploy(t, 2)
	s.RunFor(10500 * time.Millisecond)
	g := nodes[0].Service().(*testsvc.Svc).Gossips
	if g < 9 || g > 11 {
		t.Fatalf("gossip timer fired %d times in 10.5s, want ~10", g)
	}
}

func TestTimerSetTracksPending(t *testing.T) {
	_, _, nodes := deploy(t, 1)
	ts := nodes[0].TimerSet()
	if !ts[testsvc.TimerGossip] {
		t.Fatalf("gossip timer not pending after Init: %v", ts)
	}
}

func TestMessageFilterDrops(t *testing.T) {
	s, _, nodes := deploy(t, 2)
	nodes[1].InstallFilter(sm.Filter{
		Kind: sm.FilterMessage, Node: 2, From: 1, MsgType: "Counter",
	})
	nodes[0].App(testsvc.Bump{})
	s.RunFor(3 * time.Second)
	if nodes[1].Service().(*testsvc.Svc).N != 0 {
		t.Fatal("filtered message was processed")
	}
	if nodes[1].Stats.MessagesDropped == 0 {
		t.Fatal("drop not counted")
	}
	nodes[1].ClearFilters()
	nodes[0].App(testsvc.Bump{})
	s.RunFor(3 * time.Second)
	if nodes[1].Service().(*testsvc.Svc).N == 0 {
		t.Fatal("message still blocked after ClearFilters")
	}
}

func TestMessageFilterBreakConnSignalsSender(t *testing.T) {
	s, _, nodes := deploy(t, 2)
	// Establish a connection first so the RST reaches a live socket.
	nodes[0].App(testsvc.Bump{})
	s.RunFor(time.Second)
	nodes[1].InstallFilter(sm.Filter{
		Kind: sm.FilterMessage, Node: 2, From: 1, MsgType: "Counter", BreakConn: true,
	})
	before := nodes[0].Service().(*testsvc.Svc).Errors
	nodes[0].App(testsvc.Bump{})
	s.RunFor(3 * time.Second)
	if nodes[0].Service().(*testsvc.Svc).Errors <= before {
		t.Fatal("sender did not observe the steering connection reset")
	}
}

func TestTimerFilterReschedules(t *testing.T) {
	s, _, nodes := deploy(t, 2)
	nodes[0].InstallFilter(sm.Filter{Kind: sm.FilterTimer, Node: 1, Timer: testsvc.TimerGossip})
	s.RunFor(5 * time.Second)
	if nodes[0].Service().(*testsvc.Svc).Gossips != 0 {
		t.Fatal("filtered timer handler ran")
	}
	if nodes[0].Stats.TimersDeferred == 0 {
		t.Fatal("timer deferral not counted")
	}
	// Removing the filter lets the deferred timer eventually fire.
	nodes[0].ClearFilters()
	s.RunFor(2 * time.Second)
	if nodes[0].Service().(*testsvc.Svc).Gossips == 0 {
		t.Fatal("timer never fired after filter removal (rescheduling lost it)")
	}
}

func TestAppFilterBlocks(t *testing.T) {
	s, _, nodes := deploy(t, 1)
	nodes[0].InstallFilter(sm.Filter{Kind: sm.FilterApp, Node: 1, Call: "Bump"})
	nodes[0].App(testsvc.Bump{})
	s.RunFor(time.Second)
	if nodes[0].Service().(*testsvc.Svc).N != 0 {
		t.Fatal("filtered app call executed")
	}
	if nodes[0].Stats.AppsBlocked != 1 {
		t.Fatalf("AppsBlocked = %d", nodes[0].Stats.AppsBlocked)
	}
}

func TestResetReinitialisesService(t *testing.T) {
	s, _, nodes := deploy(t, 2)
	nodes[0].App(testsvc.Bump{})
	s.RunFor(2 * time.Second)
	if nodes[0].Service().(*testsvc.Svc).N != 1 {
		t.Fatal("setup failed")
	}
	nodes[0].Reset(true)
	if got := nodes[0].Service().(*testsvc.Svc).N; got != 0 {
		t.Fatalf("state survived reset: N=%d", got)
	}
	if nodes[0].Stats.Resets != 1 {
		t.Fatal("reset not counted")
	}
	// The fresh instance scheduled its gossip timer.
	if !nodes[0].TimerSet()[testsvc.TimerGossip] {
		t.Fatal("timers not rescheduled after reset")
	}
}

func TestTransportErrorReachesService(t *testing.T) {
	s, net, nodes := deploy(t, 2)
	nodes[0].App(testsvc.Bump{})
	s.RunFor(time.Second)
	net.Kill(2)
	nodes[0].App(testsvc.Bump{}) // send to dead node -> ConnError
	s.RunFor(time.Second)
	svc := nodes[0].Service().(*testsvc.Svc)
	if svc.Errors == 0 {
		t.Fatal("transport error not delivered to service")
	}
	if svc.Peers[2] {
		t.Fatal("service did not clean up dead peer")
	}
}

func TestISCBlocksUnsafeHandler(t *testing.T) {
	s, _, nodes := deploy(t, 2)
	// Property: counter stays below 1 — the very first Bump gossip
	// delivery would violate it at node 2.
	ps := props.Set{testsvc.CounterBelow(1)}
	nodes[1].EnableISC(ps, func() *props.View { return props.NewView() })
	nodes[0].App(testsvc.Bump{})
	s.RunFor(3 * time.Second)
	if nodes[1].Service().(*testsvc.Svc).N != 0 {
		t.Fatal("ISC failed to block the violating handler")
	}
	if nodes[1].Stats.ISCBlocks == 0 {
		t.Fatal("ISC block not counted")
	}
	// The real state machine was never touched: the live node still
	// satisfies the property.
	if !ps.Holds(viewOf(nodes[1])) {
		t.Fatal("live state violates property despite ISC")
	}
}

func viewOf(n *Node) *props.View {
	v := props.NewView()
	svc, timers := n.View()
	v.Add(n.ID, svc, timers)
	return v
}

func TestISCAllowsSafeHandler(t *testing.T) {
	s, _, nodes := deploy(t, 2)
	nodes[1].EnableISC(props.Set{testsvc.CounterBelow(100)}, func() *props.View { return props.NewView() })
	nodes[0].App(testsvc.Bump{})
	s.RunFor(3 * time.Second)
	if nodes[1].Service().(*testsvc.Svc).N != 1 {
		t.Fatal("ISC blocked a safe handler")
	}
	if nodes[1].Stats.ISCChecks == 0 {
		t.Fatal("ISC did not run")
	}
	if nodes[1].Stats.ISCBlocks != 0 {
		t.Fatal("spurious ISC block")
	}
}

func TestISCDisable(t *testing.T) {
	s, _, nodes := deploy(t, 2)
	nodes[1].EnableISC(props.Set{testsvc.CounterBelow(1)}, nil)
	nodes[1].DisableISC()
	nodes[0].App(testsvc.Bump{})
	s.RunFor(3 * time.Second)
	if nodes[1].Service().(*testsvc.Svc).N != 1 {
		t.Fatal("disabled ISC still blocking")
	}
}

func TestOnEventCallback(t *testing.T) {
	s, _, nodes := deploy(t, 2)
	var events []sm.Event
	nodes[1].OnEvent = func(ev sm.Event) { events = append(events, ev) }
	nodes[0].App(testsvc.Bump{})
	s.RunFor(1500 * time.Millisecond)
	var sawMsg, sawTimer bool
	for _, ev := range events {
		switch ev.(type) {
		case sm.MsgEvent:
			sawMsg = true
		case sm.TimerEvent:
			sawTimer = true
		}
	}
	if !sawMsg || !sawTimer {
		t.Fatalf("OnEvent missed events: msg=%v timer=%v", sawMsg, sawTimer)
	}
}

func TestActionCounting(t *testing.T) {
	s, _, nodes := deploy(t, 2)
	s.RunFor(5 * time.Second)
	if nodes[0].Stats.ActionsExecuted == 0 {
		t.Fatal("no actions counted")
	}
}

func TestSpeculationMatchesRealExecution(t *testing.T) {
	// With ISC enabled but never blocking, live behaviour must equal a
	// run without ISC: speculation must not consume the service's
	// randomness or leak effects.
	run := func(isc bool) int {
		s := sim.New(99)
		net := simnet.New(s, simnet.UniformPath{Latency: 5 * time.Millisecond, BwBps: 1e9})
		factory := testsvc.NewWithPeers(1, 2)
		a := NewNode(s, net, 1, factory)
		b := NewNode(s, net, 2, factory)
		if isc {
			b.EnableISC(props.Set{testsvc.CounterBelow(1 << 30)}, nil)
		}
		a.App(testsvc.Bump{})
		s.RunFor(10 * time.Second)
		return b.Service().(*testsvc.Svc).N
	}
	if run(true) != run(false) {
		t.Fatal("ISC speculation changed live behaviour")
	}
}
