// Package runtime hosts a service state machine on a simulated node: it is
// the "Runtime" box of the paper's Figure 7.
//
// The runtime demultiplexes network messages, fires timers and forwards
// application calls into the service's handlers; it also implements the two
// enforcement mechanisms of CrystalBall's execution steering mode:
//
//   - event filters (paper section 3.3), which temporarily block a handler:
//     matching messages are dropped (optionally with a connection reset
//     toward the sender), matching timers are rescheduled rather than
//     dropped;
//   - the immediate safety check (ISC), which speculatively executes the
//     handler on a clone of the state machine, checks the safety properties
//     on the result, and suppresses the real execution if they fail — the
//     equivalent of the paper's fork()-based speculative execution.
//
// Every outgoing service message is wrapped in an Envelope carrying the
// node's checkpoint number, which the snapshot manager uses to maintain
// consistent-cut checkpoints (paper section 2.3).
package runtime

import (
	"math/rand"
	"time"

	"crystalball/internal/props"
	"crystalball/internal/sim"
	"crystalball/internal/simnet"
	"crystalball/internal/sm"
)

// Envelope wraps a service message with the sender's checkpoint number.
type Envelope struct {
	CN  uint64
	Msg sm.Message
}

// ControlEnvelope wraps non-service (checkpoint manager) traffic; it also
// carries the checkpoint number, since control messages are part of the
// distributed computation's causal order.
type ControlEnvelope struct {
	CN      uint64
	Payload any
}

// envelopeHeader approximates the wire overhead of the CN stamp.
const envelopeHeader = 8

// CheckpointHook lets the snapshot manager participate in message flow.
type CheckpointHook interface {
	// OutgoingCN returns the checkpoint number to stamp on messages.
	OutgoingCN() uint64
	// IncomingCN runs before a message with the given stamp is
	// processed; the manager takes a forced checkpoint when needed.
	IncomingCN(cn uint64)
	// HandleControl processes checkpoint-protocol payloads.
	HandleControl(from sm.NodeID, payload any)
	// PeerError tells the manager a transport error was observed for
	// peer; a collection in progress proclaims the peer dead (paper
	// section 3.1, "Enforcing Snapshot Consistency").
	PeerError(peer sm.NodeID)
}

// Stats counts runtime activity for the experiments.
type Stats struct {
	ActionsExecuted int64 // handler invocations that ran
	MessagesDropped int64 // messages blocked by event filters
	TimersDeferred  int64 // timer firings rescheduled by event filters
	AppsBlocked     int64 // app calls blocked by event filters
	ISCChecks       int64 // speculative executions performed
	ISCBlocks       int64 // handler executions suppressed by the ISC
	Resets          int64 // node resets
	TransportErrors int64 // ConnError events delivered to the service
}

// Node binds one service instance to the simulated network.
type Node struct {
	ID       sm.NodeID
	sim      *sim.Simulator
	net      *simnet.Network
	factory  sm.Factory
	svc      sm.Service
	timers   map[sm.TimerID]*sim.Timer
	filters  []sm.Filter
	seed     int64
	eventSeq uint64

	ckpt CheckpointHook

	iscProps props.Set
	iscView  func() *props.View
	iscOn    bool
	// iscPost/iscPre are the speculative-execution evaluation views,
	// reused across every ISC check this node performs (the check runs on
	// the single simulator goroutine). Only the NodeView containers are
	// reused; the service/timer references are refilled per check.
	iscPost *props.View
	iscPre  *props.View

	// OnEvent, if set, runs after every executed handler; experiment
	// harnesses use it to evaluate ground-truth properties per action.
	OnEvent func(ev sm.Event)
	// FilterDeferDelay is how long a filtered timer is pushed back.
	FilterDeferDelay time.Duration

	Stats Stats
}

// NewNode creates a node, registers it on the network and initialises the
// service.
func NewNode(s *sim.Simulator, net *simnet.Network, id sm.NodeID, factory sm.Factory) *Node {
	n := &Node{
		ID:               id,
		sim:              s,
		net:              net,
		factory:          factory,
		timers:           make(map[sm.TimerID]*sim.Timer),
		seed:             s.Seed() ^ (int64(id) << 20),
		FilterDeferDelay: 500 * time.Millisecond,
	}
	net.Register(id, n)
	n.svc = factory(id)
	n.svc.Init(n.liveCtx())
	return n
}

// Service returns the live service instance (read-only use by harnesses).
func (n *Node) Service() sm.Service { return n.svc }

// TimerSet returns the currently pending timer names.
func (n *Node) TimerSet() map[sm.TimerID]bool {
	out := make(map[sm.TimerID]bool, len(n.timers))
	for t := range n.timers {
		out[t] = true
	}
	return out
}

// View returns the node's (service, timers) pair for property evaluation.
func (n *Node) View() (sm.Service, map[sm.TimerID]bool) { return n.svc, n.TimerSet() }

// SetCheckpointHook attaches the snapshot manager.
func (n *Node) SetCheckpointHook(h CheckpointHook) { n.ckpt = h }

// EnableISC turns on the immediate safety check with the given properties;
// view supplies the latest neighborhood snapshot to evaluate against.
func (n *Node) EnableISC(ps props.Set, view func() *props.View) {
	n.iscProps, n.iscView, n.iscOn = ps, view, true
}

// DisableISC turns the immediate safety check off.
func (n *Node) DisableISC() { n.iscOn = false }

// InstallFilter adds an event filter (steering action).
func (n *Node) InstallFilter(f sm.Filter) { n.filters = append(n.filters, f) }

// ClearFilters removes all event filters; the controller does this after
// every model-checking round (paper: "CrystalBall ... removes the filters
// from the runtime after every model checking run").
func (n *Node) ClearFilters() { n.filters = nil }

// Filters returns the installed filters (for tests and reports).
func (n *Node) Filters() []sm.Filter { return append([]sm.Filter(nil), n.filters...) }

func (n *Node) filterFor(ev sm.Event) (sm.Filter, bool) {
	for _, f := range n.filters {
		if f.Matches(ev) {
			return f, true
		}
	}
	return sm.Filter{}, false
}

// Reset simulates a crash+restart of this node: fresh service state, all
// timers gone, all connections broken (silently when silent is true).
func (n *Node) Reset(silent bool) {
	n.Stats.Resets++
	n.net.Reset(n.ID, silent)
	for _, t := range n.timers {
		t.Cancel()
	}
	n.timers = make(map[sm.TimerID]*sim.Timer)
	// Disk contents survive the crash; everything else is lost.
	var stable []byte
	if ss, ok := n.svc.(sm.StableStore); ok {
		stable = ss.StableBytes()
	}
	n.svc = n.factory(n.ID)
	if ss, ok := n.svc.(sm.StableStore); ok && stable != nil {
		ss.RestoreStable(stable)
	}
	n.svc.Init(n.liveCtx())
}

// NotifyPrediction delivers a predicted inconsistency to a steering-aware
// service (sm.SteeringAware); it reports whether the service accepted it.
func (n *Node) NotifyPrediction(properties []string, culprit sm.Event) bool {
	aware, ok := n.svc.(sm.SteeringAware)
	if !ok {
		return false
	}
	n.eventSeq++
	n.Stats.ActionsExecuted++
	aware.HandlePredictedInconsistency(n.liveCtx(), properties, culprit)
	return true
}

// App delivers an application call to the service (e.g. "join the overlay").
func (n *Node) App(call sm.AppCall) {
	ev := sm.AppEvent{At: n.ID, Call: call}
	if _, ok := n.filterFor(ev); ok {
		n.Stats.AppsBlocked++
		return
	}
	if n.iscBlocks(ev) {
		return
	}
	n.dispatch(ev, func(ctx sm.Context) { n.svc.HandleApp(ctx, call) })
}

// HandleDeliver implements simnet.Handler.
func (n *Node) HandleDeliver(from sm.NodeID, payload any) {
	switch env := payload.(type) {
	case ControlEnvelope:
		if n.ckpt != nil {
			n.ckpt.IncomingCN(env.CN)
			n.ckpt.HandleControl(from, env.Payload)
		}
	case Envelope:
		if n.ckpt != nil {
			n.ckpt.IncomingCN(env.CN)
		}
		ev := sm.MsgEvent{From: from, To: n.ID, Msg: env.Msg}
		if f, ok := n.filterFor(ev); ok {
			n.Stats.MessagesDropped++
			if f.BreakConn {
				n.net.BreakConn(n.ID, from, true)
			}
			return
		}
		if n.iscBlocks(ev) {
			// The ISC's corrective action mirrors a message filter:
			// drop and reset the connection so the sender cleans up.
			n.net.BreakConn(n.ID, from, true)
			return
		}
		n.dispatch(ev, func(ctx sm.Context) { n.svc.HandleMessage(ctx, from, env.Msg) })
	}
}

// HandleConnError implements simnet.Handler.
func (n *Node) HandleConnError(peer sm.NodeID) {
	n.Stats.TransportErrors++
	if n.ckpt != nil {
		n.ckpt.PeerError(peer)
	}
	ev := sm.ErrorEvent{At: n.ID, Peer: peer}
	n.dispatch(ev, func(ctx sm.Context) { n.svc.HandleTransportError(ctx, peer) })
}

// fireTimer runs when a scheduled timer expires.
func (n *Node) fireTimer(t sm.TimerID) {
	delete(n.timers, t)
	ev := sm.TimerEvent{At: n.ID, Timer: t}
	if _, ok := n.filterFor(ev); ok {
		// Filtered timers are rescheduled, not dropped (paper
		// section 4, "Event Filtering for Execution steering").
		n.Stats.TimersDeferred++
		n.scheduleTimer(t, n.FilterDeferDelay)
		return
	}
	if n.iscBlocks(ev) {
		n.scheduleTimer(t, n.FilterDeferDelay)
		return
	}
	n.dispatch(ev, func(ctx sm.Context) { n.svc.HandleTimer(ctx, t) })
}

func (n *Node) dispatch(ev sm.Event, run func(sm.Context)) {
	n.eventSeq++
	n.Stats.ActionsExecuted++
	run(n.liveCtx())
	if n.OnEvent != nil {
		n.OnEvent(ev)
	}
}

// invocationRNG returns the deterministic random stream for the current
// handler invocation; speculative and real execution of the same event use
// the same stream so they behave identically.
func (n *Node) invocationRNG() *rand.Rand {
	return sm.NewRand(n.seed ^ int64(n.eventSeq+1)*0x9e3779b9)
}

// liveCtx returns a context that applies effects for real.
func (n *Node) liveCtx() sm.Context {
	return &liveContext{node: n, rng: n.invocationRNG()}
}

type liveContext struct {
	node *Node
	rng  *rand.Rand
}

func (c *liveContext) Self() sm.NodeID { return c.node.ID }

func (c *liveContext) Send(to sm.NodeID, msg sm.Message) {
	var cn uint64
	if c.node.ckpt != nil {
		cn = c.node.ckpt.OutgoingCN()
	}
	c.node.net.Send(c.node.ID, to, Envelope{CN: cn, Msg: msg},
		msg.Size()+envelopeHeader, simnet.KindService)
}

func (c *liveContext) SetTimer(t sm.TimerID, d sm.Duration) {
	c.node.scheduleTimer(t, time.Duration(d))
}

func (c *liveContext) CancelTimer(t sm.TimerID) {
	if tm, ok := c.node.timers[t]; ok {
		tm.Cancel()
		delete(c.node.timers, t)
	}
}

func (c *liveContext) TimerPending(t sm.TimerID) bool {
	_, ok := c.node.timers[t]
	return ok
}

func (c *liveContext) Rand() *rand.Rand { return c.rng }

func (n *Node) scheduleTimer(t sm.TimerID, d time.Duration) {
	if tm, ok := n.timers[t]; ok {
		tm.Cancel()
	}
	n.timers[t] = n.sim.After(d, func() { n.fireTimer(t) })
}

// SendControl transmits a checkpoint-protocol payload to a peer.
func (n *Node) SendControl(to sm.NodeID, payload any, size int) {
	var cn uint64
	if n.ckpt != nil {
		cn = n.ckpt.OutgoingCN()
	}
	n.net.Send(n.ID, to, ControlEnvelope{CN: cn, Payload: payload},
		size+envelopeHeader, simnet.KindCheckpoint)
}

// iscBlocks speculatively executes ev's handler on a cloned state machine
// and reports whether the immediate safety check vetoes the real execution.
// The veto applies only to violations the handler would *introduce*:
// properties already violated before the handler runs (a pre-existing
// inconsistency the protocol may be in the middle of repairing) do not
// cause blocking, otherwise a single persistent violation would freeze the
// node entirely.
func (n *Node) iscBlocks(ev sm.Event) bool {
	if !n.iscOn || len(n.iscProps) == 0 {
		return false
	}
	n.Stats.ISCChecks++
	spec := &specContext{
		self:   n.ID,
		svc:    n.svc.Clone(),
		timers: n.TimerSet(),
		rng:    n.invocationRNG(),
	}
	switch e := ev.(type) {
	case sm.MsgEvent:
		spec.svc.HandleMessage(spec, e.From, e.Msg)
	case sm.TimerEvent:
		delete(spec.timers, e.Timer)
		spec.svc.HandleTimer(spec, e.Timer)
	case sm.AppEvent:
		spec.svc.HandleApp(spec, e.Call)
	default:
		return false
	}
	// Evaluate the properties on the last known neighborhood snapshot
	// with this node's entry replaced by the speculative post-state, and
	// compare against the same view with the current (pre) state. The two
	// evaluation views are owned by the node and refilled per check (Add
	// copies the service/timer references into view-owned NodeViews, so
	// the snapshot view is never aliased and reuse cannot corrupt it).
	if n.iscPost == nil {
		n.iscPost, n.iscPre = props.NewView(), props.NewView()
	}
	neighborhood := func(view *props.View) *props.View {
		view.Reset()
		if n.iscView != nil {
			if nv := n.iscView(); nv != nil {
				for id, node := range nv.Nodes {
					if id != n.ID {
						view.Add(id, node.Svc, node.Timers)
					}
				}
			}
		}
		return view
	}
	post := neighborhood(n.iscPost)
	post.Add(n.ID, spec.svc, spec.timers)
	violatedPost := n.iscProps.Check(post)
	if len(violatedPost) == 0 {
		return false
	}
	pre := neighborhood(n.iscPre)
	pre.Add(n.ID, n.svc, n.TimerSet())
	violatedPre := make(map[string]bool)
	for _, p := range n.iscProps.Check(pre) {
		violatedPre[p] = true
	}
	for _, p := range violatedPost {
		if !violatedPre[p] {
			n.Stats.ISCBlocks++
			return true
		}
	}
	return false
}

// specContext buffers all effects of a speculative execution: sends are
// held back (paper: "holds the transmission of messages until the
// successful completion of the consistency check") and simply discarded
// here because the real execution re-runs the handler with an identical
// random stream and re-issues them.
type specContext struct {
	self   sm.NodeID
	svc    sm.Service
	timers map[sm.TimerID]bool
	rng    *rand.Rand
}

func (c *specContext) Self() sm.NodeID                      { return c.self }
func (c *specContext) Send(to sm.NodeID, msg sm.Message)    {}
func (c *specContext) SetTimer(t sm.TimerID, d sm.Duration) { c.timers[t] = true }
func (c *specContext) CancelTimer(t sm.TimerID)             { delete(c.timers, t) }
func (c *specContext) TimerPending(t sm.TimerID) bool       { return c.timers[t] }
func (c *specContext) Rand() *rand.Rand                     { return c.rng }
