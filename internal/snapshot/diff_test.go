package snapshot

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"crystalball/internal/runtime"
	"crystalball/internal/sim"
	"crystalball/internal/simnet"
	"crystalball/internal/sm"
	"crystalball/internal/testsvc"
)

func TestComputeApplyDiffRoundTrip(t *testing.T) {
	old := bytes.Repeat([]byte("abcdefgh"), 50) // 400 bytes
	new := append([]byte(nil), old...)
	new[3] = 'X'
	new[200] = 'Y'
	new[399] = 'Z'
	diffs, ok := computeDiff(old, new)
	if !ok {
		t.Fatal("diff should apply to equal-length states")
	}
	// Changed offsets 3, 200, 399 live in chunks 0, 3, 6.
	if len(diffs) != 3 {
		t.Fatalf("diffs = %d, want 3", len(diffs))
	}
	got := applyDiff(old, diffs)
	if !bytes.Equal(got, new) {
		t.Fatal("applyDiff did not reconstruct the new state")
	}
}

func TestComputeDiffLengthMismatch(t *testing.T) {
	if _, ok := computeDiff([]byte("abc"), []byte("abcd")); ok {
		t.Fatal("length mismatch must force a full transfer")
	}
}

func TestDiffWireSizeSmallerForLocalChange(t *testing.T) {
	old := bytes.Repeat([]byte{0}, 1024)
	new := append([]byte(nil), old...)
	new[512] = 1
	diffs, _ := computeDiff(old, new)
	if diffWireSize(diffs) >= len(new) {
		t.Fatalf("diff (%dB) not smaller than full state (%dB)",
			diffWireSize(diffs), len(new))
	}
}

// Property: for any equal-length pair, applyDiff(old, computeDiff(old,new))
// equals new.
func TestPropertyDiffRoundTrip(t *testing.T) {
	f := func(seedData []byte, flips []uint16) bool {
		if len(seedData) == 0 {
			return true
		}
		old := append([]byte(nil), seedData...)
		new := append([]byte(nil), seedData...)
		for _, fp := range flips {
			new[int(fp)%len(new)] ^= 0xFF
		}
		diffs, ok := computeDiff(old, new)
		if !ok {
			return false
		}
		return bytes.Equal(applyDiff(old, diffs), new)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// bigDeploy builds a network where nodes 1 and 2 carry a wide peer set
// (so their state spans several diff chunks) and every peer actually
// exists — otherwise gossip would hit dead nodes, transport errors would
// shrink the peer set, and checkpoint lengths would never be stable.
func bigDeploy(s *sim.Simulator, net *simnet.Network) (sm.Factory, *runtime.Node, *runtime.Node) {
	ids := make([]sm.NodeID, 60)
	for i := range ids {
		ids[i] = sm.NodeID(i + 1)
	}
	factory := testsvc.NewWithPeers(ids...)
	a := runtime.NewNode(s, net, 1, factory)
	b := runtime.NewNode(s, net, 2, factory)
	for _, id := range ids[2:] {
		runtime.NewNode(s, net, id, factory)
	}
	return factory, a, b
}

func TestDiffTransferEndToEnd(t *testing.T) {
	// Two collections with a small state change in between: the second
	// response should be a diff, and the reconstructed state must match
	// a fresh full transfer.
	s := sim.New(31)
	net := simnet.New(s, simnet.UniformPath{Latency: 5 * time.Millisecond, BwBps: 1e9})
	factory, a, b := bigDeploy(s, net)
	cfg := Config{Interval: time.Hour, Quota: 100, CollectTimeout: time.Second, Diffs: true}
	ma := NewManager(s, a, cfg)
	mb := NewManager(s, b, cfg)

	var s1, s2 *Snapshot
	ma.Collect([]sm.NodeID{2}, func(sn *Snapshot) { s1 = sn })
	s.RunFor(200 * time.Millisecond)
	// Small state change at node 2: the counter bumps (fixed-width
	// field, so state length is unchanged and the diff applies).
	b.App(testsvc.Bump{})
	s.RunFor(50 * time.Millisecond)
	ma.Collect([]sm.NodeID{2}, func(sn *Snapshot) { s2 = sn })
	s.RunFor(500 * time.Millisecond)

	if s1 == nil || s2 == nil {
		t.Fatal("collections incomplete")
	}
	if mb.Stats.DiffsSent == 0 {
		t.Fatal("second transfer was not a diff")
	}
	// Reconstructed state decodes to the bumped counter.
	svc, _, err := sm.DecodeFullState(factory, 2, s2.States[2])
	if err != nil {
		t.Fatal(err)
	}
	if svc.(*testsvc.Svc).N == 0 {
		t.Fatal("diff-reconstructed state lost the update")
	}
}

func TestDiffBaseDivergenceFallsBack(t *testing.T) {
	// A receiver with no cached base must treat a diff as missing and
	// resynchronise on the next round with a full transfer.
	s := sim.New(32)
	net := simnet.New(s, simnet.UniformPath{Latency: 5 * time.Millisecond, BwBps: 1e9})
	_, a, b := bigDeploy(s, net)
	cfg := Config{Interval: time.Hour, Quota: 100, CollectTimeout: time.Second, Diffs: true}
	ma := NewManager(s, a, cfg)
	_ = NewManager(s, b, cfg)

	var s1 *Snapshot
	ma.Collect([]sm.NodeID{2}, func(sn *Snapshot) { s1 = sn })
	s.RunFor(300 * time.Millisecond)
	if s1 == nil || len(s1.Missing) != 0 {
		t.Fatalf("first collection failed: %+v", s1)
	}
	// Poison the requester's cached base, then change remote state so
	// the responder offers a diff against a base we no longer hold.
	ma.lastRecv[2] = []byte("garbage-that-wont-hash-match")
	b.App(testsvc.Bump{})
	s.RunFor(50 * time.Millisecond)
	var s2 *Snapshot
	ma.Collect([]sm.NodeID{2}, func(sn *Snapshot) { s2 = sn })
	s.RunFor(500 * time.Millisecond)
	if s2 == nil {
		t.Fatal("second collection incomplete")
	}
	if len(s2.Missing) == 0 {
		t.Fatal("diverged diff base should mark the peer missing")
	}
	// Third round recovers with a full transfer.
	var s3 *Snapshot
	ma.Collect([]sm.NodeID{2}, func(sn *Snapshot) { s3 = sn })
	s.RunFor(500 * time.Millisecond)
	if s3 == nil || len(s3.Missing) != 0 {
		t.Fatalf("resynchronisation failed: %+v", s3)
	}
}
