package snapshot

// Chunk-level checkpoint diffs (paper section 3.1, "Managing Bandwidth
// Consumption": "it can employ 'diffs' that enable a node to transmit only
// parts of state that are different from the last sent checkpoint").
//
// A checkpoint is split into fixed-size chunks; a diff lists only the
// chunks that changed relative to the last checkpoint the peer received.
// Diffs apply only when both sides agree on the previous bytes (tracked by
// hash) and the state length is unchanged; anything else falls back to a
// full transfer.

// diffChunkSize is the granularity of checkpoint diffs.
const diffChunkSize = 64

// chunkDiff is one changed chunk.
type chunkDiff struct {
	Index int
	Data  []byte
}

// computeDiff returns the chunks of new that differ from old, and whether a
// diff is applicable at all (equal lengths). The second result is false
// when the caller must send the full state.
func computeDiff(old, new []byte) ([]chunkDiff, bool) {
	if len(old) != len(new) {
		return nil, false
	}
	var diffs []chunkDiff
	for off := 0; off < len(new); off += diffChunkSize {
		end := off + diffChunkSize
		if end > len(new) {
			end = len(new)
		}
		if !bytesEqual(old[off:end], new[off:end]) {
			chunk := make([]byte, end-off)
			copy(chunk, new[off:end])
			diffs = append(diffs, chunkDiff{Index: off / diffChunkSize, Data: chunk})
		}
	}
	return diffs, true
}

// applyDiff reconstructs the new state from the old one plus the diff.
func applyDiff(old []byte, diffs []chunkDiff) []byte {
	out := make([]byte, len(old))
	copy(out, old)
	for _, d := range diffs {
		off := d.Index * diffChunkSize
		if off+len(d.Data) > len(out) {
			continue // corrupt diff; caller validates by hash
		}
		copy(out[off:], d.Data)
	}
	return out
}

// diffWireSize approximates the on-wire size of a diff.
func diffWireSize(diffs []chunkDiff) int {
	n := 8
	for _, d := range diffs {
		n += 8 + len(d.Data)
	}
	return n
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
