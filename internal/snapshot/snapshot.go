// Package snapshot implements CrystalBall's checkpoint manager: per-node
// checkpointing on a logical clock, the consistent neighborhood-snapshot
// collection protocol, checkpoint storage quotas, LZW compression with
// duplicate suppression, and bandwidth accounting (paper sections 2.3, 3.1
// and 4).
//
// The consistency mechanism follows the algorithm the paper adopts from
// Manivannan and Singhal: every node keeps a checkpoint number cn (a form
// of Lamport clock); every message carries the sender's cn; a receiver
// whose cn is smaller takes a forced checkpoint stamped with the incoming
// cn *before* processing the message, which preserves the happens-before
// relation among the checkpoints with any given stamp. A snapshot
// requester bumps its cn, checkpoints itself, and asks each neighborhood
// member for its checkpoint at that stamp.
package snapshot

import (
	"bytes"
	"compress/lzw"
	"fmt"
	"hash/fnv"
	"io"
	"slices"
	"time"

	"crystalball/internal/runtime"
	"crystalball/internal/sim"
	"crystalball/internal/sm"
)

// sortedIDs returns the keys of a NodeID-keyed map in sorted order, so that
// request fan-out and missing-peer bookkeeping never depend on Go's
// randomized map iteration order.
func sortedIDs[V any](m map[sm.NodeID]V) []sm.NodeID {
	ids := make([]sm.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// Checkpoint is one stored node checkpoint.
type Checkpoint struct {
	CN    uint64
	State []byte // sm.EncodeFullState output (uncompressed)
	Taken sim.Time
}

// Snapshot is the result of a neighborhood collection: a consistent cut of
// the neighborhood at logical time CN.
type Snapshot struct {
	CN     uint64
	Origin sm.NodeID
	// States maps node id to its full-state encoding (self included).
	States map[sm.NodeID][]byte
	// Missing lists neighbors that failed to contribute (dead peers,
	// bandwidth-limited peers, pruned checkpoints after retry).
	Missing []sm.NodeID
	At      sim.Time
}

// Protocol payloads carried in runtime.ControlEnvelope.

type ckptRequest struct {
	CR  uint64
	Seq uint64 // collection round id, echoed in the response
	// Full asks for a complete state transfer: the requester holds no
	// cached copy, so neither a Dup marker nor a diff would resolve.
	Full bool
}

type ckptResponse struct {
	Seq  uint64
	OK   bool
	CN   uint64 // responder's cn (for negative responses / retry hint)
	Dup  bool   // data identical to the last checkpoint sent to requester
	Data []byte // LZW-compressed full state (when OK && !Dup && !IsDiff)
	Raw  int    // uncompressed size, for stats

	// Diff transfer (paper section 3.1): only the chunks changed since
	// the last checkpoint this requester received.
	IsDiff   bool
	Diffs    []chunkDiff
	PrevHash uint64 // hash of the base state the diff applies to
	FullHash uint64 // hash of the reconstructed state, for validation
}

// Stats counts checkpoint-manager activity.
type Stats struct {
	CheckpointsTaken   int64
	ForcedCheckpoints  int64
	SnapshotsCollected int64
	SnapshotsFailed    int64
	ResponsesSent      int64
	NegativeResponses  int64
	DupSuppressed      int64
	DiffsSent          int64
	BytesSentRaw       int64
	BytesSentWire      int64
	Retries            int64
}

// Config parameterises a Manager.
type Config struct {
	// Interval between periodic local checkpoints (paper: 10 s).
	Interval time.Duration
	// Quota is the maximum number of stored checkpoints; older ones are
	// pruned first.
	Quota int
	// CollectTimeout bounds one collection round.
	CollectTimeout time.Duration
	// Compress enables LZW compression of checkpoint payloads.
	Compress bool
	// Diffs enables chunk-level diff transfers against the last
	// checkpoint each peer received (paper section 3.1).
	Diffs bool
	// BandwidthLimitBps, when positive, makes the manager answer
	// negatively while its checkpoint traffic exceeds the limit.
	BandwidthLimitBps float64
	// MaxRetries bounds collection retries after negative responses.
	MaxRetries int
}

// DefaultConfig mirrors the paper's deployment values.
func DefaultConfig() Config {
	return Config{
		Interval:       10 * time.Second,
		Quota:          32,
		CollectTimeout: 2 * time.Second,
		Compress:       true,
		MaxRetries:     1,
	}
}

// collection tracks one in-progress snapshot gather.
type collection struct {
	seq      uint64
	cr       uint64
	want     map[sm.NodeID]bool
	states   map[sm.NodeID][]byte
	missing  []sm.NodeID
	maxSeen  uint64 // max cn from negative responses, for the retry round
	negative bool
	retries  int
	done     func(*Snapshot)
	timeout  *sim.Timer
}

// Manager is the per-node checkpoint manager. It implements
// runtime.CheckpointHook.
type Manager struct {
	node *runtime.Node
	sim  *sim.Simulator
	cfg  Config

	cn     uint64
	store  []Checkpoint
	ticker *sim.Timer

	col *collection
	seq uint64
	// lastSent tracks, per requester, the hash of the last checkpoint
	// payload sent, enabling duplicate suppression; lastSentState keeps
	// the bytes themselves as the diff base; lastRecv caches, per
	// responder, the last payload received so Dup and diff responses
	// resolve.
	lastSent      map[sm.NodeID]uint64
	lastSentState map[sm.NodeID][]byte
	lastRecv      map[sm.NodeID][]byte

	// bandwidth window
	windowStart sim.Time
	windowBytes int64

	Stats Stats
}

// NewManager attaches a checkpoint manager to a node and starts periodic
// checkpointing.
func NewManager(s *sim.Simulator, node *runtime.Node, cfg Config) *Manager {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.Quota <= 0 {
		cfg.Quota = 32
	}
	if cfg.CollectTimeout <= 0 {
		cfg.CollectTimeout = 2 * time.Second
	}
	m := &Manager{
		node:          node,
		sim:           s,
		cfg:           cfg,
		lastSent:      make(map[sm.NodeID]uint64),
		lastSentState: make(map[sm.NodeID][]byte),
		lastRecv:      make(map[sm.NodeID][]byte),
	}
	node.SetCheckpointHook(m)
	m.ticker = s.After(cfg.Interval, m.periodic)
	return m
}

// CN returns the node's current checkpoint number.
func (m *Manager) CN() uint64 { return m.cn }

// StoredCheckpoints reports how many checkpoints are held.
func (m *Manager) StoredCheckpoints() int { return len(m.store) }

// LatestCheckpointSize returns the uncompressed size of the newest stored
// checkpoint (0 when none), used by the overhead experiments.
func (m *Manager) LatestCheckpointSize() int {
	if len(m.store) == 0 {
		return 0
	}
	return len(m.store[len(m.store)-1].State)
}

func (m *Manager) periodic() {
	// Local increment: bump cn and checkpoint (paper: "A node n_i can
	// take snapshots on its own ... whenever the cn_i is locally
	// incremented, which happens periodically").
	m.cn++
	m.takeCheckpoint(m.cn)
	m.ticker = m.sim.After(m.cfg.Interval, m.periodic)
}

func (m *Manager) takeCheckpoint(stamp uint64) {
	svc, timers := m.node.View()
	ck := Checkpoint{CN: stamp, State: sm.EncodeFullState(svc, timers), Taken: m.sim.Now()}
	m.store = append(m.store, ck)
	m.Stats.CheckpointsTaken++
	// Enforce the storage quota, oldest first.
	if over := len(m.store) - m.cfg.Quota; over > 0 {
		m.store = append([]Checkpoint(nil), m.store[over:]...)
	}
}

// OutgoingCN implements runtime.CheckpointHook.
func (m *Manager) OutgoingCN() uint64 { return m.cn }

// IncomingCN implements runtime.CheckpointHook: the forced-checkpoint rule.
func (m *Manager) IncomingCN(cn uint64) {
	if cn > m.cn {
		m.Stats.ForcedCheckpoints++
		m.cn = cn
		m.takeCheckpoint(cn)
	}
}

// PeerError implements runtime.CheckpointHook: a communication error with a
// peer during collection proclaims it dead for this snapshot.
func (m *Manager) PeerError(peer sm.NodeID) {
	if m.col == nil || !m.col.want[peer] {
		return
	}
	delete(m.col.want, peer)
	m.col.missing = append(m.col.missing, peer)
	m.maybeFinish()
}

// Collect gathers a consistent snapshot of the given neighborhood and
// invokes done (possibly after retries). Only one collection runs at a
// time; a new request while one is pending is ignored and done is called
// with nil.
func (m *Manager) Collect(neighbors []sm.NodeID, done func(*Snapshot)) {
	if m.col != nil {
		done(nil)
		return
	}
	m.cn++
	m.takeCheckpoint(m.cn)
	m.startRound(neighbors, m.cn, 0, done)
}

func (m *Manager) startRound(neighbors []sm.NodeID, cr uint64, retries int, done func(*Snapshot)) {
	m.seq++
	col := &collection{
		seq:     m.seq,
		cr:      cr,
		want:    make(map[sm.NodeID]bool),
		states:  make(map[sm.NodeID][]byte),
		retries: retries,
		done:    done,
	}
	for _, nb := range neighbors {
		if nb != m.node.ID {
			col.want[nb] = true
		}
	}
	m.col = col
	// Self-checkpoint at the cut: the earliest stored checkpoint with
	// CN >= cr (we just took one at cr in Collect).
	if ck, ok := m.findCheckpoint(cr); ok {
		col.states[m.node.ID] = ck.State
	}
	if len(col.want) == 0 {
		m.maybeFinish()
		return
	}
	// Request order must not depend on map iteration order: control sends
	// enter the simulated network in program order.
	for _, nb := range sortedIDs(col.want) {
		m.node.SendControl(nb, ckptRequest{CR: cr, Seq: col.seq, Full: m.lastRecv[nb] == nil}, 16)
	}
	col.timeout = m.sim.After(m.cfg.CollectTimeout, func() {
		if m.col != col {
			return
		}
		col.missing = append(col.missing, sortedIDs(col.want)...)
		col.want = map[sm.NodeID]bool{}
		m.maybeFinish()
	})
}

// findCheckpoint returns the earliest stored checkpoint with CN >= cr
// (paper section 2.3, case 2).
func (m *Manager) findCheckpoint(cr uint64) (Checkpoint, bool) {
	for _, ck := range m.store {
		if ck.CN >= cr {
			return ck, true
		}
	}
	return Checkpoint{}, false
}

// HandleControl implements runtime.CheckpointHook.
func (m *Manager) HandleControl(from sm.NodeID, payload any) {
	switch p := payload.(type) {
	case ckptRequest:
		m.handleRequest(from, p)
	case ckptResponse:
		m.handleResponse(from, p)
	}
}

func (m *Manager) handleRequest(from sm.NodeID, req ckptRequest) {
	// Bandwidth limiting: above the cap, answer negatively; the
	// requester temporarily removes us from the snapshot.
	if m.cfg.BandwidthLimitBps > 0 && m.overBudget() {
		m.Stats.NegativeResponses++
		m.node.SendControl(from, ckptResponse{Seq: req.Seq, OK: false, CN: m.cn}, 24)
		return
	}
	var ck Checkpoint
	if req.CR > m.cn {
		// Case 1: request is ahead of anything seen; checkpoint now
		// at the requested stamp.
		m.cn = req.CR
		m.takeCheckpoint(req.CR)
		ck = m.store[len(m.store)-1]
	} else {
		// Case 2: a checkpoint from the past; earliest with CN >= CR.
		var ok bool
		ck, ok = m.findCheckpoint(req.CR)
		if !ok {
			// Pruned out of range: negative response carrying our
			// cn so the requester can retry at a feasible stamp.
			m.Stats.NegativeResponses++
			m.node.SendControl(from, ckptResponse{Seq: req.Seq, OK: false, CN: m.cn}, 24)
			return
		}
	}
	m.Stats.ResponsesSent++
	resp := ckptResponse{Seq: req.Seq, OK: true, CN: ck.CN, Raw: len(ck.State)}
	// Duplicate suppression: skip the payload if identical to the last
	// checkpoint sent to this requester.
	h := hashBytes(ck.State)
	if !req.Full && m.lastSent[from] == h {
		resp.Dup = true
		m.Stats.DupSuppressed++
		m.node.SendControl(from, resp, 24)
		return
	}
	data := ck.State
	if m.cfg.Compress {
		data = compress(data)
	}
	// Diff transfer: when the peer holds our previous checkpoint and the
	// chunk diff is smaller than the (compressed) full state, send only
	// the changed chunks.
	if m.cfg.Diffs && !req.Full {
		if prev, ok := m.lastSentState[from]; ok {
			if diffs, applicable := computeDiff(prev, ck.State); applicable {
				if wire := diffWireSize(diffs); wire < len(data) {
					resp.IsDiff = true
					resp.Diffs = diffs
					resp.PrevHash = hashBytes(prev)
					resp.FullHash = h
					m.lastSent[from] = h
					m.lastSentState[from] = ck.State
					m.Stats.DiffsSent++
					m.Stats.BytesSentRaw += int64(len(ck.State))
					m.Stats.BytesSentWire += int64(wire)
					m.accountBytes(int64(wire))
					m.node.SendControl(from, resp, wire+24)
					return
				}
			}
		}
	}
	m.lastSent[from] = h
	m.lastSentState[from] = ck.State
	resp.Data = data
	m.Stats.BytesSentRaw += int64(len(ck.State))
	m.Stats.BytesSentWire += int64(len(data))
	m.accountBytes(int64(len(data)))
	m.node.SendControl(from, resp, len(data)+24)
}

func (m *Manager) handleResponse(from sm.NodeID, resp ckptResponse) {
	col := m.col
	if col == nil || resp.Seq != col.seq || !col.want[from] {
		return
	}
	delete(col.want, from)
	if !resp.OK {
		col.negative = true
		if resp.CN > col.maxSeen {
			col.maxSeen = resp.CN
		}
		col.missing = append(col.missing, from)
		m.maybeFinish()
		return
	}
	var state []byte
	if resp.Dup {
		state = m.lastRecv[from]
		if state == nil {
			// We have no cached copy; treat as missing.
			col.missing = append(col.missing, from)
			m.maybeFinish()
			return
		}
	} else if resp.IsDiff {
		prev := m.lastRecv[from]
		if prev == nil || hashBytes(prev) != resp.PrevHash {
			// Our base diverged from the sender's; the state cannot
			// be reconstructed. Treat as missing (a later full
			// transfer resynchronises).
			delete(m.lastRecv, from)
			col.missing = append(col.missing, from)
			m.maybeFinish()
			return
		}
		state = applyDiff(prev, resp.Diffs)
		if hashBytes(state) != resp.FullHash {
			delete(m.lastRecv, from)
			col.missing = append(col.missing, from)
			m.maybeFinish()
			return
		}
		m.lastRecv[from] = state
	} else {
		state = resp.Data
		if m.cfg.Compress {
			var err error
			state, err = decompress(state)
			if err != nil {
				col.missing = append(col.missing, from)
				m.maybeFinish()
				return
			}
		}
		m.lastRecv[from] = state
	}
	col.states[from] = state
	m.maybeFinish()
}

func (m *Manager) maybeFinish() {
	col := m.col
	if col == nil || len(col.want) > 0 {
		return
	}
	if col.timeout != nil {
		col.timeout.Cancel()
	}
	m.col = nil
	// Negative responses trigger one retry at the greatest cn seen
	// (paper: "the requestor chooses the greatest among the R.cn
	// received, and initiates another snapshot round").
	if col.negative && col.retries < m.cfg.MaxRetries && col.maxSeen > 0 {
		m.Stats.Retries++
		cr := col.maxSeen
		if cr <= m.cn {
			cr = m.cn + 1
		}
		m.cn = cr
		m.takeCheckpoint(cr)
		var neighbors []sm.NodeID
		for _, nb := range sortedIDs(col.states) {
			if nb != m.node.ID {
				neighbors = append(neighbors, nb)
			}
		}
		neighbors = append(neighbors, col.missing...)
		m.startRound(neighbors, cr, col.retries+1, col.done)
		return
	}
	snap := &Snapshot{
		CN:      col.cr,
		Origin:  m.node.ID,
		States:  col.states,
		Missing: col.missing,
		At:      m.sim.Now(),
	}
	if len(col.missing) > 0 {
		m.Stats.SnapshotsFailed++
	} else {
		m.Stats.SnapshotsCollected++
	}
	col.done(snap)
}

func (m *Manager) overBudget() bool {
	now := m.sim.Now()
	if now.Sub(m.windowStart) > time.Second {
		m.windowStart = now
		m.windowBytes = 0
	}
	return float64(m.windowBytes*8) > m.cfg.BandwidthLimitBps
}

func (m *Manager) accountBytes(n int64) {
	now := m.sim.Now()
	if now.Sub(m.windowStart) > time.Second {
		m.windowStart = now
		m.windowBytes = 0
	}
	m.windowBytes += n
}

func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// compress applies LZW (the algorithm the paper's implementation uses).
func compress(data []byte) []byte {
	var buf bytes.Buffer
	w := lzw.NewWriter(&buf, lzw.LSB, 8)
	if _, err := w.Write(data); err != nil {
		// Compression of in-memory buffers cannot fail; fall back to
		// raw if it somehow does.
		return append([]byte(nil), data...)
	}
	w.Close()
	return buf.Bytes()
}

func decompress(data []byte) ([]byte, error) {
	r := lzw.NewReader(bytes.NewReader(data), lzw.LSB, 8)
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: decompress: %w", err)
	}
	return out, nil
}
