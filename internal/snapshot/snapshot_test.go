package snapshot

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"crystalball/internal/runtime"
	"crystalball/internal/sim"
	"crystalball/internal/simnet"
	"crystalball/internal/sm"
	"crystalball/internal/testsvc"
)

type fixture struct {
	sim   *sim.Simulator
	net   *simnet.Network
	nodes []*runtime.Node
	mgrs  []*Manager
}

func setup(t *testing.T, n int, cfg Config) *fixture {
	t.Helper()
	s := sim.New(21)
	net := simnet.New(s, simnet.UniformPath{Latency: 5 * time.Millisecond, BwBps: 1e9})
	ids := make([]sm.NodeID, n)
	for i := range ids {
		ids[i] = sm.NodeID(i + 1)
	}
	factory := testsvc.NewWithPeers(ids...)
	f := &fixture{sim: s, net: net}
	for _, id := range ids {
		node := runtime.NewNode(s, net, id, factory)
		f.nodes = append(f.nodes, node)
		f.mgrs = append(f.mgrs, NewManager(s, node, cfg))
	}
	return f
}

func TestPeriodicCheckpoints(t *testing.T) {
	f := setup(t, 1, Config{Interval: time.Second, Quota: 100})
	f.sim.RunFor(5500 * time.Millisecond)
	if got := f.mgrs[0].Stats.CheckpointsTaken; got < 5 {
		t.Fatalf("checkpoints taken = %d, want >= 5", got)
	}
	if f.mgrs[0].CN() < 5 {
		t.Fatalf("cn = %d, want >= 5", f.mgrs[0].CN())
	}
}

func TestQuotaPrunesOldest(t *testing.T) {
	f := setup(t, 1, Config{Interval: 100 * time.Millisecond, Quota: 3})
	f.sim.RunFor(2 * time.Second)
	if got := f.mgrs[0].StoredCheckpoints(); got > 3 {
		t.Fatalf("stored = %d, quota 3", got)
	}
}

func TestForcedCheckpointOnHigherCN(t *testing.T) {
	// Node 1 advances its clock faster than node 2's periodic interval;
	// gossip messages carry the higher cn and must force checkpoints at
	// node 2 before processing (the happens-before rule).
	s := sim.New(5)
	net := simnet.New(s, simnet.UniformPath{Latency: 5 * time.Millisecond, BwBps: 1e9})
	factory := testsvc.NewWithPeers(1, 2)
	a := runtime.NewNode(s, net, 1, factory)
	b := runtime.NewNode(s, net, 2, factory)
	ma := NewManager(s, a, Config{Interval: 200 * time.Millisecond, Quota: 100})
	mb := NewManager(s, b, Config{Interval: time.Hour, Quota: 100})
	_ = ma
	s.RunFor(3200 * time.Millisecond) // node 1's gossip (1s period) carries growing cn
	if mb.Stats.ForcedCheckpoints == 0 {
		t.Fatal("no forced checkpoints at the slow node")
	}
	// b's clock must track a's to within one gossip period's worth of
	// checkpoints (5 x 200ms) plus propagation.
	if mb.CN()+6 < ma.CN() {
		t.Fatalf("slow node's cn did not track: a=%d b=%d", ma.CN(), mb.CN())
	}
}

func TestCollectNeighborhoodSnapshot(t *testing.T) {
	f := setup(t, 3, Config{Interval: time.Second, Quota: 100, CollectTimeout: time.Second, Compress: true})
	f.sim.RunFor(2 * time.Second)
	var got *Snapshot
	f.mgrs[0].Collect([]sm.NodeID{2, 3}, func(s *Snapshot) { got = s })
	f.sim.RunFor(2 * time.Second)
	if got == nil {
		t.Fatal("collection never completed")
	}
	if len(got.Missing) != 0 {
		t.Fatalf("missing = %v", got.Missing)
	}
	for _, id := range []sm.NodeID{1, 2, 3} {
		data, ok := got.States[id]
		if !ok {
			t.Fatalf("state for %v missing", id)
		}
		svc, timers, err := sm.DecodeFullState(testsvc.New, id, data)
		if err != nil {
			t.Fatalf("decode %v: %v", id, err)
		}
		if svc.(*testsvc.Svc).Self != id {
			t.Fatalf("decoded wrong node state")
		}
		if !timers[testsvc.TimerGossip] {
			t.Fatalf("decoded timer set missing gossip timer")
		}
	}
}

func TestCollectSnapshotConsistentCut(t *testing.T) {
	// The fundamental consistency property: for every pair of
	// checkpoints in a snapshot, neither reflects a message sent after
	// the snapshot's logical time. With the testsvc counter protocol
	// this surfaces as: decoded counters may differ, but any message in
	// the cut carries cn <= snapshot CN, so a receiver's forced
	// checkpoint happens before processing. We verify the observable
	// half: every collection completes with states stamped at CN >= cr,
	// and a later collection never yields an older cut.
	f := setup(t, 4, Config{Interval: 500 * time.Millisecond, Quota: 100, CollectTimeout: time.Second})
	f.nodes[0].App(testsvc.Bump{})
	f.sim.RunFor(2 * time.Second)
	var first, second *Snapshot
	f.mgrs[0].Collect([]sm.NodeID{2, 3, 4}, func(s *Snapshot) { first = s })
	f.sim.RunFor(2 * time.Second)
	f.mgrs[0].Collect([]sm.NodeID{2, 3, 4}, func(s *Snapshot) { second = s })
	f.sim.RunFor(2 * time.Second)
	if first == nil || second == nil {
		t.Fatal("collections did not complete")
	}
	if second.CN <= first.CN {
		t.Fatalf("later snapshot has older cut: %d <= %d", second.CN, first.CN)
	}
}

func TestCollectWithDeadNeighbor(t *testing.T) {
	f := setup(t, 3, Config{Interval: time.Second, Quota: 100, CollectTimeout: 500 * time.Millisecond})
	f.sim.RunFor(time.Second)
	f.net.Kill(3)
	var got *Snapshot
	f.mgrs[0].Collect([]sm.NodeID{2, 3}, func(s *Snapshot) { got = s })
	f.sim.RunFor(3 * time.Second)
	if got == nil {
		t.Fatal("collection never completed despite dead neighbor")
	}
	if len(got.Missing) != 1 || got.Missing[0] != 3 {
		t.Fatalf("missing = %v, want [3]", got.Missing)
	}
	if _, ok := got.States[2]; !ok {
		t.Fatal("live neighbor's state absent")
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Two back-to-back collections with unchanged state: the second
	// response from each neighbor should be a Dup.
	// Collections run 200 ms apart, before the 1 s gossip timer can
	// change node 2's state, so its checkpoint bytes are identical.
	f := setup(t, 2, Config{Interval: time.Hour, Quota: 100, CollectTimeout: time.Second})
	f.sim.RunFor(100 * time.Millisecond)
	var s1, s2 *Snapshot
	f.mgrs[0].Collect([]sm.NodeID{2}, func(s *Snapshot) { s1 = s })
	f.sim.RunFor(200 * time.Millisecond)
	f.mgrs[0].Collect([]sm.NodeID{2}, func(s *Snapshot) { s2 = s })
	f.sim.RunFor(500 * time.Millisecond)
	if s1 == nil || s2 == nil {
		t.Fatal("collections did not complete")
	}
	if f.mgrs[1].Stats.DupSuppressed == 0 {
		t.Fatal("duplicate checkpoint not suppressed")
	}
	if !bytes.Equal(s1.States[2], s2.States[2]) {
		t.Fatal("dup-resolved state differs from original")
	}
}

func TestBandwidthLimitNegativeResponse(t *testing.T) {
	cfg := Config{Interval: time.Hour, Quota: 100, CollectTimeout: 500 * time.Millisecond,
		BandwidthLimitBps: 1} // effectively zero budget
	f := setup(t, 2, cfg)
	f.sim.RunFor(100 * time.Millisecond)
	// The first collection passes (empty window) and charges the
	// responder's budget; the second follows within the same 1 s window
	// and must be refused.
	var last *Snapshot
	f.mgrs[0].Collect([]sm.NodeID{2}, func(s *Snapshot) { last = s })
	f.sim.RunFor(300 * time.Millisecond)
	f.mgrs[0].Collect([]sm.NodeID{2}, func(s *Snapshot) { last = s })
	f.sim.RunFor(2 * time.Second)
	if last == nil {
		t.Fatal("collection did not complete")
	}
	if f.mgrs[1].Stats.NegativeResponses == 0 {
		t.Fatal("bandwidth limit never produced a negative response")
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		c := compress(data)
		out, err := decompress(c)
		if err != nil {
			return false
		}
		if len(data) == 0 {
			return len(out) == 0
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionShrinksRedundantData(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh"), 200)
	c := compress(data)
	if len(c) >= len(data) {
		t.Fatalf("LZW did not shrink redundant data: %d -> %d", len(data), len(c))
	}
}

func TestOnlyOneCollectionAtATime(t *testing.T) {
	f := setup(t, 2, Config{Interval: time.Hour, Quota: 100, CollectTimeout: time.Second})
	var second *Snapshot
	secondCalled := false
	f.mgrs[0].Collect([]sm.NodeID{2}, func(s *Snapshot) {})
	f.mgrs[0].Collect([]sm.NodeID{2}, func(s *Snapshot) { second = s; secondCalled = true })
	if !secondCalled || second != nil {
		t.Fatal("overlapping collection should fail fast with nil")
	}
}

func TestCheckpointSizeReporting(t *testing.T) {
	f := setup(t, 1, Config{Interval: 100 * time.Millisecond, Quota: 10})
	f.sim.RunFor(time.Second)
	if f.mgrs[0].LatestCheckpointSize() == 0 {
		t.Fatal("no checkpoint size reported")
	}
}
