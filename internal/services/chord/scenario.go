package chord

import (
	"fmt"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	"crystalball/internal/sm"
)

// The chord scenario: the ring DHT with the three Table 1 bugs seeded.
// Joins are staggered so the ring forms, and the checker's fault model
// includes connection breaks — the Figure 10 violation hinges on them.
func init() {
	scenario.Register(scenario.Scenario{
		Name:        "chord",
		Description: "ring DHT with stabilization (3 seeded bugs, paper §5.2.2)",
		New: func(ids []sm.NodeID, o scenario.Options) (sm.Factory, error) {
			if o.Variant != "" {
				return nil, fmt.Errorf("unknown variant %q", o.Variant)
			}
			fixes := Fix(0)
			if o.Fixed {
				fixes = AllFixes
			}
			return New(Config{Bootstrap: ids[:1], SuccListLen: o.Degree, Fixes: fixes}), nil
		},
		Props:       Properties,
		GlobalProps: GlobalProperties,
		Check:       scenario.Tuning{Nodes: 5},
		Live:        scenario.Tuning{Nodes: 12},
		Faults:      scenario.Faults{ExploreResets: true, ExploreConnBreaks: true},
		Reduction:   true,
		// Declared as a policy spec (fixed, 12000 states/round — the
		// long-standing value); Chord's live states grow with the
		// successor lists, so -policy scaled is the natural retune.
		CheckerPolicy: mc.PolicySpec{Kind: mc.PolicyFixed, Base: mc.Budget{States: 12000}},
		Join:          func() sm.AppCall { return AppJoin{} },
		JoinStagger:   700 * time.Millisecond,
	})
}
