package chord

import (
	"crystalball/internal/props"
	"crystalball/internal/sm"
)

func ringOf(v *props.View, id sm.NodeID) *Ring {
	nv := v.Get(id)
	if nv == nil {
		return nil
	}
	r, _ := nv.Svc.(*Ring)
	return r
}

// PropPredSelfImpliesSuccSelf is the paper's property "If Successor is
// Self, So Is Predecessor" (stated in its contrapositive-friendly form): a
// node whose predecessor points to itself must be alone, so its successor
// list must not name other nodes (Figure 10's violation).
var PropPredSelfImpliesSuccSelf = props.Property{
	Name: "PredSelfImpliesSuccSelf",
	Check: func(v *props.View) bool {
		for _, id := range v.IDs() {
			r := ringOf(v, id)
			if r == nil || !r.Joined {
				continue
			}
			if r.Pred != r.Self {
				continue
			}
			for _, s := range r.Succs {
				if s != r.Self {
					return false
				}
			}
		}
		return true
	},
}

// PropNodeOrdering is the paper's "Node Ordering Constraint": if node A has
// predecessor P and successor S, the id of S must not lie between P and A
// on the ring (Figure 11's violation).
var PropNodeOrdering = props.Property{
	Name: "NodeOrderingConstraint",
	Check: func(v *props.View) bool {
		for _, id := range v.IDs() {
			r := ringOf(v, id)
			if r == nil || !r.Joined || r.Pred == sm.NoNode || r.Pred == r.Self {
				continue
			}
			for _, s := range r.Succs {
				if s == r.Self || s == r.Pred {
					continue
				}
				if Between(s, r.Pred, r.Self) {
					return false
				}
			}
		}
		return true
	},
}

// PropNoForeignSelfLoop (auxiliary): a node must not appear in its own
// successor list ahead of other live members — a self-loop alongside other
// nodes disconnects the ring (the class of damage the paper attributes to
// an incorrect successor).
var PropNoForeignSelfLoop = props.Property{
	Name: "NoForeignSelfLoop",
	Check: func(v *props.View) bool {
		for _, id := range v.IDs() {
			r := ringOf(v, id)
			if r == nil || !r.Joined || len(r.Succs) < 2 {
				continue
			}
			if r.Succs[0] == r.Self {
				for _, s := range r.Succs[1:] {
					if s != r.Self {
						return false
					}
				}
			}
		}
		return true
	},
}

// Properties is the default Chord safety-property set.
var Properties = props.Set{
	PropPredSelfImpliesSuccSelf,
	PropNodeOrdering,
	PropNoForeignSelfLoop,
}
