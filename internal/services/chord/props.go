package chord

import (
	"crystalball/internal/props"
	"crystalball/internal/sm"
)

func ringOf(v *props.View, id sm.NodeID) *Ring {
	nv := v.Get(id)
	if nv == nil {
		return nil
	}
	r, _ := nv.Svc.(*Ring)
	return r
}

// PropPredSelfImpliesSuccSelf is the paper's property "If Successor is
// Self, So Is Predecessor" (stated in its contrapositive-friendly form): a
// node whose predecessor points to itself must be alone, so its successor
// list must not name other nodes (Figure 10's violation).
var PropPredSelfImpliesSuccSelf = props.Property{
	Name: "PredSelfImpliesSuccSelf",
	Check: func(v *props.View) bool {
		for _, id := range v.IDs() {
			r := ringOf(v, id)
			if r == nil || !r.Joined {
				continue
			}
			if r.Pred != r.Self {
				continue
			}
			for _, s := range r.Succs {
				if s != r.Self {
					return false
				}
			}
		}
		return true
	},
}

// PropNodeOrdering is the paper's "Node Ordering Constraint": if node A has
// predecessor P and successor S, the id of S must not lie between P and A
// on the ring (Figure 11's violation).
var PropNodeOrdering = props.Property{
	Name: "NodeOrderingConstraint",
	Check: func(v *props.View) bool {
		for _, id := range v.IDs() {
			r := ringOf(v, id)
			if r == nil || !r.Joined || r.Pred == sm.NoNode || r.Pred == r.Self {
				continue
			}
			for _, s := range r.Succs {
				if s == r.Self || s == r.Pred {
					continue
				}
				if Between(s, r.Pred, r.Self) {
					return false
				}
			}
		}
		return true
	},
}

// PropNoForeignSelfLoop (auxiliary): a node must not appear in its own
// successor list ahead of other live members — a self-loop alongside other
// nodes disconnects the ring (the class of damage the paper attributes to
// an incorrect successor).
var PropNoForeignSelfLoop = props.Property{
	Name: "NoForeignSelfLoop",
	Check: func(v *props.View) bool {
		for _, id := range v.IDs() {
			r := ringOf(v, id)
			if r == nil || !r.Joined || len(r.Succs) < 2 {
				continue
			}
			if r.Succs[0] == r.Self {
				for _, s := range r.Succs[1:] {
					if s != r.Self {
						return false
					}
				}
			}
		}
		return true
	},
}

// ringMaxNodes bounds the stack scratch of the global ring check; larger
// views are passed over rather than checked, per the defensive half of
// the GlobalProperty contract.
const ringMaxNodes = 64

// PropGlobalRingConsistency is the cross-node "at most one ring"
// invariant: the nearest-successor pointers of the joined nodes form a
// functional graph, and that graph must contain at most one cycle. A
// second cycle is a partitioned ring — two node groups that each believe
// they close the DHT — which no single node's view can detect: every
// local successor relation can look healthy while the global graph is
// split. Edges to nodes that are absent or not joined are terminal
// (transient states during joins and after resets walk off the graph,
// they do not close cycles).
var PropGlobalRingConsistency = props.GlobalProperty{
	Name: "GlobalRingConsistency",
	Check: func(v props.GlobalView) bool {
		ids := v.IDs()
		if len(ids) > ringMaxNodes {
			return true
		}
		// Collect the joined nodes and their nearest-successor edges as
		// indices; -1 marks a terminal edge.
		var (
			rid  [ringMaxNodes]sm.NodeID
			succ [ringMaxNodes]int
		)
		n := 0
		for _, id := range ids {
			r := ringOf(v.View, id)
			if r == nil || !r.Joined || len(r.Succs) == 0 {
				continue
			}
			rid[n] = id
			n++
		}
		for i := 0; i < n; i++ {
			s := ringOf(v.View, rid[i]).Succs[0]
			succ[i] = -1
			for j := 0; j < n; j++ {
				if rid[j] == s {
					succ[i] = j
					break
				}
			}
		}
		// Count cycles with the standard three-colour walk: grey marks
		// the walk in progress, black a finished node; hitting grey
		// closes a new cycle.
		var color [ringMaxNodes]uint8
		cycles := 0
		for s := 0; s < n; s++ {
			if color[s] != 0 {
				continue
			}
			u := s
			for u >= 0 && color[u] == 0 {
				color[u] = 1
				u = succ[u]
			}
			if u >= 0 && color[u] == 1 {
				cycles++
				if cycles > 1 {
					return false
				}
			}
			for u = s; u >= 0 && color[u] == 1; u = succ[u] {
				color[u] = 2
			}
		}
		return true
	},
}

// Properties is the default Chord safety-property set.
var Properties = props.Set{
	PropPredSelfImpliesSuccSelf,
	PropNodeOrdering,
	PropNoForeignSelfLoop,
}

// GlobalProperties is the default Chord cross-node property set.
var GlobalProperties = props.GlobalSet{PropGlobalRingConsistency}
