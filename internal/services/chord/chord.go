// Package chord implements the Chord distributed hash table used in the
// CrystalBall paper's evaluation (section 5.2.2): nodes arrange themselves
// in a ring ordered by identifier, each keeping a predecessor pointer and a
// successor list; a stabilize timer periodically repairs the pointers.
//
// The join protocol follows the paper: a joining node queries with its id
// via FindPred, the request routes to the appropriate node P, which replies
// with a FindPredReply carrying its successor list; the joiner sets its
// predecessor to P, adopts the reply's successor list, and sends UpdatePred
// to its new successor.
//
// The three inconsistency bugs CrystalBall found ship enabled by default:
//
//  1. the UpdatePred handler sets an unset predecessor to the message's
//     sender even when the sender is the node itself (the loopback path of
//     Figure 10), violating "if successor is self, so is predecessor";
//  2. the GetPredReply handler merges new successors without re-checking
//     the predecessor ordering constraint (Figure 11);
//  3. the FindPredReply handler adopts the reply's successor list without
//     filtering out the node itself, leaving a self-loop alongside other
//     ring members.
package chord

import (
	"crystalball/internal/sm"
)

// TimerStabilize fires the periodic stabilization round.
const TimerStabilize sm.TimerID = "stabilize"

// TimerJoin retries joining while not joined.
const TimerJoin sm.TimerID = "join-retry"

// Fix flags disabling the seeded bugs.
type Fix uint32

// Fixes for the three seeded Chord bugs.
const (
	// FixSelfPred stops a node from assigning its predecessor pointer
	// to itself while the successor list names other nodes (the paper's
	// suggested correction for the Figure 10 bug).
	FixSelfPred Fix = 1 << iota
	// FixOrdering updates the predecessor after updating the successor
	// list (the paper's correction for the Figure 11 bug).
	FixOrdering
	// FixSelfInSuccs filters the node itself out of adopted successor
	// lists unless it is alone.
	FixSelfInSuccs

	// AllFixes enables every repair.
	AllFixes Fix = 1<<3 - 1
)

// Config parameterises the service.
type Config struct {
	// Bootstrap lists designated members a joiner contacts.
	Bootstrap []sm.NodeID
	// SuccListLen bounds the successor list (default 4).
	SuccListLen int
	// Fixes disables seeded bugs.
	Fixes Fix
	// StabilizeInterval is the stabilize period (default 5 s).
	StabilizeInterval sm.Duration
	// JoinRetryInterval is the join retry period (default 2 s).
	JoinRetryInterval sm.Duration
}

func (c *Config) defaults() {
	if c.SuccListLen == 0 {
		c.SuccListLen = 4
	}
	if c.StabilizeInterval == 0 {
		c.StabilizeInterval = 5 * sm.Second
	}
	if c.JoinRetryInterval == 0 {
		c.JoinRetryInterval = 2 * sm.Second
	}
}

// New returns an sm.Factory producing Chord instances with cfg.
func New(cfg Config) sm.Factory {
	cfg.defaults()
	return func(self sm.NodeID) sm.Service {
		return &Ring{Self: self, Pred: sm.NoNode, cfg: cfg}
	}
}

// Ring is the per-node Chord state machine. Node identifiers double as
// ring positions (the paper's scenarios are likewise expressed directly in
// node ids).
type Ring struct {
	Self    sm.NodeID
	Joined  bool
	Joining bool
	Pred    sm.NodeID
	// Succs is the successor list, nearest first; by convention the
	// node itself appears as the final fallback entry.
	Succs []sm.NodeID

	cfg Config
}

func (r *Ring) fixed(f Fix) bool { return r.cfg.Fixes&f != 0 }

// Between reports whether x lies strictly within the clockwise ring
// interval (a, b).
func Between(x, a, b sm.NodeID) bool {
	if x == a || x == b {
		return false
	}
	if a < b {
		return a < x && x < b
	}
	if a > b {
		return x > a || x < b
	}
	// a == b: the interval covers the whole ring except a itself.
	return x != a
}

// Messages.

// FindPred routes a joiner's query toward its future predecessor.
type FindPred struct{ Origin sm.NodeID }

// MsgType implements sm.Message.
func (FindPred) MsgType() string { return "FindPred" }

// Size implements sm.Message.
func (FindPred) Size() int { return 12 }

// EncodeMsg implements sm.Message.
func (m FindPred) EncodeMsg(e *sm.Encoder) { e.NodeID(m.Origin) }

// FindPredReply answers a FindPred with the predecessor's successor list.
type FindPredReply struct{ Succs []sm.NodeID }

// MsgType implements sm.Message.
func (FindPredReply) MsgType() string { return "FindPredReply" }

// Size implements sm.Message.
func (m FindPredReply) Size() int { return 8 + 4*len(m.Succs) }

// EncodeMsg implements sm.Message.
func (m FindPredReply) EncodeMsg(e *sm.Encoder) { e.NodeSlice(m.Succs) }

// UpdatePred tells the receiver its predecessor may now be the sender.
type UpdatePred struct{}

// MsgType implements sm.Message.
func (UpdatePred) MsgType() string { return "UpdatePred" }

// Size implements sm.Message.
func (UpdatePred) Size() int { return 4 }

// EncodeMsg implements sm.Message.
func (UpdatePred) EncodeMsg(e *sm.Encoder) {}

// GetPred asks the receiver for its predecessor and successor list
// (stabilization).
type GetPred struct{}

// MsgType implements sm.Message.
func (GetPred) MsgType() string { return "GetPred" }

// Size implements sm.Message.
func (GetPred) Size() int { return 4 }

// EncodeMsg implements sm.Message.
func (GetPred) EncodeMsg(e *sm.Encoder) {}

// GetPredReply answers GetPred.
type GetPredReply struct {
	Pred  sm.NodeID
	Succs []sm.NodeID
}

// MsgType implements sm.Message.
func (GetPredReply) MsgType() string { return "GetPredReply" }

// Size implements sm.Message.
func (m GetPredReply) Size() int { return 12 + 4*len(m.Succs) }

// EncodeMsg implements sm.Message.
func (m GetPredReply) EncodeMsg(e *sm.Encoder) { e.NodeID(m.Pred); e.NodeSlice(m.Succs) }

// AppJoin asks the node to join the ring.
type AppJoin struct{}

// CallName implements sm.AppCall.
func (AppJoin) CallName() string { return "AppJoin" }

// EncodeCall implements sm.AppCall.
func (AppJoin) EncodeCall(e *sm.Encoder) {}

// Init implements sm.Service.
func (r *Ring) Init(ctx sm.Context) {}

// HandleApp implements sm.Service.
func (r *Ring) HandleApp(ctx sm.Context, call sm.AppCall) {
	if call.CallName() != "AppJoin" || r.Joined {
		return
	}
	target := r.pickBootstrap(ctx)
	if target == sm.NoNode {
		// Alone: a single-node ring points everywhere at itself.
		r.Joined = true
		r.Pred = r.Self
		r.Succs = []sm.NodeID{r.Self}
		ctx.SetTimer(TimerStabilize, r.cfg.StabilizeInterval)
		return
	}
	r.Joining = true
	ctx.Send(target, FindPred{Origin: r.Self})
	ctx.SetTimer(TimerJoin, r.cfg.JoinRetryInterval)
}

func (r *Ring) pickBootstrap(ctx sm.Context) sm.NodeID {
	var candidates []sm.NodeID
	for _, b := range r.cfg.Bootstrap {
		if b != r.Self {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) == 0 {
		return sm.NoNode
	}
	return candidates[ctx.Rand().Intn(len(candidates))]
}

// HandleTimer implements sm.Service.
func (r *Ring) HandleTimer(ctx sm.Context, t sm.TimerID) {
	switch t {
	case TimerJoin:
		if r.Joined {
			return
		}
		if target := r.pickBootstrap(ctx); target != sm.NoNode {
			r.Joining = true
			ctx.Send(target, FindPred{Origin: r.Self})
			ctx.SetTimer(TimerJoin, r.cfg.JoinRetryInterval)
		} else {
			r.HandleApp(ctx, AppJoin{})
		}
	case TimerStabilize:
		if s := r.firstSucc(); s != sm.NoNode && s != r.Self {
			ctx.Send(s, GetPred{})
		}
		ctx.SetTimer(TimerStabilize, r.cfg.StabilizeInterval)
	}
}

func (r *Ring) firstSucc() sm.NodeID {
	if len(r.Succs) == 0 {
		return sm.NoNode
	}
	return r.Succs[0]
}

// HandleMessage implements sm.Service.
func (r *Ring) HandleMessage(ctx sm.Context, from sm.NodeID, msg sm.Message) {
	switch m := msg.(type) {
	case FindPred:
		r.handleFindPred(ctx, from, m)
	case FindPredReply:
		r.handleFindPredReply(ctx, from, m)
	case UpdatePred:
		r.handleUpdatePred(ctx, from)
	case GetPred:
		ctx.Send(from, GetPredReply{Pred: r.Pred, Succs: sm.CloneNodeSlice(r.Succs)})
	case GetPredReply:
		r.handleGetPredReply(ctx, from, m)
	}
}

func (r *Ring) handleFindPred(ctx sm.Context, from sm.NodeID, m FindPred) {
	if !r.Joined {
		return
	}
	succ := r.firstSucc()
	if succ == sm.NoNode {
		return
	}
	// We are the querier's predecessor when its id falls in (self, succ]
	// — including a successor slot equal to the origin itself, which is
	// exactly the stale-successor situation of Figure 10.
	if succ == r.Self || Between(m.Origin, r.Self, succ) || m.Origin == succ {
		ctx.Send(m.Origin, FindPredReply{Succs: sm.CloneNodeSlice(r.Succs)})
		return
	}
	// Route onward around the ring.
	ctx.Send(succ, m)
}

func (r *Ring) handleFindPredReply(ctx sm.Context, from sm.NodeID, m FindPredReply) {
	if r.Joined && !r.Joining {
		return
	}
	// Paper Figure 10: "node C i) sets its predecessor to A; ii) stores
	// the successor list included in the message as its successor list;
	// and iii) sends an UpdatePred message to A's successor".
	r.Joined = true
	r.Joining = false
	r.Pred = from
	succs := sm.CloneNodeSlice(m.Succs)
	if r.fixed(FixSelfInSuccs) {
		// Bug 3: the adopted list may name this node (its previous
		// incarnation); filter unless it would empty the list.
		succs = filterSelf(succs, r.Self)
	}
	r.Succs = r.capList(append(succs, r.Self))
	ctx.CancelTimer(TimerJoin)
	ctx.SetTimer(TimerStabilize, r.cfg.StabilizeInterval)
	if s := r.firstSucc(); s != sm.NoNode {
		ctx.Send(s, UpdatePred{})
	}
}

func (r *Ring) handleUpdatePred(ctx sm.Context, from sm.NodeID) {
	if !r.Joined {
		return
	}
	// A lone node (successor = self) adopts its first contact as
	// successor too, so a two-node ring can bootstrap.
	if from != r.Self && r.firstSucc() == r.Self {
		r.Succs = r.capList(append([]sm.NodeID{from}, r.Succs...))
	}
	if r.Pred == sm.NoNode {
		// Bug 1 (paper Figure 10): an unset predecessor is assigned
		// the sender — even when the sender is this node itself via
		// the loopback UpdatePred. The paper's correction: "if the
		// successor list includes nodes in addition to itself, avoid
		// assigning the predecessor pointer to itself".
		if from == r.Self && r.fixed(FixSelfPred) && r.hasOtherSuccs() {
			return
		}
		r.Pred = from
		return
	}
	if Between(from, r.Pred, r.Self) {
		r.Pred = from
	}
}

func (r *Ring) hasOtherSuccs() bool {
	for _, s := range r.Succs {
		if s != r.Self {
			return true
		}
	}
	return false
}

func (r *Ring) handleGetPredReply(ctx sm.Context, from sm.NodeID, m GetPredReply) {
	if !r.Joined {
		return
	}
	// A reported predecessor between us and our successor becomes our
	// new immediate successor (classic stabilization)...
	merged := sm.CloneNodeSlice(r.Succs)
	if m.Pred != sm.NoNode && m.Pred != r.Self && Between(m.Pred, r.Self, from) {
		merged = append([]sm.NodeID{m.Pred}, merged...)
	}
	// ... and the peer's successor list backs ours up.
	for _, s := range m.Succs {
		if s != r.Self {
			merged = append(merged, s)
		}
	}
	merged = append(merged, r.Self)
	r.Succs = r.capList(merged)
	if s := r.firstSucc(); s != sm.NoNode && s != r.Self {
		ctx.Send(s, UpdatePred{})
	}
	if r.fixed(FixOrdering) {
		// Bug 2 (paper Figure 11): merging can surface a node that
		// sits between our predecessor and us; the correction updates
		// the predecessor after updating the successor list.
		for _, s := range r.Succs {
			if s == r.Self {
				continue
			}
			if r.Pred == sm.NoNode || Between(s, r.Pred, r.Self) {
				r.Pred = s
			}
		}
	}
}

// capList dedupes (keeping first occurrences) and truncates the successor
// list, always retaining self as the final fallback entry.
func (r *Ring) capList(list []sm.NodeID) []sm.NodeID {
	seen := make(map[sm.NodeID]bool, len(list))
	out := make([]sm.NodeID, 0, r.cfg.SuccListLen)
	for _, s := range list {
		if s == sm.NoNode || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
		if len(out) == r.cfg.SuccListLen {
			break
		}
	}
	if !seen[r.Self] {
		if len(out) == r.cfg.SuccListLen {
			out[len(out)-1] = r.Self
		} else {
			out = append(out, r.Self)
		}
	}
	return out
}

func filterSelf(list []sm.NodeID, self sm.NodeID) []sm.NodeID {
	out := list[:0]
	for _, s := range list {
		if s != self {
			out = append(out, s)
		}
	}
	return out
}

// HandleTransportError implements sm.Service: the paper's scenarios remove
// the dead peer from every internal structure, including the predecessor
// pointer.
func (r *Ring) HandleTransportError(ctx sm.Context, peer sm.NodeID) {
	if r.Pred == peer {
		r.Pred = sm.NoNode
	}
	out := r.Succs[:0]
	for _, s := range r.Succs {
		if s != peer {
			out = append(out, s)
		}
	}
	r.Succs = out
	if !r.Joined {
		ctx.SetTimer(TimerJoin, r.cfg.JoinRetryInterval)
	}
}

// Neighbors implements sm.Service: predecessor plus successor list — the
// paper's "a distributed hash table node keeps track of O(log n) other
// nodes".
func (r *Ring) Neighbors() []sm.NodeID {
	set := make(map[sm.NodeID]bool)
	if r.Pred != sm.NoNode && r.Pred != r.Self {
		set[r.Pred] = true
	}
	for _, s := range r.Succs {
		if s != r.Self {
			set[s] = true
		}
	}
	return sm.SortedNodes(set)
}

// Clone implements sm.Service.
func (r *Ring) Clone() sm.Service {
	return &Ring{
		Self:    r.Self,
		Joined:  r.Joined,
		Joining: r.Joining,
		Pred:    r.Pred,
		Succs:   sm.CloneNodeSlice(r.Succs),
		cfg:     r.cfg,
	}
}

// EncodeState implements sm.Service.
func (r *Ring) EncodeState(e *sm.Encoder) {
	e.NodeID(r.Self)
	e.Bool(r.Joined)
	e.Bool(r.Joining)
	e.NodeID(r.Pred)
	e.NodeSlice(r.Succs)
}

// DecodeState implements sm.Service.
func (r *Ring) DecodeState(d *sm.Decoder) error {
	r.Self = d.NodeID()
	r.Joined = d.Bool()
	r.Joining = d.Bool()
	r.Pred = d.NodeID()
	r.Succs = d.NodeSlice()
	return d.Err()
}

// ServiceName implements sm.Service.
func (r *Ring) ServiceName() string { return "chord" }

// ModelAppCalls implements sm.ModelActions.
func (r *Ring) ModelAppCalls() []sm.AppCall {
	if !r.Joined {
		return []sm.AppCall{AppJoin{}}
	}
	return nil
}
