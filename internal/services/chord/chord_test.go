package chord

import (
	"math/rand"
	"testing"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/runtime"
	"crystalball/internal/sim"
	"crystalball/internal/simnet"
	"crystalball/internal/sm"
)

// testCtx implements sm.Context for handler-level tests.
type testCtx struct {
	self     sm.NodeID
	sends    []sm.MsgEvent
	timerSet map[sm.TimerID]bool
	rng      *rand.Rand
}

func newCtx(self sm.NodeID) *testCtx {
	return &testCtx{self: self, timerSet: map[sm.TimerID]bool{}, rng: rand.New(rand.NewSource(1))}
}

func (c *testCtx) Self() sm.NodeID { return c.self }
func (c *testCtx) Send(to sm.NodeID, msg sm.Message) {
	c.sends = append(c.sends, sm.MsgEvent{From: c.self, To: to, Msg: msg})
}
func (c *testCtx) SetTimer(t sm.TimerID, d sm.Duration) { c.timerSet[t] = true }
func (c *testCtx) CancelTimer(t sm.TimerID)             { delete(c.timerSet, t) }
func (c *testCtx) TimerPending(t sm.TimerID) bool       { return c.timerSet[t] }
func (c *testCtx) Rand() *rand.Rand                     { return c.rng }

func mk(self sm.NodeID, fixes Fix, bootstrap ...sm.NodeID) *Ring {
	return New(Config{Bootstrap: bootstrap, Fixes: fixes})(self).(*Ring)
}

func TestBetween(t *testing.T) {
	cases := []struct {
		x, a, b sm.NodeID
		want    bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false},
		{10, 1, 10, false},
		{15, 1, 10, false},
		{15, 10, 1, true}, // wrap-around
		{0, 10, 1, true},  // wrap-around below
		{5, 10, 1, false}, // inside the excluded arc
		{5, 7, 7, true},   // full-ring interval excludes only a
		{7, 7, 7, false},
	}
	for _, c := range cases {
		if got := Between(c.x, c.a, c.b); got != c.want {
			t.Errorf("Between(%v,%v,%v) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestBug1LoopbackUpdatePredSetsSelf(t *testing.T) {
	// Figure 10's final step: C's predecessor is unset, its successor
	// list names other nodes, and a loopback UpdatePred arrives.
	c := mk(3, 0)
	c.Joined = true
	c.Pred = sm.NoNode
	c.Succs = []sm.NodeID{3, 1} // self-loop plus another member
	ctx := newCtx(3)
	c.handleUpdatePred(ctx, 3)
	if c.Pred != 3 {
		t.Fatal("buggy handler should set pred to self")
	}
	v := props.NewView()
	v.Add(3, c, nil)
	if PropPredSelfImpliesSuccSelf.Check(v) {
		t.Fatal("property should be violated")
	}

	f := mk(3, FixSelfPred)
	f.Joined = true
	f.Pred = sm.NoNode
	f.Succs = []sm.NodeID{3, 1}
	f.handleUpdatePred(ctx, 3)
	if f.Pred == 3 {
		t.Fatal("fixed handler must not set pred to self while others exist")
	}
}

func TestBug2OrderingViolationOnMerge(t *testing.T) {
	// Figure 11: A_{i-1}=2 has pred A_i=3 and succ A_i=3; stabilization
	// returns A_i's succ list containing A_{i-2}=1.
	a := mk(2, 0)
	a.Joined = true
	a.Pred = 3
	a.Succs = []sm.NodeID{3, 2}
	ctx := newCtx(2)
	a.handleGetPredReply(ctx, 3, GetPredReply{Pred: 2, Succs: []sm.NodeID{1, 3}})
	v := props.NewView()
	v.Add(2, a, nil)
	if PropNodeOrdering.Check(v) {
		t.Fatalf("ordering constraint should be violated: pred=%v succs=%v", a.Pred, a.Succs)
	}

	f := mk(2, FixOrdering)
	f.Joined = true
	f.Pred = 3
	f.Succs = []sm.NodeID{3, 2}
	f.handleGetPredReply(ctx, 3, GetPredReply{Pred: 2, Succs: []sm.NodeID{1, 3}})
	v2 := props.NewView()
	v2.Add(2, f, nil)
	if !PropNodeOrdering.Check(v2) {
		t.Fatalf("fixed merge should restore ordering: pred=%v succs=%v", f.Pred, f.Succs)
	}
	if f.Pred != 1 {
		t.Fatalf("fixed merge should adopt 1 as predecessor, got %v", f.Pred)
	}
}

func TestBug3SelfLoopFromAdoptedList(t *testing.T) {
	// A rejoining node receives a FindPredReply whose successor list
	// names the node itself (its previous incarnation).
	c := mk(3, 0)
	c.Joining = true
	ctx := newCtx(3)
	c.handleFindPredReply(ctx, 1, FindPredReply{Succs: []sm.NodeID{3, 5}})
	if c.Succs[0] != 3 {
		t.Fatalf("buggy handler should adopt the self-loop, got %v", c.Succs)
	}
	v := props.NewView()
	v.Add(3, c, nil)
	if PropNoForeignSelfLoop.Check(v) {
		t.Fatal("self-loop property should be violated")
	}

	f := mk(3, FixSelfInSuccs)
	f.Joining = true
	f.handleFindPredReply(ctx, 1, FindPredReply{Succs: []sm.NodeID{3, 5}})
	if f.Succs[0] == 3 {
		t.Fatalf("fixed handler should filter the self entry, got %v", f.Succs)
	}
}

// --- live ring formation ----------------------------------------------------

func buildRing(t *testing.T, seed int64, n int, fixes Fix) (*sim.Simulator, []*runtime.Node) {
	t.Helper()
	s := sim.New(seed)
	net := simnet.New(s, simnet.UniformPath{Latency: 15 * time.Millisecond, BwBps: 1e8})
	ids := make([]sm.NodeID, n)
	for i := range ids {
		ids[i] = sm.NodeID(i + 1)
	}
	factory := New(Config{Bootstrap: ids[:1], Fixes: fixes})
	nodes := make([]*runtime.Node, n)
	for i, id := range ids {
		nodes[i] = runtime.NewNode(s, net, id, factory)
	}
	// Stagger joins so each node finds a stable ring to join.
	for i, node := range nodes {
		node := node
		s.After(time.Duration(i)*700*time.Millisecond, func() { node.App(AppJoin{}) })
	}
	return s, nodes
}

func TestLiveRingForms(t *testing.T) {
	const n = 6
	s, nodes := buildRing(t, 1, n, AllFixes)
	s.RunFor(60 * time.Second)
	rings := make(map[sm.NodeID]*Ring)
	for _, node := range nodes {
		r := node.Service().(*Ring)
		if !r.Joined {
			t.Fatalf("node %v did not join", r.Self)
		}
		rings[node.ID] = r
	}
	// Following first successors from node 1 must traverse the whole
	// ring and return to 1 in id order.
	cur := sm.NodeID(1)
	visited := map[sm.NodeID]bool{}
	for i := 0; i < n; i++ {
		if visited[cur] {
			t.Fatalf("successor chain loops early at %v (visited %v)", cur, visited)
		}
		visited[cur] = true
		next := rings[cur].firstSucc()
		want := cur%sm.NodeID(n) + 1
		if next != want {
			t.Fatalf("succ(%v) = %v, want %v", cur, next, want)
		}
		cur = next
	}
	if cur != 1 {
		t.Fatalf("ring does not close: ended at %v", cur)
	}
	// Predecessors must be consistent too.
	for id, r := range rings {
		want := id - 1
		if want == 0 {
			want = n
		}
		if r.Pred != want {
			t.Fatalf("pred(%v) = %v, want %v", id, r.Pred, want)
		}
	}
}

func TestLiveRingSatisfiesProperties(t *testing.T) {
	s, nodes := buildRing(t, 2, 5, AllFixes)
	for i := 0; i < 60; i++ {
		s.RunFor(time.Second)
		v := props.NewView()
		for _, node := range nodes {
			svc, timers := node.View()
			v.Add(node.ID, svc, timers)
		}
		if violated := Properties.Check(v); len(violated) != 0 {
			t.Fatalf("fixed ring violated %v at t=%ds", violated, i)
		}
	}
}

// --- the paper's Figure 10 scenario through the model checker ---------------

func TestConsequencePredictionFindsFigure10(t *testing.T) {
	// Start state: the live prefix already happened — B (node 2) reset
	// and A (node 1) removed it, leaving A's successor pointing at C
	// (node 3); a further member D (node 5) completes the ring so that
	// C's post-error successor list still names other nodes.
	// Consequence prediction must discover C's reset + rejoin sequence
	// ending with pred(C)=C while other successors exist.
	factory := New(Config{Bootstrap: []sm.NodeID{1}})
	a := factory(1).(*Ring)
	a.Joined = true
	a.Pred = 5
	a.Succs = []sm.NodeID{3, 5, 1}

	c := factory(3).(*Ring)
	c.Joined = true
	c.Pred = 1
	c.Succs = []sm.NodeID{5, 1, 3}

	d := factory(5).(*Ring)
	d.Joined = true
	d.Pred = 3
	d.Succs = []sm.NodeID{1, 3, 5}

	g := mc.NewGState()
	g.AddNode(1, a, map[sm.TimerID]bool{TimerStabilize: true})
	g.AddNode(3, c, map[sm.TimerID]bool{TimerStabilize: true})
	g.AddNode(5, d, map[sm.TimerID]bool{TimerStabilize: true})

	s := mc.NewSearch(mc.Config{
		Props:             props.Set{PropPredSelfImpliesSuccSelf},
		Factory:           factory,
		Mode:              mc.Consequence,
		ExploreResets:     true,
		ExploreConnBreaks: true,
		MaxResetsPerPath:  1,
		MaxStates:         150000,
		MaxViolations:     1,
	})
	res := s.Run(g)
	if len(res.Violations) == 0 {
		t.Fatalf("consequence prediction missed the Figure 10 inconsistency (%d states)", res.StatesExplored)
	}
	sawReset := false
	for _, ev := range res.Violations[0].Path {
		if r, ok := ev.(sm.ResetEvent); ok && r.At == 3 {
			sawReset = true
		}
	}
	if !sawReset {
		t.Errorf("path lacks C's reset: %v", describe(res.Violations[0].Path))
	}
}

func describe(path []sm.Event) []string {
	out := make([]string, len(path))
	for i, ev := range path {
		out[i] = ev.Describe()
	}
	return out
}

// --- encode/clone -----------------------------------------------------------

func TestCloneIndependence(t *testing.T) {
	a := mk(1, 0)
	a.Succs = []sm.NodeID{2, 3}
	b := a.Clone().(*Ring)
	b.Succs[0] = 9
	if a.Succs[0] != 2 {
		t.Fatal("clone shares successor list")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	a := mk(7, FixOrdering, 1)
	a.Joined = true
	a.Pred = 5
	a.Succs = []sm.NodeID{8, 9, 7}
	data := sm.EncodeFullState(a, map[sm.TimerID]bool{TimerStabilize: true})
	factory := New(Config{Bootstrap: []sm.NodeID{1}, Fixes: FixOrdering})
	svc, timers, err := sm.DecodeFullState(factory, 7, data)
	if err != nil {
		t.Fatal(err)
	}
	b := svc.(*Ring)
	if b.Pred != 5 || len(b.Succs) != 3 || b.Succs[0] != 8 || !b.Joined {
		t.Fatalf("round trip lost state: %+v", b)
	}
	if !timers[TimerStabilize] {
		t.Fatal("timer set lost")
	}
	if sm.HashService(a) != sm.HashService(b) {
		t.Fatal("hash mismatch")
	}
}

func TestCapListDedupes(t *testing.T) {
	r := mk(5, 0)
	got := r.capList([]sm.NodeID{7, 7, 8, 5, 9, 10})
	if len(got) != 4 {
		t.Fatalf("capList length = %d, want 4 (SuccListLen)", len(got))
	}
	if got[0] != 7 || got[1] != 8 || got[2] != 5 {
		t.Fatalf("capList order wrong: %v", got)
	}
	// Self retained as fallback.
	found := false
	for _, s := range got {
		if s == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("self missing from capped list")
	}
}
