package chord

import (
	"testing"

	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// ringView builds a view of joined rings from a node -> successor-list
// table; a nil list marks a node that is present but not joined.
func ringView(succs map[sm.NodeID][]sm.NodeID) props.GlobalView {
	v := props.NewView()
	for id, ss := range succs {
		r := mk(id, AllFixes, 1)
		if ss != nil {
			r.Joined = true
			r.Succs = sm.CloneNodeSlice(ss)
		}
		v.Add(id, r, nil)
	}
	return props.Global(v)
}

func TestGlobalRingConsistency(t *testing.T) {
	cases := []struct {
		label string
		succs map[sm.NodeID][]sm.NodeID
		want  bool
	}{
		{
			label: "single three-ring",
			succs: map[sm.NodeID][]sm.NodeID{1: {2, 3, 1}, 2: {3, 1, 2}, 3: {1, 2, 3}},
			want:  true,
		},
		{
			label: "lone bootstrap plus joiner tail",
			succs: map[sm.NodeID][]sm.NodeID{1: {1}, 2: {1, 2}},
			want:  true,
		},
		{
			label: "two disjoint rings",
			succs: map[sm.NodeID][]sm.NodeID{1: {2, 1}, 2: {1, 2}, 3: {4, 3}, 4: {3, 4}},
			want:  false,
		},
		{
			label: "self-loop beside a ring",
			succs: map[sm.NodeID][]sm.NodeID{1: {1}, 2: {3, 2}, 3: {2, 3}},
			want:  false,
		},
		{
			label: "not-joined node breaks no cycle",
			succs: map[sm.NodeID][]sm.NodeID{1: {2, 1}, 2: {1, 2}, 3: nil},
			want:  true,
		},
		{
			label: "edge to absent node is terminal",
			succs: map[sm.NodeID][]sm.NodeID{1: {9, 1}, 2: {1, 2}},
			want:  true,
		},
		{
			label: "tails converging on one ring",
			succs: map[sm.NodeID][]sm.NodeID{1: {2, 1}, 2: {1, 2}, 3: {1, 3}, 4: {2, 4}},
			want:  true,
		},
		{
			label: "empty view",
			succs: map[sm.NodeID][]sm.NodeID{},
			want:  true,
		},
	}
	for _, c := range cases {
		if got := PropGlobalRingConsistency.Check(ringView(c.succs)); got != c.want {
			t.Errorf("%s: Check = %v, want %v", c.label, got, c.want)
		}
	}
}
