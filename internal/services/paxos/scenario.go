package paxos

import (
	"fmt"

	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	"crystalball/internal/sm"
)

// The paxos scenario: single-decree Paxos with the paper's two injected
// bugs. The default variant injects both; "bug1" (Accept built from the
// last Promise) and "bug2" (promises not persisted across resets) inject
// exactly one, which is how the Figure 14 experiment sweeps them.
func init() {
	scenario.Register(scenario.Scenario{
		Name:        "paxos",
		Description: "single-decree Paxos, variants bug1|bug2 (paper §5.4.2)",
		New: func(ids []sm.NodeID, o scenario.Options) (sm.Factory, error) {
			bug1, bug2 := !o.Fixed, !o.Fixed
			switch o.Variant {
			case "":
			case "bug1":
				bug2 = false
			case "bug2":
				bug1 = false
			default:
				return nil, fmt.Errorf("unknown variant %q (paxos: bug1|bug2)", o.Variant)
			}
			return New(Config{Members: ids, Bug1: bug1, Bug2: bug2}), nil
		},
		Props:       Properties,
		GlobalProps: GlobalProperties,
		Check:       scenario.Tuning{Nodes: 3},
		Live:        scenario.Tuning{Nodes: 3},
		// Bug 2 is a lost-promise bug: it only materialises when the
		// checker explores node resets.
		Faults:    scenario.Faults{ExploreResets: true},
		Reduction: true,
		CheckerPolicy: mc.PolicySpec{
			Kind: mc.PolicyFixed,
			Base: mc.Budget{States: 15000},
		},
	})
}
