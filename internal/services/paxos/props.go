package paxos

import (
	"crystalball/internal/props"
)

// PropAtMostOneChosen is the original Paxos safety property installed in
// the paper's steering experiment: "at most one value can be chosen, across
// all nodes".
var PropAtMostOneChosen = props.Property{
	Name: "AtMostOneValueChosen",
	Check: func(v *props.View) bool {
		var chosen []int64
		for _, id := range v.IDs() {
			p, _ := v.Get(id).Svc.(*Paxos)
			if p == nil {
				continue
			}
			for _, val := range p.ChosenVals {
				found := false
				for _, c := range chosen {
					if c == val {
						found = true
						break
					}
				}
				if !found {
					chosen = append(chosen, val)
				}
			}
		}
		return len(chosen) <= 1
	},
}

// PropCrossNodeAgreement is the agreement half of PropAtMostOneChosen
// restated as a cross-node property: no two distinct nodes may have
// chosen different values. Every violation of it is also a violation of
// PropAtMostOneChosen (two nodes disagreeing means two values exist), but
// not conversely — a single node with two chosen values is a local
// inconsistency this property does not judge. It exercises the global
// property engine on a service whose bugs predate it.
var PropCrossNodeAgreement = props.GlobalProperty{
	Name: "CrossNodeAgreement",
	Check: func(v props.GlobalView) bool {
		ids := v.IDs()
		for i, a := range ids {
			pa, _ := v.Get(a).Svc.(*Paxos)
			if pa == nil || len(pa.ChosenVals) == 0 {
				continue
			}
			for _, b := range ids[i+1:] {
				pb, _ := v.Get(b).Svc.(*Paxos)
				if pb == nil {
					continue
				}
				for _, x := range pa.ChosenVals {
					for _, y := range pb.ChosenVals {
						if x != y {
							return false
						}
					}
				}
			}
		}
		return true
	},
}

// Properties is the default Paxos property set.
var Properties = props.Set{PropAtMostOneChosen}

// GlobalProperties is the default Paxos cross-node property set.
var GlobalProperties = props.GlobalSet{PropCrossNodeAgreement}
