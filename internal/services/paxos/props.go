package paxos

import (
	"crystalball/internal/props"
)

// PropAtMostOneChosen is the original Paxos safety property installed in
// the paper's steering experiment: "at most one value can be chosen, across
// all nodes".
var PropAtMostOneChosen = props.Property{
	Name: "AtMostOneValueChosen",
	Check: func(v *props.View) bool {
		var chosen []int64
		for _, id := range v.IDs() {
			p, _ := v.Get(id).Svc.(*Paxos)
			if p == nil {
				continue
			}
			for _, val := range p.ChosenVals {
				found := false
				for _, c := range chosen {
					if c == val {
						found = true
						break
					}
				}
				if !found {
					chosen = append(chosen, val)
				}
			}
		}
		return len(chosen) <= 1
	},
}

// Properties is the default Paxos property set.
var Properties = props.Set{PropAtMostOneChosen}
