// Package paxos implements single-decree Paxos as evaluated in the
// CrystalBall paper (section 5.4.2): a minimal implementation where every
// node plays all three roles (proposer, acceptor, learner) and the five
// protocol steps follow the paper's footnote:
//
//  1. a leader sends Prepare messages carrying a unique round number;
//  2. an acceptor whose last promised round is smaller responds with a
//     Promise carrying its last accepted value, if any;
//  3. on a majority of Promises the leader broadcasts an Accept request
//     with the value of the highest-round Promise (or its own value if no
//     Promise reported one);
//  4. an acceptor that has not promised a higher round accepts by
//     broadcasting a Learn message;
//  5. a learner that receives Learn messages from a majority considers the
//     value chosen.
//
// Two bugs from the paper can be injected:
//
//   - Bug1 (from the WiDS-checker study): step 3 uses the value of the
//     *last received* Promise rather than the highest-round one;
//   - Bug2 (from "Paxos Made Live"): the acceptor's promise and accepted
//     value are not written to disk, so they vanish across a reset.
//
// The safety property is the original Paxos property: at most one value may
// be chosen, across all nodes.
package paxos

import (
	"sort"

	"crystalball/internal/sm"
)

// Config parameterises the service.
type Config struct {
	// Members lists all participants (every node plays every role).
	Members []sm.NodeID
	// Bug1 makes the leader use the last Promise's value.
	Bug1 bool
	// Bug2 stops the acceptor from persisting its promise.
	Bug2 bool
}

// New returns an sm.Factory producing Paxos instances.
func New(cfg Config) sm.Factory {
	members := append([]sm.NodeID(nil), cfg.Members...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	cfg.Members = members
	return func(self sm.NodeID) sm.Service {
		return &Paxos{
			Self:   self,
			Learns: make(map[uint64]map[sm.NodeID]int64),
			cfg:    cfg,
		}
	}
}

// promiseInfo records one received Promise in arrival order (arrival order
// is what bug 1 depends on).
type promiseInfo struct {
	From          sm.NodeID
	AcceptedRound uint64
	AcceptedVal   int64
	HasAccepted   bool
}

// Paxos is the per-node state machine.
type Paxos struct {
	Self sm.NodeID

	// Acceptor state (the part bug 2 fails to persist).
	PromisedRound uint64
	AcceptedRound uint64
	AcceptedVal   int64
	HasAccepted   bool

	// Proposer state.
	CurRound   uint64
	Proposing  bool
	ProposeVal int64
	AcceptSent bool
	Promises   []promiseInfo

	// Learner state: round -> sender -> learned value.
	Learns map[uint64]map[sm.NodeID]int64
	// ChosenVals lists the distinct values this node has observed chosen
	// (more than one entry is itself a local violation).
	ChosenVals []int64

	cfg Config
}

// Majority returns the quorum size.
func (p *Paxos) Majority() int { return len(p.cfg.Members)/2 + 1 }

func (p *Paxos) memberIndex() uint64 {
	for i, m := range p.cfg.Members {
		if m == p.Self {
			return uint64(i)
		}
	}
	return 0
}

// NextRound returns a fresh round number unique to this proposer and larger
// than anything the node has seen.
func (p *Paxos) NextRound() uint64 {
	n := uint64(len(p.cfg.Members))
	if n == 0 {
		n = 1
	}
	base := p.PromisedRound
	if p.CurRound > base {
		base = p.CurRound
	}
	return (base/n+1)*n + p.memberIndex()
}

// Messages.

// Prepare is step 1.
type Prepare struct{ Round uint64 }

// MsgType implements sm.Message.
func (Prepare) MsgType() string { return "Prepare" }

// Size implements sm.Message.
func (Prepare) Size() int { return 12 }

// EncodeMsg implements sm.Message.
func (m Prepare) EncodeMsg(e *sm.Encoder) { e.Uint64(m.Round) }

// Promise is step 2.
type Promise struct {
	Round         uint64
	AcceptedRound uint64
	AcceptedVal   int64
	HasAccepted   bool
}

// MsgType implements sm.Message.
func (Promise) MsgType() string { return "Promise" }

// Size implements sm.Message.
func (Promise) Size() int { return 25 }

// EncodeMsg implements sm.Message.
func (m Promise) EncodeMsg(e *sm.Encoder) {
	e.Uint64(m.Round)
	e.Uint64(m.AcceptedRound)
	e.Int64(m.AcceptedVal)
	e.Bool(m.HasAccepted)
}

// Accept is step 3.
type Accept struct {
	Round uint64
	Val   int64
}

// MsgType implements sm.Message.
func (Accept) MsgType() string { return "Accept" }

// Size implements sm.Message.
func (Accept) Size() int { return 16 }

// EncodeMsg implements sm.Message.
func (m Accept) EncodeMsg(e *sm.Encoder) { e.Uint64(m.Round); e.Int64(m.Val) }

// Learn is step 4.
type Learn struct {
	Round uint64
	Val   int64
}

// MsgType implements sm.Message.
func (Learn) MsgType() string { return "Learn" }

// Size implements sm.Message.
func (Learn) Size() int { return 16 }

// EncodeMsg implements sm.Message.
func (m Learn) EncodeMsg(e *sm.Encoder) { e.Uint64(m.Round); e.Int64(m.Val) }

// Propose is the application call starting a proposal. Round 0 lets the
// node pick the next free round.
type Propose struct {
	Val   int64
	Round uint64
}

// CallName implements sm.AppCall.
func (Propose) CallName() string { return "Propose" }

// EncodeCall implements sm.AppCall.
func (m Propose) EncodeCall(e *sm.Encoder) { e.Int64(m.Val); e.Uint64(m.Round) }

// Init implements sm.Service.
func (p *Paxos) Init(ctx sm.Context) {}

// HandleApp implements sm.Service.
func (p *Paxos) HandleApp(ctx sm.Context, call sm.AppCall) {
	m, ok := call.(Propose)
	if !ok {
		return
	}
	round := m.Round
	if round == 0 {
		round = p.NextRound()
	}
	p.CurRound = round
	p.ProposeVal = m.Val
	p.Proposing = true
	p.AcceptSent = false
	p.Promises = nil
	for _, n := range p.cfg.Members {
		ctx.Send(n, Prepare{Round: round})
	}
}

// HandleMessage implements sm.Service.
func (p *Paxos) HandleMessage(ctx sm.Context, from sm.NodeID, msg sm.Message) {
	switch m := msg.(type) {
	case Prepare:
		p.handlePrepare(ctx, from, m)
	case Promise:
		p.handlePromise(ctx, from, m)
	case Accept:
		p.handleAccept(ctx, from, m)
	case Learn:
		p.handleLearn(ctx, from, m)
	}
}

func (p *Paxos) handlePrepare(ctx sm.Context, from sm.NodeID, m Prepare) {
	if m.Round <= p.PromisedRound {
		return // already promised a round at least this high
	}
	p.PromisedRound = m.Round
	ctx.Send(from, Promise{
		Round:         m.Round,
		AcceptedRound: p.AcceptedRound,
		AcceptedVal:   p.AcceptedVal,
		HasAccepted:   p.HasAccepted,
	})
}

func (p *Paxos) handlePromise(ctx sm.Context, from sm.NodeID, m Promise) {
	if !p.Proposing || m.Round != p.CurRound || p.AcceptSent {
		return
	}
	for _, pi := range p.Promises {
		if pi.From == from {
			return // duplicate
		}
	}
	p.Promises = append(p.Promises, promiseInfo{
		From:          from,
		AcceptedRound: m.AcceptedRound,
		AcceptedVal:   m.AcceptedVal,
		HasAccepted:   m.HasAccepted,
	})
	if len(p.Promises) < p.Majority() {
		return
	}
	// Step 3: pick the value for the Accept request.
	val := p.ProposeVal
	if p.cfg.Bug1 {
		// Bug 1: "using the submitted value from the last Promise
		// message instead of the Promise message with highest round
		// number". A last promise with no accepted value leaves the
		// leader free to push its own value even when an earlier
		// promise reported one.
		last := p.Promises[len(p.Promises)-1]
		if last.HasAccepted {
			val = last.AcceptedVal
		}
	} else {
		var bestRound uint64
		has := false
		for _, pi := range p.Promises {
			if pi.HasAccepted && (!has || pi.AcceptedRound > bestRound) {
				has = true
				bestRound = pi.AcceptedRound
				val = pi.AcceptedVal
			}
		}
	}
	p.AcceptSent = true
	for _, n := range p.cfg.Members {
		ctx.Send(n, Accept{Round: p.CurRound, Val: val})
	}
}

func (p *Paxos) handleAccept(ctx sm.Context, from sm.NodeID, m Accept) {
	if m.Round < p.PromisedRound {
		return // promised a higher round in the meanwhile
	}
	p.PromisedRound = m.Round
	p.AcceptedRound = m.Round
	p.AcceptedVal = m.Val
	p.HasAccepted = true
	for _, n := range p.cfg.Members {
		ctx.Send(n, Learn{Round: m.Round, Val: m.Val})
	}
}

func (p *Paxos) handleLearn(ctx sm.Context, from sm.NodeID, m Learn) {
	senders := p.Learns[m.Round]
	if senders == nil {
		senders = make(map[sm.NodeID]int64)
		p.Learns[m.Round] = senders
	}
	senders[from] = m.Val
	count := 0
	for _, v := range senders {
		if v == m.Val {
			count++
		}
	}
	if count >= p.Majority() {
		for _, v := range p.ChosenVals {
			if v == m.Val {
				return
			}
		}
		p.ChosenVals = append(p.ChosenVals, m.Val)
	}
}

// HandleTimer implements sm.Service (Paxos proposals are driven by the
// application in this minimal implementation).
func (p *Paxos) HandleTimer(ctx sm.Context, t sm.TimerID) {}

// HandleTransportError implements sm.Service: Paxos tolerates message loss
// natively; nothing to clean up.
func (p *Paxos) HandleTransportError(ctx sm.Context, peer sm.NodeID) {}

// Neighbors implements sm.Service: the full member list — consensus
// properties span every participant.
func (p *Paxos) Neighbors() []sm.NodeID {
	var out []sm.NodeID
	for _, m := range p.cfg.Members {
		if m != p.Self {
			out = append(out, m)
		}
	}
	return out
}

// StableBytes implements sm.StableStore: a correct acceptor persists its
// promise and accepted value; with Bug2 nothing reaches the disk.
func (p *Paxos) StableBytes() []byte {
	if p.cfg.Bug2 {
		return nil
	}
	e := sm.NewEncoder()
	e.Uint64(p.PromisedRound)
	e.Uint64(p.AcceptedRound)
	e.Int64(p.AcceptedVal)
	e.Bool(p.HasAccepted)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// RestoreStable implements sm.StableStore.
func (p *Paxos) RestoreStable(data []byte) {
	d := sm.NewDecoder(data)
	p.PromisedRound = d.Uint64()
	p.AcceptedRound = d.Uint64()
	p.AcceptedVal = d.Int64()
	p.HasAccepted = d.Bool()
}

// Clone implements sm.Service.
func (p *Paxos) Clone() sm.Service {
	learns := make(map[uint64]map[sm.NodeID]int64, len(p.Learns))
	for r, senders := range p.Learns {
		cp := make(map[sm.NodeID]int64, len(senders))
		for n, v := range senders {
			cp[n] = v
		}
		learns[r] = cp
	}
	return &Paxos{
		Self:          p.Self,
		PromisedRound: p.PromisedRound,
		AcceptedRound: p.AcceptedRound,
		AcceptedVal:   p.AcceptedVal,
		HasAccepted:   p.HasAccepted,
		CurRound:      p.CurRound,
		Proposing:     p.Proposing,
		ProposeVal:    p.ProposeVal,
		AcceptSent:    p.AcceptSent,
		Promises:      append([]promiseInfo(nil), p.Promises...),
		Learns:        learns,
		ChosenVals:    append([]int64(nil), p.ChosenVals...),
		cfg:           p.cfg,
	}
}

// EncodeState implements sm.Service.
func (p *Paxos) EncodeState(e *sm.Encoder) {
	e.NodeID(p.Self)
	e.Uint64(p.PromisedRound)
	e.Uint64(p.AcceptedRound)
	e.Int64(p.AcceptedVal)
	e.Bool(p.HasAccepted)
	e.Uint64(p.CurRound)
	e.Bool(p.Proposing)
	e.Int64(p.ProposeVal)
	e.Bool(p.AcceptSent)
	e.Uint32(uint32(len(p.Promises)))
	for _, pi := range p.Promises {
		e.NodeID(pi.From)
		e.Uint64(pi.AcceptedRound)
		e.Int64(pi.AcceptedVal)
		e.Bool(pi.HasAccepted)
	}
	rounds := make([]uint64, 0, len(p.Learns))
	for r := range p.Learns {
		rounds = append(rounds, r)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	e.Uint32(uint32(len(rounds)))
	for _, r := range rounds {
		e.Uint64(r)
		senders := p.Learns[r]
		ids := make([]sm.NodeID, 0, len(senders))
		for n := range senders {
			ids = append(ids, n)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		e.Uint32(uint32(len(ids)))
		for _, n := range ids {
			e.NodeID(n)
			e.Int64(senders[n])
		}
	}
	e.Uint32(uint32(len(p.ChosenVals)))
	for _, v := range p.ChosenVals {
		e.Int64(v)
	}
}

// DecodeState implements sm.Service.
func (p *Paxos) DecodeState(d *sm.Decoder) error {
	p.Self = d.NodeID()
	p.PromisedRound = d.Uint64()
	p.AcceptedRound = d.Uint64()
	p.AcceptedVal = d.Int64()
	p.HasAccepted = d.Bool()
	p.CurRound = d.Uint64()
	p.Proposing = d.Bool()
	p.ProposeVal = d.Int64()
	p.AcceptSent = d.Bool()
	n := int(d.Uint32())
	p.Promises = nil
	for i := 0; i < n && d.Err() == nil; i++ {
		p.Promises = append(p.Promises, promiseInfo{
			From:          d.NodeID(),
			AcceptedRound: d.Uint64(),
			AcceptedVal:   d.Int64(),
			HasAccepted:   d.Bool(),
		})
	}
	nr := int(d.Uint32())
	p.Learns = make(map[uint64]map[sm.NodeID]int64, nr)
	for i := 0; i < nr && d.Err() == nil; i++ {
		r := d.Uint64()
		ns := int(d.Uint32())
		senders := make(map[sm.NodeID]int64, ns)
		for j := 0; j < ns && d.Err() == nil; j++ {
			id := d.NodeID()
			senders[id] = d.Int64()
		}
		p.Learns[r] = senders
	}
	nc := int(d.Uint32())
	p.ChosenVals = nil
	for i := 0; i < nc && d.Err() == nil; i++ {
		p.ChosenVals = append(p.ChosenVals, d.Int64())
	}
	return d.Err()
}

// ServiceName implements sm.Service.
func (p *Paxos) ServiceName() string { return "paxos" }

// ModelAppCalls implements sm.ModelActions: any node that is not already
// driving a proposal may become the next leader (the paper's Figure 13 has
// B — a round-1 participant — propose round 2), so the checker explores a
// proposal from it with a value derived from its identity.
func (p *Paxos) ModelAppCalls() []sm.AppCall {
	if p.Proposing || p.AcceptSent {
		return nil
	}
	return []sm.AppCall{Propose{Val: int64(p.Self)}}
}
