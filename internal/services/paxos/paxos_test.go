package paxos

import (
	"testing"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/runtime"
	"crystalball/internal/sim"
	"crystalball/internal/simnet"
	"crystalball/internal/sm"
)

var members = []sm.NodeID{1, 2, 3}

func deploy(t *testing.T, seed int64, cfg Config) (*sim.Simulator, *simnet.Network, []*runtime.Node) {
	t.Helper()
	cfg.Members = members
	s := sim.New(seed)
	net := simnet.New(s, simnet.UniformPath{Latency: 10 * time.Millisecond, BwBps: 1e9})
	factory := New(cfg)
	nodes := make([]*runtime.Node, len(members))
	for i, id := range members {
		nodes[i] = runtime.NewNode(s, net, id, factory)
	}
	return s, net, nodes
}

func chosenValues(nodes []*runtime.Node) map[int64]bool {
	out := map[int64]bool{}
	for _, n := range nodes {
		for _, v := range n.Service().(*Paxos).ChosenVals {
			out[v] = true
		}
	}
	return out
}

func TestBasicConsensus(t *testing.T) {
	s, _, nodes := deploy(t, 1, Config{})
	nodes[0].App(Propose{Val: 42})
	s.RunFor(time.Second)
	vals := chosenValues(nodes)
	if len(vals) != 1 || !vals[42] {
		t.Fatalf("chosen = %v, want {42}", vals)
	}
	for _, n := range nodes {
		p := n.Service().(*Paxos)
		if len(p.ChosenVals) != 1 {
			t.Fatalf("node %v chose %v", p.Self, p.ChosenVals)
		}
	}
}

func TestCompetingProposalsConverge(t *testing.T) {
	s, _, nodes := deploy(t, 2, Config{})
	nodes[0].App(Propose{Val: 10})
	s.RunFor(500 * time.Millisecond)
	nodes[2].App(Propose{Val: 30})
	s.RunFor(2 * time.Second)
	vals := chosenValues(nodes)
	if len(vals) != 1 {
		t.Fatalf("correct Paxos chose %d values: %v", len(vals), vals)
	}
	// The second round must re-propose the already-accepted 10.
	if !vals[10] {
		t.Fatalf("round 2 overrode the accepted value: %v", vals)
	}
}

// stageFigure13 drives the paper's Figure 13 schedule: round 1 with C
// disconnected (A proposes 0, chosen by {A, B}), then round 2 with A
// disconnected and B proposing 1. B's own loopback Promise (carrying the
// accepted 0) arrives before C's remote, valueless Promise; the bug 1
// leader takes its value from the *last* Promise and pushes 1. resetB
// additionally resets node B between rounds (the bug 2 trigger: B's promise
// was never written to disk, so even a correct value selection has nothing
// to recover).
func stageFigure13(s *sim.Simulator, net *simnet.Network, nodes []*runtime.Node, gap time.Duration, resetB bool) {
	a, b, c := nodes[0], nodes[1], nodes[2]
	_ = c
	net.PartitionNode(c.ID, true)
	a.App(Propose{Val: 0})
	s.RunFor(time.Second)
	net.PartitionNode(c.ID, false)
	if resetB {
		nodes[1].Reset(true)
	}
	s.RunFor(gap)
	net.PartitionNode(a.ID, true)
	b.App(Propose{Val: 1})
	s.RunFor(2 * time.Second)
	net.PartitionNode(a.ID, false)
	s.RunFor(time.Second)
}

func TestBug1ViolatesSafety(t *testing.T) {
	s, net, nodes := deploy(t, 3, Config{Bug1: true})
	stageFigure13(s, net, nodes, time.Second, false)
	vals := chosenValues(nodes)
	if len(vals) < 2 {
		t.Fatalf("bug1 scenario should choose two values, got %v", vals)
	}
	v := props.NewView()
	for _, n := range nodes {
		svc, timers := n.View()
		v.Add(n.ID, svc, timers)
	}
	if PropAtMostOneChosen.Check(v) {
		t.Fatal("property should be violated")
	}
}

func TestBug1FixedIsSafe(t *testing.T) {
	s, net, nodes := deploy(t, 3, Config{})
	stageFigure13(s, net, nodes, time.Second, false)
	vals := chosenValues(nodes)
	if len(vals) != 1 || !vals[0] {
		t.Fatalf("correct Paxos should re-propose 0, chose %v", vals)
	}
}

func TestBug2ViolatesSafetyAfterReset(t *testing.T) {
	s, net, nodes := deploy(t, 4, Config{Bug2: true})
	stageFigure13(s, net, nodes, time.Second, true)
	vals := chosenValues(nodes)
	if len(vals) < 2 {
		t.Fatalf("bug2 scenario should choose two values, got %v", vals)
	}
}

func TestBug2FixedSurvivesReset(t *testing.T) {
	s, net, nodes := deploy(t, 5, Config{})
	stageFigure13(s, net, nodes, time.Second, true)
	vals := chosenValues(nodes)
	if len(vals) != 1 || !vals[0] {
		t.Fatalf("persistent promises should keep the value at 0, chose %v", vals)
	}
}

func TestStableStorePersistsPromise(t *testing.T) {
	factory := New(Config{Members: members})
	p := factory(2).(*Paxos)
	p.PromisedRound = 7
	p.AcceptedRound = 7
	p.AcceptedVal = 99
	p.HasAccepted = true
	data := p.StableBytes()
	if data == nil {
		t.Fatal("correct acceptor must persist")
	}
	fresh := factory(2).(*Paxos)
	fresh.RestoreStable(data)
	if fresh.PromisedRound != 7 || !fresh.HasAccepted || fresh.AcceptedVal != 99 {
		t.Fatalf("restore lost state: %+v", fresh)
	}

	buggy := New(Config{Members: members, Bug2: true})(2).(*Paxos)
	buggy.PromisedRound = 7
	if buggy.StableBytes() != nil {
		t.Fatal("bug2 acceptor must not persist")
	}
}

func TestNextRoundUniquePerProposer(t *testing.T) {
	factory := New(Config{Members: members})
	seen := map[uint64]bool{}
	for _, id := range members {
		p := factory(id).(*Paxos)
		r := p.NextRound()
		if seen[r] {
			t.Fatalf("round %d issued twice", r)
		}
		seen[r] = true
	}
	// Rounds advance past anything promised.
	p := factory(1).(*Paxos)
	p.PromisedRound = 10
	if r := p.NextRound(); r <= 10 {
		t.Fatalf("NextRound() = %d, want > 10", r)
	}
}

// TestMCPredictsBug1Violation reproduces the steering setup: the checker
// starts from the post-round-1 snapshot and must predict that a second
// round can choose a different value.
func TestMCPredictsBug1Violation(t *testing.T) {
	factory := New(Config{Members: members, Bug1: true})
	start := postRound1State(t, factory)
	s := mc.NewSearch(mc.Config{
		Props:         Properties,
		Factory:       factory,
		Mode:          mc.Consequence,
		MaxStates:     120000,
		MaxViolations: 1,
	})
	res := s.Run(start)
	if len(res.Violations) == 0 {
		t.Fatalf("checker missed the bug1 violation (%d states)", res.StatesExplored)
	}
}

// TestMCDoesNotFlagCorrectPaxos: with both bugs fixed the same exploration
// finds no violation (no false positives).
func TestMCDoesNotFlagCorrectPaxos(t *testing.T) {
	factory := New(Config{Members: members})
	start := postRound1State(t, factory)
	s := mc.NewSearch(mc.Config{
		Props:         Properties,
		Factory:       factory,
		Mode:          mc.Consequence,
		MaxStates:     20000,
		MaxViolations: 1,
	})
	res := s.Run(start)
	if len(res.Violations) != 0 {
		t.Fatalf("false positive on correct Paxos: %v", res.Violations[0].Properties)
	}
}

// postRound1State builds the snapshot after Figure 13's first round: A and
// B accepted (round 3, value 0) and A observed the value chosen; C is
// fresh.
func postRound1State(t *testing.T, factory sm.Factory) *mc.GState {
	t.Helper()
	a := factory(1).(*Paxos)
	a.PromisedRound = 3
	a.AcceptedRound = 3
	a.AcceptedVal = 0
	a.HasAccepted = true
	a.CurRound = 3
	a.Proposing = true
	a.AcceptSent = true
	a.ChosenVals = []int64{0}
	a.Learns = map[uint64]map[sm.NodeID]int64{3: {1: 0, 2: 0}}

	b := factory(2).(*Paxos)
	b.PromisedRound = 3
	b.AcceptedRound = 3
	b.AcceptedVal = 0
	b.HasAccepted = true
	b.Learns = map[uint64]map[sm.NodeID]int64{3: {2: 0}}

	c := factory(3).(*Paxos)

	g := mc.NewGState()
	g.AddNode(1, a, nil)
	g.AddNode(2, b, nil)
	g.AddNode(3, c, nil)
	return g
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	factory := New(Config{Members: members, Bug1: true})
	p := factory(2).(*Paxos)
	p.PromisedRound = 9
	p.HasAccepted = true
	p.AcceptedVal = 5
	p.Promises = []promiseInfo{{From: 1, HasAccepted: true, AcceptedRound: 3, AcceptedVal: 5}}
	p.Learns = map[uint64]map[sm.NodeID]int64{9: {1: 5, 2: 5}}
	p.ChosenVals = []int64{5}
	data := sm.EncodeFullState(p, nil)
	svc, _, err := sm.DecodeFullState(factory, 2, data)
	if err != nil {
		t.Fatal(err)
	}
	q := svc.(*Paxos)
	if sm.HashService(p) != sm.HashService(q) {
		t.Fatal("hash mismatch after round trip")
	}
	if len(q.Promises) != 1 || q.Promises[0].From != 1 {
		t.Fatalf("promises lost: %+v", q.Promises)
	}
	if q.Learns[9][2] != 5 {
		t.Fatal("learns lost")
	}
}

func TestCloneIndependence(t *testing.T) {
	factory := New(Config{Members: members})
	p := factory(1).(*Paxos)
	p.Learns[1] = map[sm.NodeID]int64{2: 7}
	q := p.Clone().(*Paxos)
	q.Learns[1][3] = 8
	if _, ok := p.Learns[1][3]; ok {
		t.Fatal("clone shares learns map")
	}
}
