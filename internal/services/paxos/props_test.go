package paxos

import (
	"testing"

	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// chosenView builds a view of paxos nodes from a node -> chosen-values
// table.
func chosenView(chosen map[sm.NodeID][]int64) props.GlobalView {
	v := props.NewView()
	for id, vals := range chosen {
		p := New(Config{Members: []sm.NodeID{1, 2, 3}})(id).(*Paxos)
		p.ChosenVals = append([]int64(nil), vals...)
		v.Add(id, p, nil)
	}
	return props.Global(v)
}

func TestCrossNodeAgreement(t *testing.T) {
	cases := []struct {
		label  string
		chosen map[sm.NodeID][]int64
		want   bool
	}{
		{
			label:  "all agree",
			chosen: map[sm.NodeID][]int64{1: {7}, 2: {7}, 3: {7}},
			want:   true,
		},
		{
			label:  "nothing chosen",
			chosen: map[sm.NodeID][]int64{1: nil, 2: nil},
			want:   true,
		},
		{
			label:  "one chooser",
			chosen: map[sm.NodeID][]int64{1: {7}, 2: nil, 3: nil},
			want:   true,
		},
		{
			label:  "two nodes disagree",
			chosen: map[sm.NodeID][]int64{1: {7}, 2: {8}},
			want:   false,
		},
		{
			// A single node holding two values is a local inconsistency
			// (PropAtMostOneChosen's job), not cross-node disagreement.
			label:  "local double-choose alone",
			chosen: map[sm.NodeID][]int64{1: {7, 8}},
			want:   true,
		},
		{
			label:  "local double-choose conflicting with a peer",
			chosen: map[sm.NodeID][]int64{1: {7, 8}, 2: {7}},
			want:   false,
		},
	}
	for _, c := range cases {
		v := chosenView(c.chosen)
		if got := PropCrossNodeAgreement.Check(v); got != c.want {
			t.Errorf("%s: Check = %v, want %v", c.label, got, c.want)
		}
		// Containment: any cross-node disagreement is also an
		// AtMostOneValueChosen violation, so fixed-variant scenario
		// expectations stay valid with the global property installed.
		if !c.want && PropAtMostOneChosen.Check(v.View) {
			t.Errorf("%s: cross-node violation not contained in AtMostOneValueChosen", c.label)
		}
	}
}
