package crdt

import (
	"bytes"
	"math/rand"
	"testing"

	"crystalball/internal/sm"
)

// testCtx implements sm.Context for handler-level tests, capturing sends.
type testCtx struct {
	self  sm.NodeID
	sends []sm.MsgEvent
	rng   *rand.Rand
}

func newCtx(self sm.NodeID) *testCtx {
	return &testCtx{self: self, rng: rand.New(rand.NewSource(1))}
}

func (c *testCtx) Self() sm.NodeID { return c.self }
func (c *testCtx) Send(to sm.NodeID, msg sm.Message) {
	c.sends = append(c.sends, sm.MsgEvent{From: c.self, To: to, Msg: msg})
}
func (c *testCtx) SetTimer(t sm.TimerID, d sm.Duration) {}
func (c *testCtx) CancelTimer(t sm.TimerID)             {}
func (c *testCtx) TimerPending(t sm.TimerID) bool       { return false }
func (c *testCtx) Rand() *rand.Rand                     { return c.rng }

var oracleMembers = []sm.NodeID{1, 2, 3}

// op is one broadcast operation as issued: the message plus its origin.
type op struct {
	from sm.NodeID
	msg  sm.Message
}

// lastOp returns the operation the last HandleApp call broadcast (every
// peer receives identical content, so one send suffices).
func lastOp(ctx *testCtx) op {
	ev := ctx.sends[len(ctx.sends)-1]
	return op{from: ev.From, msg: ev.Msg}
}

// scriptOps drives the scenario's op script on writer replicas built by
// factory and returns the concurrent op set the permutation oracle
// delivers: member 1 issues its two ops, member 2 issues its one op after
// delivering member 1's first — the same histories the staged and
// searched starts use.
func scriptOps(t *testing.T, factory sm.Factory, calls func(n int) sm.AppCall) []op {
	t.Helper()
	a, actx := factory(1), newCtx(1)
	b, bctx := factory(2), newCtx(2)
	var ops []op
	a.HandleApp(actx, calls(0))
	if len(actx.sends) == 0 {
		t.Fatal("member 0 first op not broadcast")
	}
	first := lastOp(actx)
	ops = append(ops, first)
	b.HandleMessage(bctx, first.from, first.msg)
	a.HandleApp(actx, calls(1))
	ops = append(ops, lastOp(actx))
	b.HandleApp(bctx, calls(2))
	if len(bctx.sends) == 0 {
		t.Fatal("member 1 op not broadcast")
	}
	ops = append(ops, lastOp(bctx))
	return ops
}

// fifoPermutations enumerates the delivery orders of ops that a receiver
// can observe: any interleaving that keeps each origin's ops in issue
// order (channels are FIFO per pair; nothing orders ops across origins).
func fifoPermutations(ops []op) [][]op {
	var out [][]op
	cur := make([]op, 0, len(ops))
	used := make([]bool, len(ops))
	var rec func()
	rec = func() {
		if len(cur) == len(ops) {
			out = append(out, append([]op(nil), cur...))
			return
		}
		seen := map[sm.NodeID]bool{}
		for i, o := range ops {
			if used[i] || seen[o.from] {
				continue
			}
			// Taking a later op of this origin first would violate
			// per-pair FIFO; mark the origin so only its earliest
			// unused op is a candidate.
			seen[o.from] = true
			used[i] = true
			cur = append(cur, o)
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec()
	return out
}

// convergedState delivers ops in order to a fresh passive replica
// (member index 2 issues nothing) and returns its encoded final state.
func convergedState(factory sm.Factory, order []op) []byte {
	r, ctx := factory(3), newCtx(3)
	for _, o := range order {
		r.HandleMessage(ctx, o.from, o.msg)
	}
	e := sm.NewEncoder()
	r.EncodeState(e)
	return append([]byte(nil), e.Bytes()...)
}

// TestConvergenceDifferentialOracle is the delivery-permutation oracle:
// for one fixed concurrent op set per scenario, every FIFO-legal delivery
// permutation must leave a fixed replica in a byte-identical state, and
// must leave the seeded-bug replica in at least two distinct states —
// the divergence the checker's ReplicaConvergence property hunts,
// reproduced without the search on top.
func TestConvergenceDifferentialOracle(t *testing.T) {
	cases := []struct {
		name    string
		factory func(fixed bool) sm.Factory
		calls   func(n int) sm.AppCall
	}{
		{
			name:    "gcounter",
			factory: func(fixed bool) sm.Factory { return NewCounter(oracleMembers, fixed) },
			calls:   func(int) sm.AppCall { return AppInc{} },
		},
		{
			name:    "orset",
			factory: func(fixed bool) sm.Factory { return NewSet(oracleMembers, fixed) },
			calls: func(n int) sm.AppCall {
				if n == 2 {
					return AppRemove{Elem: setElem}
				}
				return AppAdd{Elem: setElem}
			},
		},
		{
			name:    "lwwmap",
			factory: func(fixed bool) sm.Factory { return NewMap(oracleMembers, fixed) },
			calls:   func(int) sm.AppCall { return AppPut{Key: mapKey} },
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, fixed := range []bool{true, false} {
				ops := scriptOps(t, tc.factory(fixed), tc.calls)
				perms := fifoPermutations(ops)
				if len(perms) < 3 {
					t.Fatalf("fixed=%v: only %d legal permutations", fixed, len(perms))
				}
				ref := convergedState(tc.factory(fixed), perms[0])
				diverged := false
				for _, p := range perms[1:] {
					if !bytes.Equal(ref, convergedState(tc.factory(fixed), p)) {
						diverged = true
					}
				}
				if fixed && diverged {
					t.Errorf("fixed replica states differ across delivery permutations")
				}
				if !fixed && !diverged {
					t.Errorf("seeded bug produced no divergence across %d permutations", len(perms))
				}
			}
		})
	}
}
