package crdt

import (
	"fmt"
	"slices"

	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/scenario"
	"crystalball/internal/sm"
)

// The gcounter scenario: a grow-only counter replicated by broadcasting,
// with each increment, the origin's full count vector. The correct merge
// is entrywise max — commutative, so any delivery order converges. The
// seeded bug overwrites entries with the incoming vector's values, so a
// stale vector arriving late clobbers newer counts and two replicas with
// identical delivered ops end up with different totals.
//
// The checker's op script: the first member increments twice, the second
// once, the rest are passive — the smallest workload whose interleavings
// reach the Figure-style divergence (first member's counts clobbered by
// the second member's relayed stale vector).

// AppInc asks the replica to increment its own counter entry.
type AppInc struct{}

// CallName implements sm.AppCall.
func (AppInc) CallName() string { return "Inc" }

// EncodeCall implements sm.AppCall.
func (AppInc) EncodeCall(e *sm.Encoder) {}

// Sync carries one increment operation: the op id plus a snapshot of the
// origin's count vector at issue time. Immutable once sent.
type Sync struct {
	ID     OpID
	Counts map[sm.NodeID]int64
}

// MsgType implements sm.Message.
func (Sync) MsgType() string { return "Sync" }

// Size implements sm.Message.
func (m Sync) Size() int { return 8 + 12*len(m.Counts) }

// EncodeMsg implements sm.Message.
func (m Sync) EncodeMsg(e *sm.Encoder) {
	e.NodeID(m.ID.Origin)
	e.Uint32(m.ID.Seq)
	encodeCounts(e, m.Counts)
}

func sortedCountKeys(m map[sm.NodeID]int64) []sm.NodeID {
	ids := make([]sm.NodeID, 0, len(m))
	for n := range m {
		ids = append(ids, n)
	}
	slices.Sort(ids)
	return ids
}

func encodeCounts(e *sm.Encoder, m map[sm.NodeID]int64) {
	ids := sortedCountKeys(m)
	e.Uint32(uint32(len(ids)))
	for _, n := range ids {
		e.NodeID(n)
		e.Int64(m[n])
	}
}

func decodeCounts(d *sm.Decoder) map[sm.NodeID]int64 {
	n := int(d.Uint32())
	out := make(map[sm.NodeID]int64, n)
	for i := 0; i < n; i++ {
		id := d.NodeID()
		out[id] = d.Int64()
	}
	return out
}

// Counter is one G-Counter replica.
type Counter struct {
	opLog
	Self    sm.NodeID
	Members []sm.NodeID
	Fixed   bool
	Counts  map[sm.NodeID]int64
}

// NewCounter returns the factory for a G-Counter membership; fixed selects
// the correct entrywise-max merge over the seeded overwrite merge.
func NewCounter(members []sm.NodeID, fixed bool) sm.Factory {
	return func(self sm.NodeID) sm.Service {
		return &Counter{
			opLog:   newOpLog(),
			Self:    self,
			Members: sm.CloneNodeSlice(members),
			Fixed:   fixed,
			Counts:  make(map[sm.NodeID]int64),
		}
	}
}

// incQuota is the checker op script: member 0 increments twice, member 1
// once, everyone else is passive.
func (c *Counter) incQuota() uint32 {
	switch memberIndex(c.Members, c.Self) {
	case 0:
		return 2
	case 1:
		return 1
	}
	return 0
}

// Init implements sm.Service.
func (c *Counter) Init(ctx sm.Context) {}

// HandleApp implements sm.Service.
func (c *Counter) HandleApp(ctx sm.Context, call sm.AppCall) {
	if call.CallName() != "Inc" || c.Seq >= c.incQuota() {
		return
	}
	id := c.next(c.Self)
	c.Counts[c.Self]++
	snap := make(map[sm.NodeID]int64, len(c.Counts))
	for n, v := range c.Counts {
		snap[n] = v
	}
	broadcast(ctx, c.Members, Sync{ID: id, Counts: snap})
}

// HandleMessage implements sm.Service.
func (c *Counter) HandleMessage(ctx sm.Context, from sm.NodeID, msg sm.Message) {
	m, ok := msg.(Sync)
	if !ok || !c.deliver(m.ID) {
		return
	}
	for _, n := range sortedCountKeys(m.Counts) {
		v := m.Counts[n]
		if c.Fixed {
			// Correct merge: entrywise max, commutative.
			if v > c.Counts[n] {
				c.Counts[n] = v
			}
		} else {
			// Seeded bug: the incoming vector overwrites — a stale
			// entry regresses newer counts, and the final state
			// depends on delivery order.
			c.Counts[n] = v
		}
	}
}

// HandleTimer implements sm.Service.
func (c *Counter) HandleTimer(ctx sm.Context, t sm.TimerID) {}

// HandleTransportError implements sm.Service.
func (c *Counter) HandleTransportError(ctx sm.Context, peer sm.NodeID) {}

// ModelAppCalls implements sm.ModelActions.
func (c *Counter) ModelAppCalls() []sm.AppCall {
	if c.Seq < c.incQuota() {
		return []sm.AppCall{AppInc{}}
	}
	return nil
}

// Neighbors implements sm.Service: convergence is a property over every
// replica, so the snapshot neighborhood is the full membership.
func (c *Counter) Neighbors() []sm.NodeID { return others(c.Members, c.Self) }

// Clone implements sm.Service.
func (c *Counter) Clone() sm.Service {
	out := &Counter{
		opLog:   c.opLog.clone(),
		Self:    c.Self,
		Members: sm.CloneNodeSlice(c.Members),
		Fixed:   c.Fixed,
		Counts:  make(map[sm.NodeID]int64, len(c.Counts)),
	}
	for n, v := range c.Counts {
		out.Counts[n] = v
	}
	return out
}

// EncodeState implements sm.Service.
func (c *Counter) EncodeState(e *sm.Encoder) {
	e.NodeID(c.Self)
	e.Bool(c.Fixed)
	e.NodeSlice(c.Members)
	c.opLog.encode(e)
	encodeCounts(e, c.Counts)
}

// DecodeState implements sm.Service.
func (c *Counter) DecodeState(d *sm.Decoder) error {
	c.Self = d.NodeID()
	c.Fixed = d.Bool()
	c.Members = d.NodeSlice()
	c.opLog.decode(d)
	c.Counts = decodeCounts(d)
	return d.Err()
}

// ServiceName implements sm.Service.
func (c *Counter) ServiceName() string { return "gcounter" }

// ConvergedSum implements Replica: a commutative fingerprint of the count
// vector.
func (c *Counter) ConvergedSum() uint64 {
	var s uint64
	for n, v := range c.Counts {
		s += kvHash(domCounter, uint64(uint32(n)), uint64(v))
	}
	return s
}

func init() {
	scenario.Register(scenario.Scenario{
		Name:        "gcounter",
		Description: "op-based G-Counter replicas (seeded non-commutative merge)",
		New: func(ids []sm.NodeID, o scenario.Options) (sm.Factory, error) {
			if o.Variant != "" {
				return nil, fmt.Errorf("unknown variant %q", o.Variant)
			}
			return NewCounter(ids, o.Fixed), nil
		},
		GlobalProps:   props.GlobalSet{PropConverged("ReplicaConvergence")},
		Check:         scenario.Tuning{Nodes: 3},
		Live:          scenario.Tuning{Nodes: 5},
		Reduction:     true,
		CheckerPolicy: mc.PolicySpec{Kind: mc.PolicyFixed, Base: mc.Budget{States: 8000}},
		Join:          func() sm.AppCall { return AppInc{} },
	})
}
