package crdt

import (
	"fmt"
	"sort"

	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/scenario"
	"crystalball/internal/sm"
)

// The lwwmap scenario: a last-writer-wins map with Lamport timestamps. The
// correct merge applies a put iff its (timestamp, origin) pair is
// lexicographically greater than the current entry's — a strict total
// order, so every replica picks the same winner whatever the delivery
// order. The seeded bug compares timestamps alone with >=: concurrent puts
// that tie on the clock land in delivery order, and replicas that received
// them in different orders keep different values for the key forever.
//
// The checker's op script: the first member puts twice (timestamps 1 and
// 2); the second member puts once, only after it has delivered a foreign
// op — its Lamport clock is then 1, so its put carries timestamp 2 and
// ties the first member's second put. Exhaustive search finds the
// divergence a few events from the initial state; consequence prediction
// needs the staged TieStart fixture (see its comment for why — the same
// initial-state blindness the paper reports for the deep Paxos bugs).

// mapKey is the single key the op script writes.
const mapKey = "k"

// AppPut asks the replica to write its node id under Key.
type AppPut struct {
	Key string
}

// CallName implements sm.AppCall.
func (AppPut) CallName() string { return "Put" }

// EncodeCall implements sm.AppCall.
func (a AppPut) EncodeCall(e *sm.Encoder) { e.String(a.Key) }

// OpPut carries one put operation. Immutable once sent.
type OpPut struct {
	ID  OpID
	Key string
	Val int64
	TS  uint64
}

// MsgType implements sm.Message.
func (OpPut) MsgType() string { return "OpPut" }

// Size implements sm.Message.
func (m OpPut) Size() int { return 24 + len(m.Key) }

// EncodeMsg implements sm.Message.
func (m OpPut) EncodeMsg(e *sm.Encoder) {
	e.NodeID(m.ID.Origin)
	e.Uint32(m.ID.Seq)
	e.String(m.Key)
	e.Int64(m.Val)
	e.Uint64(m.TS)
}

// entry is one key's current value with its write stamp.
type entry struct {
	Val    int64
	TS     uint64
	Origin sm.NodeID
}

// Map is one LWW-Map replica.
type Map struct {
	opLog
	Self    sm.NodeID
	Members []sm.NodeID
	Fixed   bool
	Clock   uint64
	Entries map[string]entry
}

// NewMap returns the factory for a LWW-Map membership; fixed selects the
// correct (timestamp, origin) tie-break over the seeded ts-only >= rule.
func NewMap(members []sm.NodeID, fixed bool) sm.Factory {
	return func(self sm.NodeID) sm.Service {
		return &Map{
			opLog:   newOpLog(),
			Self:    self,
			Members: sm.CloneNodeSlice(members),
			Fixed:   fixed,
			Entries: make(map[string]entry),
		}
	}
}

// wins reports whether an incoming write (ts, origin) replaces e.
func (m *Map) wins(e entry, ok bool, ts uint64, origin sm.NodeID) bool {
	if !ok {
		return true
	}
	if m.Fixed {
		// Correct merge: lexicographic (timestamp, origin) — a strict
		// total order over writes, so the winner is delivery-order
		// independent.
		return ts > e.TS || (ts == e.TS && origin > e.Origin)
	}
	// Seeded bug: clock ties have no tie-break and >= lets the latest
	// delivery win them.
	return ts >= e.TS
}

func (m *Map) apply(key string, val int64, ts uint64, origin sm.NodeID) {
	if e, ok := m.Entries[key]; !m.wins(e, ok, ts, origin) {
		return
	}
	m.Entries[key] = entry{Val: val, TS: ts, Origin: origin}
}

// Init implements sm.Service.
func (m *Map) Init(ctx sm.Context) {}

// putAllowed is the checker op script: member 0 may put twice, member 1
// once after delivering at least one foreign op, everyone else is passive.
func (m *Map) putAllowed() bool {
	switch memberIndex(m.Members, m.Self) {
	case 0:
		return m.Seq < 2
	case 1:
		return m.Seq < 1 && len(m.Delivered) > int(m.Seq)
	}
	return false
}

// HandleApp implements sm.Service.
func (m *Map) HandleApp(ctx sm.Context, call sm.AppCall) {
	c, ok := call.(AppPut)
	if !ok || !m.putAllowed() {
		return
	}
	m.Clock++
	ts := m.Clock
	id := m.next(m.Self)
	val := int64(m.Self)
	m.apply(c.Key, val, ts, m.Self)
	broadcast(ctx, m.Members, OpPut{ID: id, Key: c.Key, Val: val, TS: ts})
}

// HandleMessage implements sm.Service.
func (m *Map) HandleMessage(ctx sm.Context, from sm.NodeID, msg sm.Message) {
	op, ok := msg.(OpPut)
	if !ok || !m.deliver(op.ID) {
		return
	}
	if op.TS > m.Clock {
		m.Clock = op.TS
	}
	m.apply(op.Key, op.Val, op.TS, op.ID.Origin)
}

// HandleTimer implements sm.Service.
func (m *Map) HandleTimer(ctx sm.Context, t sm.TimerID) {}

// HandleTransportError implements sm.Service.
func (m *Map) HandleTransportError(ctx sm.Context, peer sm.NodeID) {}

// ModelAppCalls implements sm.ModelActions.
func (m *Map) ModelAppCalls() []sm.AppCall {
	if m.putAllowed() {
		return []sm.AppCall{AppPut{Key: mapKey}}
	}
	return nil
}

// Neighbors implements sm.Service.
func (m *Map) Neighbors() []sm.NodeID { return others(m.Members, m.Self) }

// Clone implements sm.Service.
func (m *Map) Clone() sm.Service {
	out := &Map{
		opLog:   m.opLog.clone(),
		Self:    m.Self,
		Members: sm.CloneNodeSlice(m.Members),
		Fixed:   m.Fixed,
		Clock:   m.Clock,
		Entries: make(map[string]entry, len(m.Entries)),
	}
	for k, e := range m.Entries {
		out.Entries[k] = e
	}
	return out
}

func (m *Map) sortedKeys() []string {
	keys := make([]string, 0, len(m.Entries))
	for k := range m.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EncodeState implements sm.Service.
func (m *Map) EncodeState(e *sm.Encoder) {
	e.NodeID(m.Self)
	e.Bool(m.Fixed)
	e.NodeSlice(m.Members)
	m.opLog.encode(e)
	e.Uint64(m.Clock)
	keys := m.sortedKeys()
	e.Uint32(uint32(len(keys)))
	for _, k := range keys {
		ent := m.Entries[k]
		e.String(k)
		e.Int64(ent.Val)
		e.Uint64(ent.TS)
		e.NodeID(ent.Origin)
	}
}

// DecodeState implements sm.Service.
func (m *Map) DecodeState(d *sm.Decoder) error {
	m.Self = d.NodeID()
	m.Fixed = d.Bool()
	m.Members = d.NodeSlice()
	m.opLog.decode(d)
	m.Clock = d.Uint64()
	n := int(d.Uint32())
	m.Entries = make(map[string]entry, n)
	for i := 0; i < n; i++ {
		k := d.String()
		m.Entries[k] = entry{Val: d.Int64(), TS: d.Uint64(), Origin: d.NodeID()}
	}
	return d.Err()
}

// ServiceName implements sm.Service.
func (m *Map) ServiceName() string { return "lwwmap" }

// ConvergedSum implements Replica: a commutative fingerprint of the map
// entries including their write stamps.
func (m *Map) ConvergedSum() uint64 {
	var s uint64
	for k, e := range m.Entries {
		s += strHash(domMapEntry, k, uint64(e.Val), e.TS, uint64(uint32(e.Origin)))
	}
	return s
}

// TieStart builds the staged start state for consequence-prediction
// checking, the lwwmap analogue of the paxos Figure 13 fixture. Member 0
// (node 1) has already put twice (timestamps 1 and 2); member 1 (node 2)
// has delivered the first put and issued its own, so its put also carries
// timestamp 2; the cross deliveries are still in flight. Two events from
// here both replicas have delivered the full op set with the two
// timestamp-2 puts arriving in opposite orders — the seeded >= merge
// keeps whichever arrived last and the replicas diverge, while the fixed
// (timestamp, origin) order picks the same winner on both. Consequence
// prediction from the fresh initial state never reaches this divergence:
// its (node, local-state) claims prune the combined interleavings of the
// independent first puts (the paper's section 5.3 observation), and any
// surviving chain bumps the Lamport clock past the tie. From the staged
// state the violation is two deliveries deep, checked before pruning can
// bite.
func TieStart(factory sm.Factory) *mc.GState {
	a := factory(1).(*Map)
	a.Seq = 2
	a.Delivered = map[OpID]bool{
		{Origin: 1, Seq: 1}: true,
		{Origin: 1, Seq: 2}: true,
	}
	a.Clock = 2
	a.Entries[mapKey] = entry{Val: 1, TS: 2, Origin: 1}

	b := factory(2).(*Map)
	b.Seq = 1
	b.Delivered = map[OpID]bool{
		{Origin: 1, Seq: 1}: true,
		{Origin: 2, Seq: 1}: true,
	}
	b.Clock = 2
	b.Entries[mapKey] = entry{Val: 2, TS: 2, Origin: 2}

	g := mc.NewGState()
	g.AddNode(1, a, nil)
	g.AddNode(2, b, nil)
	g.AddNode(3, factory(3).(*Map), nil)
	g.AddMessage(1, 2, OpPut{ID: OpID{Origin: 1, Seq: 2}, Key: mapKey, Val: 1, TS: 2})
	g.AddMessage(2, 1, OpPut{ID: OpID{Origin: 2, Seq: 1}, Key: mapKey, Val: 2, TS: 2})
	g.AddMessage(1, 3, OpPut{ID: OpID{Origin: 1, Seq: 1}, Key: mapKey, Val: 1, TS: 1})
	g.AddMessage(1, 3, OpPut{ID: OpID{Origin: 1, Seq: 2}, Key: mapKey, Val: 1, TS: 2})
	g.AddMessage(2, 3, OpPut{ID: OpID{Origin: 2, Seq: 1}, Key: mapKey, Val: 2, TS: 2})
	return g
}

func init() {
	scenario.Register(scenario.Scenario{
		Name:        "lwwmap",
		Description: "last-writer-wins map replicas (seeded clock-tie divergence)",
		New: func(ids []sm.NodeID, o scenario.Options) (sm.Factory, error) {
			if o.Variant != "" {
				return nil, fmt.Errorf("unknown variant %q", o.Variant)
			}
			return NewMap(ids, o.Fixed), nil
		},
		GlobalProps:   props.GlobalSet{PropConverged("ReplicaConvergence")},
		Check:         scenario.Tuning{Nodes: 3},
		Live:          scenario.Tuning{Nodes: 5},
		Reduction:     true,
		CheckerPolicy: mc.PolicySpec{Kind: mc.PolicyFixed, Base: mc.Budget{States: 8000}},
		Join:          func() sm.AppCall { return AppPut{Key: mapKey} },
	})
}
