// Package crdt implements op-based replicated data types — a G-Counter, an
// OR-Set and a LWW-Map — as checkable scenarios for the cross-node property
// engine.
//
// Each replica applies operations locally and broadcasts them to every
// other member; a delivered-operation set tracks which ops each replica has
// applied. The safety property is Gomes et al.'s strong eventual
// consistency formulation: two replicas that have delivered the same
// operation multiset must be in equal states, whatever the delivery order.
// Operations carry unique ids (origin, sequence), so the delivered multiset
// is a set and "same multiset" reduces to set equality.
//
// That property is inherently cross-node — no single replica can observe
// divergence — which is exactly what props.GlobalProperty exists for. Each
// scenario ships with a seeded divergence bug (the default variant) that
// the correct merge function repairs under Options.Fixed:
//
//	gcounter  non-commutative merge: incoming entries overwrite instead of
//	          entrywise max, so a stale vector clobbers newer counts
//	orset     remove-wins tombstones: a remove kills every live tag of the
//	          element at delivery time, including concurrent adds it never
//	          observed
//	lwwmap    clock-tie divergence: a put applies on ts >= current with no
//	          origin tie-break, so concurrent same-timestamp puts land in
//	          delivery order
package crdt

import (
	"slices"

	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// OpID uniquely identifies an operation: the replica that issued it and
// that replica's own-op sequence number. Add-tags in the OR-Set are OpIDs
// too — an add's tag is the id of the add operation itself.
type OpID struct {
	Origin sm.NodeID
	Seq    uint32
}

func opLess(a, b OpID) int {
	if a.Origin != b.Origin {
		return int(a.Origin) - int(b.Origin)
	}
	return int(a.Seq) - int(b.Seq)
}

// Domain tags keep the commutative per-entry hashes of different state
// components from cancelling against each other (same scheme as the
// checker's state fingerprint).
const (
	domDelivered byte = 1
	domCounter   byte = 2
	domSetTag    byte = 3
	domMapEntry  byte = 4
)

func fnvU64(h, v uint64) uint64 {
	for shift := 56; shift >= 0; shift -= 8 {
		h = sm.FNV64aByte(h, byte(v>>shift))
	}
	return h
}

func opHash(domain byte, id OpID) uint64 {
	h := sm.FNV64aByte(sm.FNV64aInit, domain)
	h = fnvU64(h, uint64(uint32(id.Origin)))
	h = fnvU64(h, uint64(id.Seq))
	return sm.Mix64(h)
}

// kvHash fingerprints one (key, value) payload entry.
func kvHash(domain byte, k, v uint64) uint64 {
	h := sm.FNV64aByte(sm.FNV64aInit, domain)
	h = fnvU64(h, k)
	h = fnvU64(h, v)
	return sm.Mix64(h)
}

// strHash fingerprints one string-keyed payload entry with up to three
// numeric components (explicit arity keeps the per-state hot path free of
// variadic slices).
func strHash(domain byte, s string, a, b, c uint64) uint64 {
	h := sm.FNV64aByte(sm.FNV64aInit, domain)
	h = sm.FNV64aString(h, s)
	h = fnvU64(h, a)
	h = fnvU64(h, b)
	h = fnvU64(h, c)
	return sm.Mix64(h)
}

// Replica is the view the convergence property takes of a CRDT service:
// enough to decide "same delivered ops" and "same state" without knowing
// the payload type.
type Replica interface {
	// DeliveredCount returns the number of delivered operations.
	DeliveredCount() int
	// DeliveredSum returns an order-independent fingerprint of the
	// delivered-operation set.
	DeliveredSum() uint64
	// ConvergedSum returns an order-independent fingerprint of the
	// replica's observable payload state (the counter vector, the live
	// set, the map entries).
	ConvergedSum() uint64
}

// secMaxNodes bounds the stack-allocated scratch of the convergence check;
// a larger view (none of the scenarios comes close) is passed over rather
// than checked, per the defensive half of the GlobalProperty contract.
const secMaxNodes = 32

// PropConverged builds the strong-eventual-consistency property: every
// pair of replicas in the view that have delivered the same operation set
// must have equal payload fingerprints. Nodes that are not crdt replicas
// (or views larger than the scratch bound) are skipped, never failed.
func PropConverged(name string) props.GlobalProperty {
	return props.GlobalProperty{
		Name: name,
		Check: func(v props.GlobalView) bool {
			ids := v.IDs()
			if len(ids) > secMaxNodes {
				return true
			}
			var (
				reps [secMaxNodes]Replica
				dsum [secMaxNodes]uint64
				dcnt [secMaxNodes]int
				csum [secMaxNodes]uint64
			)
			n := 0
			for _, id := range ids {
				r, ok := v.Get(id).Svc.(Replica)
				if !ok {
					continue
				}
				reps[n] = r
				dsum[n] = r.DeliveredSum()
				dcnt[n] = r.DeliveredCount()
				csum[n] = r.ConvergedSum()
				n++
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if dcnt[i] == dcnt[j] && dsum[i] == dsum[j] && csum[i] != csum[j] {
						return false
					}
				}
			}
			return true
		},
	}
}

// opLog is the delivered-operation set every replica embeds, plus the
// replica's own-op sequence counter.
type opLog struct {
	Seq       uint32
	Delivered map[OpID]bool
}

func newOpLog() opLog {
	return opLog{Delivered: make(map[OpID]bool)}
}

// next allocates the replica's next own operation id and marks it
// delivered (an op counts as delivered at its origin).
func (l *opLog) next(self sm.NodeID) OpID {
	l.Seq++
	id := OpID{Origin: self, Seq: l.Seq}
	l.Delivered[id] = true
	return id
}

// StableBytes implements sm.StableStore for every embedding replica: the
// own-op sequence counter is the replica's durable state. Persisting it
// across resets means a recovered replica never reissues an op id, which
// the convergence property depends on — op content is fixed at issue time
// per unique id, so "same delivered set" implies "same delivered ops". The
// delivered set itself stays volatile: a reset replica simply has a
// smaller delivered set and drops out of pairwise comparisons until it
// catches up.
func (l *opLog) StableBytes() []byte {
	if l.Seq == 0 {
		return nil
	}
	e := sm.NewEncoder()
	e.Uint32(l.Seq)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// RestoreStable implements sm.StableStore.
func (l *opLog) RestoreStable(data []byte) {
	d := sm.NewDecoder(data)
	l.Seq = d.Uint32()
}

// deliver marks id delivered, reporting false for a duplicate.
func (l *opLog) deliver(id OpID) bool {
	if l.Delivered[id] {
		return false
	}
	l.Delivered[id] = true
	return true
}

// DeliveredCount implements half of Replica for every embedding service.
func (l *opLog) DeliveredCount() int { return len(l.Delivered) }

// DeliveredSum implements the delivered-set fingerprint: a commutative sum
// of per-op hashes, so iteration order cannot matter.
func (l *opLog) DeliveredSum() uint64 {
	var s uint64
	for id := range l.Delivered {
		s += opHash(domDelivered, id)
	}
	return s
}

func (l *opLog) clone() opLog {
	out := opLog{Seq: l.Seq, Delivered: make(map[OpID]bool, len(l.Delivered))}
	for id := range l.Delivered {
		out.Delivered[id] = true
	}
	return out
}

// sortedOps returns the delivered ops in (origin, seq) order for stable
// encoding.
func (l *opLog) sortedOps() []OpID {
	ids := make([]OpID, 0, len(l.Delivered))
	for id := range l.Delivered {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, opLess)
	return ids
}

func (l *opLog) encode(e *sm.Encoder) {
	e.Uint32(l.Seq)
	ids := l.sortedOps()
	e.Uint32(uint32(len(ids)))
	for _, id := range ids {
		e.NodeID(id.Origin)
		e.Uint32(id.Seq)
	}
}

func (l *opLog) decode(d *sm.Decoder) {
	l.Seq = d.Uint32()
	n := int(d.Uint32())
	l.Delivered = make(map[OpID]bool, n)
	for i := 0; i < n; i++ {
		id := OpID{Origin: d.NodeID(), Seq: d.Uint32()}
		l.Delivered[id] = true
	}
}

// others returns the broadcast peer set: every member but self.
func others(members []sm.NodeID, self sm.NodeID) []sm.NodeID {
	out := make([]sm.NodeID, 0, len(members)-1)
	for _, m := range members {
		if m != self {
			out = append(out, m)
		}
	}
	return out
}

// memberIndex returns self's rank in the sorted member list (-1 when
// absent); the op scripts are keyed on it.
func memberIndex(members []sm.NodeID, self sm.NodeID) int {
	for i, m := range members {
		if m == self {
			return i
		}
	}
	return -1
}

func broadcast(ctx sm.Context, members []sm.NodeID, msg sm.Message) {
	self := ctx.Self()
	for _, m := range members {
		if m != self {
			ctx.Send(m, msg)
		}
	}
}
