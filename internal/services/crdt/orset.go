package crdt

import (
	"fmt"
	"slices"
	"sort"

	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/scenario"
	"crystalball/internal/sm"
)

// The orset scenario: an observed-remove set. An add creates a unique tag
// (the op id); a remove lists the tags it observed and kills exactly
// those, with a tombstone set so a remove arriving before its add (the
// channels are FIFO per pair, not causally ordered) still wins over it.
// The seeded bug makes removes too eager: delivery kills every live tag
// of the element — including tags from concurrent adds the remover never
// observed — so replicas that interleave a concurrent add and remove
// differently diverge while agreeing on the delivered ops.
//
// The checker's op script: the first member adds the element twice, the
// second removes it once (after observing it), the rest are passive. The
// quota counter is the op-log Seq itself — each member issues only one
// kind of op — so persisting Seq (see opLog.StableBytes) also pins the
// script across resets.

// setElem is the single element the op script works on.
const setElem = "x"

// AppAdd asks the replica to add Elem with a fresh tag.
type AppAdd struct {
	Elem string
}

// CallName implements sm.AppCall.
func (AppAdd) CallName() string { return "Add" }

// EncodeCall implements sm.AppCall.
func (a AppAdd) EncodeCall(e *sm.Encoder) { e.String(a.Elem) }

// AppRemove asks the replica to remove every tag of Elem it can observe.
type AppRemove struct {
	Elem string
}

// CallName implements sm.AppCall.
func (AppRemove) CallName() string { return "Remove" }

// EncodeCall implements sm.AppCall.
func (a AppRemove) EncodeCall(e *sm.Encoder) { e.String(a.Elem) }

// OpAdd carries one add operation; the op id doubles as the element tag.
type OpAdd struct {
	Elem string
	ID   OpID
}

// MsgType implements sm.Message.
func (OpAdd) MsgType() string { return "OpAdd" }

// Size implements sm.Message.
func (m OpAdd) Size() int { return 8 + len(m.Elem) }

// EncodeMsg implements sm.Message.
func (m OpAdd) EncodeMsg(e *sm.Encoder) {
	e.String(m.Elem)
	e.NodeID(m.ID.Origin)
	e.Uint32(m.ID.Seq)
}

// OpRemove carries one remove operation: the op id and the observed tags
// it removes. Tags is sorted at creation and immutable once sent.
type OpRemove struct {
	Elem string
	ID   OpID
	Tags []OpID
}

// MsgType implements sm.Message.
func (OpRemove) MsgType() string { return "OpRemove" }

// Size implements sm.Message.
func (m OpRemove) Size() int { return 8 + len(m.Elem) + 8*len(m.Tags) }

// EncodeMsg implements sm.Message.
func (m OpRemove) EncodeMsg(e *sm.Encoder) {
	e.String(m.Elem)
	e.NodeID(m.ID.Origin)
	e.Uint32(m.ID.Seq)
	e.Uint32(uint32(len(m.Tags)))
	for _, t := range m.Tags {
		e.NodeID(t.Origin)
		e.Uint32(t.Seq)
	}
}

// Set is one OR-Set replica.
type Set struct {
	opLog
	Self    sm.NodeID
	Members []sm.NodeID
	Fixed   bool
	// Live maps element -> live add-tags; an element is in the set when
	// it has at least one live tag.
	Live map[string]map[OpID]bool
	// Tombs holds tags killed by a delivered remove, so a late add of a
	// tombstoned tag stays dead.
	Tombs map[OpID]bool
}

// NewSet returns the factory for an OR-Set membership; fixed selects the
// correct observed-remove semantics over the seeded remove-wins bug.
func NewSet(members []sm.NodeID, fixed bool) sm.Factory {
	return func(self sm.NodeID) sm.Service {
		return &Set{
			opLog:   newOpLog(),
			Self:    self,
			Members: sm.CloneNodeSlice(members),
			Fixed:   fixed,
			Live:    make(map[string]map[OpID]bool),
			Tombs:   make(map[OpID]bool),
		}
	}
}

func (s *Set) liveTags(elem string) []OpID {
	tags := make([]OpID, 0, len(s.Live[elem]))
	for t := range s.Live[elem] {
		tags = append(tags, t)
	}
	slices.SortFunc(tags, opLess)
	return tags
}

func (s *Set) addTag(elem string, tag OpID) {
	if s.Tombs[tag] {
		return
	}
	m := s.Live[elem]
	if m == nil {
		m = make(map[OpID]bool)
		s.Live[elem] = m
	}
	m[tag] = true
}

func (s *Set) killTag(elem string, tag OpID) {
	s.Tombs[tag] = true
	if m := s.Live[elem]; m != nil {
		delete(m, tag)
		if len(m) == 0 {
			delete(s.Live, elem)
		}
	}
}

// Init implements sm.Service.
func (s *Set) Init(ctx sm.Context) {}

// HandleApp implements sm.Service.
func (s *Set) HandleApp(ctx sm.Context, call sm.AppCall) {
	switch c := call.(type) {
	case AppAdd:
		if memberIndex(s.Members, s.Self) != 0 || s.Seq >= 2 {
			return
		}
		id := s.next(s.Self)
		s.addTag(c.Elem, id)
		broadcast(ctx, s.Members, OpAdd{Elem: c.Elem, ID: id})
	case AppRemove:
		if memberIndex(s.Members, s.Self) != 1 || s.Seq >= 1 || len(s.Live[c.Elem]) == 0 {
			return
		}
		observed := s.liveTags(c.Elem)
		id := s.next(s.Self)
		for _, t := range observed {
			s.killTag(c.Elem, t)
		}
		broadcast(ctx, s.Members, OpRemove{Elem: c.Elem, ID: id, Tags: observed})
	}
}

// HandleMessage implements sm.Service.
func (s *Set) HandleMessage(ctx sm.Context, from sm.NodeID, msg sm.Message) {
	switch m := msg.(type) {
	case OpAdd:
		if !s.deliver(m.ID) {
			return
		}
		s.addTag(m.Elem, m.ID)
	case OpRemove:
		if !s.deliver(m.ID) {
			return
		}
		if !s.Fixed {
			// Seeded bug: remove wins over everything live at delivery
			// time, killing concurrent adds the remover never observed
			// — the kill set now depends on delivery order.
			for _, t := range s.liveTags(m.Elem) {
				s.killTag(m.Elem, t)
			}
		}
		// Correct observed-remove: kill exactly the tags the remover
		// listed (tombstoned, so a late add of one stays dead).
		for _, t := range m.Tags {
			s.killTag(m.Elem, t)
		}
	}
}

// HandleTimer implements sm.Service.
func (s *Set) HandleTimer(ctx sm.Context, t sm.TimerID) {}

// HandleTransportError implements sm.Service.
func (s *Set) HandleTransportError(ctx sm.Context, peer sm.NodeID) {}

// ModelAppCalls implements sm.ModelActions.
func (s *Set) ModelAppCalls() []sm.AppCall {
	switch memberIndex(s.Members, s.Self) {
	case 0:
		if s.Seq < 2 {
			return []sm.AppCall{AppAdd{Elem: setElem}}
		}
	case 1:
		if s.Seq < 1 && len(s.Live[setElem]) > 0 {
			return []sm.AppCall{AppRemove{Elem: setElem}}
		}
	}
	return nil
}

// Neighbors implements sm.Service.
func (s *Set) Neighbors() []sm.NodeID { return others(s.Members, s.Self) }

// Clone implements sm.Service.
func (s *Set) Clone() sm.Service {
	out := &Set{
		opLog:   s.opLog.clone(),
		Self:    s.Self,
		Members: sm.CloneNodeSlice(s.Members),
		Fixed:   s.Fixed,
		Live:    make(map[string]map[OpID]bool, len(s.Live)),
		Tombs:   make(map[OpID]bool, len(s.Tombs)),
	}
	//crystal:allow(maporder) deep-copies into maps keyed by the iterated elements; the copy is identical whatever the order
	for elem, tags := range s.Live {
		m := make(map[OpID]bool, len(tags))
		for t := range tags {
			m[t] = true
		}
		out.Live[elem] = m
	}
	for t := range s.Tombs {
		out.Tombs[t] = true
	}
	return out
}

func (s *Set) sortedElems() []string {
	elems := make([]string, 0, len(s.Live))
	for e := range s.Live {
		elems = append(elems, e)
	}
	sort.Strings(elems)
	return elems
}

// EncodeState implements sm.Service.
func (s *Set) EncodeState(e *sm.Encoder) {
	e.NodeID(s.Self)
	e.Bool(s.Fixed)
	e.NodeSlice(s.Members)
	s.opLog.encode(e)
	elems := s.sortedElems()
	e.Uint32(uint32(len(elems)))
	for _, elem := range elems {
		e.String(elem)
		tags := s.liveTags(elem)
		e.Uint32(uint32(len(tags)))
		for _, t := range tags {
			e.NodeID(t.Origin)
			e.Uint32(t.Seq)
		}
	}
	tombs := make([]OpID, 0, len(s.Tombs))
	for t := range s.Tombs {
		tombs = append(tombs, t)
	}
	slices.SortFunc(tombs, opLess)
	e.Uint32(uint32(len(tombs)))
	for _, t := range tombs {
		e.NodeID(t.Origin)
		e.Uint32(t.Seq)
	}
}

// DecodeState implements sm.Service.
func (s *Set) DecodeState(d *sm.Decoder) error {
	s.Self = d.NodeID()
	s.Fixed = d.Bool()
	s.Members = d.NodeSlice()
	s.opLog.decode(d)
	nElems := int(d.Uint32())
	s.Live = make(map[string]map[OpID]bool, nElems)
	for i := 0; i < nElems; i++ {
		elem := d.String()
		nTags := int(d.Uint32())
		m := make(map[OpID]bool, nTags)
		for j := 0; j < nTags; j++ {
			m[OpID{Origin: d.NodeID(), Seq: d.Uint32()}] = true
		}
		s.Live[elem] = m
	}
	nTombs := int(d.Uint32())
	s.Tombs = make(map[OpID]bool, nTombs)
	for i := 0; i < nTombs; i++ {
		s.Tombs[OpID{Origin: d.NodeID(), Seq: d.Uint32()}] = true
	}
	return d.Err()
}

// ServiceName implements sm.Service.
func (s *Set) ServiceName() string { return "orset" }

// ConvergedSum implements Replica: a commutative fingerprint of the live
// (element, tag) pairs — the observable set value at tag granularity.
func (s *Set) ConvergedSum() uint64 {
	var sum uint64
	//crystal:allow(maporder) nested commutative fold: per-tag hashes only accumulate by +, so iteration order cannot reach the fingerprint
	for elem, tags := range s.Live {
		for t := range tags {
			sum += strHash(domSetTag, elem, uint64(uint32(t.Origin)), uint64(t.Seq), 0)
		}
	}
	return sum
}

func init() {
	scenario.Register(scenario.Scenario{
		Name:        "orset",
		Description: "observed-remove set replicas (seeded remove-wins bug)",
		New: func(ids []sm.NodeID, o scenario.Options) (sm.Factory, error) {
			if o.Variant != "" {
				return nil, fmt.Errorf("unknown variant %q", o.Variant)
			}
			return NewSet(ids, o.Fixed), nil
		},
		GlobalProps:   props.GlobalSet{PropConverged("ReplicaConvergence")},
		Check:         scenario.Tuning{Nodes: 3},
		Live:          scenario.Tuning{Nodes: 5},
		Reduction:     true,
		CheckerPolicy: mc.PolicySpec{Kind: mc.PolicyFixed, Base: mc.Budget{States: 8000}},
		Join:          func() sm.AppCall { return AppAdd{Elem: setElem} },
	})
}
