// Package bulletprime implements the Bullet′ file distribution system from
// the CrystalBall paper (section 5.2.3): a source disseminates the blocks
// of a file to a subset of nodes; all other nodes discover and retrieve
// blocks by explicitly requesting them over a peering mesh.
//
// The pieces the paper calls out are all here:
//
//   - every node keeps a file map describing the blocks it holds;
//   - every sender keeps a per-receiver *shadow* file map of the blocks it
//     has not yet told that receiver about, and computes "diffs" on demand;
//   - receivers keep a per-sender file map (the sender's advertised blocks)
//     and use a rarest-random policy to decide which block to request next;
//   - senders and receivers communicate over a bounded non-blocking
//     transport (the MaceTcpTransport stand-in): each peer link tolerates a
//     limited number of outstanding unacknowledged messages, and an
//     enqueue attempt beyond the window is *refused* — the code path in
//     which the paper's shadow-file-map bug lives.
//
// Three seeded bugs ship enabled by default (Table 1 reports 3 Bullet′
// bugs). Bug 1 is the paper's documented inconsistency; bugs 2 and 3 are
// reconstructed members of the same class (see DESIGN.md section 5):
//
//  1. when a diff cannot be enqueued, the shadow map is cleared anyway, so
//     affected blocks are never re-advertised ("the programmer left the
//     code for clearing the shadow file map after a failed send");
//  2. when a receiver re-establishes a peering, the sender initialises the
//     fresh shadow map empty instead of seeding it with every held block;
//  3. a receiver keeps its stale per-sender file map across a transport
//     error, leaving phantom blocks that skew the rarest-random policy.
package bulletprime

import (
	"sort"

	"crystalball/internal/sm"
)

// requestTTL is how many request-timer ticks a block request stays
// outstanding before it expires and may be retried.
const requestTTL = 4

// Timer names.
const (
	// TimerDiff periodically flushes pending diffs to receivers.
	TimerDiff sm.TimerID = "diff"
	// TimerRequest periodically issues block requests (rarest-random).
	TimerRequest sm.TimerID = "request"
	// TimerPeer retries mesh construction until enough peers are up.
	TimerPeer sm.TimerID = "peer"
)

// Fix flags disabling the seeded bugs.
type Fix uint32

// Fixes for the three seeded Bullet′ bugs.
const (
	// FixShadowOnRefusal keeps the shadow map intact when the transport
	// refuses a diff (the paper's suggested correction).
	FixShadowOnRefusal Fix = 1 << iota
	// FixShadowOnPeering seeds a fresh shadow map with all held blocks.
	FixShadowOnPeering
	// FixStaleFileMap clears the per-sender file map on transport error.
	FixStaleFileMap

	// AllFixes enables every repair.
	AllFixes Fix = 1<<3 - 1
)

// Config parameterises the service.
type Config struct {
	// Members lists all participants.
	Members []sm.NodeID
	// Source is the node that starts with the complete file.
	Source sm.NodeID
	// Blocks is the number of file blocks.
	Blocks int
	// BlockSize is the wire size of one block in bytes.
	BlockSize int
	// MaxPeers bounds the mesh degree (default 4).
	MaxPeers int
	// Window is the per-peer bound on outstanding unacked messages; an
	// enqueue beyond it is refused (default 4).
	Window int
	// MaxOutstandingRequests bounds concurrent block requests per node.
	MaxOutstandingRequests int
	// Fixes disables seeded bugs.
	Fixes Fix
	// DiffInterval and RequestInterval drive the two periodic loops.
	DiffInterval    sm.Duration
	RequestInterval sm.Duration
}

func (c *Config) defaults() {
	if c.Blocks == 0 {
		c.Blocks = 64
	}
	if c.BlockSize == 0 {
		c.BlockSize = 128 << 10
	}
	if c.MaxPeers == 0 {
		c.MaxPeers = 4
	}
	if c.Window == 0 {
		c.Window = 4
	}
	if c.MaxOutstandingRequests == 0 {
		c.MaxOutstandingRequests = 6
	}
	if c.DiffInterval == 0 {
		c.DiffInterval = sm.Second
	}
	if c.RequestInterval == 0 {
		c.RequestInterval = sm.Second / 2
	}
}

// New returns an sm.Factory producing Bullet′ instances.
func New(cfg Config) sm.Factory {
	cfg.defaults()
	return func(self sm.NodeID) sm.Service {
		b := &Bullet{
			Self:        self,
			Have:        make(map[int]bool),
			Shadow:      make(map[sm.NodeID]map[int]bool),
			Advertised:  make(map[sm.NodeID]map[int]bool),
			FileMaps:    make(map[sm.NodeID]map[int]bool),
			Outstanding: make(map[sm.NodeID]int),
			Requested:   make(map[int]int),
			cfg:         cfg,
		}
		if self == cfg.Source {
			for i := 0; i < cfg.Blocks; i++ {
				b.Have[i] = true
			}
		}
		return b
	}
}

// Bullet is the per-node Bullet′ state machine.
type Bullet struct {
	Self sm.NodeID
	// Have is this node's file map.
	Have map[int]bool
	// Shadow maps receiver -> blocks not yet told to that receiver.
	Shadow map[sm.NodeID]map[int]bool
	// Advertised maps receiver -> blocks included in delivered diffs.
	Advertised map[sm.NodeID]map[int]bool
	// FileMaps maps sender -> blocks that sender advertised to us.
	FileMaps map[sm.NodeID]map[int]bool
	// Outstanding counts unacked messages per peer (the bounded
	// transport queue).
	Outstanding map[sm.NodeID]int
	// Requested maps a block with an outstanding request to the
	// remaining request-timer ticks before the request expires and the
	// block becomes eligible again (senders with full windows drop
	// requests silently, so receivers must retry).
	Requested map[int]int
	// DoneAt is >= 0 once the download completed (set by the harness via
	// Completed; kept in state so checkpoints capture progress).
	Complete bool

	cfg Config
}

func (b *Bullet) fixed(f Fix) bool { return b.cfg.Fixes&f != 0 }

// Messages.

// Peering asks a node to become a mesh peer.
type Peering struct{}

// MsgType implements sm.Message.
func (Peering) MsgType() string { return "Peering" }

// Size implements sm.Message.
func (Peering) Size() int { return 4 }

// EncodeMsg implements sm.Message.
func (Peering) EncodeMsg(e *sm.Encoder) {}

// PeeringAck accepts a peering.
type PeeringAck struct{}

// MsgType implements sm.Message.
func (PeeringAck) MsgType() string { return "PeeringAck" }

// Size implements sm.Message.
func (PeeringAck) Size() int { return 4 }

// EncodeMsg implements sm.Message.
func (PeeringAck) EncodeMsg(e *sm.Encoder) {}

// Diff advertises newly available blocks to a receiver.
type Diff struct{ Blocks []int }

// MsgType implements sm.Message.
func (Diff) MsgType() string { return "Diff" }

// Size implements sm.Message.
func (m Diff) Size() int { return 8 + 4*len(m.Blocks) }

// EncodeMsg implements sm.Message.
func (m Diff) EncodeMsg(e *sm.Encoder) {
	e.Uint32(uint32(len(m.Blocks)))
	for _, b := range m.Blocks {
		e.Int(b)
	}
}

// Request asks a sender for one block.
type Request struct{ Block int }

// MsgType implements sm.Message.
func (Request) MsgType() string { return "Request" }

// Size implements sm.Message.
func (Request) Size() int { return 8 }

// EncodeMsg implements sm.Message.
func (m Request) EncodeMsg(e *sm.Encoder) { e.Int(m.Block) }

// Data carries one block.
type Data struct {
	Block int
	// Bytes is the modeled payload size.
	Bytes int
}

// MsgType implements sm.Message.
func (Data) MsgType() string { return "Data" }

// Size implements sm.Message.
func (m Data) Size() int { return 16 + m.Bytes }

// EncodeMsg implements sm.Message.
func (m Data) EncodeMsg(e *sm.Encoder) { e.Int(m.Block) }

// Ack frees one slot of the bounded per-peer transport queue.
type Ack struct{}

// MsgType implements sm.Message.
func (Ack) MsgType() string { return "Ack" }

// Size implements sm.Message.
func (Ack) Size() int { return 4 }

// EncodeMsg implements sm.Message.
func (Ack) EncodeMsg(e *sm.Encoder) {}

// Init implements sm.Service: start mesh construction and the two loops.
func (b *Bullet) Init(ctx sm.Context) {
	ctx.SetTimer(TimerPeer, sm.Second/4)
	ctx.SetTimer(TimerDiff, b.cfg.DiffInterval)
	ctx.SetTimer(TimerRequest, b.cfg.RequestInterval)
}

// peers returns the current mesh peers (nodes with a shadow entry).
func (b *Bullet) peers() []sm.NodeID {
	ids := make([]sm.NodeID, 0, len(b.Shadow))
	for id := range b.Shadow {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// addPeer installs sender- and receiver-side state for a new mesh peer.
func (b *Bullet) addPeer(peer sm.NodeID) {
	if _, ok := b.Shadow[peer]; ok {
		return
	}
	shadow := make(map[int]bool)
	if b.fixed(FixShadowOnPeering) {
		// Bug 2: a fresh shadow map must advertise everything we
		// already hold; the buggy path starts empty, so pre-existing
		// blocks are never announced to this receiver.
		for blk := range b.Have {
			shadow[blk] = true
		}
	}
	b.Shadow[peer] = shadow
	b.Advertised[peer] = make(map[int]bool)
	if _, ok := b.FileMaps[peer]; !ok {
		b.FileMaps[peer] = make(map[int]bool)
	}
}

// HandleTimer implements sm.Service.
func (b *Bullet) HandleTimer(ctx sm.Context, t sm.TimerID) {
	switch t {
	case TimerPeer:
		b.maintainMesh(ctx)
		ctx.SetTimer(TimerPeer, 2*sm.Second)
	case TimerDiff:
		for _, peer := range b.peers() {
			b.sendDiff(ctx, peer)
		}
		ctx.SetTimer(TimerDiff, b.cfg.DiffInterval)
	case TimerRequest:
		b.issueRequests(ctx)
		ctx.SetTimer(TimerRequest, b.cfg.RequestInterval)
	}
}

func (b *Bullet) maintainMesh(ctx sm.Context) {
	if len(b.Shadow) >= b.cfg.MaxPeers {
		return
	}
	// Invite random members we are not yet peered with.
	candidates := make([]sm.NodeID, 0, len(b.cfg.Members))
	for _, m := range b.cfg.Members {
		if m == b.Self {
			continue
		}
		if _, ok := b.Shadow[m]; ok {
			continue
		}
		candidates = append(candidates, m)
	}
	if len(candidates) == 0 {
		return
	}
	pick := candidates[ctx.Rand().Intn(len(candidates))]
	ctx.Send(pick, Peering{})
}

// sendDiff computes and (maybe) transmits the pending diff for peer. This
// is the paper's buggy code path.
func (b *Bullet) sendDiff(ctx sm.Context, peer sm.NodeID) {
	shadow := b.Shadow[peer]
	if len(shadow) == 0 {
		return
	}
	blocks := make([]int, 0, len(shadow))
	for blk := range shadow {
		blocks = append(blocks, blk)
	}
	sort.Ints(blocks)
	if b.Outstanding[peer] >= b.cfg.Window {
		// The bounded transport refuses the enqueue.
		if !b.fixed(FixShadowOnRefusal) {
			// Bug 1 (paper): the shadow map is cleared even though
			// the diff never left, so these blocks are never
			// advertised to this receiver again. (The historical
			// "fix" retried the send later but kept this clearing
			// code, so the retry had nothing to send.)
			b.Shadow[peer] = make(map[int]bool)
		}
		return
	}
	// Successful enqueue: blocks move from shadow to advertised.
	b.Shadow[peer] = make(map[int]bool)
	adv := b.Advertised[peer]
	for _, blk := range blocks {
		adv[blk] = true
	}
	b.Outstanding[peer]++
	ctx.Send(peer, Diff{Blocks: blocks})
}

// issueRequests applies the rarest-random policy: among missing blocks
// advertised by at least one sender, request those with the fewest holders
// first, breaking ties randomly.
func (b *Bullet) issueRequests(ctx sm.Context) {
	// Age outstanding requests; expired ones become eligible again.
	for blk, ttl := range b.Requested {
		if ttl <= 1 {
			delete(b.Requested, blk)
		} else {
			b.Requested[blk] = ttl - 1
		}
	}
	if b.outstandingRequests() >= b.cfg.MaxOutstandingRequests {
		return
	}
	type cand struct {
		block   int
		holders []sm.NodeID
	}
	var cands []cand
	for blk := 0; blk < b.cfg.Blocks; blk++ {
		if b.Have[blk] {
			continue
		}
		if _, pending := b.Requested[blk]; pending {
			continue
		}
		var holders []sm.NodeID
		for _, peer := range b.peers() {
			if b.FileMaps[peer][blk] {
				holders = append(holders, peer)
			}
		}
		if len(holders) > 0 {
			cands = append(cands, cand{block: blk, holders: holders})
		}
	}
	if len(cands) == 0 {
		return
	}
	// Rarest first; shuffle within equal rarity via random tie-break.
	rng := ctx.Rand()
	sort.Slice(cands, func(i, j int) bool {
		if len(cands[i].holders) != len(cands[j].holders) {
			return len(cands[i].holders) < len(cands[j].holders)
		}
		return cands[i].block < cands[j].block
	})
	budget := b.cfg.MaxOutstandingRequests - b.outstandingRequests()
	for _, c := range cands {
		if budget == 0 {
			return
		}
		holder := c.holders[rng.Intn(len(c.holders))]
		b.Requested[c.block] = requestTTL
		ctx.Send(holder, Request{Block: c.block})
		budget--
	}
}

func (b *Bullet) outstandingRequests() int { return len(b.Requested) }

// HandleMessage implements sm.Service.
func (b *Bullet) HandleMessage(ctx sm.Context, from sm.NodeID, msg sm.Message) {
	switch m := msg.(type) {
	case Peering:
		b.addPeer(from)
		ctx.Send(from, PeeringAck{})
	case PeeringAck:
		b.addPeer(from)
	case Diff:
		b.addPeer(from)
		fm := b.FileMaps[from]
		for _, blk := range m.Blocks {
			fm[blk] = true
		}
		ctx.Send(from, Ack{})
	case Request:
		if b.Have[m.Block] && b.Outstanding[from] < b.cfg.Window {
			b.Outstanding[from]++
			ctx.Send(from, Data{Block: m.Block, Bytes: b.cfg.BlockSize})
		}
	case Data:
		delete(b.Requested, m.Block)
		if !b.Have[m.Block] {
			b.receiveBlock(m.Block)
		}
		ctx.Send(from, Ack{})
	case Ack:
		if b.Outstanding[from] > 0 {
			b.Outstanding[from]--
		}
	}
}

// receiveBlock installs a new block and queues it on every receiver's
// shadow map.
func (b *Bullet) receiveBlock(blk int) {
	b.Have[blk] = true
	for _, peer := range b.peers() {
		b.Shadow[peer][blk] = true
	}
	if len(b.Have) == b.cfg.Blocks {
		b.Complete = true
	}
}

// HandleApp implements sm.Service (Bullet′ is timer-driven).
func (b *Bullet) HandleApp(ctx sm.Context, call sm.AppCall) {}

// HandleTransportError implements sm.Service: drop the peering.
func (b *Bullet) HandleTransportError(ctx sm.Context, peer sm.NodeID) {
	delete(b.Shadow, peer)
	delete(b.Advertised, peer)
	delete(b.Outstanding, peer)
	if b.fixed(FixStaleFileMap) {
		// Bug 3: the stale per-sender file map survives the error,
		// leaving phantom blocks that skew rarest-random requests
		// toward a dead or amnesiac sender.
		delete(b.FileMaps, peer)
	}
}

// Neighbors implements sm.Service: the mesh peers.
func (b *Bullet) Neighbors() []sm.NodeID { return b.peers() }

// Progress reports how many blocks the node holds.
func (b *Bullet) Progress() int { return len(b.Have) }

// Clone implements sm.Service.
func (b *Bullet) Clone() sm.Service {
	cp := &Bullet{
		Self:        b.Self,
		Have:        cloneIntSet(b.Have),
		Shadow:      clonePeerBlocks(b.Shadow),
		Advertised:  clonePeerBlocks(b.Advertised),
		FileMaps:    clonePeerBlocks(b.FileMaps),
		Outstanding: make(map[sm.NodeID]int, len(b.Outstanding)),
		Requested:   make(map[int]int, len(b.Requested)),
		Complete:    b.Complete,
		cfg:         b.cfg,
	}
	for k, v := range b.Outstanding {
		cp.Outstanding[k] = v
	}
	for k, v := range b.Requested {
		cp.Requested[k] = v
	}
	return cp
}

func cloneIntSet(s map[int]bool) map[int]bool {
	out := make(map[int]bool, len(s))
	for k, v := range s {
		if v {
			out[k] = true
		}
	}
	return out
}

func clonePeerBlocks(m map[sm.NodeID]map[int]bool) map[sm.NodeID]map[int]bool {
	out := make(map[sm.NodeID]map[int]bool, len(m))
	for k, v := range m {
		out[k] = cloneIntSet(v)
	}
	return out
}

// EncodeState implements sm.Service.
func (b *Bullet) EncodeState(e *sm.Encoder) {
	e.NodeID(b.Self)
	encodeIntSet(e, b.Have)
	encodePeerBlocks(e, b.Shadow)
	encodePeerBlocks(e, b.Advertised)
	encodePeerBlocks(e, b.FileMaps)
	ids := make([]sm.NodeID, 0, len(b.Outstanding))
	for id := range b.Outstanding {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.Uint32(uint32(len(ids)))
	for _, id := range ids {
		e.NodeID(id)
		e.Int(b.Outstanding[id])
	}
	blocks := make([]int, 0, len(b.Requested))
	for blk := range b.Requested {
		blocks = append(blocks, blk)
	}
	sort.Ints(blocks)
	e.Uint32(uint32(len(blocks)))
	for _, blk := range blocks {
		e.Int(blk)
		e.Int(b.Requested[blk])
	}
	e.Bool(b.Complete)
}

func encodeIntSet(e *sm.Encoder, s map[int]bool) {
	blocks := make([]int, 0, len(s))
	for blk, ok := range s {
		if ok {
			blocks = append(blocks, blk)
		}
	}
	sort.Ints(blocks)
	e.Uint32(uint32(len(blocks)))
	for _, blk := range blocks {
		e.Int(blk)
	}
}

func encodePeerBlocks(e *sm.Encoder, m map[sm.NodeID]map[int]bool) {
	ids := make([]sm.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.Uint32(uint32(len(ids)))
	for _, id := range ids {
		e.NodeID(id)
		encodeIntSet(e, m[id])
	}
}

// DecodeState implements sm.Service.
func (b *Bullet) DecodeState(d *sm.Decoder) error {
	b.Self = d.NodeID()
	b.Have = decodeIntSet(d)
	b.Shadow = decodePeerBlocks(d)
	b.Advertised = decodePeerBlocks(d)
	b.FileMaps = decodePeerBlocks(d)
	n := int(d.Uint32())
	b.Outstanding = make(map[sm.NodeID]int, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		id := d.NodeID()
		b.Outstanding[id] = d.Int()
	}
	nr := int(d.Uint32())
	b.Requested = make(map[int]int, nr)
	for i := 0; i < nr && d.Err() == nil; i++ {
		blk := d.Int()
		b.Requested[blk] = d.Int()
	}
	b.Complete = d.Bool()
	return d.Err()
}

func decodeIntSet(d *sm.Decoder) map[int]bool {
	n := int(d.Uint32())
	out := make(map[int]bool, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out[d.Int()] = true
	}
	return out
}

func decodePeerBlocks(d *sm.Decoder) map[sm.NodeID]map[int]bool {
	n := int(d.Uint32())
	out := make(map[sm.NodeID]map[int]bool, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		id := d.NodeID()
		out[id] = decodeIntSet(d)
	}
	return out
}

// ServiceName implements sm.Service.
func (b *Bullet) ServiceName() string { return "bulletprime" }
