package bulletprime

import (
	"fmt"

	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	"crystalball/internal/sm"
)

// The bulletprime scenario: the Bullet′ block-dissemination mesh with the
// three Table 1 bugs seeded. Offline checking uses a deliberately small
// file (Bullet′ states are heavy); live deployments default to the sizes
// of the paper's staged runs. "bullet" is kept as a lookup alias.
func init() {
	scenario.Register(scenario.Scenario{
		Name:        "bulletprime",
		Aliases:     []string{"bullet"},
		Description: "Bullet' block dissemination mesh (3 seeded bugs, paper §5.2.3)",
		New: func(ids []sm.NodeID, o scenario.Options) (sm.Factory, error) {
			if o.Variant != "" {
				return nil, fmt.Errorf("unknown variant %q", o.Variant)
			}
			fixes := Fix(0)
			if o.Fixed {
				fixes = AllFixes
			}
			return New(Config{
				Members:   ids,
				Source:    ids[0],
				Blocks:    o.Blocks,
				BlockSize: o.BlockSize,
				MaxPeers:  o.Degree,
				Fixes:     fixes,
			}), nil
		},
		Props:      Properties,
		DebugProps: DebugProperties,
		Check:      scenario.Tuning{Nodes: 4, Blocks: 8, BlockSize: 16 << 10},
		Live:       scenario.Tuning{Nodes: 8, Blocks: 32, BlockSize: 64 << 10},
		Faults:     scenario.Faults{ExploreResets: true},
		Reduction:  true,
		CheckerPolicy: mc.PolicySpec{
			Kind: mc.PolicyFixed,
			Base: mc.Budget{States: 6000},
		},
	})
}
