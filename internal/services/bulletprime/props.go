package bulletprime

import (
	"crystalball/internal/props"
	"crystalball/internal/sm"
)

func bulletOf(v *props.View, id sm.NodeID) *Bullet {
	nv := v.Get(id)
	if nv == nil {
		return nil
	}
	b, _ := nv.Svc.(*Bullet)
	return b
}

// PropFileMapConsistency is the paper's Bullet′ property: "Sender's file
// map and receivers view of it should be identical." The sound, sender-side
// formulation: every block a sender holds must be either already advertised
// to each of its receivers or still pending in that receiver's shadow map —
// otherwise the receiver can never learn about the block. Bug 1 (shadow
// cleared on a refused enqueue) and bug 2 (empty shadow on peering) violate
// it.
var PropFileMapConsistency = props.Property{
	Name: "SenderReceiverFileMapsAgree",
	Check: func(v *props.View) bool {
		for _, sid := range v.IDs() {
			s := bulletOf(v, sid)
			if s == nil {
				continue
			}
			for _, rid := range s.peers() {
				shadow := s.Shadow[rid]
				adv := s.Advertised[rid]
				for blk := range s.Have {
					if !shadow[blk] && !adv[blk] {
						return false // never advertised, never will be
					}
				}
			}
		}
		return true
	},
}

// PropNoPhantomBlocks is the receiver-side complement: a receiver must not
// believe a sender holds blocks the sender does not have. A sender reset
// combined with bug 3 (stale per-sender file maps surviving transport
// errors) leaves such phantom blocks, which skew the rarest-random request
// policy. The inconsistency is transiently reachable even in fixed code
// (between a reset and the receiver's error observation), so it belongs to
// the debugging property set rather than the steering set.
var PropNoPhantomBlocks = props.Property{
	Name: "NoPhantomBlocks",
	Check: func(v *props.View) bool {
		for _, rid := range v.IDs() {
			r := bulletOf(v, rid)
			if r == nil {
				continue
			}
			for sid, fm := range r.FileMaps {
				s := bulletOf(v, sid)
				if s == nil {
					continue
				}
				for blk := range fm {
					if !s.Have[blk] {
						return false
					}
				}
			}
		}
		return true
	},
}

// Properties is the default Bullet′ property set (sound for steering).
var Properties = props.Set{PropFileMapConsistency}

// DebugProperties adds the receiver-side check used in deep online
// debugging runs.
var DebugProperties = props.Set{PropFileMapConsistency, PropNoPhantomBlocks}
