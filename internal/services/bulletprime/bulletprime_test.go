package bulletprime

import (
	"math/rand"
	"testing"
	"time"

	"crystalball/internal/props"
	"crystalball/internal/runtime"
	"crystalball/internal/sim"
	"crystalball/internal/simnet"
	"crystalball/internal/sm"
)

// testCtx implements sm.Context for handler-level tests.
type testCtx struct {
	self     sm.NodeID
	sends    []sm.MsgEvent
	timerSet map[sm.TimerID]bool
	rng      *rand.Rand
}

func newCtx(self sm.NodeID) *testCtx {
	return &testCtx{self: self, timerSet: map[sm.TimerID]bool{}, rng: rand.New(rand.NewSource(1))}
}

func (c *testCtx) Self() sm.NodeID { return c.self }
func (c *testCtx) Send(to sm.NodeID, msg sm.Message) {
	c.sends = append(c.sends, sm.MsgEvent{From: c.self, To: to, Msg: msg})
}
func (c *testCtx) SetTimer(t sm.TimerID, d sm.Duration) { c.timerSet[t] = true }
func (c *testCtx) CancelTimer(t sm.TimerID)             { delete(c.timerSet, t) }
func (c *testCtx) TimerPending(t sm.TimerID) bool       { return c.timerSet[t] }
func (c *testCtx) Rand() *rand.Rand                     { return c.rng }

func mkCfg(fixes Fix, members ...sm.NodeID) Config {
	return Config{
		Members:   members,
		Source:    members[0],
		Blocks:    8,
		BlockSize: 1024,
		Window:    2,
		Fixes:     fixes,
	}
}

func TestBug1ShadowClearedOnRefusedEnqueue(t *testing.T) {
	cfg := mkCfg(0, 1, 2)
	src := New(cfg)(1).(*Bullet) // source holds all 8 blocks
	src.addPeer(2)
	src.Shadow[2] = cloneIntSet(src.Have) // everything pending
	src.Outstanding[2] = cfg.Window       // transport queue full
	ctx := newCtx(1)
	src.sendDiff(ctx, 2)
	if len(ctx.sends) != 0 {
		t.Fatal("refused enqueue must not transmit")
	}
	if len(src.Shadow[2]) != 0 {
		t.Fatal("buggy path should have cleared the shadow map")
	}
	v := props.NewView()
	v.Add(1, src, nil)
	if PropFileMapConsistency.Check(v) {
		t.Fatal("property should be violated: blocks will never be advertised")
	}

	fixedSrc := New(mkCfg(FixShadowOnRefusal, 1, 2))(1).(*Bullet)
	fixedSrc.addPeer(2)
	fixedSrc.Shadow[2] = cloneIntSet(fixedSrc.Have)
	fixedSrc.Outstanding[2] = cfg.Window
	fixedSrc.sendDiff(newCtx(1), 2)
	if len(fixedSrc.Shadow[2]) != 8 {
		t.Fatal("fixed path must keep the shadow map for a later retry")
	}
	v2 := props.NewView()
	v2.Add(1, fixedSrc, nil)
	if !PropFileMapConsistency.Check(v2) {
		t.Fatal("fixed path should satisfy the property")
	}
}

func TestBug1RetrySucceedsAfterFix(t *testing.T) {
	cfg := mkCfg(FixShadowOnRefusal, 1, 2)
	src := New(cfg)(1).(*Bullet)
	src.addPeer(2)
	src.Shadow[2] = cloneIntSet(src.Have)
	src.Outstanding[2] = cfg.Window
	ctx := newCtx(1)
	src.sendDiff(ctx, 2) // refused
	src.Outstanding[2] = 0
	src.sendDiff(ctx, 2) // retried
	if len(ctx.sends) != 1 {
		t.Fatalf("retry should transmit exactly one diff, got %d", len(ctx.sends))
	}
	diff := ctx.sends[0].Msg.(Diff)
	if len(diff.Blocks) != 8 {
		t.Fatalf("diff lost blocks: %v", diff.Blocks)
	}
}

func TestBug2EmptyShadowOnPeering(t *testing.T) {
	src := New(mkCfg(0, 1, 2))(1).(*Bullet)
	ctx := newCtx(1)
	src.HandleMessage(ctx, 2, Peering{})
	if len(src.Shadow[2]) != 0 {
		t.Fatal("buggy peering should start with an empty shadow map")
	}
	v := props.NewView()
	v.Add(1, src, nil)
	if PropFileMapConsistency.Check(v) {
		t.Fatal("property should be violated: held blocks never advertised")
	}

	fixedSrc := New(mkCfg(FixShadowOnPeering, 1, 2))(1).(*Bullet)
	fixedSrc.HandleMessage(newCtx(1), 2, Peering{})
	if len(fixedSrc.Shadow[2]) != 8 {
		t.Fatalf("fixed peering should seed the shadow with all held blocks, got %d", len(fixedSrc.Shadow[2]))
	}
}

func TestBug3StaleFileMapAcrossError(t *testing.T) {
	r := New(mkCfg(0, 1, 2))(2).(*Bullet)
	r.addPeer(1)
	r.FileMaps[1][3] = true
	ctx := newCtx(2)
	r.HandleTransportError(ctx, 1)
	if len(r.FileMaps[1]) == 0 {
		t.Fatal("buggy error handler should keep the stale file map")
	}
	// The phantom shows once the sender is reborn without the block.
	freshSender := New(mkCfg(0, 1, 2))(1).(*Bullet)
	freshSender.Have = map[int]bool{}
	v := props.NewView()
	v.Add(1, freshSender, nil)
	v.Add(2, r, nil)
	if PropNoPhantomBlocks.Check(v) {
		t.Fatal("phantom-block property should be violated")
	}

	f := New(mkCfg(FixStaleFileMap, 1, 2))(2).(*Bullet)
	f.addPeer(1)
	f.FileMaps[1][3] = true
	f.HandleTransportError(newCtx(2), 1)
	if len(f.FileMaps[1]) != 0 {
		t.Fatal("fixed error handler should clear the stale file map")
	}
}

// deployBullet brings up a fully fixed Bullet′ swarm.
func deployBullet(t *testing.T, seed int64, n, blocks int, fixes Fix) (*sim.Simulator, []*runtime.Node) {
	t.Helper()
	s := sim.New(seed)
	net := simnet.New(s, simnet.UniformPath{Latency: 10 * time.Millisecond, BwBps: 1e8})
	ids := make([]sm.NodeID, n)
	for i := range ids {
		ids[i] = sm.NodeID(i + 1)
	}
	cfg := Config{
		Members:   ids,
		Source:    1,
		Blocks:    blocks,
		BlockSize: 16 << 10,
		Fixes:     fixes,
	}
	factory := New(cfg)
	nodes := make([]*runtime.Node, n)
	for i, id := range ids {
		nodes[i] = runtime.NewNode(s, net, id, factory)
	}
	return s, nodes
}

func TestSwarmCompletesDownload(t *testing.T) {
	s, nodes := deployBullet(t, 1, 6, 16, AllFixes)
	deadline := 300 * time.Second
	s.RunFor(deadline)
	for _, node := range nodes {
		b := node.Service().(*Bullet)
		if !b.Complete && b.Self != 1 {
			t.Fatalf("node %v incomplete: %d/%d blocks", b.Self, b.Progress(), 16)
		}
	}
}

func TestBuggySwarmStallsWithoutFixes(t *testing.T) {
	// With bug 2 present (empty shadow on peering) the source never
	// advertises its pre-existing blocks, so no one can download
	// anything: the swarm stalls completely.
	s, nodes := deployBullet(t, 2, 4, 16, 0)
	s.RunFor(120 * time.Second)
	for _, node := range nodes {
		b := node.Service().(*Bullet)
		if b.Self == 1 {
			continue
		}
		if b.Progress() != 0 {
			t.Fatalf("node %v somehow got %d blocks despite the bug", b.Self, b.Progress())
		}
	}
}

func TestLiveSwarmSatisfiesSenderProperty(t *testing.T) {
	s, nodes := deployBullet(t, 3, 5, 12, AllFixes)
	for i := 0; i < 60; i++ {
		s.RunFor(2 * time.Second)
		v := props.NewView()
		for _, node := range nodes {
			svc, timers := node.View()
			v.Add(node.ID, svc, timers)
		}
		if violated := Properties.Check(v); len(violated) > 0 {
			t.Fatalf("fixed swarm violated %v at poll %d", violated, i)
		}
	}
}

func TestRarestRandomPrefersRareBlocks(t *testing.T) {
	cfg := mkCfg(AllFixes, 1, 2, 3)
	b := New(cfg)(3).(*Bullet)
	b.addPeer(1)
	b.addPeer(2)
	// Block 0 is held by both senders; block 1 only by sender 1.
	b.FileMaps[1][0] = true
	b.FileMaps[2][0] = true
	b.FileMaps[1][1] = true
	ctx := newCtx(3)
	b.cfg.MaxOutstandingRequests = 1 // force a single choice
	b.issueRequests(ctx)
	if len(ctx.sends) != 1 {
		t.Fatalf("sends = %d, want 1", len(ctx.sends))
	}
	req := ctx.sends[0].Msg.(Request)
	if req.Block != 1 {
		t.Fatalf("requested block %d, want the rarer block 1", req.Block)
	}
	if ctx.sends[0].To != 1 {
		t.Fatalf("requested from %v, want the only holder 1", ctx.sends[0].To)
	}
}

func TestWindowLimitsOutstandingData(t *testing.T) {
	cfg := mkCfg(AllFixes, 1, 2)
	src := New(cfg)(1).(*Bullet)
	src.addPeer(2)
	ctx := newCtx(1)
	for i := 0; i < 5; i++ {
		src.HandleMessage(ctx, 2, Request{Block: i})
	}
	dataCount := 0
	for _, s := range ctx.sends {
		if _, ok := s.Msg.(Data); ok {
			dataCount++
		}
	}
	if dataCount != cfg.Window {
		t.Fatalf("data messages = %d, want window %d", dataCount, cfg.Window)
	}
	// Acks drain the queue and allow more.
	src.HandleMessage(ctx, 2, Ack{})
	src.HandleMessage(ctx, 2, Request{Block: 7})
	last := ctx.sends[len(ctx.sends)-1]
	if _, ok := last.Msg.(Data); !ok {
		t.Fatal("ack did not free a queue slot")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cfg := mkCfg(FixShadowOnRefusal, 1, 2, 3)
	b := New(cfg)(1).(*Bullet)
	b.addPeer(2)
	b.Shadow[2][5] = true
	b.Advertised[2][1] = true
	b.FileMaps[3] = map[int]bool{2: true}
	b.Outstanding[2] = 3
	b.Requested[4] = 2
	b.Complete = true
	data := sm.EncodeFullState(b, map[sm.TimerID]bool{TimerDiff: true})
	svc, timers, err := sm.DecodeFullState(New(cfg), 1, data)
	if err != nil {
		t.Fatal(err)
	}
	q := svc.(*Bullet)
	if sm.HashService(b) != sm.HashService(q) {
		t.Fatal("hash mismatch after round trip")
	}
	if !q.Shadow[2][5] || !q.Advertised[2][1] || !q.FileMaps[3][2] || q.Outstanding[2] != 3 || q.Requested[4] != 2 || !q.Complete {
		t.Fatalf("state lost in round trip: %+v", q)
	}
	if !timers[TimerDiff] {
		t.Fatal("timers lost")
	}
}

func TestCloneIndependence(t *testing.T) {
	b := New(mkCfg(0, 1, 2))(1).(*Bullet)
	b.addPeer(2)
	b.Shadow[2][1] = true
	cp := b.Clone().(*Bullet)
	cp.Shadow[2][9] = true
	delete(cp.Have, 0)
	if b.Shadow[2][9] || !b.Have[0] {
		t.Fatal("clone shares state")
	}
}
