package randtree

import (
	"fmt"

	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	"crystalball/internal/sm"
)

// The randtree scenario: the paper's control-tree overlay with the seven
// Table 1 bugs seeded. Offline checking uses the service's natural degree
// bound; live deployments run the degree-3 configuration of the paper's
// staged experiments.
func init() {
	scenario.Register(scenario.Scenario{
		Name:        "randtree",
		Description: "random degree-bounded overlay tree (7 seeded bugs, paper §1.2)",
		New: func(ids []sm.NodeID, o scenario.Options) (sm.Factory, error) {
			if o.Variant != "" {
				return nil, fmt.Errorf("unknown variant %q", o.Variant)
			}
			fixes := Fix(0)
			if o.Fixed {
				fixes = AllFixes
			}
			return New(Config{Bootstrap: ids[:1], MaxChildren: o.Degree, Fixes: fixes}), nil
		},
		Props:     Properties,
		Check:     scenario.Tuning{Nodes: 5},
		Live:      scenario.Tuning{Nodes: 12, Degree: 3},
		Faults:    scenario.Faults{ExploreResets: true},
		Reduction: true,
		// Declared as a policy spec (fixed, 8000 states/round — the
		// long-standing value); -policy scaled|adaptive retunes the
		// same base at deploy time.
		CheckerPolicy: mc.PolicySpec{Kind: mc.PolicyFixed, Base: mc.Budget{States: 8000}},
		Join:          func() sm.AppCall { return AppJoin{} },
	})
}
