// Package randtree implements the RandTree random overlay tree from the
// CrystalBall paper (section 1.2): a random, degree-constrained overlay
// tree resilient to node failures and network partitions. Trees built by
// this protocol serve as the control tree for Bullet′ and similar services.
//
// Topology rules (paper): nodes form a directed tree of bounded degree;
// each node keeps a children list and the root's address; the node with the
// numerically smallest identifier acts as root; non-root nodes keep a
// parent pointer; children of the root keep a sibling list.
//
// Join protocol (paper): a joining node sends a Join request to a
// designated node; non-roots forward it to the root; a root over capacity
// delegates to a child; the accepting parent replies with JoinReply and, if
// it is the root, tells its other children about the new sibling with
// UpdateSibling. A root that sees a Join from a numerically smaller node
// relinquishes the root role: it sends its own Join to the newcomer and, on
// acceptance, announces the new root to its children with NewRoot.
//
// The package ships with the seven inconsistency bugs CrystalBall found in
// the mature Mace implementation *enabled by default* (Table 1 reports 7
// RandTree bugs); each has a Fix flag so tests can assert both behaviours.
package randtree

import (
	"crystalball/internal/sm"
)

// Timer names.
const (
	// TimerRecovery periodically probes peer-list members (paper:
	// "Recovery Timer Should Always Run").
	TimerRecovery sm.TimerID = "recovery"
	// TimerJoin retries joining while not joined.
	TimerJoin sm.TimerID = "join-retry"
)

// Fix flags: each disables one of the seeded bugs (see DESIGN.md section 5).
type Fix uint32

// Fixes for the seven seeded RandTree bugs.
const (
	// FixUpdateSiblingChildren removes a newly announced sibling from
	// the children list (paper Figure 2's bug).
	FixUpdateSiblingChildren Fix = 1 << iota
	// FixJoinReplyStale purges the new parent/root from stale children
	// and sibling entries in the JoinReply handler (the paper's
	// "variations of this bug ... in other handlers").
	FixJoinReplyStale
	// FixNewRootChild purges the announced root from the children list
	// (paper Figure 9: "Root ... appears as a child").
	FixNewRootChild
	// FixPromoteSiblings clears the sibling list when a node promotes
	// itself to root after losing its parent ("Root Has No Siblings").
	FixPromoteSiblings
	// FixJoinSelfTimer schedules the recovery timer when a node joins
	// as its own root ("Recovery Timer Should Always Run").
	FixJoinSelfTimer
	// FixAcceptChildSibling removes an accepted child from the sibling
	// list.
	FixAcceptChildSibling
	// FixRelinquishSiblings clears the sibling list (and stale parent
	// info) when the root relinquishes in favor of a smaller node.
	FixRelinquishSiblings

	// AllFixes enables every repair.
	AllFixes Fix = 1<<7 - 1
)

// Config parameterises the service.
type Config struct {
	// Bootstrap lists designated nodes a joiner contacts.
	Bootstrap []sm.NodeID
	// MaxChildren bounds node degree (default 4).
	MaxChildren int
	// Fixes disables seeded bugs.
	Fixes Fix
	// RecoveryInterval is the probe period (default 5 s).
	RecoveryInterval sm.Duration
	// JoinRetryInterval is the join retry period (default 2 s).
	JoinRetryInterval sm.Duration
}

func (c *Config) defaults() {
	if c.MaxChildren == 0 {
		c.MaxChildren = 4
	}
	if c.RecoveryInterval == 0 {
		c.RecoveryInterval = 5 * sm.Second
	}
	if c.JoinRetryInterval == 0 {
		c.JoinRetryInterval = 2 * sm.Second
	}
}

// New returns an sm.Factory producing RandTree instances with cfg.
func New(cfg Config) sm.Factory {
	cfg.defaults()
	return func(self sm.NodeID) sm.Service {
		return &Tree{
			Self:     self,
			Root:     sm.NoNode,
			Parent:   sm.NoNode,
			Children: make(map[sm.NodeID]bool),
			Siblings: make(map[sm.NodeID]bool),
			Peers:    make(map[sm.NodeID]bool),
			cfg:      cfg,
		}
	}
}

// Tree is the per-node RandTree state machine.
type Tree struct {
	Self   sm.NodeID
	Joined bool
	// Joining is set while a Join request is outstanding; a node with a
	// pending join that receives a Join from a larger node has been
	// selected as the new root (the handover handshake of Figure 9).
	Joining  bool
	IsRoot   bool
	Root     sm.NodeID
	Parent   sm.NodeID
	Children map[sm.NodeID]bool
	Siblings map[sm.NodeID]bool
	// Peers is the peer list the recovery timer probes: every member
	// this node is aware of.
	Peers map[sm.NodeID]bool

	cfg Config
}

func (t *Tree) fixed(f Fix) bool { return t.cfg.Fixes&f != 0 }

// Messages.

// Join asks the receiver (or the root it forwards to) to adopt Origin.
type Join struct{ Origin sm.NodeID }

// MsgType implements sm.Message.
func (Join) MsgType() string { return "Join" }

// Size implements sm.Message.
func (Join) Size() int { return 12 }

// EncodeMsg implements sm.Message.
func (m Join) EncodeMsg(e *sm.Encoder) { e.NodeID(m.Origin) }

// JoinReply tells a joiner it was accepted; Root carries the root address.
type JoinReply struct{ Root sm.NodeID }

// MsgType implements sm.Message.
func (JoinReply) MsgType() string { return "JoinReply" }

// Size implements sm.Message.
func (JoinReply) Size() int { return 12 }

// EncodeMsg implements sm.Message.
func (m JoinReply) EncodeMsg(e *sm.Encoder) { e.NodeID(m.Root) }

// UpdateSibling tells a root's child about a sibling change.
type UpdateSibling struct {
	Sibling sm.NodeID
	Add     bool
}

// MsgType implements sm.Message.
func (UpdateSibling) MsgType() string { return "UpdateSibling" }

// Size implements sm.Message.
func (UpdateSibling) Size() int { return 13 }

// EncodeMsg implements sm.Message.
func (m UpdateSibling) EncodeMsg(e *sm.Encoder) { e.NodeID(m.Sibling); e.Bool(m.Add) }

// NewRoot announces a root handover to the old root's children.
type NewRoot struct{ Root sm.NodeID }

// MsgType implements sm.Message.
func (NewRoot) MsgType() string { return "NewRoot" }

// Size implements sm.Message.
func (NewRoot) Size() int { return 12 }

// EncodeMsg implements sm.Message.
func (m NewRoot) EncodeMsg(e *sm.Encoder) { e.NodeID(m.Root) }

// Probe asks a peer for its view (recovery protocol).
type Probe struct{}

// MsgType implements sm.Message.
func (Probe) MsgType() string { return "Probe" }

// Size implements sm.Message.
func (Probe) Size() int { return 4 }

// EncodeMsg implements sm.Message.
func (Probe) EncodeMsg(e *sm.Encoder) {}

// ProbeReply carries the prober's view of the replier.
type ProbeReply struct {
	IsRoot bool
	Root   sm.NodeID
	Parent sm.NodeID
}

// MsgType implements sm.Message.
func (ProbeReply) MsgType() string { return "ProbeReply" }

// Size implements sm.Message.
func (ProbeReply) Size() int { return 13 }

// EncodeMsg implements sm.Message.
func (m ProbeReply) EncodeMsg(e *sm.Encoder) { e.Bool(m.IsRoot); e.NodeID(m.Root); e.NodeID(m.Parent) }

// AppJoin is the application call asking the node to join the overlay.
type AppJoin struct{}

// CallName implements sm.AppCall.
func (AppJoin) CallName() string { return "AppJoin" }

// EncodeCall implements sm.AppCall.
func (AppJoin) EncodeCall(e *sm.Encoder) {}

// Init implements sm.Service; RandTree waits for an AppJoin.
func (t *Tree) Init(ctx sm.Context) {}

// HandleApp implements sm.Service.
func (t *Tree) HandleApp(ctx sm.Context, call sm.AppCall) {
	if call.CallName() != "AppJoin" || t.Joined {
		return
	}
	target := t.pickBootstrap(ctx)
	if target == sm.NoNode {
		// No designated node other than ourselves: join as our own
		// root (paper: "node A joins itself, and changes its state to
		// 'joined' but does not schedule any timers" — bug 5).
		t.Joined = true
		t.IsRoot = true
		t.Root = t.Self
		t.Parent = sm.NoNode
		if t.fixed(FixJoinSelfTimer) {
			ctx.SetTimer(TimerRecovery, t.cfg.RecoveryInterval)
		}
		return
	}
	t.Joining = true
	ctx.Send(target, Join{Origin: t.Self})
	ctx.SetTimer(TimerJoin, t.cfg.JoinRetryInterval)
}

func (t *Tree) pickBootstrap(ctx sm.Context) sm.NodeID {
	var candidates []sm.NodeID
	for _, b := range t.cfg.Bootstrap {
		if b != t.Self {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) == 0 {
		return sm.NoNode
	}
	return candidates[ctx.Rand().Intn(len(candidates))]
}

// HandleTimer implements sm.Service.
func (t *Tree) HandleTimer(ctx sm.Context, timer sm.TimerID) {
	switch timer {
	case TimerJoin:
		if t.Joined {
			return
		}
		if target := t.pickBootstrap(ctx); target != sm.NoNode {
			t.Joining = true
			ctx.Send(target, Join{Origin: t.Self})
		} else {
			// Alone: self-join via the app path.
			t.HandleApp(ctx, AppJoin{})
			return
		}
		ctx.SetTimer(TimerJoin, t.cfg.JoinRetryInterval)
	case TimerRecovery:
		// Probe peer-list members to keep the view fresh (paper:
		// "vital for the tree's consistency").
		for p := range t.Peers {
			if p != t.Self && p != t.Parent && !t.Children[p] {
				ctx.Send(p, Probe{})
			}
		}
		ctx.SetTimer(TimerRecovery, t.cfg.RecoveryInterval)
	}
}

// HandleMessage implements sm.Service.
func (t *Tree) HandleMessage(ctx sm.Context, from sm.NodeID, msg sm.Message) {
	switch m := msg.(type) {
	case Join:
		t.handleJoin(ctx, from, m)
	case JoinReply:
		t.handleJoinReply(ctx, from, m)
	case UpdateSibling:
		t.handleUpdateSibling(ctx, from, m)
	case NewRoot:
		t.handleNewRoot(ctx, from, m)
	case Probe:
		ctx.Send(from, ProbeReply{IsRoot: t.IsRoot && t.Joined, Root: t.Root, Parent: t.Parent})
	case ProbeReply:
		t.handleProbeReply(ctx, from, m)
	}
}

func (t *Tree) handleJoin(ctx sm.Context, from sm.NodeID, m Join) {
	origin := m.Origin
	if origin == t.Self {
		return
	}
	if !t.Joined {
		if !t.Joining || origin < t.Self {
			// Not part of a join handshake we initiated: ignore.
			return
		}
		// A joining node that receives a Join from a larger node has
		// been chosen as the new root by the old root (the handover
		// handshake in paper Figure 9): become root, adopt the sender.
		t.Joined = true
		t.Joining = false
		t.IsRoot = true
		t.Root = t.Self
		t.Parent = sm.NoNode
		ctx.CancelTimer(TimerJoin)
		ctx.SetTimer(TimerRecovery, t.cfg.RecoveryInterval)
		t.accept(ctx, origin)
		return
	}
	if t.IsRoot && origin < t.Self {
		// The newcomer is more eligible: relinquish the root role.
		// Send our own Join to it; on JoinReply we announce NewRoot.
		ctx.Send(origin, Join{Origin: t.Self})
		return
	}
	if !t.IsRoot && from != t.Parent && from != t.Root {
		// A direct request to a non-root member: forward to the root
		// (paper: "If the node receiving the join request is not the
		// root, it forwards the request to the root").
		if t.Root != sm.NoNode && t.Root != t.Self {
			ctx.Send(t.Root, m)
		}
		return
	}
	// Either we are the root, or the request was delegated down to us
	// ("it asks one of its children to incorporate the node").
	if t.Children[origin] {
		// Duplicate join (e.g. retry): re-send the reply.
		ctx.Send(origin, JoinReply{Root: t.Root})
		return
	}
	if len(t.Children) < t.cfg.MaxChildren {
		t.accept(ctx, origin)
		return
	}
	// Full: delegate to a random child.
	children := sm.SortedNodes(t.Children)
	ctx.Send(children[ctx.Rand().Intn(len(children))], m)
}

// accept adopts origin as a child and, when we are root, updates the other
// children's sibling lists.
func (t *Tree) accept(ctx sm.Context, origin sm.NodeID) {
	t.Children[origin] = true
	t.Peers[origin] = true
	if t.fixed(FixAcceptChildSibling) {
		// Bug 6: a stale sibling entry for the new child survives.
		delete(t.Siblings, origin)
	}
	ctx.Send(origin, JoinReply{Root: t.Root})
	if t.IsRoot {
		for c := range t.Children {
			if c != origin {
				ctx.Send(c, UpdateSibling{Sibling: origin, Add: true})
			}
		}
	}
}

func (t *Tree) handleJoinReply(ctx sm.Context, from sm.NodeID, m JoinReply) {
	if t.Joined && t.IsRoot {
		// We relinquished the root role to `from` (paper Figure 9):
		// become its child and announce the new root to our children.
		t.IsRoot = false
		t.Parent = from
		t.Root = m.Root
		t.Peers[from] = true
		for c := range t.Children {
			ctx.Send(c, NewRoot{Root: m.Root})
		}
		if t.fixed(FixRelinquishSiblings) {
			// Bug 7: the relinquishing root keeps its stale sibling
			// list ("clean the sibling list whenever a node
			// relinquishes the root position").
			t.Siblings = make(map[sm.NodeID]bool)
		}
		return
	}
	// Normal join acceptance.
	t.Joined = true
	t.Joining = false
	t.IsRoot = false
	t.Parent = from
	t.Root = m.Root
	t.Peers[from] = true
	if m.Root != sm.NoNode {
		t.Peers[m.Root] = true
	}
	ctx.CancelTimer(TimerJoin)
	ctx.SetTimer(TimerRecovery, t.cfg.RecoveryInterval)
	if t.fixed(FixJoinReplyStale) {
		// Bug 2: stale children/sibling entries for the new parent
		// and root survive a rejoin.
		delete(t.Children, from)
		delete(t.Siblings, from)
		delete(t.Children, m.Root)
	}
}

func (t *Tree) handleUpdateSibling(ctx sm.Context, from sm.NodeID, m UpdateSibling) {
	if from != t.Parent && from != t.Root {
		return
	}
	if m.Add {
		t.Siblings[m.Sibling] = true
		t.Peers[m.Sibling] = true
		if t.fixed(FixUpdateSiblingChildren) {
			// Bug 1 (paper Figure 2): the new sibling may still sit
			// in our children list after its silent reset + rejoin;
			// the handler must remove it.
			delete(t.Children, m.Sibling)
		}
	} else {
		delete(t.Siblings, m.Sibling)
	}
}

func (t *Tree) handleNewRoot(ctx sm.Context, from sm.NodeID, m NewRoot) {
	if from != t.Parent && from != t.Root {
		return
	}
	t.Root = m.Root
	t.Peers[m.Root] = true
	if t.fixed(FixNewRootChild) {
		// Bug 3 (paper Figure 9): "check the children list whenever
		// installing information about the new root node".
		delete(t.Children, m.Root)
		delete(t.Siblings, m.Root)
	}
}

func (t *Tree) handleProbeReply(ctx sm.Context, from sm.NodeID, m ProbeReply) {
	// Recovery repairs: a peer that declares itself root cannot be our
	// child or sibling; adopt its root pointer if we lack one.
	if m.IsRoot {
		delete(t.Children, from)
		delete(t.Siblings, from)
		if !t.IsRoot {
			t.Root = from
			t.Peers[from] = true
		}
	}
}

// HandleTransportError implements sm.Service: a broken connection purges
// the peer; losing the parent triggers self-promotion (paper "Root Has No
// Siblings" scenario).
func (t *Tree) HandleTransportError(ctx sm.Context, peer sm.NodeID) {
	wasParent := peer == t.Parent
	delete(t.Children, peer)
	delete(t.Siblings, peer)
	delete(t.Peers, peer)
	if !t.Joined {
		// The join target died: retry soon via the join timer.
		ctx.SetTimer(TimerJoin, t.cfg.JoinRetryInterval)
		return
	}
	if wasParent {
		// Promote ourselves to root; the recovery protocol will merge
		// partitions later.
		t.Parent = sm.NoNode
		t.IsRoot = true
		t.Root = t.Self
		if t.fixed(FixPromoteSiblings) {
			// Bug 4: the promoted root keeps its stale sibling list.
			t.Siblings = make(map[sm.NodeID]bool)
		}
	}
	if peer == t.Root && !t.IsRoot {
		t.Root = sm.NoNode
	}
}

// Neighbors implements sm.Service: parent, children, siblings and root —
// exactly the paper's "a node is typically aware of the root, its parent,
// its children, and its siblings".
func (t *Tree) Neighbors() []sm.NodeID {
	set := make(map[sm.NodeID]bool)
	if t.Parent != sm.NoNode {
		set[t.Parent] = true
	}
	if t.Root != sm.NoNode && t.Root != t.Self {
		set[t.Root] = true
	}
	for c := range t.Children {
		set[c] = true
	}
	for s := range t.Siblings {
		set[s] = true
	}
	delete(set, t.Self)
	return sm.SortedNodes(set)
}

// Clone implements sm.Service.
func (t *Tree) Clone() sm.Service {
	return &Tree{
		Self:     t.Self,
		Joined:   t.Joined,
		Joining:  t.Joining,
		IsRoot:   t.IsRoot,
		Root:     t.Root,
		Parent:   t.Parent,
		Children: sm.CloneNodeSet(t.Children),
		Siblings: sm.CloneNodeSet(t.Siblings),
		Peers:    sm.CloneNodeSet(t.Peers),
		cfg:      t.cfg,
	}
}

// EncodeState implements sm.Service.
func (t *Tree) EncodeState(e *sm.Encoder) {
	e.NodeID(t.Self)
	e.Bool(t.Joined)
	e.Bool(t.Joining)
	e.Bool(t.IsRoot)
	e.NodeID(t.Root)
	e.NodeID(t.Parent)
	e.NodeSet(t.Children)
	e.NodeSet(t.Siblings)
	e.NodeSet(t.Peers)
}

// DecodeState implements sm.Service.
func (t *Tree) DecodeState(d *sm.Decoder) error {
	t.Self = d.NodeID()
	t.Joined = d.Bool()
	t.Joining = d.Bool()
	t.IsRoot = d.Bool()
	t.Root = d.NodeID()
	t.Parent = d.NodeID()
	t.Children = d.NodeSet()
	t.Siblings = d.NodeSet()
	t.Peers = d.NodeSet()
	return d.Err()
}

// ServiceName implements sm.Service.
func (t *Tree) ServiceName() string { return "randtree" }

// ModelAppCalls implements sm.ModelActions: an unjoined node may attempt
// to join.
func (t *Tree) ModelAppCalls() []sm.AppCall {
	if !t.Joined {
		return []sm.AppCall{AppJoin{}}
	}
	return nil
}
