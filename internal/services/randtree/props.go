package randtree

import (
	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// treeOf extracts the Tree state from a node view, or nil.
func treeOf(v *props.View, id sm.NodeID) *Tree {
	nv := v.Get(id)
	if nv == nil {
		return nil
	}
	t, _ := nv.Svc.(*Tree)
	return t
}

// PropChildrenSiblingsDisjoint is the paper's first RandTree safety
// property: "children and siblings are disjoint lists" (Figure 2).
var PropChildrenSiblingsDisjoint = props.Property{
	Name: "ChildrenSiblingsDisjoint",
	Check: func(v *props.View) bool {
		for _, id := range v.IDs() {
			t := treeOf(v, id)
			if t == nil {
				continue
			}
			for c := range t.Children {
				if t.Siblings[c] {
					return false
				}
			}
		}
		return true
	},
}

// PropRootNotChildOrSibling: a node that considers itself (joined) root
// must not appear in any view node's children or sibling list (paper
// Figure 9: "Root (9) appears as a child").
var PropRootNotChildOrSibling = props.Property{
	Name: "RootNotChildOrSibling",
	Check: func(v *props.View) bool {
		for _, rid := range v.IDs() {
			r := treeOf(v, rid)
			if r == nil || !r.Joined || !r.IsRoot {
				continue
			}
			for _, oid := range v.IDs() {
				if oid == rid {
					continue
				}
				o := treeOf(v, oid)
				if o == nil {
					continue
				}
				if o.Children[rid] || o.Siblings[rid] {
					return false
				}
			}
		}
		return true
	},
}

// PropRootHasNoSiblings: "root node should contain no sibling pointers".
var PropRootHasNoSiblings = props.Property{
	Name: "RootHasNoSiblings",
	Check: func(v *props.View) bool {
		for _, id := range v.IDs() {
			t := treeOf(v, id)
			if t == nil {
				continue
			}
			if t.Joined && t.IsRoot && len(t.Siblings) > 0 {
				return false
			}
		}
		return true
	},
}

// PropRecoveryTimer: "the recovery timer should always be scheduled" for a
// joined node with a non-empty peer list (the property from the MaceMC
// work whose violation CrystalBall was first to observe).
var PropRecoveryTimer = props.Property{
	Name: "RecoveryTimerRuns",
	Check: func(v *props.View) bool {
		for _, id := range v.IDs() {
			nv := v.Get(id)
			t, _ := nv.Svc.(*Tree)
			if t == nil {
				continue
			}
			if t.Joined && len(t.Peers) > 0 && !nv.TimerPending(TimerRecovery) {
				return false
			}
		}
		return true
	},
}

// Properties is the default RandTree safety-property set used by the
// experiments.
var Properties = props.Set{
	PropChildrenSiblingsDisjoint,
	PropRootNotChildOrSibling,
	PropRootHasNoSiblings,
	PropRecoveryTimer,
}
