package randtree

import (
	"math/rand"
	"testing"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/runtime"
	"crystalball/internal/sim"
	"crystalball/internal/simnet"
	"crystalball/internal/sm"
)

// --- handler-level unit tests ----------------------------------------------

// testCtx implements sm.Context capturing sends for direct handler tests.
type testCtx struct {
	self     sm.NodeID
	sends    []sm.MsgEvent
	timerSet map[sm.TimerID]bool
	rng      *rand.Rand
}

func newRealCtx(self sm.NodeID) *testCtx {
	return &testCtx{
		self:     self,
		timerSet: map[sm.TimerID]bool{},
		rng:      rand.New(rand.NewSource(1)),
	}
}

func (c *testCtx) Self() sm.NodeID { return c.self }
func (c *testCtx) Send(to sm.NodeID, msg sm.Message) {
	c.sends = append(c.sends, sm.MsgEvent{From: c.self, To: to, Msg: msg})
}
func (c *testCtx) SetTimer(t sm.TimerID, d sm.Duration) { c.timerSet[t] = true }
func (c *testCtx) CancelTimer(t sm.TimerID)             { delete(c.timerSet, t) }
func (c *testCtx) TimerPending(t sm.TimerID) bool       { return c.timerSet[t] }
func (c *testCtx) Rand() *rand.Rand                     { return c.rng }

func mk(self sm.NodeID, fixes Fix, bootstrap ...sm.NodeID) *Tree {
	return New(Config{Bootstrap: bootstrap, Fixes: fixes})(self).(*Tree)
}

func TestBug1UpdateSiblingKeepsStaleChild(t *testing.T) {
	// Node n9's view in Figure 2: n13 is its child; the root announces
	// n13 as a new sibling after n13's silent reset + rejoin.
	n9 := mk(9, 0)
	n9.Joined = true
	n9.Parent = 1
	n9.Root = 1
	n9.Children[13] = true
	ctx := newRealCtx(9)
	n9.HandleMessage(ctx, 1, UpdateSibling{Sibling: 13, Add: true})
	if !n9.Children[13] || !n9.Siblings[13] {
		t.Fatal("buggy handler should leave n13 in both lists")
	}
	v := props.NewView()
	v.Add(9, n9, nil)
	if PropChildrenSiblingsDisjoint.Check(v) {
		t.Fatal("property should be violated")
	}

	fixed := mk(9, FixUpdateSiblingChildren)
	fixed.Joined = true
	fixed.Parent = 1
	fixed.Root = 1
	fixed.Children[13] = true
	fixed.HandleMessage(ctx, 1, UpdateSibling{Sibling: 13, Add: true})
	if fixed.Children[13] {
		t.Fatal("fixed handler should purge the stale child entry")
	}
	if !fixed.Siblings[13] {
		t.Fatal("fixed handler should still add the sibling")
	}
}

func TestBug3NewRootKeptAsChild(t *testing.T) {
	// Figure 9: node 69 has 9 as a child; NewRoot(9) arrives.
	n69 := mk(69, 0)
	n69.Joined = true
	n69.Parent = 61
	n69.Root = 61
	n69.Children[9] = true
	ctx := newRealCtx(69)
	n69.HandleMessage(ctx, 61, NewRoot{Root: 9})
	if !n69.Children[9] {
		t.Fatal("buggy handler should keep the stale child")
	}

	fixed := mk(69, FixNewRootChild)
	fixed.Joined = true
	fixed.Parent = 61
	fixed.Root = 61
	fixed.Children[9] = true
	fixed.HandleMessage(ctx, 61, NewRoot{Root: 9})
	if fixed.Children[9] {
		t.Fatal("fixed handler should purge the new root from children")
	}
	if fixed.Root != 9 {
		t.Fatal("root pointer not installed")
	}
}

func TestBug4PromotionKeepsSiblings(t *testing.T) {
	b := mk(5, 0)
	b.Joined = true
	b.Parent = 2
	b.Root = 2
	b.Siblings[7] = true
	ctx := newRealCtx(5)
	b.HandleTransportError(ctx, 2) // parent reset its connections
	if !b.IsRoot {
		t.Fatal("node should promote itself on parent loss")
	}
	if len(b.Siblings) == 0 {
		t.Fatal("buggy promotion should keep the stale sibling list")
	}
	v := props.NewView()
	v.Add(5, b, nil)
	if PropRootHasNoSiblings.Check(v) {
		t.Fatal("property should be violated")
	}

	f := mk(5, FixPromoteSiblings)
	f.Joined = true
	f.Parent = 2
	f.Root = 2
	f.Siblings[7] = true
	f.HandleTransportError(ctx, 2)
	if len(f.Siblings) != 0 {
		t.Fatal("fixed promotion should clear siblings")
	}
}

func TestBug5SelfJoinSchedulesNoTimer(t *testing.T) {
	a := mk(3, 0) // no bootstrap: self-join
	ctx := newRealCtx(3)
	a.HandleApp(ctx, AppJoin{})
	if !a.Joined || !a.IsRoot {
		t.Fatal("self-join failed")
	}
	if ctx.timerSet[TimerRecovery] {
		t.Fatal("buggy self-join should not schedule the recovery timer")
	}
	// The violation manifests once the peer list becomes non-empty: a
	// smaller node joins and we relinquish the root role.
	a.HandleMessage(ctx, 1, Join{Origin: 1})
	a.HandleMessage(ctx, 1, JoinReply{Root: 1})
	if len(a.Peers) == 0 {
		t.Fatal("handover should have populated the peer list")
	}
	v := props.NewView()
	v.Add(3, a, ctx.timerSet)
	if PropRecoveryTimer.Check(v) {
		t.Fatal("RecoveryTimerRuns should be violated")
	}

	f := mk(3, FixJoinSelfTimer)
	ctx2 := newRealCtx(3)
	f.HandleApp(ctx2, AppJoin{})
	if !ctx2.timerSet[TimerRecovery] {
		t.Fatal("fixed self-join should schedule the recovery timer")
	}
}

func TestBug6AcceptChildKeepsSiblingEntry(t *testing.T) {
	r := mk(1, 0)
	r.Joined = true
	r.IsRoot = true
	r.Root = 1
	r.Siblings[4] = true // stale entry from an earlier life
	ctx := newRealCtx(1)
	r.HandleMessage(ctx, 4, Join{Origin: 4})
	if !r.Children[4] || !r.Siblings[4] {
		t.Fatal("buggy accept should leave node 4 in both lists")
	}

	f := mk(1, FixAcceptChildSibling)
	f.Joined = true
	f.IsRoot = true
	f.Root = 1
	f.Siblings[4] = true
	f.HandleMessage(ctx, 4, Join{Origin: 4})
	if f.Siblings[4] {
		t.Fatal("fixed accept should purge the sibling entry")
	}
}

func TestBug7RelinquishKeepsSiblings(t *testing.T) {
	r := mk(61, 0)
	r.Joined = true
	r.IsRoot = true
	r.Root = 61
	r.Children[65] = true
	r.Siblings[99] = true // stale from before it became root
	ctx := newRealCtx(61)
	r.HandleMessage(ctx, 9, JoinReply{Root: 9}) // 9 accepted our handover join
	if r.IsRoot {
		t.Fatal("root should have relinquished")
	}
	if len(r.Siblings) == 0 {
		t.Fatal("buggy relinquish should keep stale siblings")
	}

	f := mk(61, FixRelinquishSiblings)
	f.Joined = true
	f.IsRoot = true
	f.Root = 61
	f.Children[65] = true
	f.Siblings[99] = true
	f.HandleMessage(ctx, 9, JoinReply{Root: 9})
	if len(f.Siblings) != 0 {
		t.Fatal("fixed relinquish should clear siblings")
	}
}

func TestBug2JoinReplyStaleEntries(t *testing.T) {
	n := mk(9, 0)
	n.Children[5] = true // stale: 5 was our child before we reset... then
	// we rejoined under 5.
	ctx := newRealCtx(9)
	n.HandleMessage(ctx, 5, JoinReply{Root: 1})
	if !n.Children[5] {
		t.Fatal("buggy JoinReply should keep the stale child entry for the new parent")
	}
	f := mk(9, FixJoinReplyStale)
	f.Children[5] = true
	f.HandleMessage(ctx, 5, JoinReply{Root: 1})
	if f.Children[5] {
		t.Fatal("fixed JoinReply should purge the new parent from children")
	}
}

// --- live integration -------------------------------------------------------

// buildTree deploys n RandTree nodes and has them all join.
func buildTree(t *testing.T, seed int64, n int, fixes Fix) (*sim.Simulator, []*runtime.Node) {
	t.Helper()
	s := sim.New(seed)
	net := simnet.New(s, simnet.UniformPath{Latency: 20 * time.Millisecond, BwBps: 1e8})
	ids := make([]sm.NodeID, n)
	for i := range ids {
		ids[i] = sm.NodeID(i + 1)
	}
	factory := New(Config{Bootstrap: ids[:1], Fixes: fixes})
	nodes := make([]*runtime.Node, n)
	for i, id := range ids {
		nodes[i] = runtime.NewNode(s, net, id, factory)
	}
	for _, node := range nodes {
		node.App(AppJoin{})
	}
	return s, nodes
}

func TestLiveTreeForms(t *testing.T) {
	s, nodes := buildTree(t, 1, 8, AllFixes)
	s.RunFor(30 * time.Second)
	joined := 0
	roots := 0
	for _, node := range nodes {
		tree := node.Service().(*Tree)
		if tree.Joined {
			joined++
		}
		if tree.Joined && tree.IsRoot {
			roots++
			if tree.Self != 1 {
				t.Fatalf("root should be the smallest id, got %v", tree.Self)
			}
		}
	}
	if joined != 8 {
		t.Fatalf("joined = %d, want 8", joined)
	}
	if roots != 1 {
		t.Fatalf("roots = %d, want 1", roots)
	}
	// Every non-root node's parent considers it a child.
	byID := map[sm.NodeID]*Tree{}
	for _, node := range nodes {
		byID[node.ID] = node.Service().(*Tree)
	}
	for _, node := range nodes {
		tree := node.Service().(*Tree)
		if tree.IsRoot {
			continue
		}
		p := byID[tree.Parent]
		if p == nil || !p.Children[tree.Self] {
			t.Fatalf("parent/child disagreement for %v (parent %v)", tree.Self, tree.Parent)
		}
	}
}

func TestLiveTreeSatisfiesPropertiesWhenFixed(t *testing.T) {
	s, nodes := buildTree(t, 2, 10, AllFixes)
	violations := 0
	check := func() {
		v := props.NewView()
		for _, node := range nodes {
			svc, timers := node.View()
			v.Add(node.ID, svc, timers)
		}
		if !Properties.Holds(v) {
			violations++
		}
	}
	for i := 0; i < 30; i++ {
		s.RunFor(time.Second)
		check()
	}
	if violations != 0 {
		t.Fatalf("fixed tree violated properties in %d polls", violations)
	}
}

// --- the paper's Figure 2 scenario through the model checker ---------------

// figure2Start reconstructs the first row of Figure 2: n1 is root with
// child n9; n13 is n9's child.
func figure2Start(fixes Fix) (*mc.GState, sm.Factory) {
	factory := New(Config{Bootstrap: []sm.NodeID{1}, Fixes: fixes, MaxChildren: 2})
	n1 := factory(1).(*Tree)
	n1.Joined, n1.IsRoot, n1.Root = true, true, 1
	n1.Children[9] = true
	n1.Peers[9] = true

	n9 := factory(9).(*Tree)
	n9.Joined, n9.Root, n9.Parent = true, sm.NodeID(1), sm.NodeID(1)
	n9.Children[13] = true
	n9.Peers[1] = true
	n9.Peers[13] = true

	n13 := factory(13).(*Tree)
	n13.Joined, n13.Root, n13.Parent = true, sm.NodeID(1), sm.NodeID(9)
	n13.Peers[9] = true

	g := mc.NewGState()
	g.AddNode(1, n1, map[sm.TimerID]bool{TimerRecovery: true})
	g.AddNode(9, n9, map[sm.TimerID]bool{TimerRecovery: true})
	g.AddNode(13, n13, map[sm.TimerID]bool{TimerRecovery: true})
	return g, factory
}

func TestConsequencePredictionFindsFigure2(t *testing.T) {
	g, factory := figure2Start(0)
	s := mc.NewSearch(mc.Config{
		Props:            props.Set{PropChildrenSiblingsDisjoint},
		Factory:          factory,
		Mode:             mc.Consequence,
		ExploreResets:    true,
		MaxResetsPerPath: 1,
		MaxStates:        60000,
		MaxViolations:    1,
	})
	res := s.Run(g)
	if len(res.Violations) == 0 {
		t.Fatalf("consequence prediction missed the Figure 2 inconsistency (%d states)", res.StatesExplored)
	}
	v := res.Violations[0]
	// The discovered path must involve a reset of n13 (the trigger).
	sawReset := false
	for _, ev := range v.Path {
		if r, ok := ev.(sm.ResetEvent); ok && r.At == 13 {
			sawReset = true
		}
	}
	if !sawReset {
		t.Errorf("path does not include n13's reset: %v", describe(v.Path))
	}
}

func TestFixedUpdateSiblingHandlerRepairsFigure2State(t *testing.T) {
	// With bug 1 fixed, delivering UpdateSibling(add 13) to an n9 that
	// still holds 13 as a child leaves the lists disjoint.
	n9 := mk(9, FixUpdateSiblingChildren)
	n9.Joined = true
	n9.Parent = 1
	n9.Root = 1
	n9.Children[13] = true
	ctx := newRealCtx(9)
	n9.HandleMessage(ctx, 1, UpdateSibling{Sibling: 13, Add: true})
	v := props.NewView()
	v.Add(9, n9, nil)
	if !PropChildrenSiblingsDisjoint.Check(v) {
		t.Fatal("fixed handler left an inconsistent state")
	}
}

func describe(path []sm.Event) []string {
	out := make([]string, len(path))
	for i, ev := range path {
		out[i] = ev.Describe()
	}
	return out
}

// --- encode/clone round trips ----------------------------------------------

func TestCloneIndependence(t *testing.T) {
	a := mk(1, 0, 1, 2)
	a.Joined = true
	a.Children[2] = true
	b := a.Clone().(*Tree)
	b.Children[3] = true
	delete(b.Children, 2)
	if !a.Children[2] || a.Children[3] {
		t.Fatal("clone shares children map")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	a := mk(7, FixNewRootChild, 1, 2)
	a.Joined = true
	a.IsRoot = false
	a.Root = 1
	a.Parent = 2
	a.Children[3] = true
	a.Siblings[4] = true
	a.Peers[5] = true
	data := sm.EncodeFullState(a, map[sm.TimerID]bool{TimerRecovery: true})
	factory := New(Config{Bootstrap: []sm.NodeID{1, 2}, Fixes: FixNewRootChild})
	svc, timers, err := sm.DecodeFullState(factory, 7, data)
	if err != nil {
		t.Fatal(err)
	}
	b := svc.(*Tree)
	if b.Root != 1 || b.Parent != 2 || !b.Children[3] || !b.Siblings[4] || !b.Peers[5] || !b.Joined {
		t.Fatalf("round trip lost state: %+v", b)
	}
	if !timers[TimerRecovery] {
		t.Fatal("timer set lost")
	}
	if sm.HashService(a) != sm.HashService(b) {
		t.Fatal("hash mismatch after round trip")
	}
}
