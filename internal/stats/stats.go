// Package stats provides the small statistics and formatting helpers
// shared by the experiment harnesses: counters, duration samples, CDFs and
// plain-text tables matching the rows/series the paper reports.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Sample accumulates scalar observations.
type Sample struct {
	values []float64
}

// Add records one observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// AddDuration records a duration in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var total float64
	for _, v := range s.values {
		total += v
	}
	return total / float64(len(s.values))
}

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) by
// nearest-rank; 0 when empty.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// CDF returns (value, fraction<=value) points suitable for plotting the
// paper's Figure 17 series.
func (s *Sample) CDF() []CDFPoint {
	if len(s.values) == 0 {
		return nil
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// Table renders experiment rows as aligned plain text.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends one row; values are stringified with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Rate renders a count as bits/second over a window.
func Rate(bytes int64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(bytes*8) / window.Seconds()
}
