package stats

import "sync/atomic"

// Counter is an atomic telemetry counter shared across worker goroutines —
// the distributed search's per-shard expansion counters use it where the
// in-process engine uses its private counters struct.
type Counter struct{ v atomic.Int64 }

// Add adds delta and returns the new value.
func (c *Counter) Add(delta int64) int64 { return c.v.Add(delta) }

// Inc adds one and returns the new value.
func (c *Counter) Inc() int64 { return c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store sets the value (round resets).
func (c *Counter) Store(v int64) { c.v.Store(v) }

// Max raises the value to v if v is larger (CAS-max).
func (c *Counter) Max(v int64) {
	for {
		cur := c.v.Load()
		if v <= cur || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}
