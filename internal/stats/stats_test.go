package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.N() != 0 {
		t.Fatal("empty sample should be all zeros")
	}
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	if s.N() != 3 || s.Mean() != 2 || s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("stats wrong: n=%d mean=%v min=%v max=%v", s.N(), s.Mean(), s.Min(), s.Max())
	}
	s.AddDuration(4 * time.Second)
	if s.Max() != 4 {
		t.Fatal("AddDuration should record seconds")
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got < 49 || got > 51 {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	var s Sample
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		s.Add(rng.Float64() * 100)
	}
	cdf := s.CDF()
	if len(cdf) != 50 {
		t.Fatalf("points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatal("CDF not monotone")
		}
	}
	if cdf[len(cdf)-1].Fraction != 1 {
		t.Fatal("CDF must end at 1")
	}
}

// Property: Percentile never leaves [Min, Max] and is monotone in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(values []float64, a, b uint8) bool {
		if len(values) == 0 {
			return true
		}
		var s Sample
		for _, v := range values {
			s.Add(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := s.Percentile(pa), s.Percentile(pb)
		if va > vb {
			return false
		}
		return va >= s.Min() && vb <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF values are the sorted inputs.
func TestPropertyCDFIsSortedInput(t *testing.T) {
	f := func(values []float64) bool {
		var s Sample
		for _, v := range values {
			s.Add(v)
		}
		cdf := s.CDF()
		if len(cdf) != len(values) {
			return len(values) == 0 && cdf == nil
		}
		sorted := append([]float64(nil), values...)
		sort.Float64s(sorted)
		for i, p := range cdf {
			if p.Value != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "demo", Header: []string{"name", "value"}}
	tab.Add("alpha", 1)
	tab.Add("b", 3.14159)
	tab.Add("c", 250*time.Millisecond)
	out := tab.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "3.14") {
		t.Fatal("float formatting broken")
	}
	if !strings.Contains(out, "250ms") {
		t.Fatal("duration formatting broken")
	}
}

func TestRate(t *testing.T) {
	if got := Rate(1000, time.Second); got != 8000 {
		t.Fatalf("Rate = %v, want 8000 bps", got)
	}
	if got := Rate(100, 0); got != 0 {
		t.Fatal("zero window should yield 0")
	}
}
