package scenario_test

import (
	"reflect"
	"testing"

	"crystalball/internal/dist"
	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
)

// chaosFaults are the injected failures the chaos oracle drives through
// every registered scenario. Each is scheduled by (round, message count)
// from the deterministic fault plane, so the whole recovery — which shard
// dies, when, and what the retry runs on — replays identically per seed.
//
//   - kill:    shard 1's connection is cut at its 2nd message of round 1
//     (mid-round crash of a worker).
//   - sever:   the link is cut at the 1st message relayed *to* shard 1
//     (network partition on the coordinator→shard path).
//   - corrupt: shard 1's first batch is mangled in flight; the receiving
//     shard's validation faults it out of the session (the Fault-message
//     death path, not silent divergence).
var chaosFaults = []struct{ name, spec string }{
	{"kill", "kill@s1r1m2"},
	{"sever", "send:sever@s1r1m1"},
	{"corrupt", "corrupt@s1r1m1"},
}

// TestChaosOracleMatrix is the fault-tolerance differential oracle: for
// every registered scenario, a distributed round with a shard killed,
// severed, or corrupted mid-round must still claim the *identical* state
// set as the single-process engine — at shards 2 and 4 — with at least one
// retry actually exercised, and the violation set identical to a fault-free
// distributed round's. Recovery telemetry must be byte-identical across two
// runs of the same seed (the determinism half of the tentpole's acceptance
// criteria).
func TestChaosOracleMatrix(t *testing.T) {
	depth := map[string]int{
		"randtree":    5,
		"chord":       5,
		"paxos":       4,
		"bulletprime": 5,
		// Depth 6 reaches the seeded CRDT divergences, so recovery is
		// pinned to reproduce actual global-property violations, not
		// just the claimed set.
		"gcounter": 6,
		"orset":    6,
		"lwwmap":   6,
	}
	for _, f := range chaosFaults {
		f := f
		t.Run(f.name, func(t *testing.T) {
			for _, name := range scenario.Names() {
				name := name
				d, ok := depth[name]
				if !ok {
					d = 4
				}
				t.Run(name, func(t *testing.T) {
					g, cfg, err := scenario.InitialState(name, scenario.Options{Nodes: 3})
					if err != nil {
						t.Fatal(err)
					}
					cfg.Mode = mc.Exhaustive
					cfg.Seed = 42
					cfg.Budget = mc.Budget{Depth: d, Workers: 1}
					cfg.RecordLocalStates = true
					cfg.RecordClaimedStates = true
					serial := mc.NewSearch(cfg).Run(g)
					if serial.StatesExplored == 0 {
						t.Fatalf("serial search explored no states")
					}

					for _, shards := range []int{2, 4} {
						run := func() *dist.Result {
							res, err := dist.Local(dist.LocalConfig{
								Shards:       shards,
								Search:       cfg,
								Root:         g,
								Budget:       mc.Budget{Depth: d, Workers: 1},
								RecordStates: true,
								Faults:       dist.MustFaultPlan(f.spec),
							})
							if err != nil {
								t.Fatalf("shards=%d: %v", shards, err)
							}
							return res
						}
						clean, err := dist.Local(dist.LocalConfig{
							Shards: shards, Search: cfg, Root: g,
							Budget: mc.Budget{Depth: d, Workers: 1}, RecordStates: true,
						})
						if err != nil {
							t.Fatalf("fault-free reference at shards=%d: %v", shards, err)
						}

						res := run()
						if res.Recovery.Retries < 1 {
							t.Errorf("shards=%d: fault %q caused no retry (recovery %q)",
								shards, f.spec, res.Recovery.String())
						}
						got := &res.Checker
						if !reflect.DeepEqual(got.ClaimedStates, serial.ClaimedStates) {
							t.Errorf("shards=%d: recovered claimed-state set diverges from serial engine (%d vs %d states)",
								shards, len(got.ClaimedStates), len(serial.ClaimedStates))
						}
						if got.StatesExplored != serial.StatesExplored {
							t.Errorf("shards=%d: StatesExplored=%d, serial %d",
								shards, got.StatesExplored, serial.StatesExplored)
						}
						if got.DistinctLocalStates != serial.DistinctLocalStates {
							t.Errorf("shards=%d: DistinctLocalStates=%d, serial %d",
								shards, got.DistinctLocalStates, serial.DistinctLocalStates)
						}
						if !reflect.DeepEqual(distVios(got.Violations), distVios(clean.Checker.Violations)) {
							t.Errorf("shards=%d: violation set diverges from the fault-free round", shards)
						}

						again := run()
						if a, b := res.Recovery.String(), again.Recovery.String(); a != b {
							t.Errorf("shards=%d: recovery telemetry not deterministic:\n%s\n%s", shards, a, b)
						}
						if !reflect.DeepEqual(got.ClaimedStates, again.Checker.ClaimedStates) {
							t.Errorf("shards=%d: claimed sets differ between identical fault runs", shards)
						}
					}
				})
			}
		})
	}
}
