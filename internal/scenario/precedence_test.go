package scenario_test

import (
	"strings"
	"testing"

	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
)

// TestPolicyPrecedence pins the one documented resolution order for the
// checker budget policy (Scenario.resolvePolicySpec):
//
//	spec source   o.PolicySpec  >  sc.CheckerPolicy  >  zero (FixedPolicy)
//	kind          o.Policy      >  spec.Kind         >  "fixed"
//	states        o.MCStates    >  spec.Base.States  >  controller default
//	workers       o.Workers     >  spec.Base.Workers >  GOMAXPROCS
//
// The scenario under test is a copy of randtree with the policy fields
// rewritten per case; the resolved spec is observed through the
// controller.Config that Deploy would install.
func TestPolicyPrecedence(t *testing.T) {
	cases := []struct {
		label string
		// scenario-side declarations
		scPolicy mc.PolicySpec
		// deploy options
		opts scenario.DeployOptions
		// expectations on the resolved spec
		wantKind    string
		wantStates  int
		wantWorkers int
		wantErr     string
	}{
		{
			label:      "scenario CheckerPolicy states feed the resolved spec",
			scPolicy:   mc.PolicySpec{Kind: mc.PolicyScaled, Base: mc.Budget{States: 9000}},
			wantKind:   mc.PolicyScaled,
			wantStates: 9000,
		},
		{
			label:      "scenario CheckerPolicy without states leaves the controller default",
			scPolicy:   mc.PolicySpec{Kind: mc.PolicyAdaptive},
			wantKind:   mc.PolicyAdaptive,
			wantStates: 0,
		},
		{
			label:      "DeployOptions.MCStates beats scenario spec states",
			scPolicy:   mc.PolicySpec{Kind: mc.PolicyScaled, Base: mc.Budget{States: 9000}},
			opts:       scenario.DeployOptions{MCStates: 1234},
			wantKind:   mc.PolicyScaled,
			wantStates: 1234,
		},
		{
			label:      "DeployOptions.Policy rewrites the kind only",
			scPolicy:   mc.PolicySpec{Kind: mc.PolicyScaled, Base: mc.Budget{States: 9000}},
			opts:       scenario.DeployOptions{Policy: mc.PolicyAdaptive},
			wantKind:   mc.PolicyAdaptive,
			wantStates: 9000,
		},
		{
			label:    "DeployOptions.PolicySpec replaces the scenario spec wholesale",
			scPolicy: mc.PolicySpec{Kind: mc.PolicyScaled, Base: mc.Budget{States: 9000, Workers: 3}},
			opts: scenario.DeployOptions{PolicySpec: &mc.PolicySpec{
				Kind: mc.PolicyAdaptive, Base: mc.Budget{States: 400},
			}},
			wantKind:   mc.PolicyAdaptive,
			wantStates: 400,
		},
		{
			label:    "per-field options apply on top of PolicySpec override",
			scPolicy: mc.PolicySpec{Kind: mc.PolicyScaled, Base: mc.Budget{States: 9000}},
			opts: scenario.DeployOptions{
				PolicySpec: &mc.PolicySpec{Kind: mc.PolicyAdaptive, Base: mc.Budget{States: 400}},
				Policy:     mc.PolicyFixed,
				MCStates:   55,
				Workers:    2,
			},
			wantKind:    mc.PolicyFixed,
			wantStates:  55,
			wantWorkers: 2,
		},
		{
			label:       "DeployOptions.Workers beats scenario spec workers",
			scPolicy:    mc.PolicySpec{Base: mc.Budget{States: 9000, Workers: 3}},
			opts:        scenario.DeployOptions{Workers: 5},
			wantStates:  9000,
			wantWorkers: 5,
		},
		{
			label:       "scenario spec workers survive zero DeployOptions.Workers",
			scPolicy:    mc.PolicySpec{Base: mc.Budget{States: 9000, Workers: 3}},
			wantStates:  9000,
			wantWorkers: 3,
		},
		{
			label: "nothing set anywhere leaves states to the controller default",
			// wantStates 0: the controller's policySpec fills 20000.
			wantStates: 0,
		},
		{
			label:   "unknown kind is a Deploy-time error",
			opts:    scenario.DeployOptions{Policy: "warp"},
			wantErr: `unknown policy kind "warp"`,
		},
	}
	// The verbatim-Controller path bypasses resolvePolicySpec; its policy
	// kind must still fail at Deploy, not panic inside controller.New.
	t.Run("verbatim controller config with bad kind is a Deploy error", func(t *testing.T) {
		sc := scenario.MustLookup("randtree")
		cfg, err := sc.ControllerConfig(scenario.DeployOptions{Control: scenario.Debug})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Policy.Kind = "warp"
		_, err = sc.Deploy(scenario.DeployOptions{Control: scenario.Debug, Controller: &cfg})
		if err == nil || !strings.Contains(err.Error(), `unknown policy kind "warp"`) {
			t.Fatalf("Deploy error = %v, want unknown policy kind", err)
		}
	})

	for _, tc := range cases {
		tc := tc
		t.Run(tc.label, func(t *testing.T) {
			sc := *scenario.MustLookup("randtree")
			sc.CheckerPolicy = tc.scPolicy
			opts := tc.opts
			opts.Control = scenario.Debug
			cfg, err := sc.ControllerConfig(opts)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if cfg.Policy.Kind != tc.wantKind {
				t.Errorf("kind = %q, want %q", cfg.Policy.Kind, tc.wantKind)
			}
			if cfg.Policy.Base.States != tc.wantStates {
				t.Errorf("states = %d, want %d", cfg.Policy.Base.States, tc.wantStates)
			}
			if cfg.Policy.Base.Workers != tc.wantWorkers {
				t.Errorf("workers = %d, want %d", cfg.Policy.Base.Workers, tc.wantWorkers)
			}
			// The deprecated mirror must agree with the resolved spec so
			// legacy readers of controller.Config see the same bounds.
			if tc.wantStates > 0 && cfg.MCStates != tc.wantStates {
				t.Errorf("deprecated MCStates mirror = %d, want %d", cfg.MCStates, tc.wantStates)
			}
			if tc.wantStates == 0 && cfg.MCStates != 20000 {
				t.Errorf("MCStates fallback = %d, want controller default 20000", cfg.MCStates)
			}
		})
	}
}
