package scenario_test

import (
	"reflect"
	"sort"
	"testing"

	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
	"crystalball/internal/sm"
)

// TestReductionOracleMatrix is the differential reduction oracle: for every
// registered scenario, buggy and fixed variants, the reduced exhaustive
// search must report the identical violation-signature set and reach the
// identical distinct local-state set as the unreduced search at equal
// depth, at every worker count. The sleep-set reduction's soundness
// argument is that it prunes only transitions into commuting-square
// duplicate states — so the oracle can pin the even stronger claim that
// the claimed global-state set (StatesExplored on a depth-bounded
// exhaustion) is untouched too, while the executed transition count drops.
func TestReductionOracleMatrix(t *testing.T) {
	depth := map[string]int{
		"randtree":    5,
		"chord":       5,
		"paxos":       4,
		"bulletprime": 5,
	}
	sigSet := func(r *mc.Result) map[string]bool {
		out := make(map[string]bool, len(r.Violations))
		for _, v := range r.Violations {
			out[v.Signature()] = true
		}
		return out
	}
	totalPruned := 0
	for _, name := range scenario.Names() {
		name := name
		d, ok := depth[name]
		if !ok {
			d = 4
		}
		for _, fixed := range []bool{false, true} {
			fixed := fixed
			label := name + "/buggy"
			if fixed {
				label = name + "/fixed"
			}
			t.Run(label, func(t *testing.T) {
				run := func(reduce bool, workers int) *mc.Result {
					g, cfg, err := scenario.InitialState(name, scenario.Options{Nodes: 3, Fixed: fixed})
					if err != nil {
						t.Fatal(err)
					}
					cfg.Mode = mc.Exhaustive
					cfg.MaxDepth = d
					cfg.Workers = workers
					cfg.Seed = 42
					cfg.Reduce = reduce
					cfg.RecordLocalStates = true
					return mc.NewSearch(cfg).Run(g)
				}
				base := run(false, 1)
				for _, workers := range []int{1, 2, 4} {
					red := run(true, workers)
					if got, want := sigSet(red), sigSet(base); !reflect.DeepEqual(got, want) {
						t.Fatalf("workers=%d: violation signatures %v, unreduced %v", workers, got, want)
					}
					if !reflect.DeepEqual(red.LocalStates, base.LocalStates) {
						t.Fatalf("workers=%d: distinct local-state sets differ (%d reduced vs %d unreduced)",
							workers, len(red.LocalStates), len(base.LocalStates))
					}
					if red.StatesExplored != base.StatesExplored {
						t.Fatalf("workers=%d: %d states reduced vs %d unreduced",
							workers, red.StatesExplored, base.StatesExplored)
					}
					if red.Transitions+red.SleepHits != base.Transitions {
						t.Fatalf("workers=%d: transitions %d + sleep hits %d != unreduced %d",
							workers, red.Transitions, red.SleepHits, base.Transitions)
					}
					// Violations must agree state-by-state, not just by
					// signature: same depths, same violating states.
					if len(red.Violations) != len(base.Violations) {
						t.Fatalf("workers=%d: %d violations, unreduced %d",
							workers, len(red.Violations), len(base.Violations))
					}
					for i := range red.Violations {
						a, b := red.Violations[i], base.Violations[i]
						if a.StateHash != b.StateHash || a.Depth != b.Depth ||
							!reflect.DeepEqual(a.Properties, b.Properties) {
							t.Fatalf("workers=%d: violation %d differs: (%#x,%d,%v) vs (%#x,%d,%v)",
								workers, i, a.StateHash, a.Depth, a.Properties, b.StateHash, b.Depth, b.Properties)
						}
					}
					totalPruned += red.SleepHits
				}
			})
		}
	}
	if totalPruned == 0 {
		t.Fatalf("reduction never pruned a transition across the whole matrix")
	}
}

// TestReductionOracleConsequence extends the differential oracle to
// consequence-prediction mode, where the sleep-set reduction composes with
// the (node, local state) internal-action rule. That composition has a
// subtle soundness condition — H_A edges are pruned globally (once per
// claimed local state), so a sleep promise whose commuting square closes
// through an H_A edge could find the closure pruned at the sibling state;
// the engine therefore never lets promises ride on H_A expansions
// (engine.internalSleep). This oracle pins the result: identical claimed
// states, identical distinct local-state sets, identical violations, at
// every worker count.
func TestReductionOracleConsequence(t *testing.T) {
	depth := map[string]int{
		"randtree":    7,
		"chord":       8,
		"paxos":       6,
		"bulletprime": 7,
	}
	totalPruned := 0
	for _, name := range scenario.Names() {
		name := name
		d, ok := depth[name]
		if !ok {
			d = 6
		}
		t.Run(name, func(t *testing.T) {
			run := func(reduce bool, workers int) *mc.Result {
				g, cfg, err := scenario.InitialState(name, scenario.Options{Nodes: 3})
				if err != nil {
					t.Fatal(err)
				}
				cfg.Mode = mc.Consequence
				cfg.MaxDepth = d
				cfg.Workers = workers
				cfg.Seed = 42
				cfg.Reduce = reduce
				cfg.RecordLocalStates = true
				return mc.NewSearch(cfg).Run(g)
			}
			base := run(false, 1)
			for _, workers := range []int{1, 2, 4} {
				red := run(true, workers)
				if red.StatesExplored != base.StatesExplored {
					t.Fatalf("workers=%d: %d states reduced vs %d unreduced",
						workers, red.StatesExplored, base.StatesExplored)
				}
				if !reflect.DeepEqual(red.LocalStates, base.LocalStates) {
					t.Fatalf("workers=%d: distinct local-state sets differ (%d reduced vs %d unreduced)",
						workers, len(red.LocalStates), len(base.LocalStates))
				}
				if red.Transitions > base.Transitions {
					t.Fatalf("workers=%d: reduced search took MORE transitions (%d vs %d)",
						workers, red.Transitions, base.Transitions)
				}
				if len(red.Violations) != len(base.Violations) {
					t.Fatalf("workers=%d: %d violations, unreduced %d",
						workers, len(red.Violations), len(base.Violations))
				}
				for i := range red.Violations {
					a, b := red.Violations[i], base.Violations[i]
					if a.StateHash != b.StateHash || a.Depth != b.Depth ||
						!reflect.DeepEqual(a.Properties, b.Properties) {
						t.Fatalf("workers=%d: violation %d differs", workers, i)
					}
				}
				totalPruned += red.SleepHits
			}
		})
	}
	if totalPruned == 0 {
		t.Fatalf("reduction never pruned a transition across the consequence matrix")
	}
}

// TestReductionOracleWarmConsequence runs the consequence-mode oracle from
// a warmed chord state — nodes joined and some join traffic delivered, the
// state shape live controllers actually predict from (and the shape the
// BenchmarkReducedSearch chord entry measures). Cold chord consequence is
// degenerate (a handful of enabled internal actions), so this is the
// configuration where the H_A promise restriction earns its keep.
func TestReductionOracleWarmConsequence(t *testing.T) {
	g, cfg, err := scenario.InitialState("chord", scenario.Options{Nodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = mc.Consequence
	cfg.MaxDepth = 10
	cfg.Seed = 7
	cfg.RecordLocalStates = true
	s := mc.NewSearch(cfg)
	// Deterministic warm prefix: each node's first app call in node
	// order, then four first-enabled network deliveries.
	_, internal := s.EnabledEvents(g)
	ids := make([]int, 0, len(internal))
	for id := range internal {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		for _, ev := range internal[sm.NodeID(id)] {
			if _, isApp := ev.(sm.AppEvent); !isApp {
				continue
			}
			if next := s.ApplyEvent(g, ev); next != nil {
				g = next
			}
			break
		}
	}
	for i := 0; i < 4; i++ {
		net, _ := s.EnabledEvents(g)
		if len(net) == 0 {
			break
		}
		if next := s.ApplyEvent(g, net[0]); next != nil {
			g = next
		}
	}
	run := func(reduce bool, workers int) *mc.Result {
		c := cfg
		c.Reduce = reduce
		c.Workers = workers
		return mc.NewSearch(c).Run(g)
	}
	base := run(false, 1)
	redTransitions := 0
	for _, workers := range []int{1, 4} {
		red := run(true, workers)
		if red.StatesExplored != base.StatesExplored {
			t.Fatalf("workers=%d: %d states reduced vs %d unreduced",
				workers, red.StatesExplored, base.StatesExplored)
		}
		if !reflect.DeepEqual(red.LocalStates, base.LocalStates) {
			t.Fatalf("workers=%d: local-state sets differ", workers)
		}
		if red.SleepHits == 0 {
			t.Fatalf("workers=%d: warm chord consequence pruned nothing", workers)
		}
		redTransitions = red.Transitions
	}
	t.Logf("warm chord consequence: %d states, transitions %d -> %d (%.2fx)",
		base.StatesExplored, base.Transitions, redTransitions,
		float64(base.Transitions)/float64(redTransitions))
}

// TestReductionOracleDeep re-runs the differential oracle one to two
// levels deeper on the two scenarios the BENCH_6 acceptance bar names
// (chord, paxos), where the commuting-delivery diamonds are dense enough
// for reduction to prune a large transition share. Skipped under -short.
func TestReductionOracleDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("deep oracle skipped in -short mode")
	}
	for _, tc := range []struct {
		name  string
		depth int
	}{
		{"chord", 7},
		{"paxos", 6},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func(reduce bool) *mc.Result {
				g, cfg, err := scenario.InitialState(tc.name, scenario.Options{Nodes: 3})
				if err != nil {
					t.Fatal(err)
				}
				cfg.Mode = mc.Exhaustive
				cfg.MaxDepth = tc.depth
				cfg.Workers = 4
				cfg.Seed = 7
				cfg.Reduce = reduce
				cfg.RecordLocalStates = true
				return mc.NewSearch(cfg).Run(g)
			}
			base, red := run(false), run(true)
			if red.StatesExplored != base.StatesExplored {
				t.Fatalf("states %d reduced vs %d unreduced", red.StatesExplored, base.StatesExplored)
			}
			if !reflect.DeepEqual(red.LocalStates, base.LocalStates) {
				t.Fatalf("distinct local-state sets differ")
			}
			if red.Transitions+red.SleepHits != base.Transitions {
				t.Fatalf("transition accounting: %d + %d != %d", red.Transitions, red.SleepHits, base.Transitions)
			}
			if red.SleepHits == 0 {
				t.Fatalf("no pruning at depth %d", tc.depth)
			}
			t.Logf("depth %d: %d states, transitions %d -> %d (%.1f%% pruned)",
				tc.depth, base.StatesExplored, base.Transitions, red.Transitions,
				100*float64(red.SleepHits)/float64(base.Transitions))
		})
	}
}
