package scenario

import (
	"fmt"
	"sort"
)

// The registry maps canonical names and aliases to registered scenarios.
// Registration happens in service-package init functions, so importing a
// service package (directly or via scenario/all) is what makes it
// checkable and deployable everywhere.
var (
	registry = make(map[string]*Scenario)
	canon    []string // canonical names, sorted
)

// Register adds a scenario to the registry. It panics on an empty name, a
// missing factory, empty properties, or a name/alias collision — all
// programming errors in the registering service package.
func Register(sc Scenario) {
	if sc.Name == "" {
		panic("scenario: Register with empty name")
	}
	if sc.New == nil {
		panic(fmt.Sprintf("scenario %s: Register with nil New", sc.Name))
	}
	if len(sc.Props) == 0 && len(sc.GlobalProps) == 0 {
		panic(fmt.Sprintf("scenario %s: Register with no Props or GlobalProps", sc.Name))
	}
	if sc.Check.Nodes == 0 || sc.Live.Nodes == 0 {
		panic(fmt.Sprintf("scenario %s: Check and Live node defaults required", sc.Name))
	}
	p := &sc
	for _, key := range append([]string{sc.Name}, sc.Aliases...) {
		if _, dup := registry[key]; dup {
			panic(fmt.Sprintf("scenario %s: name %q already registered", sc.Name, key))
		}
		registry[key] = p
	}
	canon = append(canon, sc.Name)
	sort.Strings(canon)
}

// Lookup resolves a scenario by canonical name or alias.
func Lookup(name string) (*Scenario, bool) {
	sc, ok := registry[name]
	return sc, ok
}

// MustLookup resolves a scenario by name and panics when it is not
// registered; for examples and tests whose scenario set is static.
func MustLookup(name string) *Scenario {
	sc, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("scenario %q not registered (registered: %v)", name, Names()))
	}
	return sc
}

// Names returns the sorted canonical names of all registered scenarios;
// CLIs print it in -list output and unknown-service errors.
func Names() []string {
	return append([]string(nil), canon...)
}
