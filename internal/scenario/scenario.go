// Package scenario is the unified front-end over CrystalBall's checker and
// live deployment stacks.
//
// A Scenario declaratively describes one checkable workload: how to build
// the service factory (parameterised by node count, seeded-bug fixes and a
// variant string), which safety properties to check, the default node
// counts for offline checking and live deployment, the fault model the
// checker should explore, the initial application-call workload, and the
// per-scenario checker defaults. Service packages register their scenario
// in an init function; every entry point — cmd/mcheck, cmd/crystalball,
// cmd/experiments, the examples and the experiment harnesses — resolves
// services through the registry instead of carrying its own service
// switch.
//
// Two builders sit on top of the registry:
//
//   - InitialState assembles the offline model checker's start state and a
//     ready mc.Config (the mcheck path);
//   - Deploy assembles the full live stack — simulated clock, simulated
//     network with a path model, per-node runtime, snapshot managers and
//     CrystalBall controllers — behind one options struct (the
//     crystalball/experiments path).
//
// Adding scenario N+1 is a one-file, one-Register change in its service
// package; every CLI, example and experiment picks it up automatically.
package scenario

import (
	"fmt"
	"time"

	"crystalball/internal/controller"
	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// Options parameterises a scenario's service factory. The zero value means
// "scenario default": unset fields are resolved against the scenario's
// Check tuning (offline checking) or Live tuning (deployment) before the
// factory runs.
type Options struct {
	// Nodes is the member count (node ids are 1..Nodes).
	Nodes int
	// Fixed applies every seeded-bug fix, yielding the repaired variant.
	Fixed bool
	// Variant selects a scenario-specific configuration, e.g. the paxos
	// scenario accepts "bug1" / "bug2" to inject exactly one of the
	// paper's two bugs (the default injects both).
	Variant string
	// Degree bounds per-node fan-out where the service has one
	// (RandTree's MaxChildren, Bullet's MaxPeers).
	Degree int
	// Blocks and BlockSize describe the payload of data-plane scenarios
	// (Bullet').
	Blocks    int
	BlockSize int
}

// Tuning is a scenario's default Options for one use of the service; zero
// fields of a caller's Options are filled from it.
type Tuning struct {
	Nodes     int
	Degree    int
	Blocks    int
	BlockSize int
}

func (t Tuning) resolve(o Options) Options {
	if o.Nodes == 0 {
		o.Nodes = t.Nodes
	}
	if o.Degree == 0 {
		o.Degree = t.Degree
	}
	if o.Blocks == 0 {
		o.Blocks = t.Blocks
	}
	if o.BlockSize == 0 {
		o.BlockSize = t.BlockSize
	}
	return o
}

// Faults is a scenario's default fault model for the checker.
type Faults struct {
	// ExploreResets enables node-reset fault transitions.
	ExploreResets bool
	// ExploreConnBreaks enables spontaneous connection-break
	// transitions.
	ExploreConnBreaks bool
	// MaxResetsPerPath bounds resets along one path (0 = checker
	// default).
	MaxResetsPerPath int
}

// Scenario declaratively describes one service workload: everything the
// checker and the live deployment need, with no imperative wiring.
type Scenario struct {
	// Name is the canonical registry key ("randtree", "bulletprime", ...).
	Name string
	// Aliases are additional Lookup keys (e.g. "bullet").
	Aliases []string
	// Description is a one-line summary for -list output.
	Description string

	// New builds the service factory for the given member set. ids is
	// 1..Nodes and o is fully resolved; implementations should reject
	// unknown Variant values.
	New func(ids []sm.NodeID, o Options) (sm.Factory, error)

	// Props is the scenario's safety property set (sound for steering).
	Props props.Set
	// DebugProps optionally extends Props for deep online debugging and
	// offline checking; nil means Props serves both purposes.
	DebugProps props.Set
	// GlobalProps are the scenario's cross-node properties (replica
	// convergence, agreement, ring consistency). They are checked by every
	// search the scenario runs — offline mcheck, sharded dist rounds, and
	// live consequence prediction — and their violations steer executions
	// through the same filter machinery as Props violations.
	GlobalProps props.GlobalSet

	// Check and Live are the Options defaults for offline checking and
	// live deployment respectively.
	Check Tuning
	Live  Tuning

	// Faults is the default fault model for the checker.
	Faults Faults

	// Reduction enables sleep-set partial-order reduction
	// (mc.Config.Reduce) for this scenario's searches — offline checking
	// and live consequence-prediction rounds alike. Sound whenever the
	// scenario's properties are over states, not event orderings: the
	// reduced search claims the identical state set, local-state set and
	// violation set, just through fewer handler executions (the
	// differential oracle in reduction_oracle_test.go pins this). Leave
	// it off for scenarios whose checkers instrument message-arrival
	// order itself.
	Reduction bool

	// CheckerPolicy declares the per-round exploration budget policy for
	// live controllers: the kind ("fixed", "scaled", "adaptive") plus
	// the base budget and tuning. The zero value means a FixedPolicy
	// over the controller default budget. See resolvePolicySpec for how
	// DeployOptions override it.
	CheckerPolicy mc.PolicySpec

	// Join returns a fresh application call that makes a node enter the
	// workload; nil when the scenario has no join call (paxos, Bullet').
	// Deployments issue it at start-up and after churn rejoins.
	Join func() sm.AppCall
	// JoinStagger is the gap between successive nodes' initial joins
	// (chord staggers joins so the ring forms; 0 = all at once).
	JoinStagger time.Duration
}

// PropsFor returns the property set for the given purpose: the debugging
// set when debug is true and the scenario declares one, Props otherwise.
func (sc *Scenario) PropsFor(debug bool) props.Set {
	if debug && sc.DebugProps != nil {
		return sc.DebugProps
	}
	return sc.Props
}

// CheckOptions resolves o against the scenario's offline-checking defaults.
func (sc *Scenario) CheckOptions(o Options) Options { return sc.Check.resolve(o) }

// LiveOptions resolves o against the scenario's deployment defaults.
func (sc *Scenario) LiveOptions(o Options) Options { return sc.Live.resolve(o) }

// IDs returns node ids 1..n.
func IDs(n int) []sm.NodeID {
	out := make([]sm.NodeID, n)
	for i := range out {
		out[i] = sm.NodeID(i + 1)
	}
	return out
}

// Factory builds the service factory for already-resolved options.
func (sc *Scenario) Factory(o Options) (sm.Factory, error) {
	f, err := sc.New(IDs(o.Nodes), o)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	return f, nil
}

// SearchConfig returns the scenario's checker defaults — properties,
// factory and fault model — with o resolved against the Check tuning.
// Callers set the search mode and budgets on the result; examples that
// stage hand-built start states use this to stay on scenario defaults.
func (sc *Scenario) SearchConfig(o Options) (mc.Config, error) {
	o = sc.CheckOptions(o)
	factory, err := sc.Factory(o)
	if err != nil {
		return mc.Config{}, err
	}
	return mc.Config{
		Props:             sc.PropsFor(true),
		GlobalProps:       sc.GlobalProps,
		Factory:           factory,
		ExploreResets:     sc.Faults.ExploreResets,
		ExploreConnBreaks: sc.Faults.ExploreConnBreaks,
		MaxResetsPerPath:  sc.Faults.MaxResetsPerPath,
		Reduce:            sc.Reduction,
	}, nil
}

// InitialState builds the offline model checker's start state — every node
// a fresh, pre-Init service instance with no pending timers, exactly what
// mcheck explores from — plus the scenario's default mc.Config.
func (sc *Scenario) InitialState(o Options) (*mc.GState, mc.Config, error) {
	o = sc.CheckOptions(o)
	cfg, err := sc.SearchConfig(o)
	if err != nil {
		return nil, mc.Config{}, err
	}
	g := mc.NewGState()
	for _, id := range IDs(o.Nodes) {
		g.AddNode(id, cfg.Factory(id), nil)
	}
	return g, cfg, nil
}

// InitialState resolves service in the registry and builds its offline
// start state; see Scenario.InitialState.
func InitialState(service string, o Options) (*mc.GState, mc.Config, error) {
	sc, ok := Lookup(service)
	if !ok {
		return nil, mc.Config{}, fmt.Errorf("unknown scenario %q (registered: %v)", service, Names())
	}
	return sc.InitialState(o)
}

// ControllerConfig derives the controller configuration Deploy would
// install for o, so callers can tweak rarely-used fields (filter-safety
// ablations, replay policy) and pass the result back via o.Controller.
func (sc *Scenario) ControllerConfig(o DeployOptions) (controller.Config, error) {
	if o.Control == Bare {
		return controller.Config{}, fmt.Errorf("scenario %s: no controller in Bare deployments", sc.Name)
	}
	opts := sc.LiveOptions(o.Service)
	factory, err := sc.Factory(opts)
	if err != nil {
		return controller.Config{}, err
	}
	ps := o.Props
	if ps == nil {
		ps = sc.PropsFor(o.Control == Debug)
	}
	cfg := controller.DefaultConfig(ps, factory)
	cfg.GlobalProps = sc.GlobalProps
	if o.Control == Steering {
		cfg.Mode = controller.ExecutionSteering
	} else {
		cfg.Mode = controller.DeepOnlineDebugging
	}
	// The immediate safety check intervenes in the execution, so it is
	// on only when the deployment steers — unless explicitly toggled
	// (the ISC-only experiment arm runs it under a debugging controller).
	cfg.EnableISC = o.Control == Steering
	switch o.ISC {
	case On:
		cfg.EnableISC = true
	case Off:
		cfg.EnableISC = false
	}
	faults := sc.Faults
	if o.Faults != nil {
		faults = *o.Faults
	}
	cfg.ExploreResets = faults.ExploreResets
	cfg.ExploreConnBreaks = faults.ExploreConnBreaks
	cfg.MaxResetsPerPath = faults.MaxResetsPerPath
	cfg.Reduce = sc.Reduction
	switch o.Reduce {
	case On:
		cfg.Reduce = true
	case Off:
		cfg.Reduce = false
	}
	spec, err := sc.resolvePolicySpec(o)
	if err != nil {
		return controller.Config{}, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	cfg.Policy = spec
	// Mirror the resolved base into the deprecated scalars so legacy
	// readers of the controller config observe the same bounds.
	if spec.Base.States > 0 {
		cfg.MCStates = spec.Base.States
	}
	cfg.Workers = spec.Base.Workers
	if o.PerStateCost > 0 {
		cfg.PerStateCost = o.PerStateCost
	}
	if o.SnapshotInterval > 0 {
		cfg.SnapshotInterval = o.SnapshotInterval
	}
	return cfg, nil
}

// resolvePolicySpec is the ONE place the checker budget policy for a
// deployment is decided. Precedence, highest first, per field:
//
//	spec source   o.PolicySpec  >  sc.CheckerPolicy  >  zero (FixedPolicy)
//	kind          o.Policy      >  spec.Kind         >  "fixed"
//	states        o.MCStates    >  spec.Base.States  >  controller default
//	workers       o.Workers     >  spec.Base.Workers >  GOMAXPROCS
//
// All other spec fields (depth, wall, violations, adaptive/scaled tuning)
// come from the winning spec source; unset values fall to the controller
// defaults (Config.policySpec). TestPolicyPrecedence pins this table.
func (sc *Scenario) resolvePolicySpec(o DeployOptions) (mc.PolicySpec, error) {
	spec := sc.CheckerPolicy
	if o.PolicySpec != nil {
		spec = *o.PolicySpec
	}
	if o.Policy != "" {
		spec.Kind = o.Policy
	}
	if o.MCStates > 0 {
		spec.Base.States = o.MCStates
	}
	if o.Workers > 0 {
		spec.Base.Workers = o.Workers
	}
	// Validate the kind here so a bad -policy string is a Deploy error,
	// not a controller panic mid-deployment.
	if _, err := spec.New(); err != nil {
		return mc.PolicySpec{}, err
	}
	return spec, nil
}
