package scenario_test

import (
	"reflect"
	"testing"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
	"crystalball/internal/sm"
)

// TestWorkerCountDeterminismMatrix extends the checker's same-seed
// determinism guarantee across every registered scenario: a depth-bounded
// search (no state or violation cutoff, so the reachable set is
// interleaving-independent) must admit the same states, take the same
// transitions and report the same violations at any worker count. The
// chord/paxos-only versions of this check live in internal/mc; this matrix
// covers randtree and bulletprime too, and every future registration
// automatically.
func TestWorkerCountDeterminismMatrix(t *testing.T) {
	// Depth bounds per scenario, deep enough to include fault
	// transitions and at least one seeded-bug violation where one is
	// reachable, shallow enough to exhaust.
	depth := map[string]int{
		"randtree":    5,
		"chord":       5,
		"paxos":       4,
		"bulletprime": 5,
	}
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			d, ok := depth[name]
			if !ok {
				d = 4 // future scenarios get a conservative bound
			}
			run := func(workers int) *mc.Result {
				g, cfg, err := scenario.InitialState(name, scenario.Options{Nodes: 3})
				if err != nil {
					t.Fatal(err)
				}
				cfg.Mode = mc.Exhaustive
				cfg.MaxDepth = d
				cfg.Workers = workers
				cfg.Seed = 42
				return mc.NewSearch(cfg).Run(g)
			}
			serial := run(1)
			for _, workers := range []int{2, 4} {
				par := run(workers)
				if par.StatesExplored != serial.StatesExplored || par.Transitions != serial.Transitions {
					t.Fatalf("workers=%d: states/transitions %d/%d, serial %d/%d",
						workers, par.StatesExplored, par.Transitions,
						serial.StatesExplored, serial.Transitions)
				}
				if len(par.Violations) != len(serial.Violations) {
					t.Fatalf("workers=%d: %d violations, serial %d",
						workers, len(par.Violations), len(serial.Violations))
				}
				for i := range par.Violations {
					a, b := par.Violations[i], serial.Violations[i]
					if a.StateHash != b.StateHash || a.Depth != b.Depth {
						t.Fatalf("workers=%d: violation %d (hash %#x depth %d), serial (hash %#x depth %d)",
							workers, i, a.StateHash, a.Depth, b.StateHash, b.Depth)
					}
					if !reflect.DeepEqual(a.Properties, b.Properties) {
						t.Fatalf("workers=%d: violation %d properties %v, serial %v",
							workers, i, a.Properties, b.Properties)
					}
				}
			}
		})
	}
}

// TestSameSeedDeploymentDeterminism: two deployments with identical options
// evolve identically — same per-node action counts and the same global
// fingerprint of every node's state encoding.
func TestSameSeedDeploymentDeterminism(t *testing.T) {
	run := func() []int64 {
		d, err := scenario.Deploy("randtree", scenario.DeployOptions{
			Seed:     9,
			Service:  scenario.Options{Nodes: 6},
			Control:  scenario.Debug,
			MCStates: 500,
			Workload: true,
			Churn:    20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.Sim.RunFor(90 * time.Second)
		var out []int64
		for _, node := range d.Nodes {
			out = append(out, node.Stats.ActionsExecuted)
			e := sm.NewEncoder()
			svc, _ := node.View()
			svc.EncodeState(e)
			out = append(out, int64(e.Hash()))
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed deployments diverged:\n%v\nvs\n%v", a, b)
	}
}
