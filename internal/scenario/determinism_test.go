package scenario_test

import (
	"reflect"
	"testing"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
	"crystalball/internal/sm"
)

// TestWorkerCountDeterminismMatrix extends the checker's same-seed
// determinism guarantee across every registered scenario and both
// partial-order-reduction settings: a depth-bounded search (no state or
// violation cutoff, so the reachable set is interleaving-independent) must
// admit the same states, take the same transitions and report the same
// violations at any worker count, with reduction on and off. The
// chord/paxos-only versions of this check live in internal/mc; this matrix
// covers randtree and bulletprime too, and every future registration
// automatically.
func TestWorkerCountDeterminismMatrix(t *testing.T) {
	// Depth bounds per scenario, deep enough to include fault
	// transitions and at least one seeded-bug violation where one is
	// reachable, shallow enough to exhaust.
	depth := map[string]int{
		"randtree":    5,
		"chord":       5,
		"paxos":       4,
		"bulletprime": 5,
	}
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			d, ok := depth[name]
			if !ok {
				d = 4 // future scenarios get a conservative bound
			}
			run := func(workers int, reduce bool) *mc.Result {
				g, cfg, err := scenario.InitialState(name, scenario.Options{Nodes: 3})
				if err != nil {
					t.Fatal(err)
				}
				cfg.Mode = mc.Exhaustive
				cfg.MaxDepth = d
				cfg.Workers = workers
				cfg.Seed = 42
				cfg.Reduce = reduce
				return mc.NewSearch(cfg).Run(g)
			}
			for _, reduce := range []bool{false, true} {
				serial := run(1, reduce)
				for _, workers := range []int{2, 4} {
					par := run(workers, reduce)
					if par.StatesExplored != serial.StatesExplored || par.Transitions != serial.Transitions {
						t.Fatalf("reduce=%v workers=%d: states/transitions %d/%d, serial %d/%d",
							reduce, workers, par.StatesExplored, par.Transitions,
							serial.StatesExplored, serial.Transitions)
					}
					if len(par.Violations) != len(serial.Violations) {
						t.Fatalf("reduce=%v workers=%d: %d violations, serial %d",
							reduce, workers, len(par.Violations), len(serial.Violations))
					}
					for i := range par.Violations {
						a, b := par.Violations[i], serial.Violations[i]
						if a.StateHash != b.StateHash || a.Depth != b.Depth {
							t.Fatalf("reduce=%v workers=%d: violation %d (hash %#x depth %d), serial (hash %#x depth %d)",
								reduce, workers, i, a.StateHash, a.Depth, b.StateHash, b.Depth)
						}
						if !reflect.DeepEqual(a.Properties, b.Properties) {
							t.Fatalf("reduce=%v workers=%d: violation %d properties %v, serial %v",
								reduce, workers, i, a.Properties, b.Properties)
						}
					}
				}
			}
		})
	}
}

// TestFixedPolicyMatchesLegacyConfigMatrix: for every registered scenario
// and worker count, a search whose budget was planned by a FixedPolicy is
// the *same search* as the pre-redesign loose-scalar configuration — same
// states, same transitions, same violations. Combined with the engine's
// worker-count determinism above, this pins the acceptance claim that
// mcheck under FixedPolicy stays byte-identical to the pre-policy checker
// at every worker count.
func TestFixedPolicyMatchesLegacyConfigMatrix(t *testing.T) {
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 2, 4} {
				run := func(usePolicy bool) *mc.Result {
					g, cfg, err := scenario.InitialState(name, scenario.Options{Nodes: 3})
					if err != nil {
						t.Fatal(err)
					}
					cfg.Mode = mc.Exhaustive
					cfg.Seed = 42
					if usePolicy {
						pol := mc.PolicySpec{
							Kind: mc.PolicyFixed,
							Base: mc.Budget{Depth: 4, Workers: workers},
						}.MustNew()
						cfg.Budget = pol.Plan(mc.RoundInfo{
							Round:         1,
							SnapshotBytes: g.EncodedSize(),
							SnapshotNodes: len(g.Nodes()),
						})
					} else {
						cfg.MaxDepth = 4
						cfg.Workers = workers
					}
					return mc.NewSearch(cfg).Run(g)
				}
				legacy, policy := run(false), run(true)
				if legacy.StatesExplored != policy.StatesExplored ||
					legacy.Transitions != policy.Transitions ||
					len(legacy.Violations) != len(policy.Violations) {
					t.Fatalf("workers=%d: legacy %d/%d/%d vs policy %d/%d/%d",
						workers, legacy.StatesExplored, legacy.Transitions, len(legacy.Violations),
						policy.StatesExplored, policy.Transitions, len(policy.Violations))
				}
				for i := range legacy.Violations {
					a, b := legacy.Violations[i], policy.Violations[i]
					if a.StateHash != b.StateHash || a.Depth != b.Depth {
						t.Fatalf("workers=%d: violation %d differs", workers, i)
					}
				}
			}
		})
	}
}

// TestSameSeedDeploymentDeterminism: two deployments with identical options
// evolve identically — same per-node action counts and the same global
// fingerprint of every node's state encoding.
func TestSameSeedDeploymentDeterminism(t *testing.T) {
	testSameSeedDeploymentDeterminism(t, "")
}

// TestSameSeedAdaptiveDeploymentDeterminism: the adaptive policy keeps
// same-seed deployments deterministic — its round reports carry the
// *virtual* checker latency (states x per-state cost), never host wall
// time, so the planned budget sequence is a pure function of the
// simulation.
func TestSameSeedAdaptiveDeploymentDeterminism(t *testing.T) {
	testSameSeedDeploymentDeterminism(t, "adaptive")
}

func testSameSeedDeploymentDeterminism(t *testing.T, policy string) {
	run := func() []int64 {
		d, err := scenario.Deploy("randtree", scenario.DeployOptions{
			Seed:     9,
			Service:  scenario.Options{Nodes: 6},
			Control:  scenario.Debug,
			Policy:   policy,
			MCStates: 500,
			Workers:  1,
			Workload: true,
			Churn:    20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.Sim.RunFor(90 * time.Second)
		var out []int64
		for _, node := range d.Nodes {
			out = append(out, node.Stats.ActionsExecuted)
			e := sm.NewEncoder()
			svc, _ := node.View()
			svc.EncodeState(e)
			out = append(out, int64(e.Hash()))
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed deployments diverged:\n%v\nvs\n%v", a, b)
	}
}
