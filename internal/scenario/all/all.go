// Package all registers every built-in scenario. CLIs and tests that
// resolve services through the registry blank-import it:
//
//	import _ "crystalball/internal/scenario/all"
package all

import (
	_ "crystalball/internal/services/bulletprime"
	_ "crystalball/internal/services/chord"
	_ "crystalball/internal/services/crdt"
	_ "crystalball/internal/services/paxos"
	_ "crystalball/internal/services/randtree"
)
