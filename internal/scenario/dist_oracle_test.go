package scenario_test

import (
	"reflect"
	"sort"
	"testing"

	"crystalball/internal/dist"
	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
)

// distVio is the deterministic core of a distributed violation report:
// representative paths are scheduling telemetry and excluded.
type distVio struct {
	props string
	depth int
	hash  uint64
}

func distVios(vs []mc.Violation) []distVio {
	out := make([]distVio, len(vs))
	for i, v := range vs {
		sig := ""
		for _, p := range v.Properties {
			sig += p + "|"
		}
		out[i] = distVio{props: sig, depth: v.Depth, hash: v.StateHash}
	}
	return out
}

// violatedNames reduces violations to the sorted set of distinct property
// names — the granularity at which serial (onset semantics) and
// distributed (full violated-set semantics) reports are comparable.
func violatedNames(vs []mc.Violation) []string {
	seen := map[string]bool{}
	for _, v := range vs {
		for _, p := range v.Properties {
			seen[p] = true
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// TestDistOracleMatrix is the distributed-search differential oracle: for
// every registered scenario, a depth-bounded distributed exhaustive round
// must claim the *identical* state set as the single-process engine — at
// shards 1, 2 and 4, and at any per-shard worker count — along with the
// identical state count and distinct local-state set. The distributed
// violation reports (full violated-set semantics, see internal/dist) are
// additionally pinned to be identical across every shard/worker
// combination, since they are a pure function of the claimed set.
func TestDistOracleMatrix(t *testing.T) {
	depth := map[string]int{
		"randtree":    5,
		"chord":       5,
		"paxos":       4,
		"bulletprime": 5,
		// Depth 6 is where the seeded CRDT divergences first appear, so
		// the violation-equality half of the oracle is exercised (the
		// ReplicaConvergence property is global — evaluated per shard
		// as a pure function of the expanded state).
		"gcounter": 6,
		"orset":    6,
		"lwwmap":   6,
	}
	for _, name := range scenario.Names() {
		name := name
		d, ok := depth[name]
		if !ok {
			d = 4
		}
		t.Run(name, func(t *testing.T) {
			g, cfg, err := scenario.InitialState(name, scenario.Options{Nodes: 3})
			if err != nil {
				t.Fatal(err)
			}
			cfg.Mode = mc.Exhaustive
			cfg.Seed = 42
			cfg.Budget = mc.Budget{Depth: d, Workers: 2}
			cfg.RecordLocalStates = true
			cfg.RecordClaimedStates = true
			serial := mc.NewSearch(cfg).Run(g)
			if serial.StatesExplored == 0 {
				t.Fatalf("serial search explored no states")
			}

			var ref *mc.Result
			for _, shards := range []int{1, 2, 4} {
				for _, workers := range []int{1, 2} {
					res, err := dist.Local(dist.LocalConfig{
						Shards:       shards,
						Search:       cfg,
						Root:         g,
						Budget:       mc.Budget{Depth: d, Workers: workers},
						RecordStates: true,
					})
					if err != nil {
						t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
					}
					got := &res.Checker
					if !reflect.DeepEqual(got.ClaimedStates, serial.ClaimedStates) {
						t.Errorf("shards=%d workers=%d: claimed-state set diverges from serial engine (%d vs %d states)",
							shards, workers, len(got.ClaimedStates), len(serial.ClaimedStates))
					}
					if got.StatesExplored != serial.StatesExplored {
						t.Errorf("shards=%d workers=%d: StatesExplored=%d, serial %d",
							shards, workers, got.StatesExplored, serial.StatesExplored)
					}
					if got.MaxDepthReached != serial.MaxDepthReached {
						t.Errorf("shards=%d workers=%d: MaxDepthReached=%d, serial %d",
							shards, workers, got.MaxDepthReached, serial.MaxDepthReached)
					}
					if got.DistinctLocalStates != serial.DistinctLocalStates {
						t.Errorf("shards=%d workers=%d: DistinctLocalStates=%d, serial %d",
							shards, workers, got.DistinctLocalStates, serial.DistinctLocalStates)
					}
					if !reflect.DeepEqual(violatedNames(got.Violations), violatedNames(serial.Violations)) {
						t.Errorf("shards=%d workers=%d: violated properties %v, serial %v",
							shards, workers, violatedNames(got.Violations), violatedNames(serial.Violations))
					}
					if ref == nil {
						ref = got
						continue
					}
					if !reflect.DeepEqual(distVios(got.Violations), distVios(ref.Violations)) {
						t.Errorf("shards=%d workers=%d: violation set diverges across shard counts", shards, workers)
					}
				}
			}
		})
	}
}

// TestDistDeterminism pins same-seed reproducibility: two identical
// distributed runs report identical claimed sets, counts and violations.
func TestDistDeterminism(t *testing.T) {
	g, cfg, err := scenario.InitialState("chord", scenario.Options{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = mc.Exhaustive
	cfg.Seed = 7
	run := func() *mc.Result {
		res, err := dist.Local(dist.LocalConfig{
			Shards:       3,
			Search:       cfg,
			Root:         g,
			Budget:       mc.Budget{Depth: 5, Workers: 2},
			RecordStates: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return &res.Checker
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.ClaimedStates, b.ClaimedStates) {
		t.Errorf("claimed-state sets differ between identical runs")
	}
	if a.StatesExplored != b.StatesExplored || a.MaxDepthReached != b.MaxDepthReached ||
		a.DistinctLocalStates != b.DistinctLocalStates {
		t.Errorf("counts differ between identical runs: %+v vs %+v", a, b)
	}
	if !reflect.DeepEqual(distVios(a.Violations), distVios(b.Violations)) {
		t.Errorf("violation sets differ between identical runs")
	}
}
