package scenario_test

import (
	"sort"
	"strings"
	"testing"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
	"crystalball/internal/services/crdt"
	"crystalball/internal/services/paxos"
	"crystalball/internal/sm"
)

// TestRegistryComplete: the built-in scenarios are registered under their
// canonical names, the bulletprime alias resolves, and lookups of unknown
// names fail.
func TestRegistryComplete(t *testing.T) {
	want := []string{"bulletprime", "chord", "gcounter", "lwwmap", "orset", "paxos", "randtree"}
	if got := scenario.Names(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		sc, ok := scenario.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if sc.Name != name {
			t.Fatalf("Lookup(%q).Name = %q", name, sc.Name)
		}
		if sc.Description == "" {
			t.Fatalf("%s: no description", name)
		}
	}
	alias, ok := scenario.Lookup("bullet")
	if !ok || alias.Name != "bulletprime" {
		t.Fatalf("alias bullet resolved to %v, ok=%v", alias, ok)
	}
	if _, ok := scenario.Lookup("nope"); ok {
		t.Fatal("Lookup of an unregistered name succeeded")
	}
}

// TestOptionResolution: zero Options fields resolve against the Check and
// Live tunings independently, and explicit values win.
func TestOptionResolution(t *testing.T) {
	sc := scenario.MustLookup("randtree")
	if got := sc.CheckOptions(scenario.Options{}); got.Nodes != 5 || got.Degree != 0 {
		t.Fatalf("CheckOptions zero = %+v, want Nodes 5 Degree 0", got)
	}
	if got := sc.LiveOptions(scenario.Options{}); got.Nodes != 12 || got.Degree != 3 {
		t.Fatalf("LiveOptions zero = %+v, want Nodes 12 Degree 3", got)
	}
	if got := sc.LiveOptions(scenario.Options{Nodes: 6, Degree: 2}); got.Nodes != 6 || got.Degree != 2 {
		t.Fatalf("LiveOptions explicit = %+v, want Nodes 6 Degree 2", got)
	}
}

// TestUnknownVariantRejected: every scenario rejects a variant string it
// does not define, through every builder.
func TestUnknownVariantRejected(t *testing.T) {
	for _, name := range scenario.Names() {
		sc := scenario.MustLookup(name)
		if _, _, err := sc.InitialState(scenario.Options{Variant: "no-such-variant"}); err == nil {
			t.Errorf("%s: InitialState accepted an unknown variant", name)
		}
		if _, err := sc.Deploy(scenario.DeployOptions{Service: scenario.Options{Variant: "no-such-variant"}}); err == nil {
			t.Errorf("%s: Deploy accepted an unknown variant", name)
		}
	}
}

// violatedProps collects the distinct property names among a result's
// violations.
func violatedProps(res *mc.Result) []string {
	seen := map[string]bool{}
	for _, v := range res.Violations {
		for _, p := range v.Properties {
			seen[p] = true
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// paxosFigure13Start stages the post-round-1 snapshot of the paper's
// Figure 13: round 3 (proposed by A=1) chose value 0 on {A, B} while C was
// partitioned away. From here a new proposal by C (or B) exposes bug 1 —
// the leader builds its Accept from the last Promise — by choosing a
// second value; the fixed leader re-proposes the accepted 0. A sibling of
// internal/mc's paxosPostRound1Start fixture, deliberately one event
// later: here B has also observed the round-3 Learn majority (ChosenVals
// [0]), so the fixed-variant case below genuinely re-chooses 0 rather
// than choosing for the first time.
func paxosFigure13Start(factory sm.Factory) *mc.GState {
	a := factory(1).(*paxos.Paxos)
	a.PromisedRound = 3
	a.AcceptedRound = 3
	a.AcceptedVal = 0
	a.HasAccepted = true
	a.CurRound = 3
	a.Proposing = true
	a.AcceptSent = true
	a.ChosenVals = []int64{0}
	a.Learns = map[uint64]map[sm.NodeID]int64{3: {1: 0, 2: 0}}

	b := factory(2).(*paxos.Paxos)
	b.PromisedRound = 3
	b.AcceptedRound = 3
	b.AcceptedVal = 0
	b.HasAccepted = true
	b.ChosenVals = []int64{0}
	b.Learns = map[uint64]map[sm.NodeID]int64{3: {2: 0}}

	g := mc.NewGState()
	g.AddNode(1, a, nil)
	g.AddNode(2, b, nil)
	g.AddNode(3, factory(3).(*paxos.Paxos), nil)
	return g
}

// TestScenarioMatrix iterates every registered scenario through a small
// bounded search and asserts the known seeded bugs are found where
// expected: each data-plane service exposes (at least) its signature
// inconsistency from a cheap start state, the fixed variants stay clean
// where the properties are steady-state invariants, and paxos demonstrates
// both the paper's "consequence prediction from the initial state is
// useless" claim and the staged Figure 13 bug-1 violation.
func TestScenarioMatrix(t *testing.T) {
	cases := []struct {
		label string
		name  string
		opts  scenario.Options
		mode  mc.Mode
		// stage overrides the initial state with a hand-built live
		// snapshot (nil = InitialState).
		stage     func(sm.Factory) *mc.GState
		maxStates int
		maxDepth  int
		// want lists property names that must appear among the
		// violations; empty means no violations at all.
		want []string
	}{
		{
			label: "randtree/buggy-exhaustive",
			name:  "randtree",
			opts:  scenario.Options{Nodes: 3},
			mode:  mc.Exhaustive,
			want:  []string{"RecoveryTimerRuns"},
		},
		{
			label: "chord/buggy-exhaustive",
			name:  "chord",
			opts:  scenario.Options{Nodes: 3},
			mode:  mc.Exhaustive,
			want:  []string{"NoForeignSelfLoop"},
		},
		{
			label: "bulletprime/buggy-consequence",
			name:  "bulletprime",
			opts:  scenario.Options{Nodes: 3},
			mode:  mc.Consequence,
			want:  []string{"SenderReceiverFileMapsAgree"},
		},
		{
			label: "bulletprime/fixed-consequence",
			name:  "bulletprime",
			opts:  scenario.Options{Nodes: 3, Fixed: true},
			mode:  mc.Consequence,
			want:  nil,
		},
		{
			// The paper's section 5.3 observation: consequence
			// prediction from the initial state never leaves the
			// initialization phase, so the deep Figure 13 bug stays
			// out of reach.
			label:     "paxos/initial-consequence-useless",
			name:      "paxos",
			opts:      scenario.Options{Variant: "bug1"},
			mode:      mc.Consequence,
			maxStates: 4000,
			want:      nil,
		},
		{
			label:    "paxos/figure13-bug1",
			name:     "paxos",
			opts:     scenario.Options{Variant: "bug1"},
			mode:     mc.Consequence,
			stage:    paxosFigure13Start,
			maxDepth: 9,
			want:     []string{"AtMostOneValueChosen"},
		},
		{
			label:    "paxos/figure13-fixed",
			name:     "paxos",
			opts:     scenario.Options{Fixed: true},
			mode:     mc.Consequence,
			stage:    paxosFigure13Start,
			maxDepth: 9,
			want:     nil,
		},
		{
			// The seeded overwrite merge diverges within consequence
			// prediction's reach only with spare passive nodes: their
			// fresh local states keep the critical interleavings
			// unclaimed (3 nodes is below the detection threshold).
			label: "gcounter/buggy-consequence",
			name:  "gcounter",
			opts:  scenario.Options{Nodes: 5},
			mode:  mc.Consequence,
			want:  []string{"ReplicaConvergence"},
		},
		{
			label: "gcounter/fixed-consequence",
			name:  "gcounter",
			opts:  scenario.Options{Nodes: 5, Fixed: true},
			mode:  mc.Consequence,
			want:  nil,
		},
		{
			label: "orset/buggy-consequence",
			name:  "orset",
			opts:  scenario.Options{Nodes: 3},
			mode:  mc.Consequence,
			want:  []string{"ReplicaConvergence"},
		},
		{
			label: "orset/fixed-consequence",
			name:  "orset",
			opts:  scenario.Options{Nodes: 3, Fixed: true},
			mode:  mc.Consequence,
			want:  nil,
		},
		{
			// The lwwmap sibling of paxos/initial-consequence-useless:
			// the clock-tie divergence needs interleavings that claim
			// pruning removes from the initial state, so consequence
			// prediction stays clean here and needs the staged tie
			// below (exhaustive search finds it from the initial state;
			// see the dist oracle matrix).
			label: "lwwmap/initial-consequence-useless",
			name:  "lwwmap",
			opts:  scenario.Options{Nodes: 3},
			mode:  mc.Consequence,
			want:  nil,
		},
		{
			label:    "lwwmap/tie-consequence",
			name:     "lwwmap",
			opts:     scenario.Options{Nodes: 3},
			mode:     mc.Consequence,
			stage:    crdt.TieStart,
			maxDepth: 6,
			want:     []string{"ReplicaConvergence"},
		},
		{
			label:    "lwwmap/tie-fixed",
			name:     "lwwmap",
			opts:     scenario.Options{Nodes: 3, Fixed: true},
			mode:     mc.Consequence,
			stage:    crdt.TieStart,
			maxDepth: 6,
			want:     nil,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.label, func(t *testing.T) {
			sc := scenario.MustLookup(tc.name)
			g, cfg, err := sc.InitialState(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if tc.stage != nil {
				g = tc.stage(cfg.Factory)
			}
			cfg.Mode = tc.mode
			cfg.Workers = 1
			cfg.Seed = 1
			cfg.MaxStates = tc.maxStates
			if cfg.MaxStates == 0 {
				cfg.MaxStates = 60000
			}
			cfg.MaxDepth = tc.maxDepth
			cfg.MaxWall = 2 * time.Minute
			res := mc.NewSearch(cfg).Run(g)
			got := violatedProps(res)
			if len(tc.want) == 0 {
				if len(got) != 0 {
					t.Fatalf("expected no violations, found %v", got)
				}
				return
			}
			for _, p := range tc.want {
				found := false
				for _, q := range got {
					if q == p {
						found = true
					}
				}
				if !found {
					t.Fatalf("expected violation of %s, found %v (states=%d)",
						p, got, res.StatesExplored)
				}
			}
		})
	}
}

// TestDeploySmoke deploys every registered scenario briefly in debugging
// mode and checks the stack holds together: nodes exist at the scenario's
// default count, controllers run rounds, and the ground-truth view covers
// every node.
func TestDeploySmoke(t *testing.T) {
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc := scenario.MustLookup(name)
			d, err := sc.Deploy(scenario.DeployOptions{
				Seed:     3,
				Control:  scenario.Debug,
				MCStates: 200,
				Workload: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(d.Nodes) != sc.Live.Nodes || len(d.Ctrls) != sc.Live.Nodes {
				t.Fatalf("deployed %d nodes / %d controllers, want %d",
					len(d.Nodes), len(d.Ctrls), sc.Live.Nodes)
			}
			d.Sim.RunFor(45 * time.Second)
			var rounds int64
			for _, c := range d.Ctrls {
				rounds += c.Stats.Rounds
			}
			if rounds == 0 {
				t.Fatal("no model-checking rounds ran")
			}
			v := d.View()
			for _, node := range d.Nodes {
				if !v.Has(node.ID) {
					t.Fatalf("view missing node %v", node.ID)
				}
			}
		})
	}
}

// TestDeployBareCheckpoints: a bare deployment with Checkpoints attaches
// one standalone snapshot manager per node and no controllers.
func TestDeployBareCheckpoints(t *testing.T) {
	d, err := scenario.Deploy("randtree", scenario.DeployOptions{
		Seed:        5,
		Service:     scenario.Options{Nodes: 4},
		Control:     scenario.Bare,
		Checkpoints: true,
		Workload:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Ctrls) != 0 {
		t.Fatalf("bare deployment got %d controllers", len(d.Ctrls))
	}
	if len(d.Mgrs) != 4 {
		t.Fatalf("got %d snapshot managers, want 4", len(d.Mgrs))
	}
	d.Sim.RunFor(15 * time.Second)
	if d.Mgrs[0].LatestCheckpointSize() == 0 {
		t.Fatal("no checkpoint was taken")
	}
}
