package scenario

import (
	"fmt"
	"math"
	"time"

	"crystalball/internal/controller"
	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/runtime"
	"crystalball/internal/sim"
	"crystalball/internal/simnet"
	"crystalball/internal/snapshot"
)

// Control selects what supervises the deployed nodes.
type Control int

// Deployment control modes.
const (
	// Bare deploys the service with no CrystalBall controllers.
	Bare Control = iota
	// Debug attaches controllers in deep-online-debugging mode.
	Debug
	// Steering attaches controllers in execution-steering mode.
	Steering
)

// Toggle is a three-state option: the zero value keeps the default.
type Toggle int

// Toggle states.
const (
	Auto Toggle = iota
	On
	Off
)

// LANPath is the uniform 20 ms / 100 Mbps path model the staged scenarios
// and CLIs deploy on by default.
func LANPath() simnet.UniformPath {
	return simnet.UniformPath{Latency: 20 * time.Millisecond, BwBps: 1e8}
}

// SnapDefaults returns the checkpointing configuration used across the
// experiments (paper: 10 s checkpoint interval, LZW compression).
func SnapDefaults() snapshot.Config {
	return snapshot.Config{
		Interval:       10 * time.Second,
		Quota:          32,
		CollectTimeout: 2 * time.Second,
		Compress:       true,
		MaxRetries:     1,
	}
}

// DeployOptions assembles a live deployment behind one struct; the zero
// value deploys the scenario's Live defaults bare on a fresh seed-0 clock.
type DeployOptions struct {
	// Sim is the simulated clock to deploy on; nil creates sim.New(Seed).
	Sim *sim.Simulator
	// Seed seeds the created simulator (ignored when Sim is set).
	Seed int64
	// Path is the network path model (nil = LANPath).
	Path simnet.PathModel
	// Service parameterises the service factory; zero fields resolve
	// against the scenario's Live tuning.
	Service Options
	// Control selects bare, debugging or steering supervision.
	Control Control
	// Controller, when set, is installed verbatim (its Factory is
	// replaced by the deployment's); use ControllerConfig to derive a
	// baseline to tweak. All controller-shaping fields below are then
	// ignored.
	Controller *controller.Config
	// Props overrides the property set controllers check (nil =
	// scenario default for the control mode).
	Props props.Set
	// Snapshot overrides the checkpointing configuration (nil =
	// SnapDefaults).
	Snapshot *snapshot.Config
	// SnapshotInterval overrides both the checkpoint interval and the
	// controller's model-checking round interval.
	SnapshotInterval time.Duration
	// Policy selects the per-round checker budget policy kind ("fixed",
	// "scaled", "adaptive"; "" = scenario's CheckerPolicy kind, then
	// fixed). See Scenario.resolvePolicySpec for the full precedence.
	Policy string
	// PolicySpec, when non-nil, replaces the scenario's CheckerPolicy
	// wholesale before the per-field options (Policy, MCStates, Workers)
	// apply on top.
	PolicySpec *mc.PolicySpec
	// MCStates bounds each consequence-prediction round (0 = policy /
	// scenario suggestion, then controller default).
	MCStates int
	// Workers is the checker worker-pool size (0 = policy suggestion,
	// then GOMAXPROCS).
	Workers int
	// PerStateCost overrides the virtual checker latency per state.
	PerStateCost time.Duration
	// ISC toggles the immediate safety check (Auto = on iff steering).
	ISC Toggle
	// Reduce toggles sleep-set partial-order reduction in the
	// controllers' consequence-prediction rounds (Auto = the scenario's
	// Reduction default).
	Reduce Toggle
	// Faults overrides the scenario's checker fault model.
	Faults *Faults
	// Checkpoints attaches standalone snapshot managers to Bare
	// deployments (the overhead experiments measure them without
	// controllers); deployments with controllers always checkpoint.
	Checkpoints bool
	// Workload issues the scenario's initial application-call workload
	// (joins) as soon as the nodes exist; call StartWorkload for
	// manual control, e.g. after installing OnEvent hooks.
	Workload bool
	// Churn starts the built-in churn loop with this mean reset
	// interval (0 = none).
	Churn time.Duration
}

// Deployment is a running simulated CrystalBall deployment built by
// Scenario.Deploy.
type Deployment struct {
	Scenario *Scenario
	// Service is the resolved service options the factory was built
	// with.
	Service Options
	// Props is the property set supervising this deployment (what the
	// controllers check, or the scenario set when bare).
	Props props.Set
	Sim   *sim.Simulator
	Net   *simnet.Network
	Nodes []*runtime.Node
	Ctrls []*controller.Controller
	// Mgrs are the standalone snapshot managers of a Bare deployment
	// with Checkpoints on (indexed like Nodes); controller-supervised
	// deployments keep their managers inside the controllers.
	Mgrs []*snapshot.Manager
}

// Deploy assembles the full live stack for the scenario: simulated clock,
// simulated network with a path model, one runtime node per member, and —
// depending on o.Control — snapshot managers and CrystalBall controllers.
func (sc *Scenario) Deploy(o DeployOptions) (*Deployment, error) {
	opts := sc.LiveOptions(o.Service)
	factory, err := sc.Factory(opts)
	if err != nil {
		return nil, err
	}
	s := o.Sim
	if s == nil {
		s = sim.New(o.Seed)
	}
	path := o.Path
	if path == nil {
		path = LANPath()
	}
	snapCfg := SnapDefaults()
	if o.Snapshot != nil {
		snapCfg = *o.Snapshot
	}
	if o.SnapshotInterval > 0 {
		snapCfg.Interval = o.SnapshotInterval
	}

	var ctrlCfg *controller.Config
	switch {
	case o.Controller != nil:
		cfg := *o.Controller
		if cfg.Props == nil {
			cfg.Props = sc.PropsFor(o.Control == Debug)
		}
		// The verbatim config bypasses resolvePolicySpec, so validate
		// its policy kind here: a typo should be a Deploy error, not a
		// controller.New panic mid-deployment.
		if _, err := cfg.Policy.New(); err != nil {
			return nil, fmt.Errorf("scenario %s: controller config: %w", sc.Name, err)
		}
		ctrlCfg = &cfg
	case o.Control != Bare:
		cfg, err := sc.ControllerConfig(o)
		if err != nil {
			return nil, err
		}
		ctrlCfg = &cfg
	}

	d := &Deployment{
		Scenario: sc,
		Service:  opts,
		Props:    sc.Props,
		Sim:      s,
		Net:      simnet.New(s, path),
	}
	if ctrlCfg != nil {
		d.Props = ctrlCfg.Props
	}
	for _, id := range IDs(opts.Nodes) {
		node := runtime.NewNode(s, d.Net, id, factory)
		d.Nodes = append(d.Nodes, node)
		switch {
		case ctrlCfg != nil:
			cfg := *ctrlCfg
			cfg.Factory = factory
			c := controller.New(s, node, cfg, snapCfg)
			c.Start()
			d.Ctrls = append(d.Ctrls, c)
		case o.Checkpoints:
			d.Mgrs = append(d.Mgrs, snapshot.NewManager(s, node, snapCfg))
		}
	}
	if o.Workload {
		d.StartWorkload()
	}
	if o.Churn > 0 {
		d.StartChurn(o.Churn)
	}
	return d, nil
}

// Deploy resolves service in the registry and deploys it; see
// Scenario.Deploy.
func Deploy(service string, o DeployOptions) (*Deployment, error) {
	sc, ok := Lookup(service)
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (registered: %v)", service, Names())
	}
	return sc.Deploy(o)
}

// StartWorkload issues the scenario's initial application-call workload:
// every node receives a fresh Join call, staggered by the scenario's
// JoinStagger. A no-op for scenarios without a join call.
func (d *Deployment) StartWorkload() {
	if d.Scenario.Join == nil {
		return
	}
	for i, node := range d.Nodes {
		node := node
		if d.Scenario.JoinStagger <= 0 {
			node.App(d.Scenario.Join())
			continue
		}
		d.Sim.After(time.Duration(i)*d.Scenario.JoinStagger, func() {
			node.App(d.Scenario.Join())
		})
	}
}

// StartChurn resets a random node (silently half the time) at exponential
// intervals with the given mean, reissuing the scenario's join call after
// each reset.
func (d *Deployment) StartChurn(mean time.Duration) {
	rng := d.Sim.RNG("churn")
	var tick func()
	tick = func() {
		node := d.Nodes[rng.Intn(len(d.Nodes))]
		node.Reset(rng.Intn(2) == 0)
		if d.Scenario.Join != nil {
			call := d.Scenario.Join()
			d.Sim.After(500*time.Millisecond, func() { node.App(call) })
		}
		d.Sim.After(time.Duration(float64(mean)*ExpRand(rng.Float64())), tick)
	}
	d.Sim.After(time.Duration(float64(mean)*ExpRand(rng.Float64())), tick)
}

// ExpRand converts a uniform sample into a unit-mean exponential sample,
// capped at 5 to avoid pathological gaps in short experiments.
func ExpRand(u float64) float64 {
	if u <= 0 {
		u = 1e-9
	}
	x := -math.Log(u)
	if x > 5 {
		x = 5
	}
	return x
}

// View builds the ground-truth global view of the deployment, allocating a
// fresh view. Per-event harness loops use FillView with a reused view.
func (d *Deployment) View() *props.View {
	v := props.NewView()
	d.FillView(v)
	return v
}

// FillView resets v and loads every node's (service, timers) pair into it,
// reusing v's storage; for harnesses that evaluate ground-truth properties
// on every executed event.
func (d *Deployment) FillView(v *props.View) {
	v.Reset()
	for _, node := range d.Nodes {
		svc, timers := node.View()
		v.Add(node.ID, svc, timers)
	}
}

// TotalFindings returns all controller findings.
func (d *Deployment) TotalFindings() []controller.Finding {
	var out []controller.Finding
	for _, c := range d.Ctrls {
		out = append(out, c.Findings()...)
	}
	return out
}
