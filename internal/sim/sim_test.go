package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAfterOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if s.Now() != Time(30*time.Millisecond) {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	tm.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if !tm.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	fired := 0
	s.After(10*time.Millisecond, func() { fired++ })
	s.After(time.Second, func() { fired++ })
	s.RunUntil(Time(100 * time.Millisecond))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Now() != Time(100*time.Millisecond) {
		t.Fatalf("clock = %v, want 100ms", s.Now())
	}
	s.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(time.Second, tick)
		}
	}
	s.After(0, tick)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != Time(4*time.Second) {
		t.Fatalf("clock = %v, want 4s", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	for i := 0; i < 100; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 10 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10 (Stop should halt the run)", count)
	}
}

func TestRNGStreamsAreStable(t *testing.T) {
	a := New(42).RNG("net")
	b := New(42).RNG("net")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed+name must yield identical streams")
		}
	}
	c := New(42).RNG("workload")
	d := New(42).RNG("net")
	same := true
	for i := 0; i < 10; i++ {
		if c.Int63() != d.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("different stream names should diverge")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []Time {
		s := New(seed)
		var trace []Time
		rng := s.RNG("jitter")
		var step func()
		n := 0
		step = func() {
			trace = append(trace, s.Now())
			n++
			if n < 50 {
				s.After(time.Duration(rng.Intn(1000))*time.Millisecond, step)
			}
		}
		s.After(0, step)
		s.Run()
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	s := New(1)
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Run()
	if !fired || s.Now() != 0 {
		t.Fatalf("negative delay should fire immediately at t=0; fired=%v now=%v", fired, s.Now())
	}
}

// Property: for any batch of scheduled delays, events fire in nondecreasing
// time order and the clock ends at the maximum delay.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := New(3)
		var fireTimes []Time
		var max time.Duration
		for _, d := range delays {
			dur := time.Duration(d) * time.Microsecond
			if dur > max {
				max = dur
			}
			s.After(dur, func() { fireTimes = append(fireTimes, s.Now()) })
		}
		s.Run()
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return s.Now() == Time(max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
