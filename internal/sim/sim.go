// Package sim provides a deterministic discrete-event simulator.
//
// The simulator stands in for the ModelNet cluster used in the CrystalBall
// paper: instead of emulating packet delay, loss and bandwidth on a real
// cluster, all components of this repository schedule callbacks on a shared
// virtual clock. Two runs with the same seed execute exactly the same event
// sequence, which makes every experiment in EXPERIMENTS.md reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds since the start
// of the simulation.
type Time int64

// Duration aliases time.Duration for readability at call sites.
type Duration = time.Duration

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// Timer is a handle to a scheduled event. It may be cancelled before firing.
type Timer struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// At reports the virtual time at which the timer fires.
func (t *Timer) At() Time { return t.at }

// Cancel prevents the timer from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (t *Timer) Cancel() { t.cancelled = true }

// Cancelled reports whether Cancel was called.
func (t *Timer) Cancelled() bool { return t.cancelled }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Simulator is a deterministic discrete-event scheduler. It is not safe for
// concurrent use; the entire simulated deployment runs on one goroutine,
// which is what makes runs reproducible.
type Simulator struct {
	now     Time
	seq     uint64
	queue   eventHeap
	seed    int64
	streams map[string]*rand.Rand
	stopped bool
}

// New returns a simulator whose randomness derives from seed.
func New(seed int64) *Simulator {
	return &Simulator{seed: seed, streams: make(map[string]*rand.Rand)}
}

// Now reports the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Seed reports the root seed the simulator was created with.
func (s *Simulator) Seed() int64 { return s.seed }

// RNG returns a named random stream derived deterministically from the root
// seed. Components request their own streams (e.g. "simnet", "workload") so
// adding randomness to one component does not perturb another.
func (s *Simulator) RNG(name string) *rand.Rand {
	if r, ok := s.streams[name]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	r := rand.New(rand.NewSource(s.seed ^ int64(h.Sum64())))
	s.streams[name] = r
	return r
}

// After schedules fn to run d after the current time and returns a handle
// that can cancel it. A non-positive d schedules fn for the current instant,
// after all events already scheduled for that instant.
func (s *Simulator) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Simulator) At(t Time, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	s.seq++
	tm := &Timer{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.queue, tm)
	return tm
}

// Step executes the next pending event. It reports false when the queue is
// empty or the simulator has been stopped.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 && !s.stopped {
		tm := heap.Pop(&s.queue).(*Timer)
		if tm.cancelled {
			continue
		}
		s.now = tm.at
		tm.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled during execution are processed if they fall within the
// window.
func (s *Simulator) RunUntil(t Time) {
	for len(s.queue) > 0 && !s.stopped {
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > t {
			break
		}
		s.Step()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by d of virtual time.
func (s *Simulator) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Stop halts the simulation; Run and RunUntil return promptly.
func (s *Simulator) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Simulator) Stopped() bool { return s.stopped }

// Pending reports the number of scheduled (possibly cancelled) events.
func (s *Simulator) Pending() int { return len(s.queue) }

func (s *Simulator) peek() *Timer {
	for len(s.queue) > 0 {
		if s.queue[0].cancelled {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0]
	}
	return nil
}
