package props

import (
	"reflect"
	"testing"
)

func TestGlobalSetCheckAndMerge(t *testing.T) {
	pairDiffer := GlobalProperty{
		Name: "PairValsEqual",
		Check: func(v GlobalView) bool {
			a, b := v.Get(1), v.Get(2)
			if a == nil || b == nil {
				return true // partial view: no false positive
			}
			return a.Svc.(*fakeSvc).val == b.Svc.(*fakeSvc).val
		},
	}
	always := GlobalProperty{
		Name:  "Always",
		Check: func(GlobalView) bool { return true },
	}
	set := GlobalSet{always, pairDiffer}

	v := NewView()
	v.Add(1, &fakeSvc{self: 1, val: 3}, nil)
	g := Global(v)
	if got := set.Check(g); got != nil {
		t.Fatalf("partial view violated %v", got)
	}
	if !set.Holds(g) {
		t.Fatal("Holds should be true on a partial view")
	}

	v.Add(2, &fakeSvc{self: 2, val: 4}, nil)
	if got := set.Check(g); !reflect.DeepEqual(got, []string{"PairValsEqual"}) {
		t.Fatalf("Check = %v", got)
	}
	if set.Holds(g) {
		t.Fatal("Holds should be false")
	}

	// AppendViolated merges into an existing local-violation slice and
	// leaves dst untouched when everything holds.
	local := []string{"LocalProp"}
	got := set.AppendViolated(local, g)
	if !reflect.DeepEqual(got, []string{"LocalProp", "PairValsEqual"}) {
		t.Fatalf("AppendViolated = %v", got)
	}
	clean := GlobalSet{always}
	if out := clean.AppendViolated(local, g); len(out) != 1 || &out[0] != &local[0] {
		t.Fatalf("clean AppendViolated should return dst unchanged, got %v", out)
	}

	if names := set.Names(); !reflect.DeepEqual(names, []string{"Always", "PairValsEqual"}) {
		t.Fatalf("Names = %v", names)
	}
}
