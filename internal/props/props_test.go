package props

import (
	"reflect"
	"testing"

	"crystalball/internal/sm"
)

// fakeSvc is a minimal sm.Service for view tests.
type fakeSvc struct {
	self sm.NodeID
	val  int
}

func (f *fakeSvc) Init(sm.Context)                                 {}
func (f *fakeSvc) HandleMessage(sm.Context, sm.NodeID, sm.Message) {}
func (f *fakeSvc) HandleTimer(sm.Context, sm.TimerID)              {}
func (f *fakeSvc) HandleApp(sm.Context, sm.AppCall)                {}
func (f *fakeSvc) HandleTransportError(sm.Context, sm.NodeID)      {}
func (f *fakeSvc) Neighbors() []sm.NodeID                          { return nil }
func (f *fakeSvc) Clone() sm.Service                               { return &fakeSvc{self: f.self, val: f.val} }
func (f *fakeSvc) EncodeState(e *sm.Encoder)                       { e.NodeID(f.self); e.Int(f.val) }
func (f *fakeSvc) DecodeState(d *sm.Decoder) error {
	f.self = d.NodeID()
	f.val = d.Int()
	return d.Err()
}
func (f *fakeSvc) ServiceName() string { return "fake" }

func TestViewBasics(t *testing.T) {
	v := NewView()
	if v.Has(1) {
		t.Fatal("empty view has node")
	}
	v.Add(2, &fakeSvc{self: 2}, map[sm.TimerID]bool{"t": true})
	v.Add(1, &fakeSvc{self: 1}, nil)
	if !v.Has(1) || !v.Has(2) {
		t.Fatal("nodes missing")
	}
	if got := v.IDs(); !reflect.DeepEqual(got, []sm.NodeID{1, 2}) {
		t.Fatalf("IDs = %v, want sorted [1 2]", got)
	}
	if !v.Get(2).TimerPending("t") {
		t.Fatal("timer lost")
	}
	if v.Get(1).TimerPending("t") {
		t.Fatal("nil timer map should report no pending timers")
	}
	if v.Get(9) != nil {
		t.Fatal("missing node should be nil")
	}
}

func TestSetCheckAndHolds(t *testing.T) {
	sum := func(v *View) int {
		total := 0
		for _, id := range v.IDs() {
			total += v.Get(id).Svc.(*fakeSvc).val
		}
		return total
	}
	set := Set{
		{Name: "SumBelow10", Check: func(v *View) bool { return sum(v) < 10 }},
		{Name: "SumBelow5", Check: func(v *View) bool { return sum(v) < 5 }},
	}
	v := NewView()
	v.Add(1, &fakeSvc{self: 1, val: 3}, nil)
	v.Add(2, &fakeSvc{self: 2, val: 4}, nil)
	violated := set.Check(v)
	if !reflect.DeepEqual(violated, []string{"SumBelow5"}) {
		t.Fatalf("violated = %v", violated)
	}
	if set.Holds(v) {
		t.Fatal("Holds should be false")
	}
	v2 := NewView()
	v2.Add(1, &fakeSvc{self: 1, val: 1}, nil)
	if got := set.Check(v2); got != nil {
		t.Fatalf("violated = %v, want none", got)
	}
	if !set.Holds(v2) {
		t.Fatal("Holds should be true")
	}
	if got := set.Names(); !reflect.DeepEqual(got, []string{"SumBelow10", "SumBelow5"}) {
		t.Fatalf("Names = %v", got)
	}
}

func TestPartialViewConvention(t *testing.T) {
	// Properties must treat missing nodes as "cannot evaluate" and
	// return true; verify the convention works end to end with a
	// property written that way.
	p := Property{
		Name: "PairAgree",
		Check: func(v *View) bool {
			a, b := v.Get(1), v.Get(2)
			if a == nil || b == nil {
				return true // partial information: no false positive
			}
			return a.Svc.(*fakeSvc).val == b.Svc.(*fakeSvc).val
		},
	}
	v := NewView()
	v.Add(1, &fakeSvc{self: 1, val: 7}, nil)
	if !p.Check(v) {
		t.Fatal("partial view should not violate")
	}
	v.Add(2, &fakeSvc{self: 2, val: 8}, nil)
	if p.Check(v) {
		t.Fatal("full view should violate")
	}
}
