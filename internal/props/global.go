package props

// Global (cross-node) properties.
//
// A Property is written defensively: the view it receives may cover only a
// neighborhood snapshot, so it must return true whenever a node it needs is
// absent. That contract makes a whole class of distributed bugs — replicas
// that silently diverge — unstatable, because divergence is only meaningful
// when two nodes can be compared side by side.
//
// A GlobalProperty closes that gap. The checker evaluates it over a
// GlobalView assembled from GState.FillView, which spans every node of the
// state being expanded, so the property may compare nodes against each
// other (replica convergence, agreement, ring consistency). The defensive
// half of the contract still stands: when a comparison needs a node the
// view does not hold — live neighborhood snapshots can be partial — the
// property must return true rather than guess. Evaluation is a pure
// function of the view: no clocks, no randomness, no retained state. That
// purity is what lets the sharded search (internal/dist) evaluate global
// properties independently per shard and still report the exact violation
// set of the serial engine.

// GlobalView is the multi-node view a GlobalProperty is checked against.
// It wraps the engine's pooled *View (no copy, no allocation): the
// embedded methods — IDs, Get, Has — read the same filled NodeViews the
// local property set just checked.
type GlobalView struct {
	*View
}

// Global wraps a filled view for global-property evaluation.
func Global(v *View) GlobalView { return GlobalView{View: v} }

// GlobalProperty is a safety property over a multi-node view. Check
// returns false when the property is violated. It must be deterministic,
// must not mutate the view, and must return true when the view lacks the
// nodes the comparison needs.
type GlobalProperty struct {
	Name  string
	Check func(v GlobalView) bool
}

// GlobalSet is an ordered collection of global properties.
type GlobalSet []GlobalProperty

// Check evaluates every property and returns the names of the violated
// ones, in declaration order. It returns nil when all hold.
func (s GlobalSet) Check(v GlobalView) []string {
	return s.AppendViolated(nil, v)
}

// AppendViolated appends the names of the violated properties to dst and
// returns it. The checker's hot path uses this to merge global violations
// into the local set's result without an extra allocation when everything
// holds.
func (s GlobalSet) AppendViolated(dst []string, v GlobalView) []string {
	for _, p := range s {
		if !p.Check(v) {
			dst = append(dst, p.Name)
		}
	}
	return dst
}

// Holds reports whether every property holds on v.
func (s GlobalSet) Holds(v GlobalView) bool {
	for _, p := range s {
		if !p.Check(v) {
			return false
		}
	}
	return true
}

// Names returns the property names in declaration order.
func (s GlobalSet) Names() []string {
	names := make([]string, len(s))
	for i, p := range s {
		names[i] = p.Name
	}
	return names
}
