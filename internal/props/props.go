// Package props defines safety properties checked over a (partial) global
// view of a distributed system.
//
// Properties play three roles in CrystalBall, mirroring the paper: the model
// checker evaluates them on every explored state (consequence prediction),
// the immediate safety check evaluates them on the speculative post-handler
// state, and experiment harnesses evaluate them on the live global state to
// count "ground truth" inconsistencies.
package props

import (
	"sort"

	"crystalball/internal/sm"
)

// NodeView is one node's state as visible to a property: the service state
// machine plus the runtime-owned pending-timer set (the paper's local state
// includes "the status of timers").
type NodeView struct {
	Svc    sm.Service
	Timers map[sm.TimerID]bool
}

// TimerPending reports whether the named timer is scheduled.
func (v NodeView) TimerPending(t sm.TimerID) bool { return v.Timers[t] }

// View is a consistent (possibly partial) snapshot of the system: the
// neighborhood snapshot fed to the model checker, or the full system in
// experiment harnesses.
type View struct {
	Nodes map[sm.NodeID]*NodeView
}

// NewView returns an empty view.
func NewView() *View { return &View{Nodes: make(map[sm.NodeID]*NodeView)} }

// Add inserts a node's view.
func (v *View) Add(id sm.NodeID, svc sm.Service, timers map[sm.TimerID]bool) {
	if timers == nil {
		timers = map[sm.TimerID]bool{}
	}
	v.Nodes[id] = &NodeView{Svc: svc, Timers: timers}
}

// Has reports whether the view contains node id.
func (v *View) Has(id sm.NodeID) bool { _, ok := v.Nodes[id]; return ok }

// Get returns the node view or nil.
func (v *View) Get(id sm.NodeID) *NodeView { return v.Nodes[id] }

// IDs returns the node ids in the view in ascending order, for
// deterministic property evaluation and reporting.
func (v *View) IDs() []sm.NodeID {
	ids := make([]sm.NodeID, 0, len(v.Nodes))
	for id := range v.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Property is a user- or developer-specified safety property (paper Figure
// 7: "Safety Properties" feed the consequence-prediction checker).
type Property struct {
	// Name identifies the property in reports ("ChildrenSiblingsDisjoint").
	Name string
	// Check returns true when the view satisfies the property. A view
	// that lacks the nodes needed to evaluate the property must return
	// true (no false positives from partial information).
	Check func(v *View) bool
}

// Set is an ordered collection of properties.
type Set []Property

// Check evaluates all properties and returns the names of those violated.
func (s Set) Check(v *View) []string {
	var violated []string
	for _, p := range s {
		if !p.Check(v) {
			violated = append(violated, p.Name)
		}
	}
	return violated
}

// Holds reports whether every property holds on the view.
func (s Set) Holds(v *View) bool {
	for _, p := range s {
		if !p.Check(v) {
			return false
		}
	}
	return true
}

// Names lists the property names.
func (s Set) Names() []string {
	names := make([]string, len(s))
	for i, p := range s {
		names[i] = p.Name
	}
	return names
}
