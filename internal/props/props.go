// Package props defines safety properties checked over a (partial) global
// view of a distributed system.
//
// Properties play three roles in CrystalBall, mirroring the paper: the model
// checker evaluates them on every explored state (consequence prediction),
// the immediate safety check evaluates them on the speculative post-handler
// state, and experiment harnesses evaluate them on the live global state to
// count "ground truth" inconsistencies.
package props

import (
	"slices"

	"crystalball/internal/sm"
)

// NodeView is one node's state as visible to a property: the service state
// machine plus the runtime-owned pending-timer set (the paper's local state
// includes "the status of timers").
type NodeView struct {
	Svc    sm.Service
	Timers map[sm.TimerID]bool
}

// TimerPending reports whether the named timer is scheduled.
func (v NodeView) TimerPending(t sm.TimerID) bool { return v.Timers[t] }

// View is a consistent (possibly partial) snapshot of the system: the
// neighborhood snapshot fed to the model checker, or the full system in
// experiment harnesses.
//
// Views are reusable: Reset empties a view while keeping its storage (the
// node map, the id list, and the NodeView structs, which are recycled
// through an internal free list), so a hot loop — the checker evaluating
// properties on every explored state, the runtime's immediate safety check
// — can refill one view per worker instead of allocating per state.
//
// Ownership rules: the NodeView structs belong to the view — insert nodes
// with Add (never by writing the Nodes map directly), and do not retain a
// *NodeView or the IDs slice across a Reset. A view may be refilled and
// read by one goroutine at a time; concurrent workers each use their own.
type View struct {
	Nodes map[sm.NodeID]*NodeView

	ids    []sm.NodeID // cached id list; sorted when sorted is true
	sorted bool
	free   []*NodeView // recycled NodeViews, owned by this view
}

// NewView returns an empty view.
func NewView() *View { return &View{Nodes: make(map[sm.NodeID]*NodeView), sorted: true} }

// Reset empties the view, retaining its storage for reuse.
func (v *View) Reset() {
	//crystal:allow(maporder) recycle order only decides which pooled NodeView a later Add hands out; the views are interchangeable empty containers, so no observable state depends on it
	for id, nv := range v.Nodes {
		nv.Svc, nv.Timers = nil, nil
		v.free = append(v.free, nv)
		delete(v.Nodes, id)
	}
	v.ids = v.ids[:0]
	v.sorted = true
}

// Add inserts a node's view, replacing any existing entry for id.
func (v *View) Add(id sm.NodeID, svc sm.Service, timers map[sm.TimerID]bool) {
	if timers == nil {
		timers = map[sm.TimerID]bool{}
	}
	if nv, ok := v.Nodes[id]; ok {
		nv.Svc, nv.Timers = svc, timers
		return
	}
	var nv *NodeView
	if n := len(v.free); n > 0 {
		nv = v.free[n-1]
		v.free = v.free[:n-1]
	} else {
		nv = &NodeView{}
	}
	nv.Svc, nv.Timers = svc, timers
	v.Nodes[id] = nv
	if v.sorted && len(v.ids) > 0 && id < v.ids[len(v.ids)-1] {
		v.sorted = false
	}
	v.ids = append(v.ids, id)
}

// Has reports whether the view contains node id.
func (v *View) Has(id sm.NodeID) bool { _, ok := v.Nodes[id]; return ok }

// Get returns the node view or nil.
func (v *View) Get(id sm.NodeID) *NodeView { return v.Nodes[id] }

// IDs returns the node ids in the view in ascending order, for
// deterministic property evaluation and reporting. The list is cached —
// sorted at most once between mutations, and already in order when the
// view was filled ascending (GState.FillView) — and shared with the view:
// callers must treat it as read-only and not retain it across Reset.
func (v *View) IDs() []sm.NodeID {
	if !v.sorted {
		slices.Sort(v.ids)
		v.sorted = true
	}
	return v.ids
}

// Property is a user- or developer-specified safety property (paper Figure
// 7: "Safety Properties" feed the consequence-prediction checker).
type Property struct {
	// Name identifies the property in reports ("ChildrenSiblingsDisjoint").
	Name string
	// Check returns true when the view satisfies the property. A view
	// that lacks the nodes needed to evaluate the property must return
	// true (no false positives from partial information).
	Check func(v *View) bool
}

// Set is an ordered collection of properties.
type Set []Property

// Check evaluates all properties and returns the names of those violated.
func (s Set) Check(v *View) []string {
	var violated []string
	for _, p := range s {
		if !p.Check(v) {
			violated = append(violated, p.Name)
		}
	}
	return violated
}

// Holds reports whether every property holds on the view.
func (s Set) Holds(v *View) bool {
	for _, p := range s {
		if !p.Check(v) {
			return false
		}
	}
	return true
}

// Names lists the property names.
func (s Set) Names() []string {
	names := make([]string, len(s))
	for i, p := range s {
		names[i] = p.Name
	}
	return names
}
