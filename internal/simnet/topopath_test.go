package simnet

import (
	"testing"
	"time"

	"crystalball/internal/sim"
	"crystalball/internal/sm"
	"crystalball/internal/topology"
)

func newTopoPath(t *testing.T, nodes int) (*TopoPath, []sm.NodeID) {
	t.Helper()
	s := sim.New(5)
	ids := make([]sm.NodeID, nodes)
	for i := range ids {
		ids[i] = sm.NodeID(i + 1)
	}
	tp := NewTopoPath(topology.DefaultConfig(200), ids, s.RNG("topo"))
	return tp, ids
}

func TestTopoPathCharacteristics(t *testing.T) {
	tp, ids := newTopoPath(t, 10)
	for _, a := range ids {
		for _, b := range ids {
			lat, loss, bw := tp.Path(a, b)
			if lat <= 0 {
				t.Fatalf("latency %v for %v->%v", lat, a, b)
			}
			if loss < 0 || loss >= 1 {
				t.Fatalf("loss %v out of range", loss)
			}
			if bw <= 0 {
				t.Fatalf("bandwidth %v", bw)
			}
		}
	}
}

func TestTopoPathSymmetricAndCached(t *testing.T) {
	tp, _ := newTopoPath(t, 8)
	l1, _, _ := tp.Path(2, 7)
	l2, _, _ := tp.Path(7, 2)
	if l1 != l2 {
		t.Fatalf("asymmetric path: %v vs %v", l1, l2)
	}
	// Second lookup must hit the cache and return identical values.
	l3, _, _ := tp.Path(2, 7)
	if l3 != l1 {
		t.Fatal("cache returned different value")
	}
}

func TestTopoPathUnknownNodeFallback(t *testing.T) {
	tp, _ := newTopoPath(t, 4)
	lat, loss, bw := tp.Path(99, 1)
	if lat <= 0 || bw <= 0 || loss < 0 {
		t.Fatal("fallback path invalid")
	}
}

func TestTopoPathDrivesNetwork(t *testing.T) {
	// End-to-end: messages over a topology-backed network arrive with
	// plausible wide-area latency.
	s := sim.New(9)
	ids := []sm.NodeID{1, 2, 3}
	tp := NewTopoPath(topology.DefaultConfig(100), ids, s.RNG("topo"))
	net := New(s, tp)
	r := &recorder{}
	net.Register(1, &recorder{})
	net.Register(2, r)
	net.Register(3, &recorder{})
	start := s.Now()
	net.Send(1, 2, "hello", 100, KindService)
	s.Run()
	if len(r.delivered) != 1 {
		t.Fatalf("deliveries = %d", len(r.delivered))
	}
	elapsed := s.Now().Sub(start)
	if elapsed < time.Millisecond || elapsed > time.Second {
		t.Fatalf("implausible delivery latency %v", elapsed)
	}
}
