package simnet

import (
	"math/rand"
	"time"

	"crystalball/internal/sm"
	"crystalball/internal/topology"
)

// TopoPath adapts a generated Internet-like topology to simnet's PathModel:
// node IDs map to attached participants, and path characteristics come from
// the latency-shortest router path, exactly as ModelNet derived them from
// the INET topology in the paper's evaluation.
type TopoPath struct {
	topo  *topology.Topology
	index map[sm.NodeID]int
	cache map[[2]sm.NodeID]topology.Path
}

// NewTopoPath generates a topology with cfg, attaches one participant per
// node id, and returns the adapter.
func NewTopoPath(cfg topology.Config, nodes []sm.NodeID, rng *rand.Rand) *TopoPath {
	topo := topology.Generate(cfg, rng)
	topo.AttachClients(len(nodes), rng)
	index := make(map[sm.NodeID]int, len(nodes))
	for i, id := range nodes {
		index[id] = i
	}
	return &TopoPath{
		topo:  topo,
		index: index,
		cache: make(map[[2]sm.NodeID]topology.Path),
	}
}

// Topology exposes the underlying router graph (for reporting mean RTT
// etc.).
func (t *TopoPath) Topology() *topology.Topology { return t.topo }

// Path implements PathModel. Unknown node ids fall back to a conservative
// wide-area default.
func (t *TopoPath) Path(a, b sm.NodeID) (time.Duration, float64, float64) {
	key := [2]sm.NodeID{a, b}
	if a > b {
		key = [2]sm.NodeID{b, a}
	}
	if p, ok := t.cache[key]; ok {
		return p.Latency, p.Loss, p.BandwidthBps
	}
	ia, okA := t.index[a]
	ib, okB := t.index[b]
	if !okA || !okB {
		return 80 * time.Millisecond, 0.005, 1e6
	}
	p, err := t.topo.PathBetween(ia, ib)
	if err != nil {
		return 80 * time.Millisecond, 0.005, 1e6
	}
	t.cache[key] = p
	return p.Latency, p.Loss, p.BandwidthBps
}
