package simnet

import (
	"testing"
	"time"

	"crystalball/internal/sim"
	"crystalball/internal/sm"
)

// recorder implements Handler, recording deliveries and errors.
type recorder struct {
	delivered []delivery
	errors    []sm.NodeID
}

type delivery struct {
	from    sm.NodeID
	payload any
}

func (r *recorder) HandleDeliver(from sm.NodeID, payload any) {
	r.delivered = append(r.delivered, delivery{from, payload})
}
func (r *recorder) HandleConnError(peer sm.NodeID) { r.errors = append(r.errors, peer) }

func newNet(t *testing.T) (*sim.Simulator, *Network, map[sm.NodeID]*recorder) {
	t.Helper()
	s := sim.New(1)
	n := New(s, UniformPath{Latency: 10 * time.Millisecond, BwBps: 1e9})
	recs := make(map[sm.NodeID]*recorder)
	for id := sm.NodeID(1); id <= 4; id++ {
		r := &recorder{}
		recs[id] = r
		n.Register(id, r)
	}
	return s, n, recs
}

func TestBasicDelivery(t *testing.T) {
	s, n, recs := newNet(t)
	n.Send(1, 2, "hello", 100, KindService)
	s.Run()
	if len(recs[2].delivered) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(recs[2].delivered))
	}
	d := recs[2].delivered[0]
	if d.from != 1 || d.payload != "hello" {
		t.Fatalf("bad delivery: %+v", d)
	}
	if got := n.BytesOut(1, KindService); got != 100 {
		t.Fatalf("BytesOut = %d", got)
	}
	if got := n.BytesIn(2, KindService); got != 100 {
		t.Fatalf("BytesIn = %d", got)
	}
}

func TestFIFOPerConnection(t *testing.T) {
	s, n, recs := newNet(t)
	for i := 0; i < 50; i++ {
		n.Send(1, 2, i, 10, KindService)
	}
	s.Run()
	if len(recs[2].delivered) != 50 {
		t.Fatalf("deliveries = %d, want 50", len(recs[2].delivered))
	}
	for i, d := range recs[2].delivered {
		if d.payload != i {
			t.Fatalf("out of order at %d: got %v", i, d.payload)
		}
	}
}

func TestFIFOUnderLoss(t *testing.T) {
	// Even with heavy loss-induced retransmission delays, TCP-like
	// delivery stays FIFO and loses nothing.
	s := sim.New(7)
	n := New(s, UniformPath{Latency: 5 * time.Millisecond, Loss: 0.3, BwBps: 1e9})
	r := &recorder{}
	n.Register(1, &recorder{})
	n.Register(2, r)
	for i := 0; i < 100; i++ {
		n.Send(1, 2, i, 10, KindService)
	}
	s.Run()
	if len(r.delivered) != 100 {
		t.Fatalf("deliveries = %d, want 100 (TCP must not drop)", len(r.delivered))
	}
	for i, d := range r.delivered {
		if d.payload != i {
			t.Fatalf("out of order at %d: got %v", i, d.payload)
		}
	}
}

func TestSendToDeadNodeErrors(t *testing.T) {
	s, n, recs := newNet(t)
	n.Kill(2)
	n.Send(1, 2, "x", 10, KindService)
	s.Run()
	if len(recs[2].delivered) != 0 {
		t.Fatal("dead node received a message")
	}
	if len(recs[1].errors) != 1 || recs[1].errors[0] != 2 {
		t.Fatalf("sender errors = %v, want [2]", recs[1].errors)
	}
}

func TestSilentResetDiscoveredOnNextSend(t *testing.T) {
	// Paper Figures 2/3: after a silent reset of n13, n9 only discovers
	// the broken channel when it next attempts to communicate.
	s, n, recs := newNet(t)
	n.Send(1, 2, "pre", 10, KindService)
	s.Run()
	if !n.Connected(1, 2) {
		t.Fatal("connection should exist")
	}
	n.Reset(2, true) // silent: no RST
	s.Run()
	if len(recs[1].errors) != 0 {
		t.Fatal("silent reset must not notify the peer")
	}
	// Next send discovers the stale connection: error, no delivery.
	n.Send(1, 2, "post", 10, KindService)
	s.Run()
	if len(recs[1].errors) != 1 || recs[1].errors[0] != 2 {
		t.Fatalf("errors = %v, want [2]", recs[1].errors)
	}
	if len(recs[2].delivered) != 1 { // only "pre"
		t.Fatalf("deliveries = %d, want 1", len(recs[2].delivered))
	}
	// A further send reconnects and succeeds.
	n.Send(1, 2, "again", 10, KindService)
	s.Run()
	if len(recs[2].delivered) != 2 {
		t.Fatalf("reconnect failed: deliveries = %d, want 2", len(recs[2].delivered))
	}
}

func TestNoisyResetSendsRST(t *testing.T) {
	s, n, recs := newNet(t)
	n.Send(1, 2, "pre", 10, KindService)
	s.Run()
	n.Reset(2, false) // RST toward node 1 (loss=0 in this model)
	s.Run()
	if len(recs[1].errors) != 1 || recs[1].errors[0] != 2 {
		t.Fatalf("errors = %v, want RST from 2", recs[1].errors)
	}
}

func TestResetDropsInFlight(t *testing.T) {
	s, n, recs := newNet(t)
	n.Send(1, 2, "inflight", 10, KindService)
	// Reset node 2 before the 10 ms delivery occurs: buffered TCP data
	// must be lost.
	s.RunFor(time.Millisecond)
	n.Reset(2, true)
	s.Run()
	if len(recs[2].delivered) != 0 {
		t.Fatal("message survived a connection-destroying reset")
	}
}

func TestPartition(t *testing.T) {
	s, n, recs := newNet(t)
	n.Partition(1, 2, true)
	n.Send(1, 2, "x", 10, KindService)
	s.Run()
	if len(recs[2].delivered) != 0 {
		t.Fatal("partitioned pair delivered")
	}
	if len(recs[1].errors) != 1 {
		t.Fatalf("sender should see ConnError, got %v", recs[1].errors)
	}
	n.Partition(1, 2, false)
	n.Send(1, 2, "y", 10, KindService)
	s.Run()
	if len(recs[2].delivered) != 1 {
		t.Fatal("healed partition did not deliver")
	}
}

func TestPartitionNode(t *testing.T) {
	s, n, recs := newNet(t)
	n.PartitionNode(3, true)
	n.Send(1, 3, "x", 10, KindService)
	n.Send(2, 3, "y", 10, KindService)
	n.Send(1, 2, "z", 10, KindService)
	s.Run()
	if len(recs[3].delivered) != 0 {
		t.Fatal("partitioned node received")
	}
	if len(recs[2].delivered) != 1 {
		t.Fatal("unrelated pair affected by PartitionNode")
	}
	n.PartitionNode(3, false)
	n.Send(1, 3, "again", 10, KindService)
	s.Run()
	if len(recs[3].delivered) != 1 {
		t.Fatal("healed node did not receive")
	}
}

func TestUDPLoss(t *testing.T) {
	s := sim.New(3)
	n := New(s, UniformPath{Latency: time.Millisecond, Loss: 0.5, BwBps: 1e9})
	r := &recorder{}
	n.Register(1, &recorder{})
	n.Register(2, r)
	const total = 1000
	for i := 0; i < total; i++ {
		n.SendUDP(1, 2, i, 10, KindService)
	}
	s.Run()
	got := len(r.delivered)
	if got < total/3 || got > total*2/3 {
		t.Fatalf("UDP deliveries = %d of %d, want roughly half", got, total)
	}
}

func TestBandwidthPacing(t *testing.T) {
	// 1 Mbps bottleneck: 10 messages of 12,500 bytes = 100,000 bits each
	// serialize to 0.1 s apiece, so the last arrives no earlier than ~1 s.
	s := sim.New(1)
	n := New(s, UniformPath{Latency: time.Millisecond, BwBps: 1e6})
	r := &recorder{}
	n.Register(1, &recorder{})
	n.Register(2, r)
	for i := 0; i < 10; i++ {
		n.Send(1, 2, i, 12500, KindService)
	}
	s.Run()
	if len(r.delivered) != 10 {
		t.Fatalf("deliveries = %d", len(r.delivered))
	}
	if s.Now() < sim.Time(time.Second) {
		t.Fatalf("10 x 0.1s transmissions finished too fast: %v", s.Now())
	}
}

func TestBreakConnNotify(t *testing.T) {
	s, n, recs := newNet(t)
	n.Send(1, 2, "pre", 10, KindService)
	s.Run()
	n.BreakConn(1, 2, true) // steering-style RST: node 2 learns
	s.Run()
	if len(recs[2].errors) != 1 || recs[2].errors[0] != 1 {
		t.Fatalf("peer errors = %v, want [1]", recs[2].errors)
	}
	if n.Connected(1, 2) {
		t.Fatal("connection should be gone")
	}
}

func TestIncarnationBumpsOnReset(t *testing.T) {
	_, n, _ := newNet(t)
	before := n.Incarnation(2)
	n.Reset(2, true)
	if n.Incarnation(2) != before+1 {
		t.Fatal("incarnation did not bump")
	}
}

func TestDeadNodeDoesNotSend(t *testing.T) {
	s, n, recs := newNet(t)
	n.Kill(1)
	n.Send(1, 2, "x", 10, KindService)
	s.Run()
	if len(recs[2].delivered) != 0 {
		t.Fatal("dead node sent a message")
	}
}

func TestRestartAfterKill(t *testing.T) {
	s, n, recs := newNet(t)
	n.Kill(2)
	n.Restart(2)
	n.Send(1, 2, "x", 10, KindService)
	s.Run()
	if len(recs[2].delivered) != 1 {
		t.Fatal("restarted node did not receive")
	}
}

func TestTotalBytesAccounting(t *testing.T) {
	s, n, _ := newNet(t)
	n.Send(1, 2, "a", 100, KindService)
	n.Send(1, 3, "b", 50, KindCheckpoint)
	n.Send(2, 3, "c", 25, KindCheckpoint)
	s.Run()
	if got := n.TotalBytesOut(KindCheckpoint); got != 75 {
		t.Fatalf("checkpoint bytes = %d, want 75", got)
	}
	if got := n.TotalBytesOut(KindService); got != 100 {
		t.Fatalf("service bytes = %d, want 100", got)
	}
	if got := n.MessagesOut(1); got != 2 {
		t.Fatalf("messages out = %d, want 2", got)
	}
}
