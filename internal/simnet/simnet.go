// Package simnet is an in-memory network substrate with TCP-like and
// UDP-like semantics, driven by the discrete-event simulator.
//
// It reproduces the transport behaviours the CrystalBall paper's bug
// scenarios depend on:
//
//   - reliable FIFO delivery per connection (TCP-like), with transmission
//     delay from path latency, bottleneck bandwidth and loss-induced
//     retransmissions;
//   - node resets that break connections, where the RST notification to each
//     peer can itself be lost (Figure 9: "its TCP RST packet to its parent
//     (69) is lost") or suppressed entirely (a silent reset, Figure 2);
//   - stale-connection discovery on the next send attempt (Figure 3: "the
//     stale information about n13 in n9 is removed once n9 ... attempts to
//     communicate with n13");
//   - partitions that sever pairs of nodes (the Paxos scenario, Figure 13);
//   - per-kind bandwidth accounting so checkpoint traffic can be reported
//     separately from service traffic (paper section 5.5).
package simnet

import (
	"cmp"
	"slices"
	"time"

	"crystalball/internal/sim"
	"crystalball/internal/sm"
)

// Handler receives network events for one node. The runtime implements it.
type Handler interface {
	// HandleDeliver is invoked when a message arrives.
	HandleDeliver(from sm.NodeID, payload any)
	// HandleConnError is invoked when the TCP-like connection to peer is
	// discovered broken (RST received, peer dead, or stale on send).
	HandleConnError(peer sm.NodeID)
}

// PathModel supplies end-to-end path characteristics between two nodes.
type PathModel interface {
	// Path returns one-way latency, loss probability and bottleneck
	// bandwidth in bits/s between a and b.
	Path(a, b sm.NodeID) (latency time.Duration, loss float64, bwBps float64)
}

// UniformPath is a PathModel with identical characteristics for all pairs.
type UniformPath struct {
	Latency time.Duration
	Jitter  time.Duration // uniform extra delay in [0, Jitter)
	Loss    float64
	BwBps   float64
}

// Path implements PathModel.
func (u UniformPath) Path(a, b sm.NodeID) (time.Duration, float64, float64) {
	bw := u.BwBps
	if bw <= 0 {
		bw = 1e9
	}
	return u.Latency, u.Loss, bw
}

// Kind labels traffic classes for bandwidth accounting.
type Kind string

// Traffic classes used across the repository.
const (
	KindService    Kind = "service"    // service protocol messages
	KindCheckpoint Kind = "checkpoint" // snapshot/checkpoint traffic
	KindControl    Kind = "control"    // misc control traffic
)

// connKey orders the pair so both directions share one connection object.
type connKey struct{ a, b sm.NodeID }

func keyFor(x, y sm.NodeID) connKey {
	if x < y {
		return connKey{x, y}
	}
	return connKey{y, x}
}

// other returns the endpoint of the pair that is not id.
func (k connKey) other(id sm.NodeID) sm.NodeID {
	if k.a == id {
		return k.b
	}
	return k.a
}

// conn is a TCP-like bidirectional connection. Each endpoint records the
// incarnation of each endpoint at establishment; a mismatch at send or
// delivery time means an endpoint has reset and the connection is stale.
// When a connection dies, each endpoint may or may not be aware of it: an
// unaware endpoint holds a stale socket and discovers the break (with a
// ConnError) on its next send, which is the behaviour the paper's Figure 3
// steering scenario relies on.
type conn struct {
	key         connKey
	incarnation map[sm.NodeID]uint64 // incarnation of each endpoint when established
	lastArrival map[sm.NodeID]sim.Time
	closed      bool
	aware       map[sm.NodeID]bool // endpoint knows the conn is dead
}

func (c *conn) close(awareOf ...sm.NodeID) {
	c.closed = true
	if c.aware == nil {
		c.aware = make(map[sm.NodeID]bool, 2)
	}
	for _, id := range awareOf {
		c.aware[id] = true
	}
}

// nodeState is simnet's per-node bookkeeping.
type nodeState struct {
	handler     Handler
	alive       bool
	incarnation uint64
	lastTxEnd   sim.Time
	bytesOut    map[Kind]int64
	bytesIn     map[Kind]int64
	msgsOut     int64
}

// Network simulates the transport layer among a set of nodes.
type Network struct {
	sim      *sim.Simulator
	paths    PathModel
	nodes    map[sm.NodeID]*nodeState
	conns    map[connKey]*conn
	parts    map[connKey]bool // severed pairs
	rng      rngSource
	ErrDelay time.Duration // delay before a ConnError reaches the caller
	// RTO is the extra delay charged when a TCP segment is "lost" and
	// retransmitted (loss never drops TCP payloads, it delays them).
	RTO time.Duration
}

type rngSource interface {
	Float64() float64
	Int63n(int64) int64
}

// New creates a network on the simulator with the given path model.
func New(s *sim.Simulator, paths PathModel) *Network {
	return &Network{
		sim:      s,
		paths:    paths,
		nodes:    make(map[sm.NodeID]*nodeState),
		conns:    make(map[connKey]*conn),
		parts:    make(map[connKey]bool),
		rng:      s.RNG("simnet"),
		ErrDelay: 2 * time.Millisecond,
		RTO:      200 * time.Millisecond,
	}
}

// Register attaches a handler for node id and marks it alive.
func (n *Network) Register(id sm.NodeID, h Handler) {
	st := n.state(id)
	st.handler = h
	st.alive = true
}

func (n *Network) state(id sm.NodeID) *nodeState {
	st, ok := n.nodes[id]
	if !ok {
		st = &nodeState{
			alive:    false,
			bytesOut: make(map[Kind]int64),
			bytesIn:  make(map[Kind]int64),
		}
		n.nodes[id] = st
	}
	return st
}

// Alive reports whether the node is up.
func (n *Network) Alive(id sm.NodeID) bool {
	st, ok := n.nodes[id]
	return ok && st.alive
}

// Incarnation reports the node's current incarnation number (bumped on
// every reset/restart); exported for tests.
func (n *Network) Incarnation(id sm.NodeID) uint64 { return n.state(id).incarnation }

// Partition severs (broken=true) or heals (broken=false) the pair a,b.
// While severed, sends in either direction behave like a broken connection:
// the sender gets a ConnError and the message is dropped.
func (n *Network) Partition(a, b sm.NodeID, broken bool) {
	k := keyFor(a, b)
	if broken {
		n.parts[k] = true
		if c, ok := n.conns[k]; ok {
			// Neither side is told; each discovers on next send
			// (the partition check errors every send anyway).
			c.close()
			delete(n.conns, k)
		}
	} else {
		delete(n.parts, k)
	}
}

// PartitionNode severs (or heals) node id from every other registered node.
func (n *Network) PartitionNode(id sm.NodeID, broken bool) {
	for _, other := range n.nodeIDs() {
		if other != id {
			n.Partition(id, other, broken)
		}
	}
}

// nodeIDs returns the registered node IDs in sorted order, so that fan-out
// operations never depend on map iteration order.
func (n *Network) nodeIDs() []sm.NodeID {
	ids := make([]sm.NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// Partitioned reports whether the pair is currently severed.
func (n *Network) Partitioned(a, b sm.NodeID) bool { return n.parts[keyFor(a, b)] }

// Reset simulates a node crash+restart: its incarnation bumps (so all of its
// connections become stale) and, unless silent, an RST notification is sent
// toward each connected peer, each independently subject to loss. The caller
// is responsible for reinitialising the node's service state.
func (n *Network) Reset(id sm.NodeID, silent bool) {
	st := n.state(id)
	st.incarnation++
	st.alive = true
	type broken struct {
		peer sm.NodeID
		c    *conn
	}
	var peers []broken
	for k, c := range n.conns {
		if k.a == id || k.b == id {
			peers = append(peers, broken{k.other(id), c})
		}
	}
	// The RST fan-out below draws from the seeded rng once per peer, so the
	// peer order must not depend on map iteration order or same-seed runs
	// would diverge.
	slices.SortFunc(peers, func(x, y broken) int { return cmp.Compare(x.peer, y.peer) })
	for _, b := range peers {
		// The resetting node is trivially "aware": its fresh
		// incarnation knows nothing of the old socket and will
		// reconnect cleanly. The peer holds a stale socket until it
		// receives the RST or tries to send.
		b.c.close(id)
	}
	if silent {
		return
	}
	for _, b := range peers {
		b := b
		lat, loss, _ := n.paths.Path(id, b.peer)
		// The RST is a raw segment: it can be lost outright (paper
		// Figure 9), in which case the peer only discovers the break
		// on its next send attempt.
		if n.rng.Float64() < loss {
			continue
		}
		n.sim.After(lat, func() {
			b.c.aware[b.peer] = true
			ps := n.state(b.peer)
			if ps.alive && ps.handler != nil {
				ps.handler.HandleConnError(id)
			}
		})
	}
}

// Kill marks a node dead: connections break silently and subsequent sends to
// it fail with ConnError at the sender.
func (n *Network) Kill(id sm.NodeID) {
	st := n.state(id)
	st.alive = false
	for k, c := range n.conns {
		if k.a == id || k.b == id {
			c.close(id)
		}
	}
}

// Restart brings a killed node back with a fresh incarnation.
func (n *Network) Restart(id sm.NodeID) {
	st := n.state(id)
	st.incarnation++
	st.alive = true
}

// LoopbackLatency is the delivery delay for a node's messages to itself:
// loopback traffic never touches the network stack's wire path.
const LoopbackLatency = 50 * time.Microsecond

// Send transmits payload of the given size from -> to over the TCP-like
// transport with traffic class kind. Delivery is reliable and FIFO per
// connection; broken/stale/partitioned paths produce an asynchronous
// ConnError at the sender instead.
func (n *Network) Send(from, to sm.NodeID, payload any, size int, kind Kind) {
	src := n.state(from)
	if !src.alive {
		return // dead nodes do not send
	}
	if from == to {
		// Loopback: near-instant, lossless, unaffected by pacing.
		inc := src.incarnation
		n.sim.After(LoopbackLatency, func() {
			if src.alive && src.incarnation == inc && src.handler != nil {
				src.bytesIn[kind] += int64(size)
				src.handler.HandleDeliver(from, payload)
			}
		})
		src.bytesOut[kind] += int64(size)
		src.msgsOut++
		return
	}
	src.bytesOut[kind] += int64(size)
	src.msgsOut++
	if n.parts[keyFor(from, to)] {
		n.deliverError(from, to)
		return
	}
	dst := n.state(to)
	if !dst.alive {
		n.deliverError(from, to)
		return
	}
	k := keyFor(from, to)
	c, ok := n.conns[k]
	if ok {
		// Stale if closed or either endpoint reset since establishment.
		if c.closed || c.incarnation[from] != src.incarnation || c.incarnation[to] != dst.incarnation {
			// A sender that is aware the socket died (it reset, it
			// initiated the close, or it received the RST) simply
			// reconnects; an unaware sender discovers the break
			// now and gets an error instead of a delivery.
			aware := c.aware[from] || c.incarnation[from] != src.incarnation
			c.close()
			delete(n.conns, k)
			if !aware {
				n.deliverError(from, to)
				return
			}
			ok = false
		}
	}
	if !ok {
		c = &conn{
			key:         k,
			incarnation: map[sm.NodeID]uint64{from: src.incarnation, to: dst.incarnation},
			lastArrival: map[sm.NodeID]sim.Time{},
		}
		n.conns[k] = c
	}
	lat, loss, bw := n.paths.Path(from, to)
	// Outbound link serialization: transmissions queue behind each other.
	txTime := time.Duration(float64(size*8) / bw * float64(time.Second))
	start := n.sim.Now()
	if src.lastTxEnd > start {
		start = src.lastTxEnd
	}
	end := start.Add(txTime)
	src.lastTxEnd = end
	delay := end.Sub(n.sim.Now()) + lat
	// TCP does not drop payloads; loss manifests as retransmission delay.
	for n.rng.Float64() < loss {
		delay += n.RTO
	}
	arrival := n.sim.Now().Add(delay)
	if la := c.lastArrival[to]; arrival < la {
		arrival = la // FIFO per direction
	}
	c.lastArrival[to] = arrival
	destInc := dst.incarnation
	n.sim.At(arrival, func() {
		ds := n.state(to)
		// The connection (and its buffered data) dies if either side
		// reset or the pair was severed in flight.
		if !ds.alive || ds.incarnation != destInc || n.conns[k] != c || c.closed {
			return
		}
		if n.parts[k] {
			return
		}
		ds.bytesIn[kind] += int64(size)
		if ds.handler != nil {
			ds.handler.HandleDeliver(from, payload)
		}
	})
}

// SendUDP transmits a datagram: no connection, no error signals, dropped
// with the path loss probability.
func (n *Network) SendUDP(from, to sm.NodeID, payload any, size int, kind Kind) {
	src := n.state(from)
	if !src.alive {
		return
	}
	src.bytesOut[kind] += int64(size)
	src.msgsOut++
	if n.parts[keyFor(from, to)] {
		return
	}
	lat, loss, bw := n.paths.Path(from, to)
	if n.rng.Float64() < loss {
		return
	}
	txTime := time.Duration(float64(size*8) / bw * float64(time.Second))
	destInc := n.state(to).incarnation
	n.sim.After(lat+txTime, func() {
		ds := n.state(to)
		if !ds.alive || ds.incarnation != destInc {
			return
		}
		ds.bytesIn[kind] += int64(size)
		if ds.handler != nil {
			ds.handler.HandleDeliver(from, payload)
		}
	})
}

// deliverError schedules a ConnError(to) at node from.
func (n *Network) deliverError(from, to sm.NodeID) {
	inc := n.state(from).incarnation
	n.sim.After(n.ErrDelay, func() {
		fs := n.state(from)
		if fs.alive && fs.incarnation == inc && fs.handler != nil {
			fs.handler.HandleConnError(to)
		}
	})
}

// BreakConn severs the current connection between a and b (if any) without
// a partition: both sides will discover on next use; if notify is true, both
// sides get an immediate ConnError (like an application-initiated RST, which
// execution steering uses as a corrective action).
func (n *Network) BreakConn(a, b sm.NodeID, notify bool) {
	k := keyFor(a, b)
	c, ok := n.conns[k]
	if !ok {
		// No live connection object; still create a tombstone so the
		// peer's next send can observe the break when notify is off.
		c = &conn{key: k, incarnation: map[sm.NodeID]uint64{}, lastArrival: map[sm.NodeID]sim.Time{}}
		n.conns[k] = c
	}
	c.close(a) // the initiator knows
	if notify {
		lat, _, _ := n.paths.Path(a, b)
		bs := n.state(b)
		bInc := bs.incarnation
		n.sim.After(lat, func() {
			c.aware[b] = true
			if bs.alive && bs.incarnation == bInc && bs.handler != nil {
				bs.handler.HandleConnError(a)
			}
		})
	}
}

// Connected reports whether a live connection object exists between a and b.
func (n *Network) Connected(a, b sm.NodeID) bool {
	c, ok := n.conns[keyFor(a, b)]
	return ok && !c.closed
}

// BytesOut reports bytes sent by id for the given kind.
func (n *Network) BytesOut(id sm.NodeID, kind Kind) int64 { return n.state(id).bytesOut[kind] }

// BytesIn reports bytes received by id for the given kind.
func (n *Network) BytesIn(id sm.NodeID, kind Kind) int64 { return n.state(id).bytesIn[kind] }

// TotalBytesOut sums sent bytes for a kind across all nodes.
func (n *Network) TotalBytesOut(kind Kind) int64 {
	var total int64
	for _, st := range n.nodes {
		total += st.bytesOut[kind]
	}
	return total
}

// MessagesOut reports the number of messages node id has sent.
func (n *Network) MessagesOut(id sm.NodeID) int64 { return n.state(id).msgsOut }
