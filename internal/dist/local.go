package dist

import (
	"errors"
	"sync"

	"crystalball/internal/mc"
)

// LocalConfig parameterises an in-process distributed search: N shard
// goroutines wired to a coordinator over loopback connections. This is
// what `mcheck -shards N` and the differential oracle run.
type LocalConfig struct {
	// Shards is the partition width (0 or 1 = a single shard owning the
	// whole space).
	Shards int
	// Search is the checker configuration every shard runs (Exhaustive
	// mode only; see ShardConfig.Search).
	Search mc.Config
	// Root is the start state.
	Root *mc.GState
	// Budget is the round budget the coordinator splits. The zero value
	// falls back to Search's resolved budget. Budget.Workers is the
	// per-shard worker count and defaults to 1 — shards already run in
	// parallel with each other.
	Budget mc.Budget
	// BatchSize overrides the forwarded-batch flush threshold.
	BatchSize int
	// RecordStates asks every shard for its claimed-fingerprint dump
	// (merged sorted into Result.Checker.ClaimedStates).
	RecordStates bool
}

// Local runs one distributed exhaustive round in process and returns the
// merged result.
func Local(cfg LocalConfig) (*Result, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	probe := mc.NewSearch(cfg.Search)
	budget := cfg.Budget
	if budget == (mc.Budget{}) {
		budget = probe.Config().Budget
	}
	if budget.Workers <= 0 {
		budget.Workers = 1
	}

	hubConns := make([]Conn, cfg.Shards)
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		hub, shardSide := Pipe()
		hubConns[i] = hub
		wg.Add(1)
		go func(i int, conn Conn) {
			defer wg.Done()
			errs[i] = RunShard(conn, ShardConfig{
				Index:     i,
				Shards:    cfg.Shards,
				Search:    cfg.Search,
				Root:      cfg.Root,
				BatchSize: cfg.BatchSize,
			})
		}(i, shardSide)
	}

	coord := NewCoordinator(hubConns, CoordinatorConfig{
		Now:    probe.Config().Now,
		Search: probe,
		Root:   cfg.Root,
	})
	res, err := coord.RunRound(budget, cfg.RecordStates)
	coord.Shutdown()
	wg.Wait()
	if err != nil {
		return nil, err
	}
	for _, serr := range errs {
		if serr != nil && !errors.Is(serr, ErrClosed) {
			return nil, serr
		}
	}
	return res, nil
}
