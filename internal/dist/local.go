package dist

import (
	"errors"
	"sync"
	"time"

	"crystalball/internal/mc"
)

// LocalConfig parameterises an in-process distributed search: N shard
// goroutines wired to a coordinator over loopback connections. This is
// what `mcheck -shards N` and the differential oracles run.
type LocalConfig struct {
	// Shards is the partition width (0 or 1 = a single shard owning the
	// whole space).
	Shards int
	// Search is the checker configuration every shard runs (Exhaustive
	// mode only; see ShardConfig.Search).
	Search mc.Config
	// Root is the start state.
	Root *mc.GState
	// Budget is the round budget the coordinator splits. The zero value
	// falls back to Search's resolved budget. Budget.Workers is the
	// per-shard worker count and defaults to 1 — shards already run in
	// parallel with each other.
	Budget mc.Budget
	// BatchSize overrides the forwarded-batch flush threshold.
	BatchSize int
	// RecordStates asks every shard for its claimed-fingerprint dump
	// (merged sorted into Result.Checker.ClaimedStates).
	RecordStates bool
	// Faults, when set, wraps each shard's hub-side connection in the
	// deterministic fault-injection plan (mcheck -faults). Shards the plan
	// kills are recovered from by the coordinator's retry machinery and
	// reported in Result.Recovery.
	Faults *FaultPlan
	// MaxRetries is CoordinatorConfig.MaxRetries
	// (0 = DefaultMaxRetries, negative = never retry).
	MaxRetries int
	// StallTimeout is CoordinatorConfig.StallTimeout (0 = disabled; the
	// loopback transport surfaces real deaths as connection errors, so
	// only wedge-style fault tests need it).
	StallTimeout time.Duration
	// After is the injected stall timer (nil = time.After).
	After func(time.Duration) <-chan time.Time
}

// Local runs one distributed exhaustive round in process and returns the
// merged result.
func Local(cfg LocalConfig) (*Result, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	probe := mc.NewSearch(cfg.Search)
	budget := cfg.Budget
	if budget == (mc.Budget{}) {
		budget = probe.Config().Budget
	}
	if budget.Workers <= 0 {
		budget.Workers = 1
	}

	hubConns := make([]Conn, cfg.Shards)
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		hub, shardSide := Pipe()
		hubConns[i] = hub
		if cfg.Faults != nil {
			hubConns[i] = cfg.Faults.Wrap(i, hub)
		}
		wg.Add(1)
		go func(i int, conn Conn) {
			defer wg.Done()
			errs[i] = RunShard(conn, ShardConfig{
				Index:     i,
				Shards:    cfg.Shards,
				Search:    cfg.Search,
				Root:      cfg.Root,
				BatchSize: cfg.BatchSize,
			})
		}(i, shardSide)
	}

	coord := NewCoordinator(hubConns, CoordinatorConfig{
		Now:          probe.Config().Now,
		Search:       probe,
		Root:         cfg.Root,
		MaxRetries:   cfg.MaxRetries,
		StallTimeout: cfg.StallTimeout,
		After:        cfg.After,
	})
	res, err := coord.RunRound(budget, cfg.RecordStates)
	coord.Shutdown()
	wg.Wait()
	if err != nil {
		return nil, err
	}
	// Shards the coordinator declared dead exited with whatever error
	// killed them (severed pipe, corrupted batch, …) — the round already
	// recovered from those; only an error from a shard that stayed in the
	// session is a real failure.
	dead := make(map[int]bool, len(res.Recovery.Deaths))
	for _, d := range res.Recovery.Deaths {
		dead[d.Shard] = true
	}
	for i, serr := range errs {
		if serr != nil && !errors.Is(serr, ErrClosed) && !dead[i] {
			return nil, serr
		}
	}
	return res, nil
}
