package dist

import (
	"sort"
	"strings"
	"sync"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/sm"
	"crystalball/internal/stats"
)

// ShardConfig parameterises one shard of an n-way distributed search.
type ShardConfig struct {
	// Index and Shards are the shard's connection identity: which of the
	// session's worker connections it is. The hash range it owns is a
	// per-round assignment (RoundStart.Slot/Slots) — after a failure the
	// coordinator repartitions over the survivors, so identity and slot
	// are distinct concepts. A RoundStart with zero Slots defaults to the
	// identity partition.
	Index  int
	Shards int
	// Search is the scenario's checker configuration. Mode must be
	// Exhaustive with no custom Strategy; Reduce is forced off (the
	// sleep-set reduction's same-level sibling claims are coordination the
	// shards do not attempt). Every shard of a run must be built from a
	// bit-identical configuration — same seed, same fault toggles — or the
	// partitioned searches diverge.
	Search mc.Config
	// Root is the shared start state.
	Root *mc.GState
	// BatchSize is the forwarded-batch flush threshold (0 =
	// DefaultBatchSize).
	BatchSize int
}

// node is a shard-frontier entry. Parent links reconstruct paths for
// violation reports and wire forwarding; prefix replaces the chain for
// states that arrived over a wire (the descriptor path from the root).
// Once enqueued every field is immutable, so expansion workers may share
// parent chains freely.
type node struct {
	state  *mc.GState
	parent *node
	event  sm.Event
	prefix []EventDesc
	depth  int32
}

// descPath returns the full descriptor path from the root to n,
// re-describing in-process events and splicing in the wire prefix when the
// path crossed a process boundary. scratch is the fingerprint encoder.
func (n *node) descPath(scratch *sm.Encoder) []EventDesc {
	var rev []sm.Event
	cur := n
	for cur.event != nil {
		rev = append(rev, cur.event)
		cur = cur.parent
	}
	out := make([]EventDesc, 0, len(cur.prefix)+len(rev))
	out = append(out, cur.prefix...)
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, DescribeEvent(rev[i], scratch))
	}
	return out
}

// eventPath returns the real event path from the root, or nil when the
// path crossed a process boundary and only descriptors remain.
func (n *node) eventPath() []sm.Event {
	var rev []sm.Event
	cur := n
	for cur.event != nil {
		rev = append(rev, cur.event)
		cur = cur.parent
	}
	if cur.prefix != nil {
		return nil
	}
	out := make([]sm.Event, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// roundBudget is the shard's slice of the round's mc.Budget, with atomic
// counters so expansion workers share it. Mirrors the engine's budget.
type roundBudget struct {
	maxStates      int64
	maxDepth       int32
	maxTransitions int64
	deadline       time.Time
	now            func() time.Time
	states         stats.Counter // expansions admitted
	transitions    stats.Counter
	halted         stats.Counter // violation quota or fatal stop
}

func (b *roundBudget) admitState() bool {
	if b.states.Add(1) > b.maxStates && b.maxStates > 0 {
		return false
	}
	return b.halted.Load() == 0
}

func (b *roundBudget) admitTransition() bool {
	if b.transitions.Add(1) > b.maxTransitions && b.maxTransitions > 0 {
		return false
	}
	return true
}

func (b *roundBudget) refundTransition() { b.transitions.Add(-1) }

func (b *roundBudget) halt() { b.halted.Store(1) }

func (b *roundBudget) exhausted() bool {
	if b.halted.Load() != 0 {
		return true
	}
	if b.maxStates > 0 && b.states.Load() >= b.maxStates {
		return true
	}
	if b.maxTransitions > 0 && b.transitions.Load() >= b.maxTransitions {
		return true
	}
	return !b.deadline.IsZero() && b.now().After(b.deadline)
}

// expansions returns the admitted-expansion count, clamped to the budget
// (racing workers may overshoot the atomic by their own admit).
func (b *roundBudget) expansions() int64 {
	n := b.states.Load()
	if b.maxStates > 0 && n > b.maxStates {
		n = b.maxStates
	}
	return n
}

// vioEntry is one recorded violation class: the canonical (sorted) violated
// property set, with the minimal (depth, state hash) representative node.
type vioEntry struct {
	props []string
	depth int32
	hash  uint64
	node  *node
}

// violationSet collects violations from expansion workers. Unlike the
// serial engine — which reports each violation's path *onset* exactly once,
// leaning on its deterministic claim order — a shard records the full
// violated property set of every violating state it claims, and
// deduplicates by that set. The result is a pure function of the claimed
// state set, so the reported (props, depth, hash) triples are deterministic
// at any shard and worker count; representative paths remain scheduling
// telemetry. The quota counts record calls (violating expansions), an
// intentionally loose analogue of the serial quota.
type violationSet struct {
	mu       sync.Mutex
	bySig    map[string]int
	list     []vioEntry
	recorded int
	max      int
}

func newViolationSet(max int) *violationSet {
	return &violationSet{bySig: make(map[string]int), max: max}
}

// record merges one violating state and reports whether the quota is now
// (or already was) filled. props must be sorted.
func (c *violationSet) record(props []string, depth int32, hash uint64, n *node) bool {
	sig := strings.Join(props, "|")
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max > 0 && c.recorded >= c.max {
		return true
	}
	c.recorded++
	if i, seen := c.bySig[sig]; seen {
		old := &c.list[i]
		if depth < old.depth || (depth == old.depth && hash < old.hash) {
			old.depth, old.hash, old.node = depth, hash, n
		}
	} else {
		c.bySig[sig] = len(c.list)
		c.list = append(c.list, vioEntry{props: props, depth: depth, hash: hash, node: n})
	}
	return c.max > 0 && c.recorded >= c.max
}

// report renders the collected set sorted by (depth, hash, signature),
// materializing descriptor paths (and real event paths where the chain
// never crossed a wire).
func (c *violationSet) report(scratch *sm.Encoder) []Violation {
	c.mu.Lock()
	entries := make([]vioEntry, len(c.list))
	copy(entries, c.list)
	c.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].depth != entries[j].depth {
			return entries[i].depth < entries[j].depth
		}
		if entries[i].hash != entries[j].hash {
			return entries[i].hash < entries[j].hash
		}
		return strings.Join(entries[i].props, "|") < strings.Join(entries[j].props, "|")
	})
	out := make([]Violation, len(entries))
	for i, en := range entries {
		out[i] = Violation{
			Props:     en.props,
			Depth:     en.depth,
			StateHash: en.hash,
			Path:      en.node.descPath(scratch),
			events:    en.node.eventPath(),
		}
	}
	return out
}

// frontier is the shard's depth-bucketed work pool. Asynchronous arrivals
// mean depths interleave; scanning buckets lowest-first keeps expansion
// near breadth-first order, which minimizes re-expansions (a state
// re-arrives shallower less often when shallow work drains first).
type frontier struct {
	buckets [][]*node
	low     int
	count   int
}

func (f *frontier) push(n *node) {
	d := int(n.depth)
	for d >= len(f.buckets) {
		f.buckets = append(f.buckets, nil)
	}
	f.buckets[d] = append(f.buckets[d], n)
	if f.count == 0 || d < f.low {
		f.low = d
	}
	f.count++
}

// popBucket removes and returns the lowest non-empty bucket.
func (f *frontier) popBucket() []*node {
	for f.low < len(f.buckets) && len(f.buckets[f.low]) == 0 {
		f.low++
	}
	b := f.buckets[f.low]
	f.buckets[f.low] = nil
	f.count -= len(b)
	return b
}

func (f *frontier) clear() {
	for i := range f.buckets {
		f.buckets[i] = nil
	}
	f.count = 0
	f.low = len(f.buckets)
}

// shard is one partition's engine: the visited map for its hash range, the
// depth-bucketed frontier, the per-owner outgoing batches, and the round
// protocol state. All fields except the expansion-phase counters are
// touched only from the shard's main goroutine.
type shard struct {
	cfg     ShardConfig
	slot    int // this round's partition slot
	slots   int // this round's partition width
	rng     mc.HashRange
	search  *mc.Search
	conn    Conn
	scratch *sm.Encoder

	// visited maps owned fingerprints to the minimal depth claimed so far;
	// a strictly shallower re-arrival re-claims and re-expands (package
	// doc: min-depth re-expansion is what restores BFS set-equality).
	visited map[uint64]int32
	// fwd is the sender-side forward cache: fingerprint → minimal depth
	// already forwarded, so a successor is re-forwarded only when
	// strictly shallower.
	fwd       map[uint64]int32
	locals    map[uint64]struct{}
	localsBuf []uint64
	fr        frontier
	out       [][]ForwardState
	res       []*mc.Expander

	bdg      roundBudget
	vio      *violationSet
	maxDepth stats.Counter
	workers  int
	received int64
	record   bool
	st       Stats
}

func newShard(conn Conn, cfg ShardConfig) (*shard, error) {
	if cfg.Shards <= 0 || cfg.Index < 0 || cfg.Index >= cfg.Shards {
		return nil, errorf("bad shard index %d of %d", cfg.Index, cfg.Shards)
	}
	if cfg.Search.Strategy != nil || cfg.Search.Mode != mc.Exhaustive {
		return nil, errorf("distributed search supports Exhaustive mode only")
	}
	if cfg.Root == nil {
		return nil, errorf("shard %d: nil root state", cfg.Index)
	}
	cfg.Search.Reduce = false
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	return &shard{
		cfg:     cfg,
		slot:    cfg.Index,
		slots:   cfg.Shards,
		rng:     mc.ShardRange(cfg.Index, cfg.Shards),
		search:  mc.NewSearch(cfg.Search),
		conn:    conn,
		scratch: sm.NewEncoder(),
	}, nil
}

// RunShard serves one shard over conn until Shutdown or a connection
// error. It is the body of every shard goroutine (dist.Local) and of a
// shardd worker once configured.
func RunShard(conn Conn, cfg ShardConfig) error {
	sh, err := newShard(conn, cfg)
	if err != nil {
		return err
	}
	return sh.serve()
}

func (sh *shard) serve() error {
	var pending Msg
	for {
		m := pending
		pending = nil
		if m == nil {
			var err error
			m, err = sh.conn.Recv()
			if err != nil {
				return err
			}
		}
		switch v := m.(type) {
		case RoundStart:
			if err := sh.startRound(v); err != nil {
				return sh.fault(err)
			}
			if err := sh.drainAndIdle(&pending); err != nil {
				return sh.fault(err)
			}
		case Batch:
			if err := sh.ingest(v); err != nil {
				return sh.fault(err)
			}
			if err := sh.pollBatches(&pending); err != nil {
				return sh.fault(err)
			}
			if err := sh.drainAndIdle(&pending); err != nil {
				return sh.fault(err)
			}
		case RoundEnd:
			if sh.visited == nil {
				return sh.fault(errorf("shard %d: round end outside a round", sh.cfg.Index))
			}
			if err := sh.conn.Send(sh.report()); err != nil {
				return err
			}
			sh.endRound()
		case RoundAbort:
			// A peer shard died; drop all round state and acknowledge.
			// The ack is the coordinator's barrier: FIFO order means no
			// stale batch or idle from the aborted round can follow it.
			sh.endRound()
			if err := sh.conn.Send(AbortAck{Shard: sh.cfg.Index, Round: v.Round}); err != nil {
				return err
			}
		case Ping:
			// Transport keepalive; the TCP reader normally swallows these
			// before they reach the protocol loop.
		case Shutdown:
			return nil
		default:
			return sh.fault(errorf("shard %d: unexpected %T", sh.cfg.Index, m))
		}
	}
}

// fault surfaces a shard-side fatal error to the coordinator and returns it.
func (sh *shard) fault(err error) error {
	// Best effort: the connection itself may be the problem.
	_ = sh.conn.Send(Fault{Shard: sh.cfg.Index, Err: err.Error()})
	return err
}

// startRound resets per-round state, takes this round's partition slot,
// and seeds the root if the slot's range owns its fingerprint.
func (sh *shard) startRound(rs RoundStart) error {
	sh.slot, sh.slots = rs.Slot, rs.Slots
	if rs.Slots == 0 {
		sh.slot, sh.slots = sh.cfg.Index, sh.cfg.Shards
	}
	if sh.slots <= 0 || sh.slot < 0 || sh.slot >= sh.slots {
		return errorf("shard %d: round start assigns slot %d of %d", sh.cfg.Index, rs.Slot, rs.Slots)
	}
	sh.rng = mc.ShardRange(sh.slot, sh.slots)
	b := rs.Budget
	sh.workers = b.Workers
	if sh.workers <= 0 {
		sh.workers = 1
	}
	for len(sh.res) < sh.workers {
		sh.res = append(sh.res, sh.search.NewExpander())
	}
	sh.bdg = roundBudget{
		maxStates:      int64(b.States),
		maxDepth:       int32(b.Depth),
		maxTransitions: int64(b.Transitions),
		now:            sh.search.Config().Now,
	}
	if b.Wall > 0 {
		sh.bdg.deadline = sh.bdg.now().Add(b.Wall)
	}
	sh.vio = newViolationSet(b.Violations)
	sh.maxDepth.Store(0)
	sh.visited = make(map[uint64]int32)
	sh.fwd = make(map[uint64]int32)
	sh.locals = make(map[uint64]struct{})
	sh.fr = frontier{}
	sh.out = make([][]ForwardState, sh.slots)
	sh.received = 0
	sh.record = rs.RecordStates
	sh.st = Stats{}

	if h := sh.cfg.Root.Hash(); sh.rng.Contains(h) {
		sh.claim(&node{state: sh.cfg.Root}, h)
	}
	return nil
}

// endRound drops the round's tables so their memory is reclaimable between
// rounds.
func (sh *shard) endRound() {
	sh.visited, sh.fwd, sh.locals = nil, nil, nil
	sh.fr = frontier{}
	sh.out = nil
	sh.vio = nil
}

// claim enters a state this shard owns: record its minimal depth and every
// node-local fingerprint, and enqueue it for expansion. Recording *all*
// node-local hashes per claimed state (rather than the serial engine's
// one-changed-node-per-claim) makes the union a pure function of the
// claimed set — and since every local value in a claimed state is created
// by some claimed ancestor's edge, the union equals the serial engine's
// distinct-local-state set exactly.
func (sh *shard) claim(n *node, h uint64) {
	if prior, ok := sh.visited[h]; ok && prior <= n.depth {
		return
	}
	sh.visited[h] = n.depth
	sh.localsBuf = n.state.LocalHashes(sh.localsBuf[:0])
	for _, lh := range sh.localsBuf {
		sh.locals[lh] = struct{}{}
	}
	sh.fr.push(n)
}

// drainAndIdle runs expansion to exhaustion (or budget), flushes every
// outgoing batch, and reports idle to the coordinator. Between depth
// buckets it flushes partial batches and folds queued arrivals: flushing
// at level granularity hands peers their next wave while this shard keeps
// expanding (the overlap the scaling claim rests on), and claiming a
// shallow re-arrival now costs a map hit where the same state claimed
// after the drain would re-expand its whole subtree.
func (sh *shard) drainAndIdle(pending *Msg) error {
	for sh.fr.count > 0 {
		if sh.bdg.exhausted() {
			sh.fr.clear()
			break
		}
		bucket := sh.fr.popBucket()
		if err := sh.processBucket(bucket); err != nil {
			return err
		}
		if err := sh.flushAll(); err != nil {
			return err
		}
		if *pending == nil {
			if err := sh.pollBatches(pending); err != nil {
				return err
			}
		}
	}
	if err := sh.flushAll(); err != nil {
		return err
	}
	return sh.conn.Send(Idle{Shard: sh.slot, Received: sh.received})
}

// pollBatches ingests every already-queued batch without blocking. A
// non-batch message is stashed in *pending for the serve loop (the
// coordinator cannot legally send one while this shard is mid-drain, but
// the serve loop is where that protocol error is diagnosed).
func (sh *shard) pollBatches(pending *Msg) error {
	for {
		m, ok, err := sh.conn.TryRecv()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		b, isBatch := m.(Batch)
		if !isBatch {
			*pending = m
			return nil
		}
		if err := sh.ingest(b); err != nil {
			return err
		}
	}
}

// processBucket expands one depth bucket — in parallel when the shard has
// more than one worker — then claims and routes the proposed successors in
// deterministic (bucket position, sibling) order.
func (sh *shard) processBucket(bucket []*node) error {
	outs := make([][]*node, len(bucket))
	if sh.workers == 1 || len(bucket) == 1 {
		for i, n := range bucket {
			if sh.bdg.exhausted() || !sh.bdg.admitState() {
				break
			}
			outs[i] = sh.expand(n, sh.res[0])
		}
	} else {
		var cursor stats.Counter
		var wg sync.WaitGroup
		for w := 0; w < sh.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := int(cursor.Inc()) - 1
					if i >= len(bucket) || sh.bdg.exhausted() || !sh.bdg.admitState() {
						return
					}
					outs[i] = sh.expand(bucket[i], sh.res[w])
				}
			}(w)
		}
		wg.Wait()
	}
	for _, children := range outs {
		for _, child := range children {
			if err := sh.route(child); err != nil {
				return err
			}
		}
	}
	return nil
}

// expand explores one admitted state: check properties, then propose
// successors (unless the state sits at the depth bound). Safe to call from
// expansion workers; x is the calling worker's workspace.
func (sh *shard) expand(n *node, x *mc.Expander) []*node {
	sh.maxDepth.Max(int64(n.depth))
	if violated := x.Check(n.state); len(violated) > 0 {
		sort.Strings(violated)
		if sh.vio.record(violated, n.depth, n.state.Hash(), n) {
			sh.bdg.halt()
		}
	}
	if sh.bdg.maxDepth > 0 && n.depth >= sh.bdg.maxDepth {
		return nil
	}
	var children []*node
	x.Events(n.state, func(ev sm.Event) {
		if !sh.bdg.admitTransition() {
			return
		}
		next := sh.search.ApplyEvent(n.state, ev)
		if next == nil {
			sh.bdg.refundTransition()
			return
		}
		children = append(children, &node{
			state: next, parent: n, event: ev, depth: n.depth + 1,
		})
	})
	return children
}

// route claims a proposed successor locally or forwards it to its owner.
func (sh *shard) route(child *node) error {
	h := child.state.Hash()
	if sh.rng.Contains(h) {
		sh.claim(child, h)
		return nil
	}
	if prior, ok := sh.fwd[h]; ok && prior <= child.depth {
		return nil
	}
	sh.fwd[h] = child.depth
	owner := mc.ShardOwner(h, sh.slots)
	sh.out[owner] = append(sh.out[owner], ForwardState{Hash: h, Depth: child.depth, node: child})
	sh.st.StatesForwarded++
	if len(sh.out[owner]) >= sh.cfg.BatchSize {
		return sh.flush(owner)
	}
	return nil
}

func (sh *shard) flush(owner int) error {
	states := sh.out[owner]
	if len(states) == 0 {
		return nil
	}
	sh.out[owner] = nil
	sh.st.BatchFlushes++
	return sh.conn.Send(Batch{From: sh.slot, To: owner, States: states})
}

func (sh *shard) flushAll() error {
	for owner := range sh.out {
		if err := sh.flush(owner); err != nil {
			return err
		}
	}
	return nil
}

// ingest claims the states of one arriving batch. An exhausted shard still
// counts the batch (the quiescence protocol needs the credit repaid) but
// drops its states.
func (sh *shard) ingest(b Batch) error {
	if sh.visited == nil {
		return errorf("shard %d: batch outside a round", sh.cfg.Index)
	}
	sh.received++
	if b.To != sh.slot {
		return errorf("shard %d: misrouted batch for slot %d (holding slot %d)", sh.cfg.Index, b.To, sh.slot)
	}
	sh.st.StatesReceived += int64(len(b.States))
	if sh.bdg.exhausted() {
		return nil
	}
	for i := range b.States {
		fs := &b.States[i]
		if !sh.rng.Contains(fs.Hash) {
			return errorf("shard %d: received fingerprint %#x outside owned range", sh.cfg.Index, fs.Hash)
		}
		if prior, ok := sh.visited[fs.Hash]; ok && prior <= fs.Depth {
			sh.st.RemoteDeduped++
			continue
		}
		n := fs.node
		if n == nil {
			if len(fs.Path) == 0 {
				return errorf("shard %d: forwarded state %#x has no path", sh.cfg.Index, fs.Hash)
			}
			g, err := sh.replay(fs.Path)
			if err != nil {
				return err
			}
			if g.Hash() != fs.Hash {
				return errorf("shard %d: replayed state hash %#x, sender claimed %#x — diverged configurations?", sh.cfg.Index, g.Hash(), fs.Hash)
			}
			n = &node{state: g, prefix: fs.Path, depth: fs.Depth}
		}
		sh.claim(n, fs.Hash)
	}
	return nil
}

// replay reconstructs a state from its descriptor path.
func (sh *shard) replay(path []EventDesc) (*mc.GState, error) {
	_, g, err := replayDescs(sh.search, sh.res[0], sh.scratch, sh.cfg.Root, path, false)
	if err != nil {
		return nil, errorf("shard %d: %w", sh.cfg.Index, err)
	}
	return g, nil
}

// replayDescs re-executes a descriptor path from root, resolving each
// descriptor against the enabled events of the state it executed in — the
// engine's enumeration makes the match unique — and applying it. With
// wantEvents it also returns the resolved real events (violation-path
// materialization at the coordinator).
func replayDescs(s *mc.Search, x *mc.Expander, scratch *sm.Encoder, root *mc.GState, path []EventDesc, wantEvents bool) ([]sm.Event, *mc.GState, error) {
	g := root
	var events []sm.Event
	if wantEvents {
		events = make([]sm.Event, 0, len(path))
	}
	for i := range path {
		ev, err := resolveDesc(x, scratch, g, &path[i])
		if err != nil {
			return nil, nil, errorf("replay step %d: %w", i, err)
		}
		next := s.ApplyEvent(g, ev)
		if next == nil {
			return nil, nil, errorf("replay step %d: event %s not applicable", i, ev.Describe())
		}
		if wantEvents {
			events = append(events, ev)
		}
		g = next
	}
	return events, g, nil
}

func resolveDesc(x *mc.Expander, scratch *sm.Encoder, g *mc.GState, desc *EventDesc) (sm.Event, error) {
	var found sm.Event
	x.Events(g, func(ev sm.Event) {
		if found == nil && desc.matches(ev) {
			found = ev
		}
	})
	if found == nil {
		return nil, errorf("no enabled event matches descriptor %c %s->%s %q", desc.Kind, desc.From, desc.Node, desc.Name)
	}
	if desc.Kind == 'M' || desc.Kind == 'A' {
		if got := DescribeEvent(found, scratch); got.Arg != desc.Arg {
			return nil, errorf("descriptor %c %q payload fingerprint mismatch", desc.Kind, desc.Name)
		}
	}
	return found, nil
}

// report assembles this shard's round report. Shard carries the *slot* the
// report covers (like Batch.From and Idle.Shard), so the coordinator can
// index reports by partition after a repartitioned retry.
func (sh *shard) report() ShardReport {
	r := ShardReport{
		Shard:       sh.slot,
		States:      int64(len(sh.visited)),
		Expansions:  sh.bdg.expansions(),
		Transitions: sh.bdg.transitions.Load(),
		MaxDepth:    int32(sh.maxDepth.Load()),
		Exhausted:   sh.bdg.exhausted(),
		Violations:  sh.vio.report(sh.scratch),
		Stats:       sh.st,
		Locals:      dumpSet(sh.locals),
	}
	if sh.record {
		r.Claimed = dumpDepthMap(sh.visited)
	}
	return r
}

// dumpSet returns the sorted members (collect, then sort).
func dumpSet(m map[uint64]struct{}) []uint64 {
	out := make([]uint64, 0, len(m))
	for h := range m {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// dumpDepthMap returns the sorted keys (collect, then sort).
func dumpDepthMap(m map[uint64]int32) []uint64 {
	out := make([]uint64, 0, len(m))
	for h := range m {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
