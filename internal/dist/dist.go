// Package dist is the distributed sharded state-space search: the ROADMAP's
// "scale across processes and machines" arc, built on the seams the earlier
// platform work left open (mc.HashRange/Expander, mc.Budget/Policy,
// PR 6's per-worker frontier).
//
// The visited set is partitioned by hash range over the 64-bit state
// fingerprint (mc.ShardRange): each shard owns one contiguous range and
// runs its own expansion engine over the states it owns. Successors hashing
// outside the local range are accumulated into per-owner batches and
// forwarded over a Transport — an in-process loopback for deterministic
// tests and single-binary runs (mcheck -shards), or length-prefixed binary
// TCP for real multi-process runs (cmd/shardd). All traffic flows through
// the coordinator hub (a star topology): shard-to-shard batches are relayed
// by the coordinator, which lets it run a credit-counted quiescence check —
// every relayed batch is a credit that the destination shard repays in its
// next idle report, so a distributed exhaustive round terminates the moment
// all credits are repaid and every shard is drained, with no global barrier
// per BFS level (termination.go).
//
// Unlike the in-process engine's level-synchronized frontier, shards
// process their frontier asynchronously: a state can arrive from a remote
// shard at any depth, including a smaller depth than it was first claimed
// at. Each shard therefore keeps visited as fingerprint → minimal claimed
// depth and re-expands a state whenever it re-arrives strictly shallower,
// which restores exactly the subtree a depth-bounded BFS would have
// explored. The claimed-state set of a depth-bounded distributed round is
// consequently identical to the single-process engine's at any shard and
// worker count (the differential oracle in internal/scenario pins this),
// while expansion *counts* (transitions, re-expansions) are scheduling
// telemetry, like the engine's steal counters.
//
// Scope: distributed rounds run Exhaustive mode only. Consequence
// prediction's (node, local state) table and the sleep-set reduction's
// same-level sibling claims are global coordination the shards deliberately
// do not attempt; Reduce is forced off in shard engines.
package dist

import (
	"fmt"
	"sort"
	"strings"
)

// Stats counts one shard's frontier-exchange traffic; the coordinator sums
// them into the round's totals. cmd/experiments -exp sweep reports these
// alongside the checker's Steals/Pruned telemetry.
type Stats struct {
	// StatesForwarded counts successors handed to a remote owner shard.
	StatesForwarded int64
	// StatesReceived counts states that arrived from remote shards.
	StatesReceived int64
	// RemoteDeduped counts received states the owner had already claimed
	// at an equal or smaller depth — the cross-shard duplicate work the
	// sender-side forward cache could not see.
	RemoteDeduped int64
	// BatchFlushes counts outgoing batch sends (full batches plus the
	// end-of-drain flushes).
	BatchFlushes int64
}

// add folds another shard's counters in.
func (s *Stats) add(o Stats) {
	s.StatesForwarded += o.StatesForwarded
	s.StatesReceived += o.StatesReceived
	s.RemoteDeduped += o.RemoteDeduped
	s.BatchFlushes += o.BatchFlushes
}

// ShardDeath records one detected shard failure: which connection identity
// died, during which round and attempt (1-based within the round), and why.
// Cause is one of "conn" (transport error or peer timeout), "fault" (the
// shard reported its own engine fault), "stall" (protocol silence beyond
// CoordinatorConfig.StallTimeout), or "protocol" (the shard violated the
// round protocol and was expelled).
type ShardDeath struct {
	Shard   int
	Round   int
	Attempt int
	Cause   string
}

// RecoveryStats is the fault-tolerance telemetry of one coordinator round:
// how many times the round was aborted and retried, which shards were lost
// along the way, and what the round finally ran on. With a deterministic
// fault plan and a fixed seed the whole struct — including String() — is
// byte-identical across runs, which the chaos oracle pins.
type RecoveryStats struct {
	// Retries counts aborted attempts (0 = the round succeeded first try).
	Retries int
	// Deaths lists every shard failure detected during the round, ordered
	// by attempt and then by shard index within an attempt.
	Deaths []ShardDeath
	// SerialFallback reports that every shard died and the round was
	// finished by the coordinator's local serial engine.
	SerialFallback bool
	// FinalShards is the number of live shards the successful attempt ran
	// on (0 when SerialFallback).
	FinalShards int
}

// add folds another round's recovery telemetry in (used by sweeps).
func (r *RecoveryStats) add(o RecoveryStats) {
	r.Retries += o.Retries
	r.Deaths = append(r.Deaths, o.Deaths...)
	if o.SerialFallback {
		r.SerialFallback = true
	}
	r.FinalShards = o.FinalShards
}

// String renders the telemetry canonically, e.g.
// "retries=1 final=3 deaths[r2a1s0:conn]" — the byte-identical form the
// determinism tests compare.
func (r RecoveryStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "retries=%d", r.Retries)
	if r.SerialFallback {
		b.WriteString(" serial")
	}
	fmt.Fprintf(&b, " final=%d", r.FinalShards)
	if len(r.Deaths) > 0 {
		deaths := append([]ShardDeath(nil), r.Deaths...)
		sort.Slice(deaths, func(i, j int) bool {
			if deaths[i].Round != deaths[j].Round {
				return deaths[i].Round < deaths[j].Round
			}
			if deaths[i].Attempt != deaths[j].Attempt {
				return deaths[i].Attempt < deaths[j].Attempt
			}
			return deaths[i].Shard < deaths[j].Shard
		})
		b.WriteString(" deaths[")
		for i, d := range deaths {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "r%da%ds%d:%s", d.Round, d.Attempt, d.Shard, d.Cause)
		}
		b.WriteByte(']')
	}
	return b.String()
}

// DefaultBatchSize is the forwarded-state batch flush threshold: batches
// are sent when they reach this many states (and at every drain end), so
// transport framing and hub relaying amortize over many states.
const DefaultBatchSize = 128

// errorf is fmt.Errorf with the package prefix every dist error carries.
func errorf(format string, args ...any) error {
	return fmt.Errorf("dist: "+format, args...)
}
