package dist

import (
	"sort"
	"strings"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/sm"
)

// CoordinatorConfig parameterises the hub.
type CoordinatorConfig struct {
	// Now is the clock Result.Checker.Elapsed reads (nil = time.Now) —
	// the coordinator's only wall-clock access, injected so round timing
	// is testable like the engine's.
	Now func() time.Time
	// Search and Root, when set, let the coordinator materialize real
	// event paths for violations that arrived as wire descriptors (TCP
	// shards). Without them such violations keep a nil path. In-process
	// shards hand real events through, so dist.Local never needs the
	// replay.
	Search *mc.Search
	Root   *mc.GState
}

// arrival is one message fanned in from a shard connection.
type arrival struct {
	shard int
	msg   Msg
	err   error
}

// Coordinator is the hub of a distributed search session: it fans rounds
// out, relays every inter-shard batch (counting credits for the quiescence
// check), and merges shard reports into the one result the controller
// consumes. Methods must be called from a single goroutine.
type Coordinator struct {
	cfg   CoordinatorConfig
	conns []Conn
	inbox chan arrival
	done  chan struct{}
	round int
	exp   *mc.Expander // lazy replay workspace (wire-mode violations)
	enc   *sm.Encoder
}

// NewCoordinator wraps one connection per shard (index = shard id) and
// starts a reader per connection, fanning messages into the coordinator's
// inbox.
func NewCoordinator(conns []Conn, cfg CoordinatorConfig) *Coordinator {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Coordinator{
		cfg:   cfg,
		conns: conns,
		inbox: make(chan arrival, 4*len(conns)+16),
		done:  make(chan struct{}),
	}
	for i, conn := range conns {
		go c.pump(i, conn)
	}
	return c
}

func (c *Coordinator) pump(shard int, conn Conn) {
	for {
		m, err := conn.Recv()
		select {
		case c.inbox <- arrival{shard: shard, msg: m, err: err}:
		case <-c.done:
			return
		}
		if err != nil {
			return
		}
	}
}

// Shutdown ends the session: every shard is asked to exit and the
// connections are closed. Call exactly once, after the last round.
func (c *Coordinator) Shutdown() {
	for _, conn := range c.conns {
		_ = conn.Send(Shutdown{})
	}
	close(c.done)
	for _, conn := range c.conns {
		_ = conn.Close()
	}
}

// Result is one distributed round's merged outcome.
type Result struct {
	// Checker is the merged search result in the single-process engine's
	// shape: claimed-state totals, max depth, merged deduplicated
	// violations, distinct local-state coverage, and — on RecordStates
	// rounds — the unioned claimed-fingerprint dump. Memory accounting
	// (PeakMemoryBytes/PerStateBytes) is per-process and stays zero.
	Checker mc.Result
	// Round is the merged per-round report in the shape the controller's
	// budget policies Observe.
	Round mc.RoundReport
	// Stats sums the shards' frontier-exchange counters.
	Stats Stats
	// PerShard keeps each shard's raw report (telemetry; per-shard
	// expansion counts are scheduling-dependent).
	PerShard []ShardReport
}

// RunRound runs one distributed exhaustive round: split the budget, fan
// out, relay batches until quiescent, then collect and merge reports. A
// shard connection failing mid-round surfaces here as an error — the round
// is then unrecoverable and the caller should Shutdown.
func (c *Coordinator) RunRound(b mc.Budget, recordStates bool) (*Result, error) {
	c.round++
	began := c.cfg.Now()
	shares := SplitBudget(b, len(c.conns))
	for i, conn := range c.conns {
		if err := conn.Send(RoundStart{Round: c.round, Budget: shares[i], RecordStates: recordStates}); err != nil {
			return nil, errorf("shard %d: round start: %w", i, err)
		}
	}

	q := newQuiescence(len(c.conns))
	for !q.quiescent() {
		a := <-c.inbox
		if a.err != nil {
			return nil, errorf("shard %d connection: %w", a.shard, a.err)
		}
		switch m := a.msg.(type) {
		case Batch:
			if m.To < 0 || m.To >= len(c.conns) {
				return nil, errorf("shard %d sent batch for unknown shard %d", a.shard, m.To)
			}
			q.relay(m.To)
			if err := c.conns[m.To].Send(m); err != nil {
				return nil, errorf("relay to shard %d: %w", m.To, err)
			}
		case Idle:
			if err := q.idle(a.shard, m.Received); err != nil {
				return nil, err
			}
		case Fault:
			return nil, errorf("shard %d: %s", m.Shard, m.Err)
		default:
			return nil, errorf("shard %d: unexpected %T during round", a.shard, a.msg)
		}
	}

	for i, conn := range c.conns {
		if err := conn.Send(RoundEnd{}); err != nil {
			return nil, errorf("shard %d: round end: %w", i, err)
		}
	}
	reports := make([]ShardReport, len(c.conns))
	for got := 0; got < len(c.conns); {
		a := <-c.inbox
		if a.err != nil {
			return nil, errorf("shard %d connection: %w", a.shard, a.err)
		}
		switch m := a.msg.(type) {
		case ShardReport:
			if m.Shard != a.shard {
				return nil, errorf("shard %d reported as shard %d", a.shard, m.Shard)
			}
			reports[a.shard] = m
			got++
		case Fault:
			return nil, errorf("shard %d: %s", m.Shard, m.Err)
		default:
			return nil, errorf("shard %d: unexpected %T while collecting reports", a.shard, a.msg)
		}
	}
	return c.merge(b, shares[0].Workers, reports, began)
}

// merge folds the shard reports into the single result/round-report pair.
func (c *Coordinator) merge(planned mc.Budget, workers int, reports []ShardReport, began time.Time) (*Result, error) {
	res := &Result{PerShard: reports}
	var claimed, locals []uint64
	recorded := false
	for i := range reports {
		r := &reports[i]
		res.Checker.StatesExplored += int(r.States)
		res.Checker.Transitions += int(r.Transitions)
		if int(r.MaxDepth) > res.Checker.MaxDepthReached {
			res.Checker.MaxDepthReached = int(r.MaxDepth)
		}
		res.Stats.add(r.Stats)
		locals = append(locals, r.Locals...)
		if r.Claimed != nil {
			recorded = true
			claimed = append(claimed, r.Claimed...)
		}
	}
	// Hash ranges partition the space, so claimed sets are disjoint;
	// locals overlap and need deduplication.
	locals = sortDedup(locals)
	res.Checker.DistinctLocalStates = len(locals)
	if recorded {
		sort.Slice(claimed, func(i, j int) bool { return claimed[i] < claimed[j] })
		res.Checker.ClaimedStates = claimed
	}
	res.Checker.Workers = workers
	res.Checker.Elapsed = c.cfg.Now().Sub(began)

	vios, err := c.mergeViolations(reports)
	if err != nil {
		return nil, err
	}
	res.Checker.Violations = vios

	res.Round = mc.RoundReport{
		Budget:     planned,
		States:     res.Checker.StatesExplored,
		Violations: len(vios),
		Elapsed:    res.Checker.Elapsed,
	}
	return res, nil
}

// mergeViolations deduplicates across shards by violated-property set,
// keeping the minimal (depth, state hash) representative — the same rule
// each shard applies locally — and materializes paths.
func (c *Coordinator) mergeViolations(reports []ShardReport) ([]mc.Violation, error) {
	bySig := make(map[string]int)
	var kept []Violation
	for i := range reports {
		for _, v := range reports[i].Violations {
			sig := strings.Join(v.Props, "|")
			j, seen := bySig[sig]
			if !seen {
				bySig[sig] = len(kept)
				kept = append(kept, v)
				continue
			}
			old := kept[j]
			if v.Depth < old.Depth || (v.Depth == old.Depth && v.StateHash < old.StateHash) {
				kept[j] = v
			}
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Depth != kept[j].Depth {
			return kept[i].Depth < kept[j].Depth
		}
		if kept[i].StateHash != kept[j].StateHash {
			return kept[i].StateHash < kept[j].StateHash
		}
		return strings.Join(kept[i].Props, "|") < strings.Join(kept[j].Props, "|")
	})
	out := make([]mc.Violation, len(kept))
	for i, v := range kept {
		path := v.events
		if path == nil && len(v.Path) > 0 && c.cfg.Search != nil && c.cfg.Root != nil {
			var err error
			path, _, err = replayDescs(c.cfg.Search, c.replayExpander(), c.replayScratch(), c.cfg.Root, v.Path, true)
			if err != nil {
				return nil, errorf("materializing violation path: %w", err)
			}
		}
		out[i] = mc.Violation{
			Properties: v.Props,
			Path:       path,
			StateHash:  v.StateHash,
			Depth:      int(v.Depth),
		}
	}
	return out, nil
}

// replayExpander / replayScratch lazily build the coordinator's replay
// workspace (only wire-mode sessions with violations ever need one).
func (c *Coordinator) replayExpander() *mc.Expander {
	if c.exp == nil {
		c.exp = c.cfg.Search.NewExpander()
	}
	return c.exp
}

func (c *Coordinator) replayScratch() *sm.Encoder {
	if c.enc == nil {
		c.enc = sm.NewEncoder()
	}
	return c.enc
}

// SplitBudget divides a round's budget across n shards: States and
// Transitions split near-evenly (low shards take the remainder); Depth and
// Wall bound each shard identically; Workers is the per-shard worker
// count; Violations gives every shard the full quota — the merged report
// deduplicates, so a distributed round may record up to n× the quota
// before all shards halt (quota rounds trade exactness for an early stop,
// as the serial engine's do under >1 worker).
func SplitBudget(b mc.Budget, n int) []mc.Budget {
	shares := make([]mc.Budget, n)
	for i := range shares {
		s := b
		s.States = splitShare(b.States, i, n)
		s.Transitions = splitShare(b.Transitions, i, n)
		shares[i] = s
	}
	return shares
}

func splitShare(total, i, n int) int {
	if total == 0 {
		return 0
	}
	q, r := total/n, total%n
	if i < r {
		return q + 1
	}
	return q
}

// sortDedup sorts hs and removes duplicates in place.
func sortDedup(hs []uint64) []uint64 {
	if len(hs) == 0 {
		return hs
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	out := hs[:1]
	for _, h := range hs[1:] {
		if h != out[len(out)-1] {
			out = append(out, h)
		}
	}
	return out
}
