package dist

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/sm"
)

// DefaultMaxRetries bounds how many times a round is aborted and retried on
// surviving shards before the coordinator gives up.
const DefaultMaxRetries = 2

// CoordinatorConfig parameterises the hub.
type CoordinatorConfig struct {
	// Now is the clock Result.Checker.Elapsed reads (nil = time.Now) —
	// injected so round timing is testable like the engine's.
	Now func() time.Time
	// Search and Root, when set, let the coordinator materialize real
	// event paths for violations that arrived as wire descriptors (TCP
	// shards), and — the fault-tolerance floor — run the round on the
	// local serial engine when every shard has died. Without them such
	// violations keep a nil path and a zero-survivor round is an error.
	// In-process shards hand real events through, so dist.Local never
	// needs the replay.
	Search *mc.Search
	Root   *mc.GState
	// MaxRetries bounds aborted-attempt retries per round
	// (0 = DefaultMaxRetries, negative = never retry).
	MaxRetries int
	// StallTimeout is the application-level wedge detector: if no protocol
	// message arrives for this long mid-round, every shard that has not
	// yet settled (or reported, or acked the abort) is declared dead and
	// the round is retried on the survivors. It catches peers whose
	// transport stays alive while the protocol loop is stuck — the failure
	// mode the TCP PeerTimeout cannot see. 0 disables it (in-process
	// transports surface real deaths as connection errors already).
	StallTimeout time.Duration
	// After is the injected stall timer (nil = time.After).
	After func(time.Duration) <-chan time.Time
}

// arrival is one message fanned in from a shard connection. conn identifies
// the generation: after a shard rejoins, stale arrivals pumped from its old
// connection no longer match conns[shard] and are discarded.
type arrival struct {
	shard int
	conn  Conn
	msg   Msg
	err   error
}

// rejoinReq is a replacement connection waiting to be adopted.
type rejoinReq struct {
	shard int
	conn  Conn
}

// Coordinator is the hub of a distributed search session: it fans rounds
// out, relays every inter-shard batch (counting credits for the quiescence
// check), and merges shard reports into the one result the controller
// consumes. Methods must be called from a single goroutine.
//
// Fault tolerance: a shard that errors, faults, or stalls mid-round is
// declared dead; the coordinator aborts the round on the survivors
// (RoundAbort / AbortAck barrier), repartitions the hash space and the
// budget over the shards still alive, and retries — up to MaxRetries
// times, degrading all the way to the local serial engine when nobody
// survives. Every death and retry is recorded in Result.Recovery.
type Coordinator struct {
	cfg    CoordinatorConfig
	conns  []Conn
	live   []bool
	inbox  chan arrival
	rejoin chan rejoinReq
	done   chan struct{}
	round  int
	exp    *mc.Expander // lazy replay workspace (wire-mode violations)
	enc    *sm.Encoder
}

// NewCoordinator wraps one connection per shard (index = shard id) and
// starts a reader per connection, fanning messages into the coordinator's
// inbox.
func NewCoordinator(conns []Conn, cfg CoordinatorConfig) *Coordinator {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.After == nil {
		cfg.After = time.After
	}
	switch {
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = DefaultMaxRetries
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	}
	c := &Coordinator{
		cfg:    cfg,
		conns:  conns,
		live:   make([]bool, len(conns)),
		inbox:  make(chan arrival, 4*len(conns)+16),
		rejoin: make(chan rejoinReq, len(conns)+4),
		done:   make(chan struct{}),
	}
	for i, conn := range conns {
		c.live[i] = true
		go c.pump(i, conn)
	}
	return c
}

func (c *Coordinator) pump(shard int, conn Conn) {
	for {
		m, err := conn.Recv()
		select {
		case c.inbox <- arrival{shard: shard, conn: conn, msg: m, err: err}:
		case <-c.done:
			return
		}
		if err != nil {
			return
		}
	}
}

// Rejoin hands the coordinator a replacement connection for a dead shard.
// Safe to call from any goroutine (cmd/shardd's accept loop); the
// connection is adopted at the next attempt boundary — never mid-attempt,
// so a rejoining shard cannot disturb a round in flight. Rejoining a shard
// that is still live is refused (the live connection keeps the slot).
func (c *Coordinator) Rejoin(shard int, conn Conn) error {
	if shard < 0 || shard >= len(c.conns) {
		return errorf("rejoin: unknown shard %d", shard)
	}
	select {
	case c.rejoin <- rejoinReq{shard: shard, conn: conn}:
		return nil
	default:
		return errorf("rejoin: queue full")
	}
}

// adoptRejoins folds queued replacement connections in. Called only from
// the round loop between attempts.
func (c *Coordinator) adoptRejoins() {
	for {
		select {
		case r := <-c.rejoin:
			if c.live[r.shard] {
				_ = r.conn.Close()
				continue
			}
			c.conns[r.shard] = r.conn
			c.live[r.shard] = true
			go c.pump(r.shard, r.conn)
		default:
			return
		}
	}
}

// kill declares shard id dead: its connection is closed (stopping its pump)
// and it takes no further part in the session unless it rejoins.
func (c *Coordinator) kill(id int) {
	if !c.live[id] {
		return
	}
	c.live[id] = false
	_ = c.conns[id].Close()
}

// liveShards returns the live connection identities in ascending order —
// the next attempt's slot → identity assignment.
func (c *Coordinator) liveShards() []int {
	ids := make([]int, 0, len(c.conns))
	for i, l := range c.live {
		if l {
			ids = append(ids, i)
		}
	}
	return ids
}

// nextArrival blocks for the next fan-in message, bounded by StallTimeout
// when configured. ok=false means the stall timer fired first.
func (c *Coordinator) nextArrival() (arrival, bool) {
	if c.cfg.StallTimeout <= 0 {
		return <-c.inbox, true
	}
	select {
	case a := <-c.inbox:
		return a, true
	case <-c.cfg.After(c.cfg.StallTimeout):
		return arrival{}, false
	}
}

// Shutdown ends the session: every live shard is asked to exit and all
// connections are closed. Call exactly once, after the last round.
func (c *Coordinator) Shutdown() {
	for i, conn := range c.conns {
		if c.live[i] {
			_ = conn.Send(Shutdown{})
		}
	}
	close(c.done)
	for _, conn := range c.conns {
		_ = conn.Close()
	}
}

// Result is one distributed round's merged outcome.
type Result struct {
	// Checker is the merged search result in the single-process engine's
	// shape: claimed-state totals, max depth, merged deduplicated
	// violations, distinct local-state coverage, and — on RecordStates
	// rounds — the unioned claimed-fingerprint dump. Memory accounting
	// (PeakMemoryBytes/PerStateBytes) is per-process and stays zero.
	Checker mc.Result
	// Round is the merged per-round report in the shape the controller's
	// budget policies Observe.
	Round mc.RoundReport
	// Stats sums the shards' frontier-exchange counters.
	Stats Stats
	// PerShard keeps each slot's raw report (telemetry; per-shard
	// expansion counts are scheduling-dependent).
	PerShard []ShardReport
	// Recovery is the round's fault-tolerance telemetry: deaths detected,
	// retries spent, and what the round finally ran on.
	Recovery RecoveryStats
}

// RunRound runs one distributed exhaustive round: split the budget, fan
// out, relay batches until quiescent, then collect and merge reports. A
// shard dying mid-round (connection error, Fault, or stall) aborts the
// attempt, repartitions over the survivors, and retries; only exhausting
// MaxRetries — or losing every shard with no local engine configured —
// surfaces as an error.
func (c *Coordinator) RunRound(b mc.Budget, recordStates bool) (*Result, error) {
	c.round++
	began := c.cfg.Now()
	var rec RecoveryStats
	for attempt := 1; ; attempt++ {
		c.adoptRejoins()
		assign := c.liveShards()
		if len(assign) == 0 {
			res, err := c.serialRound(b, recordStates, began)
			if err != nil {
				return nil, err
			}
			rec.SerialFallback = true
			res.Recovery = rec
			return res, nil
		}
		res, deaths, err := c.runAttempt(assign, b, recordStates, began, attempt)
		if err != nil {
			return nil, err
		}
		if deaths == nil {
			rec.FinalShards = len(assign)
			res.Recovery = rec
			return res, nil
		}
		rec.Deaths = append(rec.Deaths, deaths...)
		rec.Deaths = append(rec.Deaths, c.abortAttempt(assign, attempt)...)
		if rec.Retries >= c.cfg.MaxRetries {
			return nil, errorf("round %d: attempt %d lost %s and the retry budget (%d) is exhausted",
				c.round, attempt, deathSummary(deaths), c.cfg.MaxRetries)
		}
		rec.Retries++
	}
}

// runAttempt fans one round attempt out over assign (slot i → connection
// assign[i]) and relays until quiescent, then collects reports and merges.
// A non-nil deaths return means the attempt failed: the listed shards were
// declared dead and the caller must abort the survivors and retry. err is
// reserved for coordinator-side failures no retry can fix.
func (c *Coordinator) runAttempt(assign []int, b mc.Budget, recordStates bool, began time.Time, attempt int) (res *Result, deaths []ShardDeath, err error) {
	slots := len(assign)
	slotOf := make(map[int]int, slots)
	for s, id := range assign {
		slotOf[id] = s
	}
	shares := SplitBudget(b, slots)
	die := func(id int, cause string) {
		c.kill(id)
		deaths = append(deaths, ShardDeath{Shard: id, Round: c.round, Attempt: attempt, Cause: cause})
	}

	for s, id := range assign {
		start := RoundStart{Round: c.round, Slot: s, Slots: slots, Budget: shares[s], RecordStates: recordStates}
		if err := c.conns[id].Send(start); err != nil {
			die(id, "conn")
			return nil, deaths, nil
		}
	}

	q := newQuiescence(slots)
	for !q.quiescent() {
		a, ok := c.nextArrival()
		if !ok {
			for s, id := range assign {
				if c.live[id] && !q.settled[s] {
					die(id, "stall")
				}
			}
			return nil, deaths, nil
		}
		id := a.shard
		if !c.live[id] || a.conn != c.conns[id] {
			continue // stale arrival from a dead or replaced connection
		}
		if a.err != nil {
			die(id, "conn")
			return nil, deaths, nil
		}
		switch m := a.msg.(type) {
		case Batch:
			if m.To < 0 || m.To >= slots || slotOf[id] != m.From {
				die(id, "protocol")
				return nil, deaths, nil
			}
			q.relay(m.To)
			if err := c.conns[assign[m.To]].Send(m); err != nil {
				die(assign[m.To], "conn")
				return nil, deaths, nil
			}
		case Idle:
			if m.Shard != slotOf[id] {
				die(id, "protocol")
				return nil, deaths, nil
			}
			if err := q.idle(m.Shard, m.Received); err != nil {
				die(id, "protocol")
				return nil, deaths, nil
			}
		case Fault:
			die(id, "fault")
			return nil, deaths, nil
		default:
			die(id, "protocol")
			return nil, deaths, nil
		}
	}

	for _, id := range assign {
		if err := c.conns[id].Send(RoundEnd{}); err != nil {
			die(id, "conn")
			return nil, deaths, nil
		}
	}
	reports := make([]ShardReport, slots)
	reported := make([]bool, slots)
	for got := 0; got < slots; {
		a, ok := c.nextArrival()
		if !ok {
			for s, id := range assign {
				if c.live[id] && !reported[s] {
					die(id, "stall")
				}
			}
			return nil, deaths, nil
		}
		id := a.shard
		if !c.live[id] || a.conn != c.conns[id] {
			continue
		}
		if a.err != nil {
			die(id, "conn")
			return nil, deaths, nil
		}
		switch m := a.msg.(type) {
		case ShardReport:
			if m.Shard != slotOf[id] || reported[m.Shard] {
				die(id, "protocol")
				return nil, deaths, nil
			}
			reports[m.Shard] = m
			reported[m.Shard] = true
			got++
		case Fault:
			die(id, "fault")
			return nil, deaths, nil
		default:
			die(id, "protocol")
			return nil, deaths, nil
		}
	}
	res, err = c.merge(b, shares[0].Workers, reports, began)
	return res, nil, err
}

// abortAttempt tears a failed attempt down on the survivors of assign: each
// gets RoundAbort and must answer AbortAck. The ack is a FIFO barrier — the
// coordinator relays nothing during the abort, so once a shard's ack is in,
// no stale batch or idle from the aborted round can follow on that
// connection; anything arriving before the ack is discarded here. Survivors
// that error, fault, or stall during the abort die too (the retry loop will
// simply repartition over fewer shards). Returns the deaths it caused.
func (c *Coordinator) abortAttempt(assign []int, attempt int) (deaths []ShardDeath) {
	die := func(id int, cause string) {
		c.kill(id)
		deaths = append(deaths, ShardDeath{Shard: id, Round: c.round, Attempt: attempt, Cause: cause})
	}
	waiting := make(map[int]bool, len(assign))
	for _, id := range assign {
		if !c.live[id] {
			continue
		}
		if err := c.conns[id].Send(RoundAbort{Round: c.round}); err != nil {
			die(id, "conn")
			continue
		}
		waiting[id] = true
	}
	for len(waiting) > 0 {
		a, ok := c.nextArrival()
		if !ok {
			ids := make([]int, 0, len(waiting))
			for id := range waiting {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			for _, id := range ids {
				die(id, "stall")
			}
			return deaths
		}
		id := a.shard
		if !c.live[id] || a.conn != c.conns[id] || !waiting[id] {
			continue
		}
		if a.err != nil {
			die(id, "conn")
			delete(waiting, id)
			continue
		}
		switch m := a.msg.(type) {
		case AbortAck:
			if m.Shard != id || m.Round != c.round {
				die(id, "protocol")
			}
			delete(waiting, id)
		case Fault:
			die(id, "fault")
			delete(waiting, id)
		case Batch, Idle, ShardReport:
			// In-flight traffic from the aborted round racing the abort;
			// FIFO order guarantees it predates the ack. Discard.
		default:
			die(id, "protocol")
			delete(waiting, id)
		}
	}
	return deaths
}

// serialRound is the degradation floor: every shard is gone, so the round
// runs on the coordinator's local engine (cfg.Search / cfg.Root — the same
// pair wire-mode violation replay uses). The claimed-state and local-state
// sets match what the shards would have produced (the differential oracle's
// invariant); violations carry the serial engine's full paths.
func (c *Coordinator) serialRound(b mc.Budget, recordStates bool, began time.Time) (*Result, error) {
	if c.cfg.Search == nil || c.cfg.Root == nil {
		return nil, errorf("round %d: no live shards and no local engine to fall back to", c.round)
	}
	cfg := c.cfg.Search.Config()
	cfg.Mode = mc.Exhaustive
	cfg.Reduce = false
	cfg.Budget = b
	if cfg.Budget.Workers <= 0 {
		cfg.Budget.Workers = 1
	}
	cfg.RecordClaimedStates = recordStates
	cfg.RecordLocalStates = true
	r := mc.NewSearch(cfg).Run(c.cfg.Root)
	res := &Result{Checker: *r}
	res.Checker.Elapsed = c.cfg.Now().Sub(began)
	res.Round = mc.RoundReport{
		Budget:     b,
		States:     res.Checker.StatesExplored,
		Violations: len(res.Checker.Violations),
		Elapsed:    res.Checker.Elapsed,
	}
	return res, nil
}

// deathSummary renders an attempt's deaths for error text.
func deathSummary(deaths []ShardDeath) string {
	parts := make([]string, len(deaths))
	for i, d := range deaths {
		parts[i] = fmt.Sprintf("%d (%s)", d.Shard, d.Cause)
	}
	return "shard(s) " + strings.Join(parts, ", ")
}

// merge folds the shard reports into the single result/round-report pair.
func (c *Coordinator) merge(planned mc.Budget, workers int, reports []ShardReport, began time.Time) (*Result, error) {
	res := &Result{PerShard: reports}
	var claimed, locals []uint64
	recorded := false
	for i := range reports {
		r := &reports[i]
		res.Checker.StatesExplored += int(r.States)
		res.Checker.Transitions += int(r.Transitions)
		if int(r.MaxDepth) > res.Checker.MaxDepthReached {
			res.Checker.MaxDepthReached = int(r.MaxDepth)
		}
		res.Stats.add(r.Stats)
		locals = append(locals, r.Locals...)
		if r.Claimed != nil {
			recorded = true
			claimed = append(claimed, r.Claimed...)
		}
	}
	// Hash ranges partition the space, so claimed sets are disjoint;
	// locals overlap and need deduplication.
	locals = sortDedup(locals)
	res.Checker.DistinctLocalStates = len(locals)
	if recorded {
		sort.Slice(claimed, func(i, j int) bool { return claimed[i] < claimed[j] })
		res.Checker.ClaimedStates = claimed
	}
	res.Checker.Workers = workers
	res.Checker.Elapsed = c.cfg.Now().Sub(began)

	vios, err := c.mergeViolations(reports)
	if err != nil {
		return nil, err
	}
	res.Checker.Violations = vios

	res.Round = mc.RoundReport{
		Budget:     planned,
		States:     res.Checker.StatesExplored,
		Violations: len(vios),
		Elapsed:    res.Checker.Elapsed,
	}
	return res, nil
}

// mergeViolations deduplicates across shards by violated-property set,
// keeping the minimal (depth, state hash) representative — the same rule
// each shard applies locally — and materializes paths.
func (c *Coordinator) mergeViolations(reports []ShardReport) ([]mc.Violation, error) {
	bySig := make(map[string]int)
	var kept []Violation
	for i := range reports {
		for _, v := range reports[i].Violations {
			sig := strings.Join(v.Props, "|")
			j, seen := bySig[sig]
			if !seen {
				bySig[sig] = len(kept)
				kept = append(kept, v)
				continue
			}
			old := kept[j]
			if v.Depth < old.Depth || (v.Depth == old.Depth && v.StateHash < old.StateHash) {
				kept[j] = v
			}
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Depth != kept[j].Depth {
			return kept[i].Depth < kept[j].Depth
		}
		if kept[i].StateHash != kept[j].StateHash {
			return kept[i].StateHash < kept[j].StateHash
		}
		return strings.Join(kept[i].Props, "|") < strings.Join(kept[j].Props, "|")
	})
	out := make([]mc.Violation, len(kept))
	for i, v := range kept {
		path := v.events
		if path == nil && len(v.Path) > 0 && c.cfg.Search != nil && c.cfg.Root != nil {
			var err error
			path, _, err = replayDescs(c.cfg.Search, c.replayExpander(), c.replayScratch(), c.cfg.Root, v.Path, true)
			if err != nil {
				return nil, errorf("materializing violation path: %w", err)
			}
		}
		out[i] = mc.Violation{
			Properties: v.Props,
			Path:       path,
			StateHash:  v.StateHash,
			Depth:      int(v.Depth),
		}
	}
	return out, nil
}

// replayExpander / replayScratch lazily build the coordinator's replay
// workspace (only wire-mode sessions with violations ever need one).
func (c *Coordinator) replayExpander() *mc.Expander {
	if c.exp == nil {
		c.exp = c.cfg.Search.NewExpander()
	}
	return c.exp
}

func (c *Coordinator) replayScratch() *sm.Encoder {
	if c.enc == nil {
		c.enc = sm.NewEncoder()
	}
	return c.enc
}

// SplitBudget divides a round's budget across n shards: States and
// Transitions split near-evenly (low shards take the remainder); Depth and
// Wall bound each shard identically; Workers is the per-shard worker
// count; Violations gives every shard the full quota — the merged report
// deduplicates, so a distributed round may record up to n× the quota
// before all shards halt (quota rounds trade exactness for an early stop,
// as the serial engine's do under >1 worker).
func SplitBudget(b mc.Budget, n int) []mc.Budget {
	shares := make([]mc.Budget, n)
	for i := range shares {
		s := b
		s.States = splitShare(b.States, i, n)
		s.Transitions = splitShare(b.Transitions, i, n)
		shares[i] = s
	}
	return shares
}

func splitShare(total, i, n int) int {
	if total == 0 {
		return 0
	}
	q, r := total/n, total%n
	if i < r {
		return q + 1
	}
	return q
}

// sortDedup sorts hs and removes duplicates in place.
func sortDedup(hs []uint64) []uint64 {
	if len(hs) == 0 {
		return hs
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	out := hs[:1]
	for _, h := range hs[1:] {
		if h != out[len(out)-1] {
			out = append(out, h)
		}
	}
	return out
}
