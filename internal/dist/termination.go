package dist

// Credit-counted quiescence detection, the hub variant of Safra-style
// termination counting. Classic Safra circulates a token accumulating
// send/receive counts because no process sees global traffic; here the
// star topology means the coordinator relays — and therefore counts —
// every batch itself, so no probe rounds are needed.
//
// The coordinator keeps, per shard i, the number of batches it has relayed
// *to* i this round. A shard sends Idle{Received: r} after every drain,
// where r counts the batches it has processed. Shard i is settled when its
// latest Idle matches the relay count exactly and nothing was relayed to it
// since. The round is quiescent when every shard is settled:
//
//   - settled(i) means shard i has processed every batch the coordinator
//     ever sent it (credits repaid) and, having sent Idle after that
//     processing, has drained its frontier and flushed its outgoing
//     batches on the same FIFO connection *before* the Idle — so any batch
//     it generated has already reached the coordinator and bumped some
//     relay count, un-settling the destination.
//   - hence all settled ⇒ no batch is queued at any shard, in flight in
//     either direction, or pending relay ⇒ no shard can ever become
//     non-idle again. The round has terminated.
//
// Correctness leans only on per-connection FIFO order (both transports
// provide it) and on every batch being hub-relayed (the topology).
type quiescence struct {
	relayed []int64 // batches relayed to shard i this round
	settled []bool  // shard i's latest Idle matched relayed[i]
}

func newQuiescence(shards int) *quiescence {
	return &quiescence{
		relayed: make([]int64, shards),
		settled: make([]bool, shards),
	}
}

// relay records a batch relayed to shard `to`, un-settling it until a fresh
// matching Idle arrives.
func (q *quiescence) relay(to int) {
	q.relayed[to]++
	q.settled[to] = false
}

// idle folds shard i's idle report in. A stale report (received below the
// relay count) leaves the shard unsettled; an overshoot is a protocol bug.
func (q *quiescence) idle(shard int, received int64) error {
	if received > q.relayed[shard] {
		return errorf("shard %d reports %d batches received, only %d relayed", shard, received, q.relayed[shard])
	}
	q.settled[shard] = received == q.relayed[shard]
	return nil
}

// quiescent reports whether every shard is settled: the round has
// terminated and RoundEnd may be sent.
func (q *quiescence) quiescent() bool {
	for _, s := range q.settled {
		if !s {
			return false
		}
	}
	return true
}
