package dist

import "time"

// Failure detection for the TCP control plane. The design splits into two
// transport-level mechanisms that together bound detection latency without
// touching the round protocol:
//
//   - every connection emits a Ping frame each heartbeat interval from a
//     dedicated writer goroutine, so a healthy peer produces traffic even
//     while its protocol loop is deep in an expansion bucket;
//   - every read is armed with a deadline of PeerTimeout: if no frame (Ping
//     included) arrives for that long, the connection is declared dead and
//     all pending and future Recvs fail.
//
// A crashed process, a severed link, or a machine wedged hard enough to
// stop its transport goroutines is therefore detected within PeerTimeout.
// An application-level wedge (transport alive, protocol silent) is the
// coordinator's job: see CoordinatorConfig.StallTimeout.
//
// All clock access is injected (Now/After value references), so the package
// stays inside crystalvet's walltime discipline and the detector is
// testable with a fake clock.

// DefaultPeerTimeout is the silence window after which a TCP peer is
// declared dead when TCPOptions leave PeerTimeout zero.
const DefaultPeerTimeout = 10 * time.Second

// TCPOptions parameterise failure detection on one framed TCP connection.
// The zero value gets DefaultPeerTimeout with a heartbeat at a quarter of
// it — safe for production; tests shrink PeerTimeout to keep failure cases
// fast. A negative PeerTimeout disables deadlines and heartbeats entirely
// (the pre-fault-tolerance behavior; useful to reproduce hangs in tests).
type TCPOptions struct {
	// PeerTimeout bounds peer silence: reads are armed with this deadline
	// and writes must complete within it. 0 = DefaultPeerTimeout,
	// negative = disabled.
	PeerTimeout time.Duration
	// Heartbeat is the Ping emission interval; it must be comfortably
	// below PeerTimeout or healthy idle connections get declared dead
	// (0 = PeerTimeout / 4).
	Heartbeat time.Duration
	// Now is the injected wall clock (nil = time.Now).
	Now func() time.Time
	// After is the injected timer (nil = time.After).
	After func(time.Duration) <-chan time.Time
}

// resolved fills the defaults in.
func (o TCPOptions) resolved() TCPOptions {
	if o.PeerTimeout == 0 {
		o.PeerTimeout = DefaultPeerTimeout
	}
	if o.Heartbeat == 0 && o.PeerTimeout > 0 {
		o.Heartbeat = o.PeerTimeout / 4
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.After == nil {
		o.After = time.After
	}
	return o
}

// disabled reports whether failure detection is switched off.
func (o TCPOptions) disabled() bool { return o.PeerTimeout < 0 }

// heartbeatLoop emits Pings until the connection stops. Runs as a
// goroutine owned by tcpConn; Send serialises with protocol writes through
// the connection's write lock, so Pings interleave cleanly with frames.
func (c *tcpConn) heartbeatLoop() {
	for {
		select {
		case <-c.stop:
			return
		case <-c.opt.After(c.opt.Heartbeat):
			if err := c.Send(Ping{}); err != nil {
				return
			}
		}
	}
}
