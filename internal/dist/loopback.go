package dist

import (
	"errors"
	"sync"
)

// In-process transport: a pair of unbounded FIFO queues. Unbounded matters —
// Send never blocks, so two shards exchanging large batches through the hub
// cannot deadlock, and the shard loop's TryRecv greediness works without a
// window protocol. Messages are passed by value (no encoding), which is what
// lets in-process forwards carry pointers into the sender's path tree.

// ErrClosed is returned by Conn operations after the peer (or this side)
// closed the connection and the queue has drained.
var ErrClosed = errors.New("dist: connection closed")

type msgQueue struct {
	mu    sync.Mutex
	cond  sync.Cond
	items []Msg
	head  int
	err   error // non-nil once closed; returned after the queue drains
}

func newMsgQueue() *msgQueue {
	q := &msgQueue{}
	q.cond.L = &q.mu
	return q
}

func (q *msgQueue) put(m Msg) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return q.err
	}
	q.items = append(q.items, m)
	q.cond.Signal()
	return nil
}

// pop removes the head item; callers hold q.mu and have checked non-empty.
func (q *msgQueue) pop() Msg {
	m := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return m
}

func (q *msgQueue) get() (Msg, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && q.err == nil {
		q.cond.Wait()
	}
	if q.head < len(q.items) {
		return q.pop(), nil
	}
	return nil, q.err
}

func (q *msgQueue) tryGet() (Msg, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head < len(q.items) {
		return q.pop(), true, nil
	}
	if q.err != nil {
		return nil, false, q.err
	}
	return nil, false, nil
}

// close fails the queue with err (nil = ErrClosed); readers drain queued
// messages first.
func (q *msgQueue) close(err error) {
	if err == nil {
		err = ErrClosed
	}
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

type loopConn struct {
	in, out *msgQueue
}

// Pipe returns the two ends of an in-process connection. Closing either end
// closes both directions; the peer drains already-queued messages and then
// sees ErrClosed.
func Pipe() (Conn, Conn) {
	a, b := newMsgQueue(), newMsgQueue()
	return &loopConn{in: a, out: b}, &loopConn{in: b, out: a}
}

func (c *loopConn) Send(m Msg) error            { return c.out.put(m) }
func (c *loopConn) Recv() (Msg, error)          { return c.in.get() }
func (c *loopConn) TryRecv() (Msg, bool, error) { return c.in.tryGet() }

func (c *loopConn) Close() error {
	c.in.close(nil)
	c.out.close(nil)
	return nil
}
