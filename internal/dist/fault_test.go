package dist

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
)

func chordStart(t *testing.T) (*mc.GState, mc.Config) {
	t.Helper()
	g, cfg, err := scenario.InitialState("chord", scenario.Options{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = mc.Exhaustive
	cfg.Seed = 42
	return g, cfg
}

// dropShardSession wires a real shard 0 and a "shard" 1 that accepts the
// round start and then drops its connection — the simplest mid-round death.
func dropShardSession(t *testing.T, g *mc.GState, cfg mc.Config) ([]Conn, chan error) {
	t.Helper()
	hub0, side0 := Pipe()
	hub1, side1 := Pipe()
	done := make(chan error, 1)
	go func() {
		done <- RunShard(side0, ShardConfig{Index: 0, Shards: 2, Search: cfg, Root: g})
	}()
	go func() {
		if _, err := side1.Recv(); err != nil { // RoundStart
			return
		}
		side1.Close()
	}()
	return []Conn{hub0, hub1}, done
}

// TestShardDropMidRound pins the recovery tentpole: a shard whose
// connection dies mid-round is declared dead, the round is aborted on the
// survivor, repartitioned over it alone, and retried to completion — with
// a claimed-state set identical to the serial engine's, and the death and
// retry on the recovery telemetry. Promptly, not as a hang (the test would
// time out).
func TestShardDropMidRound(t *testing.T) {
	g, cfg := chordStart(t)
	serialCfg := cfg
	serialCfg.Budget = mc.Budget{Depth: 5, Workers: 1}
	serialCfg.RecordClaimedStates = true
	serial := mc.NewSearch(serialCfg).Run(g)

	conns, done := dropShardSession(t, g, cfg)
	coord := NewCoordinator(conns, CoordinatorConfig{})
	res, err := coord.RunRound(mc.Budget{Depth: 5, Workers: 1}, true)
	if err != nil {
		t.Fatalf("round did not recover from the dropped shard: %v", err)
	}
	coord.Shutdown()
	if serr := <-done; serr != nil && serr != ErrClosed {
		t.Errorf("surviving shard exited with: %v", serr)
	}
	if res.Recovery.Retries != 1 || res.Recovery.FinalShards != 1 || res.Recovery.SerialFallback {
		t.Errorf("recovery = %q, want 1 retry finishing on 1 shard", res.Recovery.String())
	}
	if len(res.Recovery.Deaths) != 1 || res.Recovery.Deaths[0] != (ShardDeath{Shard: 1, Round: 1, Attempt: 1, Cause: "conn"}) {
		t.Errorf("deaths = %+v, want shard 1 conn death in attempt 1", res.Recovery.Deaths)
	}
	if !reflect.DeepEqual(res.Checker.ClaimedStates, serial.ClaimedStates) {
		t.Errorf("recovered claimed set diverges from serial (%d vs %d states)",
			len(res.Checker.ClaimedStates), len(serial.ClaimedStates))
	}
	if res.Checker.DistinctLocalStates != serial.DistinctLocalStates {
		t.Errorf("recovered DistinctLocalStates=%d, serial %d",
			res.Checker.DistinctLocalStates, serial.DistinctLocalStates)
	}
}

// TestShardDropRetryExhausted pins the bound: with retries disabled the
// same death is a round error naming the dead shard, and the session still
// shuts down cleanly (the abort barrier left the survivor consistent).
func TestShardDropRetryExhausted(t *testing.T) {
	g, cfg := chordStart(t)
	conns, done := dropShardSession(t, g, cfg)
	coord := NewCoordinator(conns, CoordinatorConfig{MaxRetries: -1})
	_, err := coord.RunRound(mc.Budget{Depth: 5, Workers: 1}, false)
	if err == nil {
		t.Fatalf("round with retries disabled reported success")
	}
	if !strings.Contains(err.Error(), "shard(s) 1 (conn)") {
		t.Errorf("error does not name the dropped shard: %v", err)
	}
	coord.Shutdown()
	if serr := <-done; serr != nil && serr != ErrClosed {
		t.Errorf("surviving shard exited with: %v", serr)
	}
}

// TestShardFaultSurfaces pins the other fault path: a shard that hits an
// internal error reports a Fault message and the coordinator aborts the
// round with it.
func TestShardFaultSurfaces(t *testing.T) {
	g, cfg := chordStart(t)
	hub0, side0 := Pipe()
	done := make(chan error, 1)
	go func() {
		done <- RunShard(side0, ShardConfig{Index: 0, Shards: 1, Search: cfg, Root: g})
	}()
	// Drive the shard directly: a batch carrying a corrupt forwarded state
	// (no node, no path) trips the shard's ingest validation.
	if err := hub0.Send(RoundStart{Round: 1, Budget: mc.Budget{Depth: 2, Workers: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := hub0.Send(Batch{From: 0, To: 0, States: []ForwardState{{Hash: 1, Depth: 1}}}); err != nil {
		t.Fatal(err)
	}
	sawFault := false
	for {
		m, err := hub0.Recv()
		if err != nil {
			break
		}
		if f, ok := m.(Fault); ok {
			sawFault = true
			if !strings.Contains(f.Err, "no path") && !strings.Contains(f.Err, "outside owned range") {
				t.Errorf("unexpected fault text: %s", f.Err)
			}
			break
		}
	}
	if !sawFault {
		t.Fatalf("shard never surfaced a Fault for the corrupt batch")
	}
	if serr := <-done; serr == nil {
		t.Errorf("faulting shard exited cleanly")
	}
	hub0.Close()
}

// TestStallTimeoutDeclaresDead pins the application-level wedge detector:
// a shard whose transport stays healthy but whose protocol loop never
// answers (accepts the round start, then silence) is declared dead after
// StallTimeout, and the round recovers on the survivor.
func TestStallTimeoutDeclaresDead(t *testing.T) {
	g, cfg := chordStart(t)
	serialCfg := cfg
	serialCfg.Budget = mc.Budget{Depth: 4, Workers: 1}
	serialCfg.RecordClaimedStates = true
	serial := mc.NewSearch(serialCfg).Run(g)

	hub0, side0 := Pipe()
	hub1, side1 := Pipe()
	done := make(chan error, 1)
	go func() {
		done <- RunShard(side0, ShardConfig{Index: 0, Shards: 2, Search: cfg, Root: g})
	}()
	go func() {
		// Wedged: swallow everything, answer nothing, keep the conn open.
		for {
			if _, err := side1.Recv(); err != nil {
				return
			}
		}
	}()

	coord := NewCoordinator([]Conn{hub0, hub1}, CoordinatorConfig{StallTimeout: time.Second})
	res, err := coord.RunRound(mc.Budget{Depth: 4, Workers: 1}, true)
	if err != nil {
		t.Fatalf("round did not recover from the wedged shard: %v", err)
	}
	coord.Shutdown()
	if serr := <-done; serr != nil && serr != ErrClosed {
		t.Errorf("surviving shard exited with: %v", serr)
	}
	var stalled bool
	for _, d := range res.Recovery.Deaths {
		if d.Shard == 1 && d.Cause == "stall" {
			stalled = true
		}
	}
	if !stalled {
		t.Errorf("wedged shard not recorded as a stall death: %q", res.Recovery.String())
	}
	if res.Recovery.Retries < 1 || res.Recovery.FinalShards != 1 {
		t.Errorf("recovery = %q, want a retry finishing on 1 shard", res.Recovery.String())
	}
	if !reflect.DeepEqual(res.Checker.ClaimedStates, serial.ClaimedStates) {
		t.Errorf("recovered claimed set diverges from serial (%d vs %d states)",
			len(res.Checker.ClaimedStates), len(serial.ClaimedStates))
	}
}

// TestSerialFallback pins the degradation floor: when every shard dies, the
// coordinator finishes the round on its local engine and the claimed set is
// still exactly the serial engine's.
func TestSerialFallback(t *testing.T) {
	g, cfg := chordStart(t)
	serialCfg := cfg
	serialCfg.Budget = mc.Budget{Depth: 4, Workers: 1}
	serialCfg.RecordClaimedStates = true
	serial := mc.NewSearch(serialCfg).Run(g)

	// Both "shards" take the round start and drop dead.
	var conns []Conn
	for i := 0; i < 2; i++ {
		hub, side := Pipe()
		conns = append(conns, hub)
		go func(side Conn) {
			if _, err := side.Recv(); err != nil {
				return
			}
			side.Close()
		}(side)
	}
	coord := NewCoordinator(conns, CoordinatorConfig{Search: mc.NewSearch(cfg), Root: g})
	res, err := coord.RunRound(mc.Budget{Depth: 4, Workers: 1}, true)
	if err != nil {
		t.Fatalf("round did not fall back to serial: %v", err)
	}
	coord.Shutdown()
	if !res.Recovery.SerialFallback || res.Recovery.FinalShards != 0 {
		t.Errorf("recovery = %q, want a serial fallback", res.Recovery.String())
	}
	if len(res.Recovery.Deaths) != 2 {
		t.Errorf("deaths = %+v, want both shards dead", res.Recovery.Deaths)
	}
	if !reflect.DeepEqual(res.Checker.ClaimedStates, serial.ClaimedStates) {
		t.Errorf("fallback claimed set diverges from serial (%d vs %d states)",
			len(res.Checker.ClaimedStates), len(serial.ClaimedStates))
	}
	if res.Round.States != res.Checker.StatesExplored {
		t.Errorf("round report states %d != checker states %d", res.Round.States, res.Checker.StatesExplored)
	}

	// Without a local engine the same cascade is an error, not a hang.
	conns = nil
	for i := 0; i < 2; i++ {
		hub, side := Pipe()
		conns = append(conns, hub)
		go func(side Conn) {
			if _, err := side.Recv(); err != nil {
				return
			}
			side.Close()
		}(side)
	}
	coord = NewCoordinator(conns, CoordinatorConfig{})
	if _, err := coord.RunRound(mc.Budget{Depth: 4, Workers: 1}, false); err == nil ||
		!strings.Contains(err.Error(), "no live shards") {
		t.Errorf("zero survivors without an engine: %v", err)
	}
	coord.Shutdown()
}

// TestLocalMatchesSerial is the package-local smoke version of the
// scenario differential oracle (which covers every registered scenario).
func TestLocalMatchesSerial(t *testing.T) {
	g, cfg := chordStart(t)
	cfg.Budget = mc.Budget{Depth: 4, Workers: 1}
	cfg.RecordClaimedStates = true
	serial := mc.NewSearch(cfg).Run(g)

	res, err := Local(LocalConfig{
		Shards:       2,
		Search:       cfg,
		Root:         g,
		Budget:       mc.Budget{Depth: 4, Workers: 1},
		RecordStates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Checker.ClaimedStates), len(serial.ClaimedStates); got != want {
		t.Fatalf("claimed %d states, serial claimed %d", got, want)
	}
	for i, h := range res.Checker.ClaimedStates {
		if serial.ClaimedStates[i] != h {
			t.Fatalf("claimed set diverges at %d", i)
		}
	}
	if res.Stats.StatesForwarded == 0 || res.Stats.BatchFlushes == 0 {
		t.Errorf("two shards exchanged no states: %+v", res.Stats)
	}
	if res.Round.States != res.Checker.StatesExplored {
		t.Errorf("round report states %d != checker states %d", res.Round.States, res.Checker.StatesExplored)
	}
}
