package dist

import (
	"strings"
	"testing"

	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
)

func chordStart(t *testing.T) (*mc.GState, mc.Config) {
	t.Helper()
	g, cfg, err := scenario.InitialState("chord", scenario.Options{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = mc.Exhaustive
	cfg.Seed = 42
	return g, cfg
}

// TestShardDropMidRound pins the transport-fault satellite: a shard whose
// connection dies mid-round must surface as a round error at the
// coordinator — promptly, not as a hang (the test would time out).
func TestShardDropMidRound(t *testing.T) {
	g, cfg := chordStart(t)

	// Shard 0 is real; "shard" 1 accepts the round start and then drops.
	hub0, side0 := Pipe()
	hub1, side1 := Pipe()
	done := make(chan error, 1)
	go func() {
		done <- RunShard(side0, ShardConfig{Index: 0, Shards: 2, Search: cfg, Root: g})
	}()
	go func() {
		if _, err := side1.Recv(); err != nil { // RoundStart
			return
		}
		side1.Close()
	}()

	coord := NewCoordinator([]Conn{hub0, hub1}, CoordinatorConfig{})
	_, err := coord.RunRound(mc.Budget{Depth: 5, Workers: 1}, false)
	if err == nil {
		t.Fatalf("round with a dropped shard reported success")
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("error does not name the dropped shard: %v", err)
	}
	coord.Shutdown()
	if serr := <-done; serr != nil && serr != ErrClosed {
		t.Errorf("surviving shard exited with: %v", serr)
	}
}

// TestShardFaultSurfaces pins the other fault path: a shard that hits an
// internal error reports a Fault message and the coordinator aborts the
// round with it.
func TestShardFaultSurfaces(t *testing.T) {
	g, cfg := chordStart(t)
	hub0, side0 := Pipe()
	done := make(chan error, 1)
	go func() {
		done <- RunShard(side0, ShardConfig{Index: 0, Shards: 1, Search: cfg, Root: g})
	}()
	// Drive the shard directly: a batch carrying a corrupt forwarded state
	// (no node, no path) trips the shard's ingest validation.
	if err := hub0.Send(RoundStart{Round: 1, Budget: mc.Budget{Depth: 2, Workers: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := hub0.Send(Batch{From: 0, To: 0, States: []ForwardState{{Hash: 1, Depth: 1}}}); err != nil {
		t.Fatal(err)
	}
	sawFault := false
	for {
		m, err := hub0.Recv()
		if err != nil {
			break
		}
		if f, ok := m.(Fault); ok {
			sawFault = true
			if !strings.Contains(f.Err, "no path") && !strings.Contains(f.Err, "outside owned range") {
				t.Errorf("unexpected fault text: %s", f.Err)
			}
			break
		}
	}
	if !sawFault {
		t.Fatalf("shard never surfaced a Fault for the corrupt batch")
	}
	if serr := <-done; serr == nil {
		t.Errorf("faulting shard exited cleanly")
	}
	hub0.Close()
}

// TestLocalMatchesSerial is the package-local smoke version of the
// scenario differential oracle (which covers every registered scenario).
func TestLocalMatchesSerial(t *testing.T) {
	g, cfg := chordStart(t)
	cfg.Budget = mc.Budget{Depth: 4, Workers: 1}
	cfg.RecordClaimedStates = true
	serial := mc.NewSearch(cfg).Run(g)

	res, err := Local(LocalConfig{
		Shards:       2,
		Search:       cfg,
		Root:         g,
		Budget:       mc.Budget{Depth: 4, Workers: 1},
		RecordStates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Checker.ClaimedStates), len(serial.ClaimedStates); got != want {
		t.Fatalf("claimed %d states, serial claimed %d", got, want)
	}
	for i, h := range res.Checker.ClaimedStates {
		if serial.ClaimedStates[i] != h {
			t.Fatalf("claimed set diverges at %d", i)
		}
	}
	if res.Stats.StatesForwarded == 0 || res.Stats.BatchFlushes == 0 {
		t.Errorf("two shards exchanged no states: %+v", res.Stats)
	}
	if res.Round.States != res.Checker.StatesExplored {
		t.Errorf("round report states %d != checker states %d", res.Round.States, res.Checker.StatesExplored)
	}
}
