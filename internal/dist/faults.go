package dist

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Deterministic fault injection for the shard-merge protocol. A FaultPlan
// is a parsed schedule of transport faults — drop, delay, duplicate,
// corrupt, sever — that a test or operator wraps around shard connections
// (LocalConfig.Faults, mcheck -faults, shardd -faults). Faults trigger on
// (round, per-connection message count), never on the wall clock, and
// probabilistic rules draw from an RNG seeded by (plan seed, shard,
// direction), so the same spec and seed produce the identical fault
// sequence on every run — which is what lets the chaos differential oracle
// require byte-identical recovery telemetry.
//
// Spec grammar (comma-separated items):
//
//	spec  := item { ',' item }
//	item  := 'seed=' int | rule
//	rule  := [ dir ':' ] op '@' 's' shard [ 'r' round ] ( 'm' count | '~' prob )
//	dir   := 'send' | 'recv'                      (default recv)
//	op    := 'kill' | 'sever' | 'drop' | 'dup' | 'corrupt' | 'delay' int
//
// Directions are relative to the wrapping side: on the coordinator's wrap
// of shard i's connection, recv is traffic arriving *from* the shard and
// send is traffic going *to* it. Counts are 1-based per direction and reset
// at every RoundStart (retries restart the count); a counted rule fires at
// most once per session, a '~' rule draws per message. Omitting 'r' matches
// any round.
//
//	kill@s1r1m2        sever shard 1's connection at its 2nd message of round 1
//	send:dup@s0r1m3    duplicate the 3rd message sent to shard 0 in round 1
//	drop@s1~0.05       drop each message from shard 1 with probability 0.05
//	delay3@s0r2m1      hold shard 0's 1st message of round 2 behind the next 3
//
// 'kill' and 'sever' are aliases: both cut the connection. In process the
// shard goroutine then exits (a kill); over TCP the socket closes and a
// shardd worker survives to reconnect (a sever). 'corrupt' fires on the
// first Batch at or after the scheduled count and mangles one forwarded
// state so the receiver's validation trips loudly — exercising the
// Fault-message recovery path rather than silent divergence.
const faultSpecOps = "kill sever drop dup corrupt delayN" // for docs/tests

// fault directions.
const (
	dirRecv = 0
	dirSend = 1
)

// fault operations.
type faultOp int

const (
	opKill faultOp = iota
	opDrop
	opDup
	opCorrupt
	opDelay
)

func (o faultOp) String() string {
	switch o {
	case opKill:
		return "kill"
	case opDrop:
		return "drop"
	case opDup:
		return "dup"
	case opCorrupt:
		return "corrupt"
	default:
		return "delay"
	}
}

// faultRule is one parsed rule.
type faultRule struct {
	dir   int
	op    faultOp
	hold  int // opDelay: messages to hold behind
	shard int
	round int   // 0 = any round
	count int64 // 1-based trigger index; 0 = probabilistic
	prob  float64
}

// FaultPlan is a parsed, immutable fault schedule. Wrap installs it on a
// connection; the returned Conn carries the mutable trigger state, so one
// plan can arm many connections (and many sessions) independently.
type FaultPlan struct {
	Seed  int64
	rules []faultRule
}

// ParseFaultPlan parses the spec grammar above. An empty spec is a valid
// plan with no rules.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	p := &FaultPlan{Seed: 1}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if s, ok := strings.CutPrefix(item, "seed="); ok {
			n, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, errorf("fault spec: bad seed %q", s)
			}
			p.Seed = n
			continue
		}
		r, err := parseFaultRule(item)
		if err != nil {
			return nil, err
		}
		p.rules = append(p.rules, r)
	}
	return p, nil
}

// MustFaultPlan is ParseFaultPlan for compiled-in test specs.
func MustFaultPlan(spec string) *FaultPlan {
	p, err := ParseFaultPlan(spec)
	if err != nil {
		panic(err)
	}
	return p
}

func parseFaultRule(item string) (faultRule, error) {
	r := faultRule{dir: dirRecv}
	rest := item
	if s, ok := strings.CutPrefix(rest, "send:"); ok {
		r.dir, rest = dirSend, s
	} else if s, ok := strings.CutPrefix(rest, "recv:"); ok {
		r.dir, rest = dirRecv, s
	}
	opPart, target, ok := strings.Cut(rest, "@")
	if !ok {
		return r, errorf("fault spec: rule %q has no @target", item)
	}
	switch {
	case opPart == "kill" || opPart == "sever":
		r.op = opKill
	case opPart == "drop":
		r.op = opDrop
	case opPart == "dup":
		r.op = opDup
	case opPart == "corrupt":
		r.op = opCorrupt
	case strings.HasPrefix(opPart, "delay"):
		n, err := strconv.Atoi(opPart[len("delay"):])
		if err != nil || n <= 0 {
			return r, errorf("fault spec: %q needs a positive hold count (e.g. delay3)", opPart)
		}
		r.op, r.hold = opDelay, n
	default:
		return r, errorf("fault spec: unknown op %q (want %s)", opPart, faultSpecOps)
	}

	// target := 's' shard [ 'r' round ] ( 'm' count | '~' prob )
	if !strings.HasPrefix(target, "s") {
		return r, errorf("fault spec: target %q must start with s<shard>", target)
	}
	target = target[1:]
	readInt := func() (int64, bool) {
		i := strings.IndexAny(target, "rm~")
		var digits string
		if i < 0 {
			digits, target = target, ""
		} else {
			digits, target = target[:i], target[i:]
		}
		n, err := strconv.ParseInt(digits, 10, 64)
		return n, err == nil
	}
	n, ok2 := readInt()
	if !ok2 || n < 0 {
		return r, errorf("fault spec: bad shard in %q", item)
	}
	r.shard = int(n)
	if strings.HasPrefix(target, "r") {
		target = target[1:]
		n, ok2 = readInt()
		if !ok2 || n <= 0 {
			return r, errorf("fault spec: bad round in %q", item)
		}
		r.round = int(n)
	}
	switch {
	case strings.HasPrefix(target, "m"):
		n, err := strconv.ParseInt(target[1:], 10, 64)
		if err != nil || n <= 0 {
			return r, errorf("fault spec: bad message count in %q", item)
		}
		r.count = n
	case strings.HasPrefix(target, "~"):
		f, err := strconv.ParseFloat(target[1:], 64)
		if err != nil || f < 0 || f > 1 {
			return r, errorf("fault spec: bad probability in %q", item)
		}
		r.prob = f
	default:
		return r, errorf("fault spec: rule %q needs m<count> or ~<prob>", item)
	}
	return r, nil
}

// Rules reports how many rules target the given shard (telemetry/tests).
func (p *FaultPlan) Rules(shard int) int {
	n := 0
	for _, r := range p.rules {
		if r.shard == shard {
			n++
		}
	}
	return n
}

// Wrap arms the plan's rules for one shard's connection. Connections of
// shards no rule targets are returned unwrapped.
func (p *FaultPlan) Wrap(shard int, c Conn) Conn {
	if p == nil || p.Rules(shard) == 0 {
		return c
	}
	f := &faultConn{under: c, shard: shard}
	for _, r := range p.rules {
		if r.shard == shard {
			f.rules = append(f.rules, &armedRule{faultRule: r})
		}
	}
	for d := range f.dirs {
		f.dirs[d].rng = rand.New(rand.NewSource(p.Seed ^ int64(shard)*2654435761 ^ int64(d)<<32))
	}
	return f
}

// armedRule is one rule plus its spent flag (counted rules fire once).
type armedRule struct {
	faultRule
	spent bool
}

// heldMsg is a delayed message awaiting release.
type heldMsg struct {
	m   Msg
	due int64 // deliver once this many messages have passed
}

// dirState is one direction's mutable trigger state.
type dirState struct {
	count int64
	rng   *rand.Rand
	held  []heldMsg
}

// faultConn applies a shard's armed rules to every message crossing the
// wrapped connection. All state is guarded by mu: sends and receives run on
// different goroutines, and determinism needs each direction's count and
// RNG stream to advance atomically per message.
type faultConn struct {
	under Conn
	shard int
	mu    sync.Mutex
	round int
	rules []*armedRule
	dirs  [2]dirState
}

// observe advances one direction past msg and returns the action to take.
// Caller holds mu.
func (f *faultConn) observe(dir int, m Msg) (op faultOp, hold int, fired bool) {
	if rs, ok := m.(RoundStart); ok {
		// A new round (or a retry of one) restarts the per-round message
		// counts in both directions. RoundStart itself is never faulted:
		// it is the recovery path's own control message.
		f.round = rs.Round
		f.dirs[0].count, f.dirs[1].count = 0, 0
		return 0, 0, false
	}
	d := &f.dirs[dir]
	d.count++
	for _, r := range f.rules {
		if r.dir != dir || r.spent || (r.round != 0 && r.round != f.round) {
			continue
		}
		switch {
		case r.count > 0:
			// Corrupt waits for a Batch at or after its scheduled count;
			// everything else fires on the exact message.
			if r.op == opCorrupt {
				if _, isBatch := m.(Batch); !isBatch || d.count < r.count {
					continue
				}
			} else if d.count != r.count {
				continue
			}
			r.spent = true
			return r.op, r.hold, true
		case r.prob > 0:
			if d.rng.Float64() >= r.prob {
				continue
			}
			return r.op, r.hold, true
		}
	}
	return 0, 0, false
}

// corruptBatch deterministically mangles one forwarded state so the
// receiving shard's validation faults loudly: the state keeps its depth but
// loses both its path and its in-process node, and its fingerprint flips
// out of plausibility.
func corruptBatch(b Batch) Batch {
	states := make([]ForwardState, len(b.States))
	copy(states, b.States)
	if len(states) > 0 {
		states[0] = ForwardState{Hash: states[0].Hash ^ 1<<63, Depth: states[0].Depth}
	}
	b.States = states
	return b
}

// sever cuts the connection; the triggering message is lost with it.
func (f *faultConn) sever() error {
	_ = f.under.Close()
	return errorf("fault injection: severed connection of shard %d (round %d)", f.shard, f.round)
}

// dueHeld pops the earliest delayed message whose release point has
// passed. Caller holds mu.
func (f *faultConn) dueHeld(dir int) (Msg, bool) {
	d := &f.dirs[dir]
	for i, h := range d.held {
		if h.due <= d.count {
			d.held = append(d.held[:i], d.held[i+1:]...)
			return h.m, true
		}
	}
	return nil, false
}

func (f *faultConn) Send(m Msg) error {
	f.mu.Lock()
	op, hold, fired := f.observe(dirSend, m)
	if !fired {
		if held, ok := f.dueHeld(dirSend); ok {
			f.mu.Unlock()
			if err := f.under.Send(m); err != nil {
				return err
			}
			return f.under.Send(held)
		}
		f.mu.Unlock()
		return f.under.Send(m)
	}
	switch op {
	case opKill:
		defer f.mu.Unlock()
		return f.sever()
	case opDrop:
		f.mu.Unlock()
		return nil
	case opDup:
		f.mu.Unlock()
		if err := f.under.Send(m); err != nil {
			return err
		}
		return f.under.Send(m)
	case opCorrupt:
		f.mu.Unlock()
		return f.under.Send(corruptBatch(m.(Batch)))
	default: // opDelay
		d := &f.dirs[dirSend]
		d.held = append(d.held, heldMsg{m: m, due: d.count + int64(hold)})
		f.mu.Unlock()
		return nil
	}
}

func (f *faultConn) Recv() (Msg, error) {
	for {
		f.mu.Lock()
		if m, ok := f.dueHeld(dirRecv); ok {
			f.mu.Unlock()
			return m, nil
		}
		f.mu.Unlock()
		m, err := f.under.Recv()
		if err != nil {
			return nil, err
		}
		if m, ok, err := f.applyRecv(m); ok || err != nil {
			return m, err
		}
	}
}

func (f *faultConn) TryRecv() (Msg, bool, error) {
	for {
		f.mu.Lock()
		if m, ok := f.dueHeld(dirRecv); ok {
			f.mu.Unlock()
			return m, true, nil
		}
		f.mu.Unlock()
		m, ok, err := f.under.TryRecv()
		if err != nil || !ok {
			return nil, false, err
		}
		if m, ok, err := f.applyRecv(m); ok || err != nil {
			return m, ok, err
		}
	}
}

// applyRecv runs one received message through the rules; ok=false means the
// message was consumed (dropped or held) and the caller should poll again.
func (f *faultConn) applyRecv(m Msg) (Msg, bool, error) {
	f.mu.Lock()
	op, hold, fired := f.observe(dirRecv, m)
	if !fired {
		f.mu.Unlock()
		return m, true, nil
	}
	switch op {
	case opKill:
		defer f.mu.Unlock()
		return nil, false, f.sever()
	case opDrop:
		f.mu.Unlock()
		return nil, false, nil
	case opDup:
		d := &f.dirs[dirRecv]
		d.held = append(d.held, heldMsg{m: m, due: d.count})
		f.mu.Unlock()
		return m, true, nil
	case opCorrupt:
		f.mu.Unlock()
		return corruptBatch(m.(Batch)), true, nil
	default: // opDelay
		d := &f.dirs[dirRecv]
		d.held = append(d.held, heldMsg{m: m, due: d.count + int64(hold)})
		f.mu.Unlock()
		return nil, false, nil
	}
}

func (f *faultConn) Close() error { return f.under.Close() }

// TargetedShards lists the distinct shards the plan's rules touch, sorted —
// recovery tests use it to predict which connections can die.
func (p *FaultPlan) TargetedShards() []int {
	if p == nil {
		return nil
	}
	seen := map[int]bool{}
	for _, r := range p.rules {
		seen[r.shard] = true
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}
