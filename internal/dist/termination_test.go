package dist

import "testing"

// Credit-counting edge cases for the quiescence check. These are the
// sequences the fault-tolerance work makes reachable: relays landing after
// a sender's idle, duplicate idles from a shard that reconnected, and
// stale idles racing fresh relays.

// TestQuiescenceBatchAfterIdle: a shard that has idled is un-settled the
// moment another batch is relayed to it, and the round must not end until
// it repays the new credit.
func TestQuiescenceBatchAfterIdle(t *testing.T) {
	q := newQuiescence(2)
	if err := q.idle(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := q.idle(1, 0); err != nil {
		t.Fatal(err)
	}
	if !q.quiescent() {
		t.Fatalf("both shards idle with no relays: should be quiescent")
	}
	q.relay(0)
	if q.quiescent() {
		t.Fatalf("relay after idle did not un-settle the destination")
	}
	if err := q.idle(0, 1); err != nil {
		t.Fatal(err)
	}
	if !q.quiescent() {
		t.Fatalf("repaid credit did not settle the shard")
	}
}

// TestQuiescenceDuplicateIdle: a reconnect can replay the last idle report;
// a duplicate matching the relay count is harmless and keeps the shard
// settled.
func TestQuiescenceDuplicateIdle(t *testing.T) {
	q := newQuiescence(1)
	q.relay(0)
	for i := 0; i < 2; i++ {
		if err := q.idle(0, 1); err != nil {
			t.Fatalf("duplicate idle %d: %v", i, err)
		}
		if !q.quiescent() {
			t.Fatalf("duplicate idle %d un-settled the shard", i)
		}
	}
}

// TestQuiescenceStaleIdle: an idle that has not caught up with the relay
// count leaves the shard unsettled — it is a report from before the last
// relay, not evidence of quiescence.
func TestQuiescenceStaleIdle(t *testing.T) {
	q := newQuiescence(1)
	q.relay(0)
	q.relay(0)
	if err := q.idle(0, 1); err != nil {
		t.Fatal(err)
	}
	if q.quiescent() {
		t.Fatalf("stale idle settled the shard with a credit outstanding")
	}
	if err := q.idle(0, 2); err != nil {
		t.Fatal(err)
	}
	if !q.quiescent() {
		t.Fatalf("caught-up idle did not settle the shard")
	}
}

// TestQuiescenceOvershoot: a shard claiming more batches than were ever
// relayed to it is a protocol violation (or a corrupt frame that slipped
// through), never a quiescence state.
func TestQuiescenceOvershoot(t *testing.T) {
	q := newQuiescence(1)
	q.relay(0)
	if err := q.idle(0, 2); err == nil {
		t.Fatalf("overshoot accepted")
	}
	if q.quiescent() {
		t.Fatalf("overshoot settled the shard")
	}
}
