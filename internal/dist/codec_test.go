package dist

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/sm"
)

// sampleMsgs covers every protocol message type, with every field that can
// be non-zero populated.
func sampleMsgs() []Msg {
	path := []EventDesc{
		{Kind: 'M', From: 1, Node: 2, Name: "Join", Arg: 0xdeadbeef},
		{Kind: 'T', Node: 3, Name: "recovery"},
		{Kind: 'A', Node: 1, Name: "propose", Arg: 42},
		{Kind: 'R', Node: 2},
		{Kind: 'E', Node: 1, From: 3},
		{Kind: 'D', From: 2, Node: 1},
	}
	return []Msg{
		Hello{Shard: 1, Shards: 4},
		Setup{
			Scenario: "chord", Nodes: 5, Variant: "bug1", Fixed: true,
			Seed: -3, Resets: true, ConnBreaks: true, Workers: 2, BatchSize: 64,
		},
		RoundStart{
			Round: 3, Slot: 1, Slots: 4,
			Budget: mc.Budget{
				States: 1000, Depth: 12, Wall: 5 * time.Second,
				Violations: 8, Transitions: 9000, Workers: 2,
			},
			RecordStates: true,
		},
		Batch{From: 0, To: 1, States: []ForwardState{
			{Hash: 0x1234, Depth: 3, Path: path[:3]},
			{Hash: 0x5678, Depth: 6, Path: path},
		}},
		Idle{Shard: 2, Received: 17},
		RoundEnd{},
		ShardReport{
			Shard: 1, States: 400, Expansions: 390, Transitions: 2200,
			MaxDepth: 12, Exhausted: true,
			Violations: []Violation{
				{Props: []string{"ring", "safety"}, Depth: 4, StateHash: 0xabc, Path: path[:2]},
			},
			Stats:   Stats{StatesForwarded: 9, StatesReceived: 8, RemoteDeduped: 3, BatchFlushes: 2},
			Claimed: []uint64{1, 2, 3},
			Locals:  []uint64{7, 9},
		},
		Shutdown{},
		Fault{Shard: 3, Err: "boom"},
		Ping{},
		RoundAbort{Round: 2},
		AbortAck{Shard: 1, Round: 2},
	}
}

// TestDecodeRejectsInvalid pins that the decoder refuses structurally valid
// frames carrying out-of-range fields — loudly, not by truncating or
// clamping. (The fuzz harness found silent acceptance here once; these are
// the distilled regressions.)
func TestDecodeRejectsInvalid(t *testing.T) {
	bad := []Msg{
		Hello{Shard: -1, Shards: 4},
		Hello{Shard: 4, Shards: 4},
		Hello{Shard: 0, Shards: maxShards + 1},
		Setup{Scenario: "chord", Nodes: -1},
		Setup{Scenario: "chord", Workers: -2},
		RoundStart{Round: 0, Slot: 0, Slots: 1},
		RoundStart{Round: 1, Slot: -1, Slots: 2},
		RoundStart{Round: 1, Slot: 2, Slots: 2},
		RoundStart{Round: 1, Slot: 0, Slots: 0},
		RoundStart{Round: 1, Slot: 0, Slots: 1, Budget: mc.Budget{States: -5}},
		Batch{From: -1, To: 0},
		Batch{From: 0, To: maxShards},
		Idle{Shard: -2, Received: 0},
		Idle{Shard: 0, Received: -1},
		ShardReport{Shard: -1},
		ShardReport{Shard: 0, States: -4},
		RoundAbort{Round: -1},
		AbortAck{Shard: -1, Round: 1},
		AbortAck{Shard: 0, Round: 0},
	}
	for _, m := range bad {
		enc := sm.NewEncoder()
		if err := encodeMsg(enc, m); err != nil {
			// The encoder refusing is fine too, as long as somebody does.
			continue
		}
		if got, err := decodeMsg(sm.NewDecoder(enc.Bytes())); err == nil {
			t.Errorf("decode accepted invalid %#v as %#v", m, got)
		}
	}
}

// TestCodecRoundTrip pins that every message type survives
// encode → decode → encode byte-identically and value-identically.
func TestCodecRoundTrip(t *testing.T) {
	for _, m := range sampleMsgs() {
		enc := sm.NewEncoder()
		if err := encodeMsg(enc, m); err != nil {
			t.Fatalf("%T: encode: %v", m, err)
		}
		first := append([]byte(nil), enc.Bytes()...)
		got, err := decodeMsg(sm.NewDecoder(first))
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%T: decoded value diverges:\n got %#v\nwant %#v", m, got, m)
		}
		enc.Reset()
		if err := encodeMsg(enc, got); err != nil {
			t.Fatalf("%T: re-encode: %v", m, err)
		}
		if !bytes.Equal(enc.Bytes(), first) {
			t.Errorf("%T: re-encoded bytes differ", m)
		}
		if d := sm.NewDecoder(first); func() bool { _, err := decodeMsg(d); return err == nil && d.Remaining() != 0 }() {
			t.Errorf("%T: decode left %d trailing bytes", m, d.Remaining())
		}
	}
}

// TestLoopbackRoundTrip pins that the in-process transport delivers every
// message type unchanged, in order.
func TestLoopbackRoundTrip(t *testing.T) {
	a, b := Pipe()
	msgs := sampleMsgs()
	for _, m := range msgs {
		if err := a.Send(m); err != nil {
			t.Fatalf("send %T: %v", m, err)
		}
	}
	for _, want := range msgs {
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("loopback corrupted %T: got %#v", want, got)
		}
	}
	if _, ok, err := b.TryRecv(); ok || err != nil {
		t.Fatalf("queue should be empty: ok=%v err=%v", ok, err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != ErrClosed {
		t.Fatalf("recv after close: %v, want ErrClosed", err)
	}
}

// FuzzCodec feeds arbitrary bytes to the decoder; whatever decodes must
// re-encode byte-identically (the canonical-form property the satellite
// pins) and never panic.
func FuzzCodec(f *testing.F) {
	for _, m := range sampleMsgs() {
		enc := sm.NewEncoder()
		if err := encodeMsg(enc, m); err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), enc.Bytes()...))
	}
	f.Add([]byte{})
	f.Add([]byte{'B', 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeMsg(sm.NewDecoder(data))
		if err != nil {
			return
		}
		enc := sm.NewEncoder()
		if err := encodeMsg(enc, m); err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", m, err)
		}
		again, err := decodeMsg(sm.NewDecoder(enc.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", m, err)
		}
		enc2 := sm.NewEncoder()
		if err := encodeMsg(enc2, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
			t.Fatalf("%T: encode∘decode not idempotent", m)
		}
	})
}
