package dist

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"sync"

	"crystalball/internal/sm"
)

// Length-prefixed binary TCP transport: one frame per message,
// [uint32 big-endian length][kind byte + body], body encoded by
// transport.go's codec. Each connection runs a dedicated reader goroutine
// that pumps decoded frames into an unbounded queue, so the peer's writes
// always make progress regardless of what the application is doing —
// the same no-backpressure property the loopback transport has, which the
// deadlock-freedom of batch exchange relies on.

// maxFrame bounds a frame's body; a length above it means a corrupt or
// hostile stream.
const maxFrame = 64 << 20

// tcpConn adapts a net.Conn to the Conn interface.
type tcpConn struct {
	nc   net.Conn
	in   *msgQueue
	wmu  sync.Mutex
	enc  *sm.Encoder
	wbuf []byte
}

// WrapTCP frames msgs over nc and starts the reader pump. The returned
// Conn owns nc; Close closes it.
func WrapTCP(nc net.Conn) Conn {
	c := &tcpConn{nc: nc, in: newMsgQueue(), enc: sm.NewEncoder()}
	go c.readLoop()
	return c
}

// DialTCP connects to a coordinator or worker at addr.
func DialTCP(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return WrapTCP(nc), nil
}

func (c *tcpConn) readLoop() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			c.in.close(err)
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrame {
			c.in.close(errorf("tcp: bad frame length %d", n))
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			c.in.close(err)
			return
		}
		m, err := decodeMsg(sm.NewDecoder(body))
		if err != nil {
			c.in.close(err)
			return
		}
		if err := c.in.put(m); err != nil {
			return
		}
	}
}

func (c *tcpConn) Send(m Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.enc.Reset()
	if err := encodeMsg(c.enc, m); err != nil {
		return err
	}
	body := c.enc.Bytes()
	if len(body) > maxFrame {
		return errorf("tcp: message %T exceeds frame limit (%d bytes)", m, len(body))
	}
	c.wbuf = c.wbuf[:0]
	c.wbuf = binary.BigEndian.AppendUint32(c.wbuf, uint32(len(body)))
	c.wbuf = append(c.wbuf, body...)
	_, err := c.nc.Write(c.wbuf)
	return err
}

func (c *tcpConn) Recv() (Msg, error)          { return c.in.get() }
func (c *tcpConn) TryRecv() (Msg, bool, error) { return c.in.tryGet() }

func (c *tcpConn) Close() error {
	err := c.nc.Close()
	c.in.close(nil)
	return err
}
