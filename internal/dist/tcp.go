package dist

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"sync"

	"crystalball/internal/sm"
)

// Length-prefixed binary TCP transport: one frame per message,
// [uint32 big-endian length][kind byte + body], body encoded by
// transport.go's codec. Each connection runs a dedicated reader goroutine
// that pumps decoded frames into an unbounded queue, so the peer's writes
// always make progress regardless of what the application is doing —
// the same no-backpressure property the loopback transport has, which the
// deadlock-freedom of batch exchange relies on.
//
// Failure detection (heartbeat.go): unless disabled, every read is armed
// with a PeerTimeout deadline and a heartbeat writer keeps the outbound
// side warm, so a dead or severed peer surfaces as a connection error
// within the timeout instead of a silent hang. Handshake traffic (Hello,
// Setup) flows through the same wrapper and inherits the same deadlines —
// there is no unguarded read anywhere on the wire path.

// maxFrame bounds a frame's body; a length above it means a corrupt or
// hostile stream.
const maxFrame = 64 << 20

// tcpConn adapts a net.Conn to the Conn interface.
type tcpConn struct {
	nc       net.Conn
	opt      TCPOptions
	in       *msgQueue
	stop     chan struct{}
	stopOnce sync.Once
	wmu      sync.Mutex
	enc      *sm.Encoder
	wbuf     []byte
}

// WrapTCP frames msgs over nc, starts the reader pump and — unless opt
// disables failure detection — the heartbeat writer. The returned Conn
// owns nc; Close closes it.
func WrapTCP(nc net.Conn, opt TCPOptions) Conn {
	c := &tcpConn{
		nc:   nc,
		opt:  opt.resolved(),
		in:   newMsgQueue(),
		stop: make(chan struct{}),
		enc:  sm.NewEncoder(),
	}
	go c.readLoop()
	if !c.opt.disabled() {
		go c.heartbeatLoop()
	}
	return c
}

// DialTCP connects to a coordinator or worker at addr.
func DialTCP(addr string, opt TCPOptions) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return WrapTCP(nc, opt), nil
}

func (c *tcpConn) readLoop() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var hdr [4]byte
	for {
		// Arm the peer-silence deadline before every frame. The heartbeat
		// writer on the other side guarantees at least one frame per
		// Heartbeat interval from a healthy peer, so an expired deadline
		// means the peer (or the path to it) is gone.
		if !c.opt.disabled() {
			_ = c.nc.SetReadDeadline(c.opt.Now().Add(c.opt.PeerTimeout))
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			c.in.close(c.timeoutErr(err))
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrame {
			c.in.close(errorf("tcp: bad frame length %d", n))
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			c.in.close(c.timeoutErr(err))
			return
		}
		m, err := decodeMsg(sm.NewDecoder(body))
		if err != nil {
			c.in.close(err)
			return
		}
		// Heartbeats are transport-level liveness; arming the deadline
		// above already consumed their information.
		if _, isPing := m.(Ping); isPing {
			continue
		}
		if err := c.in.put(m); err != nil {
			return
		}
	}
}

// timeoutErr labels an expired read deadline as a detected peer failure so
// round errors name the cause instead of a bare i/o timeout.
func (c *tcpConn) timeoutErr(err error) error {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return errorf("tcp: peer silent for %v (declared dead): %w", c.opt.PeerTimeout, err)
	}
	return err
}

func (c *tcpConn) Send(m Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.enc.Reset()
	if err := encodeMsg(c.enc, m); err != nil {
		return err
	}
	body := c.enc.Bytes()
	if len(body) > maxFrame {
		return errorf("tcp: message %T exceeds frame limit (%d bytes)", m, len(body))
	}
	c.wbuf = c.wbuf[:0]
	c.wbuf = binary.BigEndian.AppendUint32(c.wbuf, uint32(len(body)))
	c.wbuf = append(c.wbuf, body...)
	if !c.opt.disabled() {
		_ = c.nc.SetWriteDeadline(c.opt.Now().Add(c.opt.PeerTimeout))
	}
	_, err := c.nc.Write(c.wbuf)
	return err
}

func (c *tcpConn) Recv() (Msg, error)          { return c.in.get() }
func (c *tcpConn) TryRecv() (Msg, bool, error) { return c.in.tryGet() }

func (c *tcpConn) Close() error {
	c.stopOnce.Do(func() { close(c.stop) })
	err := c.nc.Close()
	c.in.close(nil)
	return err
}
