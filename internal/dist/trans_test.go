package dist

import (
	"testing"

	"crystalball/internal/mc"
)

// TestUnbudgetedCountersTick pins that the expansion and transition
// counters tick even when the budget leaves them unlimited (a
// short-circuit around the atomic add once silently zeroed both).
func TestUnbudgetedCountersTick(t *testing.T) {
	g, cfg := chordStart(t)
	res, err := Local(LocalConfig{
		Shards: 2,
		Search: cfg,
		Root:   g,
		Budget: mc.Budget{Depth: 4, Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checker.Transitions == 0 {
		t.Errorf("merged transition count is zero")
	}
	for _, r := range res.PerShard {
		if r.States > 0 && r.Expansions == 0 {
			t.Errorf("shard %d claimed %d states but reports zero expansions", r.Shard, r.States)
		}
	}
}
