package dist

import (
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"crystalball/internal/mc"
)

// TestTCPSmoke runs a two-shard search over real TCP sockets on loopback
// and checks the claimed-state set against the serial engine. Wire mode
// exercises the parts the in-process transport skips: codec framing, path
// materialization on forward, and replay-with-hash-verification on ingest.
func TestTCPSmoke(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer ln.Close()

	g, cfg := chordStart(t)
	cfg.RecordClaimedStates = true
	serialCfg := cfg
	serialCfg.Budget = mc.Budget{Depth: 4, Workers: 1}
	serial := mc.NewSearch(serialCfg).Run(g)

	const shards = 2
	shardErrs := make(chan error, shards)
	for i := 0; i < shards; i++ {
		i := i
		go func() {
			conn, err := DialTCP(ln.Addr().String(), TCPOptions{})
			if err != nil {
				shardErrs <- err
				return
			}
			if err := conn.Send(Hello{Shard: i, Shards: shards}); err != nil {
				shardErrs <- err
				return
			}
			shardErrs <- RunShard(conn, ShardConfig{
				Index: i, Shards: shards, Search: cfg, Root: g, BatchSize: 8,
			})
		}()
	}
	// Accept order is not dial order: each worker's Hello names its slot.
	conns := make([]Conn, shards)
	for i := 0; i < shards; i++ {
		nc, err := ln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		conn := WrapTCP(nc, TCPOptions{})
		m, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		h, ok := m.(Hello)
		if !ok || h.Shard < 0 || h.Shard >= shards || conns[h.Shard] != nil {
			t.Fatalf("bad hello %#v", m)
		}
		conns[h.Shard] = conn
	}

	probe := mc.NewSearch(cfg)
	coord := NewCoordinator(conns, CoordinatorConfig{Search: probe, Root: g})
	res, err := coord.RunRound(mc.Budget{Depth: 4, Workers: 1}, true)
	if err != nil {
		t.Fatalf("tcp round: %v", err)
	}
	coord.Shutdown()
	for i := 0; i < shards; i++ {
		if serr := <-shardErrs; serr != nil && serr != ErrClosed {
			t.Errorf("shard exited with: %v", serr)
		}
	}

	if !reflect.DeepEqual(res.Checker.ClaimedStates, serial.ClaimedStates) {
		t.Errorf("tcp claimed set diverges from serial (%d vs %d states)",
			len(res.Checker.ClaimedStates), len(serial.ClaimedStates))
	}
	if res.Checker.StatesExplored != serial.StatesExplored {
		t.Errorf("tcp StatesExplored=%d, serial %d", res.Checker.StatesExplored, serial.StatesExplored)
	}
	if res.Checker.DistinctLocalStates != serial.DistinctLocalStates {
		t.Errorf("tcp DistinctLocalStates=%d, serial %d",
			res.Checker.DistinctLocalStates, serial.DistinctLocalStates)
	}
	if res.Stats.StatesReceived == 0 {
		t.Errorf("no states crossed the wire: %+v", res.Stats)
	}
}

// TestTCPConnRoundTrip pins that the framed transport delivers every
// message type unchanged, in order, over a real socket pair.
func TestTCPConnRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer ln.Close()
	accepted := make(chan Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- WrapTCP(nc, TCPOptions{})
	}()
	a, err := DialTCP(ln.Addr().String(), TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := <-accepted

	msgs := sampleMsgs()
	for _, m := range msgs {
		if err := a.Send(m); err != nil {
			t.Fatalf("send %T: %v", m, err)
		}
	}
	for _, want := range msgs {
		if _, isPing := want.(Ping); isPing {
			// Pings are consumed by the transport reader (heartbeats never
			// reach the protocol loop), so there is nothing to receive.
			continue
		}
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		// In-process node pointers cannot cross the wire; everything
		// else must survive byte-exactly.
		if !reflect.DeepEqual(got, want) {
			t.Errorf("tcp corrupted %T:\n got %#v\nwant %#v", want, got, want)
		}
	}
	a.Close()
	if _, err := b.Recv(); err == nil {
		t.Fatalf("recv after peer close succeeded")
	}
	b.Close()
}

// TestTCPMutePeerTimesOut is the failure-detection regression: a peer that
// accepts the connection and then goes mute (transport open, zero traffic —
// the pre-heartbeat worst case) must surface as a connection error within
// the peer timeout, not hang a Recv forever. This covers the handshake too:
// Hello/Setup reads run through the same wrapper.
func TestTCPMutePeerTimesOut(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		// Mute: hold the raw socket open, never write, never heartbeat.
		defer nc.Close()
		buf := make([]byte, 1024)
		for {
			if _, err := nc.Read(buf); err != nil {
				return
			}
		}
	}()

	const timeout = 300 * time.Millisecond
	conn, err := DialTCP(ln.Addr().String(), TCPOptions{PeerTimeout: timeout})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(Hello{Shard: 0, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = conn.Recv()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("recv from a mute peer succeeded")
	}
	if !strings.Contains(err.Error(), "declared dead") {
		t.Errorf("timeout not labeled as peer death: %v", err)
	}
	if elapsed > 20*timeout {
		t.Errorf("detection took %v with a %v peer timeout", elapsed, timeout)
	}
}
