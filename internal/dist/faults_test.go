package dist

import (
	"reflect"
	"strings"
	"testing"
)

func TestFaultSpecParse(t *testing.T) {
	p, err := ParseFaultPlan("seed=9, kill@s1r1m2, send:dup@s0r1m3, drop@s1~0.05, delay3@s0r2m1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 {
		t.Errorf("seed = %d, want 9", p.Seed)
	}
	if got := p.TargetedShards(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("targeted shards = %v, want [0 1]", got)
	}
	if p.Rules(0) != 2 || p.Rules(1) != 2 || p.Rules(7) != 0 {
		t.Errorf("rule counts: s0=%d s1=%d s7=%d", p.Rules(0), p.Rules(1), p.Rules(7))
	}
	want := []faultRule{
		{dir: dirRecv, op: opKill, shard: 1, round: 1, count: 2},
		{dir: dirSend, op: opDup, shard: 0, round: 1, count: 3},
		{dir: dirRecv, op: opDrop, shard: 1, prob: 0.05},
		{dir: dirRecv, op: opDelay, hold: 3, shard: 0, round: 2, count: 1},
	}
	if !reflect.DeepEqual(p.rules, want) {
		t.Errorf("rules = %+v\nwant %+v", p.rules, want)
	}

	// An empty spec is a valid no-rule plan, and sever aliases kill.
	if p, err := ParseFaultPlan(""); err != nil || len(p.rules) != 0 {
		t.Errorf("empty spec: %v, %+v", err, p)
	}
	if p := MustFaultPlan("sever@s0m1"); p.rules[0].op != opKill {
		t.Errorf("sever did not alias kill: %+v", p.rules[0])
	}

	for _, bad := range []string{
		"kill",           // no target
		"explode@s0m1",   // unknown op
		"delay@s0m1",     // delay without hold count
		"delay0@s0m1",    // non-positive hold
		"drop@x1m1",      // target must start with s
		"drop@s0",        // neither count nor probability
		"drop@s0m0",      // counts are 1-based
		"drop@s0r0m1",    // rounds are 1-based
		"drop@s0~2",      // probability out of range
		"drop@s-1m1",     // negative shard
		"seed=banana",    // unparsable seed
		"kill@s1r1m2 m3", // trailing junk
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// faultPair wires a plan-wrapped end a (as shard `shard`) to a bare end b,
// with the per-round counters armed by a RoundStart.
func faultPair(t *testing.T, spec string, shard int) (wrapped, peer Conn) {
	t.Helper()
	a, b := Pipe()
	w := MustFaultPlan(spec).Wrap(shard, a)
	if w == a {
		t.Fatalf("plan %q did not wrap shard %d", spec, shard)
	}
	if err := w.Send(RoundStart{Round: 1, Slot: 0, Slots: 1, RecordStates: false}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	return w, b
}

func TestFaultSendDupDropDelay(t *testing.T) {
	// dup: the 1st counted send goes out twice.
	w, b := faultPair(t, "send:dup@s0m1", 0)
	if err := w.Send(Idle{Shard: 0, Received: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if m, err := b.Recv(); err != nil || m != (Idle{Shard: 0, Received: 1}) {
			t.Fatalf("dup copy %d: %v %v", i, m, err)
		}
	}

	// drop: the 1st counted send vanishes, the 2nd passes.
	w, b = faultPair(t, "send:drop@s0m1", 0)
	mustSend(t, w, Idle{Shard: 0, Received: 1})
	mustSend(t, w, Idle{Shard: 0, Received: 2})
	if m, err := b.Recv(); err != nil || m != (Idle{Shard: 0, Received: 2}) {
		t.Fatalf("after drop got %v, %v", m, err)
	}

	// delay2: message 1 is held behind the next two, so arrival order is
	// 2, 3, 1.
	w, b = faultPair(t, "send:delay2@s0m1", 0)
	for r := int64(1); r <= 3; r++ {
		mustSend(t, w, Idle{Shard: 0, Received: r})
	}
	var got []int64
	for i := 0; i < 3; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m.(Idle).Received)
	}
	if !reflect.DeepEqual(got, []int64{2, 3, 1}) {
		t.Errorf("delayed order = %v, want [2 3 1]", got)
	}
}

func TestFaultRecvKillAndCorrupt(t *testing.T) {
	// kill severs the connection at the triggering receive.
	w, b := faultPair(t, "kill@s3m1", 3)
	mustSend(t, b, Idle{Shard: 0, Received: 1})
	if _, err := w.Recv(); err == nil || !strings.Contains(err.Error(), "fault injection") {
		t.Fatalf("kill did not sever: %v", err)
	}
	if err := b.Send(Idle{Shard: 0, Received: 2}); err == nil {
		t.Errorf("peer can still send after sever")
	}

	// corrupt skips non-batches and mangles the first batch at-or-after its
	// count: the state loses its path and its fingerprint flips.
	w, b = faultPair(t, "corrupt@s0m1", 0)
	mustSend(t, b, Idle{Shard: 0, Received: 1})
	if m, err := w.Recv(); err != nil || m != (Idle{Shard: 0, Received: 1}) {
		t.Fatalf("corrupt fired on a non-batch: %v %v", m, err)
	}
	orig := Batch{From: 0, To: 0, States: []ForwardState{{Hash: 0x10, Depth: 2, Path: []EventDesc{{Kind: 'R', Node: 1}}}}}
	mustSend(t, b, orig)
	m, err := w.Recv()
	if err != nil {
		t.Fatal(err)
	}
	cb := m.(Batch)
	if cb.States[0].Path != nil || cb.States[0].Hash == orig.States[0].Hash || cb.States[0].Depth != 2 {
		t.Errorf("corrupted state = %+v", cb.States[0])
	}
	if orig.States[0].Path == nil {
		t.Errorf("corruption mutated the sender's batch")
	}
}

// TestFaultRoundScopingAndReset pins the determinism contract: counts are
// per-round (a RoundStart — including a retry's — resets them), rules
// scoped to round r fire only there, and a counted rule fires once per
// session even if its trigger recurs.
func TestFaultRoundScopingAndReset(t *testing.T) {
	w, b := faultPair(t, "send:drop@s0r2m1", 0)
	mustSend(t, w, Idle{Shard: 0, Received: 1}) // round 1: rule dormant
	mustSend(t, w, RoundStart{Round: 2, Slot: 0, Slots: 1})
	mustSend(t, w, Idle{Shard: 0, Received: 2}) // round 2 msg 1: dropped
	mustSend(t, w, Idle{Shard: 0, Received: 3}) // spent: passes
	mustSend(t, w, RoundStart{Round: 2, Slot: 0, Slots: 1})
	mustSend(t, w, Idle{Shard: 0, Received: 4}) // retry msg 1: rule already spent
	var got []int64
	for i := 0; i < 5; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if id, ok := m.(Idle); ok {
			got = append(got, id.Received)
		}
	}
	if !reflect.DeepEqual(got, []int64{1, 3, 4}) {
		t.Errorf("delivered %v, want [1 3 4]", got)
	}
}

// TestFaultProbDeterminism pins that probabilistic rules draw from the
// seeded per-(shard, direction) stream: two identically-armed connections
// produce the identical drop pattern.
func TestFaultProbDeterminism(t *testing.T) {
	pattern := func() []int64 {
		w, b := faultPair(t, "seed=7, send:drop@s2~0.4", 2)
		const n = 24
		for r := int64(1); r <= n; r++ {
			mustSend(t, w, Idle{Shard: 0, Received: r})
		}
		// RoundStart is the one message a plan never faults, so it is a
		// safe end-of-stream sentinel even under a probabilistic drop.
		mustSend(t, w, RoundStart{Round: 2, Slot: 0, Slots: 1})
		var got []int64
		for {
			m, err := b.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if _, done := m.(RoundStart); done {
				return got
			}
			got = append(got, m.(Idle).Received)
		}
	}
	first := pattern()
	if len(first) == 0 || len(first) == 24 {
		t.Fatalf("drop pattern degenerate: %d of 24 delivered", len(first))
	}
	if again := pattern(); !reflect.DeepEqual(first, again) {
		t.Errorf("same seed produced different drop patterns:\n%v\n%v", first, again)
	}
}

func mustSend(t *testing.T, c Conn, m Msg) {
	t.Helper()
	if err := c.Send(m); err != nil {
		t.Fatalf("send %T: %v", m, err)
	}
}
