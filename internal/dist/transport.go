package dist

import (
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/sm"
)

// The shard-merge round protocol. Every connection carries Msg values; the
// loopback transport passes them by value, the TCP transport frames the
// binary encoding below. All connections are shard↔coordinator (star
// topology): shards never talk to each other directly, so the coordinator
// sees — and counts — every forwarded batch, which is what makes the
// credit-counted quiescence check in termination.go exact.
//
// Wire form: one frame per message, [uint32 length][kind byte][body], with
// the body written by the same sm.Encoder that backs state hashing and
// snapshots — deterministic, so the codec fuzz test can require that
// encode∘decode∘encode is byte-identical.

// Msg is one protocol message.
type Msg interface{ kind() byte }

// Protocol message kinds (the wire tag byte).
const (
	kindHello      = byte('H')
	kindSetup      = byte('C')
	kindRoundStart = byte('S')
	kindBatch      = byte('B')
	kindIdle       = byte('I')
	kindRoundEnd   = byte('E')
	kindReport     = byte('R')
	kindShutdown   = byte('Q')
	kindFault      = byte('X')
	kindPing       = byte('P')
	kindAbort      = byte('A')
	kindAbortAck   = byte('K')
)

// maxShards bounds the shard counts a decoded message may claim; anything
// above it is a corrupt or hostile frame, not a plausible deployment.
const maxShards = 1 << 16

// Hello is the first message a shardd worker sends after dialing the
// coordinator: which shard slot it wants and how many shards it expects.
type Hello struct {
	Shard  int
	Shards int
}

func (Hello) kind() byte { return kindHello }

// Setup tells a shardd worker which scenario to build and with what
// overrides, so every shard constructs a bit-identical search configuration
// from its own scenario registry. In-process runs construct mc.Config
// directly and never send Setup.
type Setup struct {
	Scenario   string
	Nodes      int
	Variant    string
	Fixed      bool
	Seed       int64
	Resets     bool
	ConnBreaks bool
	Workers    int
	BatchSize  int
}

func (Setup) kind() byte { return kindSetup }

// RoundStart fans one round out to a shard with its share of the planned
// budget (see SplitBudget). Slot and Slots place the shard in *this
// round's* partition: after a failure the coordinator repartitions the
// fingerprint space over the survivors, so a shard's slot can differ from
// its connection identity and can change between retries. A shard owns
// mc.ShardRange(Slot, Slots) for the duration of the round.
type RoundStart struct {
	Round        int
	Slot         int
	Slots        int
	Budget       mc.Budget
	RecordStates bool
}

func (RoundStart) kind() byte { return kindRoundStart }

// Ping is the control-plane heartbeat. The TCP transport emits one per
// heartbeat interval from a dedicated writer so a connection carrying no
// round traffic still proves its peer alive; the reader consumes Pings at
// the transport layer (they never reach the protocol loops). The loopback
// transport never needs them. Ping is still a first-class codec message so
// the fuzzer covers it and a corrupted Ping fails loudly.
type Ping struct{}

func (Ping) kind() byte { return kindPing }

// RoundAbort tells a shard to abandon the in-flight round (a peer shard
// died); the shard drops all round state and replies with AbortAck. Because
// connections are FIFO and the coordinator stops relaying the moment it
// starts an abort, the AbortAck doubles as a barrier: once it arrives,
// no stale traffic from the aborted round can follow it.
type RoundAbort struct {
	Round int
}

func (RoundAbort) kind() byte { return kindAbort }

// AbortAck acknowledges a RoundAbort; Shard is the worker's connection
// identity (not its round slot — the aborted round's slots are dead).
type AbortAck struct {
	Shard int
	Round int
}

func (AbortAck) kind() byte { return kindAbortAck }

// EventDesc is the transport form of one sm.Event: enough identity to
// re-resolve the event against the enabled set of the state it executed in.
// The engine's enumeration makes each descriptor unique among enabled
// events — message deliveries are deduped by (from, to, type), timers are
// keyed by (node, timer id), app calls by (node, name, argument
// fingerprint) — so replaying a descriptor path from the root
// reconstructs exactly the sender's state.
type EventDesc struct {
	Kind byte      // 'M' msg, 'T' timer, 'A' app call, 'R' reset, 'E' conn error, 'D' RST drop
	From sm.NodeID // M, D: sender; E: peer
	Node sm.NodeID // executing node
	Name string    // M: message type, T: timer id, A: call name
	Arg  uint64    // M, A: payload fingerprint (checked at replay)
}

// DescribeEvent captures ev as a transportable descriptor. enc is scratch
// for payload fingerprints.
func DescribeEvent(ev sm.Event, enc *sm.Encoder) EventDesc {
	switch e := ev.(type) {
	case sm.MsgEvent:
		enc.Reset()
		e.Msg.EncodeMsg(enc)
		return EventDesc{Kind: 'M', From: e.From, Node: e.To, Name: e.Msg.MsgType(), Arg: enc.Hash()}
	case sm.TimerEvent:
		return EventDesc{Kind: 'T', Node: e.At, Name: string(e.Timer)}
	case sm.AppEvent:
		enc.Reset()
		e.Call.EncodeCall(enc)
		return EventDesc{Kind: 'A', Node: e.At, Name: e.Call.CallName(), Arg: enc.Hash()}
	case sm.ResetEvent:
		return EventDesc{Kind: 'R', Node: e.At}
	case sm.ErrorEvent:
		return EventDesc{Kind: 'E', Node: e.At, From: e.Peer}
	default:
		d := ev.(sm.DropEvent)
		return EventDesc{Kind: 'D', From: d.From, Node: d.To}
	}
}

// matches reports whether ev is the event this descriptor captured,
// ignoring the payload fingerprint (which the caller verifies separately
// to distinguish "no such event" from "diverged payload").
func (d EventDesc) matches(ev sm.Event) bool {
	switch e := ev.(type) {
	case sm.MsgEvent:
		return d.Kind == 'M' && e.From == d.From && e.To == d.Node && e.Msg.MsgType() == d.Name
	case sm.TimerEvent:
		return d.Kind == 'T' && e.At == d.Node && string(e.Timer) == d.Name
	case sm.AppEvent:
		return d.Kind == 'A' && e.At == d.Node && e.Call.CallName() == d.Name
	case sm.ResetEvent:
		return d.Kind == 'R' && e.At == d.Node
	case sm.ErrorEvent:
		return d.Kind == 'E' && e.At == d.Node && e.Peer == d.From
	case sm.DropEvent:
		return d.Kind == 'D' && e.From == d.From && e.To == d.Node
	default:
		return false
	}
}

// ForwardState is one successor handed to its owner shard. In process it
// travels as a pointer into the sender's path tree (node); on the wire it
// travels as the descriptor path from the root, which the receiver replays.
// Hash and Depth describe the state either way, so the receiver
// deduplicates against its visited set before paying for a replay.
type ForwardState struct {
	Hash  uint64
	Depth int32
	Path  []EventDesc // wire form (nil in-process)
	node  *node       // in-process form (nil on the wire)
}

// Batch carries forwarded states from slot From to owner slot To (round
// slots, not connection identities); the coordinator relays it to the
// connection holding slot To and counts the relay as an outstanding credit
// against that slot.
type Batch struct {
	From   int
	To     int
	States []ForwardState
}

func (Batch) kind() byte { return kindBatch }

// Idle is a shard's report that it has drained its frontier, flushed its
// outgoing batches, and has processed Received batches so far this round.
// Shard is the sender's round slot. The coordinator compares Received
// against its relay count to that slot: equality means no credit is
// outstanding (termination.go).
type Idle struct {
	Shard    int
	Received int64
}

func (Idle) kind() byte { return kindIdle }

// RoundEnd asks a shard for its report; the coordinator sends it only after
// quiescence, so no batch can still be in flight.
type RoundEnd struct{}

func (RoundEnd) kind() byte { return kindRoundEnd }

// Violation is one deduplicated property violation found by a shard. The
// path travels as descriptors; in process the original events ride along so
// the coordinator can skip the replay.
type Violation struct {
	Props     []string
	Depth     int32
	StateHash uint64
	Path      []EventDesc
	events    []sm.Event // in-process only
}

// ShardReport is a shard's contribution to the round's merged report.
// States (the claimed-set size), MaxDepth, Violations, Claimed and Locals
// are deterministic for a given seed and shard count; Expansions,
// Transitions and Stats are scheduling telemetry (re-expansion counts vary
// with arrival order, like the engine's steal counters).
type ShardReport struct {
	Shard       int
	States      int64 // states claimed into the visited set
	Expansions  int64
	Transitions int64
	MaxDepth    int32
	Exhausted   bool // stopped by budget, not by frontier exhaustion
	Violations  []Violation
	Stats       Stats
	Claimed     []uint64 // sorted fingerprint dump (RecordStates rounds only)
	Locals      []uint64 // sorted distinct local-state fingerprints
}

func (ShardReport) kind() byte { return kindReport }

// Shutdown ends the session; the shard exits cleanly.
type Shutdown struct{}

func (Shutdown) kind() byte { return kindShutdown }

// Fault is a shard-side fatal error surfaced to the coordinator, which
// aborts the round with it.
type Fault struct {
	Shard int
	Err   string
}

func (Fault) kind() byte { return kindFault }

// Conn is one side of a shard↔coordinator connection. Send must not block
// indefinitely on the peer's application logic (the loopback queues are
// unbounded; the TCP transport pumps every connection with a dedicated
// reader), which is what keeps batch exchange deadlock-free without
// windowing. TryRecv lets a shard greedily fold all queued batches into one
// drain. After Close, Recv drains any queued messages and then fails.
type Conn interface {
	Send(Msg) error
	Recv() (Msg, error)
	TryRecv() (Msg, bool, error)
	Close() error
}

// encodeMsg appends m's wire form (kind byte + body) to e.
func encodeMsg(e *sm.Encoder, m Msg) error {
	e.Byte(m.kind())
	switch v := m.(type) {
	case Hello:
		e.Int(v.Shard)
		e.Int(v.Shards)
	case Setup:
		e.String(v.Scenario)
		e.Int(v.Nodes)
		e.String(v.Variant)
		e.Bool(v.Fixed)
		e.Int64(v.Seed)
		e.Bool(v.Resets)
		e.Bool(v.ConnBreaks)
		e.Int(v.Workers)
		e.Int(v.BatchSize)
	case RoundStart:
		e.Int(v.Round)
		e.Int(v.Slot)
		e.Int(v.Slots)
		encodeBudget(e, v.Budget)
		e.Bool(v.RecordStates)
	case Batch:
		e.Int(v.From)
		e.Int(v.To)
		e.Uint32(uint32(len(v.States)))
		scratch := sm.NewEncoder()
		for i := range v.States {
			if err := encodeForwardState(e, &v.States[i], scratch); err != nil {
				return err
			}
		}
	case Idle:
		e.Int(v.Shard)
		e.Int64(v.Received)
	case RoundEnd:
	case ShardReport:
		e.Int(v.Shard)
		e.Int64(v.States)
		e.Int64(v.Expansions)
		e.Int64(v.Transitions)
		e.Uint32(uint32(v.MaxDepth))
		e.Bool(v.Exhausted)
		e.Uint32(uint32(len(v.Violations)))
		for i := range v.Violations {
			encodeViolation(e, &v.Violations[i])
		}
		e.Int64(v.Stats.StatesForwarded)
		e.Int64(v.Stats.StatesReceived)
		e.Int64(v.Stats.RemoteDeduped)
		e.Int64(v.Stats.BatchFlushes)
		encodeHashes(e, v.Claimed)
		encodeHashes(e, v.Locals)
	case Shutdown:
	case Ping:
	case RoundAbort:
		e.Int(v.Round)
	case AbortAck:
		e.Int(v.Shard)
		e.Int(v.Round)
	case Fault:
		e.Int(v.Shard)
		e.String(v.Err)
	default:
		return errorf("encode: unknown message %T", m)
	}
	return nil
}

// decodeMsg reads one message written by encodeMsg. Control-plane fields
// are validated here, not at the protocol loops: a frame carrying an
// impossible shard slot, a negative counter or an out-of-range partition is
// rejected as corrupt the moment it is decoded, so a flipped bit cannot
// masquerade as a legal message and silently skew a round.
func decodeMsg(d *sm.Decoder) (Msg, error) {
	kind := d.Byte()
	var m Msg
	switch kind {
	case kindHello:
		h := Hello{Shard: d.Int(), Shards: d.Int()}
		if d.Err() == nil && (h.Shards <= 0 || h.Shards > maxShards || h.Shard < 0 || h.Shard >= h.Shards) {
			return nil, errorf("decode: hello claims shard %d of %d", h.Shard, h.Shards)
		}
		m = h
	case kindSetup:
		su := Setup{
			Scenario:   d.String(),
			Nodes:      d.Int(),
			Variant:    d.String(),
			Fixed:      d.Bool(),
			Seed:       d.Int64(),
			Resets:     d.Bool(),
			ConnBreaks: d.Bool(),
			Workers:    d.Int(),
			BatchSize:  d.Int(),
		}
		if d.Err() == nil && (su.Nodes < 0 || su.Workers < 0 || su.BatchSize < 0) {
			return nil, errorf("decode: setup with negative sizing (nodes=%d workers=%d batch=%d)", su.Nodes, su.Workers, su.BatchSize)
		}
		m = su
	case kindRoundStart:
		rs := RoundStart{Round: d.Int(), Slot: d.Int(), Slots: d.Int(), Budget: decodeBudget(d), RecordStates: d.Bool()}
		if d.Err() == nil {
			if rs.Round <= 0 {
				return nil, errorf("decode: round start for round %d", rs.Round)
			}
			if rs.Slots <= 0 || rs.Slots > maxShards || rs.Slot < 0 || rs.Slot >= rs.Slots {
				return nil, errorf("decode: round start places shard at slot %d of %d", rs.Slot, rs.Slots)
			}
			if err := validBudget(rs.Budget); err != nil {
				return nil, err
			}
		}
		m = rs
	case kindBatch:
		b := Batch{From: d.Int(), To: d.Int()}
		if d.Err() == nil && (b.From < 0 || b.From >= maxShards || b.To < 0 || b.To >= maxShards) {
			return nil, errorf("decode: batch between impossible slots %d -> %d", b.From, b.To)
		}
		n := int(d.Uint32())
		if d.Err() != nil || n < 0 || n > d.Remaining() {
			return nil, errorf("decode: bad batch length %d", n)
		}
		b.States = make([]ForwardState, n)
		for i := range b.States {
			decodeForwardState(d, &b.States[i])
			// Forwarded states always sit at depth >= 1 (roots are
			// seeded locally, never forwarded), so a wire form without
			// a path is corrupt.
			if b.States[i].Path == nil && d.Err() == nil {
				return nil, errorf("decode: forwarded state without path")
			}
		}
		m = b
	case kindIdle:
		id := Idle{Shard: d.Int(), Received: d.Int64()}
		if d.Err() == nil && (id.Shard < 0 || id.Shard >= maxShards || id.Received < 0) {
			return nil, errorf("decode: idle from slot %d with %d received", id.Shard, id.Received)
		}
		m = id
	case kindRoundEnd:
		m = RoundEnd{}
	case kindReport:
		r := ShardReport{
			Shard:       d.Int(),
			States:      d.Int64(),
			Expansions:  d.Int64(),
			Transitions: d.Int64(),
			MaxDepth:    int32(d.Uint32()),
			Exhausted:   d.Bool(),
		}
		if d.Err() == nil && (r.Shard < 0 || r.Shard >= maxShards || r.States < 0 || r.Expansions < 0 || r.Transitions < 0) {
			return nil, errorf("decode: report with impossible counters (shard=%d)", r.Shard)
		}
		n := int(d.Uint32())
		if d.Err() != nil || n < 0 || n > d.Remaining() {
			return nil, errorf("decode: bad violation count %d", n)
		}
		r.Violations = make([]Violation, n)
		for i := range r.Violations {
			decodeViolation(d, &r.Violations[i])
		}
		r.Stats = Stats{
			StatesForwarded: d.Int64(),
			StatesReceived:  d.Int64(),
			RemoteDeduped:   d.Int64(),
			BatchFlushes:    d.Int64(),
		}
		r.Claimed = decodeHashes(d)
		r.Locals = decodeHashes(d)
		m = r
	case kindShutdown:
		m = Shutdown{}
	case kindPing:
		m = Ping{}
	case kindAbort:
		ra := RoundAbort{Round: d.Int()}
		if d.Err() == nil && ra.Round <= 0 {
			return nil, errorf("decode: abort for round %d", ra.Round)
		}
		m = ra
	case kindAbortAck:
		ak := AbortAck{Shard: d.Int(), Round: d.Int()}
		if d.Err() == nil && (ak.Shard < 0 || ak.Shard >= maxShards || ak.Round <= 0) {
			return nil, errorf("decode: abort ack from shard %d for round %d", ak.Shard, ak.Round)
		}
		m = ak
	case kindFault:
		m = Fault{Shard: d.Int(), Err: d.String()}
	default:
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, errorf("decode: unknown message kind %q", kind)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

func encodeBudget(e *sm.Encoder, b mc.Budget) {
	e.Int(b.States)
	e.Int(b.Depth)
	e.Int64(int64(b.Wall))
	e.Int(b.Violations)
	e.Int(b.Transitions)
	e.Int(b.Workers)
}

func decodeBudget(d *sm.Decoder) mc.Budget {
	return mc.Budget{
		States:      d.Int(),
		Depth:       d.Int(),
		Wall:        time.Duration(d.Int64()),
		Violations:  d.Int(),
		Transitions: d.Int(),
		Workers:     d.Int(),
	}
}

// validBudget rejects decoded budgets no planner can produce (every budget
// dimension is a non-negative quota; 0 means unlimited).
func validBudget(b mc.Budget) error {
	if b.States < 0 || b.Depth < 0 || b.Wall < 0 || b.Violations < 0 || b.Transitions < 0 || b.Workers < 0 {
		return errorf("decode: budget with negative quota %+v", b)
	}
	return nil
}

func encodeDesc(e *sm.Encoder, desc *EventDesc) {
	e.Byte(desc.Kind)
	e.NodeID(desc.From)
	e.NodeID(desc.Node)
	e.String(desc.Name)
	e.Uint64(desc.Arg)
}

func decodeDesc(d *sm.Decoder, desc *EventDesc) {
	desc.Kind = d.Byte()
	desc.From = d.NodeID()
	desc.Node = d.NodeID()
	desc.Name = d.String()
	desc.Arg = d.Uint64()
}

func encodeStrings(e *sm.Encoder, ss []string) {
	e.Uint32(uint32(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
}

func decodeStrings(d *sm.Decoder) []string {
	n := int(d.Uint32())
	if d.Err() != nil || n <= 0 || n > d.Remaining() {
		return nil
	}
	ss := make([]string, n)
	for i := range ss {
		ss[i] = d.String()
	}
	return ss
}

func encodeHashes(e *sm.Encoder, hs []uint64) {
	e.Uint32(uint32(len(hs)))
	for _, h := range hs {
		e.Uint64(h)
	}
}

func decodeHashes(d *sm.Decoder) []uint64 {
	n := int(d.Uint32())
	if d.Err() != nil || n <= 0 || n > d.Remaining()/8 {
		return nil
	}
	hs := make([]uint64, n)
	for i := range hs {
		hs[i] = d.Uint64()
	}
	return hs
}

func encodeDescPath(e *sm.Encoder, path []EventDesc) {
	e.Uint32(uint32(len(path)))
	for i := range path {
		encodeDesc(e, &path[i])
	}
}

func decodeDescPath(d *sm.Decoder) []EventDesc {
	n := int(d.Uint32())
	if d.Err() != nil || n <= 0 || n > d.Remaining() {
		return nil
	}
	path := make([]EventDesc, n)
	for i := range path {
		decodeDesc(d, &path[i])
	}
	return path
}

// encodeForwardState writes fs, materializing the descriptor path from the
// in-process node chain if it has not crossed a wire yet. scratch is the
// payload-fingerprint encoder.
func encodeForwardState(e *sm.Encoder, fs *ForwardState, scratch *sm.Encoder) error {
	path := fs.Path
	if path == nil {
		if fs.node == nil {
			return errorf("encode: forwarded state has neither path nor node")
		}
		path = fs.node.descPath(scratch)
	}
	e.Uint64(fs.Hash)
	e.Uint32(uint32(fs.Depth))
	encodeDescPath(e, path)
	return nil
}

func decodeForwardState(d *sm.Decoder, fs *ForwardState) {
	fs.Hash = d.Uint64()
	fs.Depth = int32(d.Uint32())
	fs.Path = decodeDescPath(d)
}

func encodeViolation(e *sm.Encoder, v *Violation) {
	encodeStrings(e, v.Props)
	e.Uint32(uint32(v.Depth))
	e.Uint64(v.StateHash)
	encodeDescPath(e, v.Path)
}

func decodeViolation(d *sm.Decoder, v *Violation) {
	v.Props = decodeStrings(d)
	v.Depth = int32(d.Uint32())
	v.StateHash = d.Uint64()
	v.Path = decodeDescPath(d)
}
