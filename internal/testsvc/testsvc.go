// Package testsvc provides a minimal service state machine used by tests
// across the repository: nodes gossip a monotonically growing counter and
// track the peers they have heard from. It exercises every Service hook
// (messages, timers, app calls, transport errors, reset) without the
// complexity of the real protocols.
package testsvc

import (
	"crystalball/internal/props"
	"crystalball/internal/sm"
)

// TimerGossip is the periodic gossip timer.
const TimerGossip sm.TimerID = "gossip"

// Counter is the gossip payload.
type Counter struct{ N int }

// MsgType implements sm.Message.
func (Counter) MsgType() string { return "Counter" }

// Size implements sm.Message.
func (Counter) Size() int { return 8 }

// EncodeMsg implements sm.Message.
func (c Counter) EncodeMsg(e *sm.Encoder) { e.Int(c.N) }

// Bump is an app call that increments the local counter and gossips it.
type Bump struct{}

// CallName implements sm.AppCall.
func (Bump) CallName() string { return "Bump" }

// EncodeCall implements sm.AppCall.
func (Bump) EncodeCall(e *sm.Encoder) {}

// Svc is the test service. Exported fields let tests inspect and stage
// state directly.
type Svc struct {
	Self    sm.NodeID
	N       int
	Peers   map[sm.NodeID]bool
	Errors  int
	Inits   int
	Gossips int
}

// New is the sm.Factory for Svc.
func New(self sm.NodeID) sm.Service {
	return &Svc{Self: self, Peers: make(map[sm.NodeID]bool)}
}

// NewWithPeers returns a factory pre-populating the peer set, so nodes
// gossip to each other from the start.
func NewWithPeers(peers ...sm.NodeID) sm.Factory {
	return func(self sm.NodeID) sm.Service {
		s := &Svc{Self: self, Peers: make(map[sm.NodeID]bool)}
		for _, p := range peers {
			if p != self {
				s.Peers[p] = true
			}
		}
		return s
	}
}

// Init implements sm.Service.
func (s *Svc) Init(ctx sm.Context) {
	s.Inits++
	ctx.SetTimer(TimerGossip, sm.Second)
}

// HandleMessage implements sm.Service.
func (s *Svc) HandleMessage(ctx sm.Context, from sm.NodeID, msg sm.Message) {
	c, ok := msg.(Counter)
	if !ok {
		return
	}
	s.Peers[from] = true
	if c.N > s.N {
		s.N = c.N
	}
}

// HandleTimer implements sm.Service.
func (s *Svc) HandleTimer(ctx sm.Context, t sm.TimerID) {
	if t != TimerGossip {
		return
	}
	s.Gossips++
	for p := range s.Peers {
		ctx.Send(p, Counter{N: s.N})
	}
	ctx.SetTimer(TimerGossip, sm.Second)
}

// HandleApp implements sm.Service.
func (s *Svc) HandleApp(ctx sm.Context, call sm.AppCall) {
	if call.CallName() != "Bump" {
		return
	}
	s.N++
	for p := range s.Peers {
		ctx.Send(p, Counter{N: s.N})
	}
}

// HandleTransportError implements sm.Service.
func (s *Svc) HandleTransportError(ctx sm.Context, peer sm.NodeID) {
	s.Errors++
	delete(s.Peers, peer)
}

// Neighbors implements sm.Service.
func (s *Svc) Neighbors() []sm.NodeID { return sm.SortedNodes(s.Peers) }

// Clone implements sm.Service.
func (s *Svc) Clone() sm.Service {
	return &Svc{
		Self:    s.Self,
		N:       s.N,
		Peers:   sm.CloneNodeSet(s.Peers),
		Errors:  s.Errors,
		Inits:   s.Inits,
		Gossips: s.Gossips,
	}
}

// EncodeState implements sm.Service.
func (s *Svc) EncodeState(e *sm.Encoder) {
	e.NodeID(s.Self)
	e.Int(s.N)
	e.NodeSet(s.Peers)
	e.Int(s.Errors)
	e.Int(s.Inits)
	e.Int(s.Gossips)
}

// DecodeState implements sm.Service.
func (s *Svc) DecodeState(d *sm.Decoder) error {
	s.Self = d.NodeID()
	s.N = d.Int()
	s.Peers = d.NodeSet()
	s.Errors = d.Int()
	s.Inits = d.Int()
	s.Gossips = d.Int()
	return d.Err()
}

// ServiceName implements sm.Service.
func (s *Svc) ServiceName() string { return "testsvc" }

// ModelAppCalls implements sm.ModelActions.
func (s *Svc) ModelAppCalls() []sm.AppCall { return []sm.AppCall{Bump{}} }

// CounterBelow returns a property violated when any node's counter
// reaches limit.
func CounterBelow(limit int) props.Property {
	return props.Property{
		Name: "CounterBelowLimit",
		Check: func(v *props.View) bool {
			for _, id := range v.IDs() {
				if svc, ok := v.Get(id).Svc.(*Svc); ok && svc.N >= limit {
					return false
				}
			}
			return true
		},
	}
}
