package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestGenerateConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	top := Generate(DefaultConfig(200), rng)
	// BFS from router 0 must reach every router.
	seen := make([]bool, top.Routers())
	queue := []int{0}
	seen[0] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, l := range top.adj[u] {
			if !seen[l.to] {
				seen[l.to] = true
				queue = append(queue, l.to)
			}
		}
	}
	for r, ok := range seen {
		if !ok {
			t.Fatalf("router %d unreachable", r)
		}
	}
}

func TestPowerLawishDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	top := Generate(DefaultConfig(1000), rng)
	// Preferential attachment should yield a heavy tail: the max degree
	// is much larger than the median degree.
	maxDeg, sum := 0, 0
	for _, d := range top.degree {
		if d > maxDeg {
			maxDeg = d
		}
		sum += d
	}
	mean := float64(sum) / float64(len(top.degree))
	if float64(maxDeg) < 5*mean {
		t.Fatalf("degree distribution lacks heavy tail: max=%d mean=%.1f", maxDeg, mean)
	}
	if len(top.stubs) == 0 {
		t.Fatal("no stub routers generated")
	}
}

func TestPathProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	top := Generate(DefaultConfig(300), rng)
	top.AttachClients(20, rng)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			p, err := top.PathBetween(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if p.Latency <= 0 {
				t.Fatalf("non-positive latency between %d and %d", i, j)
			}
			if p.Loss < 0 || p.Loss >= 1 {
				t.Fatalf("loss out of range: %v", p.Loss)
			}
			if p.BandwidthBps <= 0 {
				t.Fatalf("non-positive bandwidth")
			}
			// Access links bound the bottleneck.
			if p.BandwidthBps > 5e6+1 {
				t.Fatalf("bandwidth above access capacity: %v", p.BandwidthBps)
			}
		}
	}
}

func TestPathOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	top := Generate(DefaultConfig(50), rng)
	top.AttachClients(5, rng)
	if _, err := top.PathBetween(0, 99); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := top.PathBetween(-1, 0); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	gen := func() []time.Duration {
		rng := rand.New(rand.NewSource(42))
		top := Generate(DefaultConfig(150), rng)
		top.AttachClients(10, rng)
		var lats []time.Duration
		for i := 0; i < 10; i++ {
			for j := 0; j < 10; j++ {
				p, _ := top.PathBetween(i, j)
				lats = append(lats, p.Latency)
			}
		}
		return lats
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("topologies differ at pair %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMeanRTTPlausible(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	top := Generate(DefaultConfig(500), rng)
	top.AttachClients(30, rng)
	rtt := top.MeanRTT()
	// The paper reports ~130 ms average RTT; ours should at least be in
	// the tens-to-hundreds of milliseconds band.
	if rtt < 5*time.Millisecond || rtt > 500*time.Millisecond {
		t.Fatalf("mean RTT implausible: %v", rtt)
	}
}

// Property: paths are symmetric in latency-shortest terms when computed on
// the same topology (Dijkstra over undirected links).
func TestPropertyPathSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	top := Generate(DefaultConfig(120), rng)
	top.AttachClients(12, rng)
	f := func(ai, bi uint8) bool {
		a := int(ai) % 12
		b := int(bi) % 12
		p1, err1 := top.PathBetween(a, b)
		p2, err2 := top.PathBetween(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return p1.Latency == p2.Latency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAllPairsMatchesPathBetween(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	top := Generate(DefaultConfig(100), rng)
	top.AttachClients(8, rng)
	m := top.AllPairs()
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			p, _ := top.PathBetween(i, j)
			if m[i][j] != p {
				t.Fatalf("AllPairs[%d][%d] mismatch", i, j)
			}
		}
	}
}

func TestTinyTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	top := Generate(DefaultConfig(1), rng) // clamped to 2
	if top.Routers() != 2 {
		t.Fatalf("routers = %d, want 2", top.Routers())
	}
	top.AttachClients(3, rng)
	if _, err := top.PathBetween(0, 2); err != nil {
		t.Fatal(err)
	}
}
