// Package topology generates Internet-like router topologies and derives
// end-to-end path characteristics between attached participants.
//
// It substitutes for the evaluation substrate in the CrystalBall paper: a
// 5,000-node INET topology (power-law degree distribution) annotated with
// bandwidth, fed to a ModelNet emulator. We reproduce the same knobs the
// paper reports: transit-transit links at 100 Mbps, access links at
// 5 Mbps inbound / 1 Mbps outbound, per-link random drop probability chosen
// uniformly from [0.001, 0.005], and participants attached to one-degree
// stub nodes. Latencies come from the generator; the paper reports an
// average network RTT of 130 ms, which the default latency ranges below
// approximate.
package topology

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Config controls topology generation.
type Config struct {
	// Routers is the number of router nodes (paper: 5000).
	Routers int
	// ExtraLinksPerRouter adds preferential-attachment links beyond the
	// spanning tree, producing a power-law degree distribution.
	ExtraLinksPerRouter float64
	// TransitBandwidthBps is the capacity of router-router links
	// (paper: 100 Mbps).
	TransitBandwidthBps float64
	// AccessInBps and AccessOutBps are client access-link capacities
	// (paper: 5 Mbps / 1 Mbps).
	AccessInBps  float64
	AccessOutBps float64
	// MinLinkLatency and MaxLinkLatency bound per-link propagation delay.
	MinLinkLatency time.Duration
	MaxLinkLatency time.Duration
	// MinLossProb and MaxLossProb bound per-link drop probability
	// (paper: [0.001, 0.005], emulating cross traffic).
	MinLossProb float64
	MaxLossProb float64
}

// DefaultConfig mirrors the paper's evaluation setup, scaled by routers.
func DefaultConfig(routers int) Config {
	return Config{
		Routers:             routers,
		ExtraLinksPerRouter: 0.6,
		TransitBandwidthBps: 100e6,
		AccessInBps:         5e6,
		AccessOutBps:        1e6,
		MinLinkLatency:      2 * time.Millisecond,
		MaxLinkLatency:      18 * time.Millisecond,
		MinLossProb:         0.001,
		MaxLossProb:         0.005,
	}
}

type link struct {
	to      int
	latency time.Duration
	loss    float64
	bwBps   float64
}

// Topology is a generated router graph with participants attached to stubs.
type Topology struct {
	cfg     Config
	adj     [][]link
	degree  []int
	stubs   []int // one-degree routers eligible for client attachment
	clients []int // router each participant is attached to
}

// Path describes the end-to-end characteristics between two participants.
type Path struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Loss is the end-to-end drop probability (1 - prod(1-p_link)).
	Loss float64
	// BandwidthBps is the bottleneck capacity along the path.
	BandwidthBps float64
}

// Generate builds a preferential-attachment router graph: node i>0 links to
// an existing node chosen with probability proportional to degree (yielding
// the power-law degree distribution INET preserves), then extra links are
// added the same way.
func Generate(cfg Config, rng *rand.Rand) *Topology {
	if cfg.Routers < 2 {
		cfg.Routers = 2
	}
	t := &Topology{
		cfg:    cfg,
		adj:    make([][]link, cfg.Routers),
		degree: make([]int, cfg.Routers),
	}
	// endpoints holds one entry per link endpoint, so a uniform pick over
	// it is a degree-proportional pick over routers.
	endpoints := make([]int, 0, cfg.Routers*3)
	addLink := func(a, b int) {
		lat := cfg.MinLinkLatency + time.Duration(rng.Int63n(int64(cfg.MaxLinkLatency-cfg.MinLinkLatency)+1))
		loss := cfg.MinLossProb + rng.Float64()*(cfg.MaxLossProb-cfg.MinLossProb)
		t.adj[a] = append(t.adj[a], link{to: b, latency: lat, loss: loss, bwBps: cfg.TransitBandwidthBps})
		t.adj[b] = append(t.adj[b], link{to: a, latency: lat, loss: loss, bwBps: cfg.TransitBandwidthBps})
		t.degree[a]++
		t.degree[b]++
		endpoints = append(endpoints, a, b)
	}
	addLink(0, 1)
	for i := 2; i < cfg.Routers; i++ {
		target := endpoints[rng.Intn(len(endpoints))]
		addLink(i, target)
	}
	extra := int(float64(cfg.Routers) * cfg.ExtraLinksPerRouter)
	for i := 0; i < extra; i++ {
		a := endpoints[rng.Intn(len(endpoints))]
		b := endpoints[rng.Intn(len(endpoints))]
		if a != b {
			addLink(a, b)
		}
	}
	for r := 0; r < cfg.Routers; r++ {
		if t.degree[r] == 1 {
			t.stubs = append(t.stubs, r)
		}
	}
	if len(t.stubs) == 0 { // degenerate tiny graphs
		t.stubs = append(t.stubs, cfg.Routers-1)
	}
	return t
}

// AttachClients assigns n participants to randomly chosen one-degree stub
// routers (paper: "randomly assign participants to act as clients connected
// to one-degree stub nodes"). Multiple participants may share a stub.
func (t *Topology) AttachClients(n int, rng *rand.Rand) {
	t.clients = make([]int, n)
	for i := range t.clients {
		t.clients[i] = t.stubs[rng.Intn(len(t.stubs))]
	}
}

// Clients reports the number of attached participants.
func (t *Topology) Clients() int { return len(t.clients) }

// Routers reports the number of router nodes.
func (t *Topology) Routers() int { return len(t.adj) }

// PathBetween computes the end-to-end path between participants a and b:
// the latency-shortest router path plus both access links. It is
// deterministic for a fixed topology.
func (t *Topology) PathBetween(a, b int) (Path, error) {
	if a < 0 || a >= len(t.clients) || b < 0 || b >= len(t.clients) {
		return Path{}, fmt.Errorf("topology: participant out of range (%d, %d)", a, b)
	}
	if a == b {
		return Path{Latency: 100 * time.Microsecond, Loss: 0, BandwidthBps: t.cfg.AccessOutBps}, nil
	}
	ra, rb := t.clients[a], t.clients[b]
	accessLat := 2 * time.Millisecond // last-mile delay, both ends
	if ra == rb {
		return Path{
			Latency:      accessLat,
			Loss:         0.001,
			BandwidthBps: minf(t.cfg.AccessOutBps, t.cfg.AccessInBps),
		}, nil
	}
	lat, loss, bw := t.dijkstra(ra, rb)
	return Path{
		Latency:      lat + accessLat,
		Loss:         1 - (1-loss)*0.999, // access links contribute a little loss
		BandwidthBps: minf(bw, minf(t.cfg.AccessOutBps, t.cfg.AccessInBps)),
	}, nil
}

// AllPairs computes the path matrix among all participants. For n
// participants it runs n Dijkstra passes over the router graph.
func (t *Topology) AllPairs() [][]Path {
	n := len(t.clients)
	out := make([][]Path, n)
	for i := range out {
		out[i] = make([]Path, n)
		for j := range out[i] {
			p, err := t.PathBetween(i, j)
			if err != nil {
				panic(err) // indices are in range by construction
			}
			out[i][j] = p
		}
	}
	return out
}

type pqItem struct {
	router int
	dist   time.Duration
	index  int
}

type pq []*pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i]; p[i].index = i; p[j].index = j }
func (p *pq) Push(x any)        { it := x.(*pqItem); it.index = len(*p); *p = append(*p, it) }
func (p *pq) Pop() any          { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }

// dijkstra returns (latency, loss, bottleneck bandwidth) of the
// latency-shortest path from src to dst.
func (t *Topology) dijkstra(src, dst int) (time.Duration, float64, float64) {
	const inf = time.Duration(1<<62 - 1)
	dist := make([]time.Duration, len(t.adj))
	surv := make([]float64, len(t.adj)) // survival probability along best path
	bw := make([]float64, len(t.adj))
	done := make([]bool, len(t.adj))
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	surv[src] = 1
	bw[src] = 1e18
	q := &pq{{router: src, dist: 0}}
	heap.Init(q)
	for q.Len() > 0 {
		it := heap.Pop(q).(*pqItem)
		u := it.router
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, l := range t.adj[u] {
			nd := dist[u] + l.latency
			if nd < dist[l.to] {
				dist[l.to] = nd
				surv[l.to] = surv[u] * (1 - l.loss)
				bw[l.to] = minf(bw[u], l.bwBps)
				heap.Push(q, &pqItem{router: l.to, dist: nd})
			}
		}
	}
	if dist[dst] == inf {
		// Unreachable should not happen (graph is connected by
		// construction) but fall back to a conservative default.
		return 150 * time.Millisecond, 0.01, t.cfg.AccessOutBps
	}
	return dist[dst], 1 - surv[dst], bw[dst]
}

// MeanRTT estimates the average round-trip time over all participant pairs;
// the paper reports 130 ms for its topology.
func (t *Topology) MeanRTT() time.Duration {
	n := len(t.clients)
	if n < 2 {
		return 0
	}
	var total time.Duration
	var count int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p, err := t.PathBetween(i, j)
			if err != nil {
				continue
			}
			total += 2 * p.Latency
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / time.Duration(count)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
