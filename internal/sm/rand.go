package sm

import "math/rand"

// splitmix64 is a tiny, high-quality PRNG used as a math/rand Source.
// Handler invocations get a fresh deterministic stream per event, and the
// default math/rand source costs ~5 KB of seeding work per instantiation —
// far too slow for the model checker, which creates one stream per explored
// transition.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }

// NewRand returns a deterministic *rand.Rand seeded with seed, cheap enough
// to create per handler invocation.
func NewRand(seed int64) *rand.Rand {
	return rand.New(&splitmix64{state: uint64(seed)})
}
