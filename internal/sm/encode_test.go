package sm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Uint64(1 << 60)
	e.Int64(-42)
	e.Uint32(7)
	e.Int(-9)
	e.Bool(true)
	e.Bool(false)
	e.Float64(3.25)
	e.NodeID(13)
	e.String("hello")
	e.Bytes2([]byte{1, 2, 3})
	e.NodeSet(map[NodeID]bool{3: true, 1: true, 2: true})
	e.NodeSlice([]NodeID{9, 5, 7})

	d := NewDecoder(e.Bytes())
	if got := d.Uint64(); got != 1<<60 {
		t.Fatalf("Uint64 = %d", got)
	}
	if got := d.Int64(); got != -42 {
		t.Fatalf("Int64 = %d", got)
	}
	if got := d.Uint32(); got != 7 {
		t.Fatalf("Uint32 = %d", got)
	}
	if got := d.Int(); got != -9 {
		t.Fatalf("Int = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := d.Float64(); got != 3.25 {
		t.Fatalf("Float64 = %v", got)
	}
	if got := d.NodeID(); got != 13 {
		t.Fatalf("NodeID = %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := d.Bytes2(); !reflect.DeepEqual(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes2 = %v", got)
	}
	if got := d.NodeSet(); !reflect.DeepEqual(got, map[NodeID]bool{1: true, 2: true, 3: true}) {
		t.Fatalf("NodeSet = %v", got)
	}
	if got := d.NodeSlice(); !reflect.DeepEqual(got, []NodeID{9, 5, 7}) {
		t.Fatalf("NodeSlice = %v", got)
	}
	if d.Err() != nil {
		t.Fatalf("decoder error: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", d.Remaining())
	}
}

func TestDecodePastEndSetsErr(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.Uint64()
	if d.Err() == nil {
		t.Fatal("expected error reading past end")
	}
	// Subsequent reads keep the first error and return zero values.
	if d.Uint32() != 0 || d.Err() == nil {
		t.Fatal("error should be sticky")
	}
}

func TestDecodeBadLengths(t *testing.T) {
	e := NewEncoder()
	e.Uint32(1 << 30) // absurd string length
	d := NewDecoder(e.Bytes())
	if s := d.String(); s != "" || d.Err() == nil {
		t.Fatalf("expected length error, got %q err=%v", s, d.Err())
	}

	e2 := NewEncoder()
	e2.Uint32(1 << 30)
	d2 := NewDecoder(e2.Bytes())
	if set := d2.NodeSet(); set != nil || d2.Err() == nil {
		t.Fatal("expected NodeSet length error")
	}
}

// Property: NodeSet encoding is independent of insertion order, so equal
// sets hash equally — this is what makes state hashing sound for map-backed
// service state.
func TestPropertyNodeSetEncodingCanonical(t *testing.T) {
	f := func(ids []int16, seed int64) bool {
		set1 := make(map[NodeID]bool)
		for _, id := range ids {
			set1[NodeID(id)] = true
		}
		// Insert in a shuffled order into a second map.
		perm := rand.New(rand.NewSource(seed)).Perm(len(ids))
		set2 := make(map[NodeID]bool)
		for _, i := range perm {
			set2[NodeID(ids[i])] = true
		}
		e1, e2 := NewEncoder(), NewEncoder()
		e1.NodeSet(set1)
		e2.NodeSet(set2)
		return e1.Hash() == e2.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: strings round-trip through the encoder.
func TestPropertyStringRoundTrip(t *testing.T) {
	f := func(s string, b []byte) bool {
		e := NewEncoder()
		e.String(s)
		e.Bytes2(b)
		d := NewDecoder(e.Bytes())
		gs := d.String()
		gb := d.Bytes2()
		if d.Err() != nil {
			return false
		}
		if gs != s {
			return false
		}
		if len(b) == 0 {
			return len(gb) == 0
		}
		return reflect.DeepEqual(gb, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodeIDString(t *testing.T) {
	if NodeID(5).String() != "n5" {
		t.Fatalf("got %q", NodeID(5).String())
	}
	if NoNode.String() != "n?" {
		t.Fatalf("got %q", NoNode.String())
	}
	if NodeID(0).String() != "n0" {
		t.Fatalf("got %q", NodeID(0).String())
	}
}

func TestSortedNodes(t *testing.T) {
	set := map[NodeID]bool{5: true, 1: true, 3: true, 9: false}
	got := SortedNodes(set)
	want := []NodeID{1, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedNodes = %v, want %v", got, want)
	}
}

func TestCloneNodeSetIndependence(t *testing.T) {
	orig := map[NodeID]bool{1: true, 2: true}
	cp := CloneNodeSet(orig)
	cp[3] = true
	delete(cp, 1)
	if !orig[1] || orig[3] {
		t.Fatal("clone mutated the original")
	}
}
