// Package sm defines the state-machine abstraction shared by the live
// runtime and the model checker.
//
// It is a direct transcription of the simple distributed-system model in
// Figure 4 of the CrystalBall paper: each node runs a state machine with a
// message handler and internal-action handlers (timers and application
// calls), and the global system state is (local states, in-flight messages).
// Services written against this package run unchanged both "live" (driven by
// internal/runtime on top of internal/simnet) and inside the model checker
// (internal/mc), which is exactly how MaceMC executed real Mace handler code.
package sm

import "math/rand"

// NodeID identifies a node. In the paper node identifiers are IP addresses
// and their numeric order matters (e.g. RandTree elects the smallest address
// as root); we keep that by making NodeID an ordered integer.
type NodeID int32

// NoNode is the zero NodeID used for "unset" pointers (parent, predecessor).
const NoNode NodeID = -1

// String renders the id as "n<k>".
func (n NodeID) String() string {
	if n == NoNode {
		return "n?"
	}
	return "n" + itoa(int64(n))
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// TimerID names a timer within a service (e.g. "recovery", "stabilize").
type TimerID string

// Message is a network message exchanged between service state machines.
// Messages must be treated as immutable once sent: both the live runtime and
// the model checker may share a single message value across many states.
type Message interface {
	// MsgType returns the message type name used by event filters
	// ("Join", "UpdateSibling", ...).
	MsgType() string
	// Size returns the approximate wire size in bytes, used by the
	// simulated network for bandwidth pacing and by the snapshot manager
	// for bandwidth accounting.
	Size() int
	// EncodeMsg writes a stable binary form used for state hashing.
	EncodeMsg(e *Encoder)
}

// AppCall is an application-level request delivered to a service (paper:
// "application calls" in H_A), e.g. "join the overlay", "propose value 0".
type AppCall interface {
	// CallName returns the call's name for filters and traces.
	CallName() string
	// EncodeCall writes a stable binary form used for state hashing.
	EncodeCall(e *Encoder)
}

// Context is the interface through which a handler affects the world. The
// live runtime and the model checker provide different implementations with
// identical semantics, so handler code cannot tell whether it is running for
// real or speculatively.
type Context interface {
	// Self returns the node executing the handler.
	Self() NodeID
	// Send queues msg for delivery to node to over the TCP-like
	// transport. Sending to a peer whose connection has broken results
	// in a TransportError event instead of delivery.
	Send(to NodeID, msg Message)
	// SetTimer (re)schedules the named timer to fire after d.
	SetTimer(t TimerID, d Duration)
	// CancelTimer cancels the named timer if pending.
	CancelTimer(t TimerID)
	// TimerPending reports whether the named timer is scheduled.
	TimerPending(t TimerID) bool
	// Rand returns the service's deterministic random stream.
	Rand() *rand.Rand
}

// Duration re-exports time.Duration through sm so service packages need not
// import time just for timer intervals.
type Duration = int64

// Common durations for service code readability.
const (
	Millisecond Duration = 1e6
	Second      Duration = 1e9
)

// Service is a distributed-service state machine (one per node). All state
// a service keeps must be reachable from the Service value so that Clone,
// EncodeState and DecodeState capture it completely; the model checker,
// the checkpoint manager and the immediate safety check all rely on that.
type Service interface {
	// Init is called when the node (re)starts, including after a reset.
	// It must bring the service to its initial state and may schedule
	// timers or send messages.
	Init(ctx Context)
	// HandleMessage processes a network message from node from.
	HandleMessage(ctx Context, from NodeID, msg Message)
	// HandleTimer processes expiry of the named timer.
	HandleTimer(ctx Context, t TimerID)
	// HandleApp processes an application call.
	HandleApp(ctx Context, call AppCall)
	// HandleTransportError tells the service the TCP-like connection to
	// peer broke (RST received, or discovered broken on send).
	HandleTransportError(ctx Context, peer NodeID)

	// Neighbors returns the node's current snapshot neighborhood (paper
	// section 3.1): the peers whose checkpoints this node needs to check
	// its properties.
	Neighbors() []NodeID

	// Clone returns a deep copy sharing no mutable state; used by the
	// model checker and the immediate safety check.
	Clone() Service
	// EncodeState writes the entire service state in a stable binary
	// form; used for hashing and checkpoints.
	EncodeState(e *Encoder)
	// DecodeState restores state written by EncodeState.
	DecodeState(d *Decoder) error
	// ServiceName identifies the protocol ("randtree", "chord", ...).
	ServiceName() string
}

// ModelActions is implemented by services to tell the model checker which
// internal actions (application calls) it should explore from a given local
// state, per H_A in the paper's system model. Timer firings are derived from
// the pending-timer set automatically, and node resets are generated by the
// checker itself when fault exploration is enabled.
type ModelActions interface {
	// ModelAppCalls returns application calls worth exploring from the
	// current local state (e.g. a not-joined RandTree node may Join).
	ModelAppCalls() []AppCall
}

// Factory creates a fresh (pre-Init) service instance for a node. The model
// checker uses it to materialize reset nodes, and the runtime uses it on
// node restarts.
type Factory func(self NodeID) Service

// SteeringAware is implemented by services designed with execution steering
// in mind. The paper (section 3.3) sketches this as future work: "the
// runtime system could report a predicted inconsistency as a special
// programming language exception, and allow the service to react to the
// problem using a service-specific policy". When a service implements this
// interface, the CrystalBall controller delivers predicted inconsistencies
// here instead of installing a generic event filter.
type SteeringAware interface {
	// HandlePredictedInconsistency reacts to a predicted violation of
	// the named properties; culprit is the earliest event of the
	// predicted path that this node controls (nil when none).
	HandlePredictedInconsistency(ctx Context, properties []string, culprit Event)
}

// StableStore is implemented by services that keep part of their state on
// disk. On a node reset, the runtime (and the model checker's reset
// transition) extracts the stable bytes from the dying instance and
// restores them into the fresh instance before Init runs. A service whose
// implementation forgets to persist something (the CrystalBall paper's
// injected Paxos bug 2: a promise "kept" only in memory) simply omits it
// from StableBytes, and the loss materialises exactly as it would in a
// deployment.
type StableStore interface {
	// StableBytes returns the on-disk state, or nil when nothing is
	// persisted.
	StableBytes() []byte
	// RestoreStable loads previously persisted state into a fresh
	// instance. It is called before Init, and never with nil.
	RestoreStable(data []byte)
}
