package sm

import "sort"

// EncodeFullState serialises a node's complete checkable state — service
// state plus the pending-timer set — into the stable form stored inside
// checkpoints and fed to the model checker.
func EncodeFullState(svc Service, timers map[TimerID]bool) []byte {
	e := NewEncoder()
	svc.EncodeState(e)
	names := make([]string, 0, len(timers))
	for t, ok := range timers {
		if ok {
			names = append(names, string(t))
		}
	}
	sort.Strings(names)
	e.Uint32(uint32(len(names)))
	for _, t := range names {
		e.String(t)
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// DecodeFullState reconstructs a service instance (via factory) and timer
// set from EncodeFullState output.
func DecodeFullState(factory Factory, id NodeID, data []byte) (Service, map[TimerID]bool, error) {
	svc := factory(id)
	d := NewDecoder(data)
	if err := svc.DecodeState(d); err != nil {
		return nil, nil, err
	}
	n := int(d.Uint32())
	timers := make(map[TimerID]bool, n)
	for i := 0; i < n; i++ {
		timers[TimerID(d.String())] = true
	}
	if err := d.Err(); err != nil {
		return nil, nil, err
	}
	return svc, timers, nil
}
