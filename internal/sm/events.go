package sm

import "fmt"

// Event is one step of a distributed-system execution: the unit in which
// the model checker explores (paper Figure 4's transition relation), the
// runtime executes, and violation reports are expressed.
type Event interface {
	// Node returns the node at which the event executes.
	Node() NodeID
	// Describe renders the event for traces and reports.
	Describe() string
	isEvent()
}

// MsgEvent is the delivery (and handling) of a network message at To.
type MsgEvent struct {
	From NodeID
	To   NodeID
	Msg  Message
}

// Node implements Event.
func (e MsgEvent) Node() NodeID { return e.To }

// Describe implements Event.
func (e MsgEvent) Describe() string {
	return fmt.Sprintf("%s: deliver %s from %s", e.To, e.Msg.MsgType(), e.From)
}
func (MsgEvent) isEvent() {}

// TimerEvent is the firing of a timer at a node.
type TimerEvent struct {
	At    NodeID
	Timer TimerID
}

// Node implements Event.
func (e TimerEvent) Node() NodeID { return e.At }

// Describe implements Event.
func (e TimerEvent) Describe() string { return fmt.Sprintf("%s: timer %s", e.At, e.Timer) }
func (TimerEvent) isEvent()           {}

// AppEvent is an application call arriving at a node.
type AppEvent struct {
	At   NodeID
	Call AppCall
}

// Node implements Event.
func (e AppEvent) Node() NodeID { return e.At }

// Describe implements Event.
func (e AppEvent) Describe() string { return fmt.Sprintf("%s: app %s", e.At, e.Call.CallName()) }
func (AppEvent) isEvent()           {}

// ResetEvent is a node crash+restart (the low-probability fault the paper's
// consequence prediction explores, e.g. "the Reset action on node n13").
type ResetEvent struct {
	At NodeID
}

// Node implements Event.
func (e ResetEvent) Node() NodeID { return e.At }

// Describe implements Event.
func (e ResetEvent) Describe() string { return fmt.Sprintf("%s: reset", e.At) }
func (ResetEvent) isEvent()           {}

// ErrorEvent is the observation of a broken transport connection at At
// about Peer (RST arrival or stale-socket discovery).
type ErrorEvent struct {
	At   NodeID
	Peer NodeID
}

// Node implements Event.
func (e ErrorEvent) Node() NodeID { return e.At }

// Describe implements Event.
func (e ErrorEvent) Describe() string {
	return fmt.Sprintf("%s: transport error for %s", e.At, e.Peer)
}
func (ErrorEvent) isEvent() {}

// DropEvent is the loss of an in-flight RST notification; only RST-like
// control notifications can be dropped in the model (TCP payloads cannot),
// which keeps the branching factor small while still covering the paper's
// "TCP RST packet ... is lost" scenarios.
type DropEvent struct {
	From NodeID
	To   NodeID
}

// Node implements Event.
func (e DropEvent) Node() NodeID { return e.To }

// Describe implements Event.
func (e DropEvent) Describe() string {
	return fmt.Sprintf("drop RST %s->%s", e.From, e.To)
}
func (DropEvent) isEvent() {}

// Filter is an event filter installed by execution steering (paper section
// 3.3): it temporarily blocks the invocation of a state-machine handler.
// For network messages the filter matches message type, source and
// destination and the runtime drops the message (optionally breaking the
// connection); for timer and application events it matches the handler
// identity and the runtime reschedules rather than drops.
type Filter struct {
	// Kind discriminates what the filter blocks.
	Kind FilterKind
	// Node is the node at which the filter is installed.
	Node NodeID
	// From matches the message sender (message filters only).
	From NodeID
	// MsgType matches Message.MsgType (message filters only).
	MsgType string
	// Timer matches the timer id (timer filters only).
	Timer TimerID
	// Call matches AppCall.CallName (app filters only).
	Call string
	// BreakConn additionally resets the connection with the sender
	// (message filters only), signalling the sender that something went
	// wrong so it cleans up its state.
	BreakConn bool
}

// FilterKind is the category of event a Filter blocks.
type FilterKind int

// Filter kinds.
const (
	FilterMessage FilterKind = iota
	FilterTimer
	FilterApp
)

// Matches reports whether the filter blocks the given event at its node.
func (f Filter) Matches(ev Event) bool {
	if ev.Node() != f.Node {
		return false
	}
	switch e := ev.(type) {
	case MsgEvent:
		return f.Kind == FilterMessage && e.From == f.From && e.Msg.MsgType() == f.MsgType
	case TimerEvent:
		return f.Kind == FilterTimer && e.Timer == f.Timer
	case AppEvent:
		return f.Kind == FilterApp && e.Call.CallName() == f.Call
	default:
		return false
	}
}

// FilterForEvent derives the filter that would block ev, or ok=false when
// the event is not filterable (resets and transport errors are environment
// faults, not handler invocations).
func FilterForEvent(ev Event) (Filter, bool) {
	switch e := ev.(type) {
	case MsgEvent:
		return Filter{Kind: FilterMessage, Node: e.To, From: e.From, MsgType: e.Msg.MsgType(), BreakConn: true}, true
	case TimerEvent:
		return Filter{Kind: FilterTimer, Node: e.At, Timer: e.Timer}, true
	case AppEvent:
		return Filter{Kind: FilterApp, Node: e.At, Call: e.Call.CallName()}, true
	default:
		return Filter{}, false
	}
}

// String renders the filter.
func (f Filter) String() string {
	switch f.Kind {
	case FilterMessage:
		return fmt.Sprintf("filter{msg %s %s->%s break=%v}", f.MsgType, f.From, f.Node, f.BreakConn)
	case FilterTimer:
		return fmt.Sprintf("filter{timer %s@%s}", f.Timer, f.Node)
	default:
		return fmt.Sprintf("filter{app %s@%s}", f.Call, f.Node)
	}
}
