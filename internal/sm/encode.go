package sm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"
)

// FNV-64a streamed as plain integer state, so hot paths can hash without
// instantiating a hash.Hash64 (fnv.New64a escapes to the heap on every
// call). The constants and update rule match hash/fnv exactly.
const (
	// FNV64aInit is the FNV-64a offset basis: the initial hash state.
	FNV64aInit uint64 = 14695981039346656037
	fnvPrime64 uint64 = 1099511628211
)

// FNV64aByte folds one byte into an FNV-64a hash state.
func FNV64aByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

// FNV64aBytes folds a byte slice into an FNV-64a hash state.
func FNV64aBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// FNV64aString folds a string into an FNV-64a hash state.
func FNV64aString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// Mix64 finalizes a 64-bit hash with murmur3's fmix64 avalanche. FNV-64a
// alone is too weak for hash values that are *summed* into a commutative
// fingerprint: two encodings differing in one late byte produce FNV values
// whose difference is close to δ·prime^k, so structured component sets can
// cancel additively (e.g. the RST items n1→2,…,n1→5 satisfy
// c2+c5 == c3+c4 exactly, aliasing distinct global states). The fmix64
// xor-shift/multiply rounds give every input bit full avalanche, making
// such cancellations as unlikely as random 64-bit collisions.
func Mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Encoder writes values in a stable, deterministic binary form. It backs
// three mechanisms that all need byte-identical encodings for equal states:
// state hashing in the model checker, checkpoint contents in the snapshot
// manager, and duplicate-checkpoint suppression.
//
// An Encoder is reusable through Reset and keeps its buffer (and the NodeSet
// sorting scratch) across uses, so a pooled or worker-owned Encoder encodes
// without allocating in steady state.
type Encoder struct {
	buf []byte
	ids []NodeID // NodeSet sorting scratch, reused across calls
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded bytes. The slice aliases the encoder's buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards all encoded data, retaining the buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Hash returns the finalized (Mix64) FNV-64a hash of the encoded bytes.
// The model checker stores only these hashes (the paper notes the checker
// caches hashes, not states, to bound memory). Computed with the streamed
// FNV helpers, so no hash object is allocated.
func (e *Encoder) Hash() uint64 {
	return Mix64(FNV64aBytes(FNV64aInit, e.buf))
}

// DomainHash returns the finalized (Mix64) FNV-64a hash of the domain byte
// followed by the encoded bytes. The model checker's commutative state
// fingerprint *sums* one such hash per state component (node, message,
// stale pair, resets counter): the domain tag keeps equal byte strings in
// different roles from cancelling across component types, and the Mix64
// avalanche keeps structurally similar components of the same type from
// cancelling within it.
func (e *Encoder) DomainHash(domain byte) uint64 {
	return Mix64(FNV64aBytes(FNV64aByte(FNV64aInit, domain), e.buf))
}

// Uint64 appends v big-endian.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Int64 appends v.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Uint32 appends v big-endian.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Int appends v as 64 bits.
func (e *Encoder) Int(v int) { e.Uint64(uint64(int64(v))) }

// Bool appends a single 0/1 byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float64 appends the IEEE-754 bits of v.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Byte appends a single raw byte (tag bytes in framed encodings).
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// NodeID appends a node identifier.
func (e *Encoder) NodeID(n NodeID) { e.Uint32(uint32(n)) }

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes2 appends a length-prefixed byte slice.
func (e *Encoder) Bytes2(b []byte) {
	e.Uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// NodeSet appends a set of node ids in sorted order, so that two equal sets
// encode identically regardless of map iteration order. The sorting scratch
// is owned by the encoder and reused, so repeated NodeSet calls on a
// reusable encoder do not allocate.
func (e *Encoder) NodeSet(set map[NodeID]bool) {
	ids := e.ids[:0]
	for n, ok := range set {
		if ok {
			ids = append(ids, n)
		}
	}
	slices.Sort(ids)
	e.ids = ids
	e.Uint32(uint32(len(ids)))
	for _, n := range ids {
		e.NodeID(n)
	}
}

// NodeSlice appends a slice of node ids in order (order is significant,
// e.g. Chord successor lists).
func (e *Encoder) NodeSlice(ids []NodeID) {
	e.Uint32(uint32(len(ids)))
	for _, n := range ids {
		e.NodeID(n)
	}
}

// Decoder reads values written by Encoder.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps b for reading.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decoding error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many bytes are left.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

var errShort = errors.New("sm: decode past end of buffer")

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = errShort
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint64 reads a big-endian uint64.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int64 reads an int64.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Uint32 reads a big-endian uint32.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Int reads an int written by Encoder.Int.
func (d *Decoder) Int() int { return int(d.Int64()) }

// Bool reads a 0/1 byte.
func (d *Decoder) Bool() bool {
	b := d.take(1)
	return b != nil && b[0] == 1
}

// Float64 reads an IEEE-754 float.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Byte reads a single raw byte.
func (d *Decoder) Byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// NodeID reads a node identifier.
func (d *Decoder) NodeID() NodeID { return NodeID(d.Uint32()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := int(d.Uint32())
	if d.err != nil || n < 0 || n > d.Remaining() {
		if d.err == nil {
			d.err = fmt.Errorf("sm: bad string length %d", n)
		}
		return ""
	}
	return string(d.take(n))
}

// Bytes2 reads a length-prefixed byte slice (copied).
func (d *Decoder) Bytes2() []byte {
	n := int(d.Uint32())
	if d.err != nil || n < 0 || n > d.Remaining() {
		if d.err == nil {
			d.err = fmt.Errorf("sm: bad bytes length %d", n)
		}
		return nil
	}
	b := d.take(n)
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// NodeSet reads a set written by Encoder.NodeSet.
func (d *Decoder) NodeSet() map[NodeID]bool {
	n := int(d.Uint32())
	if d.err != nil || n < 0 || n > d.Remaining()/4 {
		if d.err == nil {
			d.err = fmt.Errorf("sm: bad set length %d", n)
		}
		return nil
	}
	set := make(map[NodeID]bool, n)
	for i := 0; i < n; i++ {
		set[d.NodeID()] = true
	}
	return set
}

// NodeSlice reads a slice written by Encoder.NodeSlice.
func (d *Decoder) NodeSlice() []NodeID {
	n := int(d.Uint32())
	if d.err != nil || n < 0 || n > d.Remaining()/4 {
		if d.err == nil {
			d.err = fmt.Errorf("sm: bad slice length %d", n)
		}
		return nil
	}
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = d.NodeID()
	}
	return ids
}

// EncodeService returns the stable encoding of a service's state.
func EncodeService(s Service) []byte {
	e := NewEncoder()
	s.EncodeState(e)
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	return out
}

// HashService returns the FNV-64a hash of a service's encoded state.
func HashService(s Service) uint64 {
	e := NewEncoder()
	s.EncodeState(e)
	return e.Hash()
}

// CloneNodeSet deep-copies a node set; a convenience for Service.Clone
// implementations.
func CloneNodeSet(set map[NodeID]bool) map[NodeID]bool {
	out := make(map[NodeID]bool, len(set))
	for k, v := range set {
		if v {
			out[k] = true
		}
	}
	return out
}

// CloneNodeSlice copies a node slice.
func CloneNodeSlice(ids []NodeID) []NodeID {
	if ids == nil {
		return nil
	}
	out := make([]NodeID, len(ids))
	copy(out, ids)
	return out
}

// SortedNodes returns the keys of set in ascending order.
func SortedNodes(set map[NodeID]bool) []NodeID {
	ids := make([]NodeID, 0, len(set))
	for n, ok := range set {
		if ok {
			ids = append(ids, n)
		}
	}
	slices.Sort(ids)
	return ids
}
