// Package directive exercises crystal:allow validation: unknown pass names
// and missing reasons are findings themselves, and neither suppresses.
package directive

import "fmt"

// bad1's directive names a pass that does not exist, so the loop finding
// stands alongside the directive finding.
func bad1(m map[string]int) {
	//crystal:allow(nosuchpass) misspelled pass name
	for k := range m {
		fmt.Println(k)
	}
}

// bad2's directive has no reason, so it neither suppresses nor validates.
func bad2(m map[string]int) {
	//crystal:allow(maporder)
	for k := range m {
		fmt.Println(k)
	}
}

// good's reasoned directive suppresses the loop finding.
func good(m map[string]int) {
	//crystal:allow(maporder) output order is immaterial here
	for k := range m {
		fmt.Println(k)
	}
}
