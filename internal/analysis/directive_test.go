package analysis_test

import (
	"testing"

	"crystalball/internal/analysis"
	"crystalball/internal/analysis/passes/maporder"
)

// TestDirectiveValidation pins the crystal:allow contract: an unknown pass
// name and a missing reason are findings in their own right (pseudo-pass
// "directive"), and such malformed directives do not suppress, while a
// well-formed reasoned directive does.
func TestDirectiveValidation(t *testing.T) {
	pkgs, err := analysis.Load("testdata/src/directive", ".")
	if err != nil {
		t.Fatalf("loading directive testdata: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	res, err := analysis.RunPackage(pkgs[0], []*analysis.Analyzer{maporder.Analyzer}, false)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, d := range res.Diagnostics {
		counts[d.AnalyzerName]++
	}
	if counts["directive"] != 2 {
		t.Errorf("directive-validation findings = %d, want 2 (unknown pass, missing reason); diags: %+v",
			counts["directive"], res.Diagnostics)
	}
	if counts["maporder"] != 2 {
		t.Errorf("unsuppressed maporder findings = %d, want 2 (malformed directives must not suppress)",
			counts["maporder"])
	}
	if len(res.Suppressed) != 1 {
		t.Errorf("suppressed = %d, want 1 (the reasoned directive)", len(res.Suppressed))
	}
}
