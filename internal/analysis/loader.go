package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package: the parsed syntax trees plus
// the type information the analyzers consume.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Fset       *token.FileSet
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPkg mirrors the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` for the patterns and decodes the
// JSON stream. -export populates each package's export-data file in the
// build cache, which is what lets the type checker resolve imports without
// re-checking dependency sources.
func goList(dir string, patterns ...string) ([]*listedPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer that resolves every import from
// the gc export-data files recorded in exports (import path -> file).
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Load lists, parses and type-checks the packages matching patterns
// (relative to dir; "" = current directory). Only the matched packages are
// returned; their dependencies are consumed as export data. Test files are
// not loaded: the determinism and hot-path invariants the analyzers enforce
// apply to shipped code, and tests routinely use wall clocks and global
// randomness legitimately.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPkg
	for _, p := range listed {
		exports[p.ImportPath] = p.Export
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := typeCheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Files:      files,
			Fset:       fset,
			Types:      pkg,
			TypesInfo:  info,
		})
	}
	return out, nil
}

// typeCheck runs the go/types checker over one package's files.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
