package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Result is the outcome of running analyzers over one package.
type Result struct {
	// Diagnostics are the surviving (unsuppressed) findings, sorted by
	// position. Directive-validation findings (missing reason, unknown
	// pass name) are included under the pseudo-pass "directive".
	Diagnostics []Diagnostic
	// Suppressed are the findings removed by //crystal:allow directives.
	Suppressed []Diagnostic
}

// RunPackage executes the analyzers over pkg, applies package scoping (when
// scoped is true) and //crystal:allow suppression, and returns the findings.
// analysistest runs unscoped so golden packages need no special import
// paths; the crystalvet driver runs scoped.
func RunPackage(pkg *Package, analyzers []*Analyzer, scoped bool) (Result, error) {
	var res Result
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows, dirDiags := collectAllowances(pkg, known)
	res.Diagnostics = append(res.Diagnostics, dirDiags...)

	var raw []Diagnostic
	for _, a := range analyzers {
		if scoped && !a.Matches(pkg.ImportPath) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Pkg:      pkg,
			Report: func(d Diagnostic) {
				d.AnalyzerName = a.Name
				raw = append(raw, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return res, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	for _, d := range raw {
		if suppress(pkg.Fset, allows, d) {
			res.Suppressed = append(res.Suppressed, d)
		} else {
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	sortDiags(pkg.Fset, res.Diagnostics)
	sortDiags(pkg.Fset, res.Suppressed)
	return res, nil
}

// collectAllowances gathers every //crystal:allow directive in the package,
// together with validation findings for malformed ones (missing reason,
// unknown pass name).
func collectAllowances(pkg *Package, known map[string]bool) ([]*allowance, []Diagnostic) {
	var allows []*allowance
	var diags []Diagnostic
	record := func(c *ast.Comment, funcPos, funcEnd token.Pos) {
		name, reason, ok := parseAllow(c.Text)
		if !ok {
			return
		}
		if !known[name] {
			diags = append(diags, Diagnostic{
				Pos:          c.Pos(),
				Message:      fmt.Sprintf("crystal:allow names unknown pass %q", name),
				AnalyzerName: "directive",
			})
			return
		}
		if reason == "" {
			diags = append(diags, Diagnostic{
				Pos:          c.Pos(),
				Message:      fmt.Sprintf("crystal:allow(%s) directive missing reason", name),
				AnalyzerName: "directive",
			})
			return
		}
		line := pkg.Fset.Position(c.Pos()).Line
		allows = append(allows, &allowance{
			pass:    name,
			reason:  reason,
			pos:     c.Pos(),
			lines:   [2]int{line, line + 1},
			funcPos: funcPos,
			funcEnd: funcEnd,
		})
	}
	for _, f := range pkg.Files {
		// Function-doc directives cover the whole function body.
		docGroups := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			docGroups[fd.Doc] = true
			for _, c := range fd.Doc.List {
				record(c, fd.Pos(), fd.End())
			}
		}
		for _, cg := range f.Comments {
			if docGroups[cg] {
				continue
			}
			for _, c := range cg.List {
				record(c, token.NoPos, token.NoPos)
			}
		}
	}
	return allows, diags
}

// suppress reports whether some allowance covers the diagnostic: same line
// as the directive, the line after it, or anywhere in the function whose doc
// comment carries it.
func suppress(fset *token.FileSet, allows []*allowance, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, a := range allows {
		if a.pass != d.AnalyzerName {
			continue
		}
		if a.funcPos.IsValid() {
			if d.Pos >= a.funcPos && d.Pos <= a.funcEnd {
				a.used = true
				return true
			}
			continue
		}
		if fset.Position(a.pos).Filename != pos.Filename {
			continue
		}
		if pos.Line == a.lines[0] || pos.Line == a.lines[1] {
			a.used = true
			return true
		}
	}
	return false
}

func sortDiags(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].AnalyzerName < diags[j].AnalyzerName
	})
}
