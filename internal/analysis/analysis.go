// Package analysis is a self-contained miniature of golang.org/x/tools'
// go/analysis: just enough driver, directive and golden-test machinery to
// host the crystalvet passes on the standard library alone (the repo builds
// with zero module dependencies by design).
//
// The passes machine-check the invariants CrystalBall's guarantees rest on
// and which earlier PRs enforced only with runtime oracles after the bug had
// already shipped: no map-iteration order leaking into deterministic
// exploration (the PR 2 bug class), no wall clocks or global randomness in
// simulation-deterministic code, no allocation-prone constructs on
// //crystal:hotpath functions (the PR 4 surface), and no GState component
// write without its paired incremental fingerprint update (the invariant the
// FullHash oracle tests only at runtime).
//
// Two directives configure the passes in source:
//
//	//crystal:hotpath
//	    in a function's doc comment, marks it hot-path: the hotpathalloc
//	    pass flags allocation-prone constructs inside it.
//
//	//crystal:allow(<pass>) <reason>
//	    suppresses <pass>'s findings on the directive's line (when it
//	    trails code), on the next line (when it stands alone), or in the
//	    whole function (when it appears in the function's doc comment).
//	    The reason is mandatory: a suppression with no justification is
//	    itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// An Analyzer describes one analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in
	// //crystal:allow(<name>) directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// PackagePrefixes scopes the pass to packages whose import path equals
	// one of the prefixes or lives below it ("a/b" matches "a/b" and
	// "a/b/c", never "a/bc"). Empty = every package. The scoping is
	// applied by the driver; analysistest runs the pass unscoped so golden
	// packages need no special import paths.
	PackagePrefixes []string
	// Run executes the pass, reporting findings through pass.Report.
	Run func(*Pass) error
}

// A Pass connects one analyzer run to one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Report   func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding. AnalyzerName is filled by the driver.
type Diagnostic struct {
	Pos          token.Pos
	Message      string
	AnalyzerName string
}

// Matches reports whether the analyzer's package scope admits import path.
func (a *Analyzer) Matches(importPath string) bool {
	if len(a.PackagePrefixes) == 0 {
		return true
	}
	for _, p := range a.PackagePrefixes {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}

// Directive names.
const (
	allowDirective   = "//crystal:allow("
	hotpathDirective = "//crystal:hotpath"
)

// IsHotpathDoc reports whether a function doc comment carries the
// //crystal:hotpath directive.
func IsHotpathDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// allowance is one parsed //crystal:allow directive.
type allowance struct {
	pass   string
	reason string
	pos    token.Pos
	// lines the allowance covers (inline: its own line; standalone: its
	// own and the following line). Function-doc allowances instead cover
	// the [funcPos, funcEnd] range.
	lines            [2]int
	funcPos, funcEnd token.Pos
	used             bool
}

// parseAllow extracts the pass name and reason from one comment's text, or
// ok=false if the comment is not an allow directive.
func parseAllow(text string) (pass, reason string, ok bool) {
	if !strings.HasPrefix(text, allowDirective) {
		return "", "", false
	}
	rest := text[len(allowDirective):]
	i := strings.IndexByte(rest, ')')
	if i < 0 {
		return "", "", false
	}
	return strings.TrimSpace(rest[:i]), strings.TrimSpace(rest[i+1:]), true
}
