package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PkgFuncCall reports whether call invokes <pkgPath>.<name> for a
// package-level function accessed through an imported package name, and
// returns the import path and function name.
func PkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return PkgSelector(info, sel)
}

// PkgSelector resolves a selector expression of the form pkgname.Name where
// pkgname is an imported package, returning the package's import path and
// the selected name.
func PkgSelector(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// IsBuiltinCall reports whether call invokes the named builtin (append,
// delete, make, ...).
func IsBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// MentionsObject reports whether expr contains an identifier resolving to
// obj.
func MentionsObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// PosRange is a half-open source interval.
type PosRange struct{ Pos, End token.Pos }

// Contains reports whether p falls inside the range.
func (r PosRange) Contains(p token.Pos) bool { return p >= r.Pos && p < r.End }

// LoopBodies collects the body ranges of every for/range statement under
// root; a node within one of them executes per iteration.
func LoopBodies(root ast.Node) []PosRange {
	var out []PosRange
	ast.Inspect(root, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			out = append(out, PosRange{s.Body.Pos(), s.Body.End()})
		case *ast.RangeStmt:
			out = append(out, PosRange{s.Body.Pos(), s.Body.End()})
		}
		return true
	})
	return out
}

// InAny reports whether pos falls in any of the ranges.
func InAny(ranges []PosRange, pos token.Pos) bool {
	for _, r := range ranges {
		if r.Contains(pos) {
			return true
		}
	}
	return false
}
