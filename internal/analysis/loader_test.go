package analysis

import (
	"go/ast"
	"go/types"
	"testing"
)

// TestLoadTypeChecks loads a real module package through the export-data
// importer and spot-checks that type information is populated — the
// foundation every pass builds on.
func TestLoadTypeChecks(t *testing.T) {
	pkgs, err := Load("../..", "./internal/mc")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.ImportPath != "crystalball/internal/mc" {
		t.Fatalf("ImportPath = %q", pkg.ImportPath)
	}
	// Every range-over-map in the package must have resolvable type info.
	maps := 0
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv := pkg.TypesInfo.TypeOf(rs.X)
			if tv == nil {
				t.Errorf("%s: range expression has no type", pkg.Fset.Position(rs.Pos()))
				return true
			}
			if _, isMap := tv.Underlying().(*types.Map); isMap {
				maps++
			}
			return true
		})
	}
	if maps == 0 {
		t.Fatalf("expected at least one range-over-map in internal/mc (clone, FullHash, ...)")
	}
}
