// Package passes registers the crystalvet analyzer suite.
package passes

import (
	"crystalball/internal/analysis"
	"crystalball/internal/analysis/passes/globalrand"
	"crystalball/internal/analysis/passes/hashmaint"
	"crystalball/internal/analysis/passes/hotpathalloc"
	"crystalball/internal/analysis/passes/maporder"
	"crystalball/internal/analysis/passes/walltime"
)

// All is the crystalvet suite, in reporting order.
var All = []*analysis.Analyzer{
	maporder.Analyzer,
	walltime.Analyzer,
	globalrand.Analyzer,
	hotpathalloc.Analyzer,
	hashmaint.Analyzer,
}

// ByName resolves a comma-separated pass selection ("" = all).
func ByName(names string) ([]*analysis.Analyzer, bool) {
	if names == "" {
		return All, true
	}
	index := make(map[string]*analysis.Analyzer, len(All))
	for _, a := range All {
		index[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range splitComma(names) {
		a, ok := index[n]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
