// Package a exercises the walltime pass: host-clock calls are flagged,
// value references (the injected-clock default) and injected-clock reads are
// not.
package a

import "time"

type clock struct {
	now func() time.Time
}

func bad() time.Time {
	time.Sleep(time.Millisecond) // want `wall-clock time.Sleep in simulation-deterministic code`
	return time.Now()            // want `wall-clock time.Now`
}

func since(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock time.Since`
}

func wait(d time.Duration) {
	<-time.After(d) // want `wall-clock time.After`
}

// inject references time.Now as a value — the sanctioned way to default an
// injected clock — then reads through the injection: both clean.
func inject(c *clock) time.Time {
	if c.now == nil {
		c.now = time.Now
	}
	return c.now()
}

func suppressed() time.Time {
	//crystal:allow(walltime) telemetry timestamp, never enters replayed state
	return time.Now()
}
