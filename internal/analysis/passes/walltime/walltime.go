// Package walltime flags wall-clock reads (time.Now, time.Since, time.Sleep
// and friends) in simulation-deterministic packages. Deterministic replay
// and the controller's virtual-clock scheduling require that simulated code
// never observes the host clock: wall budgets flow through an injected
// clock (mc.Config.Now) so they stay unit-testable and suppressible in one
// place.
package walltime

import (
	"go/ast"

	"crystalball/internal/analysis"
)

// wallFuncs are the time package functions that read or wait on the host
// clock. Constructors like time.Duration arithmetic and constants are fine.
var wallFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// Analyzer flags host-clock calls in simulation-deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "flag time.Now/time.Since/time.Sleep in simulation-deterministic code (virtual clocks only)",
	PackagePrefixes: []string{
		"crystalball/internal/dist",
		"crystalball/internal/mc",
		"crystalball/internal/props",
		"crystalball/internal/sm",
		"crystalball/internal/sim",
		"crystalball/internal/simnet",
		"crystalball/internal/snapshot",
		"crystalball/internal/services/crdt",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.TypesInfo
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Only calls are flagged: referencing time.Now as a value is
			// the sanctioned way to default an injected clock
			// (cfg.Now = time.Now).
			pkgPath, name, ok := analysis.PkgFuncCall(info, call)
			if !ok || pkgPath != "time" || !wallFuncs[name] {
				return true
			}
			pass.Reportf(call.Pos(),
				"wall-clock time.%s in simulation-deterministic code; read an injected clock (e.g. mc.Config.Now) or annotate //crystal:allow(walltime) with a reason", name)
			return true
		})
	}
	return nil
}
