// Package a models the checker's fingerprinted global state for the
// hashmaint pass: component writes must pair with hsum/encSize maintenance,
// directly or through a helper.
package a

type NodeState struct{ V int }

// GState mirrors mc.GState's fingerprint structure.
type GState struct {
	nodes   map[int]*NodeState
	msgs    []int
	stale   map[int]bool
	resets  int
	hsum    uint64
	encSize int
}

// setNode maintains the fingerprint directly.
func (g *GState) setNode(id int, ns *NodeState, h uint64) {
	g.nodes[id] = ns
	g.hsum += h
}

// addMsg maintains hsum and encSize.
func (g *GState) addMsg(m int) {
	g.msgs = append(g.msgs, m)
	g.hsum += uint64(m)
	g.encSize += 8
}

// viaHelper maintains through addMsg: the call-graph fixpoint covers the
// resets bump too.
func (g *GState) viaHelper(m int) {
	g.addMsg(m)
	g.resets++
}

// forget mutates a component with no fingerprint maintenance anywhere.
func (g *GState) forget(m int) {
	g.msgs = append(g.msgs, m) // want `forget writes GState.msgs without a paired incremental hsum update`
}

// clobber rewrites a node element unmaintained.
func (g *GState) clobber(id int) {
	g.nodes[id] = &NodeState{} // want `clobber writes GState.nodes`
}

// drop deletes a stale entry unmaintained.
func (g *GState) drop(p int) {
	delete(g.stale, p) // want `drop writes GState.stale`
}

// literal builds a GState with a component but no fingerprint key.
func literal(ns map[int]*NodeState) *GState {
	return &GState{nodes: ns} // want `literal writes GState.nodes`
}

// literalWithGuard carries the fingerprint explicitly.
func literalWithGuard(ns map[int]*NodeState, h uint64) *GState {
	return &GState{nodes: ns, hsum: h}
}

// scrub resets components wholesale; the suppression documents why the zero
// fingerprint is already correct.
//
//crystal:allow(hashmaint) wholesale reset: the zero value is the fingerprint of the empty state
func (g *GState) scrub() {
	g.msgs = nil
	g.resets = 0
}
