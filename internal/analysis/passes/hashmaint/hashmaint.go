// Package hashmaint machine-checks the incremental-fingerprint invariant of
// the checker's global state: every write to a fingerprint-bearing GState
// component (nodes, msgs, stale, resets) must be paired — in the same
// function, or through a helper — with maintenance of the incremental hash
// sum (hsum) it contributes to. PR 2 introduced the O(delta) fingerprint and
// PR 6's partial-order reduction leans on hash-equal => successor-equal; a
// successor constructor that mutates a component but forgets the paired
// Hash/EncodedSize update only surfaces today when the runtime FullHash
// differential oracle happens to execute that path. This pass surfaces it at
// vet time.
//
// The analysis is name-driven so golden tests can model the invariant: it
// looks for a struct type named GState with a field hsum; packages without
// one are vacuously clean.
package hashmaint

import (
	"go/ast"
	"go/types"

	"crystalball/internal/analysis"
)

const (
	structName = "GState"
	guardField = "hsum"
)

// componentFields are the fingerprint-bearing GState components: each one's
// content contributes component hashes to the hsum fingerprint (and bytes to
// EncodedSize), so unpaired writes desynchronize Hash from FullHash.
var componentFields = map[string]bool{
	"nodes":  true,
	"msgs":   true,
	"stale":  true,
	"resets": true,
}

// Analyzer flags GState component writes with no paired fingerprint update.
var Analyzer = &analysis.Analyzer{
	Name:            "hashmaint",
	Doc:             "flag writes to fingerprint-bearing GState components without a paired incremental hsum update",
	PackagePrefixes: []string{"crystalball/internal/mc"},
	Run:             run,
}

// compWrite is one recorded component mutation.
type compWrite struct {
	pos   ast.Node
	field string
}

// funcFacts summarises one function's relationship to the invariant.
type funcFacts struct {
	decl        *ast.FuncDecl
	writesGuard bool
	compWrites  []compWrite
	calls       map[*types.Func]bool
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.TypesInfo
	gstate := lookupGState(pass.Pkg.Types)
	if gstate == nil {
		return nil
	}

	// Pass 1: collect per-function facts — guard writes, component writes,
	// same-package calls.
	facts := make(map[*types.Func]*funcFacts)
	var order []*types.Func
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			facts[fn] = collect(pass, gstate, fd)
			order = append(order, fn)
		}
	}

	// Pass 2: propagate "maintains the fingerprint" through the
	// same-package call graph to a fixpoint, so helper-mediated
	// maintenance (g.addMsg(...) inside a constructor) counts.
	maintains := make(map[*types.Func]bool)
	for fn, ff := range facts {
		maintains[fn] = ff.writesGuard
	}
	for changed := true; changed; {
		changed = false
		for fn, ff := range facts {
			if maintains[fn] {
				continue
			}
			for callee := range ff.calls {
				if maintains[callee] {
					maintains[fn] = true
					changed = true
					break
				}
			}
		}
	}

	// Pass 3: report component writes in functions that neither maintain
	// the fingerprint themselves nor call anything that does.
	for _, fn := range order {
		ff := facts[fn]
		if maintains[fn] {
			continue
		}
		for _, w := range ff.compWrites {
			pass.Reportf(w.pos.Pos(),
				"%s writes %s.%s without a paired incremental %s update; use a mutation helper (addMsg/removeMsgAt/setStale/bumpResets/setNode) or maintain %s/encSize in this function",
				fn.Name(), structName, w.field, guardField, guardField)
		}
	}
	return nil
}

// lookupGState finds the package's GState named type, requiring the guard
// field so unrelated same-named types don't trip the pass.
func lookupGState(pkg *types.Package) *types.Named {
	obj := pkg.Scope().Lookup(structName)
	if obj == nil {
		return nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == guardField {
			return named
		}
	}
	return nil
}

// collect walks one function body recording guard writes, component writes
// and same-package callees.
func collect(pass *analysis.Pass, gstate *types.Named, fd *ast.FuncDecl) *funcFacts {
	info := pass.Pkg.TypesInfo
	ff := &funcFacts{decl: fd, calls: make(map[*types.Func]bool)}

	onGState := func(e ast.Expr) (string, bool) {
		// Matches g.<field> (possibly through pointers/parens) for g of
		// type GState or *GState.
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		t := info.TypeOf(sel.X)
		if t == nil {
			return "", false
		}
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		named, isNamed := t.(*types.Named)
		if !isNamed || named.Obj() != gstate.Obj() {
			return "", false
		}
		return sel.Sel.Name, true
	}

	// recordTarget classifies one written lvalue.
	recordTarget := func(lhs ast.Expr, at ast.Node) {
		// Unwrap element writes: g.nodes[id] = ..., g.stale[p] = ...
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			lhs = ix.X
		}
		field, ok := onGState(lhs)
		if !ok {
			return
		}
		if field == guardField || field == "encSize" {
			ff.writesGuard = true
			return
		}
		if componentFields[field] {
			ff.compWrites = append(ff.compWrites, compWrite{pos: at, field: field})
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				recordTarget(lhs, s)
			}
		case *ast.IncDecStmt:
			recordTarget(s.X, s)
		case *ast.CallExpr:
			if analysis.IsBuiltinCall(info, s, "delete") && len(s.Args) == 2 {
				recordTarget(s.Args[0], s)
				break
			}
			if fn := calleeFunc(info, s); fn != nil && fn.Pkg() == pass.Pkg.Types {
				ff.calls[fn] = true
			}
		case *ast.CompositeLit:
			t := info.TypeOf(s)
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			named, isNamed := t.(*types.Named)
			if !isNamed || named.Obj() != gstate.Obj() {
				break
			}
			var comps []string
			guard := false
			for _, elt := range s.Elts {
				kv, isKV := elt.(*ast.KeyValueExpr)
				if !isKV {
					continue
				}
				key, isIdent := kv.Key.(*ast.Ident)
				if !isIdent {
					continue
				}
				if key.Name == guardField {
					guard = true
				} else if componentFields[key.Name] {
					comps = append(comps, key.Name)
				}
			}
			if guard {
				ff.writesGuard = true
			} else {
				for _, c := range comps {
					ff.compWrites = append(ff.compWrites, compWrite{pos: s, field: c})
				}
			}
		}
		return true
	})
	return ff
}

// calleeFunc resolves the called function or method object, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
