package hashmaint_test

import (
	"testing"

	"crystalball/internal/analysis/analysistest"
	"crystalball/internal/analysis/passes/hashmaint"
)

func TestHashMaint(t *testing.T) {
	res := analysistest.Run(t, hashmaint.Analyzer, "testdata/src/a")
	if got := len(res.Suppressed); got != 2 {
		t.Errorf("suppressed %d findings, want 2 (scrub's two component writes)", got)
	}
}
