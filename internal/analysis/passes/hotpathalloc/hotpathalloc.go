// Package hotpathalloc flags allocation-prone constructs inside functions
// annotated //crystal:hotpath — the PR 4 surface (successor constructors,
// FillView, the engine worker loop, Plan/Observe), whose allocation budget
// is pinned by AllocsPerRun regression tests. The pass catches the regression
// at vet time instead of at benchmark time:
//
//   - fmt.Sprintf / Sprint / Sprintln / Errorf / Appendf
//   - append in a loop to a local slice with no preallocated or reused
//     backing (no make-with-capacity, no reslice of an existing buffer)
//   - closures inside loops that capture outer variables (one allocation
//     per iteration)
//   - hash.Hash construction (fnv.New64a etc.; use sm's streamed FNV
//     helpers)
//   - interface boxing of non-pointer values into ...any variadics or
//     explicit any(x) conversions
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"crystalball/internal/analysis"
)

// Analyzer flags allocation-prone constructs in //crystal:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocation-prone constructs in functions annotated //crystal:hotpath",
	Run:  run,
}

var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Errorf": true, "Appendf": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.IsHotpathDoc(fd.Doc) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.TypesInfo
	loops := analysis.LoopBodies(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, fd, e, loops)
		case *ast.FuncLit:
			if analysis.InAny(loops, e.Pos()) && capturesOuter(info, fd, e) {
				pass.Reportf(e.Pos(),
					"closure in a loop captures outer variables and allocates per iteration on a hot path")
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, loops []analysis.PosRange) {
	info := pass.Pkg.TypesInfo
	if pkgPath, name, ok := analysis.PkgFuncCall(info, call); ok {
		switch {
		case pkgPath == "fmt" && fmtAllocFuncs[name]:
			pass.Reportf(call.Pos(), "fmt.%s allocates on a hot path; use streamed helpers or preformatted values", name)
			return
		case hashPackage(pkgPath) && strings.HasPrefix(name, "New"):
			pass.Reportf(call.Pos(),
				"%s.%s constructs a hash.Hash on a hot path; use the streamed sm.FNV64a helpers or a pooled instance",
				pkgPath[strings.LastIndexByte(pkgPath, '/')+1:], name)
			return
		}
	}
	if analysis.IsBuiltinCall(info, call, "append") && analysis.InAny(loops, call.Pos()) {
		checkAppend(pass, fd, call)
		return
	}
	checkBoxing(pass, call)
}

func hashPackage(path string) bool {
	return path == "hash" || strings.HasPrefix(path, "hash/") || strings.HasPrefix(path, "crypto/")
}

// checkAppend flags append-in-loop when the destination is a function-local
// slice with no evidence of preallocated or reused backing.
func checkAppend(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.Pkg.TypesInfo
	if len(call.Args) == 0 {
		return
	}
	dest, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return // field / indexed / pointed-to destination: assume reused storage
	}
	obj := info.Uses[dest]
	if obj == nil {
		obj = info.Defs[dest]
	}
	v, isVar := obj.(*types.Var)
	if !isVar || v.Pos() < fd.Pos() || v.Pos() > fd.End() {
		return // parameter from caller or package-level: caller's business
	}
	if preallocated(info, fd, obj) {
		return
	}
	pass.Reportf(call.Pos(),
		"append to un-preallocated slice %s in a loop on a hot path; make(..., 0, n) it or reuse a buffer (buf[:0])", dest.Name)
}

// preallocated reports whether any assignment to obj in the function gives
// it sized or reused backing: make with a capacity (or non-zero length),
// a reslice of existing storage, a call result, or a non-empty literal.
func preallocated(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	ok := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign || ok {
			return !ok
		}
		for i, lhs := range as.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent {
				continue
			}
			lobj := info.Defs[id]
			if lobj == nil {
				lobj = info.Uses[id]
			}
			if lobj != obj || i >= len(as.Rhs) {
				continue
			}
			if sizedExpr(info, as.Rhs[i]) {
				ok = true
				return false
			}
		}
		return true
	})
	return ok
}

func sizedExpr(info *types.Info, e ast.Expr) bool {
	switch r := e.(type) {
	case *ast.SliceExpr:
		return true // reslice of existing storage (buf[:0] reuse idiom)
	case *ast.CompositeLit:
		return len(r.Elts) > 0
	case *ast.CallExpr:
		if analysis.IsBuiltinCall(info, r, "append") {
			// The growth being checked; appends are not sizing evidence.
			return false
		}
		if !analysis.IsBuiltinCall(info, r, "make") {
			// Some other callee produced the slice; assume it sized it.
			return true
		}
		if len(r.Args) >= 3 {
			return true // make(T, len, cap)
		}
		if len(r.Args) == 2 {
			// make(T, n): sized unless n is literally 0.
			if lit, isLit := r.Args[1].(*ast.BasicLit); isLit && lit.Value == "0" {
				return false
			}
			return true
		}
		return false
	default:
		return false
	}
}

// capturesOuter reports whether the closure references a variable declared
// in the enclosing function outside the closure itself.
func capturesOuter(info *types.Info, fd *ast.FuncDecl, fl *ast.FuncLit) bool {
	captured := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !captured
		}
		v, isVar := info.Uses[id].(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() <= fd.End() && (v.Pos() < fl.Pos() || v.Pos() > fl.End()) {
			captured = true
		}
		return !captured
	})
	return captured
}

// checkBoxing flags non-pointer values boxed into empty-interface variadics
// and explicit any(x) conversions: each boxing escapes the value to the
// heap.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.Pkg.TypesInfo
	// Explicit conversion to an empty interface: any(x) / interface{}(x).
	if tv, isConv := info.Types[call.Fun]; isConv && tv.IsType() && len(call.Args) == 1 {
		if iface, isIface := tv.Type.Underlying().(*types.Interface); isIface && iface.NumMethods() == 0 {
			if boxes(info.TypeOf(call.Args[0])) {
				pass.Reportf(call.Pos(), "conversion boxes a non-pointer value into an interface on a hot path")
			}
		}
		return
	}
	sigT := info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, isSig := sigT.(*types.Signature)
	if !isSig || !sig.Variadic() || call.Ellipsis != token.NoPos {
		return
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	slice, isSlice := last.Type().(*types.Slice)
	if !isSlice {
		return
	}
	iface, isIface := slice.Elem().Underlying().(*types.Interface)
	if !isIface || iface.NumMethods() != 0 {
		return
	}
	for i := sig.Params().Len() - 1; i < len(call.Args); i++ {
		if boxes(info.TypeOf(call.Args[i])) {
			pass.Reportf(call.Args[i].Pos(), "argument boxes a non-pointer value into ...any on a hot path")
		}
	}
}

// boxes reports whether storing a value of type t in an interface
// allocates: non-pointer-shaped kinds escape to the heap.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UntypedNil && u.Kind() != types.UnsafePointer
	case *types.Struct, *types.Array, *types.Slice:
		return true
	default:
		// Pointers, maps, chans, funcs and interfaces fit the interface
		// data word (or are already boxed).
		return false
	}
}
