// Package a exercises the hotpathalloc pass. Only functions annotated
// //crystal:hotpath are checked; cold() holds the same constructs
// unannotated as the negative case.
package a

import (
	"fmt"
	"hash/fnv"
)

//crystal:hotpath
func hot(xs []int) string {
	return fmt.Sprintf("%d", len(xs)) // want `fmt.Sprintf allocates on a hot path`
}

//crystal:hotpath
func grow(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2) // want `append to un-preallocated slice out in a loop`
	}
	return out
}

//crystal:hotpath
func prealloc(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

//crystal:hotpath
func reuse(buf, xs []int) []int {
	out := buf[:0]
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

//crystal:hotpath
func closures(xs []int) int {
	total := 0
	for _, x := range xs {
		f := func() int { return total + x } // want `closure in a loop captures outer variables`
		total = f()
	}
	return total
}

//crystal:hotpath
func hashes(b []byte) uint64 {
	h := fnv.New64a() // want `fnv.New64a constructs a hash.Hash on a hot path`
	h.Write(b)
	return h.Sum64()
}

func sink(args ...any) int { return len(args) }

//crystal:hotpath
func boxing(x int, p *int) int {
	n := sink(x) // want `argument boxes a non-pointer value into \.\.\.any`
	n += sink(p)
	return n
}

//crystal:hotpath
func convert(x int) any {
	return any(x) // want `conversion boxes a non-pointer value into an interface`
}

// cold is unannotated: the same constructs draw no findings.
func cold(xs []int) string {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return fmt.Sprintf("%d", len(out))
}

// warm allocates knowingly; the func-doc directive covers the whole body.
//
//crystal:allow(hotpathalloc) cold branch: runs once per search, not per state
//crystal:hotpath
func warm(n int) string {
	return fmt.Sprintf("run-%d", n)
}
