package hotpathalloc_test

import (
	"testing"

	"crystalball/internal/analysis/analysistest"
	"crystalball/internal/analysis/passes/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	res := analysistest.Run(t, hotpathalloc.Analyzer, "testdata/src/a")
	if got := len(res.Suppressed); got != 1 {
		t.Errorf("suppressed %d findings, want 1 (warm's func-doc allow directive)", got)
	}
}
