// Package globalrand flags top-level math/rand functions — rand.Intn,
// rand.Shuffle, global rand.Seed and the rest of the shared-source API.
// Every draw in this repo must flow from a seeded per-worker *rand.Rand
// (sm.NewRand, mc's scratch rng): the global source is seeded once per
// process, shared across goroutines, and invisible to same-seed replay, so
// a single stray call diverges distributed search shards silently.
package globalrand

import (
	"go/ast"

	"crystalball/internal/analysis"
)

// globalFuncs are the math/rand (and math/rand/v2) package-level functions
// that draw from or reseed the shared global source. Constructors (New,
// NewSource, NewPCG, NewChaCha8) build private sources and are fine.
var globalFuncs = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true,
}

// Analyzer flags draws from the global math/rand source anywhere in the
// module (tests excluded by the loader).
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  "flag top-level math/rand functions; all randomness must flow from seeded per-worker *rand.Rand sources",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.TypesInfo
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := analysis.PkgSelector(info, sel)
			if !ok || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") || !globalFuncs[name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"rand.%s draws from the process-global source; use a seeded per-worker *rand.Rand (sm.NewRand) or annotate //crystal:allow(globalrand) with a reason", name)
			return true
		})
	}
	return nil
}
