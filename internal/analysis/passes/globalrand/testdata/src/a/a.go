// Package a exercises the globalrand pass: draws from the process-global
// math/rand source are flagged; private seeded sources are the sanctioned
// alternative.
package a

import "math/rand"

func draw() int {
	return rand.Intn(10) // want `rand.Intn draws from the process-global source`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `rand.Shuffle draws from the process-global source`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// seeded constructs a private source: the constructors are exempt, and
// method calls on the private *rand.Rand are fine.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func suppressed() float64 {
	//crystal:allow(globalrand) one-off jitter in operator tooling, never replayed
	return rand.Float64()
}
