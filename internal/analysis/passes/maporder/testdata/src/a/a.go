// Package a exercises the maporder pass: flagged map ranges, the
// commutative-fold and collect-then-sort exemptions, and the suppression
// directive.
package a

import (
	"fmt"
	"sort"
)

// leak appends map keys in iteration order to an outer slice and never
// sorts: the randomized order escapes — the PR 2 bug class.
func leak(m map[string]int) []string {
	var keys []string
	for k := range m { // want `iteration over map map\[string\]int has non-deterministic order`
		keys = append(keys, k)
	}
	return keys
}

// dump streams entries to an order-observing sink.
func dump(m map[string]int) {
	for k, v := range m { // want `non-deterministic order`
		fmt.Println(k, v)
	}
}

// nested hides the escape one block deeper.
func nested(m map[string]int, limit int) []string {
	var keys []string
	for k, v := range m { // want `non-deterministic order`
		if v > limit {
			keys = append(keys, k)
			fmt.Println(k)
		}
	}
	return keys
}

// sum is a commutative fold: accumulation order is invisible.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// count only increments.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// invert writes keyed by the range variable: distinct keys commute.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// prune deletes keyed by the range variable.
func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// sortedKeys is the collect-then-sort idiom.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedSubset collects behind a call-free guard before sorting.
func sortedSubset(m map[string]int, limit int) []string {
	var keys []string
	for k, v := range m {
		if v > limit {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// suppressed documents an intentionally order-dependent loop.
func suppressed(m map[string]int) {
	//crystal:allow(maporder) the sink is order-insensitive in this model
	for k, v := range m {
		fmt.Println(k, v)
	}
}
