package maporder_test

import (
	"testing"

	"crystalball/internal/analysis/analysistest"
	"crystalball/internal/analysis/passes/maporder"
)

func TestMapOrder(t *testing.T) {
	res := analysistest.Run(t, maporder.Analyzer, "testdata/src/a")
	if got := len(res.Suppressed); got != 1 {
		t.Errorf("suppressed %d findings, want 1 (the reasoned allow directive)", got)
	}
}
