// Package maporder flags `range` over a map in the deterministic packages —
// the PR 2 bug class, where Go's randomized map iteration order leaked into
// timer enumeration and RST fan-out and broke same-seed replay. A loop is
// exempt when its effect is provably order-independent: a commutative fold
// (each iteration only accumulates with commutative operators, inserts
// keyed by the iterated element, or mutates loop-local state), or the
// collect-then-sort idiom (the body only appends into a slice that is
// passed to a sort.* / slices.* call later in the same function).
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"crystalball/internal/analysis"
)

// Analyzer flags non-deterministic map iteration in deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map whose iteration order can leak into deterministic exploration",
	PackagePrefixes: []string{
		"crystalball/internal/dist",
		"crystalball/internal/mc",
		"crystalball/internal/props",
		"crystalball/internal/sm",
		"crystalball/internal/sim",
		"crystalball/internal/simnet",
		"crystalball/internal/snapshot",
		// CRDT replica state is maps (delivered ops, count vectors,
		// live tags); every fold the checker fingerprints must be
		// commutative or sorted.
		"crystalball/internal/services/crdt",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		c := &checker{pass: pass, info: info, body: analysis.PosRange{Pos: rs.Body.Pos(), End: rs.Body.End()}}
		c.loopVars(rs)
		if c.commutativeBody(rs.Body) {
			return true
		}
		if collectThenSorted(pass, fd, rs) {
			return true
		}
		pass.Reportf(rs.For,
			"iteration over map %s has non-deterministic order; iterate sorted keys, make the body a commutative fold, or annotate //crystal:allow(maporder) with a reason",
			types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
		return true
	})
}

// checker decides whether a loop body is a commutative fold: no iteration's
// effect on state outside the loop depends on which iterations ran before
// it.
type checker struct {
	pass *analysis.Pass
	info *types.Info
	body analysis.PosRange
	// rangeVars are the key/value objects bound by the range clause;
	// writes keyed by them (m[k] = v) hit distinct elements and commute.
	rangeVars map[types.Object]bool
}

func (c *checker) loopVars(rs *ast.RangeStmt) {
	c.rangeVars = make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := c.info.Defs[id]; obj != nil {
				c.rangeVars[obj] = true
			} else if obj := c.info.Uses[id]; obj != nil {
				c.rangeVars[obj] = true
			}
		}
	}
}

// loopLocal reports whether expr is rooted at a variable declared inside the
// loop body (or a range variable): mutating it is invisible outside one
// iteration.
func (c *checker) loopLocal(expr ast.Expr) bool {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			obj := c.info.Uses[e]
			if obj == nil {
				obj = c.info.Defs[e]
			}
			if obj == nil {
				return false
			}
			return c.rangeVars[obj] || c.body.Contains(obj.Pos())
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// keyedByRangeVar reports whether expr is an index expression whose index
// mentions a range variable: writes to distinct keys commute.
func (c *checker) keyedByRangeVar(expr ast.Expr) bool {
	ix, ok := expr.(*ast.IndexExpr)
	if !ok {
		return false
	}
	for obj := range c.rangeVars {
		if analysis.MentionsObject(c.info, ix.Index, obj) {
			return true
		}
	}
	return false
}

func (c *checker) commutativeBody(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if !c.commutativeStmt(s) {
			return false
		}
	}
	return true
}

// commutative assignment operators: accumulate with order-independent
// arithmetic (+= and -= form a commutative group; |=, &=, ^=, *= are
// commutative and associative).
var commutativeOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.OR_ASSIGN:  true,
	token.AND_ASSIGN: true,
	token.XOR_ASSIGN: true,
}

func (c *checker) commutativeStmt(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.AssignStmt:
		if commutativeOps[st.Tok] {
			return true
		}
		// Plain assignment or declaration: every target must be
		// loop-local, the blank identifier, or an element write keyed by
		// a range variable (distinct keys -> commutes).
		for _, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			if st.Tok == token.DEFINE {
				continue // new loop-local binding
			}
			if c.loopLocal(lhs) || c.keyedByRangeVar(lhs) {
				continue
			}
			return false
		}
		return true
	case *ast.IncDecStmt:
		return true
	case *ast.DeclStmt:
		return true // declares loop-locals
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if analysis.IsBuiltinCall(c.info, call, "delete") {
			return len(call.Args) == 2 && c.keyedDelete(call)
		}
		// A bare method call mutates only its receiver as far as this
		// heuristic can see; accept it when the receiver is loop-local.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && c.loopLocal(sel.X) {
			return true
		}
		// A free function call whose every argument is loop-local can
		// only mutate per-iteration state (as far as the heuristic sees).
		if _, ok := call.Fun.(*ast.Ident); ok {
			for _, arg := range call.Args {
				if !c.loopLocal(arg) {
					return false
				}
			}
			return len(call.Args) > 0
		}
		return false
	case *ast.IfStmt:
		if st.Init != nil && !c.commutativeStmt(st.Init) {
			return false
		}
		if hasCalls(c.info, st.Cond) {
			return false
		}
		if !c.commutativeBody(st.Body) {
			return false
		}
		if st.Else != nil {
			if eb, ok := st.Else.(*ast.BlockStmt); ok {
				return c.commutativeBody(eb)
			}
			return c.commutativeStmt(st.Else)
		}
		return true
	case *ast.BlockStmt:
		return c.commutativeBody(st)
	case *ast.BranchStmt:
		// continue skips an element (order-independent); break/goto make
		// the set of processed elements depend on iteration order.
		return st.Tok == token.CONTINUE
	case *ast.EmptyStmt:
		return true
	default:
		// return, send, go, defer, nested loops over order-dependent
		// state, ... — assume order-dependent.
		return false
	}
}

// keyedDelete reports whether delete(m, k)'s key mentions a range variable
// (delete of distinct keys commutes) or m is loop-local.
func (c *checker) keyedDelete(call *ast.CallExpr) bool {
	if c.loopLocal(call.Args[0]) {
		return true
	}
	for obj := range c.rangeVars {
		if analysis.MentionsObject(c.info, call.Args[1], obj) {
			return true
		}
	}
	return false
}

// hasCalls reports whether expr contains any call other than len/cap —
// calls in a loop condition may observe order-dependent state or have side
// effects.
func hasCalls(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if analysis.IsBuiltinCall(info, call, "len") || analysis.IsBuiltinCall(info, call, "cap") {
			return true
		}
		found = true
		return false
	})
	return found
}

// collectThenSorted recognizes the collect-then-sort idiom: the loop body
// only appends into outer slices, and every such slice is handed to a
// sort.* or slices.* call later in the same function.
func collectThenSorted(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	info := pass.Pkg.TypesInfo
	var targets []types.Object
	// Unwrap conditional collects (`if ok { keys = append(keys, k) }`): the
	// guard must be call-free so it cannot observe order-dependent state.
	stmts := rs.Body.List
	for len(stmts) == 1 {
		ifs, ok := stmts[0].(*ast.IfStmt)
		if !ok || ifs.Init != nil || ifs.Else != nil || hasCalls(info, ifs.Cond) {
			break
		}
		stmts = ifs.Body.List
	}
	for _, s := range stmts {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !analysis.IsBuiltinCall(info, call, "append") {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return false
		}
		targets = append(targets, obj)
	}
	if len(targets) == 0 {
		return false
	}
	for _, obj := range targets {
		if !sortedAfter(info, fd, rs, obj) {
			return false
		}
	}
	return true
}

// sortedAfter reports whether a sort.* or slices.* call mentioning obj
// appears after the loop in the function body.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() < rs.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkgPath, _, ok := analysis.PkgFuncCall(info, call)
		if !ok || (pkgPath != "sort" && pkgPath != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if analysis.MentionsObject(info, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
