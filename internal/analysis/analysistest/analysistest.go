// Package analysistest runs one analyzer over a golden package and checks
// its diagnostics against `// want "regexp"` expectations embedded in the
// source, mirroring golang.org/x/tools' analysistest on top of this repo's
// self-contained loader. Golden packages live under the conventional
// testdata/src/<pkg> layout next to each pass; they are real, compiling Go
// (the loader shells out to `go list -export`), just excluded from wildcard
// build patterns by the testdata rule.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"crystalball/internal/analysis"
)

// wantRe extracts the quoted regexps of a want comment; both double-quoted
// and backquoted (regex-friendly) patterns are accepted.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectation is one want-regexp awaiting a diagnostic on its line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run loads the golden package rooted at dir (a path like "testdata/src/a",
// relative to the calling test's package directory), runs the analyzer
// unscoped, and reports any mismatch between the diagnostics and the
// `// want` comments as test errors. Suppressed findings are not matched
// against wants — assert on the returned Result's Suppressed list instead.
func Run(t *testing.T, a *analysis.Analyzer, dir string) analysis.Result {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkgs, err := analysis.Load(abs, ".")
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("analysistest: %s resolved to %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]
	res, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a}, false)
	if err != nil {
		t.Fatalf("analysistest: running %s on %s: %v", a.Name, dir, err)
	}

	expects := collectWants(t, pkg)
	for _, d := range res.Diagnostics {
		pos := pkg.Fset.Position(d.Pos)
		if !match(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s [%s]", filepath.Base(pos.Filename), pos.Line, d.Message, d.AnalyzerName)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: no diagnostic matching %s", filepath.Base(e.file), e.line, e.raw)
		}
	}
	return res
}

// collectWants parses every `// want "re"` comment in the package.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(text, -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: q})
				}
			}
		}
	}
	return out
}

// match consumes the first unmet expectation on (file, line) whose regexp
// matches the message.
func match(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.met && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.met = true
			return true
		}
	}
	return false
}
