package experiments

import (
	"time"

	"crystalball/internal/scenario"
	"crystalball/internal/services/paxos"
	"crystalball/internal/sim"
	"crystalball/internal/stats"
)

// Fig14Config parameterises the Paxos steering experiment.
type Fig14Config struct {
	Seed int64
	// Runs per injected bug (paper: 100).
	Runs int
	// MaxGap is the random inter-round delay bound (paper: U[0, 60 s]).
	MaxGap time.Duration
	// MCStates bounds each consequence-prediction run.
	MCStates int
	// Workers is the checker's worker-pool size (0 = GOMAXPROCS).
	Workers int
	// Policy selects the per-round budget policy kind ("" = scenario
	// default, then fixed).
	Policy string
	// PerStateCost is the virtual checker latency per state; it creates
	// the race between prediction and the live bug (paper: the checker
	// needed ~6 s, so short gaps beat it and fall through to the ISC).
	PerStateCost time.Duration
}

// Fig14Outcome classifies one run.
type Fig14Outcome int

// Outcomes of one staged Paxos run (the bars of Figure 14).
const (
	// AvoidedBySteering: an installed event filter prevented the
	// violating handler from executing.
	AvoidedBySteering Fig14Outcome = iota
	// AvoidedByISC: the immediate safety check blocked it.
	AvoidedByISC
	// Violated: two values were chosen.
	Violated
	// NoViolation: the staged scenario happened not to produce the
	// inconsistency (and nothing intervened).
	NoViolation
)

// Fig14Result aggregates outcomes for one injected bug.
type Fig14Result struct {
	Bug      string
	Steering int
	ISC      int
	Violated int
	Clean    int
	Runs     int
}

// Fig14Paxos reproduces Figure 14: the staged Figure 13 scenario runs
// repeatedly with a random inter-round gap; CrystalBall must avoid the
// inconsistency by steering (when the checker's report lands before round
// 2) or by the immediate safety check (when it does not). The paper
// reports 87%/85% steering, 11% ISC and 2%/5% violations over 100 runs per
// bug.
func Fig14Paxos(cfg Fig14Config) []Fig14Result {
	if cfg.Runs == 0 {
		cfg.Runs = 100
	}
	if cfg.MaxGap == 0 {
		cfg.MaxGap = 60 * time.Second
	}
	if cfg.MCStates == 0 {
		cfg.MCStates = 20000
	}
	if cfg.PerStateCost == 0 {
		// Tuned so a full round's checking latency lands around the
		// paper's ~6 s: short inter-round gaps beat the checker and
		// fall through to the immediate safety check.
		cfg.PerStateCost = 300 * time.Microsecond
	}
	var out []Fig14Result
	for _, bug := range []string{"bug1", "bug2"} {
		r := Fig14Result{Bug: bug, Runs: cfg.Runs}
		for i := 0; i < cfg.Runs; i++ {
			seed := cfg.Seed + int64(i)*7919
			gap := time.Duration(float64(cfg.MaxGap) * sim.New(seed).RNG("gap").Float64())
			switch runPaxosScenario(seed, bug, gap, cfg) {
			case AvoidedBySteering:
				r.Steering++
			case AvoidedByISC:
				r.ISC++
			case Violated:
				r.Violated++
			default:
				r.Clean++
			}
		}
		out = append(out, r)
	}
	return out
}

// runPaxosScenario stages one Figure 13 run under full CrystalBall
// protection and classifies the outcome. The bug under test is the paxos
// scenario's variant; resets are only worth exploring for bug 2 (the
// lost-promise bug), so the scenario's fault model is overridden per bug.
func runPaxosScenario(seed int64, bug string, gap time.Duration, cfg Fig14Config) Fig14Outcome {
	d, err := scenario.Deploy("paxos", scenario.DeployOptions{
		Seed:             seed,
		Service:          scenario.Options{Variant: bug},
		Control:          scenario.Steering,
		Policy:           cfg.Policy,
		MCStates:         cfg.MCStates,
		Workers:          cfg.Workers,
		PerStateCost:     cfg.PerStateCost,
		Faults:           &scenario.Faults{ExploreResets: bug == "bug2"},
		SnapshotInterval: 3 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	s := d.Sim
	a, b, c := d.Nodes[0], d.Nodes[1], d.Nodes[2]

	// Round 1: C disconnected; A proposes 0 (chosen by {A, B}).
	d.Net.PartitionNode(c.ID, true)
	a.App(paxos.Propose{Val: 0})
	s.RunFor(2 * time.Second)
	d.Net.PartitionNode(c.ID, false)
	if bug == "bug2" {
		b.Reset(true)
	}
	// Inter-round gap: the window in which the checker can predict.
	s.RunFor(gap)
	// Round 2: A disconnected; B proposes 1 (the paper's "Propose(B,1)").
	d.Net.PartitionNode(a.ID, true)
	b.App(paxos.Propose{Val: 1})
	s.RunFor(5 * time.Second)
	d.Net.PartitionNode(a.ID, false)
	s.RunFor(3 * time.Second)

	// Classify. Steering engages through any installed filter — the
	// earliest controllable event may be the proposer's own application
	// call, a message delivery, or a timer ("steer the execution as
	// early as possible").
	if !paxos.Properties.Holds(d.View()) {
		return Violated
	}
	var filtersHit, iscBlocks int64
	for _, node := range d.Nodes {
		filtersHit += node.Stats.MessagesDropped + node.Stats.AppsBlocked + node.Stats.TimersDeferred
		iscBlocks += node.Stats.ISCBlocks
	}
	if filtersHit > 0 {
		return AvoidedBySteering
	}
	if iscBlocks > 0 {
		return AvoidedByISC
	}
	return NoViolation
}

// FormatFig14 renders the outcome bars with the paper's reference numbers.
func FormatFig14(results []Fig14Result) string {
	t := stats.Table{
		Title:  "Figure 14: Paxos execution steering outcomes",
		Header: []string{"bug", "runs", "steering", "ISC", "violations", "no-violation", "paper(steer/ISC/viol)"},
	}
	refs := map[string]string{"bug1": "87/11/2", "bug2": "85/11/5 (of 100)"}
	for _, r := range results {
		t.Add(r.Bug, r.Runs, r.Steering, r.ISC, r.Violated, r.Clean, refs[r.Bug])
	}
	return t.String()
}
