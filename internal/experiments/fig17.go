package experiments

import (
	"fmt"
	"time"

	"crystalball/internal/scenario"
	"crystalball/internal/services/bulletprime"
	"crystalball/internal/simnet"
	"crystalball/internal/stats"
)

// Fig17Config parameterises the Bullet′ overhead experiment.
type Fig17Config struct {
	Seed int64
	// Nodes downloading (paper: 49 plus the source).
	Nodes int
	// Blocks and BlockSize define the file (paper: 20 MB).
	Blocks    int
	BlockSize int
	// Deadline bounds the simulated download.
	Deadline time.Duration
	// MCStates bounds the controller's checker when enabled.
	MCStates int
	// Workers is the checker's worker-pool size (0 = GOMAXPROCS).
	Workers int
	// Policy selects the per-round budget policy kind ("" = scenario
	// default, then fixed).
	Policy string
}

// Fig17Result carries both arms' download-time CDFs plus the checkpoint
// overhead figures of section 5.5.
type Fig17Result struct {
	Baseline    *stats.Sample // download times, seconds
	CrystalBall *stats.Sample
	// CheckpointBps is the mean per-node checkpoint bandwidth in the
	// CrystalBall arm (paper: ~30 kbps, about 3% of the 1 Mbps access
	// link).
	CheckpointBps float64
	// MeanSlowdown is the relative increase in mean download time
	// (paper: < 10%).
	MeanSlowdown float64
	Completed    [2]int // baseline, crystalball
	Nodes        int
}

// Fig17Bullet reproduces Figure 17: the download-time CDF of a Bullet′
// swarm with and without CrystalBall monitoring. The shape to reproduce:
// the two CDFs nearly overlap, with CrystalBall costing less than ~10%.
func Fig17Bullet(cfg Fig17Config) Fig17Result {
	if cfg.Nodes == 0 {
		cfg.Nodes = 16
	}
	if cfg.Blocks == 0 {
		cfg.Blocks = 40
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 64 << 10
	}
	if cfg.Deadline == 0 {
		cfg.Deadline = 20 * time.Minute
	}
	if cfg.MCStates == 0 {
		cfg.MCStates = 3000
	}
	res := Fig17Result{Nodes: cfg.Nodes}
	res.Baseline, res.Completed[0], _ = runBulletArm(cfg, false)
	var bps float64
	res.CrystalBall, res.Completed[1], bps = runBulletArm(cfg, true)
	res.CheckpointBps = bps
	if res.Baseline.N() > 0 && res.CrystalBall.N() > 0 {
		res.MeanSlowdown = res.CrystalBall.Mean()/res.Baseline.Mean() - 1
	}
	return res
}

func runBulletArm(cfg Fig17Config, withCB bool) (*stats.Sample, int, float64) {
	n := cfg.Nodes + 1 // plus the source
	control := scenario.Bare
	if withCB {
		control = scenario.Debug
	}
	d, err := scenario.Deploy("bulletprime", scenario.DeployOptions{
		Seed: cfg.Seed,
		Service: scenario.Options{
			Nodes:     n,
			Fixed:     true, // measure throughput, not bugs
			Blocks:    cfg.Blocks,
			BlockSize: cfg.BlockSize,
			Degree:    5,
		},
		// Paper: 5 Mbps in / 1 Mbps out access links; model the shared
		// bottleneck with a uniform path at the outbound rate.
		Path:    simnet.UniformPath{Latency: 50 * time.Millisecond, BwBps: 1e6, Loss: 0.002},
		Control: control,
		// The overhead arms measure the monitored download, not the
		// debugging property set's transient phantom-block reports.
		Props:            bulletprime.Properties,
		Policy:           cfg.Policy,
		MCStates:         cfg.MCStates,
		Workers:          cfg.Workers,
		SnapshotInterval: 10 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	s := d.Sim

	times := &stats.Sample{}
	done := make(map[int]bool)
	// Poll for completions each second.
	var poll func()
	poll = func() {
		for i, node := range d.Nodes {
			if i == 0 || done[i] {
				continue
			}
			if node.Service().(*bulletprime.Bullet).Complete {
				done[i] = true
				times.AddDuration(time.Duration(s.Now()))
			}
		}
		if len(done) < cfg.Nodes && time.Duration(s.Now()) < cfg.Deadline {
			s.After(time.Second, poll)
		}
	}
	s.After(time.Second, poll)
	s.RunFor(cfg.Deadline)

	var bps float64
	if withCB {
		total := d.Net.TotalBytesOut(simnet.KindCheckpoint)
		bps = stats.Rate(total, time.Duration(s.Now())) / float64(n)
	}
	return times, len(done), bps
}

// FormatFig17 renders both CDFs plus the overhead summary.
func FormatFig17(r Fig17Result) string {
	t := stats.Table{
		Title:  "Figure 17: Bullet' download times with and without CrystalBall",
		Header: []string{"fraction", "baseline(s)", "crystalball(s)"},
	}
	for _, f := range []float64{10, 25, 50, 75, 90, 100} {
		t.Add(fmt.Sprintf("%.0f%%", f),
			r.Baseline.Percentile(f), r.CrystalBall.Percentile(f))
	}
	out := t.String()
	out += fmt.Sprintf("completed: baseline %d/%d, crystalball %d/%d\n",
		r.Completed[0], r.Nodes, r.Completed[1], r.Nodes)
	out += fmt.Sprintf("mean slowdown: %.1f%% (paper: <10%%)\n", 100*r.MeanSlowdown)
	out += fmt.Sprintf("checkpoint bandwidth: %.0f bps/node (paper: ~30 kbps)\n", r.CheckpointBps)
	return out
}
