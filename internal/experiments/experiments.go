// Package experiments implements one harness per table and figure of the
// CrystalBall paper's evaluation (section 5). Each harness returns a
// structured result plus a plain-text rendering with the same rows or
// series the paper reports; cmd/experiments prints them and bench_test.go
// wraps them as benchmarks. All harnesses are deterministic for a fixed
// seed and scale with their parameters, so benchmarks can run scaled-down
// versions of the same code paths.
package experiments

import (
	"fmt"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
	"crystalball/internal/services/randtree"
	"crystalball/internal/sm"
	"crystalball/internal/stats"
)

// ----------------------------------------------------------------------------
// Figure 12: exhaustive-search (MaceMC baseline) elapsed time vs depth.

// DepthPoint is one point of a depth sweep.
type DepthPoint struct {
	Depth   int
	States  int
	Elapsed time.Duration
	// MemBytes approximates the search-tree footprint (Figures 15/16).
	MemBytes     int64
	PerStateByte float64
}

// Fig12Config parameterises the exhaustive depth sweep.
type Fig12Config struct {
	Seed      int64
	Nodes     int           // paper: 5
	MaxDepth  int           // paper reaches 12-13 in hours
	MaxStates int           // per-depth safety bound
	MaxWall   time.Duration // per-depth wall bound
	Workers   int           // checker worker-pool size (0 = GOMAXPROCS)
}

// Fig12Exhaustive reproduces Figure 12: elapsed time of exhaustive search
// on RandTree from the initial state, as a function of depth. The shape to
// reproduce is exponential growth that makes depths beyond ~12 infeasible.
func Fig12Exhaustive(cfg Fig12Config) []DepthPoint {
	if cfg.Nodes == 0 {
		cfg.Nodes = 5
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 8
	}
	var out []DepthPoint
	for d := 1; d <= cfg.MaxDepth; d++ {
		res := runRandTreeSearch(cfg.Seed, cfg.Nodes, mc.Exhaustive, d, cfg.MaxStates, cfg.MaxWall, false, cfg.Workers)
		out = append(out, DepthPoint{
			Depth:        d,
			States:       res.StatesExplored,
			Elapsed:      res.Elapsed,
			MemBytes:     res.PeakMemoryBytes,
			PerStateByte: res.PerStateBytes,
		})
		if cfg.MaxWall > 0 && res.Elapsed > cfg.MaxWall {
			break // the next depth would only run into the same wall
		}
	}
	return out
}

// runRandTreeSearch builds an n-node RandTree initial state (all nodes
// unjoined, ready to issue Join app calls) and runs one search over it.
func runRandTreeSearch(seed int64, n int, mode mc.Mode, maxDepth, maxStates int, maxWall time.Duration, resets bool, workers int) *mc.Result {
	g, cfg, err := scenario.InitialState("randtree", scenario.Options{Nodes: n})
	if err != nil {
		panic(err)
	}
	cfg.Mode = mode
	cfg.Workers = workers
	cfg.MaxDepth = maxDepth
	cfg.MaxStates = maxStates
	cfg.MaxWall = maxWall
	cfg.ExploreResets = resets
	cfg.Seed = seed
	return mc.NewSearch(cfg).Run(g)
}

// FormatDepthPoints renders a depth sweep as a table.
func FormatDepthPoints(title string, pts []DepthPoint) string {
	t := stats.Table{Title: title, Header: []string{"depth", "states", "elapsed", "mem-bytes", "bytes/state"}}
	for _, p := range pts {
		t.Add(p.Depth, p.States, p.Elapsed, p.MemBytes, p.PerStateByte)
	}
	return t.String()
}

// ----------------------------------------------------------------------------
// Figures 15/16: consequence-prediction memory vs depth.

// Fig15Config parameterises the memory sweep.
type Fig15Config struct {
	Seed      int64
	MaxDepth  int // paper sweeps to ~12, notes <1 MB at 7-8
	MaxStates int
	Workers   int // checker worker-pool size (0 = GOMAXPROCS)
}

// Fig15Memory reproduces Figures 15 and 16: the memory consumed by the
// consequence-prediction search tree as a function of depth, and the
// per-state footprint (paper: converging to ~150 bytes). The start state is
// a formed 5-node RandTree neighborhood (the same kind of snapshot the
// controller feeds the checker), with reset exploration on.
func Fig15Memory(cfg Fig15Config) []DepthPoint {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 8
	}
	factory, g := formedTreeState(5)
	var out []DepthPoint
	for d := 1; d <= cfg.MaxDepth; d++ {
		s := mc.NewSearch(mc.Config{
			Props:         randtree.Properties,
			Factory:       factory,
			Mode:          mc.Consequence,
			Workers:       cfg.Workers,
			MaxDepth:      d,
			MaxStates:     cfg.MaxStates,
			ExploreResets: true,
			Seed:          cfg.Seed,
		})
		res := s.Run(g)
		out = append(out, DepthPoint{
			Depth:        d,
			States:       res.StatesExplored,
			Elapsed:      res.Elapsed,
			MemBytes:     res.PeakMemoryBytes,
			PerStateByte: res.PerStateBytes,
		})
	}
	return out
}

// formedTreeState builds an n-node RandTree that has already converged —
// the kind of live state a neighborhood snapshot captures. Nodes are
// arranged as a binary-heap-shaped tree (parent of node i is i/2) under a
// degree bound of 3, so every node keeps a spare child slot: a resetting
// node can rejoin directly under the root, which is the Figure 2
// precondition.
func formedTreeState(n int) (sm.Factory, *mc.GState) {
	factory := randtree.New(randtree.Config{Bootstrap: []sm.NodeID{1}, MaxChildren: 3})
	if n < 3 {
		n = 3
	}
	parent := func(i int) int { return i / 2 }
	children := make(map[int][]int)
	for i := 2; i <= n; i++ {
		children[parent(i)] = append(children[parent(i)], i)
	}
	g := mc.NewGState()
	for i := 1; i <= n; i++ {
		id := sm.NodeID(i)
		t := factory(id).(*randtree.Tree)
		t.Joined = true
		t.Root = 1
		t.IsRoot = i == 1
		if i == 1 {
			t.Parent = sm.NoNode
		} else {
			t.Parent = sm.NodeID(parent(i))
			t.Peers[t.Parent] = true
			t.Peers[1] = true
		}
		for _, c := range children[i] {
			t.Children[sm.NodeID(c)] = true
			t.Peers[sm.NodeID(c)] = true
		}
		// Children of the root know their siblings.
		if i != 1 && parent(i) == 1 {
			for _, s := range children[1] {
				if s != i {
					t.Siblings[sm.NodeID(s)] = true
					t.Peers[sm.NodeID(s)] = true
				}
			}
		}
		g.AddNode(id, t, map[sm.TimerID]bool{randtree.TimerRecovery: true})
	}
	return factory, g
}

// ----------------------------------------------------------------------------
// Section 5.3: depth reached under a fixed time budget, exhaustive vs
// consequence prediction.

// DepthBudgetRow is one row of the comparison.
type DepthBudgetRow struct {
	Start      string // "initial" or "live-snapshot"
	Nodes      int
	Mode       string
	Depth      int
	States     int
	Elapsed    time.Duration
	Violations int
}

// DepthComparison reproduces the section 5.3 comparison along both of the
// paper's axes:
//
//   - From the *initial* state (the MaceMC setup), exhaustive search's
//     reachable depth collapses as the node count grows (paper: depth 12
//     with 5 nodes, depth 1 with 100 after 17 hours) and the deep
//     Figure 2-class bugs stay out of reach; consequence prediction from
//     the initial state is intentionally useless too ("never exploring
//     states beyond the initialization phase" cuts both ways — there is no
//     live execution to follow).
//   - From a *live snapshot* (a formed tree), consequence prediction finds
//     the Figure 2-class violation within a small fraction of the states
//     and time exhaustive search needs, and the gap widens with scale.
func DepthComparison(seed int64, budget time.Duration, nodeCounts []int, workers int) []DepthBudgetRow {
	var rows []DepthBudgetRow
	for _, n := range nodeCounts {
		for _, mode := range []mc.Mode{mc.Exhaustive, mc.Consequence} {
			res := runRandTreeSearch(seed, n, mode, 0, 0, budget, true, workers)
			rows = append(rows, DepthBudgetRow{
				Start:      "initial",
				Nodes:      n,
				Mode:       mode.String(),
				Depth:      res.MaxDepthReached,
				States:     res.StatesExplored,
				Elapsed:    res.Elapsed,
				Violations: len(res.Violations),
			})
		}
	}
	for _, n := range nodeCounts {
		for _, mode := range []mc.Mode{mc.Exhaustive, mc.Consequence} {
			factory, g := formedTreeState(n)
			s := mc.NewSearch(mc.Config{
				Props:            props.Set{randtree.PropChildrenSiblingsDisjoint},
				Factory:          factory,
				Mode:             mode,
				Workers:          workers,
				ExploreResets:    true,
				MaxResetsPerPath: 1,
				MaxWall:          budget,
				MaxViolations:    1,
				Seed:             seed,
			})
			res := s.Run(g)
			rows = append(rows, DepthBudgetRow{
				Start:      "live-snapshot",
				Nodes:      n,
				Mode:       mode.String(),
				Depth:      res.MaxDepthReached,
				States:     res.StatesExplored,
				Elapsed:    res.Elapsed,
				Violations: len(res.Violations),
			})
		}
	}
	return rows
}

// FormatDepthComparison renders the comparison table.
func FormatDepthComparison(rows []DepthBudgetRow, budget time.Duration) string {
	t := stats.Table{
		Title:  fmt.Sprintf("Section 5.3: exhaustive vs consequence prediction (budget %v)", budget),
		Header: []string{"start", "nodes", "mode", "depth", "states", "elapsed", "violations"},
	}
	for _, r := range rows {
		t.Add(r.Start, r.Nodes, r.Mode, r.Depth, r.States, r.Elapsed, r.Violations)
	}
	return t.String()
}

// The shared deployment helper that used to live here (Deployment, Deploy,
// Churn, SnapCfg) is now the scenario package's deployment builder: every
// harness below describes its deployment with scenario.DeployOptions and
// the registry supplies the stack.
